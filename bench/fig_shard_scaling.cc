// Sharded retrieval engine scaling: Algorithm 4 (PR) query processing over
// a document-partitioned index at 1/2/4/8 shards, serial vs thread-pooled
// shard fan-out.
//
// Every configuration processes byte-identical embellished queries and must
// produce byte-identical encrypted results to the monolithic engine —
// checked every run; sharding is allowed to change only the clock. Emits
// BENCH_shards.json for the perf trajectory.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS    lexicon size                  (default 2000)
//   EMBELLISH_BENCH_DOCS     corpus documents              (default 300)
//   EMBELLISH_BENCH_KEYLEN   Benaloh modulus bits          (default 256)
//   EMBELLISH_BENCH_QUERIES  queries per configuration     (default 12)
//   EMBELLISH_BENCH_THREADS  shard fan-out pool width      (default 4)
//   EMBELLISH_BENCH_JSON     output path       (default BENCH_shards.json)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace embellish;

struct ConfigResult {
  size_t shards = 1;
  std::string mode;
  double ms = 0;
  double qps = 0;
  double speedup = 1.0;
};

}  // namespace

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 2000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 300);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  const size_t num_queries = bench::EnvSize("EMBELLISH_BENCH_QUERIES", 12);
  const size_t threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 4);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0')
          ? json_path_env
          : "BENCH_shards.json";

  std::printf("== Sharded PR engine scaling: %zu queries, KeyLen %zu, "
              "fan-out pool %zu ==\n\n",
              num_queries, key_bits, threads);

  bench::RetrievalFixture fixture = bench::RetrievalFixture::Build(terms, docs);
  core::BucketOrganization org = fixture.Buckets(/*bktsz=*/4);
  storage::StorageLayout layout = storage::StorageLayout::Build(
      fixture.built.index, org.buckets(),
      storage::LayoutPolicy::kBucketColocated, {});

  Rng rng(2027);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = key_bits;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 keys.status().ToString().c_str());
    return 1;
  }
  core::PrivateRetrievalClient client(&org, &keys->public_key(),
                                      &keys->private_key());

  // Embellished queries formulated once; every configuration replays the
  // identical inputs.
  std::vector<core::EmbellishedQuery> queries;
  for (auto& q : fixture.RandomQueries(num_queries, /*query_size=*/2, &rng)) {
    auto formulated = client.FormulateQuery(q, &rng, nullptr);
    if (!formulated.ok()) {
      std::fprintf(stderr, "formulation failed: %s\n",
                   formulated.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(*formulated));
  }

  // Monolithic reference results (encoded bytes).
  core::PrivateRetrievalServer mono(&fixture.built.index, &org, &layout);
  std::vector<std::vector<uint8_t>> reference;
  double mono_ms = 0;
  {
    Stopwatch sw;
    for (const auto& q : queries) {
      auto result = mono.Process(q, keys->public_key(), nullptr);
      if (!result.ok()) {
        std::fprintf(stderr, "monolithic processing failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      reference.push_back(core::EncodeResult(*result, keys->public_key()));
    }
    mono_ms = sw.ElapsedMillis();
  }

  ThreadPool pool(threads);
  std::vector<ConfigResult> results;
  bool identical = true;
  double serial_1shard_ms = 0;

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    index::ShardingOptions so;
    so.shard_count = shards;
    auto sharded = index::ShardedIndex::Build(fixture.built.index, so);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharding failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    auto shard_layouts = core::BuildShardLayouts(
        *sharded, org, storage::LayoutPolicy::kBucketColocated, {});

    for (bool pooled : {false, true}) {
      core::ShardedPrivateRetrievalServer server(
          &*sharded, &org, &shard_layouts, {}, {},
          pooled ? &pool : nullptr);
      ConfigResult r;
      r.shards = shards;
      r.mode = pooled ? "pooled" : "serial";
      Stopwatch sw;
      for (size_t i = 0; i < queries.size(); ++i) {
        auto result = server.Process(queries[i], keys->public_key(), nullptr);
        if (!result.ok()) {
          std::fprintf(stderr, "sharded processing failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        if (core::EncodeResult(*result, keys->public_key()) != reference[i]) {
          identical = false;
        }
      }
      r.ms = sw.ElapsedMillis();
      r.qps = 1000.0 * static_cast<double>(queries.size()) / r.ms;
      if (shards == 1 && !pooled) serial_1shard_ms = r.ms;
      results.push_back(std::move(r));
    }
  }

  std::vector<std::vector<std::string>> table;
  for (ConfigResult& r : results) {
    r.speedup = serial_1shard_ms / r.ms;
    table.push_back({std::to_string(r.shards), r.mode,
                     StringPrintf("%.1f", r.ms), StringPrintf("%.1f", r.qps),
                     StringPrintf("%.2fx", r.speedup)});
  }
  bench::PrintTable({"shards", "mode", "total ms", "queries/s", "vs 1-shard"},
                    table);
  std::printf("\nmonolithic engine: %.1f ms (%zu queries)\n", mono_ms,
              queries.size());

  bench::ShapeCheck(identical,
                    "every shard configuration produces bit-identical "
                    "encrypted results to the monolithic engine");
  double best_multi = 0;
  for (const ConfigResult& r : results) {
    if (r.shards > 1) best_multi = std::max(best_multi, r.speedup);
  }
  bench::ShapeCheck(
      best_multi >= 0.9,
      "best multi-shard configuration within 10% of the 1-shard baseline "
      "(fan-out overhead amortized; pooled scaling needs real cores)");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_shard_scaling\",\n"
               "  \"queries\": %zu,\n"
               "  \"key_bits\": %zu,\n"
               "  \"pool_threads\": %zu,\n"
               "  \"monolithic_ms\": %.2f,\n"
               "  \"configs\": [\n",
               queries.size(), key_bits, threads, mono_ms);
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"mode\": \"%s\", \"ms\": %.2f, "
                 "\"qps\": %.2f, \"speedup_vs_serial_1shard\": %.3f}%s\n",
                 r.shards, r.mode.c_str(), r.ms, r.qps, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  // Exit status reflects correctness only (bit-identical results); the
  // speedup shape-checks are informational so a noisy or 1-core runner
  // cannot fail CI on wall clock.
  return identical ? 0 : 1;
}
