// Sharded retrieval engine scaling under contention: Algorithm 4 (PR)
// query processing over a document-partitioned index, swept over a
// concurrent-sessions × shard-count matrix, serial vs executor-pooled
// shard fan-out.
//
// The sessions axis is what exercises the work-stealing executor: S caller
// threads each fan their own query's shards out as nested regions on ONE
// shared pool (the batch×shard composition the server runs). The single-job
// pool this bench used to measure collapsed here — concurrent callers lost
// the pool and ran inline after burning wake-up and handoff costs
// (0.318x at 8 shards in the PR 3 numbers).
//
// Every configuration processes byte-identical embellished queries and must
// produce byte-identical encrypted results to the monolithic engine —
// checked every run; sharding and pooling are allowed to change only the
// clock. Emits BENCH_shards.json for the perf trajectory.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS     lexicon size                  (default 2000)
//   EMBELLISH_BENCH_DOCS      corpus documents              (default 300)
//   EMBELLISH_BENCH_KEYLEN    Benaloh modulus bits          (default 256)
//   EMBELLISH_BENCH_QUERIES   queries per session           (default 12)
//   EMBELLISH_BENCH_THREADS   shared executor width         (default 4)
//   EMBELLISH_BENCH_SESSIONS  max concurrent sessions       (default 4)
//   EMBELLISH_BENCH_REPEATS   timed repeats per config, min (default 5)
//   EMBELLISH_BENCH_JSON      output path       (default BENCH_shards.json)

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace embellish;

struct ConfigResult {
  size_t shards = 1;
  size_t sessions = 1;
  std::string mode;
  double ms = 0;
  double qps = 0;
  double speedup = 1.0;  // vs serial 1-shard at the same session count
};

}  // namespace

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 2000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 300);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  const size_t num_queries = bench::EnvSize("EMBELLISH_BENCH_QUERIES", 12);
  const size_t threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 4);
  const size_t max_sessions = bench::EnvSize("EMBELLISH_BENCH_SESSIONS", 4);
  const size_t repeats = bench::EnvSize("EMBELLISH_BENCH_REPEATS", 5);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0')
          ? json_path_env
          : "BENCH_shards.json";

  std::printf("== Sharded PR engine scaling: %zu queries/session, KeyLen "
              "%zu, executor width %zu ==\n\n",
              num_queries, key_bits, threads);

  bench::RetrievalFixture fixture = bench::RetrievalFixture::Build(terms, docs);
  core::BucketOrganization org = fixture.Buckets(/*bktsz=*/4);
  storage::StorageLayout layout = storage::StorageLayout::Build(
      fixture.built.index, org.buckets(),
      storage::LayoutPolicy::kBucketColocated, {});

  Rng rng(2027);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = key_bits;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 keys.status().ToString().c_str());
    return 1;
  }
  core::PrivateRetrievalClient client(&org, &keys->public_key(),
                                      &keys->private_key());

  // Embellished queries formulated once; every configuration (and every
  // concurrent session) replays the identical inputs.
  std::vector<core::EmbellishedQuery> queries;
  for (auto& q : fixture.RandomQueries(num_queries, /*query_size=*/2, &rng)) {
    auto formulated = client.FormulateQuery(q, &rng, nullptr);
    if (!formulated.ok()) {
      std::fprintf(stderr, "formulation failed: %s\n",
                   formulated.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(*formulated));
  }

  // Monolithic reference results (encoded bytes).
  core::PrivateRetrievalServer mono(&fixture.built.index, &org, &layout);
  std::vector<std::vector<uint8_t>> reference;
  double mono_ms = 0;
  {
    Stopwatch sw;
    for (const auto& q : queries) {
      auto result = mono.Process(q, keys->public_key(), nullptr);
      if (!result.ok()) {
        std::fprintf(stderr, "monolithic processing failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      reference.push_back(core::EncodeResult(*result, keys->public_key()));
    }
    mono_ms = sw.ElapsedMillis();
  }

  ThreadPool pool(threads);
  std::vector<ConfigResult> results;
  std::atomic<bool> identical{true};

  std::vector<size_t> session_counts{1};
  if (max_sessions > 1) session_counts.push_back(max_sessions);

  // Sharded engines built once per configuration, reused across sweeps.
  struct Config {
    size_t shards;
    size_t sessions;
    bool pooled;
    const core::ShardedPrivateRetrievalServer* server;
  };
  std::vector<std::unique_ptr<index::ShardedIndex>> sharded_indexes;
  std::vector<std::vector<storage::StorageLayout>> all_layouts;
  std::vector<std::unique_ptr<core::ShardedPrivateRetrievalServer>> servers;
  std::vector<Config> configs;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    index::ShardingOptions so;
    so.shard_count = shards;
    auto sharded = index::ShardedIndex::Build(fixture.built.index, so);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharding failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    sharded_indexes.push_back(
        std::make_unique<index::ShardedIndex>(std::move(*sharded)));
    all_layouts.push_back(core::BuildShardLayouts(
        *sharded_indexes.back(), org,
        storage::LayoutPolicy::kBucketColocated, {}));
    for (bool pooled : {false, true}) {
      servers.push_back(
          std::make_unique<core::ShardedPrivateRetrievalServer>(
              sharded_indexes.back().get(), &org, &all_layouts.back(),
              storage::DiskModelOptions{},
              core::PrivateRetrievalServerOptions{},
              pooled ? &pool : nullptr));
      for (size_t sessions : session_counts) {
        configs.push_back(
            Config{shards, sessions, pooled, servers.back().get()});
      }
    }
  }

  // Best-of-N taken over whole-matrix sweeps, not back-to-back repeats of
  // one configuration: a scheduler hiccup or frequency dip on a narrow box
  // spans milliseconds, so consecutive repeats of a sub-millisecond config
  // all absorb it — interleaving the repeats across the matrix means noise
  // has to recur at the same point of every sweep to survive the minimum.
  std::vector<double> best_ms(configs.size(), 0);
  for (size_t rep = 0; rep < std::max<size_t>(1, repeats); ++rep) {
    for (size_t ci = 0; ci < configs.size(); ++ci) {
      const Config& cfg = configs[ci];
      // Each session replays the full query stream against the shared
      // engine; in pooled mode the sessions' shard regions contend for
      // (and steal from) the one executor concurrently.
      auto run_session = [&]() {
        for (size_t i = 0; i < queries.size(); ++i) {
          auto result =
              cfg.server->Process(queries[i], keys->public_key(), nullptr);
          if (!result.ok()) {
            std::fprintf(stderr,
                         "sharded processing failed (sessions=%zu shards=%zu "
                         "%s): %s\n",
                         cfg.sessions, cfg.shards,
                         cfg.pooled ? "pooled" : "serial",
                         result.status().ToString().c_str());
            identical.store(false, std::memory_order_relaxed);
            continue;
          }
          if (core::EncodeResult(*result, keys->public_key()) !=
              reference[i]) {
            std::fprintf(stderr,
                         "bit-identity violated (sessions=%zu shards=%zu %s "
                         "query=%zu)\n",
                         cfg.sessions, cfg.shards,
                         cfg.pooled ? "pooled" : "serial", i);
            identical.store(false, std::memory_order_relaxed);
          }
        }
      };
      Stopwatch sw;
      if (cfg.sessions == 1) {
        run_session();
      } else {
        std::vector<std::thread> callers;
        for (size_t s = 0; s < cfg.sessions; ++s) {
          callers.emplace_back(run_session);
        }
        for (auto& t : callers) t.join();
      }
      const double ms = sw.ElapsedMillis();
      if (rep == 0 || ms < best_ms[ci]) best_ms[ci] = ms;
    }
  }

  // Assemble results in (sessions, shards, mode) display order.
  for (size_t sessions : session_counts) {
    double serial_1shard_ms = 0;
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      for (bool pooled : {false, true}) {
        size_t ci = 0;
        while (ci < configs.size() &&
               !(configs[ci].shards == shards &&
                 configs[ci].sessions == sessions &&
                 configs[ci].pooled == pooled)) {
          ++ci;
        }
        if (ci == configs.size()) {  // enumeration orders diverged: a bug
          std::fprintf(stderr,
                       "config (sessions=%zu shards=%zu pooled=%d) missing "
                       "from sweep\n",
                       sessions, shards, pooled ? 1 : 0);
          return 1;
        }
        ConfigResult r;
        r.shards = shards;
        r.sessions = sessions;
        r.mode = pooled ? "pooled" : "serial";
        r.ms = best_ms[ci];
        r.qps = 1000.0 *
                static_cast<double>(sessions * queries.size()) / r.ms;
        if (shards == 1 && !pooled) serial_1shard_ms = r.ms;
        r.speedup = serial_1shard_ms > 0 ? serial_1shard_ms / r.ms : 1.0;
        results.push_back(std::move(r));
      }
    }
  }

  std::vector<std::vector<std::string>> table;
  for (const ConfigResult& r : results) {
    table.push_back({std::to_string(r.sessions), std::to_string(r.shards),
                     r.mode, StringPrintf("%.1f", r.ms),
                     StringPrintf("%.1f", r.qps),
                     StringPrintf("%.2fx", r.speedup)});
  }
  bench::PrintTable(
      {"sessions", "shards", "mode", "total ms", "queries/s", "vs serial 1s"},
      table);
  std::printf("\nmonolithic engine: %.1f ms (%zu queries, 1 session)\n",
              mono_ms, queries.size());

  bench::ShapeCheck(identical.load(),
                    "every configuration produces bit-identical encrypted "
                    "results to the monolithic engine, under concurrent "
                    "sessions included");
  // The executor criterion: pooled fan-out must not collapse below serial
  // at any point of the matrix (the single-job pool sat at 0.318x on the
  // 8-shard single-session row and 0.916x-style losses under batching).
  double worst_pooled_vs_serial = 1e9;
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const ConfigResult& serial = results[i];
    const ConfigResult& pooled = results[i + 1];
    worst_pooled_vs_serial =
        std::min(worst_pooled_vs_serial, serial.ms / pooled.ms);
  }
  // The acceptance bar is hardware-dependent: with >= 2 cores the executor
  // has real parallelism to deliver, so pooled must be at least at parity
  // with serial (0.95 leaves measurement noise only); on a 1-core box
  // parallelism cannot exist and the floor is the absence of the old
  // 0.318x single-job collapse (0.85 = noise + region bookkeeping).
  const size_t hw = std::thread::hardware_concurrency();
  const double floor = hw >= 2 ? 0.95 : 0.85;
  bench::ShapeCheck(
      worst_pooled_vs_serial >= floor,
      hw >= 2 ? "pooled fan-out at parity or better with serial at every "
                "(sessions, shards) point (multi-core: nested regions must "
                "deliver, not collapse)"
              : "pooled fan-out within 15% of serial at every (sessions, "
                "shards) point (1-core: margin is scheduler noise plus "
                "region bookkeeping; the floor that matters is the absence "
                "of the old 0.318x single-job collapse)");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_shard_scaling\",\n"
               "  \"queries\": %zu,\n"
               "  \"key_bits\": %zu,\n"
               "  \"pool_threads\": %zu,\n"
               "  \"monolithic_ms\": %.2f,\n"
               "  \"worst_pooled_vs_serial\": %.3f,\n"
               "  \"configs\": [\n",
               queries.size(), key_bits, threads, mono_ms,
               worst_pooled_vs_serial);
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"sessions\": %zu, \"mode\": \"%s\", "
                 "\"ms\": %.2f, \"qps\": %.2f, "
                 "\"speedup_vs_serial_1shard\": %.3f}%s\n",
                 r.shards, r.sessions, r.mode.c_str(), r.ms, r.qps, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  // Exit status reflects correctness only (bit-identical results); the
  // speedup shape-checks are informational so a noisy or 1-core runner
  // cannot fail CI on wall clock.
  return identical.load() ? 0 : 1;
}
