// Reproduces Figure 6: effect of BktSz on bucket formation, with the
// segment size maximized to N/BktSz (the paper's choice after Figure 5).
//  (a) intra-bucket specificity difference, Bucket vs Random
//  (b) closest/farthest cover distance difference, Bucket vs Random
// x-axis: BktSz in {2, 4, 6, 8, 10, 12, 14}.

#include "bench_util.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 117798);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 250);

  std::printf(
      "== Figure 6: Effect of BktSz on Bucket Formation (SegSz = N/BktSz) "
      "==\n");
  std::printf("lexicon %s terms, %zu trials per point (paper: 1,000)\n\n",
              WithThousandsSeparators(terms).c_str(), trials);

  auto fixture = bench::LexiconFixture::Build(terms);
  core::SemanticDistanceCalculator distance(&fixture.lexicon);
  core::RiskEvaluator evaluator(&fixture.lexicon, &fixture.specificity,
                                &distance);

  std::vector<std::vector<std::string>> rows;
  double bucket_spec_at_2 = 0, bucket_spec_at_14 = 0;
  double random_spec_at_14 = 0;
  double bucket_far_at_14 = 0, random_far_at_14 = 0;
  for (size_t bktsz = 2; bktsz <= 14; bktsz += 2) {
    auto org = fixture.Buckets(bktsz, SIZE_MAX);  // SegSz clamped to N/BktSz
    const double bucket_spec =
        evaluator.AvgIntraBucketSpecificityDifference(org);
    Rng trial_rng(3);
    auto bucket_dist =
        evaluator.MeasureDistanceDifference(org, trials, &trial_rng);

    Rng random_rng(bktsz);
    auto random_org = core::RandomBucketOrganization(fixture.all_terms,
                                                     bktsz, &random_rng);
    if (!random_org.ok()) return 1;
    const double random_spec =
        evaluator.AvgIntraBucketSpecificityDifference(*random_org);
    Rng random_trial_rng(4);
    auto random_dist = evaluator.MeasureDistanceDifference(
        *random_org, trials, &random_trial_rng);

    rows.push_back({std::to_string(bktsz),
                    StringPrintf("%.3f", bucket_spec),
                    StringPrintf("%.3f", random_spec),
                    StringPrintf("%.2f", bucket_dist.avg_closest),
                    StringPrintf("%.2f", bucket_dist.avg_farthest),
                    StringPrintf("%.2f", random_dist.avg_closest),
                    StringPrintf("%.2f", random_dist.avg_farthest)});
    if (bktsz == 2) bucket_spec_at_2 = bucket_spec;
    if (bktsz == 14) {
      bucket_spec_at_14 = bucket_spec;
      random_spec_at_14 = random_spec;
      bucket_far_at_14 = bucket_dist.avg_farthest;
      random_far_at_14 = random_dist.avg_farthest;
    }
  }
  bench::PrintTable({"BktSz", "spec-diff Bucket", "spec-diff Random",
                     "closest Bucket", "farthest Bucket", "closest Random",
                     "farthest Random"},
                    rows);
  std::printf("\n");

  bench::ShapeCheck(bucket_spec_at_2 < bucket_spec_at_14,
                    "specificity difference starts low, grows with BktSz (6a)");
  bench::ShapeCheck(bucket_spec_at_14 < random_spec_at_14,
                    "Bucket stays well below Random at every BktSz (6a)");
  bench::ShapeCheck(bucket_far_at_14 < random_far_at_14,
                    "Bucket farthest cover below Random's (6b)");
  return 0;
}
