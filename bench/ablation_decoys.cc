// Ablation bench for the design choices DESIGN.md calls out:
//   1. specificity source: hypernym depth (paper) vs document frequency;
//   2. Algorithm 2's stable in-segment sort (paper) vs unstable;
//   3. Benaloh (paper) vs Paillier indicator ciphertexts;
//   4. Algorithm 4 server: per-posting modexp (paper) vs power-table;
//   5. storage layout: bucket-colocated (paper) vs scattered.

#include "bench_util.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 30000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 1500);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 100);
  constexpr size_t kBktSz = 4;

  std::printf("== Ablations over the paper's design choices ==\n\n");
  auto fixture = bench::RetrievalFixture::Build(terms, docs);
  core::SemanticDistanceCalculator distance(&fixture.lexicon);

  // ---- 1. Specificity source -------------------------------------------
  {
    core::RiskEvaluator hyp_eval(&fixture.lexicon, &fixture.specificity,
                                 &distance);
    auto df_spec = core::SpecificityMap::FromDocumentFrequency(
        fixture.lexicon, fixture.corpus_data);
    core::RiskEvaluator df_eval(&fixture.lexicon, &df_spec, &distance);

    core::BucketizerOptions o;
    o.bucket_size = kBktSz;
    o.segment_size = SIZE_MAX;
    auto hyp_org = core::FormBuckets(fixture.sequences, fixture.specificity,
                                     o);
    auto df_org = core::FormBuckets(fixture.sequences, df_spec, o);
    if (!hyp_org.ok() || !df_org.ok()) return 1;
    // Judge both organizations under BOTH specificity definitions.
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"hypernym-depth buckets",
                    StringPrintf("%.3f", hyp_eval.AvgIntraBucketSpecificityDifference(*hyp_org)),
                    StringPrintf("%.3f", df_eval.AvgIntraBucketSpecificityDifference(*hyp_org))});
    rows.push_back({"doc-frequency buckets",
                    StringPrintf("%.3f", hyp_eval.AvgIntraBucketSpecificityDifference(*df_org)),
                    StringPrintf("%.3f", df_eval.AvgIntraBucketSpecificityDifference(*df_org))});
    std::printf("[1] specificity source (BktSz=%zu, SegSz=max)\n", kBktSz);
    bench::PrintTable({"organization", "spec-diff (hypernym metric)",
                       "spec-diff (df metric)"},
                      rows);
    std::printf("\n");
  }

  // ---- 2. Stable vs unstable in-segment sort ---------------------------
  {
    core::RiskEvaluator evaluator(&fixture.lexicon, &fixture.specificity,
                                  &distance);
    core::BucketizerOptions stable;
    stable.bucket_size = kBktSz;
    stable.segment_size = 4096;
    core::BucketizerOptions unstable = stable;
    unstable.stable_specificity_sort = false;
    auto org_s = core::FormBuckets(fixture.sequences, fixture.specificity,
                                   stable);
    auto org_u = core::FormBuckets(fixture.sequences, fixture.specificity,
                                   unstable);
    if (!org_s.ok() || !org_u.ok()) return 1;
    Rng r1(7), r2(7);
    auto d_s = evaluator.MeasureDistanceDifference(*org_s, trials, &r1);
    auto d_u = evaluator.MeasureDistanceDifference(*org_u, trials, &r2);
    std::printf("[2] Algorithm 2 line 5 stability (SegSz=4096)\n");
    bench::PrintTable(
        {"variant", "closest cover", "farthest cover"},
        {{"stable sort (paper)", StringPrintf("%.2f", d_s.avg_closest),
          StringPrintf("%.2f", d_s.avg_farthest)},
         {"unstable sort", StringPrintf("%.2f", d_u.avg_closest),
          StringPrintf("%.2f", d_u.avg_farthest)}});
    bench::ShapeCheck(d_s.avg_closest <= d_u.avg_closest + 0.5,
                      "stable sort keeps covers at least as tight");
    std::printf("\n");
  }

  // ---- 3. Benaloh vs Paillier ciphertext width -------------------------
  {
    Rng rng(11);
    crypto::BenalohKeyOptions bo;
    bo.key_bits = 256;
    bo.r = 59049;
    auto ben = crypto::BenalohKeyPair::Generate(bo, &rng);
    auto pai = crypto::PaillierKeyPair::Generate(256, &rng);
    if (!ben.ok() || !pai.ok()) return 1;
    auto org = fixture.Buckets(kBktSz);
    // Uplink for a 12-term query = 12 buckets x BktSz entries.
    const size_t entries = 12 * kBktSz;
    const size_t ben_up = entries * (4 + ben->public_key().CiphertextBytes());
    const size_t pai_up = entries * (4 + pai->public_key().CiphertextBytes());
    std::printf("[3] indicator cryptosystem (12-term query, BktSz=%zu)\n",
                kBktSz);
    bench::PrintTable(
        {"scheme", "ciphertext bytes", "query uplink bytes"},
        {{"Benaloh (paper)",
          std::to_string(ben->public_key().CiphertextBytes()),
          std::to_string(ben_up)},
         {"Paillier",
          std::to_string(pai->public_key().CiphertextBytes()),
          std::to_string(pai_up)}});
    bench::ShapeCheck(ben_up * 3 < pai_up * 2,
                      "Benaloh ciphertexts cut traffic (App. A.2 rationale)");
    std::printf("\n");
  }

  // ---- 4. Algorithm 4 server: modexp-per-posting vs power table --------
  {
    auto org = fixture.Buckets(8);
    auto layout = storage::StorageLayout::Build(
        fixture.built.index, org.buckets(),
        storage::LayoutPolicy::kBucketColocated, {});
    Rng rng(13);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
    if (!keys.ok()) return 1;
    core::PrivateRetrievalClient client(&org, &keys->public_key(),
                                        &keys->private_key());
    core::PrivateRetrievalServerOptions naive;
    naive.use_power_table = false;
    core::PrivateRetrievalServer naive_server(&fixture.built.index, &org,
                                              &layout,
                                              storage::DiskModelOptions{},
                                              naive);
    core::PrivateRetrievalServer fast_server(&fixture.built.index, &org,
                                             &layout);
    auto queries = fixture.RandomQueries(20, 12, &rng);
    core::RetrievalCosts naive_costs, fast_costs;
    for (const auto& q : queries) {
      auto f = client.FormulateQuery(q, &rng, nullptr);
      if (!f.ok()) return 1;
      if (!naive_server.Process(*f, keys->public_key(), &naive_costs).ok())
        return 1;
      if (!fast_server.Process(*f, keys->public_key(), &fast_costs).ok())
        return 1;
    }
    std::printf("[4] Algorithm 4 inner loop (20 queries of 12 terms)\n");
    bench::PrintTable(
        {"variant", "server CPU (ms, total)"},
        {{"modexp per posting (paper)",
          StringPrintf("%.1f", naive_costs.server_cpu_ms)},
         {"power table (ours)", StringPrintf("%.1f", fast_costs.server_cpu_ms)}});
    bench::ShapeCheck(fast_costs.server_cpu_ms < naive_costs.server_cpu_ms,
                      "power table beats per-posting modexp");
    std::printf("\n");
  }

  // ---- 5. Storage layout ------------------------------------------------
  {
    auto org = fixture.Buckets(8);
    auto colocated = storage::StorageLayout::Build(
        fixture.built.index, org.buckets(),
        storage::LayoutPolicy::kBucketColocated, {});
    auto scattered = storage::StorageLayout::Build(
        fixture.built.index, org.buckets(), storage::LayoutPolicy::kScattered,
        {});
    storage::SimulatedDisk d1, d2;
    for (size_t b = 0; b < std::min<size_t>(200, org.bucket_count()); ++b) {
      (void)colocated.ChargeGroupRead(b, &d1);
      (void)scattered.ChargeGroupRead(b, &d2);
    }
    std::printf("[5] bucket storage layout (200 bucket reads, BktSz=8)\n");
    bench::PrintTable(
        {"layout", "I/O (ms)", "extents"},
        {{"bucket-colocated (paper)", StringPrintf("%.1f", d1.accumulated_ms()),
          std::to_string(d1.accumulated_extents())},
         {"scattered", StringPrintf("%.1f", d2.accumulated_ms()),
          std::to_string(d2.accumulated_extents())}});
    bench::ShapeCheck(d1.accumulated_ms() < d2.accumulated_ms() / 2,
                      "colocation cuts bucket-fetch I/O (Section 4)");
  }
  return 0;
}
