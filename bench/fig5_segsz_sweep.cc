// Reproduces Figure 5: effect of SegSz on bucket formation (BktSz = 4).
//  (a) intra-bucket specificity difference, Bucket vs Random
//  (b) inter-bucket distance difference (closest & farthest cover),
//      Bucket vs Random
// x-axis: log2(SegSz) in {2, 4, 6, 8, 10, 12, 14}; 1,000-trial averages in
// the paper (EMBELLISH_BENCH_TRIALS, default 400, controls ours).

#include "bench_util.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 117798);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 250);
  constexpr size_t kBktSz = 4;

  std::printf("== Figure 5: Effect of SegSz on Bucket Formation (BktSz=4) ==\n");
  std::printf("lexicon %s terms, %zu trials per point (paper: 1,000)\n\n",
              WithThousandsSeparators(terms).c_str(), trials);

  auto fixture = bench::LexiconFixture::Build(terms);
  core::SemanticDistanceCalculator distance(&fixture.lexicon);
  core::RiskEvaluator evaluator(&fixture.lexicon, &fixture.specificity,
                                &distance);

  // Random baseline is SegSz-independent: one organization, one row set.
  Rng random_rng(1);
  auto random_org = core::RandomBucketOrganization(fixture.all_terms, kBktSz,
                                                   &random_rng);
  if (!random_org.ok()) return 1;
  const double random_spec =
      evaluator.AvgIntraBucketSpecificityDifference(*random_org);
  Rng random_trial_rng(2);
  auto random_dist = evaluator.MeasureDistanceDifference(*random_org, trials,
                                                         &random_trial_rng);

  std::vector<std::vector<std::string>> rows;
  double first_bucket_spec = 0, last_bucket_spec = 0;
  double max_bucket_farthest_operating = 0;  // over SegSz >= 2^6
  for (size_t log2_segsz = 2; log2_segsz <= 14; log2_segsz += 2) {
    const size_t segsz = static_cast<size_t>(1) << log2_segsz;
    auto org = fixture.Buckets(kBktSz, segsz);
    const double bucket_spec =
        evaluator.AvgIntraBucketSpecificityDifference(org);
    Rng trial_rng(3);
    auto bucket_dist =
        evaluator.MeasureDistanceDifference(org, trials, &trial_rng);
    rows.push_back({std::to_string(log2_segsz),
                    StringPrintf("%.3f", bucket_spec),
                    StringPrintf("%.3f", random_spec),
                    StringPrintf("%.2f", bucket_dist.avg_closest),
                    StringPrintf("%.2f", bucket_dist.avg_farthest),
                    StringPrintf("%.2f", random_dist.avg_closest),
                    StringPrintf("%.2f", random_dist.avg_farthest)});
    if (log2_segsz == 2) first_bucket_spec = bucket_spec;
    last_bucket_spec = bucket_spec;
    if (log2_segsz >= 6) {
      max_bucket_farthest_operating =
          std::max(max_bucket_farthest_operating, bucket_dist.avg_farthest);
    }
  }
  bench::PrintTable({"log2(SegSz)", "spec-diff Bucket", "spec-diff Random",
                     "closest Bucket", "farthest Bucket", "closest Random",
                     "farthest Random"},
                    rows);
  std::printf("\n");

  bench::ShapeCheck(last_bucket_spec < first_bucket_spec,
                    "larger SegSz lowers the specificity difference (5a)");
  bench::ShapeCheck(last_bucket_spec < random_spec,
                    "Bucket specificity difference below Random (5a)");
  // Checked over SegSz >= 2^6: the synthetic hypernym graph has less
  // path-length variance than real WordNet (see EXPERIMENTS.md), which
  // compresses Random's farthest cover; at tiny segments the two curves
  // touch, while the paper's operating region separates cleanly.
  bench::ShapeCheck(max_bucket_farthest_operating < random_dist.avg_farthest,
                    "Bucket farthest cover below Random's (5b, SegSz >= 64)");
  return 0;
}
