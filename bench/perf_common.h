// Shared measurement loop for the Section 5.2 benches (Figures 7 and 8):
// runs the same random-query workload through PR and through KO-PIR and
// averages the four cost metrics the paper plots.

#ifndef EMBELLISH_BENCH_PERF_COMMON_H_
#define EMBELLISH_BENCH_PERF_COMMON_H_

#include "bench_util.h"

namespace embellish::bench {

struct SchemeCosts {
  double io_ms = 0;
  double cpu_ms = 0;
  double traffic_kb = 0;  // downlink (the result stream), per the paper
  double user_cpu_ms = 0;

  void Accumulate(const core::RetrievalCosts& c) {
    io_ms += c.server_io_ms;
    cpu_ms += c.server_cpu_ms;
    traffic_kb += static_cast<double>(c.downlink_bytes) / 1024.0;
    user_cpu_ms += c.user_cpu_ms;
  }
  void Average(size_t n) {
    io_ms /= static_cast<double>(n);
    cpu_ms /= static_cast<double>(n);
    traffic_kb /= static_cast<double>(n);
    user_cpu_ms /= static_cast<double>(n);
  }
};

struct PerfPoint {
  SchemeCosts pr;
  SchemeCosts pir;
};

/// \brief Measures one (BktSz, query size) data point over `trials` queries.
inline PerfPoint MeasurePoint(const RetrievalFixture& fixture, size_t bktsz,
                              size_t query_size, size_t trials,
                              size_t key_bits, uint64_t seed) {
  auto org = fixture.Buckets(bktsz);
  auto layout = storage::StorageLayout::Build(
      fixture.built.index, org.buckets(),
      storage::LayoutPolicy::kBucketColocated, {});

  Rng rng(seed);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = key_bits;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) std::exit(1);

  // Paper-faithful Algorithm 4: per-posting modexp (see
  // PrivateRetrievalServerOptions; the ablation bench measures the
  // power-table speedup separately).
  core::PrivateRetrievalServerOptions so;
  so.use_power_table = false;
  core::PrivateRetrievalClient pr_client(&org, &keys->public_key(),
                                         &keys->private_key());
  core::PrivateRetrievalServer pr_server(&fixture.built.index, &org, &layout,
                                         storage::DiskModelOptions{}, so);

  core::PirRetrievalServer pir_server(&fixture.built.index, &org, &layout);
  auto pir_client = core::PirRetrievalClient::Create(&org, key_bits, &rng);
  if (!pir_client.ok()) std::exit(1);

  auto queries = fixture.RandomQueries(trials, query_size, &rng);
  PerfPoint point;
  for (const auto& q : queries) {
    core::RetrievalCosts pr_costs;
    auto pr = core::RunPrivateQuery(pr_client, pr_server, keys->public_key(),
                                    q, 20, &rng, &pr_costs);
    if (!pr.ok()) {
      std::fprintf(stderr, "PR failed: %s\n", pr.status().ToString().c_str());
      std::exit(1);
    }
    point.pr.Accumulate(pr_costs);

    core::RetrievalCosts pir_costs;
    auto pir = pir_client->RunQuery(pir_server, q, 20, &rng, &pir_costs);
    if (!pir.ok()) {
      std::fprintf(stderr, "PIR failed: %s\n",
                   pir.status().ToString().c_str());
      std::exit(1);
    }
    point.pir.Accumulate(pir_costs);
  }
  point.pr.Average(trials);
  point.pir.Average(trials);
  return point;
}

inline std::vector<std::string> PointRow(const std::string& x,
                                         const PerfPoint& p) {
  return {x,
          StringPrintf("%.1f", p.pr.io_ms),
          StringPrintf("%.1f", p.pir.io_ms),
          StringPrintf("%.1f", p.pr.cpu_ms),
          StringPrintf("%.1f", p.pir.cpu_ms),
          StringPrintf("%.1f", p.pr.traffic_kb),
          StringPrintf("%.1f", p.pir.traffic_kb),
          StringPrintf("%.1f", p.pr.user_cpu_ms),
          StringPrintf("%.1f", p.pir.user_cpu_ms)};
}

inline std::vector<std::string> PointHeader(const std::string& x) {
  return {x,
          "IO PR (ms)",
          "IO PIR (ms)",
          "CPU PR (ms)",
          "CPU PIR (ms)",
          "Traffic PR (KB)",
          "Traffic PIR (KB)",
          "UserCPU PR (ms)",
          "UserCPU PIR (ms)"};
}

}  // namespace embellish::bench

#endif  // EMBELLISH_BENCH_PERF_COMMON_H_
