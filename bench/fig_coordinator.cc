// Remote-shard coordinator throughput: the same framed request stream
// answered by (a) the monolithic EmbellishServer, (b) the in-process
// sharded EmbellishServer, and (c) a ShardCoordinator fanning out to slice
// servers over InProcessTransports, at 1/2/4/8 shards.
//
// Bit-identity is asserted every run (like fig_shard_scaling): every
// response frame from (b) and (c) must equal (a)'s bytes for the PR,
// PIR and plaintext top-k paths — the coordinator is allowed to change
// only the clock. Emits BENCH_coordinator.json.
//
// The coordinator runs with a shared executor and unbounded fanout
// (ShardCoordinatorOptions::fanout_threads = 0): its per-request shard
// round trips overlap as executor tasks instead of walking the shards
// sequentially — the overlap that closes the coordinator-vs-in-process
// gap on machines with real cores.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS    lexicon size                  (default 2000)
//   EMBELLISH_BENCH_DOCS     corpus documents              (default 300)
//   EMBELLISH_BENCH_KEYLEN   Benaloh modulus bits          (default 256)
//   EMBELLISH_BENCH_QUERIES  queries per configuration     (default 12)
//   EMBELLISH_BENCH_THREADS  executor width                (default 4)
//   EMBELLISH_BENCH_JSON     output path  (default BENCH_coordinator.json)

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/event_loop.h"
#include "server/multiplexed_transport.h"
#include "server/session_client.h"
#include "server/shard_coordinator.h"

namespace {

using namespace embellish;

struct ConfigResult {
  size_t shards = 1;
  std::string mode;  // "sharded" (in-process) or "coordinator"
  double ms = 0;
  double qps = 0;
};

// One TCP transport mode (blocking TcpTransport vs MultiplexedTransport)
// over the same loopback slice servers.
struct ModeResult {
  std::string mode;
  double ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  /// Summed in-flight round-trip time over wall-clock: ~1 means the shard
  /// trips ran sequentially, ~N means N were genuinely in flight at once.
  double overlap = 0;
  uint64_t blocking_io_trips = 0;
  uint64_t async_io_trips = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 2000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 300);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  const size_t num_queries = bench::EnvSize("EMBELLISH_BENCH_QUERIES", 12);
  const size_t threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 4);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0')
          ? json_path_env
          : "BENCH_coordinator.json";

  std::printf("== Remote-shard coordinator: %zu queries per path, KeyLen %zu "
              "==\n\n", num_queries, key_bits);

  bench::RetrievalFixture fixture = bench::RetrievalFixture::Build(terms, docs);
  core::BucketOrganization org = fixture.Buckets(/*bktsz=*/4);

  // One session speaking the framed protocol; its uplink bytes are reused
  // verbatim against every server configuration.
  crypto::BenalohKeyOptions ko;
  ko.key_bits = key_bits;
  ko.r = 59049;
  auto client = server::SessionClient::Create(1, &org, ko, /*seed=*/2028);
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }

  Rng rng(2029);
  std::vector<std::vector<uint8_t>> requests;
  requests.push_back(client->HelloFrame());
  for (auto& q : fixture.RandomQueries(num_queries, /*query_size=*/2, &rng)) {
    auto pr = client->QueryFrame(q);
    if (!pr.ok()) {
      std::fprintf(stderr, "query: %s\n", pr.status().ToString().c_str());
      return 1;
    }
    requests.push_back(std::move(*pr));
    requests.push_back(server::EncodeFrame(server::FrameKind::kTopKQuery, 1,
                                           server::EncodeTopKQuery(10, q)));
  }
  // One PIR execution per run, addressed to shard 0 so the same bytes are
  // valid on every configuration (shard 0's field == the plain bucket).
  auto pir_slot = org.Locate(fixture.built.index.IndexedTerms()[11]);
  if (!pir_slot.ok()) return 1;
  auto pir_client = crypto::PirClient::Create(key_bits, &rng);
  if (!pir_client.ok()) return 1;
  auto pir_query = pir_client->BuildQuery(
      pir_slot->slot, org.bucket(pir_slot->bucket).size(), &rng);
  if (!pir_query.ok()) return 1;
  requests.push_back(server::EncodeFrame(
      server::FrameKind::kPirQuery, 1,
      server::EncodePirQuery(pir_slot->bucket, *pir_query)));

  // Monolithic reference responses. Caches off everywhere: this measures
  // the answer path, not the cache.
  server::EmbellishServerOptions base;
  base.cache_capacity = 0;
  server::EmbellishServer mono(&fixture.built.index, &org, nullptr, base);
  std::vector<std::vector<uint8_t>> reference;
  double mono_ms = 0;
  {
    Stopwatch sw;
    for (const auto& request : requests) {
      reference.push_back(mono.HandleFrame(request));
    }
    mono_ms = sw.ElapsedMillis();
  }

  std::vector<ConfigResult> results;
  bool identical = true;

  // The PIR request addresses (shard 0, bucket): its answer is shard 0's
  // fragment, which legitimately depends on the shard count — so the PIR
  // frame is compared coordinator-vs-sharded per configuration, while the
  // PR and top-k frames must match the monolithic bytes everywhere.
  const size_t pir_index = requests.size() - 1;

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    // (b) In-process sharded server: the per-configuration reference.
    std::vector<std::vector<uint8_t>> shard_reference(requests.size());
    {
      server::EmbellishServerOptions options = base;
      options.shard_count = shards;
      server::EmbellishServer sharded(&fixture.built.index, &org, nullptr,
                                      options);
      ConfigResult r{shards, "sharded", 0, 0};
      Stopwatch sw;
      for (size_t i = 0; i < requests.size(); ++i) {
        shard_reference[i] = sharded.HandleFrame(requests[i]);
        // The hello-ok advertises the configuration's own topology; every
        // other frame except the shard-scoped PIR answer must match the
        // monolithic bytes.
        if (i > 0 && i != pir_index && shard_reference[i] != reference[i]) {
          identical = false;
        }
      }
      r.ms = sw.ElapsedMillis();
      r.qps = 1000.0 * static_cast<double>(requests.size() - 1) / r.ms;
      results.push_back(std::move(r));
    }

    // (c) Coordinator over slice servers behind in-process transports.
    {
      std::vector<std::unique_ptr<server::EmbellishServer>> slices;
      std::vector<std::unique_ptr<server::ShardEndpoint>> endpoints;
      std::vector<std::unique_ptr<server::InProcessTransport>> transports;
      std::vector<server::ShardTransport*> raw;
      for (size_t s = 0; s < shards; ++s) {
        server::EmbellishServerOptions options = base;
        options.shard_slice = s;
        options.shard_slice_count = shards;
        slices.push_back(std::make_unique<server::EmbellishServer>(
            &fixture.built.index, &org, nullptr, options));
        endpoints.push_back(std::make_unique<server::ShardEndpoint>(
            slices.back().get(), s));
        transports.push_back(std::make_unique<server::InProcessTransport>(
            endpoints.back().get()));
        raw.push_back(transports.back().get());
      }
      // Shared executor: each request's PR/top-k fan-out overlaps its
      // shard round trips as executor tasks (fanout_threads 0 = all
      // shards in flight); caches stay off so the answer path is what is
      // measured.
      ThreadPool pool(threads);
      server::ShardCoordinator coordinator(raw, {}, &pool);
      if (!coordinator.Handshake().ok()) {
        std::fprintf(stderr, "handshake failed at %zu shards\n", shards);
        return 1;
      }
      ConfigResult r{shards, "coordinator", 0, 0};
      Stopwatch sw;
      for (size_t i = 0; i < requests.size(); ++i) {
        auto response = coordinator.HandleFrame(requests[i]);
        // Including the hello-ok and the PIR frame: the coordinator must be
        // byte-for-byte indistinguishable from the in-process sharded
        // server at the same shard count.
        if (response != shard_reference[i]) identical = false;
      }
      r.ms = sw.ElapsedMillis();
      r.qps = 1000.0 * static_cast<double>(requests.size() - 1) / r.ms;
      results.push_back(std::move(r));
    }
  }

  // --- Transport mode sweep: blocking sockets vs one multiplexed
  // connection per shard, at 8 shards over real loopback TCP. The blocking
  // mode parks one executor worker per in-flight round trip; the
  // multiplexed mode submits all eight and awaits — blocking_io_trips must
  // read 0 there, and the overlap column shows how many round trips were
  // genuinely in flight at once.
  const size_t mode_shards = 8;
  std::vector<ModeResult> mode_results;
  {
    // Per-configuration reference at 8 shards (the hello-ok and the PIR
    // frame legitimately differ from the monolithic bytes).
    std::vector<std::vector<uint8_t>> shard_reference(requests.size());
    server::EmbellishServerOptions ref_options = base;
    ref_options.shard_count = mode_shards;
    server::EmbellishServer sharded(&fixture.built.index, &org, nullptr,
                                    ref_options);
    for (size_t i = 0; i < requests.size(); ++i) {
      shard_reference[i] = sharded.HandleFrame(requests[i]);
    }

    std::vector<std::unique_ptr<server::EmbellishServer>> slices;
    std::vector<std::unique_ptr<server::ShardEndpoint>> endpoints;
    std::vector<int> listen_fds;
    std::vector<uint16_t> ports;
    std::vector<std::thread> serve_threads;
    for (size_t s = 0; s < mode_shards; ++s) {
      server::EmbellishServerOptions options = base;
      options.shard_slice = s;
      options.shard_slice_count = mode_shards;
      slices.push_back(std::make_unique<server::EmbellishServer>(
          &fixture.built.index, &org, nullptr, options));
      endpoints.push_back(std::make_unique<server::ShardEndpoint>(
          slices.back().get(), s));
      uint16_t port = 0;
      auto listen_fd = server::ListenOnLoopback(&port);
      if (!listen_fd.ok()) {
        std::fprintf(stderr, "listen: %s\n",
                     listen_fd.status().ToString().c_str());
        return 1;
      }
      listen_fds.push_back(*listen_fd);
      ports.push_back(port);
      serve_threads.emplace_back([fd = *listen_fd,
                                  endpoint = endpoints.back().get()] {
        (void)server::ServeShardConnections(fd, endpoint);
      });
    }

    auto loop = server::EventLoop::Create();
    if (!loop.ok() || !(*loop)->Start().ok()) {
      std::fprintf(stderr, "event loop failed\n");
      return 1;
    }

    for (const std::string& mode : {std::string("tcp-blocking"),
                                    std::string("tcp-multiplexed")}) {
      std::vector<std::unique_ptr<server::ShardTransport>> transports;
      std::vector<server::ShardTransport*> raw;
      for (size_t s = 0; s < mode_shards; ++s) {
        if (mode == "tcp-blocking") {
          auto t = server::TcpTransport::Connect("127.0.0.1", ports[s]);
          if (!t.ok()) {
            std::fprintf(stderr, "connect: %s\n",
                         t.status().ToString().c_str());
            return 1;
          }
          transports.push_back(std::move(*t));
        } else {
          auto t = server::MultiplexedTransport::Connect("127.0.0.1",
                                                         ports[s],
                                                         loop->get());
          if (!t.ok()) {
            std::fprintf(stderr, "connect: %s\n",
                         t.status().ToString().c_str());
            return 1;
          }
          transports.push_back(std::move(*t));
        }
        raw.push_back(transports.back().get());
      }
      ThreadPool pool(threads);
      server::ShardCoordinator coordinator(raw, {}, &pool);
      if (!coordinator.Handshake().ok()) {
        std::fprintf(stderr, "handshake failed (%s)\n", mode.c_str());
        return 1;
      }
      const server::CoordinatorStats before = coordinator.stats();
      std::vector<double> latencies;
      Stopwatch total;
      for (size_t i = 0; i < requests.size(); ++i) {
        Stopwatch one;
        auto response = coordinator.HandleFrame(requests[i]);
        latencies.push_back(one.ElapsedMillis());
        if (response != shard_reference[i]) identical = false;
      }
      ModeResult r;
      r.mode = mode;
      r.ms = total.ElapsedMillis();
      r.p50_ms = Percentile(latencies, 0.50);
      r.p95_ms = Percentile(latencies, 0.95);
      const server::CoordinatorStats after = coordinator.stats();
      r.blocking_io_trips = after.blocking_io_trips - before.blocking_io_trips;
      r.async_io_trips = after.async_io_trips - before.async_io_trips;
      r.overlap = r.ms > 0
                      ? static_cast<double>(after.trip_micros -
                                            before.trip_micros) /
                            (1000.0 * r.ms)
                      : 0;
      mode_results.push_back(std::move(r));
      // Transports drop here; the serve loops return to accept() for the
      // next mode's connections.
    }

    for (int fd : listen_fds) {
      shutdown(fd, SHUT_RDWR);
      close(fd);
    }
    for (auto& t : serve_threads) t.join();
    (*loop)->Stop();
  }

  std::vector<std::vector<std::string>> table;
  for (const ConfigResult& r : results) {
    table.push_back({std::to_string(r.shards), r.mode,
                     StringPrintf("%.1f", r.ms),
                     StringPrintf("%.1f", r.qps),
                     StringPrintf("%.2fx", mono_ms / r.ms)});
  }
  bench::PrintTable({"shards", "mode", "total ms", "frames/s", "vs mono"},
                    table);
  std::printf("\nmonolithic server: %.1f ms (%zu frames)\n", mono_ms,
              requests.size());

  std::vector<std::vector<std::string>> mode_table;
  bool mux_unblocked = true;
  for (const ModeResult& r : mode_results) {
    mode_table.push_back({r.mode, StringPrintf("%.1f", r.ms),
                          StringPrintf("%.2f", r.p50_ms),
                          StringPrintf("%.2f", r.p95_ms),
                          StringPrintf("%.2fx", r.overlap),
                          std::to_string(r.blocking_io_trips),
                          std::to_string(r.async_io_trips)});
    if (r.mode == "tcp-multiplexed" && r.blocking_io_trips != 0) {
      mux_unblocked = false;
    }
  }
  std::printf("\n-- transport modes at %zu shards over loopback TCP --\n",
              mode_shards);
  bench::PrintTable({"mode", "total ms", "p50 ms", "p95 ms", "overlap",
                     "blocking trips", "async trips"},
                    mode_table);

  bench::ShapeCheck(identical,
                    "every sharded and coordinator response frame is "
                    "bit-identical to the monolithic server's (PR, PIR and "
                    "top-k paths) — including both TCP transport modes");
  bench::ShapeCheck(mux_unblocked,
                    "the multiplexed mode parked zero executor workers on "
                    "transport I/O (blocking_io_trips == 0)");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_coordinator\",\n"
               "  \"queries\": %zu,\n"
               "  \"key_bits\": %zu,\n"
               "  \"monolithic_ms\": %.2f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"configs\": [\n",
               num_queries, key_bits, mono_ms, identical ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"mode\": \"%s\", \"ms\": %.2f, "
                 "\"fps\": %.2f}%s\n",
                 r.shards, r.mode.c_str(), r.ms, r.qps,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fanout_modes\": [\n");
  for (size_t i = 0; i < mode_results.size(); ++i) {
    const ModeResult& r = mode_results[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %zu, \"ms\": %.2f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"overlap\": %.2f, "
                 "\"blocking_io_trips\": %llu, \"async_io_trips\": %llu}%s\n",
                 r.mode.c_str(), mode_shards, r.ms, r.p50_ms, r.p95_ms,
                 r.overlap,
                 static_cast<unsigned long long>(r.blocking_io_trips),
                 static_cast<unsigned long long>(r.async_io_trips),
                 i + 1 < mode_results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  // Exit status reflects correctness only (bit-identity and the
  // no-blocked-workers invariant); wall-clock shape is informational so a
  // noisy 1-core runner cannot fail CI.
  return identical && mux_unblocked ? 0 : 1;
}
