// Reproduces Figure 8: sensitivity to query size with BktSz fixed at 8.
// Four panels: (a) server I/O, (b) server CPU, (c) network traffic,
// (d) user CPU — PR vs PIR. The paper's headline: PIR's communication and
// user computation grow linearly with query size; PR scales gracefully.

#include "perf_common.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 30000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 1500);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 8);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  constexpr size_t kBktSz = 8;

  std::printf("== Figure 8: Performance Impact of Query Size (BktSz = 8) ==\n");
  std::printf(
      "lexicon %s terms, corpus %s docs, %zu queries/point, KeyLen %zu\n"
      "(paper: WSJ 172,961 docs, 1,000 queries/point; TREC ad-hoc queries "
      "reach 20+ terms, query expansion more)\n\n",
      WithThousandsSeparators(terms).c_str(),
      WithThousandsSeparators(docs).c_str(), trials, key_bits);

  auto fixture = bench::RetrievalFixture::Build(terms, docs);

  const size_t query_sizes[] = {2, 8, 16, 24, 32, 40};
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::PerfPoint> points;
  for (size_t qsize : query_sizes) {
    points.push_back(bench::MeasurePoint(fixture, kBktSz, qsize, trials,
                                         key_bits, 2000 + qsize));
    rows.push_back(bench::PointRow(std::to_string(qsize), points.back()));
  }
  bench::PrintTable(bench::PointHeader("QuerySize"), rows);
  std::printf("\n");

  const auto& first = points.front();
  const auto& last = points.back();
  // PIR communication and user CPU grow ~linearly in query size (20x size
  // from 2 to 40 -> expect >= 8x growth allowing dedup/collisions).
  bench::ShapeCheck(last.pir.traffic_kb > 8.0 * first.pir.traffic_kb,
                    "PIR traffic grows ~linearly with query size (8c)");
  bench::ShapeCheck(last.pir.user_cpu_ms > 8.0 * first.pir.user_cpu_ms,
                    "PIR user CPU grows ~linearly with query size (8d)");
  bool traffic_gap = true;
  bool pr_user_below = true;
  for (const auto& p : points) {
    traffic_gap &= p.pir.traffic_kb > 4.0 * p.pr.traffic_kb;
    pr_user_below &= p.pr.user_cpu_ms < p.pir.user_cpu_ms;
  }
  bench::ShapeCheck(traffic_gap, "PR traffic far below PIR at every size (8c)");
  bench::ShapeCheck(pr_user_below, "PR user CPU below PIR at every size (8d)");
  bench::ShapeCheck(last.pr.user_cpu_ms < last.pir.user_cpu_ms / 2.0,
                    "the PIR disadvantage is exacerbated for long queries");
  return 0;
}
