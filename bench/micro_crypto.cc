// google-benchmark microbenchmarks for the cryptographic primitives that
// dominate the Section 5.2 costs: Benaloh encrypt/decrypt/scalar-mul,
// Paillier encrypt/decrypt, PIR row products, and the bignum kernels.

#include <benchmark/benchmark.h>

#include <map>

#include "common/cpuinfo.h"
#include "embellish.h"

namespace {

using namespace embellish;
using bignum::BigInt;

crypto::BenalohKeyPair* BenalohKeys(size_t bits) {
  static std::map<size_t, crypto::BenalohKeyPair*>* cache =
      new std::map<size_t, crypto::BenalohKeyPair*>();
  auto it = cache->find(bits);
  if (it != cache->end()) return it->second;
  Rng rng(42 + bits);
  crypto::BenalohKeyOptions o;
  o.key_bits = bits;
  o.r = 59049;
  auto kp = crypto::BenalohKeyPair::Generate(o, &rng);
  auto* owned = new crypto::BenalohKeyPair(std::move(kp).value());
  (*cache)[bits] = owned;
  return owned;
}

void BM_BigIntMul(benchmark::State& state) {
  Rng rng(1);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt a = bignum::RandomBits(bits, &rng);
  BigInt b = bignum::RandomBits(bits, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(2);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt a = bignum::RandomBits(2 * bits, &rng);
  BigInt b = bignum::RandomBits(bits, &rng);
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(256)->Arg(512)->Arg(1024);

void BM_MontgomeryModExp(benchmark::State& state) {
  Rng rng(3);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = bignum::RandomPrime(bits, &rng);
  auto ctx = bignum::MontgomeryContext::Create(m);
  BigInt base = bignum::RandomBelow(m, &rng);
  BigInt exp = bignum::RandomBits(bits, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->ModExp(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExp)->Arg(256)->Arg(512)->Arg(1024);

void BM_MontMulSingle(benchmark::State& state) {
  Rng rng(4);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = bignum::RandomPrime(bits, &rng);
  auto ctx = bignum::MontgomeryContext::Create(m);
  auto a = ctx->ToMontgomery(bignum::RandomBelow(m, &rng));
  auto b = ctx->ToMontgomery(bignum::RandomBelow(m, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->MontMul(a, b));
  }
}
BENCHMARK(BM_MontMulSingle)->Arg(128)->Arg(256)->Arg(512);

void BM_MontMulScratch(benchmark::State& state) {
  // The zero-allocation kernel the PIR row loop runs on; compare against
  // BM_MontMulSingle to see what the per-op heap traffic used to cost.
  Rng rng(4);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = bignum::RandomPrime(bits, &rng);
  auto ctx = bignum::MontgomeryContext::Create(m);
  auto a = ctx->ToMontgomery(bignum::RandomBelow(m, &rng));
  auto b = ctx->ToMontgomery(bignum::RandomBelow(m, &rng));
  bignum::MontgomeryContext::Scratch scratch(*ctx);
  std::vector<uint64_t> acc = ctx->One();
  for (auto _ : state) {
    ctx->MontMulInto(acc.data(), (acc[0] & 1) ? a.data() : b.data(),
                     acc.data(), &scratch);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_MontMulScratch)->Arg(128)->Arg(256)->Arg(512);

void BM_ModExpScratch(benchmark::State& state) {
  Rng rng(4);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = bignum::RandomPrime(bits, &rng);
  auto ctx = bignum::MontgomeryContext::Create(m);
  auto base = ctx->ToMontgomery(bignum::RandomBelow(m, &rng));
  BigInt e = bignum::RandomBits(bits, &rng);
  bignum::MontgomeryContext::Scratch scratch(*ctx);
  std::vector<uint64_t> out(ctx->limb_count());
  for (auto _ : state) {
    ctx->ModExpInto(base.data(), e, out.data(), &scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ModExpScratch)->Arg(256)->Arg(512);

void BM_BenalohEncrypt(benchmark::State& state) {
  auto* kp = BenalohKeys(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->public_key().Encrypt(1, &rng));
  }
}
BENCHMARK(BM_BenalohEncrypt)->Arg(256)->Arg(512);

void BM_BenalohScalarMul(benchmark::State& state) {
  auto* kp = BenalohKeys(256);
  Rng rng(6);
  auto c = kp->public_key().Encrypt(1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->public_key().ScalarMul(*c, 200));
  }
}
BENCHMARK(BM_BenalohScalarMul);

void BM_BenalohDecrypt3k(benchmark::State& state) {
  auto* kp = BenalohKeys(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  auto c = kp->public_key().Encrypt(31415, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->private_key().DecryptWith(
        *c, crypto::BenalohDecryptMode::kPowerOfThreeDigits));
  }
}
BENCHMARK(BM_BenalohDecrypt3k)->Arg(256)->Arg(512);

void BM_BenalohDecryptBsgs(benchmark::State& state) {
  auto* kp = BenalohKeys(static_cast<size_t>(state.range(0)));
  Rng rng(8);
  auto c = kp->public_key().Encrypt(31415, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->private_key().DecryptWith(
        *c, crypto::BenalohDecryptMode::kBabyStepGiantStep));
  }
}
BENCHMARK(BM_BenalohDecryptBsgs)->Arg(256)->Arg(512);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(9);
  static auto* kp = new crypto::PaillierKeyPair(
      std::move(crypto::PaillierKeyPair::Generate(256, &rng)).value());
  Rng erng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->public_key().Encrypt(BigInt(12345), &erng));
  }
}
BENCHMARK(BM_PaillierEncrypt);

void BM_PirServerAnswer(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = 8;
  auto db = std::make_shared<crypto::PirDatabase>(rows, cols);
  Rng rng(11);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) db->SetBit(i, j, rng.Bernoulli(0.5));
  }
  auto client = crypto::PirClient::Create(256, &rng);
  crypto::PirServer server(db);
  auto query = client->BuildQuery(3, cols, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Answer(*query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_PirServerAnswer)->Arg(512)->Arg(4096)->Arg(16384);

void BM_PirServerAnswerPooled(benchmark::State& state) {
  const size_t rows = 4096;
  const size_t cols = 8;
  auto db = std::make_shared<crypto::PirDatabase>(rows, cols);
  Rng rng(11);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) db->SetBit(i, j, rng.Bernoulli(0.5));
  }
  auto client = crypto::PirClient::Create(256, &rng);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  crypto::PirServer server(db, &pool);
  auto query = client->BuildQuery(3, cols, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Answer(*query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_PirServerAnswerPooled)->Arg(2)->Arg(4)->Arg(8);

void BM_BenalohEncryptBatch(benchmark::State& state) {
  auto* kp = BenalohKeys(256);
  Rng rng(14);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  std::vector<uint64_t> ms(64);
  for (size_t i = 0; i < ms.size(); ++i) ms[i] = i % 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kp->public_key().EncryptBatch(ms, &rng, &pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ms.size()));
}
BENCHMARK(BM_BenalohEncryptBatch)->Arg(1)->Arg(4);

// The same 64-message batch pinned to each Montgomery kernel tier (arg =
// MontKernel ladder index 0..3), the axis the fig9 kernel sweep records into
// BENCH_pir.json. Tiers above this CPU are skipped rather than silently
// clamped, so a row labeled "ifma" really ran IFMA.
void BM_BenalohEncryptBatchKernel(benchmark::State& state) {
  const auto requested = static_cast<MontKernel>(state.range(0));
  if (ClampToCpu(requested) != requested) {
    state.SkipWithError("kernel tier unsupported on this CPU");
    return;
  }
  auto* kp = BenalohKeys(256);
  Rng rng(15);
  ThreadPool pool(4);
  std::vector<uint64_t> ms(64);
  for (size_t i = 0; i < ms.size(); ++i) ms[i] = i % 2;
  const MontKernel restore = SetKernelOverride(requested);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp->public_key().EncryptBatch(ms, &rng, &pool));
  }
  SetKernelOverride(restore);
  state.SetLabel(KernelName(requested));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ms.size()));
}
BENCHMARK(BM_BenalohEncryptBatchKernel)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_PirDecode(benchmark::State& state) {
  const size_t rows = 4096;
  const size_t cols = 8;
  auto db = std::make_shared<crypto::PirDatabase>(rows, cols);
  Rng rng(12);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) db->SetBit(i, j, rng.Bernoulli(0.5));
  }
  auto client = crypto::PirClient::Create(256, &rng);
  crypto::PirServer server(db);
  auto query = client->BuildQuery(2, cols, &rng);
  auto response = server.Answer(*query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->DecodeResponse(*response));
  }
}
BENCHMARK(BM_PirDecode);

void BM_MillerRabinPrimality(benchmark::State& state) {
  Rng rng(13);
  BigInt p = bignum::RandomPrime(static_cast<size_t>(state.range(0)), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bignum::IsProbablePrime(p, &rng, 16));
  }
}
BENCHMARK(BM_MillerRabinPrimality)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
