// PIR answer-engine scaling: seed-style serial evaluation (per-bit GetBit,
// allocating MontMul per multiplication — the code path this repo shipped
// with) versus the zero-allocation kernel at 1..N threads.
//
// This bench starts the repo's perf trajectory: it emits a machine-readable
// BENCH_pir.json next to the human-readable table so successive PRs can be
// compared. Throughput is wall-clock modular multiplications per second for
// one whole PirServer::Answer call (including per-query setup).
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_KEYLEN   modulus bits                (default 256)
//   EMBELLISH_BENCH_ROWS     database rows               (default 4096)
//   EMBELLISH_BENCH_COLS     database columns            (default 16)
//   EMBELLISH_BENCH_TRIALS   timed repetitions per point (default 3)
//   EMBELLISH_BENCH_THREADS  max pool width, powers of 2 (default 8)
//   EMBELLISH_BENCH_JSON     output path                 (default BENCH_pir.json)

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cpuinfo.h"
#include "crypto/benaloh.h"

namespace {

using namespace embellish;
using bignum::BigInt;

// The Montgomery context exactly as the seed shipped it (commit aac5e1c):
// a generic limb loop with a freshly allocated accumulator and output vector
// per multiplication. Embedded here verbatim so the baseline stays pinned to
// the seed's behaviour no matter how the library kernel evolves.
class SeedMontgomery {
 public:
  explicit SeedMontgomery(const BigInt& modulus) : modulus_(modulus) {
    n_limbs_ = modulus.limbs();
    k_ = n_limbs_.size();
    uint64_t inv = n_limbs_[0];  // Newton iteration, correct mod 2^3
    for (int i = 0; i < 5; ++i) inv *= 2 - n_limbs_[0] * inv;
    n_prime_ = ~inv + 1;
    BigInt r = BigInt::PowerOfTwo(64 * k_);
    BigInt r_mod = r % modulus;
    r_mod_n_ = r_mod.limbs();
    r_mod_n_.resize(k_, 0);
    r2_mod_n_ = r_mod * r_mod % modulus;
  }

  const std::vector<uint64_t>& One() const { return r_mod_n_; }

  std::vector<uint64_t> MontMul(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) const {
    using u128 = unsigned __int128;
    const size_t k = k_;
    std::vector<uint64_t> t(k + 2, 0);
    for (size_t i = 0; i < k; ++i) {
      uint64_t ai = a[i];
      u128 carry = 0;
      for (size_t j = 0; j < k; ++j) {
        u128 cur =
            static_cast<u128>(ai) * b[j] + t[j] + static_cast<uint64_t>(carry);
        t[j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      u128 cur = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
      t[k] = static_cast<uint64_t>(cur);
      t[k + 1] = static_cast<uint64_t>(cur >> 64);

      uint64_t m_val = t[0] * n_prime_;
      u128 acc = static_cast<u128>(m_val) * n_limbs_[0] + t[0];
      carry = acc >> 64;
      for (size_t j = 1; j < k; ++j) {
        acc = static_cast<u128>(m_val) * n_limbs_[j] + t[j] +
              static_cast<uint64_t>(carry);
        t[j - 1] = static_cast<uint64_t>(acc);
        carry = acc >> 64;
      }
      acc = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
      t[k - 1] = static_cast<uint64_t>(acc);
      t[k] = t[k + 1] + static_cast<uint64_t>(acc >> 64);
      t[k + 1] = 0;
    }
    bool geq = t[k] != 0;
    if (!geq) {
      geq = true;
      for (size_t i = k; i-- > 0;) {
        if (t[i] != n_limbs_[i]) {
          geq = t[i] > n_limbs_[i];
          break;
        }
      }
    }
    std::vector<uint64_t> out(t.begin(), t.begin() + k);
    if (geq) {
      u128 borrow = 0;
      for (size_t i = 0; i < k; ++i) {
        u128 diff = static_cast<u128>(out[i]) - n_limbs_[i] -
                    static_cast<uint64_t>(borrow);
        out[i] = static_cast<uint64_t>(diff);
        borrow = (diff >> 64) != 0 ? 1 : 0;
      }
    }
    return out;
  }

  std::vector<uint64_t> ToMontgomery(const BigInt& a) const {
    BigInt reduced = a % modulus_;
    std::vector<uint64_t> limbs = reduced.limbs();
    limbs.resize(k_, 0);
    std::vector<uint64_t> r2 = r2_mod_n_.limbs();
    r2.resize(k_, 0);
    return MontMul(limbs, r2);
  }

  BigInt FromMontgomery(const std::vector<uint64_t>& a) const {
    std::vector<uint64_t> one(k_, 0);
    one[0] = 1;
    return BigInt::FromLimbs(MontMul(a, one));
  }

 private:
  BigInt modulus_;
  std::vector<uint64_t> n_limbs_;
  std::vector<uint64_t> r_mod_n_;
  BigInt r2_mod_n_;
  uint64_t n_prime_ = 0;
  size_t k_ = 0;
};

// The seed implementation of PirServer::Answer: one GetBit and one fully
// allocating MontMul per (row, column) pair.
crypto::PirResponse SeedStyleAnswer(const crypto::PirDatabase& db,
                                    const crypto::PirQuery& query) {
  SeedMontgomery mont(query.n);
  const size_t cols = db.cols();
  std::vector<std::vector<uint64_t>> q_mont(cols);
  std::vector<std::vector<uint64_t>> q2_mont(cols);
  for (size_t j = 0; j < cols; ++j) {
    q_mont[j] = mont.ToMontgomery(query.q[j]);
    q2_mont[j] = mont.MontMul(q_mont[j], q_mont[j]);
  }
  crypto::PirResponse response;
  response.gamma.reserve(db.rows());
  for (size_t i = 0; i < db.rows(); ++i) {
    std::vector<uint64_t> acc = mont.One();
    for (size_t j = 0; j < cols; ++j) {
      acc = mont.MontMul(acc, db.GetBit(i, j) ? q_mont[j] : q2_mont[j]);
    }
    response.gamma.push_back(mont.FromMontgomery(acc));
  }
  return response;
}

struct Measurement {
  std::string label;
  size_t threads = 1;
  double ms = 0.0;          // best-of-trials wall ms per Answer call
  double mops_per_sec = 0;  // modular multiplications per second / 1e6
};

double OpsPerSec(uint64_t ops, double ms) { return 1000.0 * ops / ms; }

}  // namespace

int main() {
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  const size_t rows = bench::EnvSize("EMBELLISH_BENCH_ROWS", 4096);
  // 8 columns = BktSz 8, the midpoint of the paper's Figure 7 sweep and the
  // width micro_crypto's BM_PirServerAnswer has always used.
  const size_t cols = bench::EnvSize("EMBELLISH_BENCH_COLS", 8);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 3);
  const size_t max_threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 8);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0') ? json_path_env
                                                           : "BENCH_pir.json";

  std::printf("== Figure 9: PIR answer engine scaling ==\n");
  std::printf("KeyLen %zu bits, matrix %zu x %zu (%llu modmuls/query), "
              "%zu trials, hardware threads %u\n\n",
              key_bits, rows, cols,
              static_cast<unsigned long long>(rows) * cols, trials,
              std::thread::hardware_concurrency());

  Rng rng(2026);
  auto db = std::make_shared<crypto::PirDatabase>(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) db->SetBit(i, j, rng.Bernoulli(0.5));
  }
  auto client = crypto::PirClient::Create(key_bits, &rng);
  if (!client.ok()) {
    std::fprintf(stderr, "client keygen failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto query = client->BuildQuery(cols / 2, cols, &rng);
  if (!query.ok()) {
    std::fprintf(stderr, "query build failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  const uint64_t ops = static_cast<uint64_t>(rows) * cols;

  std::vector<Measurement> results;

  // -- Seed-style serial baseline. --
  {
    Measurement m{"seed-serial", 1, 1e300, 0};
    crypto::PirResponse last;
    for (size_t t = 0; t < trials; ++t) {
      Stopwatch sw;
      last = SeedStyleAnswer(*db, *query);
      m.ms = std::min(m.ms, sw.ElapsedMillis());
    }
    m.mops_per_sec = OpsPerSec(ops, m.ms) / 1e6;
    results.push_back(m);
  }

  const double seed_ms = results[0].ms;

  // -- Zero-allocation engine at 1, 2, 4, ... max_threads. --
  std::vector<size_t> widths{1};
  for (size_t w = 2; w <= max_threads; w *= 2) widths.push_back(w);
  bool all_match = true;
  for (size_t width : widths) {
    ThreadPool pool(width);
    crypto::PirServer server(db, width > 1 ? &pool : nullptr);
    Measurement m{"engine", width, 1e300, 0};
    for (size_t t = 0; t < trials; ++t) {
      Stopwatch sw;
      auto response = server.Answer(*query);
      m.ms = std::min(m.ms, sw.ElapsedMillis());
      if (!response.ok()) {
        std::fprintf(stderr, "Answer failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      // Sanity: every configuration must decode to the target column's
      // actual bits — a wrong-but-well-formed response fails here.
      auto bits = client->DecodeResponse(*response);
      if (!bits.ok() || bits->size() != rows) {
        all_match = false;
        continue;
      }
      for (size_t i = 0; i < rows; ++i) {
        if ((*bits)[i] != db->GetBit(i, cols / 2)) all_match = false;
      }
    }
    m.mops_per_sec = OpsPerSec(ops, m.ms) / 1e6;
    results.push_back(m);
  }

  // -- Table. --
  std::vector<std::vector<std::string>> table_rows;
  for (const Measurement& m : results) {
    table_rows.push_back(
        {m.label, std::to_string(m.threads),
         StringPrintf("%.2f", m.ms), StringPrintf("%.3f", m.mops_per_sec),
         StringPrintf("%.2fx", seed_ms / m.ms)});
  }
  bench::PrintTable(
      {"path", "threads", "answer ms", "Mmul/s", "vs seed"}, table_rows);

  const Measurement& serial_engine = results[1];
  const Measurement& widest = results.back();
  bench::ShapeCheck(serial_engine.ms <= seed_ms * 1.05,
                    "1-thread engine no slower than seed path");
  bench::ShapeCheck(seed_ms / widest.ms >= 3.0,
                    "widest engine >= 3x seed throughput");
  bench::ShapeCheck(all_match, "all responses decode to the target column");

  // -- Cross-query batched sweep: AnswerBatch at Q = 1, 2, 8, 32. --
  // Queries come from several clients (distinct moduli), so each sweep
  // genuinely crosses Montgomery rings; every batched answer is checked
  // bit-identical to its serial Answer, and the run FAILS (exit 1) on any
  // mismatch. ops/query counts each query's own MontMuls plus its share of
  // the batch's row extractions — the shared work whose amortization is the
  // point of batching — and must be strictly decreasing in Q while the
  // four-Russians tables are on.
  struct BatchPoint {
    size_t q = 0;
    double ms = 1e300;
    crypto::PirBatchStats stats;
    double ops_per_query = 0;
  };
  std::vector<crypto::PirClient> batch_clients;
  for (size_t c = 0; c < 4; ++c) {
    auto bc = crypto::PirClient::Create(key_bits, &rng);
    if (!bc.ok()) {
      std::fprintf(stderr, "batch client keygen failed: %s\n",
                   bc.status().ToString().c_str());
      return 1;
    }
    batch_clients.push_back(std::move(*bc));
  }
  ThreadPool batch_pool(max_threads);
  crypto::PirServer batch_server(db, max_threads > 1 ? &batch_pool : nullptr);
  bool batch_identical = true;
  std::vector<BatchPoint> batch_points;
  for (size_t q_width : {1u, 2u, 8u, 32u}) {
    std::vector<crypto::PirQuery> queries;
    for (size_t i = 0; i < q_width; ++i) {
      auto bq = batch_clients[i % batch_clients.size()].BuildQuery(
          (cols / 2 + i) % cols, cols, &rng);
      if (!bq.ok()) {
        std::fprintf(stderr, "batch query build failed: %s\n",
                     bq.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*bq));
    }
    std::vector<crypto::PirResponse> serial;
    for (const auto& bq : queries) {
      auto r = batch_server.Answer(bq);
      if (!r.ok()) {
        std::fprintf(stderr, "serial Answer failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      serial.push_back(std::move(*r));
    }
    BatchPoint point;
    point.q = q_width;
    for (size_t t = 0; t < trials; ++t) {
      crypto::PirBatchStats stats;
      Stopwatch sw;
      auto batch = batch_server.AnswerBatch(
          std::span<const crypto::PirQuery>(queries), &stats);
      const double ms = sw.ElapsedMillis();
      if (!batch.ok()) {
        std::fprintf(stderr, "AnswerBatch failed: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
      if (ms < point.ms) {
        point.ms = ms;
        point.stats = stats;
      }
      for (size_t i = 0; i < q_width; ++i) {
        if ((*batch)[i].gamma != serial[i].gamma) batch_identical = false;
      }
    }
    point.ops_per_query =
        static_cast<double>(point.stats.mont_muls +
                            point.stats.rows_extracted) /
        q_width;
    batch_points.push_back(point);
  }

  std::printf("\n== Cross-query batched answering ==\n");
  std::vector<std::vector<std::string>> batch_rows;
  for (const BatchPoint& p : batch_points) {
    batch_rows.push_back(
        {std::to_string(p.q), StringPrintf("%.2f", p.ms),
         StringPrintf("%.2f", p.ms / p.q),
         std::to_string(p.stats.rows_extracted),
         StringPrintf("%.1f", p.ops_per_query),
         StringPrintf("%.3fx",
                      p.ops_per_query / batch_points[0].ops_per_query)});
  }
  bench::PrintTable({"Q", "batch ms", "ms/query", "rows extracted",
                     "ops/query", "vs Q=1"},
                    batch_rows);

  bool amortization_decreasing = true;
  for (size_t i = 1; i < batch_points.size(); ++i) {
    if (batch_points[i].ops_per_query >=
        batch_points[i - 1].ops_per_query) {
      amortization_decreasing = false;
    }
  }
  const bool tables_on =
      batch_points.back().stats.table_queries == batch_points.back().q;
  bench::ShapeCheck(batch_identical,
                    "every batched answer bit-identical to serial Answer");
  bench::ShapeCheck(!tables_on || amortization_decreasing,
                    "ops/query strictly decreasing in Q (tables on)");
  if (!batch_identical || (tables_on && !amortization_decreasing)) {
    std::fprintf(stderr, "batched-answer equivalence/amortization FAILED\n");
    return 1;
  }

  // -- Kernel tier sweep: the same Q=8 batch and one EncryptBatch, answered
  // at every Montgomery kernel tier this CPU supports (scalar, adx, avx2,
  // ifma). Responses and ciphertexts must be IDENTICAL across tiers — the
  // run fails (exit 1) on any divergence — and the table reports per-tier
  // throughput plus the measured SIMD lane fill. Nonces are drawn serially
  // in message order from a reseeded Rng, so the EncryptBatch comparison is
  // exact, not statistical.
  struct KernelPoint {
    MontKernel kernel;
    double batch_ms = 1e300;    // AnswerBatch, Q = 8
    double batch_mops = 0;      // mont_muls per second / 1e6
    double fill = 0;            // PirBatchStats::simd_fill()
    double enc_ms = 1e300;      // EncryptBatch of kEncMsgs messages
    double enc_per_sec = 0;
    bool match = true;          // identical to the scalar tier's outputs
  };
  constexpr size_t kEncMsgs = 64;
  const size_t kernel_q = 8;
  std::vector<crypto::PirQuery> kernel_queries;
  for (size_t i = 0; i < kernel_q; ++i) {
    auto bq = batch_clients[i % batch_clients.size()].BuildQuery(
        i % cols, cols, &rng);
    if (!bq.ok()) {
      std::fprintf(stderr, "kernel-sweep query build failed\n");
      return 1;
    }
    kernel_queries.push_back(std::move(*bq));
  }
  auto benaloh_keys =
      crypto::BenalohKeyPair::Generate({.key_bits = key_bits}, &rng);
  if (!benaloh_keys.ok()) {
    std::fprintf(stderr, "benaloh keygen failed: %s\n",
                 benaloh_keys.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> enc_messages(kEncMsgs);
  for (size_t i = 0; i < kEncMsgs; ++i) enc_messages[i] = i * 37 % 59049;

  const MontKernel restore_kernel = SelectedKernel();
  std::vector<KernelPoint> kernel_points;
  std::vector<std::vector<bignum::BigInt>> scalar_gammas;
  std::vector<crypto::BenalohCiphertext> scalar_cts;
  bool kernels_identical = true;
  for (MontKernel kernel : {MontKernel::kScalar, MontKernel::kAdx,
                            MontKernel::kAvx2, MontKernel::kIfma}) {
    if (ClampToCpu(kernel) != kernel) continue;  // tier above this CPU
    SetKernelOverride(kernel);
    KernelPoint point;
    point.kernel = kernel;
    crypto::PirBatchStats best_stats;
    std::vector<crypto::PirResponse> last_batch;
    for (size_t t = 0; t < trials; ++t) {
      crypto::PirBatchStats stats;
      Stopwatch sw;
      auto batch = batch_server.AnswerBatch(
          std::span<const crypto::PirQuery>(kernel_queries), &stats);
      const double ms = sw.ElapsedMillis();
      if (!batch.ok()) {
        std::fprintf(stderr, "kernel-sweep AnswerBatch failed\n");
        return 1;
      }
      if (ms < point.batch_ms) {
        point.batch_ms = ms;
        best_stats = stats;
      }
      last_batch = std::move(*batch);
    }
    point.batch_mops =
        OpsPerSec(best_stats.mont_muls, point.batch_ms) / 1e6;
    point.fill = best_stats.simd_fill();

    std::vector<crypto::BenalohCiphertext> cts;
    for (size_t t = 0; t < trials; ++t) {
      Rng enc_rng(4242);  // reseeded: identical nonces at every tier
      Stopwatch sw;
      auto enc = benaloh_keys->public_key().EncryptBatch(enc_messages,
                                                         &enc_rng,
                                                         &batch_pool);
      const double ms = sw.ElapsedMillis();
      if (!enc.ok()) {
        std::fprintf(stderr, "kernel-sweep EncryptBatch failed\n");
        return 1;
      }
      point.enc_ms = std::min(point.enc_ms, ms);
      cts = std::move(*enc);
    }
    point.enc_per_sec = OpsPerSec(kEncMsgs, point.enc_ms);

    if (kernel_points.empty()) {  // scalar tier: the reference outputs
      for (const auto& resp : last_batch) scalar_gammas.push_back(resp.gamma);
      scalar_cts = std::move(cts);
    } else {
      for (size_t i = 0; i < last_batch.size(); ++i) {
        if (last_batch[i].gamma != scalar_gammas[i]) point.match = false;
      }
      for (size_t i = 0; i < cts.size(); ++i) {
        if (!(cts[i] == scalar_cts[i])) point.match = false;
      }
      if (!point.match) kernels_identical = false;
    }
    kernel_points.push_back(point);
  }
  SetKernelOverride(restore_kernel);

  std::printf("\n== Montgomery kernel tiers (Q=%zu batch, %zu encrypts) ==\n",
              kernel_q, kEncMsgs);
  std::vector<std::vector<std::string>> kernel_rows;
  for (const KernelPoint& p : kernel_points) {
    kernel_rows.push_back(
        {KernelName(p.kernel), StringPrintf("%.2f", p.batch_ms),
         StringPrintf("%.3f", p.batch_mops),
         StringPrintf("%.3f", p.fill),
         StringPrintf("%.2f", p.enc_ms),
         StringPrintf("%.1f", p.enc_per_sec),
         StringPrintf("%.3fx", kernel_points[0].batch_ms / p.batch_ms),
         p.match ? "yes" : "NO"});
  }
  bench::PrintTable({"kernel", "batch ms", "Mmul/s", "lane fill",
                     "encrypt ms", "enc/s", "vs scalar", "identical"},
                    kernel_rows);
  bench::ShapeCheck(kernels_identical,
                    "every kernel tier bit-identical to the scalar tier");
  if (!kernels_identical) {
    std::fprintf(stderr, "cross-kernel divergence FAILED\n");
    return 1;
  }

  // -- JSON for the perf trajectory. --
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig9_pir_scaling\",\n"
               "  \"key_bits\": %zu,\n"
               "  \"rows\": %zu,\n"
               "  \"cols\": %zu,\n"
               "  \"modmuls_per_query\": %llu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seed_serial\": {\"ms\": %.3f, \"mops_per_sec\": %.4f},\n"
               "  \"engine\": [\n",
               key_bits, rows, cols, static_cast<unsigned long long>(ops),
               std::thread::hardware_concurrency(), seed_ms,
               results[0].mops_per_sec);
  for (size_t i = 1; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"ms\": %.3f, \"mops_per_sec\": "
                 "%.4f, \"speedup_vs_seed\": %.3f}%s\n",
                 m.threads, m.ms, m.mops_per_sec, seed_ms / m.ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"batch\": [\n");
  for (size_t i = 0; i < batch_points.size(); ++i) {
    const BatchPoint& p = batch_points[i];
    std::fprintf(
        f,
        "    {\"q\": %zu, \"ms\": %.3f, \"ms_per_query\": %.3f, "
        "\"mont_muls\": %llu, \"rows_extracted\": %llu, \"sweeps\": %llu, "
        "\"ops_per_query\": %.2f, \"amortization_vs_q1\": %.4f}%s\n",
        p.q, p.ms, p.ms / p.q,
        static_cast<unsigned long long>(p.stats.mont_muls),
        static_cast<unsigned long long>(p.stats.rows_extracted),
        static_cast<unsigned long long>(p.stats.sweeps), p.ops_per_query,
        p.ops_per_query / batch_points[0].ops_per_query,
        i + 1 < batch_points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"kernels\": [\n");
  for (size_t i = 0; i < kernel_points.size(); ++i) {
    const KernelPoint& p = kernel_points[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"batch_ms\": %.3f, \"batch_mops_per_sec\": "
        "%.4f, \"simd_fill\": %.4f, \"encrypt_ms\": %.3f, "
        "\"encrypts_per_sec\": %.1f, \"speedup_vs_scalar\": %.3f, "
        "\"identical_to_scalar\": %s}%s\n",
        KernelName(p.kernel), p.batch_ms, p.batch_mops, p.fill, p.enc_ms,
        p.enc_per_sec, kernel_points[0].batch_ms / p.batch_ms,
        p.match ? "true" : "false",
        i + 1 < kernel_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
