// EmbellishServer throughput under simulated multi-session traffic.
//
// Thousands of Zipf-distributed query streams (the paper's term-popularity
// assumption, applied to *query* recurrence) are driven through the framed
// request loop three ways:
//
//   serial       per-request dispatch, response cache off — the baseline a
//                per-call library user gets;
//   batched      HandleBatch over the thread pool, cache off — isolates the
//                batching win;
//   batched+cache the full pipeline: batched dispatch plus the bucket-set
//                keyed response cache, which short-circuits the recurring
//                co-bucket decoy sets session-consistent embellishment
//                produces.
//
// All three paths receive byte-identical request frames and must produce
// byte-identical responses — checked every run. Emits BENCH_server.json for
// the perf trajectory.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS     lexicon size                  (default 2000)
//   EMBELLISH_BENCH_DOCS      corpus documents              (default 300)
//   EMBELLISH_BENCH_KEYLEN    Benaloh modulus bits          (default 256)
//   EMBELLISH_BENCH_SESSIONS  concurrent sessions           (default 8)
//   EMBELLISH_BENCH_QUERIES   queries per session           (default 40)
//   EMBELLISH_BENCH_POOLSZ    distinct term sets / session  (default 12)
//   EMBELLISH_BENCH_THREADS   batch pool width              (default 4)
//   EMBELLISH_BENCH_JSON      output path        (default BENCH_server.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace embellish;

struct Workload {
  std::vector<server::SessionClient> clients;
  // frames[s][q]: the q-th request frame of session s (encoded once; both
  // paths replay the identical bytes).
  std::vector<std::vector<std::vector<uint8_t>>> frames;
  size_t total_requests = 0;
};

struct PathResult {
  std::string label;
  double ms = 0;
  double qps = 0;
  uint64_t cache_hits = 0;
  double hit_rate = 0;
  double speedup = 1.0;
  std::vector<std::vector<uint8_t>> responses;  // round-robin order
};

}  // namespace

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 2000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 300);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  const size_t sessions = bench::EnvSize("EMBELLISH_BENCH_SESSIONS", 8);
  const size_t queries = bench::EnvSize("EMBELLISH_BENCH_QUERIES", 40);
  const size_t pool_size = bench::EnvSize("EMBELLISH_BENCH_POOLSZ", 12);
  const size_t threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 4);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0')
          ? json_path_env
          : "BENCH_server.json";

  std::printf("== EmbellishServer throughput: %zu sessions x %zu queries "
              "(%zu distinct/session, Zipf s=1.0), KeyLen %zu ==\n\n",
              sessions, queries, pool_size, key_bits);

  bench::RetrievalFixture fixture =
      bench::RetrievalFixture::Build(terms, docs);
  core::BucketOrganization org = fixture.Buckets(/*bktsz=*/4);

  crypto::BenalohKeyOptions ko;
  ko.key_bits = key_bits;
  ko.r = 59049;

  // --- Build the workload: per-session Zipf-recurring query streams. ---
  Workload load;
  Rng rng(2026);
  auto indexed = fixture.built.index.IndexedTerms();
  corpus::ZipfSampler zipf(pool_size, 1.0);
  for (size_t s = 0; s < sessions; ++s) {
    auto client = server::SessionClient::Create(1000 + s, &org, ko,
                                                /*seed=*/900 + s);
    if (!client.ok()) {
      std::fprintf(stderr, "client %zu keygen failed: %s\n", s,
                   client.status().ToString().c_str());
      return 1;
    }
    load.clients.push_back(std::move(*client));

    std::vector<std::vector<wordnet::TermId>> pool(pool_size);
    for (auto& q : pool) {
      q = {indexed[rng.Uniform(indexed.size())],
           indexed[rng.Uniform(indexed.size())]};
    }
    std::vector<std::vector<uint8_t>> stream;
    stream.reserve(queries);
    for (size_t q = 0; q < queries; ++q) {
      auto frame = load.clients.back().QueryFrame(pool[zipf.Sample(&rng)]);
      if (!frame.ok()) {
        std::fprintf(stderr, "query formulation failed: %s\n",
                     frame.status().ToString().c_str());
        return 1;
      }
      stream.push_back(std::move(*frame));
    }
    load.total_requests += stream.size();
    load.frames.push_back(std::move(stream));
  }

  auto make_server = [&](size_t cache_capacity, ThreadPool* pool) {
    server::EmbellishServerOptions options;
    options.cache_capacity = cache_capacity;
    auto srv = std::make_unique<server::EmbellishServer>(
        &fixture.built.index, &org, nullptr, options, pool);
    for (server::SessionClient& c : load.clients) {
      srv->HandleFrame(c.HelloFrame());
    }
    return srv;
  };

  std::vector<PathResult> results;

  // --- serial: per-request dispatch, no cache. ---
  {
    auto srv = make_server(0, nullptr);
    PathResult r{.label = "serial"};
    Stopwatch sw;
    for (size_t q = 0; q < queries; ++q) {
      for (size_t s = 0; s < sessions; ++s) {
        r.responses.push_back(srv->HandleFrame(load.frames[s][q]));
      }
    }
    r.ms = sw.ElapsedMillis();
    results.push_back(std::move(r));
  }

  // --- batched (no cache) and batched+cache. ---
  ThreadPool pool(threads);
  for (bool cached : {false, true}) {
    auto srv = make_server(cached ? 4096 : 0, &pool);
    PathResult r{.label = cached ? "batched+cache" : "batched"};
    Stopwatch sw;
    for (size_t q = 0; q < queries; ++q) {
      std::vector<std::vector<uint8_t>> batch;
      batch.reserve(sessions);
      for (size_t s = 0; s < sessions; ++s) batch.push_back(load.frames[s][q]);
      auto responses = srv->HandleBatch(batch);
      for (auto& resp : responses) r.responses.push_back(std::move(resp));
    }
    r.ms = sw.ElapsedMillis();
    r.cache_hits = srv->stats().cache_hits;
    results.push_back(std::move(r));
  }

  // --- Correctness: all paths answered identical bytes identically. ---
  bool identical = true;
  for (const PathResult& r : results) {
    if (r.responses != results[0].responses) identical = false;
  }
  size_t ok_responses = 0;
  for (size_t i = 0; i < results[0].responses.size(); ++i) {
    auto frame = server::DecodeFrame(results[0].responses[i]);
    if (frame.ok() && frame->kind == server::FrameKind::kResult) {
      ++ok_responses;
    }
  }

  const double serial_ms = results[0].ms;
  std::vector<std::vector<std::string>> table;
  for (PathResult& r : results) {
    r.qps = 1000.0 * static_cast<double>(load.total_requests) / r.ms;
    r.hit_rate =
        static_cast<double>(r.cache_hits) / static_cast<double>(load.total_requests);
    r.speedup = serial_ms / r.ms;
    table.push_back({r.label, StringPrintf("%.1f", r.ms),
                     StringPrintf("%.1f", r.qps),
                     StringPrintf("%.0f%%", 100.0 * r.hit_rate),
                     StringPrintf("%.2fx", r.speedup)});
  }
  bench::PrintTable({"path", "total ms", "queries/s", "hit rate", "vs serial"},
                    table);
  std::printf("\n%zu requests/path, %zu answered kResult frames/path\n",
              load.total_requests, ok_responses);

  bench::ShapeCheck(identical, "all paths produce bit-identical responses");
  bench::ShapeCheck(ok_responses == load.total_requests,
                    "every request answered with a result frame");
  bench::ShapeCheck(results.back().speedup >= 2.0,
                    "batched pipeline with warm cache >= 2x serial dispatch");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_server_throughput\",\n"
               "  \"sessions\": %zu,\n"
               "  \"queries_per_session\": %zu,\n"
               "  \"distinct_per_session\": %zu,\n"
               "  \"key_bits\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"requests\": %zu,\n"
               "  \"paths\": [\n",
               sessions, queries, pool_size, key_bits, threads,
               load.total_requests);
  for (size_t i = 0; i < results.size(); ++i) {
    const PathResult& r = results[i];
    std::fprintf(f,
                 "    {\"path\": \"%s\", \"ms\": %.2f, \"qps\": %.2f, "
                 "\"cache_hits\": %llu, \"hit_rate\": %.4f, "
                 "\"speedup_vs_serial\": %.3f}%s\n",
                 r.label.c_str(), r.ms, r.qps,
                 static_cast<unsigned long long>(r.cache_hits), r.hit_rate,
                 r.speedup, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  // Exit status reflects correctness only: the speedup shape-check above is
  // informational, so a noisy shared runner cannot fail CI on wall clock.
  return identical && ok_responses == load.total_requests ? 0 : 1;
}
