// Reproduces Figure 7: performance impact of BktSz with the query size
// fixed at 12 terms. Four panels: (a) server I/O, (b) server CPU,
// (c) network traffic, (d) user CPU — PR vs PIR.
//
// Absolute milliseconds differ from the paper's 2010 testbed; the shapes
// under comparison are listed in the shape-check footer.

#include <cmath>

#include "perf_common.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 30000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 1500);
  const size_t trials = bench::EnvSize("EMBELLISH_BENCH_TRIALS", 8);
  const size_t key_bits = bench::EnvSize("EMBELLISH_BENCH_KEYLEN", 256);
  constexpr size_t kQuerySize = 12;

  std::printf("== Figure 7: Performance Impact of BktSz (query size 12) ==\n");
  std::printf(
      "lexicon %s terms, corpus %s docs, %zu queries/point, KeyLen %zu\n"
      "(paper: WSJ 172,961 docs, 1,000 queries/point)\n\n",
      WithThousandsSeparators(terms).c_str(),
      WithThousandsSeparators(docs).c_str(), trials, key_bits);

  auto fixture = bench::RetrievalFixture::Build(terms, docs);
  std::printf("index: %zu searchable terms\n\n",
              fixture.built.index.term_count());

  const size_t bktsz_values[] = {2, 4, 8, 12, 16, 20, 24};
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::PerfPoint> points;
  for (size_t bktsz : bktsz_values) {
    points.push_back(bench::MeasurePoint(fixture, bktsz, kQuerySize, trials,
                                         key_bits, 1000 + bktsz));
    rows.push_back(bench::PointRow(std::to_string(bktsz), points.back()));
  }
  bench::PrintTable(bench::PointHeader("BktSz"), rows);
  std::printf("\n");

  const auto& first = points.front();
  const auto& last = points.back();
  bool io_close = true;
  bool traffic_gap = true;
  bool pr_user_below = true;
  for (const auto& p : points) {
    io_close &= std::abs(p.pr.io_ms - p.pir.io_ms) <
                0.25 * std::max(p.pr.io_ms, p.pir.io_ms);
    traffic_gap &= p.pir.traffic_kb > 4.0 * p.pr.traffic_kb;
    pr_user_below &= p.pr.user_cpu_ms < p.pir.user_cpu_ms;
  }
  bench::ShapeCheck(io_close,
                    "server I/O virtually identical for PR and PIR (7a)");
  bench::ShapeCheck(traffic_gap,
                    "PR traffic an order of magnitude below PIR (7c)");
  bench::ShapeCheck(
      last.pr.traffic_kb < first.pr.traffic_kb * 9.0,
      "PR traffic grows sublinearly in BktSz (7c; 12x BktSz -> <9x traffic)");
  bench::ShapeCheck(pr_user_below, "PR user CPU below PIR at every BktSz (7d)");
  bench::ShapeCheck(last.pir.traffic_kb > first.pir.traffic_kb,
                    "PIR traffic grows with BktSz via padding (7c)");
  return 0;
}
