// Live-ingest latency: top-k serving latency on a catalog-backed server in
// steady state vs while background reshards and document deltas are
// installing new epochs. The snapshot design's promise is that cutovers
// cost readers one atomic pointer swap and an engine re-pin — never a
// stall behind the build — so the mid-reshard tail should sit within
// noise of steady state. Emits BENCH_ingest.json.
//
// Correctness gates the exit code: every response (steady and mid-reshard)
// must decode as a top-k result, and the counted answer-path gauge must
// show zero builds on the serving thread. The p95 ratio shape-check is
// informational, like the other perf benches, so a noisy or 1-core runner
// cannot fail CI on wall clock.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS     lexicon size                  (default 2000)
//   EMBELLISH_BENCH_DOCS      corpus documents              (default 300)
//   EMBELLISH_BENCH_QUERIES   steady-phase samples          (default 400)
//   EMBELLISH_BENCH_THREADS   catalog build pool width      (default 4)
//   EMBELLISH_BENCH_RESHARDS  cutover cycles to sample over (default 6)
//   EMBELLISH_BENCH_JSON      output path       (default BENCH_ingest.json)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace embellish;

struct Percentiles {
  double p50_us = 0;
  double p95_us = 0;
  size_t n = 0;
};

Percentiles Summarize(std::vector<int64_t> samples) {
  Percentiles p;
  p.n = samples.size();
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50_us = static_cast<double>(samples[samples.size() / 2]);
  p.p95_us = static_cast<double>(
      samples[static_cast<size_t>(0.95 * static_cast<double>(
                                             samples.size() - 1))]);
  return p;
}

}  // namespace

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 2000);
  const size_t docs = bench::EnvSize("EMBELLISH_BENCH_DOCS", 300);
  const size_t steady_samples = bench::EnvSize("EMBELLISH_BENCH_QUERIES", 400);
  const size_t threads = bench::EnvSize("EMBELLISH_BENCH_THREADS", 4);
  const size_t reshards = bench::EnvSize("EMBELLISH_BENCH_RESHARDS", 6);
  const char* json_path_env = std::getenv("EMBELLISH_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0')
          ? json_path_env
          : "BENCH_ingest.json";

  std::printf("== Live-ingest latency: %zu steady samples, %zu cutover "
              "cycles, build pool width %zu ==\n\n",
              steady_samples, reshards, threads);

  bench::RetrievalFixture fixture = bench::RetrievalFixture::Build(terms, docs);
  auto org = std::make_shared<core::BucketOrganization>(
      fixture.Buckets(/*bktsz=*/4));

  ThreadPool pool(threads);
  index::IndexCatalogOptions copts;
  copts.sharding.shard_count = 2;
  auto catalog =
      index::IndexCatalog::Create(fixture.corpus_data, org, copts, &pool);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // The serving thread deliberately gets NO pool: shard fan-out runs
  // serially, so the builds' pool usage cannot contend with the latency
  // probe and the measurement isolates the snapshot/cutover overhead.
  server::EmbellishServerOptions options;
  options.cache_capacity = 0;  // every request recomputes: no replay masking
  server::EmbellishServer srv(catalog->get(), options);

  // A replayable pool of plaintext top-k requests (no crypto in the probe:
  // the quantity under test is snapshot acquisition + evaluation, not
  // Benaloh exponentiations).
  Rng rng(2028);
  std::vector<std::vector<uint8_t>> requests;
  for (auto& q : fixture.RandomQueries(/*count=*/32, /*query_size=*/2, &rng)) {
    requests.push_back(server::EncodeFrame(server::FrameKind::kTopKQuery,
                                           /*session=*/9,
                                           server::EncodeTopKQuery(10, q)));
  }

  std::atomic<bool> decode_ok{true};
  auto probe = [&](size_t i) {
    Stopwatch sw;
    auto response = srv.HandleFrame(requests[i % requests.size()]);
    const int64_t us = sw.ElapsedMicros();
    auto frame = server::DecodeFrame(response);
    if (!frame.ok() || frame->kind != server::FrameKind::kTopKResult) {
      decode_ok.store(false, std::memory_order_relaxed);
    }
    return us;
  };

  // Warm-up: first contact builds the engine bundle for epoch 1.
  for (size_t i = 0; i < requests.size(); ++i) probe(i);

  // ---- Steady state: no builds anywhere ----
  std::vector<int64_t> steady;
  steady.reserve(steady_samples);
  for (size_t i = 0; i < steady_samples; ++i) steady.push_back(probe(i));

  // ---- Mid-reshard: cutover cycles racing the probe ----
  // Each cycle ingests a small delta and flips the shard count 2 <-> 4;
  // the probe thread samples continuously while any build is in flight.
  auto delta_docs = [&](uint64_t salt) {
    auto indexed = fixture.built.index.IndexedTerms();
    std::vector<corpus::Document> delta(3);
    for (size_t d = 0; d < delta.size(); ++d) {
      for (size_t i = 0; i < 30; ++i) {
        delta[d].tokens.push_back(
            indexed[(salt + 17 * d + 3 * i) % indexed.size()]);
      }
    }
    return delta;
  };
  std::atomic<bool> building{true};
  std::thread builder([&] {
    for (size_t r = 0; r < reshards; ++r) {
      auto delta = (*catalog)->ApplyDelta(delta_docs(7 * r + 1));
      if (!delta.ok()) {
        std::fprintf(stderr, "delta: %s\n",
                     delta.status().ToString().c_str());
        decode_ok.store(false, std::memory_order_relaxed);
        break;
      }
      index::ShardingOptions next;
      next.shard_count = (r % 2 == 0) ? 4 : 2;
      auto widened = (*catalog)->Reshard(next);
      if (!widened.ok()) {
        std::fprintf(stderr, "reshard: %s\n",
                     widened.status().ToString().c_str());
        decode_ok.store(false, std::memory_order_relaxed);
        break;
      }
    }
    building.store(false, std::memory_order_release);
  });
  std::vector<int64_t> mid;
  size_t i = 0;
  while (building.load(std::memory_order_acquire)) {
    mid.push_back(probe(i++));
    if (mid.size() >= 200000) break;  // runaway guard on a stalled builder
  }
  builder.join();

  const Percentiles steady_p = Summarize(std::move(steady));
  const Percentiles mid_p = Summarize(std::move(mid));
  const double ratio =
      steady_p.p95_us > 0 ? mid_p.p95_us / steady_p.p95_us : 0;

  server::ServerStats stats = srv.stats();
  bench::PrintTable(
      {"phase", "samples", "p50 us", "p95 us"},
      {{"steady", std::to_string(steady_p.n),
        StringPrintf("%.0f", steady_p.p50_us),
        StringPrintf("%.0f", steady_p.p95_us)},
       {"mid-reshard", std::to_string(mid_p.n),
        StringPrintf("%.0f", mid_p.p50_us),
        StringPrintf("%.0f", mid_p.p95_us)}});
  std::printf("\ncutovers: %llu epoch swaps, %llu docs ingested, reshard "
              "build time %.1f ms total\n",
              static_cast<unsigned long long>(stats.epoch_swaps),
              static_cast<unsigned long long>(stats.delta_docs_ingested),
              static_cast<double>(stats.reshard_micros) / 1000.0);
  std::printf("top-k shard trips: %llu visited, %llu skipped by impact "
              "bounds\n",
              static_cast<unsigned long long>(stats.topk_shards_visited),
              static_cast<unsigned long long>(stats.topk_shards_skipped));

  bench::ShapeCheck(decode_ok.load(),
                    "every probe response (steady and mid-reshard) decoded "
                    "as a top-k result");
  bench::ShapeCheck(stats.answer_path_builds == 0,
                    "zero index/layout builds on the serving thread across "
                    "all cutovers (counted invariant)");
  bench::ShapeCheck(mid_p.n > 0,
                    "the probe actually sampled while builds were in flight");
  // The acceptance target from the snapshot design: the mid-reshard p95
  // within 25% of steady. Informational, not exit-gating — wall clock on a
  // shared 1-core runner is not a correctness statement.
  bench::ShapeCheck(ratio <= 1.25,
                    StringPrintf("mid-reshard p95 within 25%% of steady "
                                 "(ratio %.3f)",
                                 ratio));

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_ingest\",\n"
               "  \"docs\": %zu,\n"
               "  \"reshard_cycles\": %zu,\n"
               "  \"epoch_swaps\": %llu,\n"
               "  \"delta_docs_ingested\": %llu,\n"
               "  \"reshard_micros\": %llu,\n"
               "  \"answer_path_builds\": %llu,\n"
               "  \"steady\": {\"n\": %zu, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f},\n"
               "  \"mid_reshard\": {\"n\": %zu, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f},\n"
               "  \"p95_ratio\": %.3f\n"
               "}\n",
               docs, reshards,
               static_cast<unsigned long long>(stats.epoch_swaps),
               static_cast<unsigned long long>(stats.delta_docs_ingested),
               static_cast<unsigned long long>(stats.reshard_micros),
               static_cast<unsigned long long>(stats.answer_path_builds),
               steady_p.n, steady_p.p50_us, steady_p.p95_us, mid_p.n,
               mid_p.p50_us, mid_p.p95_us, ratio);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  // Exit status reflects correctness only: decodable answers and the
  // counted zero-builds-on-the-answer-path invariant.
  return (decode_ok.load() && stats.answer_path_builds == 0) ? 0 : 1;
}
