// Reproduces Figure 2: the distribution of term specificity over the noun
// dictionary (117,798 nouns; range 0..18; ~one-third of terms at 7).
//
// Paper series: count (x1000) of terms per specificity value.

#include "bench_util.h"

using namespace embellish;

int main() {
  const size_t terms = bench::EnvSize("EMBELLISH_BENCH_TERMS", 117798);
  std::printf("== Figure 2: Distribution of Term Specificity ==\n");
  std::printf("lexicon: %s terms (paper: 117,798 WordNet nouns)\n\n",
              WithThousandsSeparators(terms).c_str());

  auto fixture = bench::LexiconFixture::Build(terms);
  std::printf("generated: %s terms, %s synsets (paper: 117,798 / 82,115)\n\n",
              WithThousandsSeparators(fixture.lexicon.term_count()).c_str(),
              WithThousandsSeparators(fixture.lexicon.synset_count()).c_str());

  auto hist = fixture.specificity.TermHistogram();
  std::vector<std::vector<std::string>> rows;
  size_t total = 0;
  size_t mode = 0;
  for (size_t s = 0; s < hist.size(); ++s) {
    total += hist[s];
    if (hist[s] > hist[mode]) mode = s;
  }
  for (size_t s = 0; s < hist.size(); ++s) {
    double thousands = static_cast<double>(hist[s]) / 1000.0;
    std::string bar(static_cast<size_t>(
                        60.0 * static_cast<double>(hist[s]) /
                        static_cast<double>(hist[mode])),
                    '#');
    rows.push_back({std::to_string(s), StringPrintf("%.2f", thousands),
                    StringPrintf("%5.1f%%", 100.0 * static_cast<double>(hist[s]) /
                                                static_cast<double>(total)),
                    bar});
  }
  bench::PrintTable({"specificity", "count (x1000)", "share", ""}, rows);
  std::printf("\n");

  const double mode_share =
      static_cast<double>(hist[mode]) / static_cast<double>(total);
  bench::ShapeCheck(mode == 7, "mode of the distribution is specificity 7");
  bench::ShapeCheck(mode_share > 0.2 && mode_share < 0.45,
                    StringPrintf("mode holds ~1/3 of terms (measured %.0f%%)",
                                 mode_share * 100));
  bench::ShapeCheck(fixture.specificity.max_specificity() <= 18,
                    "specificity range tops out at 18");
  bench::ShapeCheck(hist[0] <= 2 && (hist.size() < 2 || hist[1] <= 8),
                    "near-empty head (1 synset at 0, 4 at 1 in the paper)");
  return 0;
}
