// google-benchmark microbenchmarks for the retrieval substrate: index
// construction, top-k evaluation, Algorithm-1 sequencing, Algorithm-2
// bucketization and semantic-distance queries.

#include <benchmark/benchmark.h>

#include "embellish.h"

namespace {

using namespace embellish;

struct Fixture {
  wordnet::WordNetDatabase lexicon;
  corpus::Corpus corp;
  index::BuildOutput built;
  core::SpecificityMap spec;
  core::SequencerResult seq;

  static const Fixture& Get() {
    static Fixture* f = [] {
      wordnet::SyntheticWordNetOptions wo;
      wo.target_term_count = 20000;
      wo.seed = 9;
      auto lex = wordnet::GenerateSyntheticWordNet(wo);
      corpus::SyntheticCorpusOptions co;
      co.num_docs = 2000;
      co.mean_doc_tokens = 120;
      co.seed = 10;
      auto corp = corpus::GenerateSyntheticCorpus(*lex, co);
      auto built = index::BuildIndex(*corp, {});
      auto* out = new Fixture{std::move(lex).value(), std::move(corp).value(),
                              std::move(built).value(), {}, {}};
      out->spec = core::SpecificityMap::FromHypernymDepth(out->lexicon);
      out->seq = core::SequenceDictionary(out->lexicon);
      return out;
    }();
    return *f;
  }
};

void BM_IndexBuild(benchmark::State& state) {
  const auto& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::BuildIndex(f.corp, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.corp.TotalTokens()));
}
BENCHMARK(BM_IndexBuild);

void BM_TopKEvaluation(benchmark::State& state) {
  const auto& f = Fixture::Get();
  Rng rng(1);
  auto terms = f.built.index.IndexedTerms();
  std::vector<wordnet::TermId> query;
  for (int64_t i = 0; i < state.range(0); ++i) {
    query.push_back(terms[rng.Uniform(terms.size())]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::EvaluateTopK(f.built.index, query, 20));
  }
}
BENCHMARK(BM_TopKEvaluation)->Arg(4)->Arg(12)->Arg(40);

void BM_FullEvaluation(benchmark::State& state) {
  const auto& f = Fixture::Get();
  Rng rng(2);
  auto terms = f.built.index.IndexedTerms();
  std::vector<wordnet::TermId> query;
  for (int i = 0; i < 12; ++i) query.push_back(terms[rng.Uniform(terms.size())]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::EvaluateFull(f.built.index, query));
  }
}
BENCHMARK(BM_FullEvaluation);

void BM_SequenceDictionary(benchmark::State& state) {
  const auto& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SequenceDictionary(f.lexicon));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.lexicon.term_count()));
}
BENCHMARK(BM_SequenceDictionary);

void BM_FormBuckets(benchmark::State& state) {
  const auto& f = Fixture::Get();
  core::BucketizerOptions o;
  o.bucket_size = static_cast<size_t>(state.range(0));
  o.segment_size = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FormBuckets(f.seq, f.spec, o));
  }
}
BENCHMARK(BM_FormBuckets)->Arg(4)->Arg(24);

void BM_SpecificityMap(benchmark::State& state) {
  const auto& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SpecificityMap::FromHypernymDepth(f.lexicon));
  }
}
BENCHMARK(BM_SpecificityMap);

void BM_SemanticTermDistance(benchmark::State& state) {
  const auto& f = Fixture::Get();
  core::SemanticDistanceCalculator calc(&f.lexicon);
  Rng rng(3);
  for (auto _ : state) {
    wordnet::TermId a =
        static_cast<wordnet::TermId>(rng.Uniform(f.lexicon.term_count()));
    wordnet::TermId b =
        static_cast<wordnet::TermId>(rng.Uniform(f.lexicon.term_count()));
    benchmark::DoNotOptimize(calc.TermDistance(a, b, 48.0));
  }
}
BENCHMARK(BM_SemanticTermDistance);

void BM_QueryEmbellishment(benchmark::State& state) {
  const auto& f = Fixture::Get();
  core::BucketizerOptions o;
  o.bucket_size = 8;
  o.segment_size = 512;
  static auto* org = new core::BucketOrganization(
      std::move(core::FormBuckets(f.seq, f.spec, o)).value());
  Rng rng(4);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  static auto* keys = new crypto::BenalohKeyPair(
      std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
  core::QueryEmbellisher embellisher(org, &keys->public_key());
  auto terms = f.built.index.IndexedTerms();
  std::vector<wordnet::TermId> query;
  for (int i = 0; i < 12; ++i) query.push_back(terms[rng.Uniform(terms.size())]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(embellisher.Embellish(query, &rng));
  }
}
BENCHMARK(BM_QueryEmbellishment);

void BM_ZipfSample(benchmark::State& state) {
  corpus::ZipfSampler zipf(100000, 1.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
