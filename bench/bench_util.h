// Shared plumbing for the figure-reproduction bench harnesses: environment
// knobs, fixture construction, and aligned table printing.
//
// Environment variables (all optional):
//   EMBELLISH_BENCH_TERMS   lexicon size         (default 117798 for §5.1,
//                                                 30000 for §5.2)
//   EMBELLISH_BENCH_DOCS    corpus documents     (default 1500)
//   EMBELLISH_BENCH_TRIALS  repetitions per data point
//   EMBELLISH_BENCH_KEYLEN  crypto key bits      (default 256)

#ifndef EMBELLISH_BENCH_BENCH_UTIL_H_
#define EMBELLISH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "embellish.h"

namespace embellish::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0' && parsed > 0)
             ? static_cast<size_t>(parsed)
             : fallback;
}

/// \brief Prints one aligned row; columns are pre-formatted strings.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i] + 2, cells[i].c_str());
  }
  std::printf("\n");
}

/// \brief Prints a full aligned table with a header rule.
inline void PrintTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<int> widths(header.size(), 0);
  for (size_t i = 0; i < header.size(); ++i) {
    widths[i] = static_cast<int>(header[i].size());
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], static_cast<int>(row[i].size()));
    }
  }
  PrintRow(header, widths);
  std::string rule;
  for (size_t i = 0; i < header.size(); ++i) {
    rule += std::string(static_cast<size_t>(widths[i]), '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) PrintRow(row, widths);
}

/// \brief Emits a machine-checkable shape assertion line.
inline void ShapeCheck(bool ok, const std::string& description) {
  std::printf("# shape-check: %s  [%s]\n", description.c_str(),
              ok ? "PASS" : "FAIL");
}

/// \brief The §5.1 fixture: full-scale synthetic lexicon, specificity map,
///        Algorithm 1 sequences.
struct LexiconFixture {
  wordnet::WordNetDatabase lexicon;
  core::SpecificityMap specificity;
  core::SequencerResult sequences;
  std::vector<wordnet::TermId> all_terms;

  static LexiconFixture Build(size_t terms, uint64_t seed = 2010) {
    wordnet::SyntheticWordNetOptions wo;
    wo.target_term_count = terms;
    wo.seed = seed;
    auto lex = wordnet::GenerateSyntheticWordNet(wo);
    if (!lex.ok()) {
      std::fprintf(stderr, "lexicon generation failed: %s\n",
                   lex.status().ToString().c_str());
      std::exit(1);
    }
    LexiconFixture f{std::move(lex).value(), {}, {}, {}};
    f.specificity = core::SpecificityMap::FromHypernymDepth(f.lexicon);
    f.sequences = core::SequenceDictionary(f.lexicon);
    f.all_terms.resize(f.lexicon.term_count());
    for (wordnet::TermId t = 0; t < f.lexicon.term_count(); ++t) {
      f.all_terms[t] = t;
    }
    return f;
  }

  core::BucketOrganization Buckets(size_t bktsz, size_t segsz) const {
    core::BucketizerOptions o;
    o.bucket_size = bktsz;
    o.segment_size = segsz;
    auto org = core::FormBuckets(sequences, specificity, o);
    if (!org.ok()) {
      std::fprintf(stderr, "bucketize failed: %s\n",
                   org.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(org).value();
  }
};

/// \brief The §5.2 fixture: lexicon + corpus + impact-ordered index.
struct RetrievalFixture {
  wordnet::WordNetDatabase lexicon;
  corpus::Corpus corpus_data;
  index::BuildOutput built;
  core::SpecificityMap specificity;
  core::SequencerResult sequences;

  static RetrievalFixture Build(size_t terms, size_t docs,
                                uint64_t seed = 77) {
    wordnet::SyntheticWordNetOptions wo;
    wo.target_term_count = terms;
    wo.seed = seed;
    auto lex = wordnet::GenerateSyntheticWordNet(wo);
    if (!lex.ok()) std::exit(1);
    corpus::SyntheticCorpusOptions co;
    co.num_docs = docs;
    co.mean_doc_tokens = 150;
    co.num_topics = 64;
    co.terms_per_topic = std::min<size_t>(1500, terms / 4);
    co.seed = seed + 1;
    auto corp = corpus::GenerateSyntheticCorpus(*lex, co);
    if (!corp.ok()) std::exit(1);
    auto built = index::BuildIndex(*corp, {});
    if (!built.ok()) std::exit(1);
    RetrievalFixture f{std::move(lex).value(), std::move(corp).value(),
                       std::move(built).value(), {}, {}};
    f.specificity = core::SpecificityMap::FromHypernymDepth(f.lexicon);
    f.sequences = core::SequenceDictionary(f.lexicon);
    return f;
  }

  core::BucketOrganization Buckets(size_t bktsz) const {
    core::BucketizerOptions o;
    o.bucket_size = bktsz;
    o.segment_size = SIZE_MAX;  // clamped to the maximum N/BktSz
    auto org = core::FormBuckets(sequences, specificity, o);
    if (!org.ok()) std::exit(1);
    return std::move(org).value();
  }

  /// Random queries over indexed terms (the paper forms queries from the
  /// searchable dictionary at random).
  std::vector<std::vector<wordnet::TermId>> RandomQueries(
      size_t count, size_t query_size, Rng* rng) const {
    auto terms = built.index.IndexedTerms();
    std::vector<std::vector<wordnet::TermId>> queries(count);
    for (auto& q : queries) {
      for (size_t i = 0; i < query_size; ++i) {
        q.push_back(terms[rng->Uniform(terms.size())]);
      }
    }
    return queries;
  }
};

}  // namespace embellish::bench

#endif  // EMBELLISH_BENCH_BENCH_UTIL_H_
