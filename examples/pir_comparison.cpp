// Side-by-side run of the two private retrieval schemes of Section 4 on the
// same workload: PR (Benaloh-encrypted indicators, Algorithms 3-5) vs the
// KO-PIR alternate method. Verifies both return the identical ranking and
// prints the four Section 5.2 cost metrics for each.
//
// Usage: pir_comparison [terms] [docs] [bktsz] [query_size] [queries]

#include <cstdio>
#include <cstdlib>

#include "embellish.h"

using namespace embellish;

int main(int argc, char** argv) {
  const size_t terms = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t docs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
  const size_t bktsz = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;
  const size_t qsize = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 12;
  const size_t queries = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 5;

  std::printf(
      "=== PR vs PIR on one workload (terms=%zu docs=%zu BktSz=%zu "
      "query=%zu x%zu) ===\n\n",
      terms, docs, bktsz, qsize, queries);

  // Pipeline setup.
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = terms;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  corpus::SyntheticCorpusOptions co;
  co.num_docs = docs;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;

  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = bktsz;
  bo.segment_size = SIZE_MAX;
  auto org = core::FormBuckets(sequences, specificity, bo);
  if (!org.ok()) return 1;
  auto layout = storage::StorageLayout::Build(
      built->index, org->buckets(), storage::LayoutPolicy::kBucketColocated,
      {});

  Rng rng(9);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) return 1;
  core::PrivateRetrievalClient pr_client(&*org, &keys->public_key(),
                                         &keys->private_key());
  core::PrivateRetrievalServer pr_server(&built->index, &*org, &layout);
  core::PirRetrievalServer pir_server(&built->index, &*org, &layout);
  auto pir_client = core::PirRetrievalClient::Create(&*org, 256, &rng);
  if (!pir_client.ok()) return 1;

  auto indexed = built->index.IndexedTerms();
  core::RetrievalCosts pr_total, pir_total;
  size_t agreements = 0;
  for (size_t qi = 0; qi < queries; ++qi) {
    std::vector<wordnet::TermId> query;
    for (size_t i = 0; i < qsize; ++i) {
      query.push_back(indexed[rng.Uniform(indexed.size())]);
    }
    core::RetrievalCosts pr_costs, pir_costs;
    auto pr = core::RunPrivateQuery(pr_client, pr_server, keys->public_key(),
                                    query, 20, &rng, &pr_costs);
    auto pir = pir_client->RunQuery(pir_server, query, 20, &rng, &pir_costs);
    if (!pr.ok() || !pir.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    bool agree = pr->size() == pir->size();
    for (size_t i = 0; agree && i < pr->size(); ++i) {
      agree = (*pr)[i] == (*pir)[i];
    }
    agreements += agree;
    pr_total.Add(pr_costs);
    pir_total.Add(pir_costs);
  }

  auto avg = [&](double v) { return v / static_cast<double>(queries); };
  std::printf("%-22s %12s %12s\n", "metric (avg/query)", "PR", "PIR");
  std::printf("%-22s %12.1f %12.1f\n", "server I/O (ms, model)",
              avg(pr_total.server_io_ms), avg(pir_total.server_io_ms));
  std::printf("%-22s %12.2f %12.2f\n", "server CPU (ms)",
              avg(pr_total.server_cpu_ms), avg(pir_total.server_cpu_ms));
  std::printf("%-22s %12.1f %12.1f\n", "traffic down (KB)",
              avg(static_cast<double>(pr_total.downlink_bytes)) / 1024.0,
              avg(static_cast<double>(pir_total.downlink_bytes)) / 1024.0);
  std::printf("%-22s %12.1f %12.1f\n", "traffic up (KB)",
              avg(static_cast<double>(pr_total.uplink_bytes)) / 1024.0,
              avg(static_cast<double>(pir_total.uplink_bytes)) / 1024.0);
  std::printf("%-22s %12.2f %12.2f\n", "user CPU (ms)",
              avg(pr_total.user_cpu_ms), avg(pir_total.user_cpu_ms));
  std::printf("\nrankings agree on %zu/%zu queries\n", agreements, queries);
  return agreements == queries ? 0 : 1;
}
