// Remote shards walkthrough: one coordinator process, N shard slices with R
// replicas each, loopback TCP — the replicated deployment the
// ShardCoordinator exists for.
//
//   1. build the shared substrate (lexicon, buckets, corpus, index);
//   2. bind one loopback listener per (slice, replica), then fork N*R
//      children; each child stands up an EmbellishServer in slice mode
//      (shard_slice = s) and serves frames on its inherited listener —
//      replicas of a slice are byte-identical by construction;
//   3. the parent connects a TcpTransport per replica, groups them per
//      slice, and handshakes a ShardCoordinator (liveness + topology
//      discovery + epoch fencing) with bounded retry and partial-result
//      mode enabled;
//   4. a session registers and runs PR, plaintext top-k and PIR queries
//      through the coordinator — and the response bytes are compared
//      against a local monolithic server (they must be identical);
//   5. one replica of every slice is killed mid-run: the coordinator fails
//      over to the survivors and keeps answering bit-identically;
//   6. the remaining replica of one slice is killed too — the whole group
//      is down, so the PR fan-out answers with a typed kDegradedResult
//      naming the missing slice, and a PIR request addressed to a
//      surviving slice still answers;
//   7. the children are reaped and the accounting printed.

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "embellish.h"

using namespace embellish;

namespace {

constexpr size_t kShards = 3;
constexpr size_t kReplicas = 2;

int RunShardProcess(int listen_fd, size_t shard,
                    const index::InvertedIndex& index,
                    const core::BucketOrganization& buckets) {
  server::EmbellishServerOptions options;
  options.shard_slice = shard;
  options.shard_slice_count = kShards;
  server::EmbellishServer slice(&index, &buckets, nullptr, options);
  server::ShardEndpoint endpoint(&slice, shard);
  (void)server::ServeShardConnections(listen_fd, &endpoint);
  return 0;
}

}  // namespace

int main() {
  // ---- 1. Shared substrate (deterministic, so every process agrees) ----
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = 2000;
  wo.seed = 42;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;
  corpus::SyntheticCorpusOptions co;
  co.num_docs = 300;
  co.seed = 43;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;
  std::printf("substrate: %zu terms, %zu buckets, %zu docs\n",
              lexicon->term_count(), buckets->bucket_count(),
              corp->document_count());

  // ---- 2. One listener + one forked process per (slice, replica) ----
  // children[s * kReplicas + r] serves replica r of slice s.
  std::vector<pid_t> children(kShards * kReplicas, -1);
  std::vector<uint16_t> ports(kShards * kReplicas, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      uint16_t port = 0;
      auto listen_fd = server::ListenOnLoopback(&port);
      if (!listen_fd.ok()) {
        std::fprintf(stderr, "listen: %s\n",
                     listen_fd.status().ToString().c_str());
        return 1;
      }
      pid_t pid = fork();
      if (pid < 0) return 1;
      if (pid == 0) {
        // Child: serve this slice until killed.
        _exit(RunShardProcess(*listen_fd, s, built->index, *buckets));
      }
      close(*listen_fd);  // the child owns its listener now
      children[s * kReplicas + r] = pid;
      ports[s * kReplicas + r] = port;
      std::printf("slice %zu replica %zu: pid %d serving 127.0.0.1:%u\n", s,
                  r, pid, port);
    }
  }
  auto reap = [&](size_t s, size_t r) {
    kill(children[s * kReplicas + r], SIGKILL);
    waitpid(children[s * kReplicas + r], nullptr, 0);
    children[s * kReplicas + r] = -1;
  };

  // ---- 3. Coordinator over replica groups of TCP transports ----
  std::vector<std::unique_ptr<server::TcpTransport>> transports;
  std::vector<std::vector<server::ShardTransport*>> groups(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      auto transport =
          server::TcpTransport::Connect("127.0.0.1", ports[s * kReplicas + r]);
      if (!transport.ok()) {
        std::fprintf(stderr, "connect slice %zu replica %zu: %s\n", s, r,
                     transport.status().ToString().c_str());
        return 1;
      }
      transports.push_back(std::move(*transport));
      groups[s].push_back(transports.back().get());
    }
  }
  server::ShardCoordinatorOptions copts;
  copts.max_attempts = 2;             // one failover hop per logical trip
  copts.allow_partial_results = true; // a lost group degrades, not darkens
  server::ShardCoordinator coordinator(groups, copts);
  Status handshake = coordinator.Handshake();
  if (!handshake.ok()) {
    std::fprintf(stderr, "handshake: %s\n", handshake.ToString().c_str());
    return 1;
  }
  std::printf("coordinator: %zu slices x %zu replicas handshaken, %zu "
              "buckets advertised\n",
              coordinator.shard_count(), coordinator.replica_count(0),
              coordinator.bucket_count());

  // ---- 4. Queries through the coordinator, checked against a local
  //         monolithic server ----
  server::EmbellishServer mono(&built->index, &*buckets, nullptr);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  auto session = server::SessionClient::Create(7, &*buckets, ko, /*seed=*/9);
  if (!session.ok()) return 1;
  mono.HandleFrame(session->HelloFrame());
  auto hello_resp = coordinator.HandleFrame(session->HelloFrame());
  auto hello_frame = server::DecodeFrame(hello_resp);
  if (!hello_frame.ok() ||
      hello_frame->kind != server::FrameKind::kHelloOk) {
    std::fprintf(stderr, "hello failed\n");
    return 1;
  }

  auto terms = built->index.IndexedTerms();
  std::vector<wordnet::TermId> genuine{terms[10], terms[25]};
  bool identical = true;

  auto pr_request = session->QueryFrame(genuine);
  if (!pr_request.ok()) return 1;
  auto pr_reference = mono.HandleFrame(*pr_request);
  auto pr_remote = coordinator.HandleFrame(*pr_request);
  identical = identical && pr_remote == pr_reference;
  auto top = session->DecodeResultFrame(pr_remote, /*k=*/5);
  if (top.ok() && !top->empty()) {
    std::printf("PR over %zu processes: top doc %u (score %llu)\n",
                kShards * kReplicas, (*top)[0].doc,
                static_cast<unsigned long long>((*top)[0].score));
  }

  auto topk_request = server::EncodeFrame(
      server::FrameKind::kTopKQuery, 7, server::EncodeTopKQuery(5, genuine));
  auto topk_reference = mono.HandleFrame(topk_request);
  identical = identical && coordinator.HandleFrame(topk_request) ==
                               topk_reference;

  Rng rng(11);
  auto slot = buckets->Locate(terms[10]);
  auto pir_client = crypto::PirClient::Create(256, &rng);
  if (!slot.ok() || !pir_client.ok()) return 1;
  auto pir_query = pir_client->BuildQuery(
      slot->slot, buckets->bucket(slot->bucket).size(), &rng);
  if (!pir_query.ok()) return 1;
  auto pir_request = [&](size_t shard) {
    return server::EncodeFrame(
        server::FrameKind::kPirQuery, 7,
        server::EncodePirQuery(coordinator.PirBucketField(shard, slot->bucket),
                               *pir_query));
  };
  auto pir_resp = server::DecodeFrame(coordinator.HandleFrame(pir_request(0)));
  std::printf("byte-identity vs local monolithic server: %s; PIR(slice 0): "
              "%s\n", identical ? "PASS" : "FAIL",
              pir_resp.ok() && pir_resp->kind == server::FrameKind::kPirResult
                  ? "answered" : "failed");

  // ---- 5. Kill replica 0 of every slice: failover, same bytes ----
  for (size_t s = 0; s < kShards; ++s) reap(s, 0);
  bool survived = coordinator.HandleFrame(*pr_request) == pr_reference &&
                  coordinator.HandleFrame(topk_request) == topk_reference;
  identical = identical && survived;
  auto mid = coordinator.stats();
  std::printf("replica 0 of every slice killed -> answers unchanged: %s "
              "(%llu retries, %llu failovers)\n", survived ? "PASS" : "FAIL",
              static_cast<unsigned long long>(mid.retries),
              static_cast<unsigned long long>(mid.failovers));

  // ---- 6. Kill slice 1's last replica: typed degraded answer, surviving
  //         slices unaffected ----
  reap(1, 1);
  auto degraded = coordinator.HandleFrame(*pr_request);
  auto degraded_frame = server::DecodeFrame(degraded);
  bool degraded_ok = false;
  if (degraded_frame.ok() &&
      degraded_frame->kind == server::FrameKind::kDegradedResult) {
    auto partial = server::DecodeDegradedResult(degraded_frame->payload);
    if (partial.ok() && partial->missing.size() == 1) {
      degraded_ok = true;
      std::printf("slice 1 fully down -> kDegradedResult, merged without "
                  "slice %u\n", partial->missing[0]);
    }
  }
  if (!degraded_ok) {
    std::fprintf(stderr, "expected a typed degraded result\n");
    identical = false;
  }
  auto survivor = server::DecodeFrame(coordinator.HandleFrame(pir_request(2)));
  std::printf("PIR to surviving slice 2: %s\n",
              survivor.ok() && survivor->kind == server::FrameKind::kPirResult
                  ? "still answered" : "failed");

  // ---- 7. Teardown + accounting ----
  transports.clear();  // closes connections so children's serve loops idle
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      if (children[s * kReplicas + r] >= 0) reap(s, r);
    }
  }
  auto stats = coordinator.stats();
  std::printf("coordinator: %llu frames, %llu shard trips, %llu shard "
              "failures, %llu retries, %llu failovers, %llu degraded, "
              "%llu errors\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.shard_trips),
              static_cast<unsigned long long>(stats.shard_failures),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.degraded_answers),
              static_cast<unsigned long long>(stats.errors));
  return identical ? 0 : 1;
}
