// Remote shards walkthrough: one coordinator process, N shard processes,
// loopback TCP — the deployment the ShardCoordinator exists for.
//
//   1. build the shared substrate (lexicon, buckets, corpus, index);
//   2. bind one loopback listener per shard, then fork N children; each
//      child stands up an EmbellishServer in slice mode (shard_slice = s)
//      and serves frames on its inherited listener;
//   3. the parent connects a TcpTransport per shard, handshakes a
//      ShardCoordinator (liveness + topology discovery + epoch fencing);
//   4. a session registers and runs PR, plaintext top-k and PIR queries
//      through the coordinator — and the response bytes are compared
//      against a local monolithic server (they must be identical);
//   5. one shard is killed to show the failure semantics: the PR fan-out
//      answers with a typed Unavailable error, a PIR request addressed to a
//      surviving shard still answers;
//   6. the children are reaped and the accounting printed.

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "embellish.h"

using namespace embellish;

namespace {

constexpr size_t kShards = 3;

int RunShardProcess(int listen_fd, size_t shard,
                    const index::InvertedIndex& index,
                    const core::BucketOrganization& buckets) {
  server::EmbellishServerOptions options;
  options.shard_slice = shard;
  options.shard_slice_count = kShards;
  server::EmbellishServer slice(&index, &buckets, nullptr, options);
  server::ShardEndpoint endpoint(&slice, shard);
  (void)server::ServeShardConnections(listen_fd, &endpoint);
  return 0;
}

}  // namespace

int main() {
  // ---- 1. Shared substrate (deterministic, so every process agrees) ----
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = 2000;
  wo.seed = 42;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;
  corpus::SyntheticCorpusOptions co;
  co.num_docs = 300;
  co.seed = 43;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;
  std::printf("substrate: %zu terms, %zu buckets, %zu docs\n",
              lexicon->term_count(), buckets->bucket_count(),
              corp->document_count());

  // ---- 2. One listener + one forked shard process per slice ----
  std::vector<pid_t> children;
  std::vector<uint16_t> ports;
  for (size_t s = 0; s < kShards; ++s) {
    uint16_t port = 0;
    auto listen_fd = server::ListenOnLoopback(&port);
    if (!listen_fd.ok()) {
      std::fprintf(stderr, "listen: %s\n",
                   listen_fd.status().ToString().c_str());
      return 1;
    }
    pid_t pid = fork();
    if (pid < 0) return 1;
    if (pid == 0) {
      // Child: serve this slice until killed.
      _exit(RunShardProcess(*listen_fd, s, built->index, *buckets));
    }
    close(*listen_fd);  // the child owns its listener now
    children.push_back(pid);
    ports.push_back(port);
    std::printf("shard %zu: pid %d serving 127.0.0.1:%u\n", s, pid, port);
  }

  // ---- 3. Coordinator over TCP transports ----
  std::vector<std::unique_ptr<server::TcpTransport>> transports;
  std::vector<server::ShardTransport*> raw;
  for (size_t s = 0; s < kShards; ++s) {
    auto transport = server::TcpTransport::Connect("127.0.0.1", ports[s]);
    if (!transport.ok()) {
      std::fprintf(stderr, "connect shard %zu: %s\n", s,
                   transport.status().ToString().c_str());
      return 1;
    }
    transports.push_back(std::move(*transport));
    raw.push_back(transports.back().get());
  }
  server::ShardCoordinator coordinator(raw);
  Status handshake = coordinator.Handshake();
  if (!handshake.ok()) {
    std::fprintf(stderr, "handshake: %s\n", handshake.ToString().c_str());
    return 1;
  }
  std::printf("coordinator: %zu shards handshaken, %zu buckets advertised\n",
              coordinator.shard_count(), coordinator.bucket_count());

  // ---- 4. Queries through the coordinator, checked against a local
  //         monolithic server ----
  server::EmbellishServer mono(&built->index, &*buckets, nullptr);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  auto session = server::SessionClient::Create(7, &*buckets, ko, /*seed=*/9);
  if (!session.ok()) return 1;
  mono.HandleFrame(session->HelloFrame());
  auto hello_resp = coordinator.HandleFrame(session->HelloFrame());
  auto hello_frame = server::DecodeFrame(hello_resp);
  if (!hello_frame.ok() ||
      hello_frame->kind != server::FrameKind::kHelloOk) {
    std::fprintf(stderr, "hello failed\n");
    return 1;
  }

  auto terms = built->index.IndexedTerms();
  std::vector<wordnet::TermId> genuine{terms[10], terms[25]};
  bool identical = true;

  auto pr_request = session->QueryFrame(genuine);
  if (!pr_request.ok()) return 1;
  auto pr_remote = coordinator.HandleFrame(*pr_request);
  identical = identical && pr_remote == mono.HandleFrame(*pr_request);
  auto top = session->DecodeResultFrame(pr_remote, /*k=*/5);
  if (top.ok() && !top->empty()) {
    std::printf("PR over %zu processes: top doc %u (score %llu)\n", kShards,
                (*top)[0].doc,
                static_cast<unsigned long long>((*top)[0].score));
  }

  auto topk_request = server::EncodeFrame(
      server::FrameKind::kTopKQuery, 7, server::EncodeTopKQuery(5, genuine));
  auto topk_remote = coordinator.HandleFrame(topk_request);
  identical = identical && topk_remote == mono.HandleFrame(topk_request);

  Rng rng(11);
  auto slot = buckets->Locate(terms[10]);
  auto pir_client = crypto::PirClient::Create(256, &rng);
  if (!slot.ok() || !pir_client.ok()) return 1;
  auto pir_query = pir_client->BuildQuery(
      slot->slot, buckets->bucket(slot->bucket).size(), &rng);
  if (!pir_query.ok()) return 1;
  auto pir_request = [&](size_t shard) {
    return server::EncodeFrame(
        server::FrameKind::kPirQuery, 7,
        server::EncodePirQuery(coordinator.PirBucketField(shard, slot->bucket),
                               *pir_query));
  };
  auto pir_resp = server::DecodeFrame(coordinator.HandleFrame(pir_request(0)));
  std::printf("byte-identity vs local monolithic server: %s; PIR(shard 0): "
              "%s\n", identical ? "PASS" : "FAIL",
              pir_resp.ok() && pir_resp->kind == server::FrameKind::kPirResult
                  ? "answered" : "failed");

  // ---- 5. Kill one shard: typed errors, surviving shards unaffected ----
  kill(children[1], SIGKILL);
  waitpid(children[1], nullptr, 0);
  auto degraded = coordinator.HandleFrame(*pr_request);
  auto degraded_frame = server::DecodeFrame(degraded);
  if (degraded_frame.ok() &&
      degraded_frame->kind == server::FrameKind::kError) {
    Status transported;
    if (server::DecodeError(degraded_frame->payload, &transported).ok()) {
      std::printf("shard 1 killed -> PR fan-out answers: %s\n",
                  transported.ToString().c_str());
    }
  }
  auto survivor = server::DecodeFrame(coordinator.HandleFrame(pir_request(2)));
  std::printf("PIR to surviving shard 2: %s\n",
              survivor.ok() && survivor->kind == server::FrameKind::kPirResult
                  ? "still answered" : "failed");

  // ---- 6. Teardown + accounting ----
  transports.clear();  // closes connections so children's serve loops idle
  for (size_t s = 0; s < kShards; ++s) {
    if (s == 1) continue;  // already reaped
    kill(children[s], SIGKILL);
    waitpid(children[s], nullptr, 0);
  }
  auto stats = coordinator.stats();
  std::printf("coordinator: %llu frames, %llu shard trips, %llu shard "
              "failures, %llu errors\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.shard_trips),
              static_cast<unsigned long long>(stats.shard_failures),
              static_cast<unsigned long long>(stats.errors));
  return identical ? 0 : 1;
}
