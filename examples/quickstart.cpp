// Quickstart: the complete private-search pipeline in ~100 lines.
//
//   1. build a lexicon (here: the curated mini-WordNet);
//   2. derive specificity, sequence the dictionary (Algorithm 1), form
//      buckets (Algorithm 2);
//   3. index a corpus with impact-ordered inverted lists;
//   4. generate Benaloh keys, embellish a query (Algorithm 3);
//   5. let the server compute encrypted scores (Algorithm 4);
//   6. post-filter client-side (Algorithm 5) and print the ranking.

#include <cstdio>

#include "embellish.h"

using namespace embellish;

int main() {
  // ---- 1. Lexicon ----
  auto lexicon = wordnet::BuildMiniWordNet();
  if (!lexicon.ok()) {
    std::fprintf(stderr, "lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  std::printf("lexicon: %zu terms, %zu synsets\n", lexicon->term_count(),
              lexicon->synset_count());

  // ---- 2. Bucket organization ----
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bucketizer_options;
  bucketizer_options.bucket_size = 4;
  bucketizer_options.segment_size = 16;
  auto buckets = core::FormBuckets(sequences, specificity, bucketizer_options);
  if (!buckets.ok()) {
    std::fprintf(stderr, "buckets: %s\n", buckets.status().ToString().c_str());
    return 1;
  }
  std::printf("buckets: %zu of size %zu\n", buckets->bucket_count(),
              buckets->nominal_bucket_size());

  // ---- 3. A small corpus: hand-written "documents" over the lexicon ----
  const char* articles[] = {
      "accelerated radiation therapy is the standard therapy for "
      "osteosarcoma a cancer of the bone",
      "the amaranthaceae family shows water soaked tissues when flooding "
      "damages the plant",
      "divers track residual nitrogen time after deep water dives",
      "moustille is served with active dry yeast bread and wine",
      "osteosarcoma therapy combines radiation with surgery",
      "terrorism reports named abu sayyaf in the huntsville case",
      "the sign of the zodiac and saturn fascinate astronomy fans",
      "water flooding soaked the tissues of the american chestnut",
  };
  std::vector<corpus::Document> docs;
  for (const char* text : articles) {
    corpus::Document doc;
    for (const std::string& token : text::Analyze(text)) {
      wordnet::TermId id = lexicon->FindTerm(token);
      if (id != wordnet::kInvalidTermId) doc.tokens.push_back(id);
    }
    docs.push_back(std::move(doc));
  }
  corpus::Corpus corp(std::move(docs));
  auto built = index::BuildIndex(corp, {});
  if (!built.ok()) {
    std::fprintf(stderr, "index: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %zu terms over %zu documents\n\n",
              built->index.term_count(), built->index.document_count());

  // ---- 4. Keys + private query ----
  Rng rng(2010);
  crypto::BenalohKeyOptions key_options;  // 512-bit modulus, r = 3^10
  auto keys = crypto::BenalohKeyPair::Generate(key_options, &rng);
  if (!keys.ok()) {
    std::fprintf(stderr, "keygen: %s\n", keys.status().ToString().c_str());
    return 1;
  }

  auto layout = storage::StorageLayout::Build(
      built->index, buckets->buckets(),
      storage::LayoutPolicy::kBucketColocated, {});
  core::PrivateRetrievalClient client(&*buckets, &keys->public_key(),
                                      &keys->private_key());
  core::PrivateRetrievalServer server(&built->index, &*buckets, &layout);

  std::vector<std::string> words{"osteosarcoma", "radiation", "therapy"};
  std::vector<wordnet::TermId> genuine;
  for (const auto& w : words) genuine.push_back(lexicon->FindTerm(w));
  std::printf("genuine query: osteosarcoma radiation therapy\n");

  core::RetrievalCosts costs;
  auto query = client.FormulateQuery(genuine, &rng, &costs);
  if (!query.ok()) {
    std::fprintf(stderr, "embellish: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("embellished query as the server sees it (%zu terms):\n ",
              query->entries.size());
  for (const auto& e : query->entries) {
    std::printf(" '%s'", lexicon->term(e.term).text.c_str());
  }
  std::printf("\n\n");

  // ---- 5 + 6. Server processing and client post-filtering ----
  auto encrypted = server.Process(*query, keys->public_key(), &costs);
  if (!encrypted.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 encrypted.status().ToString().c_str());
    return 1;
  }
  auto ranked = client.PostFilter(*encrypted, 5, &costs);
  if (!ranked.ok()) {
    std::fprintf(stderr, "post-filter: %s\n",
                 ranked.status().ToString().c_str());
    return 1;
  }

  std::printf("top results (doc: score | text):\n");
  for (const auto& sd : *ranked) {
    std::printf("  doc %u: %llu | %.72s...\n", sd.doc,
                static_cast<unsigned long long>(sd.score), articles[sd.doc]);
  }
  std::printf(
      "\ncosts: server I/O %.1f ms (model), server CPU %.2f ms, uplink %llu "
      "B, downlink %llu B, user CPU %.2f ms\n",
      costs.server_io_ms, costs.server_cpu_ms,
      static_cast<unsigned long long>(costs.uplink_bytes),
      static_cast<unsigned long long>(costs.downlink_bytes),
      costs.user_cpu_ms);

  // Sanity: the private ranking equals the plaintext ranking (Claim 1).
  auto reference = index::EvaluateFull(built->index, genuine);
  if (reference.size() > 5) reference.resize(5);
  bool match = reference.size() == ranked->size();
  for (size_t i = 0; match && i < reference.size(); ++i) {
    match = reference[i].doc == (*ranked)[i].doc &&
            reference[i].score == (*ranked)[i].score;
  }
  std::printf("Claim 1 check (private == plaintext ranking): %s\n",
              match ? "PASS" : "FAIL");
  return match ? 0 : 1;
}
