// Async deployment walkthrough: the whole client-to-shard path with no
// thread ever blocked on a socket.
//
//   1. build the shared substrate (lexicon, buckets, corpus, index);
//   2. fork one shard-slice process per slice, each serving frames on an
//      inherited loopback listener (classic blocking serve loop — the
//      children model remote machines we don't control);
//   3. the parent starts ONE EventLoop and connects a MultiplexedTransport
//      per slice — a single non-blocking socket each, correlated by
//      (epoch, seq) — then handshakes a ShardCoordinator over them;
//   4. coordinator.ServeAsync() puts an AsyncFrontEnd on the same loop:
//      client frames arrive via epoll, dispatch workers run the fan-out,
//      and every shard trip is submit-and-await on the loop thread;
//   5. a plain blocking TCP client talks to the front end and the response
//      bytes are compared against a local monolithic server — identical —
//      and the coordinator must report blocking_io_trips == 0;
//   6. one slice is killed mid-run: the PR fan-out answers with a typed
//      kDegradedResult naming the missing slice, and PIR to a surviving
//      slice still answers — all still without a blocking shard trip;
//   7. teardown in dependency order: client, front end, transports,
//      children, loop.

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "embellish.h"

using namespace embellish;

namespace {

constexpr size_t kShards = 3;

int RunShardProcess(int listen_fd, size_t shard,
                    const index::InvertedIndex& index,
                    const core::BucketOrganization& buckets) {
  server::EmbellishServerOptions options;
  options.shard_slice = shard;
  options.shard_slice_count = kShards;
  server::EmbellishServer slice(&index, &buckets, nullptr, options);
  server::ShardEndpoint endpoint(&slice, shard);
  (void)server::ServeShardConnections(listen_fd, &endpoint);
  return 0;
}

// A deliberately ordinary client: blocking socket, framed write, framed
// read. Everything asynchronous lives on the server side of this socket.
std::vector<uint8_t> RoundTripFrame(int fd, const std::vector<uint8_t>& frame) {
  if (!server::WriteAll(fd, frame.data(), frame.size(),
                        server::MonotonicMillis() + 5000)
           .ok()) {
    return {};
  }
  auto response = server::ReadFrameFd(fd, server::kMaxTransportFrameBytes,
                                      server::MonotonicMillis() + 30000);
  return response.ok() ? *std::move(response) : std::vector<uint8_t>{};
}

}  // namespace

int main() {
  // ---- 1. Shared substrate (deterministic, so every process agrees) ----
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = 2000;
  wo.seed = 42;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;
  corpus::SyntheticCorpusOptions co;
  co.num_docs = 300;
  co.seed = 43;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;
  std::printf("substrate: %zu terms, %zu buckets, %zu docs\n",
              lexicon->term_count(), buckets->bucket_count(),
              corp->document_count());

  // ---- 2. One listener + one forked process per slice ----
  std::vector<pid_t> children(kShards, -1);
  std::vector<uint16_t> ports(kShards, 0);
  for (size_t s = 0; s < kShards; ++s) {
    uint16_t port = 0;
    auto listen_fd = server::ListenOnLoopback(&port);
    if (!listen_fd.ok()) {
      std::fprintf(stderr, "listen: %s\n",
                   listen_fd.status().ToString().c_str());
      return 1;
    }
    pid_t pid = fork();
    if (pid < 0) return 1;
    if (pid == 0) {
      _exit(RunShardProcess(*listen_fd, s, built->index, *buckets));
    }
    close(*listen_fd);  // the child owns its listener now
    children[s] = pid;
    ports[s] = port;
    std::printf("slice %zu: pid %d serving 127.0.0.1:%u\n", s, pid, port);
  }
  auto reap = [&](size_t s) {
    kill(children[s], SIGKILL);
    waitpid(children[s], nullptr, 0);
    children[s] = -1;
  };

  // ---- 3. One event loop, one multiplexed connection per slice ----
  auto loop = server::EventLoop::Create();
  if (!loop.ok() || !(*loop)->Start().ok()) {
    std::fprintf(stderr, "event loop failed to start\n");
    return 1;
  }
  bool identical = true;
  {
    std::vector<std::unique_ptr<server::MultiplexedTransport>> transports;
    std::vector<server::ShardTransport*> raw;
    for (size_t s = 0; s < kShards; ++s) {
      auto transport = server::MultiplexedTransport::Connect(
          "127.0.0.1", ports[s], loop->get());
      if (!transport.ok()) {
        std::fprintf(stderr, "connect slice %zu: %s\n", s,
                     transport.status().ToString().c_str());
        return 1;
      }
      transports.push_back(std::move(*transport));
      raw.push_back(transports.back().get());
    }
    server::ShardCoordinatorOptions copts;
    copts.allow_partial_results = true;  // a lost slice degrades, not darkens
    server::ShardCoordinator coordinator(raw, copts);
    Status handshake = coordinator.Handshake();
    if (!handshake.ok()) {
      std::fprintf(stderr, "handshake: %s\n", handshake.ToString().c_str());
      return 1;
    }
    std::printf("coordinator: %zu slices handshaken over multiplexed "
                "sockets, %zu buckets advertised\n",
                coordinator.shard_count(), coordinator.bucket_count());

    // ---- 4. The async front end, on the same loop as the transports ----
    uint16_t front_port = 0;
    auto front_listen = server::ListenOnLoopback(&front_port);
    if (!front_listen.ok()) return 1;
    auto front_end = coordinator.ServeAsync(*front_listen, loop->get());
    if (!front_end.ok()) {
      std::fprintf(stderr, "ServeAsync: %s\n",
                   front_end.status().ToString().c_str());
      return 1;
    }
    std::printf("async front end on 127.0.0.1:%u\n", front_port);

    // ---- 5. A blocking TCP client, checked against a local monolithic
    //         server ----
    server::EmbellishServer mono(&built->index, &*buckets, nullptr);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    auto session = server::SessionClient::Create(7, &*buckets, ko, /*seed=*/9);
    if (!session.ok()) return 1;
    mono.HandleFrame(session->HelloFrame());

    auto client_fd = server::ConnectWithDeadline("127.0.0.1", front_port, 5000);
    if (!client_fd.ok() || !server::SetBlocking(*client_fd).ok()) {
      std::fprintf(stderr, "client connect failed\n");
      return 1;
    }
    auto hello_frame =
        server::DecodeFrame(RoundTripFrame(*client_fd, session->HelloFrame()));
    if (!hello_frame.ok() ||
        hello_frame->kind != server::FrameKind::kHelloOk) {
      std::fprintf(stderr, "hello through the front end failed\n");
      return 1;
    }

    auto terms = built->index.IndexedTerms();
    std::vector<wordnet::TermId> genuine{terms[10], terms[25]};

    auto pr_request = session->QueryFrame(genuine);
    if (!pr_request.ok()) return 1;
    auto pr_reference = mono.HandleFrame(*pr_request);
    auto pr_remote = RoundTripFrame(*client_fd, *pr_request);
    identical = identical && pr_remote == pr_reference;
    auto top = session->DecodeResultFrame(pr_remote, /*k=*/5);
    if (top.ok() && !top->empty()) {
      std::printf("PR through the async front end: top doc %u (score %llu)\n",
                  (*top)[0].doc,
                  static_cast<unsigned long long>((*top)[0].score));
    }

    auto topk_request = server::EncodeFrame(
        server::FrameKind::kTopKQuery, 7, server::EncodeTopKQuery(5, genuine));
    auto topk_reference = mono.HandleFrame(topk_request);
    identical =
        identical && RoundTripFrame(*client_fd, topk_request) == topk_reference;

    Rng rng(11);
    auto slot = buckets->Locate(terms[10]);
    auto pir_client = crypto::PirClient::Create(256, &rng);
    if (!slot.ok() || !pir_client.ok()) return 1;
    auto pir_query = pir_client->BuildQuery(
        slot->slot, buckets->bucket(slot->bucket).size(), &rng);
    if (!pir_query.ok()) return 1;
    auto pir_request = [&](size_t shard) {
      return server::EncodeFrame(
          server::FrameKind::kPirQuery, 7,
          server::EncodePirQuery(
              coordinator.PirBucketField(shard, slot->bucket), *pir_query));
    };
    auto pir_resp =
        server::DecodeFrame(RoundTripFrame(*client_fd, pir_request(0)));

    auto mid = coordinator.stats();
    std::printf(
        "byte-identity vs local monolithic server: %s; PIR(slice 0): %s; "
        "shard trips: %llu async, %llu blocking\n",
        identical ? "PASS" : "FAIL",
        pir_resp.ok() && pir_resp->kind == server::FrameKind::kPirResult
            ? "answered"
            : "failed",
        static_cast<unsigned long long>(mid.async_io_trips),
        static_cast<unsigned long long>(mid.blocking_io_trips));
    // The acceptance invariant of this deployment shape: with every shard
    // behind a multiplexed transport, no fan-out ever blocks on a socket.
    if (mid.blocking_io_trips != 0 || mid.async_io_trips == 0) {
      std::fprintf(stderr, "expected a fully async shard path\n");
      identical = false;
    }

    // ---- 6. Kill slice 1: typed degraded answer, survivors unaffected ----
    reap(1);
    auto degraded_frame =
        server::DecodeFrame(RoundTripFrame(*client_fd, *pr_request));
    bool degraded_ok = false;
    if (degraded_frame.ok() &&
        degraded_frame->kind == server::FrameKind::kDegradedResult) {
      auto partial = server::DecodeDegradedResult(degraded_frame->payload);
      if (partial.ok() && partial->missing.size() == 1) {
        degraded_ok = true;
        std::printf("slice 1 killed -> kDegradedResult, merged without "
                    "slice %u\n", partial->missing[0]);
      }
    }
    if (!degraded_ok) {
      std::fprintf(stderr, "expected a typed degraded result\n");
      identical = false;
    }
    auto survivor =
        server::DecodeFrame(RoundTripFrame(*client_fd, pir_request(2)));
    std::printf("PIR to surviving slice 2: %s\n",
                survivor.ok() &&
                        survivor->kind == server::FrameKind::kPirResult
                    ? "still answered"
                    : "failed");

    // ---- 7. Teardown in dependency order ----
    close(*client_fd);
    auto fstats = (*front_end)->stats();
    (*front_end)->Shutdown();
    auto stats = coordinator.stats();
    if (stats.blocking_io_trips != 0) identical = false;
    std::printf(
        "front end: %llu connections, %llu frames in, %llu frames out\n",
        static_cast<unsigned long long>(fstats.connections_accepted),
        static_cast<unsigned long long>(fstats.frames_in),
        static_cast<unsigned long long>(fstats.responses_out));
    std::printf(
        "coordinator: %llu frames, %llu shard trips (%llu async, %llu "
        "blocking), %llu shard failures, %llu degraded, %llu errors\n",
        static_cast<unsigned long long>(stats.frames),
        static_cast<unsigned long long>(stats.shard_trips),
        static_cast<unsigned long long>(stats.async_io_trips),
        static_cast<unsigned long long>(stats.blocking_io_trips),
        static_cast<unsigned long long>(stats.shard_failures),
        static_cast<unsigned long long>(stats.degraded_answers),
        static_cast<unsigned long long>(stats.errors));
    // Transports and the front end die with this scope — before the
    // children are reaped and the loop is stopped.
  }
  for (size_t s = 0; s < kShards; ++s) {
    if (children[s] >= 0) reap(s);
  }
  (*loop)->Stop();
  return identical ? 0 : 1;
}
