// The paper's Section 1 motivating scenario: a user issues a session of
// related medical queries ("osteosarcoma symptoms", then "osteosarcoma
// therapy"). Without protection, the recurring high-specificity term
// 'osteosarcoma' betrays the user's interest. This example shows what the
// search engine actually observes under query embellishment, and runs the
// intersection attack to demonstrate that it recovers whole buckets —
// plausible alternative topics — rather than the genuine term.

#include <cstdio>
#include <set>

#include "embellish.h"

using namespace embellish;

namespace {

void PrintObserved(const wordnet::WordNetDatabase& lexicon,
                   const core::AdversaryView& view, const char* label) {
  std::printf("%s (%zu terms, randomly permuted):\n  ", label,
              view.observed_terms.size());
  for (wordnet::TermId t : view.observed_terms) {
    std::printf(" '%s'", lexicon.term(t).text.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto lexicon = wordnet::BuildMiniWordNet();
  if (!lexicon.ok()) return 1;

  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 16;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;

  Rng rng(42);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 729;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) return 1;

  core::SearchSession session(&*lexicon, &*buckets, &keys->public_key(),
                              /*seed=*/7);

  std::printf("=== A medical search session under query embellishment ===\n\n");
  const std::vector<std::vector<std::string>> session_queries = {
      {"osteosarcoma", "symptom"},
      {"osteosarcoma", "therapy"},
      {"osteosarcoma", "accelerated", "radiation", "therapy"},
  };
  for (size_t i = 0; i < session_queries.size(); ++i) {
    std::printf("user query %zu:", i + 1);
    for (const auto& w : session_queries[i]) std::printf(" '%s'", w.c_str());
    std::printf("\n");
    auto q = session.IssueQuery(session_queries[i]);
    if (!q.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    PrintObserved(*lexicon, session.observed(i), "  server observes");
    std::printf("\n");
  }

  std::printf("=== Intersection attack over the session ===\n\n");
  auto common = session.IntersectObservedQueries();
  std::printf("terms present in every query of the session:\n  ");
  for (wordnet::TermId t : common) {
    std::printf(" '%s'(spec %d)", lexicon->term(t).text.c_str(),
                specificity.TermSpecificity(t));
  }
  std::printf("\n\n");

  // The attack recovers osteosarcoma's WHOLE bucket: every member is a
  // similarly specific term pointing at a different plausible topic.
  wordnet::TermId osteo = lexicon->FindTerm("osteosarcoma");
  auto where = buckets->Locate(osteo);
  if (!where.ok()) return 1;
  const auto& bucket = buckets->bucket(where->bucket);
  std::printf("osteosarcoma's host bucket (its permanent cover):\n  ");
  for (wordnet::TermId t : bucket) {
    std::printf(" '%s'(spec %d)", lexicon->term(t).text.c_str(),
                specificity.TermSpecificity(t));
  }
  std::printf("\n\n");

  std::set<wordnet::TermId> common_set(common.begin(), common.end());
  bool covered = true;
  for (wordnet::TermId t : bucket) covered &= common_set.count(t) > 0;
  std::printf(
      "every bucket member survives the intersection: %s\n"
      "=> the adversary cannot tell which of the %zu equally specific "
      "terms drives the session (plausible deniability).\n",
      covered ? "YES" : "NO", bucket.size());

  // Quantify with the Section 3.1 model (Eq. 1-2) on this session.
  core::SemanticDistanceCalculator distance(&*lexicon);
  std::vector<std::vector<wordnet::TermId>> id_sequence;
  for (const auto& words : session_queries) {
    std::vector<wordnet::TermId> ids;
    for (const auto& w : words) ids.push_back(lexicon->FindTerm(w));
    id_sequence.push_back(std::move(ids));
  }
  auto risk = core::ComputeAdversaryRisk(*buckets, distance, id_sequence);
  if (risk.ok()) {
    std::printf(
        "\nBayesian adversary (uniform prior, Eq. 1-2): |S| = %llu candidate "
        "sequences, posterior on the true sequence = %.2e, expected "
        "similarity of the adversary's pick = %.3f\n",
        static_cast<unsigned long long>(risk->candidate_count),
        risk->posterior_on_truth, risk->risk);
  }
  return covered ? 0 : 1;
}
