// Long-query private search: mines term associations from the corpus
// (Appendix C's extracted relations), expands a short user query into the
// dozens-of-terms regime the paper's Figure 8 studies (citing TREC ad-hoc
// topics and query-expansion literature), and runs the expanded query
// through the private retrieval pipeline.
//
// Also demonstrates the Appendix C merged-source sequencer: buckets built
// from WordNet relations augmented with the mined associations.
//
// Usage: expanded_search [terms] [docs]

#include <cstdio>
#include <cstdlib>

#include "embellish.h"

using namespace embellish;

int main(int argc, char** argv) {
  const size_t terms = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t docs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1200;

  std::printf("=== Query expansion + merged relation sources ===\n\n");

  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = terms;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  corpus::SyntheticCorpusOptions co;
  co.num_docs = docs;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;

  // --- Mine associations from the corpus (Appendix C) ---
  auto relations = wordnet::ExtractRelationsFromCorpus(*corp);
  if (!relations.ok()) {
    std::fprintf(stderr, "extraction: %s\n",
                 relations.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu weighted term associations from %zu documents\n",
              relations->size(), corp->document_count());
  for (size_t i = 0; i < std::min<size_t>(3, relations->size()); ++i) {
    const auto& rel = (*relations)[i];
    std::printf("  '%s' <-> '%s'  (strength %.2f)\n",
                lexicon->term(rel.a).text.c_str(),
                lexicon->term(rel.b).text.c_str(), rel.strength);
  }
  std::printf("\n");

  // --- Buckets from the MERGED relation graph ---
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto merged_seq = core::SequenceDictionaryMerged(*lexicon, *relations);
  core::BucketizerOptions bo;
  bo.bucket_size = 8;
  bo.segment_size = SIZE_MAX;
  auto org = core::FormBuckets(merged_seq, specificity, bo);
  if (!org.ok()) return 1;
  std::printf("merged-source sequencing: %zu sequence(s), %zu buckets\n\n",
              merged_seq.sequences.size(), org->bucket_count());

  // --- Expand a short query into the long-query regime ---
  auto expander = core::QueryExpander::Create(*relations, {});
  if (!expander.ok()) return 1;
  Rng rng(3);
  auto indexed = built->index.IndexedTerms();
  // Seed with terms that have expansions so the demo is interesting.
  std::vector<wordnet::TermId> seed_query;
  for (const auto& rel : *relations) {
    if (built->index.postings(rel.a) != nullptr) {
      seed_query.push_back(rel.a);
    }
    if (seed_query.size() == 4) break;
  }
  while (seed_query.size() < 4) {
    seed_query.push_back(indexed[rng.Uniform(indexed.size())]);
  }
  auto expanded = expander->Expand(seed_query);
  std::printf("seed query (%zu terms) expanded to %zu terms:\n  ",
              seed_query.size(), expanded.size());
  for (size_t i = 0; i < expanded.size(); ++i) {
    std::printf(" '%s'%s", lexicon->term(expanded[i]).text.c_str(),
                i + 1 == seed_query.size() ? "  |  expansion:" : "");
  }
  std::printf("\n\n");

  // --- Private retrieval over the expanded query ---
  auto layout = storage::StorageLayout::Build(
      built->index, org->buckets(), storage::LayoutPolicy::kBucketColocated,
      {});
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  if (!keys.ok()) return 1;
  core::PrivateRetrievalClient client(&*org, &keys->public_key(),
                                      &keys->private_key());
  core::PrivateRetrievalServer server(&built->index, &*org, &layout);

  core::RetrievalCosts costs;
  auto ranked = core::RunPrivateQuery(client, server, keys->public_key(),
                                      expanded, 10, &rng, &costs);
  if (!ranked.ok()) {
    std::fprintf(stderr, "query: %s\n", ranked.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%zu results over the expanded query:\n", ranked->size());
  for (const auto& sd : *ranked) {
    std::printf("  doc %u  score %llu\n", sd.doc,
                static_cast<unsigned long long>(sd.score));
  }
  std::printf(
      "\ncosts: I/O %.1f ms, server CPU %.2f ms, downlink %.1f KB, user CPU "
      "%.2f ms\n",
      costs.server_io_ms, costs.server_cpu_ms,
      static_cast<double>(costs.downlink_bytes) / 1024.0, costs.user_cpu_ms);

  // Claim 1 on the expanded query.
  auto reference = index::EvaluateFull(built->index, expanded);
  if (reference.size() > 10) reference.resize(10);
  bool match = reference.size() == ranked->size();
  for (size_t i = 0; match && i < reference.size(); ++i) {
    match = reference[i].doc == (*ranked)[i].doc &&
            reference[i].score == (*ranked)[i].score;
  }
  std::printf("Claim 1 check on expanded query: %s\n",
              match ? "PASS" : "FAIL");
  return match ? 0 : 1;
}
