// Live ingestion walkthrough: serving queries while the index changes.
//
//   1. build a lexicon, bucket organization and corpus, then stand up an
//      IndexCatalog (epoch 1, two shards) and a catalog-backed server;
//   2. register sessions and pre-encode a replayable query mix (private
//      retrieval + plaintext top-k);
//   3. run a query storm on worker threads WHILE the main thread ingests
//      two document deltas around a 2 -> 4 reshard — three epoch cutovers
//      under live traffic, every build in the background;
//   4. prove bit-identity: each storm answer must be byte-for-byte the
//      answer of a frozen reference server pinned at an epoch that was
//      live while that request was in flight;
//   5. prove the non-blocking invariant: the counted answer-path gauge
//      must show zero index/layout builds on serving threads;
//   6. print the lifecycle accounting (swaps, ingested docs, reshard time,
//      shard visits skipped by impact bounds).
//
// Exit code is the assertion: 0 only if every answer matched a pinned
// epoch AND no serving thread ever ran a build.

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "embellish.h"

using namespace embellish;

int main() {
  // ---- 1. Substrate and the live catalog ----
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = 2000;
  wo.seed = 42;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;
  auto org = std::make_shared<core::BucketOrganization>(std::move(*buckets));

  corpus::SyntheticCorpusOptions co;
  co.num_docs = 300;
  co.seed = 43;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;

  ThreadPool pool(4);
  index::IndexCatalogOptions copts;
  copts.sharding.shard_count = 2;
  auto catalog = index::IndexCatalog::Create(*corp, org, copts, &pool);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: epoch %llu, %zu shards, %zu docs\n",
              static_cast<unsigned long long>((*catalog)->Acquire()->epoch()),
              (*catalog)->Acquire()->shard_count(),
              static_cast<size_t>(corp->document_count()));

  server::EmbellishServerOptions options;
  options.cache_capacity = 0;  // recompute every answer: no replay masking
  server::EmbellishServer srv(catalog->get(), options, &pool);

  // ---- 2. Sessions and a pre-encoded, replayable query mix ----
  auto terms = corp->DistinctTerms();
  auto pick = [&](size_t a, size_t b) {
    return std::vector<wordnet::TermId>{terms[a % terms.size()],
                                        terms[b % terms.size()]};
  };
  constexpr size_t kThreads = 3;
  constexpr size_t kIters = 6;
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  std::vector<server::SessionClient> clients;
  std::vector<std::vector<std::vector<uint8_t>>> requests(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    auto client = server::SessionClient::Create(40 + t, org.get(), ko,
                                                /*seed=*/500 + t);
    if (!client.ok()) return 1;
    clients.push_back(std::move(*client));
    auto hello = server::DecodeFrame(srv.HandleFrame(clients[t].HelloFrame()));
    if (!hello.ok() || hello->kind != server::FrameKind::kHelloOk) return 1;
    for (size_t i = 0; i < kIters; ++i) {
      if (i % 2 == 0) {
        auto request = clients[t].QueryFrame(pick(3 * t + i, 7 * i + 1));
        if (!request.ok()) return 1;
        requests[t].push_back(std::move(*request));
      } else {
        requests[t].push_back(server::EncodeFrame(
            server::FrameKind::kTopKQuery, 40 + t,
            server::EncodeTopKQuery(10, pick(5 * t + i, 11 * i))));
      }
    }
  }
  std::printf("sessions: %zu registered, %zu requests pre-encoded\n",
              clients.size(), kThreads * kIters);

  // ---- 3. The storm races two deltas and a 2 -> 4 reshard ----
  auto delta_docs = [&](size_t count, uint64_t salt) {
    std::vector<corpus::Document> docs(count);
    for (size_t d = 0; d < count; ++d) {
      for (size_t i = 0; i < 30; ++i) {
        docs[d].tokens.push_back(terms[(salt + 17 * d + 3 * i) % terms.size()]);
      }
    }
    return docs;
  };

  std::map<uint64_t, std::shared_ptr<const index::IndexEpoch>> snapshots;
  snapshots[1] = (*catalog)->Acquire();

  struct Observation {
    size_t thread, iter;
    uint64_t epoch_lo, epoch_hi;
    std::vector<uint8_t> response;
  };
  std::vector<std::vector<Observation>> observed(kThreads);
  std::atomic<bool> start{false};
  std::vector<std::thread> storm;
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (size_t i = 0; i < kIters; ++i) {
        Observation ob;
        ob.thread = t;
        ob.iter = i;
        ob.epoch_lo = (*catalog)->Acquire()->epoch();
        ob.response = srv.HandleFrame(requests[t][i]);
        ob.epoch_hi = (*catalog)->Acquire()->epoch();
        observed[t].push_back(std::move(ob));
      }
    });
  }

  start.store(true, std::memory_order_release);
  auto e2 = (*catalog)->ApplyDelta(delta_docs(6, 21));
  if (!e2.ok()) return 1;
  snapshots[(*e2)->epoch()] = *e2;
  index::ShardingOptions wider;
  wider.shard_count = 4;
  auto e3 = (*catalog)->Reshard(wider);
  if (!e3.ok()) return 1;
  snapshots[(*e3)->epoch()] = *e3;
  auto e4 = (*catalog)->ApplyDelta(delta_docs(5, 33));
  if (!e4.ok()) return 1;
  snapshots[(*e4)->epoch()] = *e4;
  for (auto& th : storm) th.join();
  std::printf("ingested under load: +11 docs, reshard 2 -> %zu, final epoch "
              "%llu\n",
              (*e3)->shard_count(),
              static_cast<unsigned long long>((*e4)->epoch()));

  // ---- 4. Bit-identity against frozen per-epoch references ----
  std::map<uint64_t, std::unique_ptr<index::IndexCatalog>> frozen;
  std::map<uint64_t, std::unique_ptr<server::EmbellishServer>> references;
  for (const auto& [epoch, snapshot] : snapshots) {
    frozen[epoch] = index::IndexCatalog::FreezeEpoch(snapshot);
    references[epoch] =
        std::make_unique<server::EmbellishServer>(frozen[epoch].get(), options);
    for (auto& client : clients) {
      references[epoch]->HandleFrame(client.HelloFrame());
    }
  }
  size_t checked = 0;
  bool identical = true;
  for (size_t t = 0; t < kThreads; ++t) {
    for (const Observation& ob : observed[t]) {
      bool matched = false;
      for (uint64_t e = ob.epoch_lo; e <= ob.epoch_hi && !matched; ++e) {
        auto it = references.find(e);
        if (it == references.end()) continue;
        matched = it->second->HandleFrame(requests[ob.thread][ob.iter]) ==
                  ob.response;
      }
      if (!matched) {
        std::fprintf(stderr,
                     "thread %zu iter %zu: bytes match no epoch in "
                     "[%llu, %llu]\n",
                     ob.thread, ob.iter,
                     static_cast<unsigned long long>(ob.epoch_lo),
                     static_cast<unsigned long long>(ob.epoch_hi));
        identical = false;
      }
      ++checked;
    }
  }
  std::printf("bit-identity: %zu/%zu storm answers matched a pinned epoch\n",
              identical ? checked : 0, checked);

  // ---- 5 + 6. The non-blocking invariant and lifecycle accounting ----
  server::ServerStats stats = srv.stats();
  std::printf("lifecycle: %llu epoch swaps, %llu docs ingested, reshard "
              "%.1f ms, %lld epochs pinned now\n",
              static_cast<unsigned long long>(stats.epoch_swaps),
              static_cast<unsigned long long>(stats.delta_docs_ingested),
              static_cast<double>(stats.reshard_micros) / 1000.0,
              static_cast<long long>(stats.pinned_epochs));
  std::printf("top-k shard trips: %llu visited, %llu skipped by impact "
              "bounds\n",
              static_cast<unsigned long long>(stats.topk_shards_visited),
              static_cast<unsigned long long>(stats.topk_shards_skipped));
  std::printf("answer-path builds observed on serving threads: %llu\n",
              static_cast<unsigned long long>(stats.answer_path_builds));

  if (stats.answer_path_builds != 0) {
    std::fprintf(stderr, "FAIL: a serving thread ran an index/layout build\n");
    return 1;
  }
  if (stats.epoch_swaps != 3) {
    std::fprintf(stderr, "FAIL: expected 3 cutovers, saw %llu\n",
                 static_cast<unsigned long long>(stats.epoch_swaps));
    return 1;
  }
  return identical ? 0 : 1;
}
