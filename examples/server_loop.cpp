// Server loop walkthrough: the framed request/response protocol end to end.
//
//   1. build a lexicon, bucket organization and impact-ordered index;
//   2. stand up an EmbellishServer with a response cache and thread pool;
//   3. register two sessions via hello frames;
//   4. issue embellished queries through the wire — including a recurring
//      one, which the bucket-set keyed cache answers without touching the
//      index;
//   5. show that a corrupted frame gets a transported error, not a crash;
//   6. print the server's cost accounting.

#include <cstdio>

#include "embellish.h"

using namespace embellish;

int main() {
  // ---- 1. Substrate: lexicon, buckets, corpus, index ----
  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = 2000;
  wo.seed = 42;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) return 1;

  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);
  core::BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto buckets = core::FormBuckets(sequences, specificity, bo);
  if (!buckets.ok()) return 1;

  corpus::SyntheticCorpusOptions co;
  co.num_docs = 300;
  co.seed = 43;
  auto corp = corpus::GenerateSyntheticCorpus(*lexicon, co);
  if (!corp.ok()) return 1;
  auto built = index::BuildIndex(*corp, {});
  if (!built.ok()) return 1;
  std::printf("substrate: %zu terms, %zu buckets, %zu docs indexed\n",
              lexicon->term_count(), buckets->bucket_count(),
              corp->document_count());

  // ---- 2. The server: batched dispatch + response cache ----
  ThreadPool pool(4);
  server::EmbellishServerOptions options;
  options.cache_capacity = 256;
  server::EmbellishServer srv(&built->index, &*buckets, nullptr, options,
                              &pool);

  // ---- 3. Two sessions say hello (registering their public keys) ----
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  auto alice = server::SessionClient::Create(1, &*buckets, ko, /*seed=*/7);
  auto bob = server::SessionClient::Create(2, &*buckets, ko, /*seed=*/8);
  if (!alice.ok() || !bob.ok()) return 1;
  srv.HandleFrame(alice->HelloFrame());
  srv.HandleFrame(bob->HelloFrame());
  std::printf("sessions registered: %zu\n", srv.session_count());

  // ---- 4. Queries through the wire ----
  auto terms = built->index.IndexedTerms();
  std::vector<wordnet::TermId> alice_terms{terms[10], terms[25]};
  std::vector<wordnet::TermId> bob_terms{terms[40]};

  auto run = [&](server::SessionClient& who, const char* name,
                 const std::vector<wordnet::TermId>& genuine) {
    auto request = who.QueryFrame(genuine);
    if (!request.ok()) return;
    auto response = srv.HandleFrame(*request);
    auto top = who.DecodeResultFrame(response, /*k=*/5);
    if (!top.ok()) {
      std::printf("  %s: error: %s\n", name, top.status().ToString().c_str());
      return;
    }
    std::printf("  %s: %zu-byte request -> %zu-byte response, top doc", name,
                request->size(), response.size());
    if (!top->empty()) {
      std::printf(" %u (score %llu)", (*top)[0].doc,
                  static_cast<unsigned long long>((*top)[0].score));
    }
    std::printf("\n");
  };

  std::printf("first round (cache cold):\n");
  run(*alice, "alice", alice_terms);
  run(*bob, "bob", bob_terms);

  // A recurring genuine-term set: session-consistent embellishment produces
  // the same co-bucket decoy set, the client reuses the encoded uplink
  // bytes, and the server answers from the response cache.
  std::printf("alice repeats her query (cache warm):\n");
  run(*alice, "alice", alice_terms);
  auto stats = srv.stats();
  std::printf("  cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));

  // ---- 5. A corrupted frame is answered, not fatal ----
  auto request = alice->QueryFrame(alice_terms);
  if (!request.ok()) return 1;
  (*request)[server::kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  auto response = srv.HandleFrame(*request);
  auto frame = server::DecodeFrame(response);
  if (frame.ok() && frame->kind == server::FrameKind::kError) {
    Status transported;
    if (server::DecodeError(frame->payload, &transported).ok()) {
      std::printf("corrupted frame -> %s\n",
                  transported.ToString().c_str());
    }
  }

  // ---- 6. Accounting ----
  stats = srv.stats();
  std::printf("server: %llu frames, %llu queries, %llu errors, "
              "%.2f ms CPU, %llu uplink B, %llu downlink B\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.errors),
              stats.server_cpu_ms,
              static_cast<unsigned long long>(stats.uplink_bytes),
              static_cast<unsigned long long>(stats.downlink_bytes));
  return 0;
}
