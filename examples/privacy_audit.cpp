// Privacy audit of a bucket organization: runs the Section 5.1 metrics
// (intra-bucket specificity spread; closest/farthest cover distances)
// against the Random-decoy baseline, prints Algorithm 1 sequence snippets
// and sample buckets in the style of Section 3.3/3.4, and reports the
// Bayesian risk of an example query.
//
// Usage: privacy_audit [terms] [bktsz] [segsz] [trials]

#include <cstdio>
#include <cstdlib>

#include "embellish.h"

using namespace embellish;

int main(int argc, char** argv) {
  const size_t terms = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const size_t bktsz = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  const size_t segsz = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 512;
  const size_t trials = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 300;

  std::printf("=== Privacy audit: %zu-term lexicon, BktSz=%zu, SegSz=%zu ===\n\n",
              terms, bktsz, segsz);

  wordnet::SyntheticWordNetOptions wo;
  wo.target_term_count = terms;
  auto lexicon = wordnet::GenerateSyntheticWordNet(wo);
  if (!lexicon.ok()) {
    std::fprintf(stderr, "%s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  auto specificity = core::SpecificityMap::FromHypernymDepth(*lexicon);
  auto sequences = core::SequenceDictionary(*lexicon);

  // --- Algorithm 1 output: a snippet of the clustered sequence (§3.3) ---
  std::printf("Algorithm 1 produced %zu sequence(s); snippet:\n  ...",
              sequences.sequences.size());
  const auto& first_seq = sequences.sequences.front();
  for (size_t i = 100; i < std::min<size_t>(110, first_seq.size()); ++i) {
    std::printf(" '%s'", lexicon->term(first_seq[i]).text.c_str());
  }
  std::printf(" ...\n\n");

  core::BucketizerOptions bo;
  bo.bucket_size = bktsz;
  bo.segment_size = segsz;
  auto org = core::FormBuckets(sequences, specificity, bo);
  if (!org.ok()) {
    std::fprintf(stderr, "%s\n", org.status().ToString().c_str());
    return 1;
  }

  // --- Sample buckets in the §3.4 style ---
  std::printf("sample buckets (term (specificity)):\n");
  for (size_t b = org->bucket_count() / 3;
       b < org->bucket_count() / 3 + 4 && b < org->bucket_count(); ++b) {
    std::printf("  bucket %zu:", b);
    for (wordnet::TermId t : org->bucket(b)) {
      std::printf(" '%s' (%d)", lexicon->term(t).text.c_str(),
                  specificity.TermSpecificity(t));
    }
    std::printf("\n");
  }
  std::printf("\n");

  // --- §5.1 metrics vs the Random baseline ---
  core::SemanticDistanceCalculator distance(&*lexicon);
  core::RiskEvaluator evaluator(&*lexicon, &specificity, &distance);

  std::vector<wordnet::TermId> all_terms(lexicon->term_count());
  for (wordnet::TermId t = 0; t < lexicon->term_count(); ++t) {
    all_terms[t] = t;
  }
  Rng rng(1);
  auto random_org = core::RandomBucketOrganization(all_terms, bktsz, &rng);
  if (!random_org.ok()) return 1;

  const double bucket_spec =
      evaluator.AvgIntraBucketSpecificityDifference(*org);
  const double random_spec =
      evaluator.AvgIntraBucketSpecificityDifference(*random_org);
  Rng r1(2), r2(2);
  auto bucket_dist = evaluator.MeasureDistanceDifference(*org, trials, &r1);
  auto random_dist =
      evaluator.MeasureDistanceDifference(*random_org, trials, &r2);

  std::printf("Section 5.1 metrics (%zu trials):\n", trials);
  std::printf("  %-28s %10s %10s\n", "metric", "Bucket", "Random");
  std::printf("  %-28s %10.3f %10.3f\n", "specificity difference",
              bucket_spec, random_spec);
  std::printf("  %-28s %10.2f %10.2f\n", "closest cover distance diff",
              bucket_dist.avg_closest, random_dist.avg_closest);
  std::printf("  %-28s %10.2f %10.2f\n", "farthest cover distance diff",
              bucket_dist.avg_farthest, random_dist.avg_farthest);
  std::printf("\n");

  const bool wins_spec = bucket_spec < random_spec;
  const bool wins_far = bucket_dist.avg_farthest < random_dist.avg_farthest;
  std::printf("verdict: Bucket %s Random on specificity; %s on farthest "
              "cover.\n",
              wins_spec ? "beats" : "LOSES TO",
              wins_far ? "beats" : "LOSES TO");

  // --- Bayesian risk of a 2-term query under this organization ---
  auto risk = core::ComputeAdversaryRisk(
      *org, distance, {{all_terms[17], all_terms[4211 % all_terms.size()]}});
  if (risk.ok()) {
    std::printf(
        "example 2-term query: |Q| = %llu candidates, posterior on truth "
        "%.4f, expected adversary similarity %.3f\n",
        static_cast<unsigned long long>(risk->candidate_count),
        risk->posterior_on_truth, risk->risk);
  }

  // --- §3.4 grouping adversary: MAP coherence attack on related-term
  //     queries, Bucket vs Random decoys ---
  std::vector<std::vector<wordnet::TermId>> attack_queries;
  Rng pick(5);
  while (attack_queries.size() < 20) {
    auto a = static_cast<wordnet::TermId>(pick.Uniform(lexicon->term_count()));
    const auto& synsets = lexicon->term(a).synsets;
    if (synsets.empty()) continue;
    const auto& relations = lexicon->synset(synsets[0]).relations;
    if (relations.empty()) continue;
    const auto& other = lexicon->synset(relations[0].target);
    if (other.terms.empty() || other.terms[0] == a) continue;
    attack_queries.push_back({a, other.terms[0]});
  }
  auto bucket_attack =
      core::RunMapCoherenceAttack(*org, distance, attack_queries);
  auto random_attack =
      core::RunMapCoherenceAttack(*random_org, distance, attack_queries);
  if (bucket_attack.ok() && random_attack.ok()) {
    std::printf(
        "\nMAP coherence attack on %zu related-term queries (grouping "
        "granted):\n"
        "  hit rate with Bucket decoys: %.2f   with Random decoys: %.2f   "
        "(guessing floor %.3f)\n",
        attack_queries.size(), bucket_attack->hit_rate,
        random_attack->hit_rate, bucket_attack->chance_rate);
  }
  return (wins_spec && wins_far) ? 0 : 1;
}
