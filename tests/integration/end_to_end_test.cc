// Full-pipeline integration tests: lexicon -> sequencing -> buckets ->
// corpus -> index -> embellished query -> PR/PIR retrieval -> ranking,
// exactly as a deployment would wire the library together.

#include <set>

#include <gtest/gtest.h>

#include "embellish.h"
#include "testutil.h"

namespace embellish {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr size_t kBucketSize = 8;

  EndToEndTest()
      : lex_(testutil::SmallSyntheticLexicon(2500, 201)),
        corp_(testutil::SmallCorpus(lex_, 300, 202)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, kBucketSize, 64)),
        layout_(storage::StorageLayout::Build(
            built_.index, org_.buckets(),
            storage::LayoutPolicy::kBucketColocated, {})) {
    Rng rng(203);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    keys_ = std::make_unique<crypto::BenalohKeyPair>(
        std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
    client_ = std::make_unique<core::PrivateRetrievalClient>(
        &org_, &keys_->public_key(), &keys_->private_key());
    server_ = std::make_unique<core::PrivateRetrievalServer>(
        &built_.index, &org_, &layout_);
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
  storage::StorageLayout layout_;
  std::unique_ptr<crypto::BenalohKeyPair> keys_;
  std::unique_ptr<core::PrivateRetrievalClient> client_;
  std::unique_ptr<core::PrivateRetrievalServer> server_;
};

TEST_F(EndToEndTest, PrAndPirAgreeWithPlaintextAcrossQuerySizes) {
  Rng rng(1);
  auto pir_server = core::PirRetrievalServer(&built_.index, &org_, &layout_);
  auto pir_client = core::PirRetrievalClient::Create(&org_, 128, &rng);
  ASSERT_TRUE(pir_client.ok());
  auto terms = built_.index.IndexedTerms();

  for (size_t qsize : {1u, 2u, 6u, 12u}) {
    std::vector<wordnet::TermId> query;
    for (size_t i = 0; i < qsize; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    std::vector<wordnet::TermId> distinct = query;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto reference = index::EvaluateFull(built_.index, distinct);
    if (reference.size() > 20) reference.resize(20);

    core::RetrievalCosts pr_costs;
    auto pr = core::RunPrivateQuery(*client_, *server_, keys_->public_key(),
                                    query, 20, &rng, &pr_costs);
    ASSERT_TRUE(pr.ok());
    ASSERT_EQ(pr->size(), reference.size()) << "qsize " << qsize;
    for (size_t i = 0; i < pr->size(); ++i) {
      EXPECT_EQ((*pr)[i], reference[i]);
    }

    core::RetrievalCosts pir_costs;
    auto pir = pir_client->RunQuery(pir_server, query, 20, &rng, &pir_costs);
    ASSERT_TRUE(pir.ok());
    ASSERT_EQ(pir->size(), reference.size());
    for (size_t i = 0; i < pir->size(); ++i) {
      EXPECT_EQ((*pir)[i], reference[i]);
    }

    // The headline cost relation of Figure 7(c)/8(c): PR transfers an
    // order of magnitude less than PIR.
    EXPECT_LT(pr_costs.downlink_bytes, pir_costs.downlink_bytes);
  }
}

TEST_F(EndToEndTest, TopKEvaluatorAgreesWithPrivatePipeline) {
  Rng rng(2);
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[1], terms[33], terms[77]};
  core::RetrievalCosts costs;
  auto pr = core::RunPrivateQuery(*client_, *server_, keys_->public_key(),
                                  query, 10, &rng, &costs);
  ASSERT_TRUE(pr.ok());
  // Claim 1: the private pipeline ranks like a plaintext engine. The exact
  // scores come from the full evaluation; the early-terminating Figure 10
  // evaluator must select the same document set.
  auto full = index::EvaluateFull(built_.index, query);
  if (full.size() > 10) full.resize(10);
  ASSERT_EQ(pr->size(), full.size());
  for (size_t i = 0; i < pr->size(); ++i) {
    EXPECT_EQ((*pr)[i], full[i]);
  }
  auto topk = index::EvaluateTopK(built_.index, query, 10);
  ASSERT_EQ(topk.size(), full.size());
  std::set<corpus::DocId> expected, got;
  for (size_t i = 0; i < full.size(); ++i) {
    expected.insert(full[i].doc);
    got.insert(topk[i].doc);
  }
  EXPECT_EQ(got, expected);
}

TEST_F(EndToEndTest, SessionOverRealPipeline) {
  core::SearchSession session(&lex_, &org_, &keys_->public_key(), 99);
  auto terms = built_.index.IndexedTerms();
  // Three queries sharing one recurring term.
  wordnet::TermId recurring = terms[11];
  for (int i = 0; i < 3; ++i) {
    auto q = session.IssueQueryByIds({recurring, terms[20 + i]});
    ASSERT_TRUE(q.ok());
    core::RetrievalCosts costs;
    auto result = server_->Process(*q, keys_->public_key(), &costs);
    ASSERT_TRUE(result.ok());
  }
  // Intersection contains the recurring term's whole bucket.
  auto common = session.IntersectObservedQueries();
  size_t host = org_.Locate(recurring)->bucket;
  for (wordnet::TermId t : org_.bucket(host)) {
    EXPECT_NE(std::find(common.begin(), common.end(), t), common.end());
  }
}

TEST_F(EndToEndTest, TextAnalysisPathIndexesSingleWordTerms) {
  // Render documents to text, re-analyze, and check that single-word
  // dictionary terms survive the round trip.
  corpus::DocId doc = 5;
  std::string text = corp_.RenderText(doc, lex_);
  auto tokens = text::Analyze(text);
  EXPECT_FALSE(tokens.empty());
  size_t found = 0;
  for (const std::string& tok : tokens) {
    if (lex_.FindTerm(tok) != wordnet::kInvalidTermId) ++found;
  }
  // Multi-word collocations split under re-analysis; single words survive.
  EXPECT_GT(found, tokens.size() / 2);
}

TEST_F(EndToEndTest, WordNetRoundTripPreservesPipeline) {
  // Serialize the lexicon, reload it, rebuild buckets: same organization.
  auto text = wordnet::SerializeDatabase(lex_);
  auto reloaded = wordnet::ParseDatabase(text);
  ASSERT_TRUE(reloaded.ok());
  auto org2 = testutil::MakeBuckets(*reloaded, kBucketSize, 64);
  ASSERT_EQ(org2.bucket_count(), org_.bucket_count());
  for (size_t b = 0; b < org_.bucket_count(); b += 13) {
    EXPECT_EQ(org2.bucket(b), org_.bucket(b));
  }
}

TEST_F(EndToEndTest, AdversaryRiskDropsWithBucketWidth) {
  core::SemanticDistanceCalculator dist(&lex_);
  auto terms = built_.index.IndexedTerms();
  std::vector<std::vector<wordnet::TermId>> sequence{{terms[5]},
                                                     {terms[5], terms[9]}};
  auto wide = core::ComputeAdversaryRisk(org_, dist, sequence);
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  // Narrow organization: same pipeline with BktSz 2.
  auto narrow_org = testutil::MakeBuckets(lex_, 2, 64);
  auto narrow = core::ComputeAdversaryRisk(narrow_org, dist, sequence);
  ASSERT_TRUE(narrow.ok());
  EXPECT_LT(wide->posterior_on_truth, narrow->posterior_on_truth);
}

}  // namespace
}  // namespace embellish
