// Stress and semantics tests for the multi-region work-stealing executor:
// concurrent callers, nested regions (the batch×shard composition the
// server relies on), cross-region stealing, fairness under a blocked
// region, and the no-deadlock guarantees. Run under TSan in CI (the test
// name matches the thread-sanitize job's filter).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace embellish {
namespace {

// A latch the tests can spin up pre-C++20-style (std::latch exists, but a
// cv-based one lets a waiter time out into a diagnosable failure instead of
// hanging the whole suite on a regression).
class TestLatch {
 public:
  explicit TestLatch(int count) : count_(count) {}

  // Arrives and waits for everyone else; false on timeout.
  bool ArriveAndWait(std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock<std::mutex> lock(mu_);
    if (--count_ <= 0) {
      cv_.notify_all();
      return true;
    }
    return cv_.wait_for(lock, timeout, [&] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

TEST(ThreadPoolStressTest, NestedRegionOnTheSamePoolCompletes) {
  // Regression: the PR 1 pool forbade ParallelFor from inside a chunk (the
  // single job slot would have been clobbered). The executor must run the
  // nested region as just another region.
  ThreadPool pool(3);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, 1, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      pool.ParallelFor(0, kInner, 1, [&, o](size_t ib, size_t ie) {
        for (size_t i = ib; i < ie; ++i) {
          hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, ConcurrentCallersWithNestedFanOutsAllComplete) {
  // The server's shape: N batch callers, each request fanning out over M
  // shards on the same pool. Every (caller, outer, inner) index must run
  // exactly once, with no deadlock and no lost region, while regions from
  // six callers churn through a three-worker pool. TSan-clean is part of
  // the assertion (CI runs this under -fsanitize=thread).
  ThreadPool pool(3);
  constexpr size_t kCallers = 6;
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kCallers * kOuter * kInner);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        if (round > 0) {
          // Later rounds only re-cover the same indexes; reset first.
          for (size_t i = 0; i < kOuter * kInner; ++i) {
            hits[c * kOuter * kInner + i].store(0, std::memory_order_relaxed);
          }
        }
        pool.ParallelFor(0, kOuter, 1, [&, c](size_t ob, size_t oe) {
          for (size_t o = ob; o < oe; ++o) {
            pool.ParallelFor(0, kInner, 1, [&, c, o](size_t ib, size_t ie) {
              for (size_t i = ib; i < ie; ++i) {
                hits[(c * kOuter + o) * kInner + i].fetch_add(
                    1, std::memory_order_relaxed);
              }
            });
          }
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, WorkerJoinsTheCallersRegion) {
  // Two chunks that each wait for the other to start can only complete if
  // a worker claims the second chunk while the caller is blocked in the
  // first — direct evidence that registration wakes a worker into the
  // region rather than leaving the caller to drain it alone.
  ThreadPool pool(2);
  TestLatch both_started(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 2, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(both_started.ArriveAndWait()) << "chunk " << i
          << " never saw its sibling start";
      ran.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolStressTest, WorkersStealAcrossConcurrentCallersRegions) {
  // Two independent callers, each with a two-chunk region, all four chunks
  // meeting at one barrier: completion requires both workers to have
  // stolen into the two regions concurrently with both callers — the
  // cross-region progress the single-job pool could not give (its losing
  // caller ran inline only after the winner finished).
  ThreadPool pool(2);
  TestLatch all_four(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 2; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(0, 2, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          EXPECT_TRUE(all_four.ArriveAndWait())
              << "cross-region barrier timed out";
          ran.fetch_add(1, std::memory_order_relaxed);
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolStressTest, BlockedRegionDoesNotStarveOtherCallers) {
  // Fairness/starvation: one caller's region parks every thread it can get
  // on a flag; a second caller must still push many small regions through
  // to completion (its own participation guarantees progress, and workers
  // finishing the blocked region's chunks rescan the region list). Only
  // then is the first region released.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> small_regions_done{0};

  std::thread blocked([&] {
    pool.ParallelFor(0, 4, 1, [&](size_t, size_t) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  });

  std::thread small([&] {
    for (int round = 0; round < 50; ++round) {
      std::atomic<int> count{0};
      pool.ParallelFor(0, 64, 1, [&](size_t begin, size_t end) {
        count.fetch_add(static_cast<int>(end - begin),
                        std::memory_order_relaxed);
      });
      ASSERT_EQ(count.load(), 64) << "round " << round;
      small_regions_done.fetch_add(1, std::memory_order_relaxed);
    }
  });

  small.join();
  EXPECT_EQ(small_regions_done.load(), 50);
  release.store(true, std::memory_order_release);
  blocked.join();
}

TEST(ThreadPoolStressTest, RegionAfterSustainedQuiescenceCompletes) {
  // After ~160 ms of quiescence workers deep-park indefinitely (no idle
  // polling). A region registered then must still complete — including one
  // whose chunks NEED a second thread — because registration wakes one
  // deep-parked worker past the hardware clamp and that worker restores
  // the timed-rescan regime.
  ThreadPool pool(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::atomic<int> count{0};
  pool.ParallelFor(0, 64, 1, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin),
                    std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64);

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  TestLatch both_started(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 2, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(both_started.ArriveAndWait())
          << "sibling chunk never started after deep park";
      ran.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolStressTest, DeepNestingCompletes) {
  // Nesting depth bounded only by the stack: four levels of regions on one
  // two-worker pool, every leaf index covered exactly once.
  ThreadPool pool(2);
  constexpr size_t kFan = 4;
  std::atomic<size_t> leaves{0};
  std::function<void(size_t)> descend = [&](size_t depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pool.ParallelFor(0, kFan, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) descend(depth - 1);
    });
  };
  descend(4);
  EXPECT_EQ(leaves.load(), kFan * kFan * kFan * kFan);
}

TEST(ThreadPoolStressTest, CpuAccountingSurvivesConcurrentRegions) {
  // Each caller's ParallelFor must report its own region's CPU, even while
  // other regions run: the per-region counter must not bleed across
  // regions. (Exact attribution under nesting is documented best-effort;
  // all this asserts is per-region isolation of the counters and a
  // non-zero spin measurement.)
  ThreadPool pool(3);
  constexpr size_t kCallers = 3;
  std::vector<double> cpu(kCallers, 0.0);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<uint64_t> sink{0};
      cpu[c] = pool.ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
        uint64_t local = begin + 1;
        for (uint64_t j = 0; j < 2000000 * (end - begin); ++j) {
          local = local * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
      EXPECT_NE(sink.load(), 0u);
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_GT(cpu[c], 0.0) << "caller " << c;
  }
}

}  // namespace
}  // namespace embellish
