#include "common/status.h"

#include <gtest/gtest.h>

namespace embellish {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad bucket size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad bucket size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bucket size");
}

TEST(StatusTest, AllFactoriesMapToDistinctCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::CryptoError("x").IsCryptoError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCryptoError), "CryptoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubler(Result<int> in) {
  EMB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Internal("boom")).status().IsInternal());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  EMB_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsOutOfRange());
}

}  // namespace
}  // namespace embellish
