#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace embellish {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100, 1, [&](size_t begin, size_t end) {
    calls.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunksRespectMinGrainAndAreContiguous) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  constexpr size_t kGrain = 64;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(0, kN, kGrain, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    ASSERT_LT(begin, end);
    covered += end - begin;
    // Every chunk except the final partial one is at least the grain.
    if (end != kN) EXPECT_GE(end - begin, kGrain);
  }
  EXPECT_EQ(covered, kN);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<uint64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(0, kN, 128, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), kN * (kN + 1) / 2);
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 256, 1,
                     [&](size_t begin, size_t end) {
                       count.fetch_add(static_cast<int>(end - begin));
                     });
    ASSERT_EQ(count.load(), 256) << "round " << round;
  }
}

TEST(ThreadPoolTest, ReportsCpuTime) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sink{0};
  const double cpu_ms =
      pool.ParallelFor(0, 4, 1, [&](size_t begin, size_t end) {
        // Sequentially-dependent LCG chain: cannot be folded away, so each
        // chunk burns measurable CPU.
        uint64_t local = begin + 1;
        for (uint64_t j = 0; j < 5000000 * (end - begin); ++j) {
          local = local * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
  EXPECT_GT(cpu_ms, 0.0);
  EXPECT_NE(sink.load(), 0u);
}

TEST(ThreadPoolTest, ConcurrentCallersFromDistinctThreadsAllComplete) {
  // The sharded server lets several batch workers fan their own query's
  // shards out over one shared shard pool. Concurrent ParallelFor calls may
  // degrade to caller-thread execution when the single job slot is taken,
  // but every caller must still complete its full index range exactly once.
  ThreadPool pool(3);
  constexpr size_t kCallers = 6;
  constexpr size_t kRange = 512;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    v = std::vector<std::atomic<int>>(kRange);
    for (auto& h : v) h.store(0);
  }
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(0, kRange, 1, [&, c](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[c][i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  ThreadPool* a = ThreadPool::Default();
  ThreadPool* b = ThreadPool::Default();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
}

}  // namespace
}  // namespace embellish
