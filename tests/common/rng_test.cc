#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace embellish {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.08);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), orig.begin()));  // w.h.p.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleHandlesDegenerateSizes) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, FillBytesCoversAllPositions) {
  Rng rng(47);
  std::vector<uint8_t> buf(37, 0);
  // 64 fills of 37 bytes: every position should be nonzero at least once.
  std::vector<bool> touched(37, false);
  for (int it = 0; it < 64; ++it) {
    rng.FillBytes(buf.data(), buf.size());
    for (size_t i = 0; i < buf.size(); ++i) {
      if (buf[i] != 0) touched[i] = true;
    }
  }
  for (bool t : touched) EXPECT_TRUE(t);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(51);
  Rng child = a.Fork();
  // Child diverges from parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == child.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace embellish
