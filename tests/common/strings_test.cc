#include "common/strings.h"

#include <gtest/gtest.h>

namespace embellish {
namespace {

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StringPrintf("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StrSplitTest, BasicSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyPiecesByDefault) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrSplitTest, SkipEmpty) {
  auto parts = StrSplit("a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StrSplitTest, EmptyInput) {
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
  EXPECT_TRUE(StrSplit("", ',', true).empty());
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  std::vector<std::string> orig{"one", "two", "three"};
  EXPECT_EQ(StrSplit(StrJoin(orig, "|"), '|'), orig);
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("OsteoSARCOMA"), "osteosarcoma");
  EXPECT_EQ(AsciiToLower("abc123-XYZ"), "abc123-xyz");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("terms 123", "terms "));
  EXPECT_FALSE(StartsWith("term", "terms"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StripAsciiWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("nostrip"), "nostrip");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(ThousandsTest, InsertsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(117798), "117,798");
  EXPECT_EQ(WithThousandsSeparators(1234567890ULL), "1,234,567,890");
}

}  // namespace
}  // namespace embellish
