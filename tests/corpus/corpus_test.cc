#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace embellish::corpus {
namespace {

Corpus MakeTinyCorpus() {
  // doc 0: {0, 1, 1}, doc 1: {1, 2}, doc 2: {2, 2, 2}
  std::vector<Document> docs(3);
  docs[0].tokens = {0, 1, 1};
  docs[1].tokens = {1, 2};
  docs[2].tokens = {2, 2, 2};
  return Corpus(std::move(docs));
}

TEST(CorpusTest, AssignsSequentialIds) {
  Corpus c = MakeTinyCorpus();
  ASSERT_EQ(c.document_count(), 3u);
  for (DocId i = 0; i < 3; ++i) EXPECT_EQ(c.document(i).id, i);
}

TEST(CorpusTest, DocumentFrequencyCountsDocumentsNotOccurrences) {
  Corpus c = MakeTinyCorpus();
  EXPECT_EQ(c.DocumentFrequency(0), 1u);
  EXPECT_EQ(c.DocumentFrequency(1), 2u);  // in docs 0 and 1
  EXPECT_EQ(c.DocumentFrequency(2), 2u);  // in docs 1 and 2 (not 3!)
  EXPECT_EQ(c.DocumentFrequency(99), 0u);
}

TEST(CorpusTest, DistinctTermsSorted) {
  Corpus c = MakeTinyCorpus();
  EXPECT_EQ(c.DistinctTerms(), (std::vector<wordnet::TermId>{0, 1, 2}));
}

TEST(CorpusTest, TotalTokens) {
  EXPECT_EQ(MakeTinyCorpus().TotalTokens(), 8u);
}

TEST(CorpusTest, RenderTextUsesLexicon) {
  auto lex = testutil::TinyLexicon();
  std::vector<Document> docs(1);
  docs[0].tokens = {lex.FindTerm("dog"), lex.FindTerm("cat")};
  Corpus c(std::move(docs));
  EXPECT_EQ(c.RenderText(0, lex), "dog cat");
}

TEST(CorpusTest, EmptyCorpus) {
  Corpus c({});
  EXPECT_EQ(c.document_count(), 0u);
  EXPECT_EQ(c.TotalTokens(), 0u);
  EXPECT_TRUE(c.DistinctTerms().empty());
}

}  // namespace
}  // namespace embellish::corpus
