#include "corpus/zipf.h"

#include <cmath>

#include <gtest/gtest.h>

namespace embellish::corpus {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.2);
  for (size_t k = 1; k < 50; ++k) {
    EXPECT_LT(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfTest, ClassicRatioBetweenRanks) {
  // With s = 1, P(0)/P(1) == 2, P(0)/P(9) == 10.
  ZipfSampler zipf(1000, 1.0);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(9), 10.0, 1e-9);
}

TEST(ZipfTest, SampleStaysInRange) {
  ZipfSampler zipf(30, 1.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 30u);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesTrackPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(2);
  constexpr int kDraws = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 0; k < 5; ++k) {
    double expected = zipf.Pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.05 + 50);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, LastRankIsNotOverWeighted) {
  // Regression: the old constructor clamped cdf_.back() to 1.0, silently
  // folding all accumulated rounding error into Pmf(n-1). The tail mass must
  // match its analytic value and stay strictly below its neighbour even for
  // large n where the rounding error used to be largest.
  for (size_t n : {100u, 10000u, 250000u}) {
    ZipfSampler zipf(n, 1.0);
    double total = 0;
    for (size_t k = 0; k < n; ++k) total += 1.0 / static_cast<double>(k + 1);
    EXPECT_NEAR(zipf.Pmf(n - 1), (1.0 / static_cast<double>(n)) / total,
                1e-15)
        << "n=" << n;
    EXPECT_LT(zipf.Pmf(n - 1), zipf.Pmf(n - 2)) << "n=" << n;
    // And the mass still sums to 1.
    double sum = 0;
    for (size_t k = 0; k < n; ++k) sum += zipf.Pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  ZipfSampler flat(100, 0.5);
  ZipfSampler steep(100, 2.0);
  EXPECT_LT(flat.Pmf(0), steep.Pmf(0));
}

}  // namespace
}  // namespace embellish::corpus
