#include "corpus/generator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testutil.h"

namespace embellish::corpus {
namespace {

TEST(CorpusGeneratorTest, ValidatesOptions) {
  auto lex = testutil::SmallSyntheticLexicon(1000);
  SyntheticCorpusOptions o;
  o.num_docs = 0;
  EXPECT_FALSE(GenerateSyntheticCorpus(lex, o).ok());
  o = SyntheticCorpusOptions{};
  o.mean_doc_tokens = 1;
  EXPECT_FALSE(GenerateSyntheticCorpus(lex, o).ok());
  o = SyntheticCorpusOptions{};
  o.topic_fraction = 1.5;
  EXPECT_FALSE(GenerateSyntheticCorpus(lex, o).ok());
  o = SyntheticCorpusOptions{};
  o.zipf_s = 0.0;
  EXPECT_FALSE(GenerateSyntheticCorpus(lex, o).ok());
}

TEST(CorpusGeneratorTest, ProducesRequestedScale) {
  auto lex = testutil::SmallSyntheticLexicon(2000);
  SyntheticCorpusOptions o;
  o.num_docs = 200;
  o.mean_doc_tokens = 50;
  o.seed = 1;
  auto c = GenerateSyntheticCorpus(lex, o);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->document_count(), 200u);
  double avg = static_cast<double>(c->TotalTokens()) / 200.0;
  EXPECT_NEAR(avg, 50.0, 10.0);
  // Doc lengths bounded by [mean/2, 3*mean/2].
  for (const Document& d : c->documents()) {
    EXPECT_GE(d.tokens.size(), 25u);
    EXPECT_LE(d.tokens.size(), 76u);
  }
}

TEST(CorpusGeneratorTest, Deterministic) {
  auto lex = testutil::SmallSyntheticLexicon(1500);
  SyntheticCorpusOptions o;
  o.num_docs = 50;
  o.seed = 9;
  auto a = GenerateSyntheticCorpus(lex, o);
  auto b = GenerateSyntheticCorpus(lex, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (DocId i = 0; i < 50; ++i) {
    EXPECT_EQ(a->document(i).tokens, b->document(i).tokens);
  }
  o.seed = 10;
  auto c = GenerateSyntheticCorpus(lex, o);
  EXPECT_NE(a->document(0).tokens, c->document(0).tokens);
}

TEST(CorpusGeneratorTest, AllTokensAreValidTermIds) {
  auto lex = testutil::SmallSyntheticLexicon(1200);
  auto c = testutil::SmallCorpus(lex, 100);
  for (const Document& d : c.documents()) {
    for (wordnet::TermId t : d.tokens) {
      ASSERT_LT(t, lex.term_count());
    }
  }
}

TEST(CorpusGeneratorTest, DocumentFrequencyIsZipfSkewed) {
  auto lex = testutil::SmallSyntheticLexicon(3000);
  SyntheticCorpusOptions o;
  o.num_docs = 400;
  o.mean_doc_tokens = 120;
  o.seed = 4;
  auto c = GenerateSyntheticCorpus(lex, o);
  ASSERT_TRUE(c.ok());
  std::vector<uint32_t> dfs;
  for (wordnet::TermId t : c->DistinctTerms()) {
    dfs.push_back(c->DocumentFrequency(t));
  }
  std::sort(dfs.rbegin(), dfs.rend());
  ASSERT_GT(dfs.size(), 100u);
  // Heavy skew: the most frequent term reaches far more documents than the
  // median one.
  EXPECT_GT(dfs.front(), 10u * std::max<uint32_t>(1, dfs[dfs.size() / 2]));
}

TEST(CorpusGeneratorTest, TopicLocalityCreatesCooccurrence) {
  // With strong topicality, a document's tokens concentrate on a small
  // dictionary subset compared to a topic-free corpus.
  auto lex = testutil::SmallSyntheticLexicon(4000);
  SyntheticCorpusOptions topical;
  topical.num_docs = 60;
  topical.mean_doc_tokens = 150;
  topical.num_topics = 10;
  topical.terms_per_topic = 200;
  topical.topic_fraction = 0.9;
  topical.seed = 11;
  SyntheticCorpusOptions flat = topical;
  flat.topic_fraction = 0.0;
  auto ct = GenerateSyntheticCorpus(lex, topical);
  auto cf = GenerateSyntheticCorpus(lex, flat);
  ASSERT_TRUE(ct.ok());
  ASSERT_TRUE(cf.ok());
  auto avg_distinct = [](const Corpus& c) {
    double total = 0;
    for (const Document& d : c.documents()) {
      std::vector<wordnet::TermId> v = d.tokens;
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      total += static_cast<double>(v.size());
    }
    return total / static_cast<double>(c.document_count());
  };
  EXPECT_LT(avg_distinct(*ct), avg_distinct(*cf) * 0.8);
}

TEST(CorpusGeneratorTest, RejectsTinyLexicon) {
  auto lex = testutil::TinyLexicon();  // 14 terms, far below minimum
  SyntheticCorpusOptions o;
  EXPECT_FALSE(GenerateSyntheticCorpus(lex, o).ok());
}

}  // namespace
}  // namespace embellish::corpus
