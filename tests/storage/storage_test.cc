#include <gtest/gtest.h>

#include "index/builder.h"
#include "storage/block_device.h"
#include "storage/layout.h"
#include "testutil.h"

namespace embellish::storage {
namespace {

TEST(DiskModelTest, OptionsValidation) {
  DiskModelOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.block_bytes = 1000;  // not a power of two
  EXPECT_FALSE(o.Validate().ok());
  o = DiskModelOptions{};
  o.transfer_mb_per_s = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = DiskModelOptions{};
  o.avg_seek_ms = -1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DiskModelTest, CreateRejectsInvalidOptions) {
  DiskModelOptions o;
  EXPECT_TRUE(SimulatedDisk::Create(o).ok());
  o.block_bytes = 0;
  auto disk = SimulatedDisk::Create(o);
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsInvalidArgument());
}

TEST(DiskModelTest, DirectConstructionClampsInvalidOptions) {
  // Regression: the old assert() compiled out under NDEBUG, so
  // block_bytes == 0 reached the BlocksForBytes division in Release builds.
  DiskModelOptions o;
  o.block_bytes = 0;
  SimulatedDisk disk(o);
  EXPECT_EQ(disk.options().block_bytes, DiskModelOptions{}.block_bytes);
  EXPECT_EQ(disk.BlocksForBytes(1), 1u);  // no divide-by-zero
}

TEST(DiskModelTest, BlocksForBytes) {
  SimulatedDisk disk;
  EXPECT_EQ(disk.BlocksForBytes(0), 0u);
  EXPECT_EQ(disk.BlocksForBytes(1), 1u);
  EXPECT_EQ(disk.BlocksForBytes(1024), 1u);
  EXPECT_EQ(disk.BlocksForBytes(1025), 2u);
}

TEST(DiskModelTest, ExtentCostDecomposition) {
  DiskModelOptions o;
  o.avg_seek_ms = 5.0;
  o.avg_rotational_ms = 3.0;
  o.transfer_mb_per_s = 64.0;  // 64e6 bytes/s -> 1 KiB block = 0.016 ms
  SimulatedDisk disk(o);
  EXPECT_DOUBLE_EQ(disk.ExtentReadMs(0), 0.0);
  double one = disk.ExtentReadMs(1);
  EXPECT_NEAR(one, 8.0 + 1024.0 / 64e6 * 1e3, 1e-9);
  // Doubling blocks adds only transfer time, not positioning.
  double two = disk.ExtentReadMs(2);
  EXPECT_NEAR(two - one, 1024.0 / 64e6 * 1e3, 1e-9);
}

TEST(DiskModelTest, AccountingAccumulatesAndResets) {
  SimulatedDisk disk;
  disk.ChargeExtent(2);
  disk.ChargeExtent(3);
  disk.ChargeExtent(0);  // no-op
  EXPECT_EQ(disk.accumulated_extents(), 2u);
  EXPECT_EQ(disk.accumulated_blocks(), 5u);
  EXPECT_NEAR(disk.accumulated_ms(),
              disk.ExtentReadMs(2) + disk.ExtentReadMs(3), 1e-9);
  disk.ResetAccounting();
  EXPECT_EQ(disk.accumulated_extents(), 0u);
  EXPECT_DOUBLE_EQ(disk.accumulated_ms(), 0.0);
}

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 31)),
        corp_(testutil::SmallCorpus(lex_, 120, 32)),
        built_(std::move(index::BuildIndex(corp_, {})).value()) {
    // Three groups of four indexed terms each.
    auto terms = built_.index.IndexedTerms();
    for (int g = 0; g < 3; ++g) {
      groups_.push_back({terms[g * 4], terms[g * 4 + 1], terms[g * 4 + 2],
                         terms[g * 4 + 3]});
    }
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  std::vector<std::vector<wordnet::TermId>> groups_;
};

TEST_F(LayoutTest, ColocatedGroupsUseOneExtent) {
  auto layout = StorageLayout::Build(built_.index, groups_,
                                     LayoutPolicy::kBucketColocated, {});
  EXPECT_EQ(layout.group_count(), 3u);
  for (size_t g = 0; g < 3; ++g) {
    ASSERT_TRUE(layout.GroupExtentCount(g).ok());
    EXPECT_EQ(*layout.GroupExtentCount(g), 1u);
  }
}

TEST_F(LayoutTest, ScatteredGroupsUseOneExtentPerTerm) {
  auto layout = StorageLayout::Build(built_.index, groups_,
                                     LayoutPolicy::kScattered, {});
  for (size_t g = 0; g < 3; ++g) {
    ASSERT_TRUE(layout.GroupExtentCount(g).ok());
    EXPECT_EQ(*layout.GroupExtentCount(g), groups_[g].size());
  }
}

TEST_F(LayoutTest, OutOfRangeGroupSurfacesAnError) {
  // Regression: out-of-range group indexing was UB on group_extents_.
  auto layout = StorageLayout::Build(built_.index, groups_,
                                     LayoutPolicy::kBucketColocated, {});
  auto count = layout.GroupExtentCount(layout.group_count());
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsOutOfRange());
  SimulatedDisk disk;
  Status charged = layout.ChargeGroupRead(999999, &disk);
  EXPECT_TRUE(charged.IsOutOfRange());
  EXPECT_EQ(disk.accumulated_extents(), 0u);  // nothing charged
}

TEST_F(LayoutTest, ColocationReducesReadCost) {
  // Section 4's stated motivation for bucket-colocated storage.
  auto colocated = StorageLayout::Build(built_.index, groups_,
                                        LayoutPolicy::kBucketColocated, {});
  auto scattered = StorageLayout::Build(built_.index, groups_,
                                        LayoutPolicy::kScattered, {});
  SimulatedDisk d1, d2;
  ASSERT_TRUE(colocated.ChargeGroupRead(0, &d1).ok());
  ASSERT_TRUE(scattered.ChargeGroupRead(0, &d2).ok());
  EXPECT_LT(d1.accumulated_ms(), d2.accumulated_ms());
  // Same data volume modulo block rounding.
  EXPECT_LE(d1.accumulated_blocks(), d2.accumulated_blocks() + 4);
}

TEST_F(LayoutTest, CapacityCoversAllLists) {
  auto layout = StorageLayout::Build(built_.index, groups_,
                                     LayoutPolicy::kBucketColocated, {});
  uint64_t bytes = 0;
  for (const auto& g : groups_) {
    for (auto t : g) bytes += built_.index.ListBytes(t);
  }
  EXPECT_GE(layout.total_blocks() * 1024, bytes);
}

TEST_F(LayoutTest, EmptyTermsStillAddressable) {
  std::vector<std::vector<wordnet::TermId>> groups{{9999999, 9999998}};
  auto layout = StorageLayout::Build(built_.index, groups,
                                     LayoutPolicy::kBucketColocated, {});
  SimulatedDisk disk;
  ASSERT_TRUE(layout.ChargeGroupRead(0, &disk).ok());
  EXPECT_GT(disk.accumulated_ms(), 0.0);  // minimum one block
}

}  // namespace
}  // namespace embellish::storage
