#include "index/builder.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "index/dictionary.h"
#include "testutil.h"

namespace embellish::index {
namespace {

TEST(IndexBuilderTest, ValidatesOptions) {
  auto lex = testutil::SmallSyntheticLexicon(1000);
  auto corp = testutil::SmallCorpus(lex, 30);
  IndexBuildOptions o;
  o.impact_bits = 1;
  EXPECT_FALSE(BuildIndex(corp, o).ok());
  o.impact_bits = 9;
  EXPECT_FALSE(BuildIndex(corp, o).ok());
}

TEST(IndexBuilderTest, RejectsEmptyCorpus) {
  corpus::Corpus empty({});
  EXPECT_FALSE(BuildIndex(empty, {}).ok());
}

TEST(IndexBuilderTest, EveryDistinctTermIndexed) {
  auto lex = testutil::SmallSyntheticLexicon(1500);
  auto corp = testutil::SmallCorpus(lex, 100);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.term_count(), corp.DistinctTerms().size());
  EXPECT_EQ(out->index.document_count(), corp.document_count());
}

TEST(IndexBuilderTest, ListLengthEqualsDocumentFrequency) {
  auto lex = testutil::SmallSyntheticLexicon(1500);
  auto corp = testutil::SmallCorpus(lex, 100);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  for (wordnet::TermId t : corp.DistinctTerms()) {
    EXPECT_EQ(out->index.ListLength(t), corp.DocumentFrequency(t));
  }
}

TEST(IndexBuilderTest, ListsAreImpactOrdered) {
  auto lex = testutil::SmallSyntheticLexicon(1500);
  auto corp = testutil::SmallCorpus(lex, 150);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  for (wordnet::TermId t : out->index.IndexedTerms()) {
    const auto* list = out->index.postings(t);
    ASSERT_NE(list, nullptr);
    for (size_t i = 1; i < list->size(); ++i) {
      EXPECT_GE((*list)[i - 1].impact, (*list)[i].impact);
    }
  }
}

TEST(IndexBuilderTest, EachDocumentAppearsAtMostOncePerList) {
  auto lex = testutil::SmallSyntheticLexicon(1200);
  auto corp = testutil::SmallCorpus(lex, 80);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  for (wordnet::TermId t : out->index.IndexedTerms()) {
    const auto* list = out->index.postings(t);
    std::set<corpus::DocId> docs;
    for (const Posting& p : *list) {
      EXPECT_TRUE(docs.insert(p.doc).second) << "dup doc in list";
    }
  }
}

TEST(IndexBuilderTest, ImpactsMatchFormula4OnHandCorpus) {
  // Two tiny documents with known term frequencies.
  // doc0 = {a, a, b}; doc1 = {b}.
  std::vector<corpus::Document> docs(2);
  docs[0].tokens = {0, 0, 1};
  docs[1].tokens = {1};
  corpus::Corpus corp(std::move(docs));
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());

  const double w_a = std::log(1.0 + 2.0 / 1.0);   // f_a = 1
  const double w_b = std::log(1.0 + 2.0 / 2.0);   // f_b = 2
  const double wd0_a = 1.0 + std::log(2.0);
  const double wd0_b = 1.0;
  const double W0 = std::sqrt(wd0_a * wd0_a + wd0_b * wd0_b);
  const double p_a0 = wd0_a * w_a / W0;
  const double p_b0 = wd0_b * w_b / W0;
  const double p_b1 = 1.0 * w_b / 1.0;

  EXPECT_NEAR(out->max_real_impact, std::max({p_a0, p_b0, p_b1}), 1e-12);
  // Quantized ordering must respect the real ordering.
  const auto* list_a = out->index.postings(0);
  const auto* list_b = out->index.postings(1);
  ASSERT_EQ(list_a->size(), 1u);
  ASSERT_EQ(list_b->size(), 2u);
  EXPECT_EQ(out->index.postings(0)->front().impact,
            out->quantizer.Quantize(p_a0));
  // b's list is impact-ordered: doc1 (full weight) before doc0.
  EXPECT_EQ(list_b->front().doc, 1u);
  EXPECT_EQ(list_b->front().impact, out->quantizer.Quantize(p_b1));
}

TEST(IndexBuilderTest, SerializationRoundTrip) {
  auto lex = testutil::SmallSyntheticLexicon(1200);
  auto corp = testutil::SmallCorpus(lex, 60);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  wordnet::TermId term = out->index.IndexedTerms()[5];
  auto bytes = out->index.SerializeList(term);
  EXPECT_EQ(bytes.size(), out->index.ListBytes(term));
  auto back = InvertedIndex::DeserializeList(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *out->index.postings(term));
}

TEST(IndexBuilderTest, DeserializeRejectsBadLength) {
  EXPECT_FALSE(InvertedIndex::DeserializeList({1, 2, 3}).ok());
  EXPECT_TRUE(InvertedIndex::DeserializeList({}).ok());  // empty list is fine
}

TEST(IndexBuilderTest, UnknownTermHasNoList) {
  auto lex = testutil::SmallSyntheticLexicon(1200);
  auto corp = testutil::SmallCorpus(lex, 30);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.postings(9999999), nullptr);
  EXPECT_EQ(out->index.ListLength(9999999), 0u);
  EXPECT_TRUE(out->index.SerializeList(9999999).empty());
}

TEST(SearchDictionaryTest, IntersectsIndexWithLexicon) {
  auto lex = testutil::SmallSyntheticLexicon(1200);
  auto corp = testutil::SmallCorpus(lex, 60);
  auto out = BuildIndex(corp, {});
  ASSERT_TRUE(out.ok());
  auto dict = SearchDictionary::Build(lex, out->index);
  EXPECT_EQ(dict.size(), out->index.term_count());
  for (wordnet::TermId t : dict.terms()) {
    EXPECT_TRUE(dict.Contains(t));
    EXPECT_LT(t, lex.term_count());
    EXPECT_GT(out->index.ListLength(t), 0u);
  }
  EXPECT_FALSE(dict.Contains(9999999));
}

TEST(SearchDictionaryTest, AllLexiconTerms) {
  auto lex = testutil::TinyLexicon();
  auto dict = SearchDictionary::AllLexiconTerms(lex);
  EXPECT_EQ(dict.size(), lex.term_count());
  EXPECT_TRUE(dict.Contains(0));
}

}  // namespace
}  // namespace embellish::index
