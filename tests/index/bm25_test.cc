// Okapi BM25 scoring (Appendix B: the PR scheme applies to any similarity
// model that scores from query/document vectors, "including Okapi").

#include <cmath>

#include <gtest/gtest.h>

#include "core/private_retrieval.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::index {
namespace {

TEST(Bm25ImpactTest, KnownValue) {
  // N=100, f_t=10, f_dt=3, |d| = avg: norm = k1, so
  // impact = idf * 3*(k1+1)/(3+k1), idf = ln(1 + 90.5/10.5).
  Bm25Params p;
  double idf = std::log(1.0 + (100.0 - 10.0 + 0.5) / (10.0 + 0.5));
  double expected = idf * 3.0 * (p.k1 + 1.0) / (3.0 + p.k1);
  EXPECT_NEAR(Bm25Impact(100, 10, 3, 50.0, 50.0), expected, 1e-12);
}

TEST(Bm25ImpactTest, RareTermsWeighMore) {
  EXPECT_GT(Bm25Impact(1000, 1, 2, 100, 100),
            Bm25Impact(1000, 100, 2, 100, 100));
}

TEST(Bm25ImpactTest, TermFrequencySaturates) {
  // BM25's hallmark: the gain from f_dt=1 -> 2 exceeds 10 -> 11.
  double g1 = Bm25Impact(1000, 10, 2, 100, 100) -
              Bm25Impact(1000, 10, 1, 100, 100);
  double g10 = Bm25Impact(1000, 10, 11, 100, 100) -
               Bm25Impact(1000, 10, 10, 100, 100);
  EXPECT_GT(g1, g10 * 2);
}

TEST(Bm25ImpactTest, LongDocumentsPenalized) {
  EXPECT_GT(Bm25Impact(1000, 10, 3, 50, 100),
            Bm25Impact(1000, 10, 3, 200, 100));
}

TEST(Bm25ImpactTest, BIsTheLengthKnob) {
  Bm25Params no_norm;
  no_norm.b = 0.0;
  EXPECT_DOUBLE_EQ(Bm25Impact(1000, 10, 3, 50, 100, no_norm),
                   Bm25Impact(1000, 10, 3, 200, 100, no_norm));
}

TEST(Bm25BuildTest, OptionsValidation) {
  auto lex = testutil::SmallSyntheticLexicon(1200, 61);
  auto corp = testutil::SmallCorpus(lex, 50, 62);
  IndexBuildOptions o;
  o.scoring = ScoringModel::kOkapiBM25;
  o.bm25.k1 = 0.0;
  EXPECT_FALSE(BuildIndex(corp, o).ok());
  o = IndexBuildOptions{};
  o.scoring = ScoringModel::kOkapiBM25;
  o.bm25.b = 1.5;
  EXPECT_FALSE(BuildIndex(corp, o).ok());
}

TEST(Bm25BuildTest, ProducesValidImpactOrderedIndex) {
  auto lex = testutil::SmallSyntheticLexicon(1500, 63);
  auto corp = testutil::SmallCorpus(lex, 150, 64);
  IndexBuildOptions o;
  o.scoring = ScoringModel::kOkapiBM25;
  auto out = BuildIndex(corp, o);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.term_count(), corp.DistinctTerms().size());
  for (wordnet::TermId t : out->index.IndexedTerms()) {
    const auto* list = out->index.postings(t);
    EXPECT_EQ(list->size(), corp.DocumentFrequency(t));
    for (size_t i = 1; i < list->size(); ++i) {
      EXPECT_GE((*list)[i - 1].impact, (*list)[i].impact);
    }
  }
}

TEST(Bm25BuildTest, RankingsDifferFromCosine) {
  // The two models are genuinely different scorers on a skewed corpus.
  auto lex = testutil::SmallSyntheticLexicon(1500, 65);
  auto corp = testutil::SmallCorpus(lex, 200, 66);
  auto cosine = BuildIndex(corp, {});
  IndexBuildOptions o;
  o.scoring = ScoringModel::kOkapiBM25;
  auto bm25 = BuildIndex(corp, o);
  ASSERT_TRUE(cosine.ok());
  ASSERT_TRUE(bm25.ok());
  Rng rng(1);
  auto terms = cosine->index.IndexedTerms();
  bool any_difference = false;
  for (int trial = 0; trial < 10 && !any_difference; ++trial) {
    std::vector<wordnet::TermId> q;
    for (int i = 0; i < 4; ++i) q.push_back(terms[rng.Uniform(terms.size())]);
    auto rc = EvaluateFull(cosine->index, q);
    auto rb = EvaluateFull(bm25->index, q);
    if (rc.size() != rb.size()) {
      any_difference = true;
      break;
    }
    for (size_t i = 0; i < rc.size(); ++i) {
      if (rc[i].doc != rb[i].doc) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Bm25PrivateRetrievalTest, Claim1HoldsUnderBm25) {
  // The generality claim: swap the scoring model, keep the whole private
  // pipeline, and the PR ranking still equals the plaintext ranking.
  auto lex = testutil::SmallSyntheticLexicon(1500, 67);
  auto corp = testutil::SmallCorpus(lex, 200, 68);
  IndexBuildOptions io;
  io.scoring = ScoringModel::kOkapiBM25;
  auto built = BuildIndex(corp, io);
  ASSERT_TRUE(built.ok());
  auto org = testutil::MakeBuckets(lex, 4, 64);
  auto layout = storage::StorageLayout::Build(
      built->index, org.buckets(), storage::LayoutPolicy::kBucketColocated,
      {});
  Rng rng(2);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  ASSERT_TRUE(keys.ok());
  core::PrivateRetrievalClient client(&org, &keys->public_key(),
                                      &keys->private_key());
  core::PrivateRetrievalServer server(&built->index, &org, &layout);

  auto terms = built->index.IndexedTerms();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<wordnet::TermId> q;
    for (int i = 0; i < 5; ++i) q.push_back(terms[rng.Uniform(terms.size())]);
    core::RetrievalCosts costs;
    auto pr = core::RunPrivateQuery(client, server, keys->public_key(), q, 30,
                                    &rng, &costs);
    ASSERT_TRUE(pr.ok());
    std::vector<wordnet::TermId> distinct = q;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto reference = EvaluateFull(built->index, distinct);
    if (reference.size() > 30) reference.resize(30);
    ASSERT_EQ(pr->size(), reference.size());
    for (size_t i = 0; i < pr->size(); ++i) {
      EXPECT_EQ((*pr)[i], reference[i]);
    }
  }
}

}  // namespace
}  // namespace embellish::index
