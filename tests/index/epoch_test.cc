// IndexCatalog semantics: epoch numbering and pinning, delta ingestion
// under frozen statistics, background reshard, the frozen-catalog shims,
// and the impact-bound shard-skipping evaluator (identical bytes, fewer
// shard visits).

#include "index/epoch.h"

#include <gtest/gtest.h>

#include <set>

#include "common/answer_path.h"
#include "index/topk.h"
#include "testutil.h"

namespace embellish::index {
namespace {

class IndexEpochTest : public ::testing::Test {
 protected:
  IndexEpochTest()
      : lex_(testutil::SmallSyntheticLexicon(1200, 811)),
        corp_(testutil::SmallCorpus(lex_, 120, 812)),
        org_(std::make_shared<core::BucketOrganization>(
            testutil::MakeBuckets(lex_, 4, 64))) {}

  std::unique_ptr<IndexCatalog> MakeCatalog(size_t shard_count,
                                            ThreadPool* pool = nullptr) {
    IndexCatalogOptions options;
    options.sharding.shard_count = shard_count;
    options.build_layouts = false;  // index-only tests skip layout cost
    auto catalog = IndexCatalog::Create(corp_, org_, options, pool);
    EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
    return std::move(*catalog);
  }

  // Fresh documents over terms the corpus already uses, ids left to the
  // catalog (it assigns sequentially past the current count).
  std::vector<corpus::Document> SomeDeltaDocs(size_t count, uint64_t salt) {
    std::vector<wordnet::TermId> terms = corp_.DistinctTerms();
    std::vector<corpus::Document> docs(count);
    for (size_t d = 0; d < count; ++d) {
      for (size_t t = 0; t < 40; ++t) {
        docs[d].tokens.push_back(
            terms[(salt + 31 * d + 7 * t) % terms.size()]);
      }
    }
    return docs;
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = corp_.DistinctTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  std::shared_ptr<core::BucketOrganization> org_;
};

TEST_F(IndexEpochTest, CreateBuildsEpochOneMatchingBuildIndex) {
  auto catalog = MakeCatalog(3);
  auto snapshot = catalog->Acquire();
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_EQ(snapshot->shard_count(), 3u);
  ASSERT_NE(snapshot->sharded(), nullptr);
  EXPECT_FALSE(catalog->frozen());

  // The catalog's monolithic index is the same index a direct build
  // produces: every term's list matches posting for posting.
  auto direct = BuildIndex(corp_, {});
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(snapshot->index().document_count(),
            direct->index.document_count());
  for (wordnet::TermId term : direct->index.IndexedTerms()) {
    ASSERT_NE(snapshot->index().postings(term), nullptr);
    EXPECT_EQ(*snapshot->index().postings(term),
              *direct->index.postings(term));
  }
  EXPECT_EQ(catalog->stats().epoch_swaps, 0u);  // the first epoch is no swap
}

TEST_F(IndexEpochTest, ApplyDeltaInstallsSuccessorWithoutDisturbingPins) {
  auto catalog = MakeCatalog(2);
  auto pinned = catalog->Acquire();
  const size_t base_docs = pinned->index().document_count();

  // Remember a pinned list to prove immutability across the swap.
  auto query = SomeTerms(3, 17);
  const std::vector<Posting> pinned_list = *pinned->index().postings(query[0]);
  auto pinned_topk = EvaluateTopKEpoch(*pinned, query, 10);

  auto next = catalog->ApplyDelta(SomeDeltaDocs(9, 41));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ((*next)->epoch(), 2u);
  EXPECT_EQ((*next)->index().document_count(), base_docs + 9);
  EXPECT_EQ(catalog->Acquire()->epoch(), 2u);

  // The pinned snapshot is frozen: same bytes as before the cutover.
  EXPECT_EQ(*pinned->index().postings(query[0]), pinned_list);
  EXPECT_EQ(EvaluateTopKEpoch(*pinned, query, 10), pinned_topk);

  IndexCatalogStats stats = catalog->stats();
  EXPECT_EQ(stats.epoch_swaps, 1u);
  EXPECT_EQ(stats.delta_docs_ingested, 9u);
  // Two snapshots alive: the pin and the current epoch.
  EXPECT_EQ(stats.pinned_epochs, 2);
  pinned.reset();
  EXPECT_EQ(catalog->stats().pinned_epochs, 1);
}

TEST_F(IndexEpochTest, DeltaShardsStayConsistentWithTheirMonolith) {
  // The successor's per-shard delta merge must agree with its own merged
  // monolith: the sharded top-k and the monolithic full evaluation are the
  // same bytes (the invariant every serving tier leans on).
  for (ShardPartition partition :
       {ShardPartition::kDocRange, ShardPartition::kDocHash}) {
    IndexCatalogOptions options;
    options.sharding.shard_count = 3;
    options.sharding.partition = partition;
    options.build_layouts = false;
    auto catalog = IndexCatalog::Create(corp_, org_, options, nullptr);
    ASSERT_TRUE(catalog.ok());

    auto next = (*catalog)->ApplyDelta(SomeDeltaDocs(11, 97));
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_NE((*next)->sharded(), nullptr);

    for (size_t qa = 0; qa < 6; ++qa) {
      auto query = SomeTerms(5 * qa + 1, 13 * qa + 4);
      auto expected = EvaluateFull((*next)->index(), query);
      if (expected.size() > 10) expected.resize(10);
      EXPECT_EQ(EvaluateTopKEpoch(**next, query, 10), expected)
          << "partition " << static_cast<int>(partition) << " query " << qa;
    }

    // Every document landed in exactly one shard (the per-shard counts sum
    // to the monolith's).
    size_t sharded_docs = 0;
    std::set<corpus::DocId> seen;
    for (size_t s = 0; s < (*next)->shard_count(); ++s) {
      const InvertedIndex& shard = (*next)->sharded()->shard(s);
      for (wordnet::TermId term : shard.IndexedTerms()) {
        for (const Posting& p : *shard.postings(term)) seen.insert(p.doc);
      }
      sharded_docs += 0;  // counted via seen
    }
    (void)sharded_docs;
    std::set<corpus::DocId> mono;
    for (wordnet::TermId term : (*next)->index().IndexedTerms()) {
      for (const Posting& p : *(*next)->index().postings(term)) {
        mono.insert(p.doc);
      }
    }
    EXPECT_EQ(seen, mono);
  }
}

TEST_F(IndexEpochTest, RangePartitionPlacesDeltaDocsInLastShard) {
  // kDocRange boundaries are frozen at the last (re)shard: new documents
  // must grow the LAST range shard, never retroactively rebalance earlier
  // ones (which would change shard-local PIR answers for old docs).
  auto catalog = MakeCatalog(2);
  auto before = catalog->Acquire();
  const size_t base_docs = before->index().document_count();

  auto next = catalog->ApplyDelta(SomeDeltaDocs(7, 23));
  ASSERT_TRUE(next.ok());
  // Shard 0's postings are untouched by a delta beyond the frozen boundary.
  for (wordnet::TermId term : before->sharded()->shard(0).IndexedTerms()) {
    EXPECT_EQ(*(*next)->sharded()->shard(0).postings(term),
              *before->sharded()->shard(0).postings(term));
  }
  // The delta docs all scored past the base count.
  for (wordnet::TermId term : (*next)->sharded()->shard(1).IndexedTerms()) {
    for (const Posting& p : *(*next)->sharded()->shard(1).postings(term)) {
      EXPECT_LT(p.doc, base_docs + 7);
    }
  }
}

TEST_F(IndexEpochTest, ReshardRepartitionsWithoutChangingAnswers) {
  auto catalog = MakeCatalog(2);
  auto delta = catalog->ApplyDelta(SomeDeltaDocs(5, 67));
  ASSERT_TRUE(delta.ok());

  ShardingOptions wider;
  wider.shard_count = 4;
  auto resharded = catalog->Reshard(wider);
  ASSERT_TRUE(resharded.ok()) << resharded.status().ToString();
  EXPECT_EQ((*resharded)->epoch(), 3u);
  EXPECT_EQ((*resharded)->shard_count(), 4u);
  // Reshard re-partitions the same corpus: the monolith is shared, not
  // rebuilt, and plaintext answers cannot move.
  EXPECT_EQ((*resharded)->index_ptr().get(), (*delta)->index_ptr().get());
  for (size_t qa = 0; qa < 4; ++qa) {
    auto query = SomeTerms(3 * qa + 2, 11 * qa + 5);
    EXPECT_EQ(EvaluateTopKEpoch(**resharded, query, 8),
              EvaluateTopKEpoch(**delta, query, 8));
  }

  IndexCatalogStats stats = catalog->stats();
  EXPECT_EQ(stats.reshards, 1u);
  EXPECT_GT(stats.reshard_micros, 0u);
  EXPECT_EQ(stats.epoch_swaps, 2u);

  // Deltas continue against the re-frozen partition boundary.
  auto more = catalog->ApplyDelta(SomeDeltaDocs(3, 71));
  ASSERT_TRUE(more.ok());
  EXPECT_EQ((*more)->epoch(), 4u);
  EXPECT_EQ((*more)->shard_count(), 4u);
}

TEST_F(IndexEpochTest, AsyncBuildsInstallAndJoin) {
  auto catalog = MakeCatalog(2);
  catalog->ApplyDeltaAsync(SomeDeltaDocs(4, 31));
  ShardingOptions wider;
  wider.shard_count = 3;
  catalog->ReshardAsync(wider);
  catalog->WaitForBuilds();
  EXPECT_TRUE(catalog->last_async_status().ok());
  auto snapshot = catalog->Acquire();
  // Builders serialize on the build mutex, so both cutovers landed.
  EXPECT_EQ(snapshot->epoch(), 3u);
  EXPECT_EQ(snapshot->shard_count(), 3u);
  EXPECT_EQ(snapshot->index().document_count(),
            corp_.document_count() + 4);
}

TEST_F(IndexEpochTest, FrozenCatalogsRefuseMutation) {
  auto built = BuildIndex(corp_, {});
  ASSERT_TRUE(built.ok());
  IndexCatalogOptions options;
  options.build_layouts = false;
  auto frozen =
      IndexCatalog::Freeze(&built->index, org_.get(), nullptr, options);
  ASSERT_TRUE(frozen.ok());
  EXPECT_TRUE((*frozen)->frozen());

  auto delta = (*frozen)->ApplyDelta(SomeDeltaDocs(2, 5));
  EXPECT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsFailedPrecondition());
  ShardingOptions wider;
  wider.shard_count = 2;
  auto reshard = (*frozen)->Reshard(wider);
  EXPECT_FALSE(reshard.ok());
  EXPECT_TRUE(reshard.status().IsFailedPrecondition());

  // FreezeEpoch pins an exact snapshot (the bit-identity reference tool).
  auto live = MakeCatalog(2);
  auto pinned = live->Acquire();
  auto reference = IndexCatalog::FreezeEpoch(pinned);
  ASSERT_NE(reference, nullptr);
  EXPECT_TRUE(reference->frozen());
  EXPECT_EQ(reference->Acquire().get(), pinned.get());
}

TEST_F(IndexEpochTest, EpochTopKSkipsBoundedShardsWithIdenticalBytes) {
  // The satellite regression: a corpus whose high-impact postings for the
  // query terms are confined to early documents gives later range shards a
  // provably insufficient impact bound — the epoch evaluator must return
  // the EXACT bytes of the full evaluation while visiting fewer shards.
  std::vector<corpus::Document> docs;
  const wordnet::TermId kHot = 3, kWarm = 5, kFiller = 7;
  for (corpus::DocId d = 0; d < 80; ++d) {
    corpus::Document doc;
    doc.id = d;
    if (d < 20) {
      // Early docs: dense in the query terms.
      for (size_t i = 0; i < 6; ++i) doc.tokens.push_back(kHot);
      doc.tokens.push_back(kWarm);
    } else {
      // Late docs: filler only — zero impact bound for the query.
      for (size_t i = 0; i < 4; ++i) doc.tokens.push_back(kFiller);
    }
    docs.push_back(std::move(doc));
  }
  corpus::Corpus skewed(std::move(docs));

  IndexCatalogOptions options;
  options.sharding.shard_count = 8;
  options.sharding.partition = ShardPartition::kDocRange;
  options.build_layouts = false;
  auto catalog = IndexCatalog::Create(skewed, org_, options, nullptr);
  ASSERT_TRUE(catalog.ok());
  auto snapshot = (*catalog)->Acquire();

  const std::vector<wordnet::TermId> query = {kHot, kWarm};
  auto expected = EvaluateFull(snapshot->index(), query);
  ASSERT_GT(expected.size(), 10u);
  expected.resize(10);

  EvalStats stats;
  auto got = EvaluateTopKEpoch(*snapshot, query, 10, nullptr, &stats);
  EXPECT_EQ(got, expected);  // identical bytes...
  EXPECT_GT(stats.shards_skipped, 0u);  // ...with fewer shard trips
  EXPECT_EQ(stats.shards_visited + stats.shards_skipped, 8u);
  EXPECT_LT(stats.shards_visited, 8u);

  // Sanity across many k and queries: skipping never changes the answer.
  for (size_t k : {1u, 3u, 25u, 100u}) {
    auto full = EvaluateFull(snapshot->index(), query);
    if (full.size() > k) full.resize(k);
    EXPECT_EQ(EvaluateTopKEpoch(*snapshot, query, k), full) << "k=" << k;
  }
  const std::vector<wordnet::TermId> filler_query = {kFiller};
  auto filler_full = EvaluateFull(snapshot->index(), filler_query);
  if (filler_full.size() > 10) filler_full.resize(10);
  EXPECT_EQ(EvaluateTopKEpoch(*snapshot, filler_query, 10), filler_full);
}

TEST_F(IndexEpochTest, ShardImpactBoundMatchesHeadImpacts) {
  auto catalog = MakeCatalog(4);
  auto snapshot = catalog->Acquire();
  auto query = SomeTerms(9, 27);
  for (size_t s = 0; s < snapshot->shard_count(); ++s) {
    uint64_t expected = 0;
    for (wordnet::TermId term : query) {
      const auto* list = snapshot->sharded()->shard(s).postings(term);
      if (list != nullptr && !list->empty()) expected += list->front().impact;
    }
    EXPECT_EQ(snapshot->ShardImpactBound(s, query), expected)
        << "shard " << s;
  }
}

TEST_F(IndexEpochTest, BuildsNeverRunOnTheAnswerPath) {
  // The counted invariant: every index build this test triggers happens off
  // any thread marked as serving (no ScopedAnswerPath in scope here, and
  // the catalog's background builders are never marked).
  const uint64_t before = common::AnswerPathBuilds();
  auto catalog = MakeCatalog(3);
  catalog->ApplyDeltaAsync(SomeDeltaDocs(6, 19));
  ShardingOptions wider;
  wider.shard_count = 2;
  catalog->ReshardAsync(wider);
  {
    // A serving thread resolving and evaluating concurrently must not be
    // charged with a build.
    common::ScopedAnswerPath serving;
    for (int i = 0; i < 50; ++i) {
      auto snapshot = catalog->Acquire();
      EvaluateTopKEpoch(*snapshot, SomeTerms(i, 2 * i + 1), 5);
    }
  }
  catalog->WaitForBuilds();
  ASSERT_TRUE(catalog->last_async_status().ok());
  EXPECT_EQ(common::AnswerPathBuilds(), before);
}

}  // namespace
}  // namespace embellish::index
