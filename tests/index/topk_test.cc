#include "index/topk.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::index {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  TopKTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 21)),
        corp_(testutil::SmallCorpus(lex_, 150, 22)),
        built_(std::move(BuildIndex(corp_, {})).value()) {}

  // Reference scoring straight from the corpus token streams.
  std::unordered_map<corpus::DocId, uint64_t> BruteForce(
      const std::vector<wordnet::TermId>& query) {
    std::unordered_map<corpus::DocId, uint64_t> acc;
    for (wordnet::TermId term : query) {
      const auto* list = built_.index.postings(term);
      if (!list) continue;
      for (const Posting& p : *list) acc[p.doc] += p.impact;
    }
    return acc;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  BuildOutput built_;
};

TEST_F(TopKTest, FullEvaluationMatchesBruteForce) {
  Rng rng(1);
  auto terms = built_.index.IndexedTerms();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 5; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    auto result = EvaluateFull(built_.index, query);
    auto ref = BruteForce(query);
    ASSERT_EQ(result.size(), ref.size());
    for (const ScoredDoc& sd : result) {
      EXPECT_EQ(sd.score, ref.at(sd.doc));
    }
  }
}

TEST_F(TopKTest, ResultsAreCanonicallyOrdered) {
  Rng rng(2);
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query;
  for (int i = 0; i < 8; ++i) query.push_back(terms[rng.Uniform(terms.size())]);
  auto result = EvaluateFull(built_.index, query);
  for (size_t i = 1; i < result.size(); ++i) {
    if (result[i - 1].score == result[i].score) {
      EXPECT_LT(result[i - 1].doc, result[i].doc);
    } else {
      EXPECT_GT(result[i - 1].score, result[i].score);
    }
  }
}

TEST_F(TopKTest, TopKSelectsTheFullRankingsPrefixSet) {
  // Figure 10 semantics after the early-termination fix: the returned *set*
  // is exactly the full ranking's top-k set. When the evaluation drained
  // the lists (no early termination) scores and order match the full prefix
  // exactly; when it stopped early, each reported score is a lower bound on
  // the document's full score.
  Rng rng(3);
  auto terms = built_.index.IndexedTerms();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 6; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    auto full = EvaluateFull(built_.index, query);
    std::unordered_map<corpus::DocId, uint64_t> full_scores;
    for (const ScoredDoc& sd : full) full_scores[sd.doc] = sd.score;
    for (size_t k : {1u, 5u, 20u, 1000u}) {
      EvalStats stats;
      auto topk = EvaluateTopK(built_.index, query, k, &stats);
      ASSERT_EQ(topk.size(), std::min<size_t>(k, full.size()));
      if (!stats.early_terminated) {
        for (size_t i = 0; i < topk.size(); ++i) {
          EXPECT_EQ(topk[i], full[i]);
        }
      } else {
        std::set<corpus::DocId> expected, got;
        for (size_t i = 0; i < topk.size(); ++i) {
          expected.insert(full[i].doc);
          got.insert(topk[i].doc);
        }
        EXPECT_EQ(got, expected);
        for (const ScoredDoc& sd : topk) {
          EXPECT_LE(sd.score, full_scores.at(sd.doc));
          EXPECT_GT(sd.score, 0u);
        }
      }
    }
  }
}

TEST_F(TopKTest, DuplicateQueryTermsDoubleCount) {
  // Both evaluators treat the query as a bag (Formula 3 sums over t in q).
  auto terms = built_.index.IndexedTerms();
  wordnet::TermId t = terms[7];
  auto once = EvaluateFull(built_.index, {t});
  auto twice = EvaluateFull(built_.index, {t, t});
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice[i].score, 2 * once[i].score);
  }
}

TEST_F(TopKTest, UnindexedTermsContributeNothing) {
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[0], 99999999};
  auto with_unknown = EvaluateFull(built_.index, query);
  auto without = EvaluateFull(built_.index, {terms[0]});
  EXPECT_EQ(with_unknown.size(), without.size());
}

TEST_F(TopKTest, EmptyQueryYieldsEmptyResult) {
  EXPECT_TRUE(EvaluateFull(built_.index, {}).empty());
  EXPECT_TRUE(EvaluateTopK(built_.index, {}, 10).empty());
}

TEST_F(TopKTest, OnlyDocsContainingAQueryTermQualify) {
  // Candidate docs must appear in at least one query term's list (the
  // inverted-index property the paper's Section 2.2 describes).
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[3], terms[11]};
  auto result = EvaluateFull(built_.index, query);
  std::set<corpus::DocId> expected;
  for (auto t : query) {
    for (const Posting& p : *built_.index.postings(t)) expected.insert(p.doc);
  }
  EXPECT_EQ(result.size(), expected.size());
  for (const ScoredDoc& sd : result) {
    EXPECT_TRUE(expected.count(sd.doc));
    EXPECT_GT(sd.score, 0u);
  }
}

TEST(TopKEarlyTerminationTest, SkewedListsTerminateBeforeDraining) {
  // Regression for the Figure 10 bug: EvaluateTopK used to drain every
  // posting list to exhaustion — strictly more work than EvaluateFull, with
  // heap overhead on top. On an impact-skewed corpus the early-termination
  // condition must stop the evaluation after a small prefix.
  //
  // One dominant term list: two docs with near-maximal impacts followed by
  // a long tail of impact-1 docs. After the heads are popped, the remaining
  // cursor head bounds any outsider's reachable score at 1, so the top-2 is
  // settled almost immediately.
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  std::vector<Posting> skewed;
  skewed.push_back(Posting{0, 255});
  skewed.push_back(Posting{1, 254});
  for (corpus::DocId d = 2; d < 1500; ++d) skewed.push_back(Posting{d, 1});
  lists.emplace(7, std::move(skewed));
  InvertedIndex index(/*num_docs=*/1500, std::move(lists), /*impact_bits=*/8);

  EvalStats full_stats;
  auto full = EvaluateFull(index, {7}, &full_stats);
  EvalStats topk_stats;
  auto topk = EvaluateTopK(index, {7}, 2, &topk_stats);

  EXPECT_TRUE(topk_stats.early_terminated);
  EXPECT_LT(topk_stats.postings_scanned, full_stats.postings_scanned);
  EXPECT_EQ(full_stats.postings_scanned, 1500u);
  // Identical top-k set (and here identical scores: both winners' lists
  // were exhausted before the stop).
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_EQ(topk[0], full[0]);
  EXPECT_EQ(topk[1], full[1]);
}

TEST(TopKEarlyTerminationTest, MultiTermSkewAgreesWithFullOnTheSet) {
  // Several lists, termination mid-list: the selected set must still match
  // the full evaluation's prefix exactly. The heavy impacts are spaced so
  // every boundary gap exceeds the worst-case remaining upper bound (four
  // tail cursors at impact <= 3 each), which lets the evaluator stop at its
  // first termination check.
  constexpr uint32_t kHeavy1[] = {255, 240, 225, 210};
  constexpr uint32_t kHeavy2[] = {120, 110, 100, 90};
  Rng rng(17);
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  for (wordnet::TermId t = 0; t < 4; ++t) {
    std::vector<Posting> list;
    list.push_back(Posting{static_cast<corpus::DocId>(t), kHeavy1[t]});
    list.push_back(Posting{static_cast<corpus::DocId>(t + 10), kHeavy2[t]});
    for (corpus::DocId d = 0; d < 800; ++d) {
      list.push_back(Posting{100 + static_cast<corpus::DocId>(
                                 rng.Uniform(2000)),
                             static_cast<uint32_t>(1 + rng.Uniform(3))});
    }
    // Restore the builder's canonical (impact desc, doc asc) ordering and
    // de-duplicate docs within the list (a doc appears once per list).
    std::sort(list.begin(), list.end(), PostingOrder);
    std::vector<Posting> unique;
    std::set<corpus::DocId> seen;
    for (const Posting& p : list) {
      if (seen.insert(p.doc).second) unique.push_back(p);
    }
    lists.emplace(t, std::move(unique));
  }
  InvertedIndex index(/*num_docs=*/3000, std::move(lists), /*impact_bits=*/8);

  const std::vector<wordnet::TermId> query{0, 1, 2, 3};
  EvalStats full_stats;
  auto full = EvaluateFull(index, query, &full_stats);
  for (size_t k : {1u, 3u, 8u}) {
    EvalStats stats;
    auto topk = EvaluateTopK(index, query, k, &stats);
    ASSERT_EQ(topk.size(), std::min<size_t>(k, full.size()));
    EXPECT_TRUE(stats.early_terminated) << "k=" << k;
    EXPECT_LT(stats.postings_scanned, full_stats.postings_scanned);
    std::set<corpus::DocId> expected, got;
    for (size_t i = 0; i < topk.size(); ++i) {
      expected.insert(full[i].doc);
      got.insert(topk[i].doc);
    }
    EXPECT_EQ(got, expected) << "k=" << k;
  }
}

TEST(TopKEarlyTerminationTest, ChecksFireBetweenTheOldSixteenPopIntervals) {
  // The threshold-heap rewrite runs the termination test every pop
  // (amortized O(log k)) instead of every max(16, candidates/4) pops with
  // an O(candidates) selection. On a list whose top-1 settles after two
  // postings, the evaluation must stop there — not at the old 16-pop
  // check boundary.
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  std::vector<Posting> skewed;
  skewed.push_back(Posting{0, 255});
  for (corpus::DocId d = 1; d < 500; ++d) skewed.push_back(Posting{d, 1});
  lists.emplace(3, std::move(skewed));
  InvertedIndex index(/*num_docs=*/500, std::move(lists), /*impact_bits=*/8);

  // After pop 2: kth_best (doc 0) = 255, best outsider = 1, remaining
  // head bound = 1 → 255 > 1 + 1 settles the top-1 immediately.
  EvalStats stats;
  auto topk = EvaluateTopK(index, {3}, 1, &stats);
  ASSERT_EQ(topk.size(), 1u);
  EXPECT_EQ(topk[0].doc, 0u);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_LT(stats.postings_scanned, 16u)
      << "termination waited for the removed check interval";
}

TEST(TopKEarlyTerminationTest, ReEnteringDocKeepsTheSetExact) {
  // A doc that is evicted from the threshold tracker's top-k and later
  // grows back in exercises the lazy-snapshot path: stale heap entries and
  // the conservatively-high best-outside bound must never mis-fire the
  // termination. Two lists: doc 5 starts small (evicted once doc 1 and 2
  // arrive), then collects a second large impact and ends up top-1.
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  lists.emplace(0, std::vector<Posting>{{5, 100}, {1, 90}, {2, 80},
                                        {3, 10}, {4, 9}});
  lists.emplace(1, std::vector<Posting>{{5, 120}, {6, 50}, {7, 40},
                                        {8, 2}, {9, 1}});
  InvertedIndex index(/*num_docs=*/16, std::move(lists), /*impact_bits=*/8);

  const std::vector<wordnet::TermId> query{0, 1};
  auto full = EvaluateFull(index, query);
  for (size_t k : {1u, 2u, 3u}) {
    EvalStats stats;
    auto topk = EvaluateTopK(index, query, k, &stats);
    ASSERT_EQ(topk.size(), std::min<size_t>(k, full.size())) << "k=" << k;
    std::set<corpus::DocId> expected, got;
    for (size_t i = 0; i < topk.size(); ++i) {
      expected.insert(full[i].doc);
      got.insert(topk[i].doc);
    }
    EXPECT_EQ(got, expected) << "k=" << k;
  }
}

TEST(TopKEarlyTerminationTest, ZeroImpactPostingsStillQualifyAsCandidates) {
  // EvaluateFull counts a document with only zero-impact postings as a
  // (score 0) candidate, and the top-k contract is "exactly the full
  // evaluation's top-k set" — so EvaluateTopK must create the accumulator
  // entry too, and the threshold tracker must survive the duplicate
  // same-score snapshots repeated zero impacts produce.
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  lists.emplace(0, std::vector<Posting>{{1, 5}, {2, 3}, {7, 0}, {9, 0}});
  lists.emplace(1, std::vector<Posting>{{2, 2}, {7, 0}});
  InvertedIndex index(/*num_docs=*/16, std::move(lists), /*impact_bits=*/8);

  const std::vector<wordnet::TermId> query{0, 1};
  auto full = EvaluateFull(index, query);
  ASSERT_EQ(full.size(), 4u);  // docs 1, 2, 7, 9 — zero-scored included
  std::unordered_map<corpus::DocId, uint64_t> full_scores;
  for (const ScoredDoc& sd : full) full_scores[sd.doc] = sd.score;
  for (size_t k : {2u, 3u, 4u, 10u}) {
    EvalStats stats;
    auto topk = EvaluateTopK(index, query, k, &stats);
    ASSERT_EQ(topk.size(), std::min<size_t>(k, full.size())) << "k=" << k;
    // The contract is set-exactness; scores are lower bounds after an
    // early stop (see topk.h).
    std::set<corpus::DocId> expected, got;
    for (size_t i = 0; i < topk.size(); ++i) {
      expected.insert(full[i].doc);
      got.insert(topk[i].doc);
      EXPECT_LE(topk[i].score, full_scores.at(topk[i].doc))
          << "k=" << k << " i=" << i;
    }
    EXPECT_EQ(got, expected) << "k=" << k;
    if (!stats.early_terminated) {
      for (size_t i = 0; i < topk.size(); ++i) {
        EXPECT_EQ(topk[i], full[i]) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(SortByScoreTest, OrdersByScoreThenDoc) {
  std::vector<ScoredDoc> docs{{3, 10}, {1, 20}, {2, 10}, {0, 5}};
  SortByScore(&docs);
  EXPECT_EQ(docs[0], (ScoredDoc{1, 20}));
  EXPECT_EQ(docs[1], (ScoredDoc{2, 10}));
  EXPECT_EQ(docs[2], (ScoredDoc{3, 10}));
  EXPECT_EQ(docs[3], (ScoredDoc{0, 5}));
}

}  // namespace
}  // namespace embellish::index
