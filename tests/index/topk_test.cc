#include "index/topk.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::index {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  TopKTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 21)),
        corp_(testutil::SmallCorpus(lex_, 150, 22)),
        built_(std::move(BuildIndex(corp_, {})).value()) {}

  // Reference scoring straight from the corpus token streams.
  std::unordered_map<corpus::DocId, uint64_t> BruteForce(
      const std::vector<wordnet::TermId>& query) {
    std::unordered_map<corpus::DocId, uint64_t> acc;
    for (wordnet::TermId term : query) {
      const auto* list = built_.index.postings(term);
      if (!list) continue;
      for (const Posting& p : *list) acc[p.doc] += p.impact;
    }
    return acc;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  BuildOutput built_;
};

TEST_F(TopKTest, FullEvaluationMatchesBruteForce) {
  Rng rng(1);
  auto terms = built_.index.IndexedTerms();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 5; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    auto result = EvaluateFull(built_.index, query);
    auto ref = BruteForce(query);
    ASSERT_EQ(result.size(), ref.size());
    for (const ScoredDoc& sd : result) {
      EXPECT_EQ(sd.score, ref.at(sd.doc));
    }
  }
}

TEST_F(TopKTest, ResultsAreCanonicallyOrdered) {
  Rng rng(2);
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query;
  for (int i = 0; i < 8; ++i) query.push_back(terms[rng.Uniform(terms.size())]);
  auto result = EvaluateFull(built_.index, query);
  for (size_t i = 1; i < result.size(); ++i) {
    if (result[i - 1].score == result[i].score) {
      EXPECT_LT(result[i - 1].doc, result[i].doc);
    } else {
      EXPECT_GT(result[i - 1].score, result[i].score);
    }
  }
}

TEST_F(TopKTest, TopKIsPrefixOfFullRanking) {
  Rng rng(3);
  auto terms = built_.index.IndexedTerms();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 6; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    auto full = EvaluateFull(built_.index, query);
    for (size_t k : {1u, 5u, 20u, 1000u}) {
      auto topk = EvaluateTopK(built_.index, query, k);
      ASSERT_EQ(topk.size(), std::min<size_t>(k, full.size()));
      for (size_t i = 0; i < topk.size(); ++i) {
        EXPECT_EQ(topk[i], full[i]);
      }
    }
  }
}

TEST_F(TopKTest, DuplicateQueryTermsDoubleCount) {
  // Both evaluators treat the query as a bag (Formula 3 sums over t in q).
  auto terms = built_.index.IndexedTerms();
  wordnet::TermId t = terms[7];
  auto once = EvaluateFull(built_.index, {t});
  auto twice = EvaluateFull(built_.index, {t, t});
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice[i].score, 2 * once[i].score);
  }
}

TEST_F(TopKTest, UnindexedTermsContributeNothing) {
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[0], 99999999};
  auto with_unknown = EvaluateFull(built_.index, query);
  auto without = EvaluateFull(built_.index, {terms[0]});
  EXPECT_EQ(with_unknown.size(), without.size());
}

TEST_F(TopKTest, EmptyQueryYieldsEmptyResult) {
  EXPECT_TRUE(EvaluateFull(built_.index, {}).empty());
  EXPECT_TRUE(EvaluateTopK(built_.index, {}, 10).empty());
}

TEST_F(TopKTest, OnlyDocsContainingAQueryTermQualify) {
  // Candidate docs must appear in at least one query term's list (the
  // inverted-index property the paper's Section 2.2 describes).
  auto terms = built_.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[3], terms[11]};
  auto result = EvaluateFull(built_.index, query);
  std::set<corpus::DocId> expected;
  for (auto t : query) {
    for (const Posting& p : *built_.index.postings(t)) expected.insert(p.doc);
  }
  EXPECT_EQ(result.size(), expected.size());
  for (const ScoredDoc& sd : result) {
    EXPECT_TRUE(expected.count(sd.doc));
    EXPECT_GT(sd.score, 0u);
  }
}

TEST(SortByScoreTest, OrdersByScoreThenDoc) {
  std::vector<ScoredDoc> docs{{3, 10}, {1, 20}, {2, 10}, {0, 5}};
  SortByScore(&docs);
  EXPECT_EQ(docs[0], (ScoredDoc{1, 20}));
  EXPECT_EQ(docs[1], (ScoredDoc{2, 10}));
  EXPECT_EQ(docs[2], (ScoredDoc{3, 10}));
  EXPECT_EQ(docs[3], (ScoredDoc{0, 5}));
}

}  // namespace
}  // namespace embellish::index
