#include "index/impact.h"

#include <cmath>

#include <gtest/gtest.h>

namespace embellish::index {
namespace {

TEST(WeightTest, TermWeightDecreasesWithDocFrequency) {
  // Rare terms weigh more: w_t = ln(1 + N/f_t).
  EXPECT_GT(TermWeight(1000, 1), TermWeight(1000, 10));
  EXPECT_GT(TermWeight(1000, 10), TermWeight(1000, 1000));
  EXPECT_NEAR(TermWeight(1000, 1000), std::log(2.0), 1e-12);
  EXPECT_NEAR(TermWeight(100, 1), std::log(101.0), 1e-12);
}

TEST(WeightTest, DocTermWeightGrowsLogarithmically) {
  EXPECT_NEAR(DocTermWeight(1), 1.0, 1e-12);
  EXPECT_NEAR(DocTermWeight(10), 1.0 + std::log(10.0), 1e-12);
  EXPECT_GT(DocTermWeight(100), DocTermWeight(10));
}

TEST(QuantizerTest, Validation) {
  EXPECT_FALSE(ImpactQuantizer::Create(1, 1.0).ok());
  EXPECT_FALSE(ImpactQuantizer::Create(20, 1.0).ok());
  EXPECT_FALSE(ImpactQuantizer::Create(8, 0.0).ok());
  EXPECT_FALSE(ImpactQuantizer::Create(8, -3.0).ok());
  EXPECT_TRUE(ImpactQuantizer::Create(8, 1.0).ok());
}

TEST(QuantizerTest, LevelsSpanFullRange) {
  auto q = ImpactQuantizer::Create(8, 10.0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->max_level(), 255u);
  EXPECT_EQ(q->Quantize(10.0), 255u);
  EXPECT_EQ(q->Quantize(1e-9), 1u);
  EXPECT_EQ(q->Quantize(0.0), 1u);
  // Anything above max clamps.
  EXPECT_EQ(q->Quantize(100.0), 255u);
}

TEST(QuantizerTest, MonotoneNonDecreasing) {
  auto q = ImpactQuantizer::Create(6, 5.0);
  ASSERT_TRUE(q.ok());
  uint32_t prev = 0;
  for (double x = 0.01; x <= 5.0; x += 0.01) {
    uint32_t level = q->Quantize(x);
    EXPECT_GE(level, prev);
    EXPECT_GE(level, 1u);
    EXPECT_LE(level, q->max_level());
    prev = level;
  }
}

TEST(QuantizerTest, ReconstructionErrorBounded) {
  auto q = ImpactQuantizer::Create(8, 4.0);
  ASSERT_TRUE(q.ok());
  const double step = 4.0 / 255.0;
  for (double x = 0.05; x < 4.0; x += 0.0373) {
    double back = q->Reconstruct(q->Quantize(x));
    EXPECT_LE(std::abs(back - x), step / 2 + 1e-9);
  }
}

TEST(QuantizerTest, BitsControlResolution) {
  auto coarse = ImpactQuantizer::Create(2, 1.0);
  auto fine = ImpactQuantizer::Create(16, 1.0);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(coarse->max_level(), 3u);
  EXPECT_EQ(fine->max_level(), 65535u);
}

}  // namespace
}  // namespace embellish::index
