#include "index/sharding.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::index {
namespace {

class ShardingTest : public ::testing::Test {
 protected:
  ShardingTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 51)),
        corp_(testutil::SmallCorpus(lex_, 180, 52)),
        built_(std::move(BuildIndex(corp_, {})).value()) {}

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
};

TEST(ShardingOptionsTest, ZeroShardsRejected) {
  ShardingOptions o;
  o.shard_count = 0;
  EXPECT_FALSE(o.Validate().ok());
  wordnet::WordNetDatabase lex = testutil::SmallSyntheticLexicon(500, 61);
  corpus::Corpus corp = testutil::SmallCorpus(lex, 40, 62);
  auto built = BuildIndex(corp, {});
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(ShardedIndex::Build(built->index, o).ok());
}

TEST(ShardOfDocTest, PartitionsAreTotalAndDeterministic) {
  for (ShardPartition p : {ShardPartition::kDocRange, ShardPartition::kDocHash}) {
    ShardingOptions o;
    o.shard_count = 4;
    o.partition = p;
    for (corpus::DocId d = 0; d < 1000; ++d) {
      size_t s = ShardOfDoc(d, 1000, o);
      EXPECT_LT(s, 4u);
      EXPECT_EQ(s, ShardOfDoc(d, 1000, o));  // stable
    }
  }
}

TEST(ShardOfDocTest, RangePartitionIsContiguousAndBalanced) {
  ShardingOptions o;
  o.shard_count = 4;
  o.partition = ShardPartition::kDocRange;
  // 100 docs over 4 shards: 25 per shard, in doc-id order.
  std::vector<size_t> counts(4, 0);
  size_t last = 0;
  for (corpus::DocId d = 0; d < 100; ++d) {
    size_t s = ShardOfDoc(d, 100, o);
    EXPECT_GE(s, last);  // monotone in doc id
    last = s;
    ++counts[s];
  }
  for (size_t c : counts) EXPECT_EQ(c, 25u);
}

TEST(ShardOfDocTest, HashPartitionSpreadsDocs) {
  ShardingOptions o;
  o.shard_count = 8;
  o.partition = ShardPartition::kDocHash;
  std::vector<size_t> counts(8, 0);
  for (corpus::DocId d = 0; d < 8000; ++d) ++counts[ShardOfDoc(d, 8000, o)];
  for (size_t c : counts) {
    EXPECT_GT(c, 800u);  // no empty or starved shard at 1000 expected
    EXPECT_LT(c, 1200u);
  }
}

TEST_F(ShardingTest, ShardsPartitionEveryPostingExactlyOnce) {
  for (ShardPartition p : {ShardPartition::kDocRange, ShardPartition::kDocHash}) {
    ShardingOptions o;
    o.shard_count = 4;
    o.partition = p;
    auto sharded = ShardedIndex::Build(built_.index, o);
    ASSERT_TRUE(sharded.ok());
    EXPECT_EQ(sharded->shard_count(), 4u);

    for (wordnet::TermId term : built_.index.IndexedTerms()) {
      const std::vector<Posting>& mono = *built_.index.postings(term);
      std::vector<std::vector<Posting>> fragments;
      size_t total = 0;
      for (size_t s = 0; s < sharded->shard_count(); ++s) {
        const std::vector<Posting>* frag = sharded->shard(s).postings(term);
        if (frag == nullptr) {
          fragments.emplace_back();
          continue;
        }
        // Every posting is owned by the doc's shard.
        for (const Posting& post : *frag) {
          EXPECT_EQ(ShardOfDoc(post.doc, built_.index.document_count(), o), s);
        }
        // Fragments keep the canonical (impact desc, doc asc) order.
        EXPECT_TRUE(std::is_sorted(frag->begin(), frag->end(), PostingOrder));
        total += frag->size();
        fragments.push_back(*frag);
      }
      EXPECT_EQ(total, mono.size());
      // Merging the fragments reproduces the monolithic list bit-for-bit.
      EXPECT_EQ(MergeShardPostings(fragments), mono);
    }
  }
}

TEST_F(ShardingTest, ShardedTopKIsBitIdenticalToMonolithicFull) {
  Rng rng(5);
  auto terms = built_.index.IndexedTerms();
  for (size_t shards : {1u, 2u, 3u, 8u}) {
    for (ShardPartition p :
         {ShardPartition::kDocRange, ShardPartition::kDocHash}) {
      ShardingOptions o;
      o.shard_count = shards;
      o.partition = p;
      auto sharded = ShardedIndex::Build(built_.index, o);
      ASSERT_TRUE(sharded.ok());
      for (int trial = 0; trial < 5; ++trial) {
        std::vector<wordnet::TermId> query;
        for (int i = 0; i < 4; ++i) {
          query.push_back(terms[rng.Uniform(terms.size())]);
        }
        auto reference = EvaluateFull(built_.index, query);
        for (size_t k : {1u, 10u, 50u}) {
          auto expected = reference;
          if (expected.size() > k) expected.resize(k);
          auto got = EvaluateTopKSharded(*sharded, query, k);
          ASSERT_EQ(got.size(), expected.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], expected[i]);
          }
        }
      }
    }
  }
}

TEST_F(ShardingTest, PooledShardEvaluationMatchesSerial) {
  ThreadPool pool(4);
  ShardingOptions o;
  o.shard_count = 4;
  auto sharded = ShardedIndex::Build(built_.index, o);
  ASSERT_TRUE(sharded.ok());
  Rng rng(6);
  auto terms = built_.index.IndexedTerms();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 5; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    EvalStats serial_stats, pooled_stats;
    auto serial = EvaluateTopKSharded(*sharded, query, 20, nullptr,
                                      &serial_stats);
    auto pooled = EvaluateTopKSharded(*sharded, query, 20, &pool,
                                      &pooled_stats);
    EXPECT_EQ(serial, pooled);
    EXPECT_EQ(serial_stats.postings_scanned, pooled_stats.postings_scanned);
  }
}

}  // namespace
}  // namespace embellish::index
