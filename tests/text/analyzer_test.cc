#include "text/analyzer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace embellish::text {
namespace {

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "a", "and", "of", "is", "to"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNot) {
  for (const char* w :
       {"osteosarcoma", "radiation", "therapy", "privacy", "wordnet"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ListIsSubstantial) {
  EXPECT_GT(StopwordCount(), 100u);
}

TEST(AnalyzerTest, RemovesStopwordsByDefault) {
  auto tokens = Analyze("the accelerated radiation therapy of a cancer");
  EXPECT_EQ(tokens, (std::vector<std::string>{"accelerated", "radiation",
                                              "therapy", "cancer"}));
}

TEST(AnalyzerTest, PaperPipelineHasNoStemming) {
  // Section 5.2: stopword removal but NOT stemming — 'keeps' stays 'keeps'.
  auto tokens = Analyze("the keeper keeps sleeping dogs");
  EXPECT_EQ(tokens, (std::vector<std::string>{"keeper", "keeps", "sleeping",
                                              "dogs"}));
}

TEST(AnalyzerTest, StopwordRemovalCanBeDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  auto tokens = Analyze("the dog", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "dog"}));
}

TEST(AnalyzerTest, MinTokenLengthFilter) {
  AnalyzerOptions options;
  options.min_token_length = 3;
  auto tokens = Analyze("an ox ate hay", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"ate", "hay"}));
}

TEST(AnalyzerTest, EmptyInput) {
  EXPECT_TRUE(Analyze("").empty());
  EXPECT_TRUE(Analyze("the of a is").empty());
}

}  // namespace
}  // namespace embellish::text
