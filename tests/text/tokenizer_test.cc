#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace embellish::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  auto tokens = Tokenize("Hello, world! foo;bar");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(TokenizerTest, LowercasesTokens) {
  EXPECT_EQ(Tokenize("OsteoSARCOMA Therapy"),
            (std::vector<std::string>{"osteosarcoma", "therapy"}));
}

TEST(TokenizerTest, KeepsInternalApostrophesAndHyphens) {
  EXPECT_EQ(Tokenize("fool's gold"),
            (std::vector<std::string>{"fool's", "gold"}));
  EXPECT_EQ(Tokenize("yellow-breasted bunting"),
            (std::vector<std::string>{"yellow-breasted", "bunting"}));
}

TEST(TokenizerTest, DropsLeadingTrailingJoiners) {
  EXPECT_EQ(Tokenize("-dash 'quote' trail- end'"),
            (std::vector<std::string>{"dash", "quote", "trail", "end"}));
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("trec-2 and trec3"),
            (std::vector<std::string>{"trec-2", "and", "trec3"}));
}

TEST(TokenizerTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n ...!!! ").empty());
  EXPECT_EQ(Tokenize("x").size(), 1u);
}

TEST(TokenizerTest, NewlinesAndTabsSeparate) {
  EXPECT_EQ(Tokenize("a\nb\tc"),
            (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace embellish::text
