// Differential fuzzing of the multi-lane SIMD Montgomery engine against the
// scalar MontgomeryContext. The lane kernels use different internal radices
// (2^32 for AVX2, 2^52 for IFMA) but fully reduce every product, and the
// canonical Montgomery representative is unique — so every backend must match
// the scalar engine bit for bit on every lane, for every operand stream.
// That exact property is what lets EncryptBatch and the PIR sweep swap
// kernels per-process (EMBELLISH_KERNEL) without changing a single output
// byte; this test is the proof obligation behind the swap.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/modmath.h"
#include "bignum/montgomery.h"
#include "bignum/montgomery_lanes.h"
#include "bignum/prime.h"
#include "common/cpuinfo.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

using Block = MontgomeryLaneContext::Block;

// Odd modulus with the top bit of `bits` set, so every lane created from one
// width has the same limb count (the lane engine requires it, as do the PIR
// batch groups).
BigInt RandomOddModulus(size_t bits, Rng* rng) {
  BigInt m = RandomBits(bits, rng) % BigInt::PowerOfTwo(bits - 1) +
             BigInt::PowerOfTwo(bits - 1);
  if (m.IsEven()) m += BigInt(1);
  return m;
}

struct LaneFixture {
  std::vector<BigInt> moduli;
  std::vector<MontgomeryContext> ctxs;
  std::vector<const MontgomeryContext*> ptrs;
  std::optional<MontgomeryLaneContext> lane;
  size_t k = 0;

  static LaneFixture Make(MontKernel kernel, size_t bits, size_t nlanes,
                          Rng* rng) {
    LaneFixture f;
    f.ctxs.reserve(nlanes);
    for (size_t l = 0; l < nlanes; ++l) {
      f.moduli.push_back(RandomOddModulus(bits, rng));
      auto ctx = MontgomeryContext::Create(f.moduli.back());
      EXPECT_TRUE(ctx.ok());
      f.ctxs.push_back(std::move(*ctx));
    }
    for (const MontgomeryContext& c : f.ctxs) f.ptrs.push_back(&c);
    auto lane = MontgomeryLaneContext::CreateWithKernel(f.ptrs, kernel);
    EXPECT_TRUE(lane.ok());
    f.lane.emplace(std::move(*lane));
    f.k = f.ctxs[0].limb_count();
    return f;
  }

  std::vector<std::vector<uint64_t>> RandomMontOperands(Rng* rng) {
    std::vector<std::vector<uint64_t>> out;
    for (size_t l = 0; l < ctxs.size(); ++l) {
      out.push_back(ctxs[l].ToMontgomery(RandomBelow(moduli[l], rng)));
    }
    return out;
  }

  Block PackAll(const std::vector<std::vector<uint64_t>>& vals,
                MontgomeryLaneContext::Scratch* scratch) {
    std::vector<const uint64_t*> p;
    for (const auto& v : vals) p.push_back(v.data());
    Block b = lane->MakeBlock();
    lane->Pack(p.data(), &b, scratch);
    return b;
  }

  std::vector<std::vector<uint64_t>> UnpackAll(
      const Block& b, MontgomeryLaneContext::Scratch* scratch) {
    std::vector<std::vector<uint64_t>> vals(ctxs.size(),
                                            std::vector<uint64_t>(k));
    std::vector<uint64_t*> p;
    for (auto& v : vals) p.push_back(v.data());
    lane->Unpack(b, p.data(), scratch);
    return vals;
  }
};

// All four ladder names; CreateWithKernel clamps to CPU support and folds
// the ADX tier into the scalar backend, so every entry is runnable anywhere
// (on non-AVX hardware several entries simply exercise the scalar backend
// again — cheap, and it keeps the test list static).
const MontKernel kAllKernels[] = {MontKernel::kScalar, MontKernel::kAdx,
                                  MontKernel::kAvx2, MontKernel::kIfma};

class LaneWidthFuzz : public ::testing::TestWithParam<size_t> {
 protected:
  size_t bits() const { return GetParam(); }
};

TEST_P(LaneWidthFuzz, PackUnpackRoundTripsEveryLaneCount) {
  Rng rng(9000 + bits());
  for (MontKernel kernel : kAllKernels) {
    for (size_t nlanes = 1; nlanes <= MontgomeryLaneContext::kMaxLanes;
         ++nlanes) {
      LaneFixture f = LaneFixture::Make(kernel, bits(), nlanes, &rng);
      MontgomeryLaneContext::Scratch scratch(*f.lane);
      auto vals = f.RandomMontOperands(&rng);
      Block packed = f.PackAll(vals, &scratch);
      auto back = f.UnpackAll(packed, &scratch);
      for (size_t l = 0; l < nlanes; ++l) {
        EXPECT_EQ(back[l], vals[l])
            << KernelName(f.lane->kernel()) << " lane " << l << "/" << nlanes;
      }
    }
  }
}

TEST_P(LaneWidthFuzz, MulChainMatchesScalarBitForBit) {
  Rng rng(9100 + bits());
  for (MontKernel kernel : kAllKernels) {
    for (size_t nlanes = 1; nlanes <= MontgomeryLaneContext::kMaxLanes;
         ++nlanes) {
      LaneFixture f = LaneFixture::Make(kernel, bits(), nlanes, &rng);
      MontgomeryLaneContext::Scratch scratch(*f.lane);
      MontgomeryContext::Scratch ms(f.ctxs[0]);
      auto a = f.RandomMontOperands(&rng);
      auto b = f.RandomMontOperands(&rng);

      // Scalar reference: acc = a; acc *= b; acc *= acc; acc *= b.
      auto ref = a;
      for (size_t l = 0; l < nlanes; ++l) {
        f.ctxs[l].MontMulInto(ref[l].data(), b[l].data(), ref[l].data(), &ms);
        f.ctxs[l].MontMulInto(ref[l].data(), ref[l].data(), ref[l].data(),
                              &ms);
        f.ctxs[l].MontMulInto(ref[l].data(), b[l].data(), ref[l].data(), &ms);
      }

      Block acc = f.PackAll(a, &scratch);
      Block bb = f.PackAll(b, &scratch);
      f.lane->Mul(acc, bb, &acc, &scratch);   // aliased out, like the sweep
      f.lane->Mul(acc, acc, &acc, &scratch);  // squaring, fully aliased
      f.lane->Mul(acc, bb, &acc, &scratch);
      auto got = f.UnpackAll(acc, &scratch);
      for (size_t l = 0; l < nlanes; ++l) {
        EXPECT_EQ(got[l], ref[l])
            << KernelName(f.lane->kernel()) << " lane " << l << "/" << nlanes;
      }
    }
  }
}

TEST_P(LaneWidthFuzz, FromMontgomeryMatchesScalar) {
  Rng rng(9200 + bits());
  for (MontKernel kernel : kAllKernels) {
    for (size_t nlanes : {size_t{1}, size_t{3}, size_t{5}, size_t{8}}) {
      LaneFixture f = LaneFixture::Make(kernel, bits(), nlanes, &rng);
      MontgomeryLaneContext::Scratch scratch(*f.lane);
      MontgomeryContext::Scratch ms(f.ctxs[0]);
      auto a = f.RandomMontOperands(&rng);
      std::vector<std::vector<uint64_t>> ref(nlanes,
                                             std::vector<uint64_t>(f.k));
      for (size_t l = 0; l < nlanes; ++l) {
        f.ctxs[l].FromMontgomeryInto(a[l].data(), ref[l].data(), &ms);
      }
      Block packed = f.PackAll(a, &scratch);
      std::vector<std::vector<uint64_t>> got(nlanes,
                                             std::vector<uint64_t>(f.k));
      std::vector<uint64_t*> p;
      for (auto& v : got) p.push_back(v.data());
      f.lane->FromMontgomery(packed, p.data(), &scratch);
      for (size_t l = 0; l < nlanes; ++l) {
        EXPECT_EQ(got[l], ref[l])
            << KernelName(f.lane->kernel()) << " lane " << l << "/" << nlanes;
      }
    }
  }
}

TEST_P(LaneWidthFuzz, ModExpUniformMatchesScalar) {
  Rng rng(9300 + bits());
  for (MontKernel kernel : kAllKernels) {
    for (size_t nlanes : {size_t{1}, size_t{4}, size_t{7}, size_t{8}}) {
      LaneFixture f = LaneFixture::Make(kernel, bits(), nlanes, &rng);
      MontgomeryLaneContext::Scratch scratch(*f.lane);
      MontgomeryContext::Scratch ms(f.ctxs[0]);
      auto a = f.RandomMontOperands(&rng);
      // Exponent sizes straddle the tiny-exponent shortcut (<= window bits)
      // and the sliding-window path, like u^r (small prime r) vs u^n.
      for (size_t ebits : {size_t{1}, size_t{3}, size_t{17}, bits()}) {
        BigInt e = RandomBits(ebits, &rng);
        std::vector<std::vector<uint64_t>> ref(nlanes,
                                               std::vector<uint64_t>(f.k));
        for (size_t l = 0; l < nlanes; ++l) {
          f.ctxs[l].ModExpInto(a[l].data(), e, ref[l].data(), &ms);
        }
        Block packed = f.PackAll(a, &scratch);
        Block out = f.lane->MakeBlock();
        f.lane->ModExpUniform(packed, e, &out, &scratch);
        auto got = f.UnpackAll(out, &scratch);
        for (size_t l = 0; l < nlanes; ++l) {
          EXPECT_EQ(got[l], ref[l])
              << KernelName(f.lane->kernel()) << " lane " << l << "/" << nlanes
              << " ebits " << ebits;
        }
      }
    }
  }
}

TEST_P(LaneWidthFuzz, ModExpSmallMatchesScalarPerLaneExponents) {
  Rng rng(9400 + bits());
  for (MontKernel kernel : kAllKernels) {
    for (size_t nlanes : {size_t{2}, size_t{6}, size_t{8}}) {
      LaneFixture f = LaneFixture::Make(kernel, bits(), nlanes, &rng);
      MontgomeryLaneContext::Scratch scratch(*f.lane);
      MontgomeryContext::Scratch ms(f.ctxs[0]);
      auto a = f.RandomMontOperands(&rng);
      // Divergent per-lane exponents including the 0/1 indicator values the
      // Benaloh message path actually uses.
      std::vector<uint64_t> exps(nlanes);
      for (size_t l = 0; l < nlanes; ++l) {
        switch (l % 4) {
          case 0: exps[l] = 0; break;
          case 1: exps[l] = 1; break;
          case 2: exps[l] = rng.Uniform(1u << 16); break;
          default: exps[l] = rng.Next64(); break;
        }
      }
      std::vector<std::vector<uint64_t>> ref(nlanes,
                                             std::vector<uint64_t>(f.k));
      for (size_t l = 0; l < nlanes; ++l) {
        f.ctxs[l].ModExpInto(a[l].data(), BigInt(exps[l]), ref[l].data(), &ms);
      }
      Block packed = f.PackAll(a, &scratch);
      Block out = f.lane->MakeBlock();
      f.lane->ModExpSmall(packed, exps.data(), &out, &scratch);
      auto got = f.UnpackAll(out, &scratch);
      for (size_t l = 0; l < nlanes; ++l) {
        EXPECT_EQ(got[l], ref[l])
            << KernelName(f.lane->kernel()) << " lane " << l << "/" << nlanes
            << " e=" << exps[l];
      }
    }
  }
}

// The widths the crypto layer actually uses: Benaloh moduli at 128/256/384
// and Paillier n^2 at 512 (for 256-bit n).
INSTANTIATE_TEST_SUITE_P(Widths, LaneWidthFuzz,
                         ::testing::Values(128, 256, 384, 512));

TEST(MontgomeryLanesTest, RejectsMixedLimbWidths) {
  Rng rng(77);
  auto m128 = MontgomeryContext::Create(RandomOddModulus(128, &rng));
  auto m256 = MontgomeryContext::Create(RandomOddModulus(256, &rng));
  ASSERT_TRUE(m128.ok() && m256.ok());
  const MontgomeryContext* lanes[] = {&*m128, &*m256};
  auto lane = MontgomeryLaneContext::Create(lanes);
  EXPECT_FALSE(lane.ok());
}

TEST(MontgomeryLanesTest, RejectsEmptyAndOversizedLaneSets) {
  Rng rng(78);
  auto m = MontgomeryContext::Create(RandomOddModulus(128, &rng));
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(
      MontgomeryLaneContext::Create(std::span<const MontgomeryContext* const>{})
          .ok());
  std::vector<const MontgomeryContext*> nine(9, &*m);
  EXPECT_FALSE(MontgomeryLaneContext::Create(nine).ok());
}

TEST(MontgomeryLanesTest, KernelRequestClampsToCpuAndLadder) {
  Rng rng(79);
  auto m = MontgomeryContext::Create(RandomOddModulus(256, &rng));
  ASSERT_TRUE(m.ok());
  const MontgomeryContext* lanes[] = {&*m};
  for (MontKernel kernel : kAllKernels) {
    auto lane = MontgomeryLaneContext::CreateWithKernel(lanes, kernel);
    ASSERT_TRUE(lane.ok());
    // Resolved tier is scalar or a vector tier the CPU supports; the ADX
    // tier never leaks through (it has no lane implementation).
    EXPECT_NE(lane->kernel(), MontKernel::kAdx);
    EXPECT_LE(lane->kernel(), ClampToCpu(kernel));
    EXPECT_EQ(lane->vectorized(), lane->kernel() >= MontKernel::kAvx2);
  }
}

}  // namespace
}  // namespace embellish::bignum
