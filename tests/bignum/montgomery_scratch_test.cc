// Tests for the allocation-free Montgomery kernels: correctness of the
// scratch APIs against the value APIs, and a counting-allocator proof that
// the steady state performs zero heap allocations per operation — the
// property the PIR row loop depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bignum/modmath.h"
#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "common/rng.h"

// -- Counting global allocator (this test binary only) ----------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace embellish::bignum {
namespace {

class MontgomeryScratchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    modulus_ = RandomPrime(256, &rng);
    auto ctx = MontgomeryContext::Create(modulus_);
    ASSERT_TRUE(ctx.ok());
    ctx_ = std::make_unique<MontgomeryContext>(std::move(ctx).value());
    a_ = RandomBelow(modulus_, &rng);
    b_ = RandomBelow(modulus_, &rng);
    e_ = RandomBits(256, &rng);
  }

  BigInt modulus_, a_, b_, e_;
  std::unique_ptr<MontgomeryContext> ctx_;
};

TEST_F(MontgomeryScratchTest, MontMulIntoMatchesVectorApi) {
  MontgomeryContext::Scratch scratch(*ctx_);
  const size_t k = ctx_->limb_count();
  auto am = ctx_->ToMontgomery(a_);
  auto bm = ctx_->ToMontgomery(b_);
  std::vector<uint64_t> out(k);
  ctx_->MontMulInto(am.data(), bm.data(), out.data(), &scratch);
  EXPECT_EQ(out, ctx_->MontMul(am, bm));
  EXPECT_EQ(ctx_->FromMontgomery(out), a_ * b_ % modulus_);
}

TEST_F(MontgomeryScratchTest, MontMulIntoSupportsAliasedOutput) {
  MontgomeryContext::Scratch scratch(*ctx_);
  auto am = ctx_->ToMontgomery(a_);
  auto bm = ctx_->ToMontgomery(b_);
  const auto expected = ctx_->MontMul(am, bm);
  // out aliases a.
  auto lhs = am;
  ctx_->MontMulInto(lhs.data(), bm.data(), lhs.data(), &scratch);
  EXPECT_EQ(lhs, expected);
  // out aliases both operands (squaring).
  auto sq = am;
  ctx_->MontMulInto(sq.data(), sq.data(), sq.data(), &scratch);
  EXPECT_EQ(sq, ctx_->MontMul(am, am));
}

TEST_F(MontgomeryScratchTest, ModExpIntoMatchesModExp) {
  MontgomeryContext::Scratch scratch(*ctx_);
  const size_t k = ctx_->limb_count();
  auto base = ctx_->ToMontgomery(a_);
  std::vector<uint64_t> out(k);
  for (const BigInt& e :
       {BigInt(0), BigInt(1), BigInt(2), BigInt(3), BigInt(15), BigInt(16),
        BigInt(65537), e_}) {
    ctx_->ModExpInto(base.data(), e, out.data(), &scratch);
    EXPECT_EQ(ctx_->FromMontgomery(out), ctx_->ModExp(a_, e));
  }
}

TEST_F(MontgomeryScratchTest, SlidingWindowMatchesGenericModExp) {
  // Cross-check against the plain square-and-multiply in modmath's non-
  // Montgomery fallback over many random exponents.
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    BigInt base = RandomBelow(modulus_, &rng);
    BigInt e = RandomBits(1 + rng.Uniform(300), &rng);
    BigInt expected(1);
    BigInt cur = base;
    for (size_t i = 0; i < e.BitLength(); ++i) {
      if (e.Bit(i)) expected = expected * cur % modulus_;
      cur = cur * cur % modulus_;
    }
    EXPECT_EQ(ctx_->ModExp(base, e), expected);
  }
}

TEST_F(MontgomeryScratchTest, FromMontgomeryIntoRoundTrips) {
  MontgomeryContext::Scratch scratch(*ctx_);
  const size_t k = ctx_->limb_count();
  auto am = ctx_->ToMontgomery(a_);
  std::vector<uint64_t> plain(k);
  ctx_->FromMontgomeryInto(am.data(), plain.data(), &scratch);
  EXPECT_EQ(BigInt::FromLimbs(plain), a_);
}

TEST_F(MontgomeryScratchTest, ToMontgomeryIntoMatchesValueApi) {
  MontgomeryContext::Scratch scratch(*ctx_);
  const size_t k = ctx_->limb_count();
  std::vector<uint64_t> out(k);
  // Reduced value, and a k-limb value above the modulus (valid CIOS input).
  for (const BigInt& v : {a_, modulus_ + BigInt(5), BigInt(0), BigInt(1)}) {
    ctx_->ToMontgomeryInto(v, out.data(), &scratch);
    EXPECT_EQ(ctx_->FromMontgomery(out), v % modulus_);
  }
  // Wider than the modulus: takes the allocating pre-reduction path.
  const BigInt wide = a_ * modulus_ + b_;
  ctx_->ToMontgomeryInto(wide, out.data(), &scratch);
  EXPECT_EQ(out, ctx_->ToMontgomery(wide));
}

TEST_F(MontgomeryScratchTest, SteadyStateIsAllocationFree) {
  MontgomeryContext::Scratch scratch(*ctx_);
  const size_t k = ctx_->limb_count();
  auto am = ctx_->ToMontgomery(a_);
  auto bm = ctx_->ToMontgomery(b_);
  std::vector<uint64_t> acc(k);
  std::vector<uint64_t> plain(k);
  const BigInt exponent = e_;

  // Warm-up sizes the lazily-grown exponentiation buffers.
  ctx_->ModExpInto(am.data(), exponent, acc.data(), &scratch);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ctx_->MontMulInto(acc.data(), (i & 1) ? am.data() : bm.data(), acc.data(),
                      &scratch);
  }
  ctx_->ToMontgomeryInto(b_, plain.data(), &scratch);
  ctx_->ModExpInto(am.data(), exponent, acc.data(), &scratch);
  ctx_->FromMontgomeryInto(acc.data(), plain.data(), &scratch);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "scratch-API Montgomery ops must not touch the heap";
}

}  // namespace
}  // namespace embellish::bignum
