#include "bignum/modmath.h"

#include <gtest/gtest.h>

#include "bignum/prime.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

TEST(ModMathTest, ModAddSubMulBasics) {
  BigInt m(97);
  EXPECT_EQ(ModAdd(BigInt(90), BigInt(10), m), BigInt(3));
  EXPECT_EQ(ModSub(BigInt(5), BigInt(10), m), BigInt(92));
  EXPECT_EQ(ModSub(BigInt(10), BigInt(5), m), BigInt(5));
  EXPECT_EQ(ModMul(BigInt(96), BigInt(96), m), BigInt(1));
}

TEST(ModMathTest, ModExpSmallKnownValues) {
  EXPECT_EQ(ModExp(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(ModExp(BigInt(3), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(ModExp(BigInt(0), BigInt(5), BigInt(7)), BigInt(0));
  EXPECT_EQ(ModExp(BigInt(5), BigInt(3), BigInt(13)), BigInt(8));
}

TEST(ModMathTest, ModExpModulusOneIsZero) {
  EXPECT_EQ(ModExp(BigInt(5), BigInt(3), BigInt(1)), BigInt());
}

TEST(ModMathTest, FermatLittleTheorem) {
  Rng rng(100);
  BigInt p = RandomPrime(192, &rng);
  for (int i = 0; i < 30; ++i) {
    BigInt a = RandomBelow(p - BigInt(1), &rng) + BigInt(1);
    EXPECT_TRUE(ModExp(a, p - BigInt(1), p).IsOne());
  }
}

TEST(ModMathTest, ModExpLawOfExponents) {
  Rng rng(101);
  BigInt m = RandomBits(128, &rng);
  if (m.IsEven()) m += BigInt(1);
  BigInt a = RandomBelow(m, &rng);
  BigInt e1(12345), e2(67890);
  // a^(e1+e2) == a^e1 * a^e2 (mod m)
  EXPECT_EQ(ModExp(a, e1 + e2, m),
            ModMul(ModExp(a, e1, m), ModExp(a, e2, m), m));
  // (a^e1)^e2 == a^(e1*e2)
  EXPECT_EQ(ModExp(ModExp(a, e1, m), e2, m), ModExp(a, e1 * e2, m));
}

TEST(ModMathTest, ModExpEvenModulusFallback) {
  // Even modulus cannot use Montgomery; exercises the generic path.
  BigInt m(1 << 20);
  EXPECT_EQ(ModExp(BigInt(3), BigInt(7), m), BigInt(2187));
  Rng rng(102);
  BigInt big_even = RandomBits(128, &rng) << 1;
  BigInt a = RandomBelow(big_even, &rng);
  BigInt r1 = ModExp(a, BigInt(5), big_even);
  BigInt expect = a % big_even;
  BigInt acc(1);
  for (int i = 0; i < 5; ++i) acc = acc * expect % big_even;
  EXPECT_EQ(r1, acc);
}

TEST(GcdTest, KnownValues) {
  EXPECT_EQ(Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(Gcd(BigInt(5), BigInt(0)), BigInt(5));
}

TEST(GcdTest, DividesBothAndIsMaximal) {
  Rng rng(103);
  for (int i = 0; i < 100; ++i) {
    BigInt g = RandomBits(40, &rng);
    BigInt a = g * RandomBits(60, &rng);
    BigInt b = g * RandomBits(60, &rng);
    BigInt d = Gcd(a, b);
    EXPECT_TRUE((a % d).IsZero());
    EXPECT_TRUE((b % d).IsZero());
    EXPECT_TRUE((d % g).IsZero());  // g divides the gcd
  }
}

TEST(ModInverseTest, ProducesInverse) {
  Rng rng(104);
  for (int i = 0; i < 200; ++i) {
    BigInt m = RandomBits(100, &rng) + BigInt(2);
    BigInt a = RandomUnit(m, &rng);
    auto inv = ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(ModMul(a, *inv, m).IsOne());
  }
}

TEST(ModInverseTest, RejectsNonInvertible) {
  EXPECT_FALSE(ModInverse(BigInt(6), BigInt(9)).ok());
  EXPECT_FALSE(ModInverse(BigInt(0), BigInt(7)).ok());
  EXPECT_FALSE(ModInverse(BigInt(3), BigInt(1)).ok());
}

TEST(JacobiTest, MatchesEulerCriterionForPrimes) {
  Rng rng(105);
  BigInt p = RandomPrime(128, &rng);
  BigInt half = (p - BigInt(1)) >> 1;
  for (int i = 0; i < 200; ++i) {
    BigInt a = RandomBelow(p, &rng);
    if (a.IsZero()) continue;
    BigInt euler = ModExp(a, half, p);
    int expected = euler.IsOne() ? 1 : (euler == p - BigInt(1) ? -1 : 0);
    EXPECT_EQ(Jacobi(a, p), expected);
  }
}

TEST(JacobiTest, KnownSmallTable) {
  // (a/15) for a = 1..14: standard table.
  const int expected[] = {1, 1, 0, 1, 0, 0, -1, 1, 0, 0, -1, 0, -1, -1};
  for (int a = 1; a <= 14; ++a) {
    EXPECT_EQ(Jacobi(BigInt(static_cast<uint64_t>(a)), BigInt(15)),
              expected[a - 1])
        << "a=" << a;
  }
}

TEST(JacobiTest, Multiplicative) {
  Rng rng(106);
  BigInt n = RandomBits(80, &rng);
  if (n.IsEven()) n += BigInt(1);
  for (int i = 0; i < 100; ++i) {
    BigInt a = RandomBelow(n, &rng);
    BigInt b = RandomBelow(n, &rng);
    EXPECT_EQ(Jacobi(a * b, n), Jacobi(a, n) * Jacobi(b, n));
  }
}

TEST(JacobiTest, SquaresOfUnitsAreResidues) {
  Rng rng(107);
  BigInt n = RandomPrime(64, &rng) * RandomPrime(64, &rng);
  for (int i = 0; i < 50; ++i) {
    BigInt w = RandomUnit(n, &rng);
    EXPECT_EQ(Jacobi(w * w % n, n), 1);
  }
}

TEST(RandomBelowTest, UniformCoverageOfSmallRange) {
  Rng rng(108);
  BigInt bound(10);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) {
    BigInt v = RandomBelow(bound, &rng);
    ASSERT_LT(v, bound);
    ++counts[v.Low64()];
  }
  for (int c : counts) EXPECT_GT(c, 300);
}

TEST(RandomBitsTest, ExactWidth) {
  Rng rng(109);
  for (size_t bits : {1u, 8u, 63u, 64u, 65u, 257u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(RandomBits(bits, &rng).BitLength(), bits);
    }
  }
}

TEST(RandomUnitTest, AlwaysCoprime) {
  Rng rng(110);
  BigInt n = BigInt(2 * 3 * 5 * 7 * 11 * 13);
  for (int i = 0; i < 100; ++i) {
    BigInt u = RandomUnit(n, &rng);
    EXPECT_TRUE(Gcd(u, n).IsOne());
    EXPECT_LT(u, n);
    EXPECT_FALSE(u.IsZero());
  }
}

}  // namespace
}  // namespace embellish::bignum
