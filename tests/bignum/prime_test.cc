#include "bignum/prime.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

TEST(PrimeTest, SmallKnownPrimes) {
  Rng rng(300);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 251ULL, 257ULL, 65537ULL,
                     4294967311ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), &rng)) << p;
  }
}

TEST(PrimeTest, SmallKnownComposites) {
  Rng rng(301);
  for (uint64_t c : {0ULL, 1ULL, 4ULL, 6ULL, 9ULL, 255ULL, 1001ULL,
                     4294967297ULL /* F5 = 641 * 6700417 */}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), &rng)) << c;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes to many bases; Miller-Rabin must reject them.
  Rng rng(302);
  for (uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 41041ULL,
                     825265ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), &rng)) << c;
  }
}

TEST(PrimeTest, ProductOfTwoPrimesRejected) {
  Rng rng(303);
  BigInt p = RandomPrime(96, &rng);
  BigInt q = RandomPrime(96, &rng);
  EXPECT_FALSE(IsProbablePrime(p * q, &rng));
}

class RandomPrimeWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomPrimeWidthTest, ExactBitWidthAndPrimality) {
  size_t bits = GetParam();
  Rng rng(304 + bits);
  BigInt p = RandomPrime(bits, &rng);
  EXPECT_EQ(p.BitLength(), bits);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(IsProbablePrime(p, &rng));
}

INSTANTIATE_TEST_SUITE_P(Widths, RandomPrimeWidthTest,
                         ::testing::Values(16, 32, 64, 96, 128, 192, 256));

TEST(PrimeTest, CongruentOneModRSatisfiesBenalohConditions) {
  Rng rng(305);
  for (uint64_t r : {3ULL, 59049ULL /* 3^10 */, 257ULL}) {
    auto p = RandomPrimeCongruentOneModR(128, BigInt(r), &rng);
    ASSERT_TRUE(p.ok()) << r;
    EXPECT_EQ(p->BitLength(), 128u);
    EXPECT_TRUE(IsProbablePrime(*p, &rng));
    BigInt pm1 = *p - BigInt(1);
    EXPECT_TRUE((pm1 % BigInt(r)).IsZero());               // r | p-1
    EXPECT_TRUE(Gcd(BigInt(r), pm1 / BigInt(r)).IsOne());  // gcd(r,(p-1)/r)=1
  }
}

TEST(PrimeTest, CoprimePMinus1Condition) {
  Rng rng(306);
  BigInt r(59049);
  auto p = RandomPrimeCoprimePMinus1(128, r, &rng);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsProbablePrime(*p, &rng));
  EXPECT_TRUE(Gcd(r, *p - BigInt(1)).IsOne());
}

TEST(PrimeTest, GeneratorValidation) {
  Rng rng(307);
  EXPECT_FALSE(RandomPrimeCongruentOneModR(128, BigInt(1), &rng).ok());
  EXPECT_FALSE(RandomPrimeCoprimePMinus1(128, BigInt(0), &rng).ok());
  // r too wide for the prime.
  EXPECT_FALSE(
      RandomPrimeCongruentOneModR(16, BigInt(1) << 14, &rng).ok());
}

TEST(PrimeTest, DistinctSeedsGiveDistinctPrimes) {
  Rng a(308), b(309);
  EXPECT_NE(RandomPrime(128, &a), RandomPrime(128, &b));
}

}  // namespace
}  // namespace embellish::bignum
