// Differential and algebraic fuzzing for the bignum stack. Hand-written
// multiprecision arithmetic fails in corner cases (normalization, carries,
// Knuth-D qhat correction, Montgomery final subtraction), so beyond the
// unit tests we hammer random operands across widths and check (a) ring
// axioms, (b) agreement between independent code paths, and (c) round-trip
// stability of every serialization.

#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "bignum/modmath.h"
#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

class WidthFuzz : public ::testing::TestWithParam<size_t> {
 protected:
  size_t bits() const { return GetParam(); }
};

TEST_P(WidthFuzz, RingAxioms) {
  Rng rng(1000 + bits());
  for (int i = 0; i < 60; ++i) {
    BigInt a = RandomBits(bits(), &rng);
    BigInt b = RandomBits(bits() / 2 + 1, &rng);
    BigInt c = RandomBits(bits() / 3 + 1, &rng);
    // Commutativity / associativity / distributivity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Additive/multiplicative identities.
    EXPECT_EQ(a + BigInt(), a);
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_TRUE((a * BigInt()).IsZero());
    // Subtraction inverts addition.
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(WidthFuzz, DivModIsEuclidean) {
  Rng rng(2000 + bits());
  for (int i = 0; i < 60; ++i) {
    BigInt a = RandomBits(bits(), &rng);
    BigInt b = RandomBits(1 + rng.Uniform(bits()), &rng);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    // Self-division and division by one.
    BigInt::DivMod(a, a, &q, &r);
    EXPECT_TRUE(q.IsOne());
    EXPECT_TRUE(r.IsZero());
    BigInt::DivMod(a, BigInt(1), &q, &r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.IsZero());
  }
}

TEST_P(WidthFuzz, ShiftsDecomposeMultiplication) {
  Rng rng(3000 + bits());
  for (int i = 0; i < 40; ++i) {
    BigInt a = RandomBits(bits(), &rng);
    size_t s = rng.Uniform(130);
    EXPECT_EQ(a << s, a * BigInt::PowerOfTwo(s));
    EXPECT_EQ((a << s) >> s, a);
    // Right shift is floor division by 2^s.
    EXPECT_EQ(a >> s, a / BigInt::PowerOfTwo(s));
  }
}

TEST_P(WidthFuzz, MontgomeryAgreesWithGenericModExp) {
  Rng rng(4000 + bits());
  for (int i = 0; i < 12; ++i) {
    BigInt m = RandomBits(bits(), &rng);
    if (m.IsEven()) m += BigInt(1);
    if (m.IsOne()) continue;
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    BigInt a = RandomBelow(m, &rng);
    BigInt e = RandomBits(1 + rng.Uniform(96), &rng);
    // Plain square-and-multiply reference.
    BigInt ref(1);
    BigInt base = a % m;
    for (size_t bit = e.BitLength(); bit-- > 0;) {
      ref = ref * ref % m;
      if (e.Bit(bit)) ref = ref * base % m;
    }
    EXPECT_EQ(ctx->ModExp(a, e), ref) << "m=" << m.ToHexString();
    // And the dispatcher agrees with both.
    EXPECT_EQ(ModExp(a, e, m), ref);
  }
}

TEST_P(WidthFuzz, SerializationsRoundTrip) {
  Rng rng(5000 + bits());
  for (int i = 0; i < 40; ++i) {
    BigInt a = RandomBits(1 + rng.Uniform(bits()), &rng);
    EXPECT_EQ(BigInt::FromBigEndianBytes(a.ToBigEndianBytes()), a);
    EXPECT_EQ(*BigInt::FromHexString(a.ToHexString()), a);
    EXPECT_EQ(*BigInt::FromDecimalString(a.ToDecimalString()), a);
    size_t width = (a.BitLength() + 7) / 8 + rng.Uniform(8);
    EXPECT_EQ(BigInt::FromBigEndianBytes(a.ToBigEndianBytesPadded(width)), a);
  }
}

TEST_P(WidthFuzz, ModularInverseLaw) {
  Rng rng(6000 + bits());
  for (int i = 0; i < 20; ++i) {
    BigInt m = RandomBits(bits(), &rng) + BigInt(2);
    BigInt a = RandomUnit(m, &rng);
    auto inv = ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE((a * *inv % m).IsOne());
    // Inverse of the inverse is the original (mod m).
    auto inv2 = ModInverse(*inv, m);
    ASSERT_TRUE(inv2.ok());
    EXPECT_EQ(*inv2, a % m);
  }
}

TEST_P(WidthFuzz, GcdLinearCombination) {
  // gcd(a,b) divides both and gcd(ka, kb) = k*gcd(a,b).
  Rng rng(7000 + bits());
  for (int i = 0; i < 20; ++i) {
    BigInt a = RandomBits(bits(), &rng);
    BigInt b = RandomBits(bits() / 2 + 1, &rng);
    BigInt g = Gcd(a, b);
    if (!g.IsZero()) {
      EXPECT_TRUE((a % g).IsZero());
      EXPECT_TRUE((b % g).IsZero());
    }
    BigInt k = RandomBits(16, &rng);
    if (!k.IsZero()) {
      EXPECT_EQ(Gcd(a * k, b * k), g * k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthFuzz,
                         ::testing::Values(64, 65, 127, 128, 192, 256, 384,
                                           512, 777, 1024));

TEST(DifferentialFuzzTest, FermatEulerConsistency) {
  // For n = p*q, Euler's theorem: a^phi = 1 (mod n) for units a — checks
  // prime generation, multiplication and modexp against each other.
  Rng rng(42);
  BigInt p = RandomPrime(96, &rng);
  BigInt q = RandomPrime(96, &rng);
  BigInt n = p * q;
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  for (int i = 0; i < 10; ++i) {
    BigInt a = RandomUnit(n, &rng);
    EXPECT_TRUE(ModExp(a, phi, n).IsOne());
  }
}

TEST(DifferentialFuzzTest, CrtConsistency) {
  // a mod p and a mod q determine a mod pq: check via reconstruction.
  Rng rng(43);
  BigInt p = RandomPrime(80, &rng);
  BigInt q = RandomPrime(80, &rng);
  BigInt n = p * q;
  for (int i = 0; i < 20; ++i) {
    BigInt a = RandomBelow(n, &rng);
    BigInt ap = a % p;
    BigInt aq = a % q;
    // Garner: x = ap + p * ((aq - ap) * p^{-1} mod q)
    auto p_inv = ModInverse(p % q, q);
    ASSERT_TRUE(p_inv.ok());
    BigInt diff = ModSub(aq, ap, q);
    BigInt x = ap + p * (diff * *p_inv % q);
    EXPECT_EQ(x % n, a);
  }
}

}  // namespace
}  // namespace embellish::bignum
