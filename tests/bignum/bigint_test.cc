#include "bignum/bigint.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

using u128 = unsigned __int128;

BigInt FromU128(u128 v) {
  return (BigInt(static_cast<uint64_t>(v >> 64)) << 64) +
         BigInt(static_cast<uint64_t>(v));
}

TEST(BigIntTest, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsOdd());
  EXPECT_TRUE(z.IsEven());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDecimalString(), "0");
  EXPECT_EQ(z.ToHexString(), "0");
  EXPECT_TRUE(z.ToBigEndianBytes().empty());
}

TEST(BigIntTest, SmallValues) {
  BigInt one(1);
  EXPECT_TRUE(one.IsOne());
  EXPECT_TRUE(one.IsOdd());
  EXPECT_EQ(one.BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt(0xFFFFFFFFFFFFFFFFULL).BitLength(), 64u);
}

TEST(BigIntTest, ComparisonOrdersNumerically) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt(1) << 64, BigInt(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LT(BigInt(), BigInt(1));
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt max64(0xFFFFFFFFFFFFFFFFULL);
  BigInt sum = max64 + BigInt(1);
  EXPECT_EQ(sum, BigInt(1) << 64);
  EXPECT_EQ(sum.LimbCount(), 2u);
}

TEST(BigIntTest, SubtractionBorrowsAcrossLimbs) {
  BigInt two64 = BigInt(1) << 64;
  EXPECT_EQ(two64 - BigInt(1), BigInt(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(two64 - two64, BigInt());
}

TEST(BigIntTest, AdditionMatches128BitReference) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next64(), b = rng.Next64();
    u128 ref = static_cast<u128>(a) + b;
    EXPECT_EQ(BigInt(a) + BigInt(b), FromU128(ref));
  }
}

TEST(BigIntTest, MultiplicationMatches128BitReference) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next64(), b = rng.Next64();
    u128 ref = static_cast<u128>(a) * b;
    EXPECT_EQ(BigInt(a) * BigInt(b), FromU128(ref));
  }
}

TEST(BigIntTest, MultiplicationIsCommutativeAndAssociative) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    BigInt a = RandomBits(100 + i, &rng);
    BigInt b = RandomBits(80 + i, &rng);
    BigInt c = RandomBits(60 + i, &rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(BigIntTest, DistributiveLaw) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    BigInt a = RandomBits(90, &rng);
    BigInt b = RandomBits(90, &rng);
    BigInt c = RandomBits(90, &rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigIntTest, KaratsubaAgreesWithSchoolbook) {
  // Operands above the Karatsuba threshold (24 limbs = 1536 bits); the
  // identity (a*b)/b == a catches mistakes in either path.
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    BigInt a = RandomBits(2048, &rng);
    BigInt b = RandomBits(1800, &rng);
    BigInt p = a * b;
    EXPECT_EQ(p / b, a);
    EXPECT_EQ(p % b, BigInt());
    EXPECT_EQ(p / a, b);
  }
}

TEST(BigIntTest, ShiftsAreInverse) {
  Rng rng(6);
  for (size_t shift : {1u, 7u, 63u, 64u, 65u, 127u, 200u}) {
    BigInt a = RandomBits(300, &rng);
    EXPECT_EQ((a << shift) >> shift, a);
  }
}

TEST(BigIntTest, ShiftMatchesMultiplication) {
  Rng rng(7);
  BigInt a = RandomBits(200, &rng);
  EXPECT_EQ(a << 1, a * BigInt(2));
  EXPECT_EQ(a << 10, a * BigInt(1024));
  EXPECT_EQ(a >> 400, BigInt());
}

TEST(BigIntTest, DivModSingleLimbMatches128BitReference) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    u128 a = (static_cast<u128>(rng.Next64()) << 64) | rng.Next64();
    uint64_t b = rng.Next64() | 1;
    BigInt q, r;
    BigInt::DivMod(FromU128(a), BigInt(b), &q, &r);
    EXPECT_EQ(q, FromU128(a / b));
    EXPECT_EQ(r, BigInt(static_cast<uint64_t>(a % b)));
  }
}

class DivModPropertyTest : public ::testing::TestWithParam<
                               std::pair<size_t, size_t>> {};

TEST_P(DivModPropertyTest, QuotientRemainderIdentity) {
  auto [a_bits, b_bits] = GetParam();
  Rng rng(a_bits * 1000 + b_bits);
  for (int i = 0; i < 300; ++i) {
    BigInt a = RandomBits(a_bits, &rng);
    BigInt b = RandomBits(b_bits, &rng);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, DivModPropertyTest,
    ::testing::Values(std::pair<size_t, size_t>{128, 64},
                      std::pair<size_t, size_t>{256, 128},
                      std::pair<size_t, size_t>{512, 256},
                      std::pair<size_t, size_t>{512, 500},
                      std::pair<size_t, size_t>{1024, 512},
                      std::pair<size_t, size_t>{100, 300},
                      std::pair<size_t, size_t>{65, 64},
                      std::pair<size_t, size_t>{129, 128}));

TEST(BigIntTest, DivModEdgeCases) {
  BigInt q, r;
  // a < b
  BigInt::DivMod(BigInt(3), BigInt(10), &q, &r);
  EXPECT_EQ(q, BigInt());
  EXPECT_EQ(r, BigInt(3));
  // a == b
  BigInt::DivMod(BigInt(10), BigInt(10), &q, &r);
  EXPECT_EQ(q, BigInt(1));
  EXPECT_EQ(r, BigInt());
  // exact division, multi-limb
  Rng rng(9);
  BigInt b = RandomBits(200, &rng);
  BigInt a = b * BigInt(12345);
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q, BigInt(12345));
  EXPECT_TRUE(r.IsZero());
}

TEST(BigIntTest, DivisorRequiringAddBackStep) {
  // Knuth's D6 add-back triggers rarely; this constructed case exercises
  // near-maximal qhat estimates: a = (B^2 - 1) * B, b = B^2 - B + ...
  BigInt base = BigInt(1) << 64;
  BigInt a = ((base * base) - BigInt(1)) * base;
  BigInt b = (base * base) - BigInt(1);
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigIntTest, DecimalStringRoundTrip) {
  Rng rng(10);
  for (size_t bits : {1u, 8u, 63u, 64u, 65u, 128u, 500u}) {
    BigInt a = RandomBits(bits, &rng);
    auto parsed = BigInt::FromDecimalString(a.ToDecimalString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
}

TEST(BigIntTest, DecimalStringKnownValues) {
  EXPECT_EQ(BigInt::FromDecimalString("0")->ToDecimalString(), "0");
  EXPECT_EQ(
      BigInt::FromDecimalString("18446744073709551616")->ToHexString(),
      "10000000000000000");  // 2^64
  EXPECT_EQ((BigInt(1) << 128).ToDecimalString(),
            "340282366920938463463374607431768211456");
}

TEST(BigIntTest, RejectsMalformedStrings) {
  EXPECT_FALSE(BigInt::FromDecimalString("").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("12a3").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("-5").ok());
  EXPECT_FALSE(BigInt::FromHexString("").ok());
  EXPECT_FALSE(BigInt::FromHexString("xyz").ok());
}

TEST(BigIntTest, HexStringRoundTrip) {
  Rng rng(11);
  BigInt a = RandomBits(333, &rng);
  auto parsed = BigInt::FromHexString(a.ToHexString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, a);
  EXPECT_EQ(*BigInt::FromHexString("DEADbeef"), BigInt(0xDEADBEEFULL));
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(12);
  for (size_t bits : {8u, 12u, 64u, 65u, 256u}) {
    BigInt a = RandomBits(bits, &rng);
    EXPECT_EQ(BigInt::FromBigEndianBytes(a.ToBigEndianBytes()), a);
  }
}

TEST(BigIntTest, PaddedBytesPreserveValue) {
  BigInt a(0x1234);
  auto padded = a.ToBigEndianBytesPadded(8);
  EXPECT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(BigInt::FromBigEndianBytes(padded), a);
}

TEST(BigIntTest, BitAccessor) {
  BigInt v = BigInt(0b1011);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(100));
  EXPECT_TRUE(BigInt::PowerOfTwo(77).Bit(77));
  EXPECT_EQ(BigInt::PowerOfTwo(77).BitLength(), 78u);
}

TEST(BigIntTest, FromLimbsNormalizes) {
  BigInt v = BigInt::FromLimbs({5, 0, 0});
  EXPECT_EQ(v, BigInt(5));
  EXPECT_EQ(v.LimbCount(), 1u);
  EXPECT_TRUE(BigInt::FromLimbs({}).IsZero());
}

}  // namespace
}  // namespace embellish::bignum
