#include "bignum/montgomery.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "bignum/prime.h"
#include "common/rng.h"

namespace embellish::bignum {
namespace {

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(100)).ok());  // even
}

TEST(MontgomeryTest, RoundTripConversion) {
  Rng rng(200);
  for (size_t bits : {65u, 128u, 256u, 512u, 1000u}) {
    BigInt m = RandomBits(bits, &rng);
    if (m.IsEven()) m += BigInt(1);
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int i = 0; i < 20; ++i) {
      BigInt a = RandomBelow(m, &rng);
      EXPECT_EQ(ctx->FromMontgomery(ctx->ToMontgomery(a)), a);
    }
  }
}

TEST(MontgomeryTest, MulMatchesPlainModMul) {
  Rng rng(201);
  for (int trial = 0; trial < 50; ++trial) {
    BigInt m = RandomBits(200 + trial, &rng);
    if (m.IsEven()) m += BigInt(1);
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    BigInt a = RandomBelow(m, &rng);
    BigInt b = RandomBelow(m, &rng);
    EXPECT_EQ(ctx->Mul(a, b), a * b % m);
  }
}

TEST(MontgomeryTest, MontMulOnFormValues) {
  Rng rng(202);
  BigInt m = RandomBits(256, &rng);
  if (m.IsEven()) m += BigInt(1);
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = RandomBelow(m, &rng);
  BigInt b = RandomBelow(m, &rng);
  auto am = ctx->ToMontgomery(a);
  auto bm = ctx->ToMontgomery(b);
  EXPECT_EQ(ctx->FromMontgomery(ctx->MontMul(am, bm)), a * b % m);
}

TEST(MontgomeryTest, OneIsMultiplicativeIdentity) {
  Rng rng(203);
  BigInt m = RandomBits(192, &rng);
  if (m.IsEven()) m += BigInt(1);
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = RandomBelow(m, &rng);
  auto am = ctx->ToMontgomery(a);
  EXPECT_EQ(ctx->FromMontgomery(ctx->MontMul(am, ctx->One())), a);
  EXPECT_EQ(ctx->FromMontgomery(ctx->One()), BigInt(1) % m);
}

TEST(MontgomeryTest, ModExpMatchesGenericForPrime) {
  Rng rng(204);
  BigInt p = RandomPrime(256, &rng);
  auto ctx = MontgomeryContext::Create(p);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 20; ++i) {
    BigInt a = RandomBelow(p, &rng);
    BigInt e = RandomBits(100, &rng);
    // Generic square-and-multiply reference (without Montgomery dispatch).
    BigInt ref(1);
    BigInt base = a % p;
    for (size_t bit = e.BitLength(); bit-- > 0;) {
      ref = ref * ref % p;
      if (e.Bit(bit)) ref = ref * base % p;
    }
    EXPECT_EQ(ctx->ModExp(a, e), ref);
  }
}

TEST(MontgomeryTest, ModExpEdgeExponents) {
  Rng rng(205);
  BigInt m = RandomBits(128, &rng);
  if (m.IsEven()) m += BigInt(1);
  auto ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  BigInt a = RandomBelow(m, &rng);
  EXPECT_EQ(ctx->ModExp(a, BigInt(0)), BigInt(1) % m);
  EXPECT_EQ(ctx->ModExp(a, BigInt(1)), a % m);
  EXPECT_EQ(ctx->ModExp(a, BigInt(2)), a * a % m);
  EXPECT_TRUE(ctx->ModExp(BigInt(0), BigInt(5)).IsZero());
}

TEST(MontgomeryTest, SingleLimbModulus) {
  auto ctx = MontgomeryContext::Create(BigInt(101));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx->Mul(BigInt(100), BigInt(100)), BigInt(1));
  EXPECT_EQ(ctx->ModExp(BigInt(2), BigInt(100)), BigInt(1));  // Fermat
}

TEST(MontgomeryTest, FuzzAgainstModExp) {
  Rng rng(206);
  for (int trial = 0; trial < 30; ++trial) {
    BigInt m = RandomBits(65 + trial * 13, &rng);
    if (m.IsEven()) m += BigInt(1);
    if (m.IsOne()) continue;
    auto ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    BigInt a = RandomBelow(m, &rng);
    BigInt e = RandomBits(64, &rng);
    EXPECT_EQ(ctx->ModExp(a, e), ModExp(a, e, m)) << "m=" << m.ToHexString();
  }
}

}  // namespace
}  // namespace embellish::bignum
