// Replicated shard groups behind the coordinator: every replica of a slice
// answers with bytes identical to the monolithic server, a dead replica
// costs capacity (failover) rather than availability, hedged duplicates are
// seq-fenced so a stale response can never be merged, circuit breakers with
// probe re-admission re-discover healed replicas, opt-in degraded mode
// answers PR/top-k from surviving slices with a typed missing-slice marker,
// and the in-flight admission budget sheds overload with typed kBusy frames.

#include <gtest/gtest.h>

#include <atomic>

#include "core/sharded_retrieval.h"
#include "core/wire_format.h"
#include "index/builder.h"
#include "index/sharding.h"
#include "server/session_client.h"
#include "server/shard_coordinator.h"
#include "testutil.h"

namespace embellish::server {
namespace {

// A transport whose peer can be killed and revived mid-test.
class KillSwitchTransport : public ShardTransport {
 public:
  explicit KillSwitchTransport(ShardTransport* inner) : inner_(inner) {}

  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (dead_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("replica killed");
    }
    return inner_->RoundTrip(request);
  }

  void Kill() { dead_.store(true, std::memory_order_relaxed); }
  void Revive() { dead_.store(false, std::memory_order_relaxed); }
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  ShardTransport* inner_;  // not owned
  std::atomic<bool> dead_{false};
  std::atomic<size_t> calls_{0};
};

class ReplicaTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 3;
  static constexpr size_t kReplicas = 2;

  ReplicaTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 221)),
        corp_(testutil::SmallCorpus(lex_, 150, 222)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)),
        mono_(&built_.index, &org_, nullptr) {
    for (size_t s = 0; s < kShards; ++s) {
      for (size_t r = 0; r < kReplicas; ++r) {
        EmbellishServerOptions options;
        options.shard_slice = s;
        options.shard_slice_count = kShards;
        slices_.push_back(std::make_unique<EmbellishServer>(
            &built_.index, &org_, nullptr, options));
        endpoints_.push_back(
            std::make_unique<ShardEndpoint>(slices_.back().get(), s));
        inner_transports_.push_back(
            std::make_unique<InProcessTransport>(endpoints_.back().get()));
        kills_.push_back(std::make_unique<KillSwitchTransport>(
            inner_transports_.back().get()));
      }
    }
  }

  KillSwitchTransport* kill(size_t shard, size_t replica) {
    return kills_[shard * kReplicas + replica].get();
  }

  EmbellishServer* slice(size_t shard, size_t replica) {
    return slices_[shard * kReplicas + replica].get();
  }

  // Replica groups over the kill switches; `wrap` may substitute a replica's
  // transport (e.g. with a FaultyTransport layered on top).
  std::vector<std::vector<ShardTransport*>> MakeGroups() {
    std::vector<std::vector<ShardTransport*>> groups(kShards);
    for (size_t s = 0; s < kShards; ++s) {
      for (size_t r = 0; r < kReplicas; ++r) {
        groups[s].push_back(kill(s, r));
      }
    }
    return groups;
  }

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  static Status RequireTypedError(const std::vector<uint8_t>& response) {
    auto frame = DecodeFrame(response);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return Status::Internal("undecodable response");
    EXPECT_EQ(frame->kind, FrameKind::kError);
    Status transported;
    EXPECT_TRUE(DecodeError(frame->payload, &transported).ok());
    EXPECT_FALSE(transported.ok());
    return transported;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
  EmbellishServer mono_;
  std::vector<std::unique_ptr<EmbellishServer>> slices_;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints_;
  std::vector<std::unique_ptr<InProcessTransport>> inner_transports_;
  std::vector<std::unique_ptr<KillSwitchTransport>> kills_;
};

TEST_F(ReplicaTest, EveryReplicaAnswersBitIdentically) {
  // With all replicas healthy the replicated coordinator is
  // indistinguishable from the single-replica one: monolithic bytes, no
  // failovers, no hedges, no degraded answers.
  ShardCoordinator coordinator(MakeGroups());
  SessionClient client = MakeClient(1, 701);
  mono_.HandleFrame(client.HelloFrame());
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(coordinator.HandleFrame(*request), mono_.HandleFrame(*request));

  auto topk = EncodeFrame(FrameKind::kTopKQuery, 1,
                          EncodeTopKQuery(10, SomeTerms(3, 71)));
  const std::vector<uint8_t> topk_reference = mono_.HandleFrame(topk);
  EXPECT_EQ(coordinator.HandleFrame(topk), topk_reference);

  // The second replica of every slice is just as good: a coordinator wired
  // to only replica 1 serves the same bytes.
  std::vector<std::vector<ShardTransport*>> replica1_groups(kShards);
  for (size_t s = 0; s < kShards; ++s) replica1_groups[s] = {kill(s, 1)};
  ShardCoordinator coordinator_r1(replica1_groups);
  EXPECT_EQ(DecodeFrame(coordinator_r1.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);
  EXPECT_EQ(coordinator_r1.HandleFrame(*request),
            mono_.HandleFrame(*request));
  EXPECT_EQ(coordinator_r1.HandleFrame(topk), topk_reference);

  CoordinatorStats stats = coordinator.stats();
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.hedges_fired, 0u);
  EXPECT_EQ(stats.degraded_answers, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ReplicaTest, DeadReplicaFailsOverWithoutChangingBytes) {
  kill(1, 0)->Kill();
  ShardCoordinator coordinator(MakeGroups());
  SessionClient client = MakeClient(2, 702);
  mono_.HandleFrame(client.HelloFrame());
  // Handshake and registration survive the dead replica: the slice is
  // usable through its second replica.
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  auto request = client.QueryFrame(SomeTerms(5, 9));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(coordinator.HandleFrame(*request), mono_.HandleFrame(*request));

  CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.degraded_answers, 0u);
}

TEST_F(ReplicaTest, BreakerProbeReAdmitsHealedReplica) {
  kill(1, 0)->Kill();
  ShardCoordinatorOptions options;
  options.breaker_threshold = 1;   // one failure opens the circuit
  options.probe_probability = 1.0; // every order probes an open replica
  ShardCoordinator coordinator(MakeGroups(), options);
  SessionClient client = MakeClient(3, 703);
  mono_.HandleFrame(client.HelloFrame());
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  auto request = client.QueryFrame(SomeTerms(2, 4));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(coordinator.HandleFrame(*request), mono_.HandleFrame(*request));

  // Replica (1,0) healed — but it was dead through the registration, so the
  // probe first surfaces its lost session; the coordinator's self-healing
  // re-registration converges it and the answer stays bit-identical.
  kill(1, 0)->Revive();
  const size_t calls_before = kill(1, 0)->calls();
  auto request2 = client.QueryFrame(SomeTerms(11, 19));
  ASSERT_TRUE(request2.ok());
  EXPECT_EQ(coordinator.HandleFrame(*request2),
            mono_.HandleFrame(*request2));
  // The probe actually sent the healed replica traffic again.
  EXPECT_GT(kill(1, 0)->calls(), calls_before);
}

TEST_F(ReplicaTest, HedgeWinsWhenPrimaryDies) {
  // Every slice's primary is dead: with hedging armed, the duplicate to the
  // second replica answers every logical trip — bytes identical, and the
  // hedge/failover counters prove the path was exercised.
  for (size_t s = 0; s < kShards; ++s) kill(s, 0)->Kill();
  ShardCoordinatorOptions options;
  options.hedge_delay_ms = 0;
  ThreadPool pool(2);
  ShardCoordinator coordinator(MakeGroups(), options, &pool);
  SessionClient client = MakeClient(4, 704);
  mono_.HandleFrame(client.HelloFrame());
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  for (size_t round = 0; round < 3; ++round) {
    auto request = client.QueryFrame(SomeTerms(round + 2, round + 13));
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(coordinator.HandleFrame(*request),
              mono_.HandleFrame(*request));
  }
  CoordinatorStats stats = coordinator.stats();
  EXPECT_GT(stats.hedges_fired, 0u);
  EXPECT_GT(stats.hedge_wins, 0u);
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(stats.degraded_answers, 0u);
}

TEST_F(ReplicaTest, StaleHedgeResponseIsNeverMerged) {
  // Primary dead, hedge replica reorders: every hedge delivers the
  // *previous* round trip's response, whose envelope seq belongs to an
  // older request. The seq fence must reject it every time — the client
  // sees typed errors, never a merge over stale bytes — and a healed
  // primary immediately restores bit-identical answers.
  FaultyTransportOptions faulty_options;
  faulty_options.schedule = {TransportFault::kReorder};
  faulty_options.cycle = true;
  FaultyTransport reordering(kill(1, 1), faulty_options);

  std::vector<std::vector<ShardTransport*>> groups = MakeGroups();
  groups[1][1] = &reordering;

  ShardCoordinatorOptions options;
  options.hedge_delay_ms = 0;
  options.breaker_threshold = 0;  // keep the replica order fixed
  options.probe_probability = 0;
  ThreadPool pool(2);
  ShardCoordinator storm(groups, options, &pool);
  SessionClient client = MakeClient(5, 705);
  mono_.HandleFrame(client.HelloFrame());
  // Register while the primary lives (the reordering replica never acks,
  // but one ack per slice registers the session).
  EXPECT_EQ(DecodeFrame(storm.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);
  auto request = client.QueryFrame(SomeTerms(7, 23));
  ASSERT_TRUE(request.ok());
  const std::vector<uint8_t> reference = mono_.HandleFrame(*request);
  EXPECT_EQ(storm.HandleFrame(*request), reference);

  // Now the primary dies: every slice-1 trip hedges onto the reordering
  // replica, which always answers with the previous request's response.
  kill(1, 0)->Kill();
  for (size_t round = 0; round < 4; ++round) {
    Status error = RequireTypedError(storm.HandleFrame(*request));
    EXPECT_TRUE(error.IsUnavailable()) << error.ToString();
  }
  EXPECT_GT(storm.stats().hedges_fired, 0u);
  EXPECT_GE(reordering.stats().reorders, 1u);

  // Primary healed: the next query must merge bit-identically again (the
  // held stale response on the hedge replica can never leak into it).
  kill(1, 0)->Revive();
  EXPECT_EQ(storm.HandleFrame(*request), reference);
}

TEST_F(ReplicaTest, DegradedModeAnswersFromSurvivors) {
  ShardCoordinatorOptions options;
  options.allow_partial_results = true;
  ShardCoordinator coordinator(MakeGroups(), options);
  SessionClient client = MakeClient(6, 706);
  mono_.HandleFrame(client.HelloFrame());
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  // Healthy: partial mode never activates, bytes are monolithic.
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(coordinator.HandleFrame(*request), mono_.HandleFrame(*request));
  EXPECT_EQ(coordinator.stats().degraded_answers, 0u);

  // The whole replica group of slice 1 dies.
  kill(1, 0)->Kill();
  kill(1, 1)->Kill();

  // PR: answered from slices 0 and 2, marked degraded with missing = {1},
  // and the partial payload is exactly the merge of the survivors' own
  // responses.
  auto request2 = client.QueryFrame(SomeTerms(11, 19));
  ASSERT_TRUE(request2.ok());
  auto degraded = DecodeFrame(coordinator.HandleFrame(*request2));
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->kind, FrameKind::kDegradedResult);
  EXPECT_EQ(degraded->session_id, client.session_id());
  auto partial = DecodeDegradedResult(degraded->payload);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->inner_kind, FrameKind::kResult);
  EXPECT_EQ(partial->missing, std::vector<uint32_t>{1});

  std::vector<core::EncryptedResult> survivor_results;
  for (size_t s : {0u, 2u}) {
    auto slice_frame = DecodeFrame(slice(s, 0)->HandleFrame(*request2));
    ASSERT_TRUE(slice_frame.ok());
    ASSERT_EQ(slice_frame->kind, FrameKind::kResult);
    auto result =
        core::DecodeResult(slice_frame->payload, client.public_key());
    ASSERT_TRUE(result.ok());
    survivor_results.push_back(std::move(*result));
  }
  core::EncryptedResult survivor_merge =
      core::MergeShardResults(std::move(survivor_results));
  EXPECT_EQ(partial->inner_payload,
            core::EncodeResult(survivor_merge, client.public_key()));

  // Top-k: same shape, same survivor-exact merge.
  auto topk = EncodeFrame(FrameKind::kTopKQuery, client.session_id(),
                          EncodeTopKQuery(10, SomeTerms(3, 71)));
  auto degraded_topk = DecodeFrame(coordinator.HandleFrame(topk));
  ASSERT_TRUE(degraded_topk.ok());
  ASSERT_EQ(degraded_topk->kind, FrameKind::kDegradedResult);
  auto partial_topk = DecodeDegradedResult(degraded_topk->payload);
  ASSERT_TRUE(partial_topk.ok());
  EXPECT_EQ(partial_topk->inner_kind, FrameKind::kTopKResult);
  EXPECT_EQ(partial_topk->missing, std::vector<uint32_t>{1});
  std::vector<std::vector<index::ScoredDoc>> survivor_topk;
  for (size_t s : {0u, 2u}) {
    auto slice_frame = DecodeFrame(slice(s, 0)->HandleFrame(topk));
    ASSERT_TRUE(slice_frame.ok());
    ASSERT_EQ(slice_frame->kind, FrameKind::kTopKResult);
    auto docs = DecodeTopKResult(slice_frame->payload);
    ASSERT_TRUE(docs.ok());
    survivor_topk.push_back(std::move(*docs));
  }
  EXPECT_EQ(partial_topk->inner_payload,
            EncodeTopKResult(index::MergeShardTopK(survivor_topk, 10)));

  // PIR stays strict: the addressed slice either answers or errors.
  EXPECT_EQ(coordinator.stats().degraded_answers, 2u);

  // Healed: full answers resume (the degraded response was never cached).
  kill(1, 0)->Revive();
  kill(1, 1)->Revive();
  EXPECT_EQ(coordinator.HandleFrame(*request2),
            mono_.HandleFrame(*request2));
}

TEST_F(ReplicaTest, StrictModeFailsClosedWhenSliceDies) {
  ShardCoordinator coordinator(MakeGroups());  // allow_partial off
  SessionClient client = MakeClient(7, 707);
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);
  kill(1, 0)->Kill();
  kill(1, 1)->Kill();
  auto request = client.QueryFrame(SomeTerms(5, 9));
  ASSERT_TRUE(request.ok());
  Status error = RequireTypedError(coordinator.HandleFrame(*request));
  EXPECT_TRUE(error.IsUnavailable()) << error.ToString();
  EXPECT_EQ(coordinator.stats().degraded_answers, 0u);
}

TEST_F(ReplicaTest, CoordinatorShedsBeyondInflightBudget) {
  ShardCoordinatorOptions options;
  options.max_inflight = 2;
  ShardCoordinator coordinator(MakeGroups(), options);
  SessionClient client = MakeClient(8, 708);
  mono_.HandleFrame(client.HelloFrame());
  EXPECT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);

  auto request = client.QueryFrame(SomeTerms(2, 4));
  ASSERT_TRUE(request.ok());
  const std::vector<uint8_t> reference = mono_.HandleFrame(*request);

  // A batch over budget: the first max_inflight requests are answered, the
  // deterministic suffix is shed with typed kBusy.
  std::vector<std::vector<uint8_t>> batch(5, *request);
  auto responses = coordinator.HandleBatch(batch);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0], reference);
  EXPECT_EQ(responses[1], reference);
  for (size_t i = 2; i < 5; ++i) {
    Status error = RequireTypedError(responses[i]);
    EXPECT_TRUE(error.IsBusy()) << error.ToString();
  }
  EXPECT_EQ(coordinator.stats().shed, 3u);

  // The budget was released: later traffic is admitted again.
  EXPECT_EQ(coordinator.HandleFrame(*request), reference);
}

}  // namespace
}  // namespace embellish::server
