// Live-ingest equivalence under contention: a seeded query storm races
// ApplyDelta and Reshard cutovers on a catalog-backed server, and every
// single answer must be bit-identical to a frozen reference server pinned
// at an epoch that was live while the request was in flight — there is no
// moment at which a reader can observe a torn or mixed-epoch index. The
// suite runs under the `ingest` ctest label so the ASan/TSan CI jobs drive
// it explicitly; the counted answer-path invariant asserts that no serving
// thread ever executed an index/layout build.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/answer_path.h"
#include "index/epoch.h"
#include "server/embellish_server.h"
#include "server/session_client.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class LiveIngestTest : public ::testing::Test {
 protected:
  LiveIngestTest()
      : lex_(testutil::SmallSyntheticLexicon(1200, 611)),
        corp_(testutil::SmallCorpus(lex_, 100, 612)),
        org_(std::make_shared<core::BucketOrganization>(
            testutil::MakeBuckets(lex_, 4, 64))) {}

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, org_.get(), ko, seed))
        .value();
  }

  std::vector<corpus::Document> SomeDeltaDocs(size_t count, uint64_t salt) {
    auto terms = corp_.DistinctTerms();
    std::vector<corpus::Document> docs(count);
    for (size_t d = 0; d < count; ++d) {
      for (size_t t = 0; t < 30; ++t) {
        docs[d].tokens.push_back(terms[(salt + 17 * d + 3 * t) % terms.size()]);
      }
    }
    return docs;
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = corp_.DistinctTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  std::shared_ptr<core::BucketOrganization> org_;
};

TEST_F(LiveIngestTest, StormAnswersAreBitIdenticalToSomePinnedEpoch) {
  index::IndexCatalogOptions copts;
  copts.sharding.shard_count = 2;
  ThreadPool pool(4);
  auto catalog = index::IndexCatalog::Create(corp_, org_, copts, &pool);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  EmbellishServerOptions options;
  options.cache_capacity = 0;  // every answer recomputed: no replay masking
  EmbellishServer server(catalog->get(), options, &pool);

  // Pre-register the storm sessions and pre-encode every request frame so
  // the racing threads are deterministic byte replayers.
  constexpr size_t kThreads = 3;
  constexpr size_t kIters = 8;
  std::vector<SessionClient> clients;
  std::vector<std::vector<std::vector<uint8_t>>> requests(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.push_back(MakeClient(50 + t, 700 + t));
    auto hello = DecodeFrame(server.HandleFrame(clients.back().HelloFrame()));
    ASSERT_TRUE(hello.ok());
    ASSERT_EQ(hello->kind, FrameKind::kHelloOk);
    for (size_t i = 0; i < kIters; ++i) {
      if (i % 2 == 0) {
        auto req = clients.back().QueryFrame(SomeTerms(3 * t + i, 7 * i + 1));
        ASSERT_TRUE(req.ok());
        requests[t].push_back(std::move(*req));
      } else {
        requests[t].push_back(
            EncodeFrame(FrameKind::kTopKQuery, 50 + t,
                        EncodeTopKQuery(10, SomeTerms(5 * t + i, 11 * i))));
      }
    }
  }

  // Every snapshot the catalog ever installs, by epoch number — the frozen
  // references the storm's answers are checked against.
  std::map<uint64_t,
           std::shared_ptr<const index::IndexEpoch>> snapshots;
  snapshots[1] = (*catalog)->Acquire();

  struct Observation {
    size_t thread;
    size_t iter;
    uint64_t epoch_lo;  // current epoch before the request was sent
    uint64_t epoch_hi;  // current epoch after the response landed
    std::vector<uint8_t> response;
  };
  std::vector<std::vector<Observation>> observed(kThreads);
  std::atomic<bool> start{false};

  std::vector<std::thread> storm;
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (size_t i = 0; i < kIters; ++i) {
        Observation ob;
        ob.thread = t;
        ob.iter = i;
        ob.epoch_lo = (*catalog)->Acquire()->epoch();
        ob.response = server.HandleFrame(requests[t][i]);
        ob.epoch_hi = (*catalog)->Acquire()->epoch();
        observed[t].push_back(std::move(ob));
      }
    });
  }

  start.store(true, std::memory_order_release);
  // The ingest side, racing the storm: two deltas around a 2 -> 4 reshard.
  auto e2 = (*catalog)->ApplyDelta(SomeDeltaDocs(6, 21));
  ASSERT_TRUE(e2.ok()) << e2.status().ToString();
  snapshots[(*e2)->epoch()] = *e2;
  index::ShardingOptions wider;
  wider.shard_count = 4;
  auto e3 = (*catalog)->Reshard(wider);
  ASSERT_TRUE(e3.ok()) << e3.status().ToString();
  snapshots[(*e3)->epoch()] = *e3;
  auto e4 = (*catalog)->ApplyDelta(SomeDeltaDocs(5, 33));
  ASSERT_TRUE(e4.ok()) << e4.status().ToString();
  snapshots[(*e4)->epoch()] = *e4;
  for (auto& th : storm) th.join();

  // No serving thread (storm or batch worker) ever ran an index or layout
  // build — the counted non-blocking invariant.
  EXPECT_EQ(server.stats().answer_path_builds, 0u);
  EXPECT_EQ(server.stats().epoch_swaps, 3u);

  // Frozen reference servers, one per installed epoch, built AFTER the
  // race so they cannot perturb it. FreezeEpoch pins the exact snapshot —
  // same sharding, same layouts — so even shard-layout-dependent answers
  // must reproduce.
  std::map<uint64_t, std::unique_ptr<EmbellishServer>> references;
  std::map<uint64_t, std::unique_ptr<index::IndexCatalog>> ref_catalogs;
  for (const auto& [epoch, snapshot] : snapshots) {
    ref_catalogs[epoch] = index::IndexCatalog::FreezeEpoch(snapshot);
    references[epoch] =
        std::make_unique<EmbellishServer>(ref_catalogs[epoch].get(), options);
    for (auto& client : clients) {
      references[epoch]->HandleFrame(client.HelloFrame());
    }
  }

  // Every observed answer must be byte-for-byte the answer of SOME epoch
  // that was current while the request was in flight.
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(observed[t].size(), kIters);
    for (const Observation& ob : observed[t]) {
      ASSERT_LE(ob.epoch_lo, ob.epoch_hi);
      bool matched = false;
      for (uint64_t e = ob.epoch_lo; e <= ob.epoch_hi && !matched; ++e) {
        auto it = references.find(e);
        ASSERT_NE(it, references.end()) << "epoch " << e << " unrecorded";
        matched = it->second->HandleFrame(requests[ob.thread][ob.iter]) ==
                  ob.response;
      }
      EXPECT_TRUE(matched)
          << "thread " << ob.thread << " iter " << ob.iter
          << " answered bytes matching no epoch in [" << ob.epoch_lo << ", "
          << ob.epoch_hi << "]";
    }
  }
}

TEST_F(LiveIngestTest, AsyncBuildersRaceAcquireCleanly) {
  // Pure pin/swap contention (no server layer): readers hammering Acquire
  // and evaluating must never crash, block on a build, or see a snapshot
  // in between epochs while async delta + reshard builders run. TSan is
  // the real assertion here.
  index::IndexCatalogOptions copts;
  copts.sharding.shard_count = 2;
  copts.build_layouts = false;
  ThreadPool pool(4);
  auto catalog = index::IndexCatalog::Create(corp_, org_, copts, &pool);
  ASSERT_TRUE(catalog.ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      common::ScopedAnswerPath serving;
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = (*catalog)->Acquire();
        auto query = SomeTerms(t + i, 2 * i + 1);
        auto got = index::EvaluateTopKEpoch(*snapshot, query, 5);
        auto full = index::EvaluateFull(snapshot->index(), query);
        if (full.size() > 5) full.resize(5);
        ASSERT_EQ(got, full) << "epoch " << snapshot->epoch();
        ++i;
      }
    });
  }

  (*catalog)->ApplyDeltaAsync(SomeDeltaDocs(4, 11));
  index::ShardingOptions wider;
  wider.shard_count = 3;
  (*catalog)->ReshardAsync(wider);
  (*catalog)->ApplyDeltaAsync(SomeDeltaDocs(3, 13));
  (*catalog)->WaitForBuilds();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  ASSERT_TRUE((*catalog)->last_async_status().ok());
  auto final_snapshot = (*catalog)->Acquire();
  EXPECT_EQ(final_snapshot->epoch(), 4u);
  EXPECT_EQ(final_snapshot->index().document_count(),
            corp_.document_count() + 7);
  EXPECT_EQ((*catalog)->stats().answer_path_builds, 0u);
}

}  // namespace
}  // namespace embellish::server
