// AsyncFrontEnd behavior tests: response bytes identical to the blocking
// HandleFrame surface, per-connection response ordering under concurrent
// dispatch, slow-client isolation (a trickler parked mid-frame must not
// delay anyone else), mid-frame disconnect accounting, shedding with typed
// kBusy, and the zero-dispatcher synchronous fallback.

#include "server/async_frontend.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "index/builder.h"
#include "server/embellish_server.h"
#include "server/framing.h"
#include "server/io_util.h"
#include "server/session_client.h"
#include "server/shard_transport.h"
#include "testutil.h"

namespace embellish::server {
namespace {

// A blocking framed client for the test side of the socket.
class BlockingClient {
 public:
  explicit BlockingClient(uint16_t port) {
    auto fd = ConnectWithDeadline("127.0.0.1", port, 5000);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    fd_ = fd.ok() ? *fd : -1;
    if (fd_ >= 0) EXPECT_TRUE(SetBlocking(fd_).ok());
  }
  ~BlockingClient() { Close(); }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  int fd() const { return fd_; }

  void Send(const std::vector<uint8_t>& frame) {
    ASSERT_TRUE(WriteAll(fd_, frame.data(), frame.size(),
                         DeadlineFromNow(5000))
                    .ok());
  }

  std::vector<uint8_t> Recv() {
    auto frame =
        ReadFrameFd(fd_, kMaxTransportFrameBytes, DeadlineFromNow(10000));
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok() ? *std::move(frame) : std::vector<uint8_t>{};
  }

  std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& frame) {
    Send(frame);
    return Recv();
  }

 private:
  int fd_ = -1;
};

class AsyncFrontEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loop = EventLoop::Create();
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    loop_ = std::move(*loop);
    ASSERT_TRUE(loop_->Start().ok());
  }

  void TearDown() override {
    front_end_.reset();
    loop_->Stop();
  }

  // Serves `handler` on a fresh loopback listener; returns the port.
  uint16_t Serve(AsyncFrontEnd::BatchHandler handler,
                 const AsyncFrontEndOptions& options = {}) {
    uint16_t port = 0;
    auto listen_fd = ListenOnLoopback(&port);
    EXPECT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
    auto front_end = AsyncFrontEnd::Create(*listen_fd, loop_.get(),
                                           std::move(handler), options);
    EXPECT_TRUE(front_end.ok()) << front_end.status().ToString();
    front_end_ = std::move(*front_end);
    return port;
  }

  void AwaitStats(std::function<bool(const AsyncFrontEndStats&)> pred) {
    for (int i = 0; i < 5000; ++i) {
      if (pred(front_end_->stats())) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "stats predicate never satisfied";
  }

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<AsyncFrontEnd> front_end_;
};

// Echoes each request back, tagged, after decoding — a deterministic
// handler whose responses identify their requests.
std::vector<std::vector<uint8_t>> EchoHandler(
    const std::vector<std::vector<uint8_t>>& requests) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(requests.size());
  for (const auto& request : requests) {
    auto frame = DecodeFrame(request);
    if (!frame.ok()) {
      out.push_back(EncodeFrame(FrameKind::kError, 0,
                                EncodeError(frame.status())));
      continue;
    }
    out.push_back(
        EncodeFrame(FrameKind::kResult, frame->session_id, frame->payload));
  }
  return out;
}

std::vector<uint8_t> TaggedRequest(uint64_t tag) {
  return EncodeFrame(FrameKind::kQuery, tag,
                     std::vector<uint8_t>{static_cast<uint8_t>(tag), 7, 9});
}

TEST_F(AsyncFrontEndTest, EchoRoundTripsAndStats) {
  uint16_t port = Serve(EchoHandler);
  BlockingClient client(port);
  for (uint64_t tag = 1; tag <= 5; ++tag) {
    auto response = client.RoundTrip(TaggedRequest(tag));
    auto frame = DecodeFrame(response);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->kind, FrameKind::kResult);
    EXPECT_EQ(frame->session_id, tag);
  }
  client.Close();
  AwaitStats([](const AsyncFrontEndStats& s) {
    return s.connections_closed == 1 && s.open_connections == 0;
  });
  auto stats = front_end_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.frames_in, 5u);
  EXPECT_EQ(stats.responses_out, 5u);
  EXPECT_EQ(stats.mid_frame_disconnects, 0u);
}

TEST_F(AsyncFrontEndTest, PipelinedResponsesKeepRequestOrder) {
  // Many dispatcher threads, one-frame batches: handler calls complete out
  // of order on purpose (odd tags sleep), but one connection's responses
  // must still come back in request order.
  AsyncFrontEndOptions options;
  options.dispatch_threads = 4;
  options.max_batch = 1;
  uint16_t port = Serve(
      [](const std::vector<std::vector<uint8_t>>& requests) {
        auto frame = DecodeFrame(requests[0]);
        if (frame.ok() && frame->session_id % 2 == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return EchoHandler(requests);
      },
      options);

  BlockingClient client(port);
  constexpr uint64_t kFrames = 16;
  for (uint64_t tag = 0; tag < kFrames; ++tag) {
    client.Send(TaggedRequest(tag));
  }
  for (uint64_t tag = 0; tag < kFrames; ++tag) {
    auto frame = DecodeFrame(client.Recv());
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->session_id, tag) << "responses reordered";
  }
}

TEST_F(AsyncFrontEndTest, TricklerParkedMidFrameDelaysNobody) {
  uint16_t port = Serve(EchoHandler);

  // The trickler sends half a frame and then goes quiet, holding its
  // connection mid-frame. In the thread-per-connection world this parked a
  // server thread; here it must cost nothing but buffered bytes.
  BlockingClient trickler(port);
  auto slow_frame = TaggedRequest(77);
  const size_t half = slow_frame.size() / 2;
  ASSERT_TRUE(WriteAll(trickler.fd(), slow_frame.data(), half).ok());

  // Fast client round trips complete under their deadline while the
  // trickler is parked (Recv enforces a hard deadline: a stall fails).
  BlockingClient fast(port);
  for (uint64_t tag = 0; tag < 32; ++tag) {
    auto frame = DecodeFrame(fast.RoundTrip(TaggedRequest(tag)));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->session_id, tag);
  }

  // The trickler is not broken, just slow: the rest of its frame still
  // gets its answer.
  ASSERT_TRUE(WriteAll(trickler.fd(), slow_frame.data() + half,
                       slow_frame.size() - half)
                  .ok());
  auto frame = DecodeFrame(trickler.Recv());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->session_id, 77u);
}

TEST_F(AsyncFrontEndTest, MidFrameDisconnectFreesTheConnection) {
  uint16_t port = Serve(EchoHandler);
  {
    BlockingClient client(port);
    auto request = TaggedRequest(1);
    ASSERT_TRUE(
        WriteAll(client.fd(), request.data(), request.size() / 2).ok());
    AwaitStats([](const AsyncFrontEndStats& s) {
      return s.connections_accepted == 1;
    });
  }  // disconnect with half a frame buffered
  AwaitStats([](const AsyncFrontEndStats& s) {
    return s.mid_frame_disconnects == 1 && s.open_connections == 0 &&
           s.connections_closed == 1;
  });
  EXPECT_EQ(front_end_->stats().frames_in, 0u);
}

TEST_F(AsyncFrontEndTest, QueueOverflowShedsWithTypedBusy) {
  // One dispatcher parked in the handler + a one-slot queue: the third
  // frame in flight must be shed with kBusy — and because responses are
  // re-sequenced per connection, the shed answer still arrives in order.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool in_handler = false;
  bool release = false;
  AsyncFrontEndOptions options;
  options.dispatch_threads = 1;
  options.max_batch = 1;
  options.max_pending = 1;
  uint16_t port = Serve(
      [&](const std::vector<std::vector<uint8_t>>& requests) {
        {
          std::unique_lock<std::mutex> lock(gate_mu);
          in_handler = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release; });
        }
        return EchoHandler(requests);
      },
      options);

  BlockingClient client(port);
  client.Send(TaggedRequest(0));
  {
    // The dispatcher now holds frame 0; the queue is empty again.
    std::unique_lock<std::mutex> lock(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return in_handler; }));
  }
  client.Send(TaggedRequest(1));  // fills the one queue slot
  AwaitStats([](const AsyncFrontEndStats& s) { return s.frames_in == 2; });
  client.Send(TaggedRequest(2));  // queue full: shed
  AwaitStats([](const AsyncFrontEndStats& s) { return s.shed == 1; });

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();

  auto first = DecodeFrame(client.Recv());
  auto second = DecodeFrame(client.Recv());
  auto third = DecodeFrame(client.Recv());
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(first->session_id, 0u);
  EXPECT_EQ(second->session_id, 1u);
  ASSERT_EQ(third->kind, FrameKind::kError);
  Status transported = Status::OK();
  ASSERT_TRUE(DecodeError(third->payload, &transported).ok());
  EXPECT_TRUE(transported.IsBusy()) << transported.ToString();
}

TEST_F(AsyncFrontEndTest, ZeroDispatcherFallbackServesOnTheLoopThread) {
  AsyncFrontEndOptions options;
  options.dispatch_threads = 0;
  uint16_t port = Serve(EchoHandler, options);
  BlockingClient client(port);
  for (uint64_t tag = 0; tag < 8; ++tag) {
    auto frame = DecodeFrame(client.RoundTrip(TaggedRequest(tag)));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->session_id, tag);
  }
  EXPECT_EQ(front_end_->stats().shed, 0u);
}

TEST_F(AsyncFrontEndTest, ConnectionCapRefusesTheExcess) {
  AsyncFrontEndOptions options;
  options.max_connections = 1;
  uint16_t port = Serve(EchoHandler, options);
  BlockingClient first(port);
  // Prove the first connection is live before the second arrives.
  auto frame = DecodeFrame(first.RoundTrip(TaggedRequest(1)));
  ASSERT_TRUE(frame.ok());

  BlockingClient second(port);
  AwaitStats([](const AsyncFrontEndStats& s) {
    return s.connections_refused == 1;
  });
  // The refused socket is closed by the server: a read sees EOF/reset, not
  // a hang.
  auto refused =
      ReadFrameFd(second.fd(), kMaxTransportFrameBytes, DeadlineFromNow(5000));
  EXPECT_FALSE(refused.ok());
}

TEST_F(AsyncFrontEndTest, LargeResponseDrainsThroughBackpressure) {
  // A response far above the outbox high-water mark, to a client that
  // delays reading: the write path must park on EPOLLOUT (pausing reads),
  // then drain the full payload intact.
  AsyncFrontEndOptions options;
  options.outbox_high_water = 64 << 10;
  std::vector<uint8_t> big(8u << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
  }
  auto response = EncodeFrame(FrameKind::kResult, 42, big);
  uint16_t port = Serve(
      [response](const std::vector<std::vector<uint8_t>>& requests) {
        return std::vector<std::vector<uint8_t>>(requests.size(), response);
      },
      options);

  BlockingClient client(port);
  client.Send(TaggedRequest(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto received = client.Recv();
  EXPECT_EQ(received, response);
}

TEST_F(AsyncFrontEndTest, EmbellishServerServeAsyncBytesMatchHandleFrame) {
  // The full stack, minus the network: the async front end over a real
  // EmbellishServer must hand back exactly HandleFrame's bytes for the
  // hello + PR query flow.
  auto lex = testutil::SmallSyntheticLexicon(600, 311);
  auto corp = testutil::SmallCorpus(lex, 60, 312);
  auto built = std::move(index::BuildIndex(corp, {})).value();
  auto org = testutil::MakeBuckets(lex, 4, 64);
  EmbellishServer server(&built.index, &org, nullptr);
  EmbellishServer reference(&built.index, &org, nullptr);

  uint16_t port = 0;
  auto listen_fd = ListenOnLoopback(&port);
  ASSERT_TRUE(listen_fd.ok());
  auto front_end = server.ServeAsync(*listen_fd, loop_.get());
  ASSERT_TRUE(front_end.ok()) << front_end.status().ToString();
  front_end_ = std::move(*front_end);

  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  SessionClient client =
      std::move(SessionClient::Create(3, &org, ko, 313)).value();
  auto terms = built.index.IndexedTerms();
  auto request = client.QueryFrame({terms[2], terms[17]});
  ASSERT_TRUE(request.ok());

  BlockingClient wire(port);
  EXPECT_EQ(wire.RoundTrip(client.HelloFrame()),
            reference.HandleFrame(client.HelloFrame()));
  EXPECT_EQ(wire.RoundTrip(*request), reference.HandleFrame(*request));
}

}  // namespace
}  // namespace embellish::server
