// Cross-epoch response-cache correctness: an answer cached under database
// epoch E must miss after the catalog installs E+1 (delta or reshard), the
// coordinator's fencing-epoch bump must do the same for its upstream cache,
// and the orthogonal registration-epoch (re-hello) invalidation keeps its
// existing behavior on the catalog-backed server.

#include <gtest/gtest.h>

#include "index/epoch.h"
#include "index/topk.h"
#include "server/embellish_server.h"
#include "server/session_client.h"
#include "server/shard_coordinator.h"
#include "server/shard_transport.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class EpochCacheTest : public ::testing::Test {
 protected:
  EpochCacheTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 911)),
        corp_(testutil::SmallCorpus(lex_, 130, 912)),
        org_(std::make_shared<core::BucketOrganization>(
            testutil::MakeBuckets(lex_, 4, 64))) {}

  std::unique_ptr<index::IndexCatalog> MakeLiveCatalog(size_t shards) {
    index::IndexCatalogOptions options;
    options.sharding.shard_count = shards;
    auto catalog = index::IndexCatalog::Create(corp_, org_, options);
    EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
    return std::move(*catalog);
  }

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, org_.get(), ko, seed))
        .value();
  }

  std::vector<corpus::Document> SomeDeltaDocs(size_t count, uint64_t salt) {
    auto terms = corp_.DistinctTerms();
    std::vector<corpus::Document> docs(count);
    for (size_t d = 0; d < count; ++d) {
      for (size_t t = 0; t < 40; ++t) {
        docs[d].tokens.push_back(terms[(salt + 13 * d + 5 * t) % terms.size()]);
      }
    }
    return docs;
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = corp_.DistinctTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  std::shared_ptr<core::BucketOrganization> org_;
};

TEST_F(EpochCacheTest, DeltaCutoverInvalidatesPrEntries) {
  auto catalog = MakeLiveCatalog(1);
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(catalog.get(), options);
  SessionClient client = MakeClient(1, 101);
  server.HandleFrame(client.HelloFrame());

  auto request = client.QueryFrame(SomeTerms(3, 17));
  ASSERT_TRUE(request.ok());
  auto first = server.HandleFrame(*request);
  // Same epoch, same bytes: a hit.
  EXPECT_EQ(server.HandleFrame(*request), first);
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // Cutover to epoch 2: the replayed bytes must MISS — the cached answer
  // was computed against the superseded snapshot and the delta may have
  // added matching documents.
  ASSERT_TRUE(catalog->ApplyDelta(SomeDeltaDocs(8, 55)).ok());
  auto after = server.HandleFrame(*request);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);  // no new hit
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.epoch_swaps, 1u);
  EXPECT_EQ(stats.delta_docs_ingested, 8u);
  // The post-cutover answer decodes under the session key (recomputed, not
  // replayed).
  EXPECT_TRUE(client.DecodeResultFrame(after, 10).ok());

  // The new epoch's entry now serves replays.
  EXPECT_EQ(server.HandleFrame(*request), after);
  EXPECT_EQ(server.stats().cache_hits, 2u);
}

TEST_F(EpochCacheTest, CutoverInvalidatesGlobalTopKEntries) {
  auto catalog = MakeLiveCatalog(2);
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(catalog.get(), options);

  auto genuine = SomeTerms(5, 23);
  auto request = EncodeFrame(FrameKind::kTopKQuery, 6,
                             EncodeTopKQuery(10, genuine));
  auto first = server.HandleFrame(request);
  EXPECT_EQ(server.HandleFrame(request), first);
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // Delta docs dense in the query terms: the top-k genuinely changes, so a
  // stale replay would be a WRONG answer, not merely a slow one.
  std::vector<corpus::Document> docs(3);
  for (auto& doc : docs) {
    for (size_t i = 0; i < 50; ++i) doc.tokens.push_back(genuine[0]);
    doc.tokens.push_back(genuine[1]);
  }
  auto next = catalog->ApplyDelta(std::move(docs));
  ASSERT_TRUE(next.ok());

  auto after = server.HandleFrame(request);
  EXPECT_EQ(server.stats().cache_hits, 1u);  // missed, recomputed
  auto frame = DecodeFrame(after);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->kind, FrameKind::kTopKResult);
  auto decoded = DecodeTopKResult(frame->payload);
  ASSERT_TRUE(decoded.ok());
  auto expected = index::EvaluateFull((*next)->index(), genuine);
  if (expected.size() > 10) expected.resize(10);
  EXPECT_EQ(*decoded, expected);
  EXPECT_NE(after, first);  // the ingested docs displaced the old top-k
}

TEST_F(EpochCacheTest, ReHelloInvalidationSurvivesTheCatalogRefactor) {
  // The registration-epoch axis is orthogonal to the database epoch: a
  // re-hello under a fresh key must still prevent replays of ciphertexts
  // encrypted under the superseded key, with no catalog cutover involved.
  auto catalog = MakeLiveCatalog(1);
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(catalog.get(), options);

  SessionClient old_client = MakeClient(6, 306);
  server.HandleFrame(old_client.HelloFrame());
  auto request = old_client.QueryFrame(SomeTerms(11, 19));
  ASSERT_TRUE(request.ok());
  auto first = server.HandleFrame(*request);
  ASSERT_TRUE(old_client.DecodeResultFrame(first, 10).ok());

  // Same session id, different keypair.
  SessionClient new_client = MakeClient(6, 307);
  server.HandleFrame(new_client.HelloFrame());
  auto replayed = server.HandleFrame(*request);
  EXPECT_NE(replayed, first);
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST_F(EpochCacheTest, CoordinatorEpochBumpInvalidatesUpstreamEntries) {
  // Rig: two slice servers behind in-process transports, coordinator with
  // an upstream cache.
  auto built = index::BuildIndex(corp_, {});
  ASSERT_TRUE(built.ok());
  constexpr size_t kSlices = 2;
  std::vector<std::unique_ptr<EmbellishServer>> slices;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints;
  std::vector<std::unique_ptr<InProcessTransport>> transports;
  std::vector<ShardTransport*> raw;
  for (size_t s = 0; s < kSlices; ++s) {
    EmbellishServerOptions slice_options;
    slice_options.shard_slice = s;
    slice_options.shard_slice_count = kSlices;
    slices.push_back(std::make_unique<EmbellishServer>(
        &built->index, org_.get(), nullptr, slice_options));
    endpoints.push_back(
        std::make_unique<ShardEndpoint>(slices.back().get(), s));
    transports.push_back(
        std::make_unique<InProcessTransport>(endpoints.back().get()));
    raw.push_back(transports.back().get());
  }
  ShardCoordinatorOptions copts;
  copts.cache_capacity = 64;
  ShardCoordinator coordinator(std::move(raw), copts);

  SessionClient client = MakeClient(9, 409);
  ASSERT_EQ(DecodeFrame(coordinator.HandleFrame(client.HelloFrame()))->kind,
            FrameKind::kHelloOk);
  auto request = client.QueryFrame(SomeTerms(7, 29));
  ASSERT_TRUE(request.ok());
  auto first = coordinator.HandleFrame(*request);
  ASSERT_TRUE(client.DecodeResultFrame(first, 10).ok());
  EXPECT_EQ(coordinator.HandleFrame(*request), first);
  EXPECT_EQ(coordinator.stats().cache_hits, 1u);
  const uint64_t epoch_before = coordinator.epoch();

  // The cutover: fencing epoch bumps, slices re-handshake under it, the
  // registered session is re-pushed, and the upstream cache generation
  // rolls — the replay misses and is re-merged (bit-identical here because
  // the slices' index did not actually change).
  ASSERT_TRUE(coordinator.AdvanceEpoch().ok());
  EXPECT_EQ(coordinator.epoch(), epoch_before + 1);
  EXPECT_EQ(coordinator.stats().epoch_swaps, 1u);
  auto after = coordinator.HandleFrame(*request);
  EXPECT_EQ(coordinator.stats().cache_hits, 1u);  // no stale hit
  EXPECT_EQ(after, first);
  // The session survived the cutover without a client-visible re-hello.
  EXPECT_TRUE(client.DecodeResultFrame(after, 10).ok());
}

}  // namespace
}  // namespace embellish::server
