// Coordinator-over-transport equivalence: a ShardCoordinator fronting N
// slice servers must produce response frames byte-identical to both the
// PR 3 in-process sharded EmbellishServer and the monolithic server, for
// the PR, PIR and plaintext top-k paths, at 1/2/4/8 shards — plus endpoint
// protocol checks (ping, misrouting, epoch fencing) and the TCP transport
// over loopback.

#include "server/shard_coordinator.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "index/builder.h"
#include "server/io_util.h"
#include "server/session_client.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class ShardCoordinatorTest : public ::testing::Test {
 protected:
  ShardCoordinatorTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 211)),
        corp_(testutil::SmallCorpus(lex_, 150, 212)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {}

  // N slice servers, endpoints and in-process transports, plus the
  // coordinator fronting them.
  struct Rig {
    std::vector<std::unique_ptr<EmbellishServer>> slices;
    std::vector<std::unique_ptr<ShardEndpoint>> endpoints;
    std::vector<std::unique_ptr<InProcessTransport>> transports;
    std::unique_ptr<ShardCoordinator> coordinator;
  };

  Rig MakeRig(size_t shards, const ShardCoordinatorOptions& copts = {},
              const EmbellishServerOptions& slice_base = {}) {
    Rig rig;
    std::vector<ShardTransport*> raw;
    for (size_t s = 0; s < shards; ++s) {
      EmbellishServerOptions options = slice_base;
      options.shard_slice = s;
      options.shard_slice_count = shards;
      rig.slices.push_back(std::make_unique<EmbellishServer>(
          &built_.index, &org_, nullptr, options));
      EXPECT_TRUE(rig.slices.back()->serves_slice());
      rig.endpoints.push_back(
          std::make_unique<ShardEndpoint>(rig.slices.back().get(), s));
      rig.transports.push_back(
          std::make_unique<InProcessTransport>(rig.endpoints.back().get()));
      raw.push_back(rig.transports.back().get());
    }
    rig.coordinator =
        std::make_unique<ShardCoordinator>(std::move(raw), copts);
    return rig;
  }

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  static FrameKind KindOf(const std::vector<uint8_t>& response) {
    auto frame = DecodeFrame(response);
    return frame.ok() ? frame->kind : FrameKind::kError;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
};

TEST_F(ShardCoordinatorTest, BitIdenticalToShardedAndMonolithicServers) {
  EmbellishServer mono(&built_.index, &org_, nullptr);
  SessionClient client = MakeClient(1, 501);
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EmbellishServerOptions shard_options;
    shard_options.shard_count = shards;
    EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);
    Rig rig = MakeRig(shards);

    // Hello: the coordinator advertises the same global topology bytes as
    // the in-process sharded server.
    mono.HandleFrame(client.HelloFrame());
    auto sharded_hello = sharded.HandleFrame(client.HelloFrame());
    auto coord_hello = rig.coordinator->HandleFrame(client.HelloFrame());
    EXPECT_EQ(coord_hello, sharded_hello);
    ASSERT_EQ(KindOf(coord_hello), FrameKind::kHelloOk);
    EXPECT_EQ(rig.coordinator->bucket_count(), org_.bucket_count());

    // PR path: byte-identical frames from all three configurations.
    auto mono_resp = mono.HandleFrame(*request);
    auto sharded_resp = sharded.HandleFrame(*request);
    auto coord_resp = rig.coordinator->HandleFrame(*request);
    EXPECT_EQ(KindOf(coord_resp), FrameKind::kResult);
    EXPECT_EQ(coord_resp, mono_resp);
    EXPECT_EQ(coord_resp, sharded_resp);
    EXPECT_TRUE(client.DecodeResultFrame(coord_resp, 10).ok());

    // Top-k path.
    auto topk_request = EncodeFrame(FrameKind::kTopKQuery, 1,
                                    EncodeTopKQuery(10, SomeTerms(3, 71)));
    auto mono_topk = mono.HandleFrame(topk_request);
    auto sharded_topk = sharded.HandleFrame(topk_request);
    auto coord_topk = rig.coordinator->HandleFrame(topk_request);
    EXPECT_EQ(KindOf(coord_topk), FrameKind::kTopKResult);
    EXPECT_EQ(coord_topk, mono_topk);
    EXPECT_EQ(coord_topk, sharded_topk);

    CoordinatorStats stats = rig.coordinator->stats();
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_EQ(stats.topk_queries, 1u);
    EXPECT_EQ(stats.errors, 0u);
  }
}

TEST_F(ShardCoordinatorTest, PirPathBitIdenticalPerShard) {
  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[29]);
  ASSERT_TRUE(slot.ok());
  Rng rng(911);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto query = pir_client.BuildQuery(slot->slot,
                                     org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(query.ok());

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EmbellishServerOptions shard_options;
    shard_options.shard_count = shards;
    EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);
    Rig rig = MakeRig(shards);
    ASSERT_TRUE(rig.coordinator->Handshake().ok());

    std::vector<std::vector<index::Posting>> fragments;
    for (size_t shard = 0; shard < shards; ++shard) {
      auto request = EncodeFrame(
          FrameKind::kPirQuery, 12,
          EncodePirQuery(rig.coordinator->PirBucketField(shard, slot->bucket),
                         *query));
      auto sharded_resp = sharded.HandleFrame(request);
      auto coord_resp = rig.coordinator->HandleFrame(request);
      EXPECT_EQ(coord_resp, sharded_resp) << "shard " << shard;
      auto frame = DecodeFrame(coord_resp);
      ASSERT_TRUE(frame.ok());
      ASSERT_EQ(frame->kind, FrameKind::kPirResult) << "shard " << shard;
      auto decoded = DecodePirResponse(frame->payload);
      ASSERT_TRUE(decoded.ok());
      auto bits = pir_client.DecodeResponse(*decoded);
      ASSERT_TRUE(bits.ok());
      auto fragment = core::PostingsFromColumnBits(*bits);
      ASSERT_TRUE(fragment.ok());
      fragments.push_back(std::move(*fragment));
    }
    // The per-shard fragments reassemble the term's monolithic list.
    EXPECT_EQ(index::MergeShardPostings(fragments),
              *built_.index.postings(terms[29]));

    // Address validation matches the sharded server: saturated sentinel and
    // out-of-range shard both answered with typed errors.
    auto saturated = rig.coordinator->HandleFrame(EncodeFrame(
        FrameKind::kPirQuery, 12, EncodePirQuery(SIZE_MAX, *query)));
    EXPECT_EQ(KindOf(saturated), FrameKind::kError);
    auto out_of_range = rig.coordinator->HandleFrame(EncodeFrame(
        FrameKind::kPirQuery, 12,
        EncodePirQuery(rig.coordinator->PirBucketField(shards + 3,
                                                       slot->bucket),
                       *query)));
    EXPECT_EQ(KindOf(out_of_range), FrameKind::kError);
  }
}

TEST_F(ShardCoordinatorTest, BatchedDispatchMatchesSerial) {
  ThreadPool pool(4);
  EmbellishServer mono(&built_.index, &org_, nullptr);
  EmbellishServerOptions shard_options;
  shard_options.shard_count = 3;
  EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);

  ShardCoordinatorOptions copts;
  copts.fanout_threads = 2;
  Rig rig = MakeRig(3, copts);
  // Batched coordinator dispatch and each query's capped fan-out now share
  // the caller's pool: fan-out regions nest inside the batch region.
  std::vector<ShardTransport*> shared;
  for (auto& t : rig.transports) shared.push_back(t.get());
  ShardCoordinator batched(shared, copts, &pool);

  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < 5; ++s) {
    clients.push_back(MakeClient(700 + s, 800 + s));
    mono.HandleFrame(clients.back().HelloFrame());
    sharded.HandleFrame(clients.back().HelloFrame());
    batched.HandleFrame(clients.back().HelloFrame());
    auto req = clients.back().QueryFrame(SomeTerms(s + 2, 7 * s + 1));
    ASSERT_TRUE(req.ok());
    requests.push_back(std::move(*req));
  }

  auto responses = batched.HandleBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i], mono.HandleFrame(requests[i])) << "request " << i;
    EXPECT_EQ(responses[i], sharded.HandleFrame(requests[i]))
        << "request " << i;
  }
}

TEST_F(ShardCoordinatorTest, BatchedPirDispatchMatchesSerialAndSharded) {
  // Batched PIR through the coordinator: each slice server answers its
  // batch's PIR frames in shared sweeps, and the coordinator-dispatched
  // bytes must still equal both the serial coordinator path and the
  // in-process sharded server, for a batch mixing shards and moduli.
  constexpr size_t kShards = 3;
  ThreadPool pool(4);
  EmbellishServerOptions shard_options;
  shard_options.shard_count = kShards;
  EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);

  ShardCoordinatorOptions copts;
  copts.fanout_threads = 2;
  Rig rig = MakeRig(kShards, copts);
  std::vector<ShardTransport*> shared;
  for (auto& t : rig.transports) shared.push_back(t.get());
  ShardCoordinator batched(shared, copts, &pool);

  auto terms = built_.index.IndexedTerms();
  Rng rng(933);
  std::vector<std::vector<uint8_t>> requests;
  for (size_t c = 0; c < 2; ++c) {
    crypto::PirClient pir_client =
        std::move(crypto::PirClient::Create(256, &rng)).value();
    for (size_t q = 0; q < 2; ++q) {
      auto slot = org_.Locate(terms[(31 * c + 13 * q + 3) % terms.size()]);
      ASSERT_TRUE(slot.ok());
      auto query = pir_client.BuildQuery(
          slot->slot, org_.bucket(slot->bucket).size(), &rng);
      ASSERT_TRUE(query.ok());
      for (size_t shard = 0; shard < kShards; ++shard) {
        requests.push_back(EncodeFrame(
            FrameKind::kPirQuery, 900 + c,
            EncodePirQuery(batched.PirBucketField(shard, slot->bucket),
                           *query)));
      }
    }
  }

  auto responses = batched.HandleBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(KindOf(responses[i]), FrameKind::kPirResult) << "request " << i;
    EXPECT_EQ(responses[i], rig.coordinator->HandleFrame(requests[i]))
        << "request " << i;
    EXPECT_EQ(responses[i], sharded.HandleFrame(requests[i]))
        << "request " << i;
  }
}

TEST_F(ShardCoordinatorTest, ResponseCacheShortCircuitsRecurringPrQueries) {
  ShardCoordinatorOptions copts;
  copts.cache_capacity = 64;
  Rig rig = MakeRig(3, copts);
  SessionClient client = MakeClient(41, 941);
  ASSERT_EQ(KindOf(rig.coordinator->HandleFrame(client.HelloFrame())),
            FrameKind::kHelloOk);
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());

  auto first = rig.coordinator->HandleFrame(*request);
  ASSERT_EQ(KindOf(first), FrameKind::kResult);
  const uint64_t trips_after_first = rig.coordinator->stats().shard_trips;

  // Session consistency makes a recurring genuine-term set a byte-identical
  // uplink; the replay must be served upstream with zero new shard trips.
  auto second = rig.coordinator->HandleFrame(*request);
  EXPECT_EQ(second, first);
  CoordinatorStats stats = rig.coordinator->stats();
  EXPECT_EQ(stats.shard_trips, trips_after_first);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.queries, 2u);
}

TEST_F(ShardCoordinatorTest, ResponseCacheIsEpochScopedAcrossReHellos) {
  // Regression: a re-hello bumps the session's registration epoch, and the
  // epoch is a cache-key component — identical request bytes after the
  // re-hello must MISS and re-fan out, never replay bytes merged under the
  // superseded registration.
  constexpr size_t kShards = 3;
  ShardCoordinatorOptions copts;
  copts.cache_capacity = 64;
  Rig rig = MakeRig(kShards, copts);
  SessionClient client = MakeClient(42, 942);
  rig.coordinator->HandleFrame(client.HelloFrame());
  auto request = client.QueryFrame(SomeTerms(5, 23));
  ASSERT_TRUE(request.ok());

  auto first = rig.coordinator->HandleFrame(*request);
  ASSERT_EQ(KindOf(first), FrameKind::kResult);
  ASSERT_EQ(rig.coordinator->stats().cache_misses, 1u);

  ASSERT_EQ(KindOf(rig.coordinator->HandleFrame(client.HelloFrame())),
            FrameKind::kHelloOk);
  const uint64_t trips_after_rehello = rig.coordinator->stats().shard_trips;

  // Same bytes, new epoch: a fresh fan-out (one trip per shard). The key
  // did not change, so the recomputed merge is still byte-identical.
  auto replay = rig.coordinator->HandleFrame(*request);
  EXPECT_EQ(replay, first);
  CoordinatorStats stats = rig.coordinator->stats();
  EXPECT_EQ(stats.shard_trips, trips_after_rehello + kShards);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST_F(ShardCoordinatorTest, EndpointValidatesEnvelopes) {
  EmbellishServerOptions options;
  options.shard_slice = 0;
  options.shard_slice_count = 2;
  EmbellishServer slice(&built_.index, &org_, nullptr, options);
  ShardEndpoint endpoint(&slice, /*shard_id=*/0);

  auto error_status = [](const std::vector<uint8_t>& response) {
    auto frame = DecodeFrame(response);
    EXPECT_TRUE(frame.ok());
    EXPECT_EQ(frame->kind, FrameKind::kError);
    Status transported;
    EXPECT_TRUE(DecodeError(frame->payload, &transported).ok());
    return transported;
  };

  // Ping: kShardResponse wrapping the slice's topology (monolithic from its
  // own point of view — the coordinator owns the global fan-out).
  auto ping = EncodeFrame(FrameKind::kShardRequest, 0,
                          EncodeShardEnvelope(0, 5, 1, {}));
  auto ping_resp = DecodeFrame(endpoint.HandleFrame(ping));
  ASSERT_TRUE(ping_resp.ok());
  ASSERT_EQ(ping_resp->kind, FrameKind::kShardResponse);
  auto envelope = DecodeShardEnvelope(ping_resp->payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->shard_id, 0u);
  EXPECT_EQ(envelope->epoch, 5u);
  EXPECT_EQ(envelope->seq, 1u);
  auto inner = DecodeFrame(envelope->inner);
  ASSERT_TRUE(inner.ok());
  ASSERT_EQ(inner->kind, FrameKind::kHelloOk);
  auto topology = DecodeHelloOk(inner->payload);
  ASSERT_TRUE(topology.ok());
  EXPECT_EQ(topology->shard_count, 1u);
  EXPECT_EQ(topology->bucket_count, org_.bucket_count());

  // A bare (non-envelope) request frame is refused.
  auto bare = EncodeFrame(FrameKind::kTopKQuery, 3, EncodeTopKQuery(5, {1}));
  EXPECT_TRUE(error_status(endpoint.HandleFrame(bare)).IsInvalidArgument());

  // A misrouted envelope is refused.
  auto misrouted = EncodeFrame(FrameKind::kShardRequest, 0,
                               EncodeShardEnvelope(1, 5, 2, {}));
  EXPECT_TRUE(
      error_status(endpoint.HandleFrame(misrouted)).IsFailedPrecondition());

  // Epoch fencing: once epoch 5 has been seen, a lower epoch is refused and
  // a higher one is adopted.
  auto stale = EncodeFrame(FrameKind::kShardRequest, 0,
                           EncodeShardEnvelope(0, 4, 3, {}));
  EXPECT_TRUE(
      error_status(endpoint.HandleFrame(stale)).IsFailedPrecondition());
  auto newer = EncodeFrame(FrameKind::kShardRequest, 0,
                           EncodeShardEnvelope(0, 6, 4, {}));
  EXPECT_EQ(KindOf(endpoint.HandleFrame(newer)), FrameKind::kShardResponse);
  auto now_stale = EncodeFrame(FrameKind::kShardRequest, 0,
                               EncodeShardEnvelope(0, 5, 5, {}));
  EXPECT_TRUE(
      error_status(endpoint.HandleFrame(now_stale)).IsFailedPrecondition());
}

TEST_F(ShardCoordinatorTest, SupersededCoordinatorIsFencedOut) {
  Rig rig = MakeRig(2);
  std::vector<ShardTransport*> raw;
  for (auto& t : rig.transports) raw.push_back(t.get());

  ShardCoordinatorOptions new_options;
  new_options.epoch = 7;  // the replacement announces a higher epoch
  ShardCoordinator replacement(raw, new_options);

  SessionClient client = MakeClient(40, 540);
  // Old coordinator (epoch 1) works until the replacement handshakes.
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(client.HelloFrame())),
            FrameKind::kHelloOk);
  EXPECT_EQ(KindOf(replacement.HandleFrame(client.HelloFrame())),
            FrameKind::kHelloOk);
  // Now the superseded coordinator's envelopes are refused by the shards
  // and surface as typed errors, never hangs or silent merges.
  auto request = client.QueryFrame(SomeTerms(4, 9));
  ASSERT_TRUE(request.ok());
  auto old_resp = rig.coordinator->HandleFrame(*request);
  auto frame = DecodeFrame(old_resp);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->kind, FrameKind::kError);
  Status transported;
  ASSERT_TRUE(DecodeError(frame->payload, &transported).ok());
  EXPECT_TRUE(transported.IsUnavailable());
  // The live coordinator is unaffected.
  EXPECT_EQ(KindOf(replacement.HandleFrame(*request)), FrameKind::kResult);
}

TEST_F(ShardCoordinatorTest, IdleSessionSweepBoundsCoordinatorKeyMemory) {
  // The coordinator mirrors the server's idle expiry: a registration storm
  // of throwaway ids cannot pin keys or lock genuine new sessions out
  // forever at the coordination tier either.
  ShardCoordinatorOptions copts;
  copts.max_sessions = 2;
  copts.session_idle_frames = 4;
  Rig rig = MakeRig(2, copts);

  SessionClient a = MakeClient(50, 550);
  SessionClient b = MakeClient(51, 551);
  SessionClient late = MakeClient(52, 552);
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(a.HelloFrame())),
            FrameKind::kHelloOk);
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(b.HelloFrame())),
            FrameKind::kHelloOk);
  // Full, nothing idle: refused.
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(late.HelloFrame())),
            FrameKind::kError);
  EXPECT_EQ(rig.coordinator->session_count(), 2u);

  // Keep session 50 active (top-k frames count as activity) while 51 idles
  // past the horizon.
  for (size_t i = 0; i < 8; ++i) {
    rig.coordinator->HandleFrame(
        EncodeFrame(FrameKind::kTopKQuery, 50, EncodeTopKQuery(3, {1})));
  }
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(late.HelloFrame())),
            FrameKind::kHelloOk);
  EXPECT_LE(rig.coordinator->session_count(), 2u);
  EXPECT_EQ(rig.coordinator->stats().sessions_expired, 1u);

  // The active session's key survived: its PR query still answers.
  auto request = a.QueryFrame(SomeTerms(5, 17));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(*request)),
            FrameKind::kResult);
}

TEST_F(ShardCoordinatorTest, SelfHealsAShardThatLostTheSession) {
  // A shard can lose a session it once acknowledged — process restart, or
  // its own idle sweep firing while the session's traffic never touched
  // it. The coordinator must not fail that session's queries forever: on a
  // shard's "session has not sent a hello frame" answer it re-registers
  // the session from its own key table and retries once, transparently.
  EmbellishServerOptions slice_base;
  slice_base.max_sessions = 1;
  slice_base.session_idle_frames = 1;  // aggressively forgetful shards
  Rig rig = MakeRig(2, {}, slice_base);

  SessionClient a = MakeClient(60, 560);
  SessionClient b = MakeClient(61, 561);
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(a.HelloFrame())),
            FrameKind::kHelloOk);
  // Traffic that does not touch session 60 advances the slices' clocks...
  for (size_t i = 0; i < 2; ++i) {
    rig.coordinator->HandleFrame(
        EncodeFrame(FrameKind::kTopKQuery, 0, EncodeTopKQuery(3, {1})));
  }
  // ...so b's hello sweeps 60 out of every slice's (capacity-1) table.
  EXPECT_EQ(KindOf(rig.coordinator->HandleFrame(b.HelloFrame())),
            FrameKind::kHelloOk);
  EXPECT_GT(rig.slices[0]->stats().sessions_expired, 0u);

  // Session 60's query still answers — bit-identical to the monolithic
  // server — because the coordinator repaired the registration in-flight.
  EmbellishServer mono(&built_.index, &org_, nullptr);
  mono.HandleFrame(a.HelloFrame());
  auto request = a.QueryFrame(SomeTerms(8, 21));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(rig.coordinator->HandleFrame(*request),
            mono.HandleFrame(*request));
  EXPECT_EQ(rig.coordinator->stats().queries, 1u);
}

TEST_F(ShardCoordinatorTest, TcpTransportOverLoopback) {
  constexpr size_t kShards = 2;
  std::vector<std::unique_ptr<EmbellishServer>> slices;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints;
  std::vector<int> listen_fds;
  std::vector<uint16_t> ports;
  std::vector<std::thread> serve_threads;
  for (size_t s = 0; s < kShards; ++s) {
    EmbellishServerOptions options;
    options.shard_slice = s;
    options.shard_slice_count = kShards;
    slices.push_back(std::make_unique<EmbellishServer>(&built_.index, &org_,
                                                       nullptr, options));
    endpoints.push_back(
        std::make_unique<ShardEndpoint>(slices.back().get(), s));
    uint16_t port = 0;
    auto fd = ListenOnLoopback(&port);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    listen_fds.push_back(*fd);
    ports.push_back(port);
    serve_threads.emplace_back(
        [fd = *fd, endpoint = endpoints.back().get()] {
          (void)ServeShardConnections(fd, endpoint);
        });
  }

  {
    std::vector<std::unique_ptr<TcpTransport>> transports;
    std::vector<ShardTransport*> raw;
    for (size_t s = 0; s < kShards; ++s) {
      auto transport = TcpTransport::Connect("127.0.0.1", ports[s]);
      ASSERT_TRUE(transport.ok()) << transport.status().ToString();
      transports.push_back(std::move(*transport));
      raw.push_back(transports.back().get());
    }
    ShardCoordinator coordinator(raw);
    ASSERT_TRUE(coordinator.Handshake().ok());

    EmbellishServer mono(&built_.index, &org_, nullptr);
    SessionClient client = MakeClient(9, 509);
    mono.HandleFrame(client.HelloFrame());
    EXPECT_EQ(KindOf(coordinator.HandleFrame(client.HelloFrame())),
              FrameKind::kHelloOk);
    auto request = client.QueryFrame(SomeTerms(6, 13));
    ASSERT_TRUE(request.ok());
    // The same bytes as the monolithic server — across a real socket.
    EXPECT_EQ(coordinator.HandleFrame(*request), mono.HandleFrame(*request));

    auto topk = EncodeFrame(FrameKind::kTopKQuery, 9,
                            EncodeTopKQuery(8, SomeTerms(6, 13)));
    EXPECT_EQ(coordinator.HandleFrame(topk), mono.HandleFrame(topk));
  }

  for (int fd : listen_fds) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  for (auto& t : serve_threads) t.join();
}

// Thin adapters over the shared io_util helpers (the bounded socket loops
// used to live here as a third hand-rolled copy).
namespace tcp_testutil {

// Reads one full frame (header + payload) off `fd`; empty on disconnect.
std::vector<uint8_t> ReadOneFrame(int fd) {
  auto frame = ReadFrameFd(fd, kMaxTransportFrameBytes);
  return frame.ok() ? *std::move(frame) : std::vector<uint8_t>{};
}

bool WriteAllFd(int fd, const std::vector<uint8_t>& bytes) {
  return WriteAll(fd, bytes.data(), bytes.size()).ok();
}

}  // namespace tcp_testutil

TEST_F(ShardCoordinatorTest, StalePooledConnectionReconnectsAndResends) {
  // The peer-restarted-between-requests scenario: the first server
  // connection serves exactly one frame and then closes, leaving a dead
  // socket pooled in the TcpTransport. The next round trip must absorb
  // that with one transparent reconnect-and-resend — no error surfaces,
  // and the response still echoes the request's own seq.
  EmbellishServerOptions options;
  options.shard_slice = 0;
  options.shard_slice_count = 1;
  EmbellishServer server(&built_.index, &org_, nullptr, options);
  ShardEndpoint endpoint(&server, 0);

  uint16_t port = 0;
  auto listen_fd = ListenOnLoopback(&port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
  std::thread serve([fd = *listen_fd, &endpoint] {
    for (int conn_index = 0;; ++conn_index) {
      int conn = accept(fd, nullptr, nullptr);
      if (conn < 0) return;
      for (;;) {
        std::vector<uint8_t> request = tcp_testutil::ReadOneFrame(conn);
        if (request.empty()) break;
        if (!tcp_testutil::WriteAllFd(conn, endpoint.HandleFrame(request))) {
          break;
        }
        if (conn_index == 0) break;  // first connection dies after one frame
      }
      close(conn);
    }
  });

  {
    auto transport = TcpTransport::Connect("127.0.0.1", port);
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();

    auto ping = [&](uint64_t seq) {
      return EncodeFrame(FrameKind::kShardRequest, 0,
                         EncodeShardEnvelope(0, /*epoch=*/1, seq, {}));
    };
    auto require_pong = [&](Result<std::vector<uint8_t>> response,
                            uint64_t seq) {
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      auto outer = DecodeFrame(*response);
      ASSERT_TRUE(outer.ok());
      ASSERT_EQ(outer->kind, FrameKind::kShardResponse);
      auto envelope = DecodeShardEnvelope(outer->payload);
      ASSERT_TRUE(envelope.ok());
      EXPECT_EQ(envelope->seq, seq);
    };

    require_pong((*transport)->RoundTrip(ping(1)), 1);
    // The server closed the connection after that response; this round trip
    // finds the stale pooled socket, reconnects, resends, and succeeds.
    require_pong((*transport)->RoundTrip(ping(2)), 2);
    // The fresh connection keeps serving normally.
    require_pong((*transport)->RoundTrip(ping(3)), 3);
  }

  shutdown(*listen_fd, SHUT_RDWR);
  close(*listen_fd);
  serve.join();
}

TEST_F(ShardCoordinatorTest, ConnectToDeadPortFailsTyped) {
  // Grab a port, then close it so nothing listens there.
  uint16_t port = 0;
  auto fd = ListenOnLoopback(&port);
  ASSERT_TRUE(fd.ok());
  close(*fd);
  auto transport = TcpTransport::Connect("127.0.0.1", port);
  ASSERT_FALSE(transport.ok());
  EXPECT_TRUE(transport.status().IsUnavailable());
}

}  // namespace
}  // namespace embellish::server
