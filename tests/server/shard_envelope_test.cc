// Round-trip and hostile-input fuzz for the shard-scoped request envelope
// and the plaintext top-k payload codecs, mirroring the PR 2 framing fuzz
// style: every truncation, tampered length, trailing byte and reserved
// sentinel must come back as Status::Corruption — never crash, never decode
// into something plausible — and because envelopes ride inside checksummed
// frames, every single-bit flip of a full kShardRequest frame is rejected.

#include "server/framing.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace embellish::server {
namespace {

std::vector<uint8_t> SomePayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (uint8_t& b : out) b = static_cast<uint8_t>(rng.Uniform(256));
  return out;
}

// --- Shard envelope ---------------------------------------------------------

TEST(ShardEnvelopeTest, RoundTrip) {
  std::vector<uint8_t> inner =
      EncodeFrame(FrameKind::kQuery, 77, SomePayload(41, 1));
  auto payload = EncodeShardEnvelope(5, 0xAABBCCDD00112233ull, 42, inner);
  auto decoded = DecodeShardEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard_id, 5u);
  EXPECT_EQ(decoded->epoch, 0xAABBCCDD00112233ull);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->inner, inner);
}

TEST(ShardEnvelopeTest, RoundTripsEmptyInnerAsPing) {
  auto payload = EncodeShardEnvelope(0, 1, 0, {});
  auto decoded = DecodeShardEnvelope(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->inner.empty());
}

TEST(ShardEnvelopeTest, RejectsEveryTruncation) {
  auto payload = EncodeShardEnvelope(3, 9, 11, SomePayload(32, 2));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + static_cast<long>(cut));
    auto decoded = DecodeShardEnvelope(truncated);
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(ShardEnvelopeTest, RejectsTrailingGarbage) {
  auto payload = EncodeShardEnvelope(3, 9, 11, SomePayload(16, 3));
  for (size_t extra : {1u, 5u, 512u}) {
    std::vector<uint8_t> oversized = payload;
    oversized.insert(oversized.end(), extra, 0xCD);
    auto decoded = DecodeShardEnvelope(oversized);
    ASSERT_FALSE(decoded.ok()) << "extra=" << extra;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(ShardEnvelopeTest, RejectsTamperedInnerSize) {
  // The explicit inner_size (bytes 20..24 of the payload) must agree with
  // the bytes actually present, in both directions.
  auto payload = EncodeShardEnvelope(1, 2, 3, SomePayload(24, 4));
  for (uint8_t hostile : {0x00, 0x01, 0x7F, 0xFF}) {
    std::vector<uint8_t> tampered = payload;
    tampered[20] = hostile;
    tampered[21] = hostile;
    tampered[22] = hostile;
    tampered[23] = hostile;
    auto decoded = DecodeShardEnvelope(tampered);
    ASSERT_FALSE(decoded.ok()) << "hostile=" << int(hostile);
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(ShardEnvelopeTest, OversizedShardIdSaturatesAndIsRejected) {
  // Like EncodePirQuery's bucket field: a shard id beyond the u32 wire
  // width saturates to the reserved sentinel, which the decoder refuses —
  // an overflowed id can never alias shard (id mod 2^32).
  for (size_t huge : {static_cast<size_t>(UINT32_MAX),
                      static_cast<size_t>(UINT32_MAX) + 1, SIZE_MAX}) {
    auto payload = EncodeShardEnvelope(huge, 1, 2, {});
    EXPECT_EQ(payload[0], 0xFF);
    EXPECT_EQ(payload[1], 0xFF);
    EXPECT_EQ(payload[2], 0xFF);
    EXPECT_EQ(payload[3], 0xFF);
    auto decoded = DecodeShardEnvelope(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
  // The largest encodable id still round-trips.
  auto payload = EncodeShardEnvelope(UINT32_MAX - 1, 1, 2, {});
  auto decoded = DecodeShardEnvelope(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard_id, static_cast<size_t>(UINT32_MAX) - 1);
}

TEST(ShardEnvelopeTest, FramedEnvelopeRejectsEverySingleBitFlip) {
  // An envelope travels inside a checksummed frame, so any one flipped bit
  // anywhere — header, envelope fields, or inner frame — must surface as
  // Corruption at the frame layer before the envelope is even parsed.
  std::vector<uint8_t> inner =
      EncodeFrame(FrameKind::kPirQuery, 4, SomePayload(20, 5));
  auto frame = EncodeFrame(FrameKind::kShardRequest, 0,
                           EncodeShardEnvelope(2, 7, 13, inner));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = frame;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      auto decoded = DecodeFrame(flipped);
      ASSERT_FALSE(decoded.ok()) << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(decoded.status().IsCorruption());
    }
  }
}

// --- Top-k payloads ---------------------------------------------------------

TEST(TopKCodecTest, QueryRoundTrip) {
  std::vector<wordnet::TermId> terms{3, 99, 1234567, 0};
  auto payload = EncodeTopKQuery(17, terms);
  auto decoded = DecodeTopKQuery(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->k, 17u);
  EXPECT_EQ(decoded->terms, terms);
}

TEST(TopKCodecTest, QueryRejectsHostileCountAndTruncation) {
  auto payload = EncodeTopKQuery(5, {1, 2, 3});
  // Hostile term count must be bounded by the bytes present before any
  // size arithmetic.
  std::vector<uint8_t> tampered = payload;
  tampered[4] = 0xFF;
  tampered[5] = 0xFF;
  tampered[6] = 0xFF;
  tampered[7] = 0xFF;
  EXPECT_TRUE(DecodeTopKQuery(tampered).status().IsCorruption());
  // Every truncation leaves the declared term count inconsistent with the
  // bytes present, so every one is Corruption.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + static_cast<long>(cut));
    auto decoded = DecodeTopKQuery(truncated);
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsCorruption()) << "cut=" << cut;
  }
  std::vector<uint8_t> oversized = payload;
  oversized.push_back(0);
  EXPECT_TRUE(DecodeTopKQuery(oversized).status().IsCorruption());
}

TEST(TopKCodecTest, ResultRoundTrip) {
  std::vector<index::ScoredDoc> docs{{7, 900}, {3, 900}, {99, 5}};
  auto payload = EncodeTopKResult(docs);
  auto decoded = DecodeTopKResult(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, docs);
}

TEST(TopKCodecTest, ResultRejectsHostileCountTruncationAndGarbage) {
  std::vector<index::ScoredDoc> docs{{1, 2}, {3, 4}};
  auto payload = EncodeTopKResult(docs);
  std::vector<uint8_t> tampered = payload;
  tampered[0] = 0xFF;
  tampered[1] = 0xFF;
  tampered[2] = 0xFF;
  tampered[3] = 0xFF;
  EXPECT_TRUE(DecodeTopKResult(tampered).status().IsCorruption());
  std::vector<uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_TRUE(DecodeTopKResult(truncated).status().IsCorruption());
  std::vector<uint8_t> oversized = payload;
  oversized.push_back(0);
  EXPECT_TRUE(DecodeTopKResult(oversized).status().IsCorruption());
}

TEST(TopKCodecTest, UnavailableStatusSurvivesErrorTransport) {
  // The coordinator's typed shard-failure answers ride the standard error
  // payload; the new code must round-trip like every other.
  Status original = Status::Unavailable("shard 3 transport: timed out");
  auto payload = EncodeError(original);
  Status transported;
  ASSERT_TRUE(DecodeError(payload, &transported).ok());
  EXPECT_TRUE(transported.IsUnavailable());
  EXPECT_EQ(transported, original);
}

}  // namespace
}  // namespace embellish::server
