// The async stack end to end: ShardCoordinator fanning out over
// MultiplexedTransports (one non-blocking socket per shard, all on one
// EventLoop) and serving clients through the AsyncFrontEnd. Three claims:
//
//   1. Every PR / PIR / top-k response is byte-identical to the monolithic
//      and in-process sharded servers at 1/2/4/8 shards — through the
//      multiplexed fan-out AND through the async front end on top.
//   2. With multiplexed transports, no executor worker ever parks on
//      transport I/O: stats().blocking_io_trips stays 0.
//   3. The PR 4 fault storm and the PR 6 replicated kill storm hold
//      unchanged when their transports are multiplexed: every answer is
//      clean bytes, a well-formed degraded partial, or a typed error.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "core/wire_format.h"
#include "index/builder.h"
#include "server/async_frontend.h"
#include "server/event_loop.h"
#include "server/io_util.h"
#include "server/multiplexed_transport.h"
#include "server/session_client.h"
#include "server/shard_coordinator.h"
#include "testutil.h"

namespace embellish::server {
namespace {

// A TCP slice-server fleet: one listener + blocking serve thread per shard.
class ShardFleet {
 public:
  ~ShardFleet() { Stop(); }

  uint16_t Add(ShardEndpoint* endpoint) {
    uint16_t port = 0;
    auto listen_fd = ListenOnLoopback(&port);
    EXPECT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
    listen_fds_.push_back(*listen_fd);
    threads_.emplace_back([fd = *listen_fd, endpoint] {
      (void)ServeShardConnections(fd, endpoint);
    });
    return port;
  }

  // Call only after every transport into the fleet has been destroyed
  // (the serve loops return to accept() once their connection closes).
  void Stop() {
    for (int fd : listen_fds_) {
      shutdown(fd, SHUT_RDWR);
      close(fd);
    }
    listen_fds_.clear();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

 private:
  std::vector<int> listen_fds_;
  std::vector<std::thread> threads_;
};

// A blocking framed client for the front-end side.
class WireClient {
 public:
  explicit WireClient(uint16_t port) {
    auto fd = ConnectWithDeadline("127.0.0.1", port, 5000);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    fd_ = fd.ok() ? *fd : -1;
    if (fd_ >= 0) EXPECT_TRUE(SetBlocking(fd_).ok());
  }
  ~WireClient() {
    if (fd_ >= 0) close(fd_);
  }

  std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& request) {
    EXPECT_TRUE(WriteAll(fd_, request.data(), request.size(),
                         DeadlineFromNow(10000))
                    .ok());
    auto response =
        ReadFrameFd(fd_, kMaxTransportFrameBytes, DeadlineFromNow(30000));
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *std::move(response) : std::vector<uint8_t>{};
  }

 private:
  int fd_ = -1;
};

// KillableTransport that keeps the inner transport's async capability, so
// the PR 6 kill storm runs on the submit-and-await fan-out path.
class AsyncKillableTransport : public ShardTransport {
 public:
  explicit AsyncKillableTransport(ShardTransport* inner) : inner_(inner) {}

  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override {
    if (dead_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("replica killed");
    }
    return inner_->RoundTrip(request);
  }

  bool SupportsAsyncSubmit() const override {
    return inner_->SupportsAsyncSubmit();
  }

  void SubmitRoundTrip(const std::vector<uint8_t>& request,
                       RoundTripCompletion done) override {
    if (dead_.load(std::memory_order_relaxed)) {
      done(Status::Unavailable("replica killed"));
      return;
    }
    inner_->SubmitRoundTrip(request, std::move(done));
  }

  void Kill() { dead_.store(true, std::memory_order_relaxed); }

 private:
  ShardTransport* inner_;  // not owned
  std::atomic<bool> dead_{false};
};

class AsyncStackTest : public ::testing::Test {
 protected:
  AsyncStackTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 211)),
        corp_(testutil::SmallCorpus(lex_, 150, 212)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {}

  void SetUp() override {
    auto loop = EventLoop::Create();
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    loop_ = std::move(*loop);
    ASSERT_TRUE(loop_->Start().ok());
  }

  void TearDown() override { loop_->Stop(); }

  // `slices[s]`, `endpoints[s]` for an N-way document partition.
  void MakeSlices(size_t shards,
                  std::vector<std::unique_ptr<EmbellishServer>>* slices,
                  std::vector<std::unique_ptr<ShardEndpoint>>* endpoints) {
    for (size_t s = 0; s < shards; ++s) {
      EmbellishServerOptions options;
      options.shard_slice = s;
      options.shard_slice_count = shards;
      slices->push_back(std::make_unique<EmbellishServer>(&built_.index,
                                                          &org_, nullptr,
                                                          options));
      endpoints->push_back(
          std::make_unique<ShardEndpoint>(slices->back().get(), s));
    }
  }

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  static Status RequireTypedError(const std::vector<uint8_t>& response) {
    auto frame = DecodeFrame(response);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return Status::Internal("undecodable response");
    EXPECT_EQ(frame->kind, FrameKind::kError);
    Status transported;
    EXPECT_TRUE(DecodeError(frame->payload, &transported).ok());
    EXPECT_FALSE(transported.ok());
    return transported;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
  std::unique_ptr<EventLoop> loop_;
};

TEST_F(AsyncStackTest, BitIdenticalThroughMuxAndFrontEndAtAllShardCounts) {
  EmbellishServer mono(&built_.index, &org_, nullptr);
  SessionClient client = MakeClient(1, 701);
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());
  auto topk = EncodeFrame(FrameKind::kTopKQuery, 1,
                          EncodeTopKQuery(10, SomeTerms(3, 71)));

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[29]);
  ASSERT_TRUE(slot.ok());
  Rng rng(711);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto pir_query = pir_client.BuildQuery(
      slot->slot, org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(pir_query.ok());

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EmbellishServerOptions shard_options;
    shard_options.shard_count = shards;
    EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);

    std::vector<std::unique_ptr<EmbellishServer>> slices;
    std::vector<std::unique_ptr<ShardEndpoint>> endpoints;
    MakeSlices(shards, &slices, &endpoints);
    ShardFleet fleet;

    {
      std::vector<std::unique_ptr<MultiplexedTransport>> muxes;
      std::vector<ShardTransport*> raw;
      for (size_t s = 0; s < shards; ++s) {
        uint16_t port = fleet.Add(endpoints[s].get());
        auto mux = MultiplexedTransport::Connect("127.0.0.1", port,
                                                 loop_.get());
        ASSERT_TRUE(mux.ok()) << mux.status().ToString();
        muxes.push_back(std::move(*mux));
        raw.push_back(muxes.back().get());
      }
      ShardCoordinator coordinator(raw);
      ASSERT_TRUE(coordinator.Handshake().ok());

      // Direct HandleFrame through the multiplexed fan-out.
      mono.HandleFrame(client.HelloFrame());
      EXPECT_EQ(coordinator.HandleFrame(client.HelloFrame()),
                sharded.HandleFrame(client.HelloFrame()));
      EXPECT_EQ(coordinator.HandleFrame(*request), mono.HandleFrame(*request));
      EXPECT_EQ(coordinator.HandleFrame(topk), mono.HandleFrame(topk));
      for (size_t shard = 0; shard < shards; ++shard) {
        auto pir_request = EncodeFrame(
            FrameKind::kPirQuery, 1,
            EncodePirQuery(coordinator.PirBucketField(shard, slot->bucket),
                           *pir_query));
        EXPECT_EQ(coordinator.HandleFrame(pir_request),
                  sharded.HandleFrame(pir_request))
            << "shard " << shard;
      }

      // And the same bytes once more through the async front end: client
      // socket -> event loop -> dispatcher -> multiplexed fan-out.
      uint16_t front_port = 0;
      auto front_listen = ListenOnLoopback(&front_port);
      ASSERT_TRUE(front_listen.ok());
      auto front_end = coordinator.ServeAsync(*front_listen, loop_.get());
      ASSERT_TRUE(front_end.ok()) << front_end.status().ToString();
      {
        WireClient wire(front_port);
        // The hello advertises the topology, so it matches the sharded
        // server (not the monolithic one); query bytes match both.
        EXPECT_EQ(wire.RoundTrip(client.HelloFrame()),
                  sharded.HandleFrame(client.HelloFrame()));
        EXPECT_EQ(wire.RoundTrip(*request), mono.HandleFrame(*request));
        EXPECT_EQ(wire.RoundTrip(topk), mono.HandleFrame(topk));
      }
      (*front_end)->Shutdown();

      // The acceptance invariant: with every transport multiplexed, no
      // executor worker ever parked on blocking transport I/O.
      CoordinatorStats stats = coordinator.stats();
      EXPECT_EQ(stats.blocking_io_trips, 0u);
      EXPECT_GT(stats.async_io_trips, 0u);
      EXPECT_EQ(stats.errors, 0u);
    }
    fleet.Stop();
  }
}

TEST_F(AsyncStackTest, FaultStormOverMultiplexedTransportsStaysSound) {
  // The PR 4 seeded fault storm, transports swapped for
  // FaultyTransport(MultiplexedTransport): ~35% of round trips are
  // dropped / truncated / bit-flipped / reordered / delayed ABOVE the
  // correlation layer, across a mixed PR / PIR / top-k workload. Every
  // response must be bit-identical to the in-process reference or a typed
  // error — the mux must never let a fault turn into a wrong merge.
  constexpr size_t kShards = 3;
  EmbellishServerOptions ref_options;
  ref_options.shard_count = kShards;
  EmbellishServer reference(&built_.index, &org_, nullptr, ref_options);

  std::vector<std::unique_ptr<EmbellishServer>> slices;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints;
  MakeSlices(kShards, &slices, &endpoints);
  ShardFleet fleet;

  {
    std::vector<std::unique_ptr<MultiplexedTransport>> muxes;
    std::vector<std::unique_ptr<FaultyTransport>> faulty;
    std::vector<ShardTransport*> raw;
    for (size_t s = 0; s < kShards; ++s) {
      uint16_t port = fleet.Add(endpoints[s].get());
      auto mux =
          MultiplexedTransport::Connect("127.0.0.1", port, loop_.get());
      ASSERT_TRUE(mux.ok()) << mux.status().ToString();
      muxes.push_back(std::move(*mux));
      FaultyTransportOptions fo;
      fo.fault_rate = 0.35;
      fo.seed = 977 + s;
      fo.delay_ms = 1;
      faulty.push_back(
          std::make_unique<FaultyTransport>(muxes.back().get(), fo));
      raw.push_back(faulty.back().get());
    }
    ShardCoordinator coordinator(raw);

    SessionClient client = MakeClient(4, 704);
    reference.HandleFrame(client.HelloFrame());
    bool registered = false;
    for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
      auto frame = DecodeFrame(coordinator.HandleFrame(client.HelloFrame()));
      ASSERT_TRUE(frame.ok());
      registered = frame->kind == FrameKind::kHelloOk;
      if (!registered) ASSERT_EQ(frame->kind, FrameKind::kError);
    }
    ASSERT_TRUE(registered);

    auto terms = built_.index.IndexedTerms();
    auto slot = org_.Locate(terms[17]);
    ASSERT_TRUE(slot.ok());
    Rng rng(712);
    crypto::PirClient pir_client =
        std::move(crypto::PirClient::Create(256, &rng)).value();
    auto pir_query = pir_client.BuildQuery(
        slot->slot, org_.bucket(slot->bucket).size(), &rng);
    ASSERT_TRUE(pir_query.ok());

    size_t clean = 0, errored = 0;
    for (size_t round = 0; round < 10; ++round) {
      auto pr_request = client.QueryFrame(SomeTerms(2, 4));
      ASSERT_TRUE(pr_request.ok());
      std::vector<std::vector<uint8_t>> requests{
          *pr_request,
          EncodeFrame(FrameKind::kPirQuery, 4,
                      EncodePirQuery(coordinator.PirBucketField(
                                         round % kShards, slot->bucket),
                                     *pir_query)),
          EncodeFrame(FrameKind::kTopKQuery, 4,
                      EncodeTopKQuery(10, SomeTerms(2, 4)))};
      for (const auto& request : requests) {
        auto response = coordinator.HandleFrame(request);
        if (response == reference.HandleFrame(request)) {
          ++clean;
        } else {
          Status error = RequireTypedError(response);
          EXPECT_FALSE(error.ok());
          ++errored;
        }
      }
    }
    EXPECT_GT(clean, 0u);
    EXPECT_GT(errored, 0u);
    size_t injected = 0;
    for (const auto& f : faulty) injected += f->faults_injected();
    EXPECT_GT(injected, 0u);
    EXPECT_EQ(coordinator.stats().blocking_io_trips, 0u);
  }
  fleet.Stop();
}

TEST_F(AsyncStackTest, ReplicatedKillStormOverMultiplexedTransportsStaysSound) {
  // The PR 6 replicated storm on the submit-and-await fan-out: two
  // multiplexed replicas per slice, seeded faults on both, hedging armed,
  // failover on, degraded mode opted in — and halfway through, replica 0 of
  // every slice is killed. Every answer must be clean bytes, a well-formed
  // degraded partial, or a typed error.
  constexpr size_t kShards = 3;
  EmbellishServerOptions ref_options;
  ref_options.shard_count = kShards;
  EmbellishServer reference(&built_.index, &org_, nullptr, ref_options);

  std::vector<std::unique_ptr<EmbellishServer>> slices1, slices2;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints1, endpoints2;
  MakeSlices(kShards, &slices1, &endpoints1);
  MakeSlices(kShards, &slices2, &endpoints2);
  ShardFleet fleet;

  {
    std::vector<std::unique_ptr<MultiplexedTransport>> muxes;
    std::vector<std::unique_ptr<FaultyTransport>> faulty;
    std::vector<std::unique_ptr<AsyncKillableTransport>> killable;
    std::vector<std::vector<ShardTransport*>> groups(kShards);
    for (size_t s = 0; s < kShards; ++s) {
      for (int replica = 0; replica < 2; ++replica) {
        ShardEndpoint* endpoint =
            replica == 0 ? endpoints1[s].get() : endpoints2[s].get();
        uint16_t port = fleet.Add(endpoint);
        auto mux =
            MultiplexedTransport::Connect("127.0.0.1", port, loop_.get());
        ASSERT_TRUE(mux.ok()) << mux.status().ToString();
        muxes.push_back(std::move(*mux));
        FaultyTransportOptions fo;
        fo.fault_rate = 0.35;
        fo.delay_ms = 1;
        fo.seed = (replica == 0 ? 8000 : 9000) + s;
        faulty.push_back(
            std::make_unique<FaultyTransport>(muxes.back().get(), fo));
        if (replica == 0) {
          killable.push_back(
              std::make_unique<AsyncKillableTransport>(faulty.back().get()));
          groups[s].push_back(killable.back().get());
        } else {
          groups[s].push_back(faulty.back().get());
        }
      }
    }

    ShardCoordinatorOptions options;
    options.max_attempts = 2;
    options.hedge_delay_ms = 0;
    options.allow_partial_results = true;
    ShardCoordinator coordinator(groups, options);

    SessionClient client = MakeClient(9, 709);
    reference.HandleFrame(client.HelloFrame());
    bool registered = false;
    for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
      auto frame = DecodeFrame(coordinator.HandleFrame(client.HelloFrame()));
      ASSERT_TRUE(frame.ok());
      registered = frame->kind == FrameKind::kHelloOk;
      if (!registered) ASSERT_EQ(frame->kind, FrameKind::kError);
    }
    ASSERT_TRUE(registered);

    auto terms = built_.index.IndexedTerms();
    auto slot = org_.Locate(terms[17]);
    ASSERT_TRUE(slot.ok());
    Rng rng(713);
    crypto::PirClient pir_client =
        std::move(crypto::PirClient::Create(256, &rng)).value();
    auto pir_query = pir_client.BuildQuery(
        slot->slot, org_.bucket(slot->bucket).size(), &rng);
    ASSERT_TRUE(pir_query.ok());

    size_t clean = 0, degraded = 0, errored = 0;
    for (size_t round = 0; round < 10; ++round) {
      if (round == 5) {
        for (auto& k : killable) k->Kill();
      }
      auto pr_request = client.QueryFrame(SomeTerms(2, 4));
      ASSERT_TRUE(pr_request.ok());
      std::vector<std::vector<uint8_t>> requests{
          *pr_request,
          EncodeFrame(FrameKind::kPirQuery, 9,
                      EncodePirQuery(coordinator.PirBucketField(
                                         round % kShards, slot->bucket),
                                     *pir_query)),
          EncodeFrame(FrameKind::kTopKQuery, 9,
                      EncodeTopKQuery(10, SomeTerms(2, 4)))};
      for (const auto& request : requests) {
        const std::vector<uint8_t> ref = reference.HandleFrame(request);
        const std::vector<uint8_t> response =
            coordinator.HandleFrame(request);
        if (response == ref) {
          ++clean;
          continue;
        }
        auto frame = DecodeFrame(response);
        ASSERT_TRUE(frame.ok()) << frame.status().ToString();
        if (frame->kind == FrameKind::kDegradedResult) {
          auto partial = DecodeDegradedResult(frame->payload);
          ASSERT_TRUE(partial.ok()) << partial.status().ToString();
          EXPECT_FALSE(partial->missing.empty());
          EXPECT_LT(partial->missing.back(), kShards);
          if (partial->inner_kind == FrameKind::kResult) {
            EXPECT_TRUE(core::DecodeResult(partial->inner_payload,
                                           client.public_key())
                            .ok());
          } else {
            ASSERT_EQ(partial->inner_kind, FrameKind::kTopKResult);
            EXPECT_TRUE(DecodeTopKResult(partial->inner_payload).ok());
          }
          ++degraded;
          continue;
        }
        Status error = RequireTypedError(response);
        EXPECT_FALSE(error.ok());
        ++errored;
      }
    }
    EXPECT_GT(clean, 0u);
    EXPECT_GT(degraded + errored, 0u);
    size_t injected = 0;
    for (const auto& f : faulty) injected += f->stats().total();
    EXPECT_GT(injected, 0u);
    EXPECT_EQ(coordinator.stats().blocking_io_trips, 0u);
    EXPECT_GT(coordinator.stats().async_io_trips, 0u);
  }
  fleet.Stop();
}

}  // namespace
}  // namespace embellish::server
