// Batch×shard composition under contention: many concurrent sessions
// batching queries into a sharded EmbellishServer whose batch fan-out,
// per-query shard fan-out and PIR row loops all share ONE work-stealing
// executor. Every response frame must be bit-identical to a serial
// monolithic server's — nested parallelism is allowed to change only the
// clock — at 1/2/4/8 shards, with concurrent HandleBatch callers hammering
// the same server. Runs under TSan in CI (the test name matches the
// thread-sanitize job's filter).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "index/builder.h"
#include "server/embellish_server.h"
#include "server/session_client.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class EmbellishServerContendedTest : public ::testing::Test {
 protected:
  EmbellishServerContendedTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 331)),
        corp_(testutil::SmallCorpus(lex_, 150, 332)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {}

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
};

TEST_F(EmbellishServerContendedTest,
       BatchShardCompositionBitIdenticalAtEveryShardCount) {
  constexpr size_t kSessions = 4;
  constexpr size_t kQueriesPerSession = 3;
  constexpr size_t kBatchCallers = 3;

  // Sessions and their uplink bytes, built once; the serial monolithic
  // server provides the reference bytes for every configuration.
  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> hellos;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.push_back(MakeClient(100 + s, 400 + s));
    hellos.push_back(clients.back().HelloFrame());
    for (size_t q = 0; q < kQueriesPerSession; ++q) {
      auto req = clients.back().QueryFrame(SomeTerms(3 * s + q, 11 * q + s));
      ASSERT_TRUE(req.ok()) << req.status().ToString();
      requests.push_back(std::move(*req));
      requests.push_back(EncodeFrame(
          FrameKind::kTopKQuery, 100 + s,
          EncodeTopKQuery(10, SomeTerms(3 * s + q, 11 * q + s))));
    }
  }

  EmbellishServerOptions base;
  base.cache_capacity = 0;  // force full evaluation on every request
  EmbellishServer mono(&built_.index, &org_, nullptr, base);
  for (const auto& hello : hellos) mono.HandleFrame(hello);
  std::vector<std::vector<uint8_t>> reference;
  reference.reserve(requests.size());
  for (const auto& request : requests) {
    reference.push_back(mono.HandleFrame(request));
  }

  ThreadPool pool(4);
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EmbellishServerOptions options = base;
    options.shard_count = shards;
    options.shard_threads = 2;  // capped nested fan-out, still parallel
    EmbellishServer server(&built_.index, &org_, nullptr, options, &pool);
    for (const auto& hello : hellos) server.HandleFrame(hello);

    // Several HandleBatch callers pound the server concurrently, each with
    // the full request stream: batch regions, nested shard regions and the
    // engines' own regions all contend for the one pool.
    std::vector<std::vector<std::vector<uint8_t>>> responses(kBatchCallers);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kBatchCallers; ++c) {
      callers.emplace_back(
          [&, c] { responses[c] = server.HandleBatch(requests); });
    }
    for (auto& t : callers) t.join();

    for (size_t c = 0; c < kBatchCallers; ++c) {
      ASSERT_EQ(responses[c].size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(responses[c][i], reference[i])
            << "caller " << c << " request " << i;
      }
    }
  }
}

TEST_F(EmbellishServerContendedTest, BatchedPirBitIdenticalUnderContention) {
  // The per-shard PIR mutex that used to serialize whole answer
  // computations is gone: PIR frames of one batch are answered in shared
  // per-shard sweeps, and requests addressing different shards (and
  // different callers' batches) compute concurrently. Under three
  // concurrent HandleBatch callers the bytes must still match the serial
  // HandleFrame path of an identically configured server, at 1/2/4/8
  // shards. Runs under TSan in CI.
  constexpr size_t kBatchCallers = 3;
  constexpr size_t kPirClients = 3;

  auto terms = built_.index.IndexedTerms();
  Rng rng(4242);
  // Distinct clients → distinct moduli: the shared sweep must keep every
  // query in its own Montgomery ring.
  std::vector<crypto::PirClient> pir_clients;
  for (size_t c = 0; c < kPirClients; ++c) {
    pir_clients.push_back(
        std::move(crypto::PirClient::Create(256, &rng)).value());
  }

  ThreadPool pool(4);
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EmbellishServerOptions options;
    options.cache_capacity = 0;  // every request recomputes
    options.shard_count = shards;
    options.shard_threads = 2;
    EmbellishServer server(&built_.index, &org_, nullptr, options, &pool);
    EmbellishServer serial(&built_.index, &org_, nullptr, options);

    // Each client asks for a couple of terms; on a sharded server every
    // (shard, bucket) pair is addressed so one batch mixes all shards.
    std::vector<std::vector<uint8_t>> requests;
    for (size_t c = 0; c < kPirClients; ++c) {
      for (size_t q = 0; q < 2; ++q) {
        auto slot = org_.Locate(terms[(13 * c + 7 * q + 5) % terms.size()]);
        ASSERT_TRUE(slot.ok());
        auto query = pir_clients[c].BuildQuery(
            slot->slot, org_.bucket(slot->bucket).size(), &rng);
        ASSERT_TRUE(query.ok());
        if (server.shard_count() > 1) {
          for (size_t shard = 0; shard < server.shard_count(); ++shard) {
            requests.push_back(EncodeFrame(
                FrameKind::kPirQuery, 100 + c,
                EncodePirQuery(server.PirBucketField(shard, slot->bucket),
                               *query)));
          }
        } else {
          requests.push_back(EncodeFrame(FrameKind::kPirQuery, 100 + c,
                                         EncodePirQuery(slot->bucket,
                                                        *query)));
        }
      }
    }

    std::vector<std::vector<uint8_t>> reference;
    reference.reserve(requests.size());
    for (const auto& request : requests) {
      reference.push_back(serial.HandleFrame(request));
      auto ref_frame = DecodeFrame(reference.back());
      ASSERT_TRUE(ref_frame.ok());
      ASSERT_EQ(ref_frame->kind, FrameKind::kPirResult);
    }

    std::vector<std::vector<std::vector<uint8_t>>> responses(kBatchCallers);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kBatchCallers; ++c) {
      callers.emplace_back(
          [&, c] { responses[c] = server.HandleBatch(requests); });
    }
    for (auto& t : callers) t.join();

    for (size_t c = 0; c < kBatchCallers; ++c) {
      ASSERT_EQ(responses[c].size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(responses[c][i], reference[i])
            << "caller " << c << " request " << i;
      }
    }

    // Every PIR frame went through the deferred shared-sweep path, and the
    // batched counters reconcile with the per-request ones.
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.pir_batched_queries, kBatchCallers * requests.size());
    EXPECT_EQ(stats.pir_queries, kBatchCallers * requests.size());
    EXPECT_GE(stats.pir_batch_sweeps,
              kBatchCallers * std::min<size_t>(shards, requests.size()));
  }
}

TEST_F(EmbellishServerContendedTest, TinyBatchesRunInlineAndStayIdentical) {
  // The 1-2 request heuristic: same bytes, no pool fan-out. Nothing here
  // can observe "ran inline" directly, so the assertion is behavioral —
  // handling via HandleBatch at sizes 1 and 2 still matches HandleFrame.
  ThreadPool pool(4);
  EmbellishServerOptions options;
  options.cache_capacity = 0;
  EmbellishServer server(&built_.index, &org_, nullptr, options, &pool);
  EmbellishServer serial(&built_.index, &org_, nullptr, options);

  SessionClient client = MakeClient(7, 77);
  server.HandleFrame(client.HelloFrame());
  serial.HandleFrame(client.HelloFrame());
  auto q1 = client.QueryFrame(SomeTerms(2, 9));
  auto q2 = client.QueryFrame(SomeTerms(4, 13));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  auto one = server.HandleBatch({*q1});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], serial.HandleFrame(*q1));

  auto two = server.HandleBatch({*q1, *q2});
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], one[0]);
  EXPECT_EQ(two[1], serial.HandleFrame(*q2));

  EXPECT_EQ(server.stats().batches, 2u);
}

}  // namespace
}  // namespace embellish::server
