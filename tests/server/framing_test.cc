// Framed-protocol round trips and exhaustive corruption fuzzing: every
// truncated, oversized or bit-flipped frame must come back as
// Status::Corruption — never crash, never decode into something plausible.
// The frame checksum covers header and payload, so *every* single-bit flip
// is detectable, and these tests hold the codec to that.

#include "server/framing.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace embellish::server {
namespace {

crypto::BenalohKeyPair TestKeys(uint64_t seed = 11) {
  Rng rng(seed);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  return std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value();
}

std::vector<uint8_t> SomePayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (uint8_t& b : out) b = static_cast<uint8_t>(rng.Uniform(256));
  return out;
}

TEST(FramingTest, RoundTripsEveryKind) {
  for (uint8_t k = static_cast<uint8_t>(FrameKind::kHello);
       k <= static_cast<uint8_t>(FrameKind::kError); ++k) {
    std::vector<uint8_t> payload = SomePayload(37, k);
    auto bytes = EncodeFrame(static_cast<FrameKind>(k), 0xA1B2C3D4E5F60718ull,
                             payload);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
    auto frame = DecodeFrame(bytes);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->version, kProtocolVersion);
    EXPECT_EQ(static_cast<uint8_t>(frame->kind), k);
    EXPECT_EQ(frame->session_id, 0xA1B2C3D4E5F60718ull);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FramingTest, RoundTripsEmptyPayload) {
  auto bytes = EncodeFrame(FrameKind::kHelloOk, 7, {});
  auto frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FramingTest, RejectsEveryTruncation) {
  auto bytes = EncodeFrame(FrameKind::kQuery, 42, SomePayload(64, 1));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    auto frame = DecodeFrame(truncated);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_TRUE(frame.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(FramingTest, RejectsTrailingGarbage) {
  auto bytes = EncodeFrame(FrameKind::kQuery, 42, SomePayload(16, 2));
  for (size_t extra : {1u, 7u, 1024u}) {
    std::vector<uint8_t> oversized = bytes;
    oversized.insert(oversized.end(), extra, 0xAB);
    auto frame = DecodeFrame(oversized);
    ASSERT_FALSE(frame.ok()) << "extra=" << extra;
    EXPECT_TRUE(frame.status().IsCorruption());
  }
}

TEST(FramingTest, RejectsEverySingleBitFlip) {
  // The checksum spans header and payload, so any one flipped bit anywhere
  // in the frame must surface as Corruption.
  auto bytes = EncodeFrame(FrameKind::kQuery, 0x0102030405060708ull,
                           SomePayload(96, 3));
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = bytes;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      auto frame = DecodeFrame(flipped);
      ASSERT_FALSE(frame.ok()) << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(frame.status().IsCorruption());
    }
  }
}

TEST(FramingTest, RejectsHostilePayloadSizeField) {
  // A frame whose declared payload size disagrees with the bytes present is
  // rejected before any allocation sized from the field.
  auto bytes = EncodeFrame(FrameKind::kQuery, 1, SomePayload(8, 4));
  for (uint8_t hostile : {0x00, 0x7F, 0xFF}) {
    std::vector<uint8_t> tampered = bytes;
    tampered[16] = hostile;
    tampered[17] = hostile;
    tampered[18] = hostile;
    tampered[19] = hostile;
    auto frame = DecodeFrame(tampered);
    ASSERT_FALSE(frame.ok());
    EXPECT_TRUE(frame.status().IsCorruption());
  }
}

TEST(FramingTest, ChecksumIsPositionSensitive) {
  // Swapping two payload bytes keeps the byte multiset identical; FNV-1a is
  // order-sensitive so the frame must still be rejected.
  std::vector<uint8_t> payload = SomePayload(32, 5);
  payload[0] = 0x11;
  payload[1] = 0x22;
  auto bytes = EncodeFrame(FrameKind::kQuery, 1, payload);
  std::swap(bytes[kFrameHeaderBytes], bytes[kFrameHeaderBytes + 1]);
  EXPECT_FALSE(DecodeFrame(bytes).ok());
}

// --- Hello payload ----------------------------------------------------------

TEST(FramingTest, HelloRoundTrip) {
  auto keys = TestKeys();
  const crypto::BenalohPublicKey& pk = keys.public_key();
  auto payload = EncodeHello(pk);
  auto decoded = DecodeHello(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->n(), pk.n());
  EXPECT_EQ(decoded->g(), pk.g());
  EXPECT_EQ(decoded->r(), pk.r());
  EXPECT_EQ(decoded->CiphertextBytes(), pk.CiphertextBytes());
}

TEST(FramingTest, HelloRejectsTruncationAndGarbage) {
  auto payload = EncodeHello(TestKeys().public_key());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + static_cast<long>(cut));
    auto decoded = DecodeHello(truncated);
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
  std::vector<uint8_t> oversized = payload;
  oversized.push_back(0);
  EXPECT_FALSE(DecodeHello(oversized).ok());
}

TEST(FramingTest, HelloRejectsDegenerateKeys) {
  // An even / trivial modulus must not reach the Montgomery context (whose
  // constructor requires an odd modulus > 1); the decoder screens it out.
  auto keys = TestKeys();
  auto mutate = [&](auto&& fn) {
    auto payload = EncodeHello(keys.public_key());
    fn(&payload);
    auto decoded = DecodeHello(payload);
    EXPECT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption());
  };
  // Even modulus: clear the low bit of n (big-endian -> last byte of n).
  const size_t n_size = keys.public_key().CiphertextBytes();
  mutate([&](std::vector<uint8_t>* p) { (*p)[4 + n_size - 1] &= 0xFE; });
  // Zero modulus.
  mutate([&](std::vector<uint8_t>* p) {
    std::fill(p->begin() + 4, p->begin() + 4 + static_cast<long>(n_size), 0);
  });
  // Generator >= n: make g all-0xFF.
  mutate([&](std::vector<uint8_t>* p) {
    std::fill(p->begin() + 8 + static_cast<long>(n_size), p->end() - 8, 0xFF);
  });
  // Message space r < 2.
  mutate([&](std::vector<uint8_t>* p) {
    std::fill(p->end() - 8, p->end(), 0);
  });
}

TEST(FramingTest, HelloRejectsOversizedKeyMaterial) {
  // The server keeps registered keys resident, so hello fields are capped;
  // a payload that actually carries kMaxHelloValueBytes + 1 modulus bytes
  // must be refused by the size cap, not stored.
  const uint32_t n_size = static_cast<uint32_t>(kMaxHelloValueBytes + 1);
  std::vector<uint8_t> payload{
      static_cast<uint8_t>(n_size >> 24), static_cast<uint8_t>(n_size >> 16),
      static_cast<uint8_t>(n_size >> 8), static_cast<uint8_t>(n_size)};
  payload.resize(4 + n_size, 0xAB);  // the full oversized modulus is present
  payload.resize(payload.size() + 4 + 1 + 8, 0);  // g_size=..., g, r
  auto decoded = DecodeHello(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// --- Error payload ----------------------------------------------------------

TEST(FramingTest, ErrorRoundTrip) {
  Status original = Status::FailedPrecondition("session 9 unknown");
  auto payload = EncodeError(original);
  Status transported;
  ASSERT_TRUE(DecodeError(payload, &transported).ok());
  EXPECT_EQ(transported, original);
}

TEST(FramingTest, ErrorRejectsMalformedPayloads) {
  Status transported;
  EXPECT_TRUE(DecodeError({}, &transported).IsCorruption());
  // An OK code inside an error payload is itself corruption.
  EXPECT_TRUE(DecodeError({0}, &transported).IsCorruption());
  // Unknown code.
  EXPECT_TRUE(DecodeError({250, 'x'}, &transported).IsCorruption());
}

// --- PIR payloads -----------------------------------------------------------

TEST(FramingTest, PirQueryRoundTrip) {
  Rng rng(21);
  auto client = crypto::PirClient::Create(256, &rng);
  ASSERT_TRUE(client.ok());
  auto query = client->BuildQuery(3, 8, &rng);
  ASSERT_TRUE(query.ok());
  auto payload = EncodePirQuery(5, *query);
  auto decoded = DecodePirQuery(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->bucket, 5u);
  EXPECT_EQ(decoded->query.n, query->n);
  ASSERT_EQ(decoded->query.q.size(), query->q.size());
  for (size_t i = 0; i < query->q.size(); ++i) {
    EXPECT_EQ(decoded->query.q[i], query->q[i]);
  }
}

TEST(FramingTest, PirQueryRejectsHostileCounts) {
  Rng rng(22);
  auto client = crypto::PirClient::Create(256, &rng);
  ASSERT_TRUE(client.ok());
  auto query = client->BuildQuery(0, 4, &rng);
  ASSERT_TRUE(query.ok());
  auto payload = EncodePirQuery(0, *query);

  // Hostile residue count: the 4+size_t(count)*value_size arithmetic must
  // be short-circuited by the bytes-present bound, not attempted.
  std::vector<uint8_t> tampered = payload;
  tampered[8] = 0xFF;
  tampered[9] = 0xFF;
  tampered[10] = 0xFF;
  tampered[11] = 0xFF;
  auto decoded = DecodePirQuery(tampered);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());

  // Zero value size would divide by zero if unchecked.
  tampered = payload;
  for (size_t i = 4; i < 8; ++i) tampered[i] = 0;
  EXPECT_TRUE(DecodePirQuery(tampered).status().IsCorruption());

  // Truncations.
  for (size_t cut : {0u, 3u, 11u, 40u}) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + static_cast<long>(cut));
    EXPECT_TRUE(DecodePirQuery(truncated).status().IsCorruption())
        << "cut=" << cut;
  }
}

TEST(FramingTest, PirResponseRoundTrip) {
  crypto::PirResponse response;
  Rng rng(23);
  for (int i = 0; i < 9; ++i) {
    response.gamma.push_back(bignum::BigInt(rng.Uniform(1u << 30)));
  }
  auto payload = EncodePirResponse(response, 32);
  auto decoded = DecodePirResponse(payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->gamma.size(), response.gamma.size());
  for (size_t i = 0; i < response.gamma.size(); ++i) {
    EXPECT_EQ(decoded->gamma[i], response.gamma[i]);
  }
  // Truncation and trailing garbage are rejected.
  std::vector<uint8_t> bad(payload.begin(), payload.end() - 1);
  EXPECT_TRUE(DecodePirResponse(bad).status().IsCorruption());
  bad = payload;
  bad.push_back(0);
  EXPECT_TRUE(DecodePirResponse(bad).status().IsCorruption());
}

}  // namespace
}  // namespace embellish::server
