// Batched PIR under live ingestion: HandleBatch callers whose batches are
// all PIR frames race ApplyDelta and a 2 -> 4 Reshard cutover on a
// catalog-backed server. A batch pins exactly one epoch, so its PIR groups
// can never mix epochs — every response of a batch must be bit-identical
// to a FreezeEpoch reference of ONE epoch that was live while the batch
// was in flight (the PR 8 equivalence bar, strengthened to whole batches).
// Frames address shards {0, 1} only so the same bytes stay valid before
// and after the reshard. Runs under the `ingest` ctest label (ASan/TSan CI)
// and matches the TSan job's name filter via "pir".

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "index/epoch.h"
#include "server/embellish_server.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class PirBatchIngestTest : public ::testing::Test {
 protected:
  PirBatchIngestTest()
      : lex_(testutil::SmallSyntheticLexicon(1200, 811)),
        corp_(testutil::SmallCorpus(lex_, 100, 812)),
        org_(std::make_shared<core::BucketOrganization>(
            testutil::MakeBuckets(lex_, 4, 64))) {}

  std::vector<corpus::Document> SomeDeltaDocs(size_t count, uint64_t salt) {
    auto terms = corp_.DistinctTerms();
    std::vector<corpus::Document> docs(count);
    for (size_t d = 0; d < count; ++d) {
      for (size_t t = 0; t < 30; ++t) {
        docs[d].tokens.push_back(terms[(salt + 17 * d + 3 * t) % terms.size()]);
      }
    }
    return docs;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  std::shared_ptr<core::BucketOrganization> org_;
};

TEST_F(PirBatchIngestTest, BatchesAreBitIdenticalToOnePinnedEpochEach) {
  index::IndexCatalogOptions copts;
  copts.sharding.shard_count = 2;
  ThreadPool pool(4);
  auto catalog = index::IndexCatalog::Create(corp_, org_, copts, &pool);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  EmbellishServerOptions options;
  options.cache_capacity = 0;  // every answer recomputed: no replay masking
  options.shard_threads = 2;
  EmbellishServer server(catalog->get(), options, &pool);

  // Pre-encode the storm batches: PIR queries from clients with distinct
  // moduli, addressing shards 0 and 1 only (valid at 2 and at 4 shards —
  // the bucket organization, and thus the shard-qualified field's layout,
  // is shared across epochs).
  constexpr size_t kThreads = 3;
  constexpr size_t kBatchesPerThread = 4;
  auto terms = corp_.DistinctTerms();
  Rng rng(900);
  std::vector<std::vector<std::vector<std::vector<uint8_t>>>> batches(
      kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    crypto::PirClient pir_client =
        std::move(crypto::PirClient::Create(256, &rng)).value();
    for (size_t b = 0; b < kBatchesPerThread; ++b) {
      std::vector<std::vector<uint8_t>> batch;
      for (size_t q = 0; q < 3; ++q) {
        auto slot = org_->Locate(terms[(19 * t + 7 * b + q) % terms.size()]);
        ASSERT_TRUE(slot.ok());
        auto query = pir_client.BuildQuery(
            slot->slot, org_->bucket(slot->bucket).size(), &rng);
        ASSERT_TRUE(query.ok());
        batch.push_back(EncodeFrame(
            FrameKind::kPirQuery, 40 + t,
            EncodePirQuery(server.PirBucketField(q % 2, slot->bucket),
                           *query)));
      }
      batches[t].push_back(std::move(batch));
    }
  }

  std::map<uint64_t, std::shared_ptr<const index::IndexEpoch>> snapshots;
  snapshots[1] = (*catalog)->Acquire();

  struct Observation {
    uint64_t epoch_lo = 0;  // current epoch before the batch was sent
    uint64_t epoch_hi = 0;  // current epoch after the responses landed
    std::vector<std::vector<uint8_t>> responses;
  };
  std::vector<std::vector<Observation>> observed(kThreads);
  std::atomic<bool> start{false};

  std::vector<std::thread> storm;
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (size_t b = 0; b < kBatchesPerThread; ++b) {
        Observation ob;
        ob.epoch_lo = (*catalog)->Acquire()->epoch();
        ob.responses = server.HandleBatch(batches[t][b]);
        ob.epoch_hi = (*catalog)->Acquire()->epoch();
        observed[t].push_back(std::move(ob));
      }
    });
  }

  start.store(true, std::memory_order_release);
  // The ingest side, racing the storm: two deltas around a 2 -> 4 reshard.
  auto e2 = (*catalog)->ApplyDelta(SomeDeltaDocs(6, 21));
  ASSERT_TRUE(e2.ok()) << e2.status().ToString();
  snapshots[(*e2)->epoch()] = *e2;
  index::ShardingOptions wider;
  wider.shard_count = 4;
  auto e3 = (*catalog)->Reshard(wider);
  ASSERT_TRUE(e3.ok()) << e3.status().ToString();
  snapshots[(*e3)->epoch()] = *e3;
  auto e4 = (*catalog)->ApplyDelta(SomeDeltaDocs(5, 33));
  ASSERT_TRUE(e4.ok()) << e4.status().ToString();
  snapshots[(*e4)->epoch()] = *e4;
  for (auto& th : storm) th.join();

  // No serving thread ever ran an index or layout build, and every PIR
  // frame of the storm went through the deferred shared-sweep path.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.answer_path_builds, 0u);
  EXPECT_EQ(stats.epoch_swaps, 3u);
  EXPECT_EQ(stats.pir_batched_queries,
            uint64_t{kThreads} * kBatchesPerThread * 3);
  EXPECT_GT(stats.pir_batch_sweeps, 0u);

  // Frozen reference servers, one per installed epoch, built AFTER the race
  // so they cannot perturb it.
  std::map<uint64_t, std::unique_ptr<EmbellishServer>> references;
  std::map<uint64_t, std::unique_ptr<index::IndexCatalog>> ref_catalogs;
  for (const auto& [epoch, snapshot] : snapshots) {
    ref_catalogs[epoch] = index::IndexCatalog::FreezeEpoch(snapshot);
    references[epoch] =
        std::make_unique<EmbellishServer>(ref_catalogs[epoch].get(), options);
  }

  // Whole-batch single-epoch equivalence: some epoch live during the batch
  // must reproduce EVERY response byte-for-byte (the batch pins one
  // snapshot; its groups must never mix epochs).
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(observed[t].size(), kBatchesPerThread);
    for (size_t b = 0; b < kBatchesPerThread; ++b) {
      const Observation& ob = observed[t][b];
      ASSERT_LE(ob.epoch_lo, ob.epoch_hi);
      ASSERT_EQ(ob.responses.size(), batches[t][b].size());
      bool matched = false;
      for (uint64_t e = ob.epoch_lo; e <= ob.epoch_hi && !matched; ++e) {
        auto it = references.find(e);
        ASSERT_NE(it, references.end()) << "epoch " << e << " unrecorded";
        bool all = true;
        for (size_t i = 0; i < ob.responses.size() && all; ++i) {
          all = it->second->HandleFrame(batches[t][b][i]) == ob.responses[i];
        }
        matched = all;
      }
      EXPECT_TRUE(matched)
          << "thread " << t << " batch " << b
          << " answered bytes matching no single epoch in [" << ob.epoch_lo
          << ", " << ob.epoch_hi << "]";
    }
  }
}

}  // namespace
}  // namespace embellish::server
