// Correlation tests for the multiplexed transport: the test adopts one end
// of a socketpair and plays the byzantine peer on the other — responding
// out of order, duplicating, fabricating, poisoning the stream, or dying —
// and every in-flight round trip must either receive exactly its own
// response or fail with a typed status. A wrong-submitter delivery is the
// one outcome that must be impossible.

#include "server/multiplexed_transport.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "server/framing.h"
#include "server/io_util.h"
#include "server/shard_transport.h"

namespace embellish::server {
namespace {

// One submitted round trip's observable outcome, awaitable from the test
// thread (completions run on the loop thread).
struct Outcome {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<std::vector<uint8_t>> result = std::vector<uint8_t>{};

  ShardTransport::RoundTripCompletion Completion() {
    return [this](Result<std::vector<uint8_t>> r) {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
      cv.notify_one();
    };
  }

  Result<std::vector<uint8_t>> Await() {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [this] { return done; }))
        << "round trip never completed";
    return std::move(result);
  }

  bool completed() {
    std::lock_guard<std::mutex> lock(mu);
    return done;
  }
};

class MultiplexedTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loop = EventLoop::Create();
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    loop_ = std::move(*loop);
    ASSERT_TRUE(loop_->Start().ok());
  }

  void TearDown() override {
    transport_.reset();  // before the loop stops, per the contract
    if (peer_fd_ >= 0) close(peer_fd_);
    loop_->Stop();
  }

  // Adopts one end of a socketpair; the test keeps the (blocking) peer end.
  void AdoptPair(const MultiplexedTransportOptions& options = {}) {
    int fds[2];
    ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    peer_fd_ = fds[1];
    auto transport = MultiplexedTransport::Adopt(fds[0], loop_.get(), options);
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();
    transport_ = std::move(*transport);
  }

  static std::vector<uint8_t> Request(uint64_t seq, uint64_t epoch = 1) {
    return EncodeFrame(FrameKind::kShardRequest, 0,
                       EncodeShardEnvelope(0, epoch, seq, {}));
  }

  // A response whose inner frame carries `seq` in its session id, so the
  // test can verify WHICH response each submitter received.
  static std::vector<uint8_t> Response(uint64_t seq, uint64_t epoch = 1) {
    auto inner = EncodeFrame(FrameKind::kHelloOk, seq, EncodeHelloOk(1, 4));
    return EncodeFrame(FrameKind::kShardResponse, 0,
                       EncodeShardEnvelope(0, epoch, seq, inner));
  }

  static uint64_t SeqOf(const std::vector<uint8_t>& response) {
    auto outer = DecodeFrame(response);
    if (!outer.ok()) return ~0ull;
    auto envelope = DecodeShardEnvelope(outer->payload);
    return envelope.ok() ? envelope->seq : ~0ull;
  }

  // Peer side: blocking framed I/O with a test-failure deadline.
  std::vector<uint8_t> PeerReadFrame() {
    auto frame =
        ReadFrameFd(peer_fd_, kMaxTransportFrameBytes, DeadlineFromNow(10000));
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok() ? *std::move(frame) : std::vector<uint8_t>{};
  }

  void PeerWrite(const std::vector<uint8_t>& bytes) {
    ASSERT_TRUE(WriteAll(peer_fd_, bytes.data(), bytes.size()).ok());
  }

  void AwaitStats(std::function<bool(const MultiplexedTransportStats&)> pred) {
    for (int i = 0; i < 2000; ++i) {
      if (pred(transport_->stats())) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "stats predicate never satisfied";
  }

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<MultiplexedTransport> transport_;
  int peer_fd_ = -1;
};

TEST_F(MultiplexedTransportTest, ReorderedResponsesReachTheRightSubmitters) {
  AdoptPair();
  Outcome out1, out2, out3;
  transport_->SubmitRoundTrip(Request(1), out1.Completion());
  transport_->SubmitRoundTrip(Request(2), out2.Completion());
  transport_->SubmitRoundTrip(Request(3), out3.Completion());

  // Drain all three requests, then answer them backwards.
  std::vector<uint64_t> seen;
  for (int i = 0; i < 3; ++i) seen.push_back(SeqOf(PeerReadFrame()));
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2, 3}));
  PeerWrite(Response(3));
  PeerWrite(Response(1));
  PeerWrite(Response(2));

  auto r1 = out1.Await();
  auto r2 = out2.Await();
  auto r3 = out3.Await();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(SeqOf(*r1), 1u);
  EXPECT_EQ(SeqOf(*r2), 2u);
  EXPECT_EQ(SeqOf(*r3), 3u);

  auto stats = transport_->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.orphan_responses, 0u);
  EXPECT_EQ(stats.resets, 0u);
}

TEST_F(MultiplexedTransportTest, DuplicateAndFabricatedResponsesAreOrphaned) {
  AdoptPair();
  Outcome out1, out2;
  transport_->SubmitRoundTrip(Request(1), out1.Completion());
  transport_->SubmitRoundTrip(Request(2), out2.Completion());
  PeerReadFrame();
  PeerReadFrame();

  // A fabricated seq nobody asked for, a real answer, the same answer
  // replayed, and a stale-epoch replay of the other in-flight seq. Only the
  // two real answers may reach a submitter — and each exactly its own.
  PeerWrite(Response(99));
  PeerWrite(Response(1));
  PeerWrite(Response(1));
  PeerWrite(Response(2, /*epoch=*/7));  // epoch mismatch: not in-flight
  PeerWrite(Response(2));

  auto r1 = out1.Await();
  auto r2 = out2.Await();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(SeqOf(*r1), 1u);
  EXPECT_EQ(SeqOf(*r2), 2u);

  AwaitStats([](const MultiplexedTransportStats& s) {
    return s.orphan_responses == 3;
  });
  auto stats = transport_->stats();
  EXPECT_EQ(stats.responses, 2u);
  EXPECT_EQ(stats.resets, 0u);  // orphans are dropped, not poison
}

TEST_F(MultiplexedTransportTest, DuplicateInFlightKeyIsRejected) {
  AdoptPair();
  Outcome first, second;
  transport_->SubmitRoundTrip(Request(5), first.Completion());
  transport_->SubmitRoundTrip(Request(5), second.Completion());

  auto rejected = second.Await();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();

  // The first submission is unharmed.
  PeerReadFrame();
  PeerWrite(Response(5));
  auto r = first.Await();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SeqOf(*r), 5u);
}

TEST_F(MultiplexedTransportTest, PeerDeathFailsEveryInFlightTripTyped) {
  AdoptPair();
  Outcome out1, out2;
  transport_->SubmitRoundTrip(Request(1), out1.Completion());
  transport_->SubmitRoundTrip(Request(2), out2.Completion());
  PeerReadFrame();
  PeerReadFrame();

  close(peer_fd_);
  peer_fd_ = -1;

  auto r1 = out1.Await();
  auto r2 = out2.Await();
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r1.status().IsUnavailable()) << r1.status().ToString();
  EXPECT_TRUE(r2.status().IsUnavailable()) << r2.status().ToString();
  EXPECT_EQ(transport_->stats().resets, 1u);

  // An adopted socket has no endpoint to reconnect to: the next submit
  // fails typed instead of hanging.
  Outcome after;
  transport_->SubmitRoundTrip(Request(3), after.Completion());
  auto r3 = after.Await();
  ASSERT_FALSE(r3.ok());
  EXPECT_TRUE(r3.status().IsUnavailable()) << r3.status().ToString();
}

TEST_F(MultiplexedTransportTest, UncorrelatableErrorFramePoisonsTheStream) {
  AdoptPair();
  Outcome out1, out2;
  transport_->SubmitRoundTrip(Request(1), out1.Completion());
  transport_->SubmitRoundTrip(Request(2), out2.Completion());
  PeerReadFrame();
  PeerReadFrame();

  // An outer kError carries no envelope: it cannot name the request it
  // answers, so on a pipelined connection it must fail BOTH trips with the
  // transported status — never be merged into either.
  PeerWrite(EncodeFrame(FrameKind::kError, 0,
                        EncodeError(Status::Busy("shard overloaded"))));

  auto r1 = out1.Await();
  auto r2 = out2.Await();
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r1.status().IsBusy()) << r1.status().ToString();
  EXPECT_TRUE(r2.status().IsBusy()) << r2.status().ToString();
  EXPECT_EQ(transport_->stats().resets, 1u);
}

TEST_F(MultiplexedTransportTest, GarbageBytesPoisonTheStream) {
  AdoptPair();
  Outcome out;
  transport_->SubmitRoundTrip(Request(1), out.Completion());
  PeerReadFrame();

  // Not a frame at all: the stream is no longer frame-aligned.
  std::vector<uint8_t> garbage(64, 0xAB);
  PeerWrite(garbage);

  auto r = out.Await();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(transport_->stats().resets, 1u);
}

TEST_F(MultiplexedTransportTest, TimeoutFailsOneTripButSparesItsSiblings) {
  MultiplexedTransportOptions options;
  options.io_timeout_ms = 100;
  AdoptPair(options);

  Outcome slow, fast;
  transport_->SubmitRoundTrip(Request(1), slow.Completion());
  transport_->SubmitRoundTrip(Request(2), fast.Completion());
  PeerReadFrame();
  PeerReadFrame();
  // Answer only seq 2; seq 1 expires.
  PeerWrite(Response(2));

  auto fast_r = fast.Await();
  ASSERT_TRUE(fast_r.ok());
  EXPECT_EQ(SeqOf(*fast_r), 2u);

  auto slow_r = slow.Await();
  ASSERT_FALSE(slow_r.ok());
  EXPECT_TRUE(slow_r.status().IsUnavailable()) << slow_r.status().ToString();
  EXPECT_EQ(transport_->stats().timeouts, 1u);
  // The connection survived the timeout...
  EXPECT_EQ(transport_->stats().resets, 0u);

  // ...so the late answer arrives as an orphan, and new trips still work.
  PeerWrite(Response(1));
  AwaitStats([](const MultiplexedTransportStats& s) {
    return s.orphan_responses == 1;
  });
  Outcome next;
  transport_->SubmitRoundTrip(Request(3), next.Completion());
  PeerReadFrame();
  PeerWrite(Response(3));
  auto next_r = next.Await();
  ASSERT_TRUE(next_r.ok());
  EXPECT_EQ(SeqOf(*next_r), 3u);
}

TEST_F(MultiplexedTransportTest, NonShardRequestFramesAreRejectedInline) {
  AdoptPair();
  Outcome out;
  transport_->SubmitRoundTrip(EncodeFrame(FrameKind::kQuery, 1, {}),
                              out.Completion());
  auto r = out.Await();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST_F(MultiplexedTransportTest, BlockingRoundTripRefusedOnLoopThread) {
  AdoptPair();
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::OK();
  loop_->RunInLoop([&] {
    auto r = transport_->RoundTrip(Request(1));
    std::lock_guard<std::mutex> lock(mu);
    status = r.status();
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; }));
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST_F(MultiplexedTransportTest, ConnectVariantReconnectsAfterPeerRestart) {
  // A real listener whose first connection dies after one frame — the
  // restarted-shard scenario. Unlike TcpTransport, the mux does not resend
  // (in-flight trips fail typed on the reset); but the NEXT submit must
  // transparently reconnect.
  uint16_t port = 0;
  auto listen_fd = ListenOnLoopback(&port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();

  std::thread serve([fd = *listen_fd] {
    for (int conn_index = 0;; ++conn_index) {
      int conn = accept(fd, nullptr, nullptr);
      if (conn < 0) return;
      for (;;) {
        auto request = ReadFrameFd(conn, kMaxTransportFrameBytes);
        if (!request.ok()) break;
        auto outer = DecodeFrame(*request);
        if (!outer.ok()) break;
        auto envelope = DecodeShardEnvelope(outer->payload);
        if (!envelope.ok()) break;
        auto response = Response(envelope->seq, envelope->epoch);
        if (!WriteAll(conn, response.data(), response.size()).ok()) break;
        if (conn_index == 0) break;  // first connection dies after one frame
      }
      close(conn);
    }
  });

  {
    auto transport = MultiplexedTransport::Connect("127.0.0.1", port,
                                                   loop_.get());
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();

    auto r1 = (*transport)->RoundTrip(Request(1));
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_EQ(SeqOf(*r1), 1u);

    // The server closed that connection; wait for the mux to notice.
    for (int i = 0; i < 2000 && (*transport)->stats().resets == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ((*transport)->stats().resets, 1u);

    // The next submit reconnects (non-blocking, on the loop) and succeeds.
    auto r2 = (*transport)->RoundTrip(Request(2));
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(SeqOf(*r2), 2u);
  }

  shutdown(*listen_fd, SHUT_RDWR);
  close(*listen_fd);
  serve.join();
}

TEST_F(MultiplexedTransportTest, DestructorFailsInFlightTripsCleanly) {
  AdoptPair();
  Outcome out;
  transport_->SubmitRoundTrip(Request(1), out.Completion());
  PeerReadFrame();
  transport_.reset();  // never answered
  auto r = out.Await();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
}

}  // namespace
}  // namespace embellish::server
