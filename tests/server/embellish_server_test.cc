// End-to-end request loop: SessionClients speaking the framed protocol to an
// EmbellishServer must get byte-identical answers to driving the layers by
// hand, across many concurrent sessions, batched or not, cached or not —
// and a hostile frame must produce a kError response, never take the loop
// down.

#include "server/embellish_server.h"

#include <gtest/gtest.h>

#include "core/wire_format.h"
#include "index/builder.h"
#include "server/session_client.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class EmbellishServerTest : public ::testing::Test {
 protected:
  EmbellishServerTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 211)),
        corp_(testutil::SmallCorpus(lex_, 150, 212)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {}

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
};

TEST_F(EmbellishServerTest, HelloThenQueryMatchesDirectPipeline) {
  EmbellishServer server(&built_.index, &org_, nullptr);
  SessionClient client = MakeClient(1, 301);

  auto hello_resp = server.HandleFrame(client.HelloFrame());
  auto hello_frame = DecodeFrame(hello_resp);
  ASSERT_TRUE(hello_frame.ok());
  EXPECT_EQ(hello_frame->kind, FrameKind::kHelloOk);
  EXPECT_EQ(server.session_count(), 1u);
  // The hello-ok advertises the retrieval topology.
  auto topology = DecodeHelloOk(hello_frame->payload);
  ASSERT_TRUE(topology.ok());
  EXPECT_EQ(topology->shard_count, 1u);
  EXPECT_EQ(topology->bucket_count, org_.bucket_count());

  auto genuine = SomeTerms(3, 71);
  auto request = client.QueryFrame(genuine);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  auto response = server.HandleFrame(*request);
  auto top = client.DecodeResultFrame(response, 10);
  ASSERT_TRUE(top.ok()) << top.status().ToString();

  // The same query payload answered by a bare PrivateRetrievalServer must
  // produce the same encrypted result the server framed.
  auto req_frame = DecodeFrame(*request);
  ASSERT_TRUE(req_frame.ok());
  auto query = core::DecodeQuery(req_frame->payload, client.public_key());
  ASSERT_TRUE(query.ok());
  core::PrivateRetrievalServer direct(&built_.index, &org_, nullptr);
  auto direct_result = direct.Process(*query, client.public_key(), nullptr);
  ASSERT_TRUE(direct_result.ok());
  auto resp_frame = DecodeFrame(response);
  ASSERT_TRUE(resp_frame.ok());
  EXPECT_EQ(resp_frame->kind, FrameKind::kResult);
  EXPECT_EQ(resp_frame->payload,
            core::EncodeResult(*direct_result, client.public_key()));
}

TEST_F(EmbellishServerTest, QueryBeforeHelloIsRejectedNotFatal) {
  EmbellishServer server(&built_.index, &org_, nullptr);
  SessionClient client = MakeClient(2, 302);
  auto request = client.QueryFrame(SomeTerms(5, 9));
  ASSERT_TRUE(request.ok());
  auto response = server.HandleFrame(*request);
  auto top = client.DecodeResultFrame(response, 10);
  ASSERT_FALSE(top.ok());
  EXPECT_TRUE(top.status().IsFailedPrecondition());
  // The loop survives: hello then retry succeeds.
  server.HandleFrame(client.HelloFrame());
  auto retry = server.HandleFrame(*request);
  EXPECT_TRUE(client.DecodeResultFrame(retry, 10).ok());
}

TEST_F(EmbellishServerTest, MalformedFramesGetErrorResponses) {
  EmbellishServer server(&built_.index, &org_, nullptr);
  SessionClient client = MakeClient(3, 303);
  server.HandleFrame(client.HelloFrame());
  auto request = client.QueryFrame(SomeTerms(2, 4));
  ASSERT_TRUE(request.ok());

  std::vector<std::vector<uint8_t>> hostile;
  hostile.push_back({});                                    // empty
  hostile.push_back({1, 2, 3});                             // short
  hostile.push_back(std::vector<uint8_t>(4096, 0xFF));      // junk
  auto flipped = *request;
  flipped[kFrameHeaderBytes + 2] ^= 0x40;                   // payload flip
  hostile.push_back(flipped);
  auto truncated = *request;
  truncated.resize(truncated.size() - 5);                   // truncation
  hostile.push_back(truncated);

  for (const auto& bytes : hostile) {
    auto response = server.HandleFrame(bytes);
    auto frame = DecodeFrame(response);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->kind, FrameKind::kError);
  }
  EXPECT_EQ(server.stats().errors, hostile.size());
  // A well-formed query still works afterwards.
  auto response = server.HandleFrame(*request);
  EXPECT_TRUE(client.DecodeResultFrame(response, 10).ok());
}

TEST_F(EmbellishServerTest, ResponseCacheHitsOnRecurringQueries) {
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(&built_.index, &org_, nullptr, options);
  SessionClient client = MakeClient(4, 304);
  server.HandleFrame(client.HelloFrame());

  auto genuine = SomeTerms(7, 13);
  auto first_req = client.QueryFrame(genuine);
  ASSERT_TRUE(first_req.ok());
  auto first_resp = server.HandleFrame(*first_req);

  // Session consistency: the client reuses the encoded uplink bytes, so the
  // recurring term set is a cache hit and the response is bit-identical.
  auto second_req = client.QueryFrame(genuine);
  ASSERT_TRUE(second_req.ok());
  EXPECT_EQ(*first_req, *second_req);
  EXPECT_EQ(client.encoded_query_cache_size(), 1u);
  auto second_resp = server.HandleFrame(*second_req);
  EXPECT_EQ(first_resp, second_resp);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.queries, 2u);

  // A different session sending byte-different ciphertexts must miss.
  SessionClient other = MakeClient(5, 305);
  server.HandleFrame(other.HelloFrame());
  auto other_req = other.QueryFrame(genuine);
  ASSERT_TRUE(other_req.ok());
  server.HandleFrame(*other_req);
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST_F(EmbellishServerTest, ReHelloInvalidatesCachedResponses) {
  // A session may re-register with a fresh public key. Replaying the same
  // query bytes afterwards must NOT be served from the cache: the cached
  // response's ciphertexts are under the superseded key.
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(&built_.index, &org_, nullptr, options);

  SessionClient old_client = MakeClient(6, 306);
  server.HandleFrame(old_client.HelloFrame());
  auto request = old_client.QueryFrame(SomeTerms(11, 19));
  ASSERT_TRUE(request.ok());
  auto first_resp = server.HandleFrame(*request);
  ASSERT_TRUE(old_client.DecodeResultFrame(first_resp, 10).ok());

  // Same session id, different keypair.
  SessionClient new_client = MakeClient(6, 307);
  server.HandleFrame(new_client.HelloFrame());
  auto replayed = server.HandleFrame(*request);
  EXPECT_NE(replayed, first_resp);
  EXPECT_EQ(server.stats().cache_hits, 0u);
  // The old ciphertexts are not valid under the new key, so the replay is
  // either rejected or re-processed — never the stale cached bytes.
}

TEST_F(EmbellishServerTest, SessionTableIsBounded) {
  EmbellishServerOptions options;
  options.max_sessions = 2;
  EmbellishServer server(&built_.index, &org_, nullptr, options);
  SessionClient a = MakeClient(21, 321);
  SessionClient b = MakeClient(22, 322);
  SessionClient c = MakeClient(23, 323);

  auto kind_of = [](const std::vector<uint8_t>& resp) {
    auto frame = DecodeFrame(resp);
    return frame.ok() ? frame->kind : FrameKind::kError;
  };
  EXPECT_EQ(kind_of(server.HandleFrame(a.HelloFrame())), FrameKind::kHelloOk);
  EXPECT_EQ(kind_of(server.HandleFrame(b.HelloFrame())), FrameKind::kHelloOk);
  // A third distinct session is refused...
  EXPECT_EQ(kind_of(server.HandleFrame(c.HelloFrame())), FrameKind::kError);
  EXPECT_EQ(server.session_count(), 2u);
  // ...but an existing session may always re-register.
  EXPECT_EQ(kind_of(server.HandleFrame(a.HelloFrame())), FrameKind::kHelloOk);
}

TEST_F(EmbellishServerTest, BatchedDispatchMatchesSerial) {
  EmbellishServerOptions options;
  options.cache_capacity = 0;  // isolate batching from caching
  ThreadPool pool(4);
  EmbellishServer batched(&built_.index, &org_, nullptr, options, &pool);
  EmbellishServer serial(&built_.index, &org_, nullptr, options);

  constexpr size_t kSessions = 6;
  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.push_back(MakeClient(100 + s, 400 + s));
    batched.HandleFrame(clients.back().HelloFrame());
    serial.HandleFrame(clients.back().HelloFrame());
    auto req = clients.back().QueryFrame(SomeTerms(s, 3 * s + 1));
    ASSERT_TRUE(req.ok());
    requests.push_back(std::move(*req));
  }

  auto batched_responses = batched.HandleBatch(requests);
  ASSERT_EQ(batched_responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched_responses[i], serial.HandleFrame(requests[i]))
        << "request " << i;
    auto top = clients[i].DecodeResultFrame(batched_responses[i], 10);
    EXPECT_TRUE(top.ok()) << top.status().ToString();
  }
  EXPECT_EQ(batched.stats().batches, 1u);
  EXPECT_EQ(batched.stats().queries, kSessions);
}

TEST_F(EmbellishServerTest, InflightBudgetShedsBatchSuffixTyped) {
  // max_inflight bounds admitted work; HandleBatch reserves up front, so
  // exactly the suffix beyond the budget is shed with a typed kBusy error
  // while the admitted prefix answers byte-identically to an unthrottled
  // server.
  EmbellishServerOptions options;
  options.cache_capacity = 0;
  EmbellishServer reference(&built_.index, &org_, nullptr, options);
  options.max_inflight = 4;
  EmbellishServer throttled(&built_.index, &org_, nullptr, options);

  constexpr size_t kRequests = 6;
  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < kRequests; ++s) {
    clients.push_back(MakeClient(700 + s, 800 + s));
    reference.HandleFrame(clients.back().HelloFrame());
    throttled.HandleFrame(clients.back().HelloFrame());
    auto req = clients.back().QueryFrame(SomeTerms(2 * s, 5 * s + 3));
    ASSERT_TRUE(req.ok());
    requests.push_back(std::move(*req));
  }

  auto responses = throttled.HandleBatch(requests);
  ASSERT_EQ(responses.size(), kRequests);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(responses[i], reference.HandleFrame(requests[i]))
        << "admitted request " << i;
  }
  for (size_t i = 4; i < kRequests; ++i) {
    auto frame = DecodeFrame(responses[i]);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->kind, FrameKind::kError) << "request " << i;
    Status carried;
    ASSERT_TRUE(DecodeError(frame->payload, &carried).ok());
    EXPECT_TRUE(carried.IsBusy()) << carried.ToString();
  }
  EXPECT_EQ(throttled.stats().shed, 2u);
  EXPECT_EQ(throttled.stats().queries, 4u);

  // The budget is released once the batch drains: new work is admitted.
  auto after = throttled.HandleFrame(requests[5]);
  EXPECT_TRUE(clients[5].DecodeResultFrame(after, 10).ok());
  EXPECT_EQ(throttled.stats().shed, 2u);
}

TEST_F(EmbellishServerTest, PirQueriesThroughTheLoop) {
  EmbellishServer server(&built_.index, &org_, nullptr);

  // Pick an indexed term and retrieve its bucket column through the server
  // loop; compare against the direct PirRetrievalServer answer.
  auto terms = built_.index.IndexedTerms();
  wordnet::TermId term = terms[17];
  auto slot = org_.Locate(term);
  ASSERT_TRUE(slot.ok());

  core::PirRetrievalServer direct(&built_.index, &org_, nullptr);
  auto matrix = direct.BucketMatrix(slot->bucket);
  ASSERT_TRUE(matrix.ok());

  Rng query_rng(318);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &query_rng)).value();
  auto query = pir_client.BuildQuery(slot->slot, (*matrix)->cols(),
                                     &query_rng);
  ASSERT_TRUE(query.ok());

  auto request = EncodeFrame(FrameKind::kPirQuery, 9,
                             EncodePirQuery(slot->bucket, *query));
  auto response = server.HandleFrame(request);
  auto frame = DecodeFrame(response);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->kind, FrameKind::kPirResult);
  auto decoded = DecodePirResponse(frame->payload);
  ASSERT_TRUE(decoded.ok());

  auto direct_answer = direct.Answer(slot->bucket, *query, nullptr);
  ASSERT_TRUE(direct_answer.ok());
  ASSERT_EQ(decoded->gamma.size(), direct_answer->gamma.size());
  for (size_t i = 0; i < decoded->gamma.size(); ++i) {
    EXPECT_EQ(decoded->gamma[i], direct_answer->gamma[i]);
  }
  EXPECT_EQ(server.stats().pir_queries, 1u);
}

TEST_F(EmbellishServerTest, ShardedServerAnswersBitIdenticalToMonolithic) {
  // The shard configuration is a server-side implementation detail: the
  // same request frames must produce byte-identical response frames
  // whether the index is monolithic or document-partitioned, serial or
  // shard-pooled, cached or not.
  EmbellishServerOptions mono_options;
  EmbellishServer mono(&built_.index, &org_, nullptr, mono_options);

  EmbellishServerOptions shard_options;
  shard_options.shard_count = 3;
  shard_options.shard_threads = 2;
  EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);
  EXPECT_EQ(sharded.shard_count(), 3u);

  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < 4; ++s) {
    clients.push_back(MakeClient(500 + s, 600 + s));
    mono.HandleFrame(clients.back().HelloFrame());
    auto hello_resp = sharded.HandleFrame(clients.back().HelloFrame());
    // A sharded server advertises its topology so clients can address
    // (shard, bucket) pairs and know to query every shard.
    auto hello_frame = DecodeFrame(hello_resp);
    ASSERT_TRUE(hello_frame.ok());
    auto topology = DecodeHelloOk(hello_frame->payload);
    ASSERT_TRUE(topology.ok());
    EXPECT_EQ(topology->shard_count, 3u);
    EXPECT_EQ(topology->bucket_count, org_.bucket_count());
    auto req = clients.back().QueryFrame(SomeTerms(2 * s + 1, 5 * s + 3));
    ASSERT_TRUE(req.ok());
    requests.push_back(std::move(*req));
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    auto mono_resp = mono.HandleFrame(requests[i]);
    auto shard_resp = sharded.HandleFrame(requests[i]);
    EXPECT_EQ(mono_resp, shard_resp) << "request " << i;
    EXPECT_TRUE(clients[i].DecodeResultFrame(shard_resp, 10).ok());
  }
}

TEST_F(EmbellishServerTest, ShardedBatchMatchesMonolithicSerial) {
  // Batched sessions hit shards concurrently: batch fan-out runs on the
  // caller-supplied pool while each query's shards run on the server's own
  // shard pool — and the bytes still cannot differ.
  ThreadPool batch_pool(4);
  EmbellishServerOptions shard_options;
  shard_options.shard_count = 4;
  shard_options.shard_threads = 2;
  EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options,
                          &batch_pool);
  EmbellishServer mono(&built_.index, &org_, nullptr);

  std::vector<SessionClient> clients;
  std::vector<std::vector<uint8_t>> requests;
  for (size_t s = 0; s < 6; ++s) {
    clients.push_back(MakeClient(700 + s, 800 + s));
    sharded.HandleFrame(clients.back().HelloFrame());
    mono.HandleFrame(clients.back().HelloFrame());
    auto req = clients.back().QueryFrame(SomeTerms(s + 2, 7 * s + 1));
    ASSERT_TRUE(req.ok());
    requests.push_back(std::move(*req));
  }

  auto batched = sharded.HandleBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], mono.HandleFrame(requests[i])) << "request " << i;
  }
}

TEST_F(EmbellishServerTest, ShardedPirThroughTheLoopReassemblesTheList) {
  // A sharded server's kPirQuery addresses one (shard, bucket) pair via the
  // shard-qualified bucket field; decoding every shard's kPirResult and
  // merging the fragments must reproduce the term's monolithic list.
  EmbellishServerOptions options;
  options.shard_count = 3;
  EmbellishServer server(&built_.index, &org_, nullptr, options);

  auto terms = built_.index.IndexedTerms();
  wordnet::TermId term = terms[29];
  auto slot = org_.Locate(term);
  ASSERT_TRUE(slot.ok());
  const size_t cols = org_.bucket(slot->bucket).size();

  Rng rng(911);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto query = pir_client.BuildQuery(slot->slot, cols, &rng);
  ASSERT_TRUE(query.ok());

  std::vector<std::vector<index::Posting>> fragments;
  for (size_t shard = 0; shard < server.shard_count(); ++shard) {
    auto request = EncodeFrame(
        FrameKind::kPirQuery, 12,
        EncodePirQuery(server.PirBucketField(shard, slot->bucket), *query));
    auto response = server.HandleFrame(request);
    auto frame = DecodeFrame(response);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->kind, FrameKind::kPirResult) << "shard " << shard;
    auto decoded = DecodePirResponse(frame->payload);
    ASSERT_TRUE(decoded.ok());
    auto bits = pir_client.DecodeResponse(*decoded);
    ASSERT_TRUE(bits.ok());
    auto fragment = core::PostingsFromColumnBits(*bits);
    ASSERT_TRUE(fragment.ok());
    fragments.push_back(std::move(*fragment));
  }
  EXPECT_EQ(index::MergeShardPostings(fragments),
            *built_.index.postings(term));
  EXPECT_EQ(server.stats().pir_queries, server.shard_count());

  // A shard index beyond the configured count is answered with an error
  // frame, not a crash.
  auto bad = EncodeFrame(
      FrameKind::kPirQuery, 12,
      EncodePirQuery(server.PirBucketField(9, slot->bucket), *query));
  auto bad_resp = server.HandleFrame(bad);
  auto bad_frame = DecodeFrame(bad_resp);
  ASSERT_TRUE(bad_frame.ok());
  EXPECT_EQ(bad_frame->kind, FrameKind::kError);
}

TEST_F(EmbellishServerTest, ShardedPirResponsesAreCachedPerShard) {
  EmbellishServerOptions options;
  options.shard_count = 2;
  options.cache_capacity = 64;
  EmbellishServer server(&built_.index, &org_, nullptr, options);

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[7]);
  ASSERT_TRUE(slot.ok());
  Rng rng(912);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto query =
      pir_client.BuildQuery(slot->slot, org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(query.ok());

  // Same query against the two shards: distinct cache entries (the
  // responses differ — per-shard matrices have different row counts), then
  // a replay of each hits.
  std::vector<std::vector<uint8_t>> responses;
  for (size_t shard = 0; shard < 2; ++shard) {
    auto request = EncodeFrame(
        FrameKind::kPirQuery, 13,
        EncodePirQuery(server.PirBucketField(shard, slot->bucket), *query));
    responses.push_back(server.HandleFrame(request));
    EXPECT_EQ(server.HandleFrame(request), responses.back());
  }
  EXPECT_NE(responses[0], responses[1]);
  EXPECT_EQ(server.stats().cache_hits, 2u);
}

TEST_F(EmbellishServerTest, PirCacheEntriesAreSharedAcrossSessions) {
  // PIR answers are session-independent (the modulus travels inside the
  // payload; no registered key is touched), so the cache keys them
  // globally: a second session replaying the same payload hits the first
  // session's entry, and the response frame is re-addressed to it.
  EmbellishServerOptions options;
  options.cache_capacity = 64;
  EmbellishServer server(&built_.index, &org_, nullptr, options);

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[17]);
  ASSERT_TRUE(slot.ok());
  Rng rng(971);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto query = pir_client.BuildQuery(slot->slot,
                                     org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(query.ok());
  auto payload = EncodePirQuery(slot->bucket, *query);

  auto first = server.HandleFrame(EncodeFrame(FrameKind::kPirQuery, 9,
                                              payload));
  EXPECT_EQ(server.stats().cache_hits, 0u);
  auto second = server.HandleFrame(EncodeFrame(FrameKind::kPirQuery, 10,
                                               payload));
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // Same answer bytes, each frame addressed to its own session.
  auto first_frame = DecodeFrame(first);
  auto second_frame = DecodeFrame(second);
  ASSERT_TRUE(first_frame.ok() && second_frame.ok());
  EXPECT_EQ(first_frame->kind, FrameKind::kPirResult);
  EXPECT_EQ(second_frame->kind, FrameKind::kPirResult);
  EXPECT_EQ(first_frame->session_id, 9u);
  EXPECT_EQ(second_frame->session_id, 10u);
  EXPECT_EQ(first_frame->payload, second_frame->payload);

  // PR entries, by contrast, stay session- and epoch-scoped: replaying one
  // session's query bytes under another session id misses (and fails — the
  // ciphertexts are not valid under the other session's key).
  SessionClient alice = MakeClient(11, 311);
  SessionClient bob = MakeClient(12, 312);
  server.HandleFrame(alice.HelloFrame());
  server.HandleFrame(bob.HelloFrame());
  auto alice_request = alice.QueryFrame(SomeTerms(7, 13));
  ASSERT_TRUE(alice_request.ok());
  server.HandleFrame(*alice_request);
  auto alice_req_frame = DecodeFrame(*alice_request);
  ASSERT_TRUE(alice_req_frame.ok());
  auto replayed = server.HandleFrame(
      EncodeFrame(FrameKind::kQuery, 12, alice_req_frame->payload));
  EXPECT_EQ(server.stats().cache_hits, 1u);  // no PR cross-session hit
  auto replay_frame = DecodeFrame(replayed);
  ASSERT_TRUE(replay_frame.ok());
  EXPECT_NE(replayed, server.HandleFrame(*alice_request));
}

TEST_F(EmbellishServerTest, TopKThroughTheLoopMatchesEvaluateFull) {
  // The plaintext top-k path answers with the full-accumulation prefix on
  // every configuration, so monolithic and sharded servers produce
  // byte-identical frames.
  EmbellishServer mono(&built_.index, &org_, nullptr);
  EmbellishServerOptions shard_options;
  shard_options.shard_count = 3;
  EmbellishServer sharded(&built_.index, &org_, nullptr, shard_options);

  auto genuine = SomeTerms(5, 23);
  auto request = EncodeFrame(FrameKind::kTopKQuery, 6,
                             EncodeTopKQuery(10, genuine));
  auto mono_resp = mono.HandleFrame(request);
  auto sharded_resp = sharded.HandleFrame(request);
  EXPECT_EQ(mono_resp, sharded_resp);

  auto frame = DecodeFrame(mono_resp);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->kind, FrameKind::kTopKResult);
  auto docs = DecodeTopKResult(frame->payload);
  ASSERT_TRUE(docs.ok());
  auto expected = index::EvaluateFull(built_.index, genuine);
  if (expected.size() > 10) expected.resize(10);
  EXPECT_EQ(*docs, expected);
  EXPECT_EQ(mono.stats().topk_queries, 1u);

  // Top-k shares the global cache keying: a different session replaying the
  // payload hits, re-addressed.
  auto other = mono.HandleFrame(EncodeFrame(FrameKind::kTopKQuery, 7,
                                            EncodeTopKQuery(10, genuine)));
  EXPECT_EQ(mono.stats().cache_hits, 1u);
  auto other_frame = DecodeFrame(other);
  ASSERT_TRUE(other_frame.ok());
  EXPECT_EQ(other_frame->session_id, 7u);
  EXPECT_EQ(other_frame->payload, frame->payload);

  // Malformed top-k payloads are answered, not fatal.
  auto hostile = mono.HandleFrame(
      EncodeFrame(FrameKind::kTopKQuery, 6, {1, 2, 3}));
  auto hostile_frame = DecodeFrame(hostile);
  ASSERT_TRUE(hostile_frame.ok());
  EXPECT_EQ(hostile_frame->kind, FrameKind::kError);
}

TEST_F(EmbellishServerTest, IdleSessionSweepBoundsKeyMemory) {
  // A registration storm of throwaway ids must not pin Benaloh keys
  // forever: idle sessions expire after session_idle_frames, so the table
  // stays bounded AND a genuine new session can register once the dead
  // entries age out — while active sessions survive the sweep.
  EmbellishServerOptions options;
  options.max_sessions = 4;
  options.session_idle_frames = 8;
  EmbellishServer server(&built_.index, &org_, nullptr, options);

  std::vector<SessionClient> storm;
  for (size_t s = 0; s < 4; ++s) {
    storm.push_back(MakeClient(100 + s, 900 + s));
    auto frame = DecodeFrame(server.HandleFrame(storm.back().HelloFrame()));
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->kind, FrameKind::kHelloOk);
  }
  EXPECT_EQ(server.session_count(), 4u);

  // Table full, nothing idle yet: a fresh id is refused.
  SessionClient late = MakeClient(200, 950);
  auto refused = DecodeFrame(server.HandleFrame(late.HelloFrame()));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->kind, FrameKind::kError);

  // Keep session 100 active while the logical clock runs past the idle
  // horizon for the other three. Deliberately NOT kQuery frames: any
  // decodable frame naming the session counts as activity — a session
  // streaming only top-k (or PIR) traffic must not lose its registered key
  // mid-stream — and even a payload that fails to decode already proved
  // the session alive.
  for (size_t i = 0; i < 12; ++i) {
    server.HandleFrame(EncodeFrame(FrameKind::kTopKQuery, 100, {1, 2, 3}));
  }

  // Now the fresh id's hello sweeps the idle sessions and succeeds.
  auto admitted = DecodeFrame(server.HandleFrame(late.HelloFrame()));
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->kind, FrameKind::kHelloOk);
  EXPECT_LE(server.session_count(), 4u);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_expired, 3u);

  // The active session survived; an expired one must re-hello.
  auto active_query = storm[0].QueryFrame(SomeTerms(3, 9));
  ASSERT_TRUE(active_query.ok());
  EXPECT_TRUE(
      storm[0].DecodeResultFrame(server.HandleFrame(*active_query), 5).ok());
  auto expired_query = storm[1].QueryFrame(SomeTerms(4, 11));
  ASSERT_TRUE(expired_query.ok());
  auto expired_result = storm[1].DecodeResultFrame(
      server.HandleFrame(*expired_query), 5);
  ASSERT_FALSE(expired_result.ok());
  EXPECT_TRUE(expired_result.status().IsFailedPrecondition());
}

TEST_F(EmbellishServerTest, SliceServerServesOneShardsDocuments) {
  // A slice server's PR answers cover exactly its slice's documents, and
  // merging every slice's candidates reproduces the monolithic response —
  // the property the remote-shard coordinator is built on.
  constexpr size_t kSlices = 3;
  SessionClient client = MakeClient(31, 931);
  auto request = client.QueryFrame(SomeTerms(7, 29));
  ASSERT_TRUE(request.ok());

  EmbellishServer mono(&built_.index, &org_, nullptr);
  mono.HandleFrame(client.HelloFrame());
  auto mono_frame = DecodeFrame(mono.HandleFrame(*request));
  ASSERT_TRUE(mono_frame.ok());
  auto mono_result = core::DecodeResult(mono_frame->payload,
                                        client.public_key());
  ASSERT_TRUE(mono_result.ok());

  std::vector<core::EncryptedResult> partial;
  for (size_t s = 0; s < kSlices; ++s) {
    EmbellishServerOptions options;
    options.shard_slice = s;
    options.shard_slice_count = kSlices;
    EmbellishServer slice(&built_.index, &org_, nullptr, options);
    ASSERT_TRUE(slice.serves_slice());
    // The slice advertises itself monolithic; the coordinator owns the
    // global topology.
    auto hello = DecodeFrame(slice.HandleFrame(client.HelloFrame()));
    ASSERT_TRUE(hello.ok());
    auto topology = DecodeHelloOk(hello->payload);
    ASSERT_TRUE(topology.ok());
    EXPECT_EQ(topology->shard_count, 1u);
    auto frame = DecodeFrame(slice.HandleFrame(*request));
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(frame->kind, FrameKind::kResult);
    auto result = core::DecodeResult(frame->payload, client.public_key());
    ASSERT_TRUE(result.ok());
    partial.push_back(std::move(*result));
  }
  core::EncryptedResult merged = core::MergeShardResults(std::move(partial));
  ASSERT_EQ(merged.candidates.size(), mono_result->candidates.size());
  EXPECT_EQ(core::EncodeResult(merged, client.public_key()),
            core::EncodeResult(*mono_result, client.public_key()));

  // An invalid slice configuration falls back to serving the full index.
  EmbellishServerOptions invalid;
  invalid.shard_slice = 9;
  invalid.shard_slice_count = 3;
  EmbellishServer fallback(&built_.index, &org_, nullptr, invalid);
  EXPECT_FALSE(fallback.serves_slice());
}

TEST_F(EmbellishServerTest, ByteBudgetBoundsTheCache) {
  // Keys embed attacker-controlled request payloads, so the byte budget —
  // not the entry count — is what bounds pinned memory.
  ResponseCache cache(/*capacity=*/1024, /*max_total_bytes=*/100);
  std::vector<uint8_t> out;

  // One entry bigger than the whole budget is never cached.
  cache.Put(std::string(80, 'k'), std::vector<uint8_t>(80, 9));
  EXPECT_EQ(cache.size(), 0u);

  // Entries within budget accumulate until the budget forces eviction
  // (keys count twice: they are resident in both the LRU list and the
  // index map, so each entry below charges 2*10 + 20 = 40 bytes).
  cache.Put(std::string(10, 'a'), std::vector<uint8_t>(20, 1));  // 40 B
  cache.Put(std::string(10, 'b'), std::vector<uint8_t>(20, 2));  // 80 B
  EXPECT_EQ(cache.size(), 2u);
  cache.Put(std::string(10, 'c'), std::vector<uint8_t>(20, 3));  // 120 -> evict
  EXPECT_LE(cache.total_bytes(), 100u);
  EXPECT_FALSE(cache.Get(std::string(10, 'a'), &out));  // LRU victim
  EXPECT_TRUE(cache.Get(std::string(10, 'b'), &out));
  EXPECT_TRUE(cache.Get(std::string(10, 'c'), &out));
}

TEST_F(EmbellishServerTest, LruEvictionBoundsTheCache) {
  ResponseCache cache(2);
  cache.Put("a", {1});
  cache.Put("b", {2});
  cache.Put("c", {3});  // evicts "a"
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("b", &out));
  EXPECT_EQ(out, std::vector<uint8_t>{2});
  cache.Put("d", {4});  // "c" is now least recent -> evicted
  EXPECT_FALSE(cache.Get("c", &out));
  EXPECT_TRUE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("d", &out));
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace embellish::server
