// Coordinator fault injection: under every FaultyTransport schedule —
// dropped, truncated, bit-flipped, reordered and delayed response frames,
// plus seeded random fault storms — the coordinator must answer the
// affected request with a typed error frame (or, for benign delays, the
// correct bytes), never hang, never crash, and never return a wrong merged
// result; requests that do not touch the faulted shard are unaffected.

#include <gtest/gtest.h>

#include <atomic>

#include "core/wire_format.h"
#include "index/builder.h"
#include "server/session_client.h"
#include "server/shard_coordinator.h"
#include "testutil.h"

namespace embellish::server {
namespace {

class CoordinatorFaultTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 3;

  CoordinatorFaultTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 211)),
        corp_(testutil::SmallCorpus(lex_, 150, 212)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)),
        mono_(&built_.index, &org_, nullptr) {
    for (size_t s = 0; s < kShards; ++s) {
      EmbellishServerOptions options;
      options.shard_slice = s;
      options.shard_slice_count = kShards;
      slices_.push_back(std::make_unique<EmbellishServer>(&built_.index,
                                                          &org_, nullptr,
                                                          options));
      endpoints_.push_back(
          std::make_unique<ShardEndpoint>(slices_.back().get(), s));
      inner_transports_.push_back(
          std::make_unique<InProcessTransport>(endpoints_.back().get()));
    }
  }

  // A coordinator whose shard `faulty_shard` runs `options`-scheduled
  // faults; the other shards get clean transports. Passing kShards faults
  // every shard. The coordinator is handshaken before faults start, so
  // schedules apply to request traffic only (the handshake ping would
  // otherwise consume entry 0).
  std::unique_ptr<ShardCoordinator> MakeCoordinator(
      size_t faulty_shard, FaultyTransportOptions options) {
    faulty_.clear();
    std::vector<ShardTransport*> raw;
    for (size_t s = 0; s < kShards; ++s) {
      if (s == faulty_shard || faulty_shard == kShards) {
        FaultyTransportOptions padded = options;
        if (!padded.schedule.empty()) {
          // Entry 0 covers the handshake ping.
          padded.schedule.insert(padded.schedule.begin(),
                                 TransportFault::kNone);
        }
        faulty_.push_back(std::make_unique<FaultyTransport>(
            inner_transports_[s].get(), std::move(padded)));
        raw.push_back(faulty_.back().get());
      } else {
        raw.push_back(inner_transports_[s].get());
      }
    }
    auto coordinator = std::make_unique<ShardCoordinator>(raw);
    if (!options.schedule.empty()) {
      EXPECT_TRUE(coordinator->Handshake().ok());
    }
    // Fuzz mode (fault_rate > 0) may eat the handshake pings themselves;
    // the coordinator retries lazily on each request, which is part of
    // what the storm test exercises.
    return coordinator;
  }

  SessionClient MakeClient(uint64_t session_id, uint64_t seed) {
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    return std::move(SessionClient::Create(session_id, &org_, ko, seed))
        .value();
  }

  std::vector<wordnet::TermId> SomeTerms(size_t a, size_t b) {
    auto terms = built_.index.IndexedTerms();
    return {terms[a % terms.size()], terms[b % terms.size()]};
  }

  // Asserts `response` is a well-formed kError frame carrying a typed,
  // decodable status, and returns it.
  static Status RequireTypedError(const std::vector<uint8_t>& response) {
    auto frame = DecodeFrame(response);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return Status::Internal("undecodable response");
    EXPECT_EQ(frame->kind, FrameKind::kError);
    Status transported;
    EXPECT_TRUE(DecodeError(frame->payload, &transported).ok());
    EXPECT_FALSE(transported.ok());
    return transported;
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  core::BucketOrganization org_;
  EmbellishServer mono_;
  std::vector<std::unique_ptr<EmbellishServer>> slices_;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints_;
  std::vector<std::unique_ptr<InProcessTransport>> inner_transports_;
  std::vector<std::unique_ptr<FaultyTransport>> faulty_;
};

TEST_F(CoordinatorFaultTest, EachFaultKindYieldsTypedErrorThenRecovers) {
  SessionClient client = MakeClient(1, 601);
  mono_.HandleFrame(client.HelloFrame());
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());
  const std::vector<uint8_t> reference = mono_.HandleFrame(*request);

  for (TransportFault fault :
       {TransportFault::kDrop, TransportFault::kTruncate,
        TransportFault::kBitFlip, TransportFault::kReorder}) {
    SCOPED_TRACE(static_cast<int>(fault));
    FaultyTransportOptions options;
    // hello (clean), faulted query, then clean recovery.
    options.schedule = {TransportFault::kNone, fault};
    auto coordinator = MakeCoordinator(/*faulty_shard=*/1, options);

    ASSERT_EQ(DecodeFrame(coordinator->HandleFrame(client.HelloFrame()))
                  ->kind,
              FrameKind::kHelloOk);
    Status error = RequireTypedError(coordinator->HandleFrame(*request));
    EXPECT_TRUE(error.IsUnavailable()) << error.ToString();
    EXPECT_EQ(faulty_[0]->faults_injected(), 1u);

    // The fault window is over: the same request now merges bit-identically
    // to the monolithic server. No poisoned state survives.
    EXPECT_EQ(coordinator->HandleFrame(*request), reference);
    CoordinatorStats stats = coordinator->stats();
    EXPECT_EQ(stats.shard_failures, 1u);
  }
}

TEST_F(CoordinatorFaultTest, DelayIsNotAnError) {
  SessionClient client = MakeClient(2, 602);
  mono_.HandleFrame(client.HelloFrame());
  auto request = client.QueryFrame(SomeTerms(5, 9));
  ASSERT_TRUE(request.ok());

  FaultyTransportOptions options;
  options.schedule = {TransportFault::kNone, TransportFault::kDelay};
  options.delay_ms = 5;
  auto coordinator = MakeCoordinator(/*faulty_shard=*/0, options);
  coordinator->HandleFrame(client.HelloFrame());
  // A bounded delay changes only the clock, never the bytes.
  EXPECT_EQ(coordinator->HandleFrame(*request), mono_.HandleFrame(*request));
  EXPECT_EQ(coordinator->stats().shard_failures, 0u);
}

TEST_F(CoordinatorFaultTest, HealthyShardRequestsAreUnaffected) {
  // While shard 1's transport eats every response, PIR requests addressed
  // to the other shards keep answering normally.
  FaultyTransportOptions options;
  options.schedule = {TransportFault::kDrop};
  options.cycle = true;
  auto coordinator = MakeCoordinator(/*faulty_shard=*/1, options);

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[29]);
  ASSERT_TRUE(slot.ok());
  Rng rng(611);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto query = pir_client.BuildQuery(slot->slot,
                                     org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(query.ok());

  for (size_t shard : {0u, 2u}) {
    auto request = EncodeFrame(
        FrameKind::kPirQuery, 12,
        EncodePirQuery(coordinator->PirBucketField(shard, slot->bucket),
                       *query));
    auto frame = DecodeFrame(coordinator->HandleFrame(request));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->kind, FrameKind::kPirResult) << "shard " << shard;
  }
  // The faulted shard's PIR requests error, typed.
  auto dead = EncodeFrame(
      FrameKind::kPirQuery, 12,
      EncodePirQuery(coordinator->PirBucketField(1, slot->bucket), *query));
  Status error = RequireTypedError(coordinator->HandleFrame(dead));
  EXPECT_TRUE(error.IsUnavailable());
}

TEST_F(CoordinatorFaultTest, ReorderedResponsesNeverMisMerge) {
  // Two reordered round trips deliver each other's responses; the seq echo
  // must catch the swap — both answers are typed errors or correct bytes,
  // never a merge over the wrong shard response.
  SessionClient client = MakeClient(3, 603);
  mono_.HandleFrame(client.HelloFrame());
  auto request_a = client.QueryFrame(SomeTerms(2, 4));
  auto request_b = client.QueryFrame(SomeTerms(11, 19));
  ASSERT_TRUE(request_a.ok() && request_b.ok());
  const auto reference_a = mono_.HandleFrame(*request_a);
  const auto reference_b = mono_.HandleFrame(*request_b);

  FaultyTransportOptions options;
  options.schedule = {TransportFault::kNone, TransportFault::kReorder,
                      TransportFault::kReorder};
  auto coordinator = MakeCoordinator(/*faulty_shard=*/2, options);
  coordinator->HandleFrame(client.HelloFrame());

  for (const auto& [request, reference] :
       {std::pair(&*request_a, &reference_a),
        std::pair(&*request_b, &reference_b)}) {
    auto response = coordinator->HandleFrame(*request);
    if (response == *reference) continue;  // delivered in time after all
    Status error = RequireTypedError(response);
    EXPECT_TRUE(error.IsUnavailable()) << error.ToString();
  }
  // Clean afterwards.
  EXPECT_EQ(coordinator->HandleFrame(*request_a), reference_a);
}

TEST_F(CoordinatorFaultTest, SeededFaultStormNeverCorruptsAnswers) {
  // Fuzz mode: every shard's transport injects seeded random faults on ~35%
  // of round trips across a mixed PR / PIR / top-k workload. Every response
  // must be either bit-identical to the reference answer — an in-process
  // sharded server fed the same bytes — or a well-formed typed error frame.
  EmbellishServerOptions ref_options;
  ref_options.shard_count = kShards;
  EmbellishServer reference(&built_.index, &org_, nullptr, ref_options);

  SessionClient client = MakeClient(4, 604);
  reference.HandleFrame(client.HelloFrame());

  FaultyTransportOptions options;
  options.fault_rate = 0.35;
  options.seed = 977;
  options.delay_ms = 1;
  auto coordinator = MakeCoordinator(/*faulty_shard=*/kShards, options);

  // Register the session, retrying through the storm (registration itself
  // may be eaten; the loop proves hellos are also hang- and crash-free).
  bool registered = false;
  for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
    auto frame = DecodeFrame(coordinator->HandleFrame(client.HelloFrame()));
    ASSERT_TRUE(frame.ok());
    registered = frame->kind == FrameKind::kHelloOk;
    if (!registered) ASSERT_EQ(frame->kind, FrameKind::kError);
  }
  ASSERT_TRUE(registered);

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[17]);
  ASSERT_TRUE(slot.ok());
  Rng rng(612);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto pir_query = pir_client.BuildQuery(
      slot->slot, org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(pir_query.ok());

  size_t clean = 0, errored = 0;
  for (size_t round = 0; round < 10; ++round) {
    auto pr_request = client.QueryFrame(SomeTerms(2, 4));
    ASSERT_TRUE(pr_request.ok());
    std::vector<std::vector<uint8_t>> requests{
        *pr_request,
        EncodeFrame(FrameKind::kPirQuery, 4,
                    EncodePirQuery(coordinator->PirBucketField(
                                       round % kShards, slot->bucket),
                                   *pir_query)),
        EncodeFrame(FrameKind::kTopKQuery, 4,
                    EncodeTopKQuery(10, SomeTerms(2, 4)))};
    for (const auto& request : requests) {
      auto response = coordinator->HandleFrame(request);
      if (response == reference.HandleFrame(request)) {
        ++clean;
      } else {
        Status error = RequireTypedError(response);
        EXPECT_FALSE(error.ok());
        ++errored;
      }
    }
  }
  // The storm actually exercised both paths.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(errored, 0u);
  size_t injected = 0;
  for (const auto& f : faulty_) injected += f->faults_injected();
  EXPECT_GT(injected, 0u);
}

// A transport whose peer can be killed mid-test.
class KillableTransport : public ShardTransport {
 public:
  explicit KillableTransport(ShardTransport* inner) : inner_(inner) {}
  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override {
    if (dead_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("replica killed");
    }
    return inner_->RoundTrip(request);
  }
  void Kill() { dead_.store(true, std::memory_order_relaxed); }

 private:
  ShardTransport* inner_;  // not owned
  std::atomic<bool> dead_{false};
};

TEST_F(CoordinatorFaultTest, ReplicatedStormWithMidRunKillStaysSound) {
  // The full stack at once: two replicas per slice, seeded random faults on
  // ~35% of every replica's round trips, hedging armed, retry/failover on,
  // degraded mode opted in — and halfway through, replica 0 of every slice
  // is killed outright. Every answer must be bit-identical to the healthy
  // reference, a well-formed degraded partial naming its missing slices, or
  // a typed error. Never a hang, never a silent wrong merge.
  EmbellishServerOptions ref_options;
  ref_options.shard_count = kShards;
  EmbellishServer reference(&built_.index, &org_, nullptr, ref_options);

  // Replica 1: a second, independent server per slice.
  std::vector<std::unique_ptr<EmbellishServer>> slices2;
  std::vector<std::unique_ptr<ShardEndpoint>> endpoints2;
  std::vector<std::unique_ptr<InProcessTransport>> transports2;
  for (size_t s = 0; s < kShards; ++s) {
    EmbellishServerOptions options;
    options.shard_slice = s;
    options.shard_slice_count = kShards;
    slices2.push_back(std::make_unique<EmbellishServer>(&built_.index, &org_,
                                                        nullptr, options));
    endpoints2.push_back(
        std::make_unique<ShardEndpoint>(slices2.back().get(), s));
    transports2.push_back(
        std::make_unique<InProcessTransport>(endpoints2.back().get()));
  }

  // Both replicas of every slice run the fault storm; replica 0 is
  // additionally killable.
  std::vector<std::unique_ptr<FaultyTransport>> storm_faulty;
  std::vector<std::unique_ptr<KillableTransport>> killable;
  std::vector<std::vector<ShardTransport*>> groups(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    FaultyTransportOptions fo;
    fo.fault_rate = 0.35;
    fo.delay_ms = 1;
    fo.seed = 8000 + s;
    storm_faulty.push_back(std::make_unique<FaultyTransport>(
        inner_transports_[s].get(), fo));
    killable.push_back(
        std::make_unique<KillableTransport>(storm_faulty.back().get()));
    groups[s].push_back(killable.back().get());
    fo.seed = 9000 + s;
    storm_faulty.push_back(std::make_unique<FaultyTransport>(
        transports2[s].get(), fo));
    groups[s].push_back(storm_faulty.back().get());
  }

  ShardCoordinatorOptions options;
  options.max_attempts = 2;
  options.hedge_delay_ms = 0;
  options.allow_partial_results = true;
  ThreadPool pool(3);
  ShardCoordinator coordinator(groups, options, &pool);

  SessionClient client = MakeClient(9, 609);
  reference.HandleFrame(client.HelloFrame());
  bool registered = false;
  for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
    auto frame = DecodeFrame(coordinator.HandleFrame(client.HelloFrame()));
    ASSERT_TRUE(frame.ok());
    registered = frame->kind == FrameKind::kHelloOk;
    if (!registered) ASSERT_EQ(frame->kind, FrameKind::kError);
  }
  ASSERT_TRUE(registered);

  auto terms = built_.index.IndexedTerms();
  auto slot = org_.Locate(terms[17]);
  ASSERT_TRUE(slot.ok());
  Rng rng(613);
  crypto::PirClient pir_client =
      std::move(crypto::PirClient::Create(256, &rng)).value();
  auto pir_query = pir_client.BuildQuery(
      slot->slot, org_.bucket(slot->bucket).size(), &rng);
  ASSERT_TRUE(pir_query.ok());

  size_t clean = 0, degraded = 0, errored = 0;
  for (size_t round = 0; round < 10; ++round) {
    if (round == 5) {
      for (auto& k : killable) k->Kill();  // replica 0 of every slice dies
    }
    auto pr_request = client.QueryFrame(SomeTerms(2, 4));
    ASSERT_TRUE(pr_request.ok());
    std::vector<std::vector<uint8_t>> requests{
        *pr_request,
        EncodeFrame(FrameKind::kPirQuery, 9,
                    EncodePirQuery(coordinator.PirBucketField(
                                       round % kShards, slot->bucket),
                                   *pir_query)),
        EncodeFrame(FrameKind::kTopKQuery, 9,
                    EncodeTopKQuery(10, SomeTerms(2, 4)))};
    for (const auto& request : requests) {
      const std::vector<uint8_t> ref = reference.HandleFrame(request);
      const std::vector<uint8_t> response = coordinator.HandleFrame(request);
      if (response == ref) {
        ++clean;
        continue;
      }
      auto frame = DecodeFrame(response);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      if (frame->kind == FrameKind::kDegradedResult) {
        // A degraded answer must carry a well-formed marker and a payload
        // that decodes under the matching inner kind.
        auto partial = DecodeDegradedResult(frame->payload);
        ASSERT_TRUE(partial.ok()) << partial.status().ToString();
        EXPECT_FALSE(partial->missing.empty());
        EXPECT_LT(partial->missing.back(), kShards);
        if (partial->inner_kind == FrameKind::kResult) {
          EXPECT_TRUE(core::DecodeResult(partial->inner_payload,
                                         client.public_key())
                          .ok());
        } else {
          ASSERT_EQ(partial->inner_kind, FrameKind::kTopKResult);
          EXPECT_TRUE(DecodeTopKResult(partial->inner_payload).ok());
        }
        ++degraded;
        continue;
      }
      Status error = RequireTypedError(response);
      EXPECT_FALSE(error.ok());
      ++errored;
    }
  }
  // The storm exercised the paths it was built to exercise.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(degraded + errored, 0u);
  size_t injected = 0;
  for (const auto& f : storm_faulty) injected += f->stats().total();
  EXPECT_GT(injected, 0u);
}

TEST_F(CoordinatorFaultTest, FaultKindCountersMatchInjection) {
  // The per-kind counters let this suite assert which fault class actually
  // fired instead of trusting the seed: a scheduled truncate shows up as
  // exactly one truncation, nothing else.
  SessionClient client = MakeClient(10, 610);
  auto request = client.QueryFrame(SomeTerms(3, 71));
  ASSERT_TRUE(request.ok());

  FaultyTransportOptions options;
  options.schedule = {TransportFault::kNone, TransportFault::kTruncate,
                      TransportFault::kDrop};
  auto coordinator = MakeCoordinator(/*faulty_shard=*/1, options);
  coordinator->HandleFrame(client.HelloFrame());
  coordinator->HandleFrame(*request);  // eats the truncate
  coordinator->HandleFrame(*request);  // eats the drop
  FaultyTransportStats stats = faulty_[0]->stats();
  EXPECT_EQ(stats.truncations, 1u);
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.bit_flips, 0u);
  EXPECT_EQ(stats.reorders, 0u);
  EXPECT_EQ(stats.delays, 0u);
  EXPECT_EQ(stats.total(), faulty_[0]->faults_injected());
  // calls: handshake ping + hello + 2 faulted queries (+ the hello retry
  // traffic the schedule's kNone padding absorbed) — at least 4.
  EXPECT_GE(stats.calls, 4u);
}

}  // namespace
}  // namespace embellish::server
