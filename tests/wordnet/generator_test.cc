#include "wordnet/generator.h"

#include <gtest/gtest.h>

#include "core/specificity.h"
#include "wordnet/database.h"

namespace embellish::wordnet {
namespace {

WordNetDatabase Generate(size_t terms, uint64_t seed) {
  SyntheticWordNetOptions options;
  options.target_term_count = terms;
  options.seed = seed;
  auto db = GenerateSyntheticWordNet(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TEST(GeneratorTest, ValidatesOptions) {
  SyntheticWordNetOptions o;
  o.target_term_count = 10;
  EXPECT_FALSE(GenerateSyntheticWordNet(o).ok());
  o = SyntheticWordNetOptions{};
  o.max_depth = 1;
  EXPECT_FALSE(GenerateSyntheticWordNet(o).ok());
  o = SyntheticWordNetOptions{};
  o.antonym_prob = 1.5;
  EXPECT_FALSE(GenerateSyntheticWordNet(o).ok());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  auto a = Generate(2000, 5);
  auto b = Generate(2000, 5);
  ASSERT_EQ(a.term_count(), b.term_count());
  ASSERT_EQ(a.synset_count(), b.synset_count());
  for (TermId t = 0; t < a.term_count(); t += 97) {
    EXPECT_EQ(a.term(t).text, b.term(t).text);
  }
  auto c = Generate(2000, 6);
  EXPECT_NE(a.term(100).text, c.term(100).text);
}

TEST(GeneratorTest, HitsTargetScaleApproximately) {
  auto db = Generate(20000, 1);
  EXPECT_NEAR(static_cast<double>(db.term_count()), 20000.0, 20000.0 * 0.08);
  // WordNet's distinct-terms / synsets ratio is ~1.43.
  double ratio = static_cast<double>(db.term_count()) /
                 static_cast<double>(db.synset_count());
  EXPECT_NEAR(ratio, 1.43, 0.12);
}

TEST(GeneratorTest, PassesStructuralValidation) {
  auto db = Generate(5000, 2);
  EXPECT_TRUE(ValidateDatabase(db).ok());
}

TEST(GeneratorTest, SingleRootNamedEntity) {
  auto db = Generate(3000, 3);
  size_t roots = 0;
  for (SynsetId s = 0; s < db.synset_count(); ++s) {
    if (db.IsHypernymRoot(s)) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  TermId entity = db.FindTerm("entity");
  ASSERT_NE(entity, kInvalidTermId);
  EXPECT_TRUE(db.IsHypernymRoot(db.term(entity).synsets[0]));
}

TEST(GeneratorTest, DepthDistributionMatchesFigure2Shape) {
  auto db = Generate(30000, 4);
  auto spec = core::SpecificityMap::FromHypernymDepth(db);
  auto hist = spec.TermHistogram();
  ASSERT_GE(hist.size(), 15u);
  // Mode at 7 with roughly a third of the terms (Figure 2).
  size_t mode = 0;
  for (size_t d = 1; d < hist.size(); ++d) {
    if (hist[d] > hist[mode]) mode = d;
  }
  EXPECT_EQ(mode, 7u);
  double mode_frac = static_cast<double>(hist[7]) /
                     static_cast<double>(db.term_count());
  EXPECT_GT(mode_frac, 0.22);
  EXPECT_LT(mode_frac, 0.42);
  // Head of the distribution is nearly empty, like the paper's.
  EXPECT_LE(hist[0], 2u);
  EXPECT_LE(hist[1], 8u);
  // Specificity range tops out at 18.
  EXPECT_LE(spec.max_specificity(), 18);
  EXPECT_GE(spec.max_specificity(), 14);
}

TEST(GeneratorTest, PolysemyExists) {
  auto db = Generate(10000, 5);
  size_t polysemous = 0;
  for (TermId t = 0; t < db.term_count(); ++t) {
    if (db.term(t).synsets.size() > 1) ++polysemous;
  }
  // A noticeable fraction of terms carry multiple senses.
  EXPECT_GT(polysemous, db.term_count() / 50);
}

TEST(GeneratorTest, SynonymyExists) {
  auto db = Generate(10000, 6);
  size_t multi_word_synsets = 0;
  for (SynsetId s = 0; s < db.synset_count(); ++s) {
    if (db.synset(s).terms.size() > 1) ++multi_word_synsets;
  }
  EXPECT_GT(multi_word_synsets, db.synset_count() / 4);
}

TEST(GeneratorTest, AllRelationTypesPresent) {
  auto db = Generate(10000, 7);
  size_t counts[kNumRelationTypes] = {};
  for (SynsetId s = 0; s < db.synset_count(); ++s) {
    for (const Relation& r : db.synset(s).relations) {
      ++counts[static_cast<int>(r.type)];
    }
  }
  for (int i = 0; i < kNumRelationTypes; ++i) {
    EXPECT_GT(counts[i], 0u) << RelationTypeName(static_cast<RelationType>(i));
  }
  // Hierarchy edges dominate, as in WordNet.
  EXPECT_GT(counts[static_cast<int>(RelationType::kHypernym)],
            counts[static_cast<int>(RelationType::kAntonym)]);
}

TEST(GeneratorTest, CollocationsMintedForSomeSynsets) {
  auto db = Generate(10000, 8);
  size_t compounds = 0;
  for (TermId t = 0; t < db.term_count(); ++t) {
    if (db.term(t).text.find(' ') != std::string::npos) ++compounds;
  }
  EXPECT_GT(compounds, db.term_count() / 50);
}

TEST(Figure2WeightsTest, ProfileShape) {
  const double* w = Figure2DepthWeights();
  // Mode at depth 7.
  for (size_t d = 0; d < kFigure2DepthCount; ++d) {
    if (d != 7) EXPECT_LT(w[d], w[7]) << d;
  }
  // Monotone rise to the mode, monotone fall after.
  for (size_t d = 1; d <= 7; ++d) EXPECT_GE(w[d], w[d - 1]);
  for (size_t d = 8; d < kFigure2DepthCount; ++d) EXPECT_LE(w[d], w[d - 1]);
}

}  // namespace
}  // namespace embellish::wordnet
