#include "wordnet/mini_wordnet.h"

#include <gtest/gtest.h>

#include "core/specificity.h"

namespace embellish::wordnet {
namespace {

class MiniWordNetTest : public ::testing::Test {
 protected:
  MiniWordNetTest() : db_(std::move(BuildMiniWordNet()).value()) {}

  int Spec(const std::string& term) {
    auto spec = core::SpecificityMap::FromHypernymDepth(db_);
    TermId id = db_.FindTerm(term);
    EXPECT_NE(id, kInvalidTermId) << term;
    return spec.TermSpecificity(id);
  }

  WordNetDatabase db_;
};

TEST_F(MiniWordNetTest, ValidStructure) {
  EXPECT_TRUE(ValidateDatabase(db_).ok());
  EXPECT_GT(db_.term_count(), 150u);
  EXPECT_GT(db_.synset_count(), 140u);
}

TEST_F(MiniWordNetTest, ContainsThePapersRunningExamples) {
  for (const char* term :
       {"osteosarcoma", "amaranthaceae", "hypocapnia", "moustille",
        "terrorism", "abu sayyaf", "water", "soaked", "tissues", "radiation",
        "therapy", "yeast", "nitrogen", "accelerated", "saturn", "flooding",
        "threadmill"}) {
    EXPECT_NE(db_.FindTerm(term), kInvalidTermId) << term;
  }
}

// The paper's Section 3.4 bucket snippets quote these exact specificity
// values in parentheses; the mini lexicon reproduces every one of them.
TEST_F(MiniWordNetTest, SpecificityValuesMatchPaperSection34) {
  EXPECT_EQ(Spec("sir thomas wyatt"), 7);
  EXPECT_EQ(Spec("hypocapnia"), 6);
  EXPECT_EQ(Spec("ectozoon"), 7);
  EXPECT_EQ(Spec("fool's gold"), 6);
  EXPECT_EQ(Spec("love knot"), 10);
  EXPECT_EQ(Spec("mainspring"), 9);
  EXPECT_EQ(Spec("osteosarcoma"), 14);
  EXPECT_EQ(Spec("yellow-breasted bunting"), 14);
  EXPECT_EQ(Spec("huntsville"), 9);
  EXPECT_EQ(Spec("pigeon loft"), 7);
  EXPECT_EQ(Spec("brama"), 7);
  EXPECT_EQ(Spec("terrorism"), 9);
  EXPECT_EQ(Spec("smyrna"), 7);
  EXPECT_EQ(Spec("lut desert"), 6);
  EXPECT_EQ(Spec("acipenser"), 7);
  EXPECT_EQ(Spec("abu sayyaf"), 7);
  EXPECT_EQ(Spec("sign of the zodiac"), 5);
  EXPECT_EQ(Spec("amaranthaceae"), 8);
  EXPECT_EQ(Spec("american chestnut"), 11);
  EXPECT_EQ(Spec("family eschrichtiidae"), 7);
}

TEST_F(MiniWordNetTest, SynonymsShareSynsets) {
  TermId a = db_.FindTerm("osteosarcoma");
  TermId b = db_.FindTerm("osteogenic sarcoma");
  ASSERT_NE(a, kInvalidTermId);
  ASSERT_NE(b, kInvalidTermId);
  EXPECT_EQ(db_.term(a).synsets, db_.term(b).synsets);
  TermId c = db_.FindTerm("amaranthaceae");
  TermId d = db_.FindTerm("family amaranthaceae");
  TermId e = db_.FindTerm("amaranth family");
  EXPECT_EQ(db_.term(c).synsets, db_.term(d).synsets);
  EXPECT_EQ(db_.term(c).synsets, db_.term(e).synsets);
}

TEST_F(MiniWordNetTest, SectionOneSemanticClustersAreClose) {
  // 'hypercapnia' and 'hypocapnia' are antonym siblings.
  TermId hyper = db_.FindTerm("hypercapnia");
  TermId hypo = db_.FindTerm("hypocapnia");
  ASSERT_NE(hyper, kInvalidTermId);
  ASSERT_NE(hypo, kInvalidTermId);
  SynsetId hyper_s = db_.term(hyper).synsets[0];
  bool antonym_found = false;
  for (const Relation& r : db_.synset(hyper_s).relations) {
    if (r.type == RelationType::kAntonym &&
        r.target == db_.term(hypo).synsets[0]) {
      antonym_found = true;
    }
  }
  EXPECT_TRUE(antonym_found);
}

TEST_F(MiniWordNetTest, SarcomaSiblingsFromSection33Snippet) {
  // ...'myosarcoma', 'neurosarcoma', 'osteosarcoma', 'rhabdomyosarcoma'...
  TermId sarcoma = db_.FindTerm("sarcoma");
  ASSERT_NE(sarcoma, kInvalidTermId);
  SynsetId sarcoma_s = db_.term(sarcoma).synsets[0];
  auto hyponyms = db_.RelatedSynsets(sarcoma_s, RelationType::kHyponym);
  EXPECT_GE(hyponyms.size(), 4u);
}

TEST_F(MiniWordNetTest, DomainRelationsPresent) {
  TermId abu = db_.FindTerm("abu sayyaf");
  ASSERT_NE(abu, kInvalidTermId);
  auto domains = db_.RelatedSynsets(db_.term(abu).synsets[0],
                                    RelationType::kDomain);
  EXPECT_FALSE(domains.empty());
}

TEST_F(MiniWordNetTest, Deterministic) {
  auto again = BuildMiniWordNet();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->term_count(), db_.term_count());
  EXPECT_EQ(again->synset_count(), db_.synset_count());
  for (TermId t = 0; t < db_.term_count(); ++t) {
    EXPECT_EQ(again->term(t).text, db_.term(t).text);
  }
}

}  // namespace
}  // namespace embellish::wordnet
