#include "wordnet/text_format.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "wordnet/generator.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::wordnet {
namespace {

TEST(TextFormatTest, MiniWordNetRoundTrip) {
  auto db = BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  std::string text = SerializeDatabase(*db);
  auto parsed = ParseDatabase(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->term_count(), db->term_count());
  EXPECT_EQ(parsed->synset_count(), db->synset_count());
  for (TermId t = 0; t < db->term_count(); ++t) {
    EXPECT_EQ(parsed->term(t).text, db->term(t).text);
    EXPECT_EQ(parsed->term(t).synsets, db->term(t).synsets);
  }
  for (SynsetId s = 0; s < db->synset_count(); ++s) {
    EXPECT_EQ(parsed->synset(s).terms, db->synset(s).terms);
    EXPECT_EQ(parsed->synset(s).relations.size(),
              db->synset(s).relations.size());
  }
}

TEST(TextFormatTest, SyntheticRoundTrip) {
  SyntheticWordNetOptions options;
  options.target_term_count = 1500;
  options.seed = 3;
  auto db = GenerateSyntheticWordNet(options);
  ASSERT_TRUE(db.ok());
  auto parsed = ParseDatabase(SerializeDatabase(*db));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->term_count(), db->term_count());
  // Serialization is canonical: round-tripping twice is a fixed point.
  EXPECT_EQ(SerializeDatabase(*parsed), SerializeDatabase(*db));
}

TEST(TextFormatTest, RejectsBadHeader) {
  EXPECT_FALSE(ParseDatabase("").ok());
  EXPECT_FALSE(ParseDatabase("wrong-header 1\nterms 0\n").ok());
  EXPECT_FALSE(ParseDatabase("embellish-wordnet 1\nnonsense\n").ok());
}

TEST(TextFormatTest, RejectsTruncatedTermList) {
  EXPECT_FALSE(
      ParseDatabase("embellish-wordnet 1\nterms 3\nonlyone\n").ok());
}

TEST(TextFormatTest, RejectsBadSynsetReferences) {
  // Synset references term 9 but only 1 term exists.
  std::string text =
      "embellish-wordnet 1\nterms 1\nword\nsynsets 1\nS 9\n";
  auto parsed = ParseDatabase(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(TextFormatTest, RejectsBadRelations) {
  std::string base =
      "embellish-wordnet 1\nterms 2\na\nb\nsynsets 2\nS 0\nS 1\n";
  EXPECT_FALSE(ParseDatabase(base + "R 0 bogus 1\n").ok());
  EXPECT_FALSE(ParseDatabase(base + "R 0 hypernym 9\n").ok());
  EXPECT_FALSE(ParseDatabase(base + "X 0 hypernym 1\n").ok());
  // Missing inverse edge: validation must reject.
  EXPECT_FALSE(ParseDatabase(base + "R 0 hypernym 1\n").ok());
  // With both directions present it parses.
  EXPECT_TRUE(
      ParseDatabase(base + "R 0 hypernym 1\nR 1 hyponym 0\n").ok());
}

TEST(TextFormatTest, FileRoundTrip) {
  auto db = BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  std::string path = ::testing::TempDir() + "/mini_wordnet_rt.txt";
  ASSERT_TRUE(SaveDatabaseToFile(*db, path).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->term_count(), db->term_count());
  std::remove(path.c_str());
}

TEST(TextFormatTest, LoadRejectsMissingFile) {
  auto loaded = LoadDatabaseFromFile("/nonexistent/path/db.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIoError());
}

}  // namespace
}  // namespace embellish::wordnet
