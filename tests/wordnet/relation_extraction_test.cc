#include "wordnet/relation_extraction.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace embellish::wordnet {
namespace {

// A corpus where terms 0/1 always co-occur and 2/3 never do.
corpus::Corpus CooccurrenceCorpus() {
  std::vector<corpus::Document> docs;
  for (int i = 0; i < 40; ++i) {
    corpus::Document d1;
    d1.tokens = {0, 1, 4, 5, 0, 1};  // 0-1 together, with filler
    docs.push_back(d1);
    corpus::Document d2;
    d2.tokens = {2, 6, 7, 8};  // 2 without 3
    docs.push_back(d2);
    corpus::Document d3;
    d3.tokens = {3, 9, 10, 11};  // 3 without 2
    docs.push_back(d3);
  }
  return corpus::Corpus(std::move(docs));
}

TEST(RelationExtractionTest, OptionsValidation) {
  RelationExtractionOptions o;
  o.window = 1;
  EXPECT_FALSE(o.Validate().ok());
  o = RelationExtractionOptions{};
  o.min_strength = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RelationExtractionOptions{};
  o.min_strength = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RelationExtractionOptions{};
  o.min_cooccurrences = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = RelationExtractionOptions{};
  o.max_relations_per_term = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RelationExtractionTest, RejectsEmptyCorpus) {
  corpus::Corpus empty({});
  EXPECT_FALSE(ExtractRelationsFromCorpus(empty).ok());
}

TEST(RelationExtractionTest, FindsStrongPairMissesAbsentPair) {
  auto corp = CooccurrenceCorpus();
  auto relations = ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  bool found_01 = false;
  bool found_23 = false;
  for (const ExtractedRelation& rel : *relations) {
    if ((rel.a == 0 && rel.b == 1)) found_01 = true;
    if ((rel.a == 2 && rel.b == 3)) found_23 = true;
  }
  EXPECT_TRUE(found_01) << "systematic co-occurrence must be extracted";
  EXPECT_FALSE(found_23) << "never co-occurring terms must not relate";
}

TEST(RelationExtractionTest, StrengthsAreValidAndSorted) {
  auto corp = CooccurrenceCorpus();
  auto relations = ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(relations.ok());
  ASSERT_FALSE(relations->empty());
  for (size_t i = 0; i < relations->size(); ++i) {
    const ExtractedRelation& rel = (*relations)[i];
    EXPECT_GT(rel.strength, 0.0);
    EXPECT_LE(rel.strength, 1.0);
    EXPECT_LT(rel.a, rel.b) << "pairs must be canonical (a < b)";
    if (i > 0) {
      EXPECT_GE((*relations)[i - 1].strength, rel.strength);
    }
  }
}

TEST(RelationExtractionTest, PerTermDegreeCapHolds) {
  auto lex = testutil::SmallSyntheticLexicon(1500, 71);
  auto corp = testutil::SmallCorpus(lex, 200, 72);
  RelationExtractionOptions o;
  o.max_relations_per_term = 2;
  o.min_strength = 0.05;
  auto relations = ExtractRelationsFromCorpus(corp, o);
  ASSERT_TRUE(relations.ok());
  std::unordered_map<TermId, size_t> degree;
  for (const ExtractedRelation& rel : *relations) {
    ++degree[rel.a];
    ++degree[rel.b];
  }
  for (const auto& [term, d] : degree) {
    EXPECT_LE(d, 2u);
  }
}

TEST(RelationExtractionTest, MinStrengthFilters) {
  auto corp = CooccurrenceCorpus();
  RelationExtractionOptions strict;
  strict.min_strength = 0.9;
  RelationExtractionOptions loose;
  loose.min_strength = 0.05;
  auto strict_rels = ExtractRelationsFromCorpus(corp, strict);
  auto loose_rels = ExtractRelationsFromCorpus(corp, loose);
  ASSERT_TRUE(strict_rels.ok());
  ASSERT_TRUE(loose_rels.ok());
  EXPECT_LE(strict_rels->size(), loose_rels->size());
  for (const ExtractedRelation& rel : *strict_rels) {
    EXPECT_GE(rel.strength, 0.9);
  }
}

TEST(RelationExtractionTest, DeterministicOutput) {
  auto lex = testutil::SmallSyntheticLexicon(1200, 73);
  auto corp = testutil::SmallCorpus(lex, 150, 74);
  auto a = ExtractRelationsFromCorpus(corp);
  auto b = ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RelationExtractionTest, TopicalCorpusYieldsRelations) {
  // The synthetic corpus's topic structure creates real co-occurrence;
  // extraction should find a healthy number of associations.
  auto lex = testutil::SmallSyntheticLexicon(1500, 75);
  auto corp = testutil::SmallCorpus(lex, 300, 76);
  auto relations = ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(relations.ok());
  EXPECT_GT(relations->size(), 20u);
}

}  // namespace
}  // namespace embellish::wordnet
