#include "wordnet/builder.h"

#include <gtest/gtest.h>

namespace embellish::wordnet {
namespace {

TEST(BuilderTest, InternsTermsByText) {
  WordNetBuilder b;
  SynsetId s1 = b.AddSynset({"dog", "canine"});
  SynsetId s2 = b.AddSynset({"dog"});  // same text -> same term, new sense
  EXPECT_EQ(b.term_count(), 2u);
  EXPECT_EQ(b.synset_count(), 2u);
  (void)b.AddHypernym(s2, s1);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  TermId dog = db->FindTerm("dog");
  ASSERT_NE(dog, kInvalidTermId);
  EXPECT_EQ(db->term(dog).synsets.size(), 2u);  // polysemous
}

TEST(BuilderTest, DuplicateTermWithinSynsetCollapsed) {
  WordNetBuilder b;
  SynsetId s = b.AddSynset({"x", "x", "y"});
  SynsetId root = b.AddSynset({"entity"});
  (void)b.AddHypernym(s, root);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->synset(s).terms.size(), 2u);
}

TEST(BuilderTest, AddRelationInsertsInverse) {
  WordNetBuilder b;
  SynsetId parent = b.AddSynset({"animal"});
  SynsetId child = b.AddSynset({"dog"});
  ASSERT_TRUE(b.AddHypernym(child, parent).ok());
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto hypernyms = db->RelatedSynsets(child, RelationType::kHypernym);
  ASSERT_EQ(hypernyms.size(), 1u);
  EXPECT_EQ(hypernyms[0], parent);
  auto hyponyms = db->RelatedSynsets(parent, RelationType::kHyponym);
  ASSERT_EQ(hyponyms.size(), 1u);
  EXPECT_EQ(hyponyms[0], child);
}

TEST(BuilderTest, SymmetricRelationsGetSymmetricInverse) {
  WordNetBuilder b;
  SynsetId root = b.AddSynset({"entity"});
  SynsetId a = b.AddSynset({"hot"});
  SynsetId c = b.AddSynset({"cold"});
  (void)b.AddHypernym(a, root);
  (void)b.AddHypernym(c, root);
  ASSERT_TRUE(b.AddRelation(a, RelationType::kAntonym, c).ok());
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->RelatedSynsets(a, RelationType::kAntonym).size(), 1u);
  EXPECT_EQ(db->RelatedSynsets(c, RelationType::kAntonym).size(), 1u);
}

TEST(BuilderTest, RejectsSelfLoopAndDuplicates) {
  WordNetBuilder b;
  SynsetId a = b.AddSynset({"a"});
  SynsetId c = b.AddSynset({"b"});
  EXPECT_TRUE(b.AddRelation(a, RelationType::kAntonym, a).IsInvalidArgument());
  ASSERT_TRUE(b.AddRelation(a, RelationType::kAntonym, c).ok());
  EXPECT_TRUE(b.AddRelation(a, RelationType::kAntonym, c).IsInvalidArgument());
  EXPECT_TRUE(b.AddRelation(a, RelationType::kHypernym, 99).IsOutOfRange());
}

TEST(BuilderTest, BuildRejectsHypernymCycle) {
  WordNetBuilder b;
  SynsetId a = b.AddSynset({"a"});
  SynsetId c = b.AddSynset({"b"});
  (void)b.AddHypernym(a, c);
  (void)b.AddHypernym(c, a);
  auto db = std::move(b).Build();
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(BuilderTest, EmptyBuildRejected) {
  WordNetBuilder b;
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(InverseRelationTest, PairsAreMutuallyInverse) {
  for (int i = 0; i < kNumRelationTypes; ++i) {
    RelationType t = static_cast<RelationType>(i);
    EXPECT_EQ(InverseRelation(InverseRelation(t)), t);
  }
  EXPECT_EQ(InverseRelation(RelationType::kHypernym), RelationType::kHyponym);
  EXPECT_EQ(InverseRelation(RelationType::kHolonym), RelationType::kMeronym);
  EXPECT_EQ(InverseRelation(RelationType::kAntonym), RelationType::kAntonym);
  EXPECT_EQ(InverseRelation(RelationType::kDomain),
            RelationType::kDomainMember);
}

TEST(DatabaseTest, FindTermAndRoots) {
  WordNetBuilder b;
  SynsetId root = b.AddSynset({"entity"});
  SynsetId leaf = b.AddSynset({"dog"});
  (void)b.AddHypernym(leaf, root);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_NE(db->FindTerm("dog"), kInvalidTermId);
  EXPECT_EQ(db->FindTerm("nonexistent"), kInvalidTermId);
  EXPECT_TRUE(db->IsHypernymRoot(root));
  EXPECT_FALSE(db->IsHypernymRoot(leaf));
}

TEST(RelationTypeNameTest, AllNamed) {
  for (int i = 0; i < kNumRelationTypes; ++i) {
    RelationType t = static_cast<RelationType>(i);
    EXPECT_STRNE(RelationTypeName(t), "unknown");
  }
}

}  // namespace
}  // namespace embellish::wordnet
