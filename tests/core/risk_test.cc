#include "core/risk.h"

#include <gtest/gtest.h>

#include "core/decoy_random.h"
#include "testutil.h"

namespace embellish::core {
namespace {

class RiskTest : public ::testing::Test {
 protected:
  RiskTest()
      : lex_(testutil::SmallSyntheticLexicon(4000, 81)),
        spec_(SpecificityMap::FromHypernymDepth(lex_)),
        dist_(&lex_),
        evaluator_(&lex_, &spec_, &dist_) {}

  std::vector<wordnet::TermId> AllTerms() {
    std::vector<wordnet::TermId> terms(lex_.term_count());
    for (wordnet::TermId t = 0; t < lex_.term_count(); ++t) terms[t] = t;
    return terms;
  }

  wordnet::WordNetDatabase lex_;
  SpecificityMap spec_;
  SemanticDistanceCalculator dist_;
  RiskEvaluator evaluator_;
};

TEST_F(RiskTest, SpecificityDifferenceOnHandBuiltBuckets) {
  // Bucket of equal-specificity terms -> difference 0; mixed -> max - min.
  std::vector<wordnet::TermId> by_spec[20];
  for (wordnet::TermId t = 0; t < lex_.term_count(); ++t) {
    int s = spec_.TermSpecificity(t);
    if (s < 20) by_spec[s].push_back(t);
  }
  ASSERT_GE(by_spec[7].size(), 4u);
  ASSERT_GE(by_spec[3].size(), 2u);
  auto uniform = BucketOrganization::Create(
      {{by_spec[7][0], by_spec[7][1], by_spec[7][2], by_spec[7][3]}});
  ASSERT_TRUE(uniform.ok());
  EXPECT_DOUBLE_EQ(
      evaluator_.AvgIntraBucketSpecificityDifference(*uniform), 0.0);

  auto mixed = BucketOrganization::Create(
      {{by_spec[7][0], by_spec[3][0]}, {by_spec[7][1], by_spec[3][1]}});
  ASSERT_TRUE(mixed.ok());
  EXPECT_DOUBLE_EQ(evaluator_.AvgIntraBucketSpecificityDifference(*mixed),
                   4.0);
}

TEST_F(RiskTest, SingletonBucketsContributeNothing) {
  auto org = BucketOrganization::Create({{1}, {2}, {3}});
  ASSERT_TRUE(org.ok());
  EXPECT_DOUBLE_EQ(evaluator_.AvgIntraBucketSpecificityDifference(*org), 0.0);
}

TEST_F(RiskTest, BucketBeatsRandomOnSpecificity) {
  // The Figure 5(a)/6(a) qualitative result. SegSz is maximized (N/BktSz),
  // the paper's configuration for the Figure 6 experiment; the margin is
  // looser than the paper's full-scale run because this fixture's segments
  // are three orders of magnitude smaller.
  auto bucket_org = testutil::MakeBuckets(lex_, 4, SIZE_MAX);
  Rng rng(1);
  auto random_org = RandomBucketOrganization(AllTerms(), 4, &rng);
  ASSERT_TRUE(random_org.ok());
  double bucket_diff =
      evaluator_.AvgIntraBucketSpecificityDifference(bucket_org);
  double random_diff =
      evaluator_.AvgIntraBucketSpecificityDifference(*random_org);
  EXPECT_LT(bucket_diff, random_diff * 0.75)
      << "bucket=" << bucket_diff << " random=" << random_diff;
}

TEST_F(RiskTest, DistanceDifferenceStatsAreWellFormed) {
  auto org = testutil::MakeBuckets(lex_, 4, 256);
  Rng rng(2);
  auto stats = evaluator_.MeasureDistanceDifference(org, 50, &rng);
  EXPECT_EQ(stats.trials, 50u);
  EXPECT_GE(stats.avg_closest, 0.0);
  EXPECT_GE(stats.avg_farthest, stats.avg_closest);
  EXPECT_LE(stats.avg_farthest, RiskEvaluator::kDistanceCutoff);
}

TEST_F(RiskTest, BucketBeatsRandomOnFarthestCover) {
  // The Figure 5(b)/6(b) qualitative result: the bucket organization's
  // farthest cover is much closer to the genuine distance than random's.
  auto bucket_org = testutil::MakeBuckets(lex_, 4, 512);
  Rng rng(3);
  auto random_org = RandomBucketOrganization(AllTerms(), 4, &rng);
  ASSERT_TRUE(random_org.ok());
  Rng trial_rng_a(4), trial_rng_b(4);
  auto bucket_stats =
      evaluator_.MeasureDistanceDifference(bucket_org, 120, &trial_rng_a);
  auto random_stats =
      evaluator_.MeasureDistanceDifference(*random_org, 120, &trial_rng_b);
  EXPECT_LT(bucket_stats.avg_farthest, random_stats.avg_farthest);
}

TEST_F(RiskTest, DegenerateOrganizations) {
  // One bucket only: no pair of buckets to measure.
  auto single = BucketOrganization::Create({{1, 2, 3, 4}});
  ASSERT_TRUE(single.ok());
  Rng rng(5);
  auto stats = evaluator_.MeasureDistanceDifference(*single, 10, &rng);
  EXPECT_EQ(stats.trials, 0u);
  // Width-1 buckets: no decoy slots to compare.
  auto singles = BucketOrganization::Create({{1}, {2}});
  ASSERT_TRUE(singles.ok());
  auto stats2 = evaluator_.MeasureDistanceDifference(*singles, 10, &rng);
  EXPECT_EQ(stats2.trials, 0u);
}

TEST_F(RiskTest, DeterministicGivenSeed) {
  auto org = testutil::MakeBuckets(lex_, 4, 128);
  Rng a(6), b(6);
  auto s1 = evaluator_.MeasureDistanceDifference(org, 40, &a);
  auto s2 = evaluator_.MeasureDistanceDifference(org, 40, &b);
  EXPECT_DOUBLE_EQ(s1.avg_closest, s2.avg_closest);
  EXPECT_DOUBLE_EQ(s1.avg_farthest, s2.avg_farthest);
}

}  // namespace
}  // namespace embellish::core
