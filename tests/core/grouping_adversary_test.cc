// The quantitative version of §3.4's argument: once the adversary recovers
// the groups, aligned bucket decoys must leave the MAP coherence rule near
// its guessing floor, while random decoys let it isolate the genuine terms.

#include "core/grouping_adversary.h"

#include <gtest/gtest.h>

#include "core/decoy_random.h"
#include "testutil.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::core {
namespace {

TEST(GroupingAdversaryTest, ValidatesInput) {
  auto lex = testutil::TinyLexicon();
  SemanticDistanceCalculator dist(&lex);
  auto org = BucketOrganization::Create({{0, 1}, {2, 3}});
  ASSERT_TRUE(org.ok());
  EXPECT_FALSE(RunMapCoherenceAttack(*org, dist, {}).ok());
  EXPECT_FALSE(RunMapCoherenceAttack(*org, dist, {{}}).ok());
  EXPECT_FALSE(RunMapCoherenceAttack(*org, dist, {{99}}).ok());
}

TEST(GroupingAdversaryTest, CombinationCapEnforced) {
  auto lex = testutil::SmallSyntheticLexicon(1000, 121);
  SemanticDistanceCalculator dist(&lex);
  auto org = testutil::MakeBuckets(lex, 8, 32);
  MapAttackOptions options;
  options.max_combinations = 10;  // 8^2 = 64 > 10
  auto terms = org.bucket(0);
  std::vector<std::vector<wordnet::TermId>> queries{
      {org.bucket(0)[0], org.bucket(1)[0]}};
  EXPECT_FALSE(RunMapCoherenceAttack(org, dist, queries, options).ok());
}

TEST(GroupingAdversaryTest, SingleBucketQueryIsPureGuessing) {
  // With one group and no cross-term coherence signal, every member ties:
  // expected hits = 1/BktSz = chance.
  auto lex = testutil::TinyLexicon();
  SemanticDistanceCalculator dist(&lex);
  auto org = BucketOrganization::Create(
      {{lex.FindTerm("puppy"), lex.FindTerm("coupe"),
        lex.FindTerm("garage"), lex.FindTerm("cat")}});
  ASSERT_TRUE(org.ok());
  auto result =
      RunMapCoherenceAttack(*org, dist, {{lex.FindTerm("puppy")}});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->hit_rate, 0.25, 1e-9);
  EXPECT_NEAR(result->chance_rate, 0.25, 1e-9);
}

TEST(GroupingAdversaryTest, RandomDecoysExposeCoherentQuery) {
  // Genuine query {dog, puppy} (distance 1); decoys from far topics. The
  // MAP rule must isolate the genuine pair.
  auto lex = testutil::TinyLexicon();
  SemanticDistanceCalculator dist(&lex);
  wordnet::TermId dog = lex.FindTerm("dog");
  wordnet::TermId puppy = lex.FindTerm("puppy");
  auto org = BucketOrganization::Create(
      {{dog, lex.FindTerm("coupe")}, {puppy, lex.FindTerm("garage")}});
  ASSERT_TRUE(org.ok());
  auto result = RunMapCoherenceAttack(*org, dist, {{dog, puppy}});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->hit_rate, 1.0, 1e-9) << "attack should succeed";
  EXPECT_NEAR(result->chance_rate, 0.25, 1e-9);
}

TEST(GroupingAdversaryTest, AlignedDecoysRestorePlausibleDeniability) {
  // The same genuine pair, but the decoys are themselves a coherent pair
  // (car-coupe, distance 1 via hypernym): the MAP rule can no longer
  // prefer the truth outright.
  auto lex = testutil::TinyLexicon();
  SemanticDistanceCalculator dist(&lex);
  wordnet::TermId dog = lex.FindTerm("dog");
  wordnet::TermId puppy = lex.FindTerm("puppy");
  wordnet::TermId car = lex.FindTerm("car");
  wordnet::TermId coupe = lex.FindTerm("coupe");
  auto org = BucketOrganization::Create({{dog, car}, {puppy, coupe}});
  ASSERT_TRUE(org.ok());
  auto result = RunMapCoherenceAttack(*org, dist, {{dog, puppy}});
  ASSERT_TRUE(result.ok());
  // dog-puppy and car-coupe both have distance 1 -> a 2-way tie at best;
  // the adversary's expected hits drop to 1/2.
  EXPECT_LE(result->hit_rate, 0.5 + 1e-9);
}

TEST(GroupingAdversaryTest, PaperExampleFromSection34) {
  // The 'abu sayyaf' + 'terrorism' query of §3.4: under the mini lexicon's
  // bucket organization the adversary faces multiple plausible pairs.
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  SemanticDistanceCalculator dist(&*db);
  auto org = testutil::MakeBuckets(*db, 4, 16);
  wordnet::TermId abu = db->FindTerm("abu sayyaf");
  wordnet::TermId terror = db->FindTerm("terrorism");
  ASSERT_TRUE(org.Contains(abu));
  ASSERT_TRUE(org.Contains(terror));
  if (org.Locate(abu)->bucket == org.Locate(terror)->bucket) {
    GTEST_SKIP() << "fixture placed both terms in one bucket";
  }
  auto result = RunMapCoherenceAttack(org, dist, {{abu, terror}});
  ASSERT_TRUE(result.ok());
  // 16 combinations to choose from; the attack is well-formed. (On a
  // 186-term fixture the buckets cannot always align decoys tightly enough
  // to defeat the MAP rule — BucketOrganizationBeatsRandomAtScale is the
  // at-scale version of the claim.)
  EXPECT_NEAR(result->chance_rate, 1.0 / 16.0, 1e-9);
  EXPECT_GE(result->hit_rate, result->chance_rate - 1e-9);
  EXPECT_LE(result->hit_rate, 1.0 + 1e-9);
}

TEST(GroupingAdversaryTest, BucketOrganizationBeatsRandomAtScale) {
  // The headline property over a real workload: hit rate under Algorithm
  // 1+2 buckets is well below hit rate under random buckets.
  auto lex = testutil::SmallSyntheticLexicon(3000, 122);
  SemanticDistanceCalculator dist(&lex);
  auto bucket_org = testutil::MakeBuckets(lex, 4, SIZE_MAX);
  std::vector<wordnet::TermId> all(lex.term_count());
  for (wordnet::TermId t = 0; t < lex.term_count(); ++t) all[t] = t;
  Rng rng(1);
  auto random_org = RandomBucketOrganization(all, 4, &rng);
  ASSERT_TRUE(random_org.ok());

  // Coherent 2-term queries: a term and a semantic neighbour (hyponym or
  // sibling), mimicking real related-term queries.
  std::vector<std::vector<wordnet::TermId>> queries;
  Rng pick(2);
  while (queries.size() < 12) {
    wordnet::TermId a =
        static_cast<wordnet::TermId>(pick.Uniform(lex.term_count()));
    // neighbour via the synset graph: any term of a related synset.
    const auto& synsets = lex.term(a).synsets;
    if (synsets.empty()) continue;
    const auto& relations = lex.synset(synsets[0]).relations;
    if (relations.empty()) continue;
    const auto& other = lex.synset(relations[0].target);
    if (other.terms.empty()) continue;
    wordnet::TermId b = other.terms[0];
    if (a == b) continue;
    queries.push_back({a, b});
  }

  auto bucket_result = RunMapCoherenceAttack(bucket_org, dist, queries);
  auto random_result = RunMapCoherenceAttack(*random_org, dist, queries);
  ASSERT_TRUE(bucket_result.ok()) << bucket_result.status().ToString();
  ASSERT_TRUE(random_result.ok());
  // Random decoys: coherent queries stick out (high hit rate). Bucket
  // decoys: aligned covers pull the rate down.
  EXPECT_LT(bucket_result->hit_rate, random_result->hit_rate)
      << "bucket=" << bucket_result->hit_rate
      << " random=" << random_result->hit_rate;
}

}  // namespace
}  // namespace embellish::core
