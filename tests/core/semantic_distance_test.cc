#include "core/semantic_distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::core {
namespace {

class SemanticDistanceTest : public ::testing::Test {
 protected:
  SemanticDistanceTest()
      : lex_(testutil::TinyLexicon()), calc_(&lex_) {}

  double TermDist(const char* a, const char* b, double cutoff = 100.0) {
    return calc_.TermDistance(lex_.FindTerm(a), lex_.FindTerm(b), cutoff);
  }

  wordnet::WordNetDatabase lex_;
  SemanticDistanceCalculator calc_;
};

TEST_F(SemanticDistanceTest, IdenticalTermsAreAtDistanceZero) {
  EXPECT_DOUBLE_EQ(TermDist("dog", "dog"), 0.0);
}

TEST_F(SemanticDistanceTest, SynonymsAreAtDistanceZero) {
  // 'car' and 'auto' share a synset.
  EXPECT_DOUBLE_EQ(TermDist("car", "auto"), 0.0);
}

TEST_F(SemanticDistanceTest, HypernymHopCostsOne) {
  EXPECT_DOUBLE_EQ(TermDist("puppy", "dog"), 1.0);
  EXPECT_DOUBLE_EQ(TermDist("dog", "animal"), 1.0);
  EXPECT_DOUBLE_EQ(TermDist("puppy", "animal"), 2.0);
}

TEST_F(SemanticDistanceTest, AntonymShortcutCostsHalf) {
  // dog—cat via antonym: 0.5, cheaper than via 'animal' (2.0).
  EXPECT_DOUBLE_EQ(TermDist("dog", "cat"), 0.5);
}

TEST_F(SemanticDistanceTest, MeronymCostsTwo) {
  // car—engine directly via meronym edge (2.0) vs via artifact (2 hops = 2.0)
  // -> equal-cost paths are fine; distance is 2.0.
  EXPECT_DOUBLE_EQ(TermDist("car", "engine"), 2.0);
}

TEST_F(SemanticDistanceTest, DerivationCostsHalf) {
  EXPECT_DOUBLE_EQ(TermDist("vehicle", "garage"), 0.5);
}

TEST_F(SemanticDistanceTest, DomainCostsThree) {
  // coupe—racing has a direct domain edge (3.0); the hierarchy route is
  // coupe>car>vehicle>artifact>entity>racing = 5 hops.
  EXPECT_DOUBLE_EQ(TermDist("coupe", "racing"), 3.0);
}

TEST_F(SemanticDistanceTest, SymmetricDistances) {
  for (auto [a, b] : {std::pair<const char*, const char*>{"puppy", "truck"},
                      {"dog", "engine"},
                      {"cat", "coupe"}}) {
    EXPECT_DOUBLE_EQ(TermDist(a, b), TermDist(b, a));
  }
}

TEST_F(SemanticDistanceTest, TriangleInequality) {
  const char* terms[] = {"puppy", "dog", "cat", "car", "engine", "truck"};
  for (const char* a : terms) {
    for (const char* b : terms) {
      for (const char* c : terms) {
        EXPECT_LE(TermDist(a, c), TermDist(a, b) + TermDist(b, c) + 1e-9);
      }
    }
  }
}

TEST_F(SemanticDistanceTest, CutoffTruncatesSearch) {
  // puppy—coupe: up to entity (3 hops) down to coupe (4 hops) = 7.0.
  EXPECT_DOUBLE_EQ(TermDist("puppy", "coupe"), 7.0);
  EXPECT_TRUE(std::isinf(TermDist("puppy", "coupe", 3.0)));
  EXPECT_DOUBLE_EQ(TermDist("puppy", "coupe", 7.0), 7.0);
}

TEST_F(SemanticDistanceTest, CustomWeightsChangeGeometry) {
  SemanticDistanceWeights w;
  w.antonym = 10.0;  // make the dog—cat shortcut expensive
  SemanticDistanceCalculator calc(&lex_, w);
  EXPECT_DOUBLE_EQ(calc.TermDistance(lex_.FindTerm("dog"),
                                     lex_.FindTerm("cat"), 100.0),
                   2.0);  // now routed via 'animal'
}

TEST(SemanticDistanceWeightsTest, PaperWeightValues) {
  // Section 5.1's stated weights.
  SemanticDistanceWeights w;
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kHypernym), 1.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kHyponym), 1.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kAntonym), 0.5);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kHolonym), 2.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kMeronym), 2.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kDomain), 3.0);
  EXPECT_DOUBLE_EQ(w.WeightOf(wordnet::RelationType::kDomainMember), 3.0);
}

TEST(SemanticDistanceMiniTest, PaperClustersAreTight) {
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  SemanticDistanceCalculator calc(&*db);
  auto dist = [&](const char* a, const char* b) {
    return calc.TermDistance(db->FindTerm(a), db->FindTerm(b), 64.0);
  };
  // Intra-topic pairs are much closer than cross-topic pairs.
  EXPECT_LT(dist("osteosarcoma", "myosarcoma"),
            dist("osteosarcoma", "amaranthaceae"));
  EXPECT_LT(dist("hypercapnia", "hypocapnia"),
            dist("hypercapnia", "terrorism"));
  EXPECT_LT(dist("radiation therapy", "therapy"),
            dist("radiation therapy", "abu sayyaf"));
}

}  // namespace
}  // namespace embellish::core
