#include "core/query_expansion.h"

#include <set>

#include <gtest/gtest.h>

#include "core/embellisher.h"
#include "testutil.h"
#include "wordnet/relation_extraction.h"

namespace embellish::core {
namespace {

using wordnet::ExtractedRelation;

TEST(QueryExpansionTest, OptionsValidation) {
  QueryExpansionOptions o;
  o.terms_per_seed = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = QueryExpansionOptions{};
  o.min_strength = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = QueryExpansionOptions{};
  o.min_strength = -0.1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(QueryExpansionTest, ExpandsWithStrongestFirst) {
  std::vector<ExtractedRelation> relations{
      {1, 2, 0.9}, {1, 3, 0.5}, {1, 4, 0.7}, {1, 5, 0.2}};
  QueryExpansionOptions o;
  o.terms_per_seed = 2;
  auto expander = QueryExpander::Create(relations, o);
  ASSERT_TRUE(expander.ok());
  auto expanded = expander->Expand({1});
  // Original term first, then the two strongest neighbors (2 then 4).
  ASSERT_EQ(expanded.size(), 3u);
  EXPECT_EQ(expanded[0], 1u);
  EXPECT_EQ(expanded[1], 2u);
  EXPECT_EQ(expanded[2], 4u);
}

TEST(QueryExpansionTest, RelationsAreSymmetric) {
  std::vector<ExtractedRelation> relations{{1, 2, 0.9}};
  auto expander = QueryExpander::Create(relations, {});
  ASSERT_TRUE(expander.ok());
  EXPECT_EQ(expander->Expand({2}),
            (std::vector<wordnet::TermId>{2, 1}));
}

TEST(QueryExpansionTest, DeduplicatesAcrossSeeds) {
  std::vector<ExtractedRelation> relations{{1, 3, 0.9}, {2, 3, 0.9}};
  auto expander = QueryExpander::Create(relations, {});
  ASSERT_TRUE(expander.ok());
  auto expanded = expander->Expand({1, 2});
  // 3 appears once even though both seeds relate to it.
  EXPECT_EQ(expanded, (std::vector<wordnet::TermId>{1, 2, 3}));
}

TEST(QueryExpansionTest, PreservesQueryOrderAndDedupesQuery) {
  auto expander = QueryExpander::Create({}, {});
  ASSERT_TRUE(expander.ok());
  EXPECT_EQ(expander->Expand({7, 5, 7, 9}),
            (std::vector<wordnet::TermId>{7, 5, 9}));
}

TEST(QueryExpansionTest, MinStrengthFiltersRelations) {
  std::vector<ExtractedRelation> relations{{1, 2, 0.5}, {1, 3, 0.05}};
  QueryExpansionOptions o;
  o.min_strength = 0.3;
  auto expander = QueryExpander::Create(relations, o);
  ASSERT_TRUE(expander.ok());
  auto expanded = expander->Expand({1});
  EXPECT_EQ(expanded, (std::vector<wordnet::TermId>{1, 2}));
}

TEST(QueryExpansionTest, EndToEndWithExtractionAndEmbellishment) {
  // Mined relations -> expanded query -> Algorithm 3; the expanded query's
  // host buckets must cover every expansion term.
  auto lex = testutil::SmallSyntheticLexicon(1500, 81);
  auto corp = testutil::SmallCorpus(lex, 250, 82);
  auto relations = wordnet::ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(relations.ok());
  ASSERT_FALSE(relations->empty());
  auto expander = QueryExpander::Create(*relations, {});
  ASSERT_TRUE(expander.ok());

  // Find a term that actually has expansions.
  wordnet::TermId seed = (*relations)[0].a;
  auto expanded = expander->Expand({seed});
  ASSERT_GT(expanded.size(), 1u);

  auto org = testutil::MakeBuckets(lex, 4, 64);
  Rng rng(1);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 729;
  auto keys = crypto::BenalohKeyPair::Generate(ko, &rng);
  ASSERT_TRUE(keys.ok());
  QueryEmbellisher embellisher(&org, &keys->public_key());
  auto query = embellisher.Embellish(expanded, &rng);
  ASSERT_TRUE(query.ok());
  // Every expanded term appears in the embellished query.
  std::set<wordnet::TermId> sent;
  for (const auto& e : query->entries) sent.insert(e.term);
  for (wordnet::TermId t : expanded) {
    EXPECT_TRUE(sent.count(t));
  }
}

TEST(QueryExpansionTest, TableSizeReflectsRelations) {
  std::vector<ExtractedRelation> relations{{1, 2, 0.9}, {3, 4, 0.8}};
  auto expander = QueryExpander::Create(relations, {});
  ASSERT_TRUE(expander.ok());
  EXPECT_EQ(expander->table_size(), 4u);  // terms 1,2,3,4
}

}  // namespace
}  // namespace embellish::core
