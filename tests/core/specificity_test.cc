#include "core/specificity.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace embellish::core {
namespace {

TEST(SpecificityTest, HypernymDepthOnTinyLexicon) {
  auto lex = testutil::TinyLexicon();
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  auto of = [&](const char* t) {
    return spec.TermSpecificity(lex.FindTerm(t));
  };
  EXPECT_EQ(of("entity"), 0);
  EXPECT_EQ(of("animal"), 1);
  EXPECT_EQ(of("beast"), 1);    // synonym shares the synset
  EXPECT_EQ(of("dog"), 2);
  EXPECT_EQ(of("puppy"), 3);
  EXPECT_EQ(of("vehicle"), 2);
  EXPECT_EQ(of("coupe"), 4);
  EXPECT_EQ(spec.max_specificity(), 4);
}

TEST(SpecificityTest, PolysemousTermTakesMostGeneralSense) {
  // A term in synsets at depths 1 and 3 has specificity 1.
  wordnet::WordNetBuilder b;
  auto root = b.AddSynset({"root"});
  auto shallow = b.AddSynset({"word"});
  auto mid = b.AddSynset({"mid"});
  auto deep = b.AddSynset({"deepco", "word"});  // 'word' again, deeper
  (void)b.AddHypernym(shallow, root);
  (void)b.AddHypernym(mid, root);
  (void)b.AddHypernym(deep, mid);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto spec = SpecificityMap::FromHypernymDepth(*db);
  EXPECT_EQ(spec.TermSpecificity(db->FindTerm("word")), 1);
  EXPECT_EQ(spec.TermSpecificity(db->FindTerm("deepco")), 2);
}

TEST(SpecificityTest, MultipleHypernymsUseShortestPath) {
  // c has hypernyms at depth 1 and depth 2: specificity is 2 via the
  // shorter route.
  wordnet::WordNetBuilder b;
  auto root = b.AddSynset({"root"});
  auto a = b.AddSynset({"a"});
  auto bb = b.AddSynset({"b"});
  auto c = b.AddSynset({"c"});
  (void)b.AddHypernym(a, root);
  (void)b.AddHypernym(bb, a);
  (void)b.AddHypernym(c, bb);   // depth-3 route
  (void)b.AddHypernym(c, a);    // depth-2 route (shorter)
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto spec = SpecificityMap::FromHypernymDepth(*db);
  EXPECT_EQ(spec.SynsetSpecificity(c), 2);
}

TEST(SpecificityTest, HistogramCountsTerms) {
  auto lex = testutil::TinyLexicon();
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  auto hist = spec.TermHistogram();
  size_t total = 0;
  for (size_t c : hist) total += c;
  EXPECT_EQ(total, lex.term_count());
  EXPECT_EQ(hist[0], 1u);  // only 'entity'
}

TEST(SpecificityTest, SynsetAccessorMatchesTermDerivation) {
  auto lex = testutil::SmallSyntheticLexicon(1000, 17);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  for (wordnet::TermId t = 0; t < lex.term_count(); t += 53) {
    int expected = INT32_MAX;
    for (wordnet::SynsetId s : lex.term(t).synsets) {
      expected = std::min(expected, spec.SynsetSpecificity(s));
    }
    EXPECT_EQ(spec.TermSpecificity(t), expected);
  }
}

TEST(SpecificityTest, DocFrequencyVariantRanksRareAsSpecific) {
  auto lex = testutil::SmallSyntheticLexicon(1500, 18);
  auto corp = testutil::SmallCorpus(lex, 200, 19);
  auto spec = SpecificityMap::FromDocumentFrequency(lex, corp, 18);
  // Find the most frequent term; it must be among the most general.
  wordnet::TermId most_frequent = 0;
  uint32_t best_df = 0;
  for (wordnet::TermId t : corp.DistinctTerms()) {
    if (corp.DocumentFrequency(t) > best_df) {
      best_df = corp.DocumentFrequency(t);
      most_frequent = t;
    }
  }
  EXPECT_EQ(spec.TermSpecificity(most_frequent), 0);
  // Terms absent from the corpus get the maximum level.
  wordnet::TermId absent = wordnet::kInvalidTermId;
  for (wordnet::TermId t = 0; t < lex.term_count(); ++t) {
    if (corp.DocumentFrequency(t) == 0) {
      absent = t;
      break;
    }
  }
  ASSERT_NE(absent, wordnet::kInvalidTermId);
  EXPECT_EQ(spec.TermSpecificity(absent), 18);
  EXPECT_EQ(spec.max_specificity(), 18);
}

TEST(SpecificityTest, TwoMethodsCorrelatePositively) {
  // [14]'s observation, which the paper leans on: hypernym depth and
  // document rarity correlate. The synthetic corpus draws terms uniformly
  // w.r.t. depth, so we only check the correlation is not negative on a
  // depth-stratified corpus... here we simply verify both maps exist and
  // cover the same terms (the ablation bench reports the actual metric
  // difference).
  auto lex = testutil::SmallSyntheticLexicon(1200, 20);
  auto corp = testutil::SmallCorpus(lex, 100, 21);
  auto by_depth = SpecificityMap::FromHypernymDepth(lex);
  auto by_df = SpecificityMap::FromDocumentFrequency(lex, corp);
  EXPECT_EQ(by_depth.term_count(), by_df.term_count());
}

}  // namespace
}  // namespace embellish::core
