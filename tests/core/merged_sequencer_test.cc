// Tests for the Appendix C merged-source sequencer.

#include <gtest/gtest.h>

#include "core/sequencer.h"
#include "testutil.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::core {
namespace {

using wordnet::ExtractedRelation;

std::unordered_map<wordnet::TermId, size_t> Positions(
    const SequencerResult& result) {
  std::unordered_map<wordnet::TermId, size_t> pos;
  size_t i = 0;
  for (const auto& seq : result.sequences) {
    for (wordnet::TermId t : seq) pos[t] = i++;
  }
  return pos;
}

TEST(RelationStrengthsTest, DefaultsFollowClosenessOrder) {
  RelationStrengths s;
  EXPECT_GT(s.OfType(wordnet::RelationType::kDerivation),
            s.OfType(wordnet::RelationType::kAntonym));
  EXPECT_GT(s.OfType(wordnet::RelationType::kAntonym),
            s.OfType(wordnet::RelationType::kHyponym));
  EXPECT_GT(s.OfType(wordnet::RelationType::kHyponym),
            s.OfType(wordnet::RelationType::kHypernym));
  EXPECT_GT(s.OfType(wordnet::RelationType::kHypernym),
            s.OfType(wordnet::RelationType::kMeronym));
  EXPECT_GT(s.OfType(wordnet::RelationType::kMeronym),
            s.OfType(wordnet::RelationType::kHolonym));
  // Domain memberships are skipped, as in Algorithm 1.
  EXPECT_DOUBLE_EQ(s.OfType(wordnet::RelationType::kDomain), 0.0);
  EXPECT_DOUBLE_EQ(s.OfType(wordnet::RelationType::kDomainMember), 0.0);
}

TEST(MergedSequencerTest, NoExtractedRelationsCoversAllTerms) {
  auto lex = testutil::SmallSyntheticLexicon(2000, 91);
  auto merged = SequenceDictionaryMerged(lex, {});
  EXPECT_EQ(merged.TotalTerms(), lex.term_count());
}

TEST(MergedSequencerTest, EveryTermOnceWithExtractedRelations) {
  auto lex = testutil::SmallSyntheticLexicon(2000, 92);
  std::vector<ExtractedRelation> extracted{
      {10, 500, 0.95}, {20, 600, 0.8}, {30, 700, 0.4}};
  auto merged = SequenceDictionaryMerged(lex, extracted);
  std::set<wordnet::TermId> seen;
  for (const auto& seq : merged.sequences) {
    for (wordnet::TermId t : seq) {
      EXPECT_TRUE(seen.insert(t).second);
    }
  }
  EXPECT_EQ(seen.size(), lex.term_count());
}

TEST(MergedSequencerTest, StrongExtractedRelationPullsTermsTogether) {
  // Two terms in unrelated topics, wired by a strong mined relation: the
  // merged traversal must bring them far closer than the baseline puts
  // them.
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  wordnet::TermId saturn = db->FindTerm("saturn");
  wordnet::TermId yeast = db->FindTerm("yeast");
  ASSERT_NE(saturn, wordnet::kInvalidTermId);
  ASSERT_NE(yeast, wordnet::kInvalidTermId);

  auto baseline = SequenceDictionary(*db);
  auto base_pos = Positions(baseline);
  size_t base_gap = base_pos.at(saturn) > base_pos.at(yeast)
                        ? base_pos.at(saturn) - base_pos.at(yeast)
                        : base_pos.at(yeast) - base_pos.at(saturn);
  ASSERT_GT(base_gap, 8u) << "fixture: the two topics must start far apart";

  std::vector<ExtractedRelation> extracted{{saturn, yeast, 0.99}};
  auto merged = SequenceDictionaryMerged(*db, extracted);
  auto merged_pos = Positions(merged);
  size_t merged_gap = merged_pos.at(saturn) > merged_pos.at(yeast)
                          ? merged_pos.at(saturn) - merged_pos.at(yeast)
                          : merged_pos.at(yeast) - merged_pos.at(saturn);
  EXPECT_LT(merged_gap, base_gap);
  EXPECT_LT(merged_gap, 8u);
}

TEST(MergedSequencerTest, MinStrengthThresholdDropsWeakRelations) {
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  wordnet::TermId saturn = db->FindTerm("saturn");
  wordnet::TermId yeast = db->FindTerm("yeast");

  // The same wiring, but below the threshold: gap stays large.
  std::vector<ExtractedRelation> weak{{saturn, yeast, 0.05}};
  MergedSequencerOptions options;
  options.min_strength = 0.2;
  auto merged = SequenceDictionaryMerged(*db, weak, options);
  auto pos = Positions(merged);
  size_t gap = pos.at(saturn) > pos.at(yeast) ? pos.at(saturn) - pos.at(yeast)
                                              : pos.at(yeast) - pos.at(saturn);
  EXPECT_GT(gap, 8u);
}

TEST(MergedSequencerTest, HighThresholdPrunesWordNetEdgesToo) {
  // With min_strength above every WordNet strength, no edges are followed:
  // each synset becomes its own wave, but all terms still appear once.
  auto lex = testutil::SmallSyntheticLexicon(1000, 93);
  MergedSequencerOptions options;
  options.min_strength = 2.0;  // above everything
  auto merged = SequenceDictionaryMerged(lex, {}, options);
  EXPECT_EQ(merged.TotalTerms(), lex.term_count());
  // Fragmentation: many sequences (no traversal happened).
  EXPECT_GT(merged.sequences.size(), lex.term_count() / 16);
}

TEST(MergedSequencerTest, TermFilterStillApplies) {
  auto lex = testutil::SmallSyntheticLexicon(1000, 94);
  MergedSequencerOptions options;
  options.term_filter = [](wordnet::TermId t) { return t % 3 == 0; };
  auto merged = SequenceDictionaryMerged(lex, {}, options);
  for (const auto& seq : merged.sequences) {
    for (wordnet::TermId t : seq) EXPECT_EQ(t % 3, 0u);
  }
}

TEST(MergedSequencerTest, BucketsDownstreamStillValid) {
  // The merged sequence feeds Algorithm 2 unchanged.
  auto lex = testutil::SmallSyntheticLexicon(2000, 95);
  auto corp = testutil::SmallCorpus(lex, 200, 96);
  auto relations = wordnet::ExtractRelationsFromCorpus(corp);
  ASSERT_TRUE(relations.ok());
  auto merged = SequenceDictionaryMerged(lex, *relations);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  BucketizerOptions bo;
  bo.bucket_size = 4;
  bo.segment_size = 64;
  auto org = FormBuckets(merged, spec, bo);
  ASSERT_TRUE(org.ok()) << org.status().ToString();
  EXPECT_EQ(org->term_count(), lex.term_count());
}

}  // namespace
}  // namespace embellish::core
