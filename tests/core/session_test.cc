#include "core/session.h"

#include <set>

#include <gtest/gtest.h>

#include "testutil.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : lex_(std::move(wordnet::BuildMiniWordNet()).value()),
                  org_(testutil::MakeBuckets(lex_, 4, 16)) {
    Rng rng(1);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 729;
    keys_ = std::make_unique<crypto::BenalohKeyPair>(
        std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
  }

  SearchSession MakeSession(uint64_t seed = 7) {
    return SearchSession(&lex_, &org_, &keys_->public_key(), seed);
  }

  wordnet::WordNetDatabase lex_;
  BucketOrganization org_;
  std::unique_ptr<crypto::BenalohKeyPair> keys_;
};

TEST_F(SessionTest, IssueQueryByWords) {
  auto session = MakeSession();
  auto q = session.IssueQuery({"osteosarcoma", "therapy"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_GE(q->entries.size(), 2u);
  EXPECT_EQ(session.query_count(), 1u);
}

TEST_F(SessionTest, UnknownWordRejectedWithoutRecordingHistory) {
  auto session = MakeSession();
  auto q = session.IssueQuery({"osteosarcoma", "notaword"});
  EXPECT_TRUE(q.status().IsNotFound());
  EXPECT_EQ(session.query_count(), 0u);
}

TEST_F(SessionTest, ObservedViewMatchesIssuedQuery) {
  auto session = MakeSession();
  auto q = session.IssueQuery({"terrorism"});
  ASSERT_TRUE(q.ok());
  const AdversaryView& view = session.observed(0);
  ASSERT_EQ(view.observed_terms.size(), q->entries.size());
  for (size_t i = 0; i < view.observed_terms.size(); ++i) {
    EXPECT_EQ(view.observed_terms[i], q->entries[i].term);
  }
}

TEST_F(SessionTest, RecurringTermIntersectionYieldsWholeBuckets) {
  // The paper's osteosarcoma scenario: "osteosarcoma symptoms" followed by
  // "osteosarcoma therapy". Intersecting the two observed queries must not
  // isolate 'osteosarcoma' — its whole bucket survives the intersection.
  auto session = MakeSession();
  ASSERT_TRUE(session.IssueQuery({"osteosarcoma", "symptom"}).ok());
  ASSERT_TRUE(session.IssueQuery({"osteosarcoma", "therapy"}).ok());
  auto common = session.IntersectObservedQueries();

  wordnet::TermId osteo = lex_.FindTerm("osteosarcoma");
  size_t host = org_.Locate(osteo)->bucket;
  const auto& bucket = org_.bucket(host);
  // Every member of osteosarcoma's bucket is in the intersection.
  std::set<wordnet::TermId> common_set(common.begin(), common.end());
  for (wordnet::TermId t : bucket) {
    EXPECT_TRUE(common_set.count(t))
        << "decoy " << lex_.term(t).text << " missing from intersection";
  }
  // And the intersection is exactly a union of whole buckets.
  std::set<size_t> buckets_seen;
  for (wordnet::TermId t : common) {
    buckets_seen.insert(org_.Locate(t)->bucket);
  }
  size_t expected = 0;
  for (size_t b : buckets_seen) expected += org_.bucket(b).size();
  EXPECT_EQ(common.size(), expected);
}

TEST_F(SessionTest, DisjointQueriesIntersectEmpty) {
  auto session = MakeSession();
  ASSERT_TRUE(session.IssueQuery({"saturn"}).ok());
  ASSERT_TRUE(session.IssueQuery({"water"}).ok());
  // Unless the two terms share a bucket, the intersection is empty.
  wordnet::TermId a = lex_.FindTerm("saturn");
  wordnet::TermId b = lex_.FindTerm("water");
  if (org_.Locate(a)->bucket != org_.Locate(b)->bucket) {
    EXPECT_TRUE(session.IntersectObservedQueries().empty());
  }
}

TEST_F(SessionTest, EmptySessionIntersection) {
  auto session = MakeSession();
  EXPECT_TRUE(session.IntersectObservedQueries().empty());
}

TEST_F(SessionTest, SessionsWithDifferentSeedsPermuteDifferently) {
  auto s1 = MakeSession(100);
  auto s2 = MakeSession(200);
  auto q1 = s1.IssueQuery({"osteosarcoma", "radiation", "therapy"});
  auto q2 = s2.IssueQuery({"osteosarcoma", "radiation", "therapy"});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // Same term multiset...
  std::multiset<wordnet::TermId> m1, m2;
  for (auto& e : q1->entries) m1.insert(e.term);
  for (auto& e : q2->entries) m2.insert(e.term);
  EXPECT_EQ(m1, m2);
  // ...but (with overwhelming probability) different order.
  std::vector<wordnet::TermId> o1, o2;
  for (auto& e : q1->entries) o1.push_back(e.term);
  for (auto& e : q2->entries) o2.push_back(e.term);
  EXPECT_NE(o1, o2);
}

}  // namespace
}  // namespace embellish::core
