// Tests for the PR scheme — including the library's central correctness
// property, Claim 1: the private pipeline's ranking equals a plaintext
// engine's ranking over the genuine terms alone.

#include "core/private_retrieval.h"

#include <gtest/gtest.h>

#include "index/builder.h"
#include "testutil.h"

namespace embellish::core {
namespace {

struct Pipeline {
  wordnet::WordNetDatabase lex;
  corpus::Corpus corp;
  index::BuildOutput built;
  BucketOrganization org;
  storage::StorageLayout layout;
  std::unique_ptr<crypto::BenalohKeyPair> keys;
  std::unique_ptr<PrivateRetrievalClient> client;
  std::unique_ptr<PrivateRetrievalServer> server;

  Pipeline(size_t bucket_size, uint64_t seed,
           PrivateRetrievalServerOptions server_options = {})
      : lex(testutil::SmallSyntheticLexicon(2000, seed)),
        corp(testutil::SmallCorpus(lex, 250, seed + 1)),
        built(std::move(index::BuildIndex(corp, {})).value()),
        org(testutil::MakeBuckets(lex, bucket_size, 64)),
        layout(storage::StorageLayout::Build(
            built.index, org.buckets(),
            storage::LayoutPolicy::kBucketColocated, {})) {
    Rng rng(seed + 2);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    keys = std::make_unique<crypto::BenalohKeyPair>(
        std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
    client = std::make_unique<PrivateRetrievalClient>(
        &org, &keys->public_key(), &keys->private_key());
    server = std::make_unique<PrivateRetrievalServer>(
        &built.index, &org, &layout, storage::DiskModelOptions{},
        server_options);
  }

  std::vector<wordnet::TermId> RandomIndexedQuery(size_t len, Rng* rng) {
    auto terms = built.index.IndexedTerms();
    std::vector<wordnet::TermId> q;
    for (size_t i = 0; i < len; ++i) {
      q.push_back(terms[rng->Uniform(terms.size())]);
    }
    return q;
  }
};

// --- Claim 1, the paper's central guarantee -------------------------------

class Claim1Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Claim1Test, PrivateRankingEqualsPlaintextRanking) {
  const size_t bucket_size = GetParam();
  Pipeline p(bucket_size, 71);
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    auto query = p.RandomIndexedQuery(4 + trial, &rng);
    RetrievalCosts costs;
    auto ranked = RunPrivateQuery(*p.client, *p.server, p.keys->public_key(),
                                  query, 50, &rng, &costs);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();

    // Plaintext reference over the DISTINCT genuine terms (the embellisher
    // collapses duplicates).
    std::vector<wordnet::TermId> distinct = query;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto reference = index::EvaluateFull(p.built.index, distinct);
    if (reference.size() > 50) reference.resize(50);

    ASSERT_EQ(ranked->size(), reference.size());
    for (size_t i = 0; i < ranked->size(); ++i) {
      EXPECT_EQ((*ranked)[i].doc, reference[i].doc) << "rank " << i;
      EXPECT_EQ((*ranked)[i].score, reference[i].score) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, Claim1Test,
                         ::testing::Values(2, 4, 8, 16));

TEST(Claim1NaiveModeTest, PaperFaithfulModexpAgreesToo) {
  PrivateRetrievalServerOptions so;
  so.use_power_table = false;
  Pipeline p(4, 72, so);
  Rng rng(100);
  auto query = p.RandomIndexedQuery(5, &rng);
  RetrievalCosts costs;
  auto ranked = RunPrivateQuery(*p.client, *p.server, p.keys->public_key(),
                                query, 30, &rng, &costs);
  ASSERT_TRUE(ranked.ok());
  std::vector<wordnet::TermId> distinct = query;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  auto reference = index::EvaluateFull(p.built.index, distinct);
  if (reference.size() > 30) reference.resize(30);
  ASSERT_EQ(ranked->size(), reference.size());
  for (size_t i = 0; i < ranked->size(); ++i) {
    EXPECT_EQ((*ranked)[i].doc, reference[i].doc);
    EXPECT_EQ((*ranked)[i].score, reference[i].score);
  }
}

// --- Server-side behaviour -------------------------------------------------

TEST(PrivateRetrievalServerTest, DecoysDoNotChangeScoresButWidenCandidates) {
  Pipeline p(8, 73);
  Rng rng(101);
  auto query = p.RandomIndexedQuery(3, &rng);
  RetrievalCosts costs;
  auto formulated = p.client->FormulateQuery(query, &rng, &costs);
  ASSERT_TRUE(formulated.ok());
  auto encrypted = p.server->Process(*formulated, p.keys->public_key(),
                                     &costs);
  ASSERT_TRUE(encrypted.ok());

  // The candidate set is the union over ALL embellished terms' lists —
  // strictly larger than the genuine-only candidate set in general.
  std::vector<wordnet::TermId> distinct = query;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  auto genuine_only = index::EvaluateFull(p.built.index, distinct);
  EXPECT_GE(encrypted->candidates.size(), genuine_only.size());

  // Decoy-reached candidates decrypt to zero and are filtered client-side.
  auto ranked = p.client->PostFilter(*encrypted, 1000000, &costs);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), genuine_only.size());
}

TEST(PrivateRetrievalServerTest, EmptyQueryRejected) {
  Pipeline p(4, 74);
  EmbellishedQuery empty;
  RetrievalCosts costs;
  EXPECT_FALSE(p.server->Process(empty, p.keys->public_key(), &costs).ok());
}

TEST(PrivateRetrievalServerTest, IoChargedPerDistinctBucket) {
  Pipeline p(4, 75);
  Rng rng(102);
  // One genuine term -> exactly one bucket fetch.
  auto q1 = p.RandomIndexedQuery(1, &rng);
  RetrievalCosts c1;
  auto f1 = p.client->FormulateQuery(q1, &rng, &c1);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(p.server->Process(*f1, p.keys->public_key(), &c1).ok());
  EXPECT_GT(c1.server_io_ms, 0.0);

  // The same term twice costs the same I/O as once.
  RetrievalCosts c2;
  auto f2 = p.client->FormulateQuery({q1[0], q1[0]}, &rng, &c2);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(p.server->Process(*f2, p.keys->public_key(), &c2).ok());
  EXPECT_DOUBLE_EQ(c1.server_io_ms, c2.server_io_ms);
}

TEST(PrivateRetrievalServerTest, NullLayoutSkipsIoAccounting) {
  Pipeline p(4, 76);
  PrivateRetrievalServer no_io(&p.built.index, &p.org, nullptr);
  Rng rng(103);
  RetrievalCosts costs;
  auto f = p.client->FormulateQuery(p.RandomIndexedQuery(2, &rng), &rng,
                                    &costs);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(no_io.Process(*f, p.keys->public_key(), &costs).ok());
  EXPECT_DOUBLE_EQ(costs.server_io_ms, 0.0);
  EXPECT_GT(costs.server_cpu_ms, 0.0);
}

// --- Client-side behaviour --------------------------------------------------

TEST(PrivateRetrievalServerTest, PooledProcessMatchesSerialBitExactly) {
  // Algorithm 4's per-document merge is commutative modular multiplication,
  // so the pooled evaluation must produce byte-identical ciphertexts.
  Pipeline p(4, 909);
  ThreadPool pool(4);
  PrivateRetrievalServer pooled_server(&p.built.index, &p.org, &p.layout,
                                       storage::DiskModelOptions{}, {},
                                       &pool);
  Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    auto query = p.RandomIndexedQuery(6, &rng);
    RetrievalCosts costs;
    auto formulated = p.client->FormulateQuery(query, &rng, &costs);
    ASSERT_TRUE(formulated.ok());
    auto serial = p.server->Process(*formulated, p.keys->public_key(), &costs);
    ASSERT_TRUE(serial.ok());
    auto pooled =
        pooled_server.Process(*formulated, p.keys->public_key(), &costs);
    ASSERT_TRUE(pooled.ok());
    ASSERT_EQ(serial->candidates.size(), pooled->candidates.size());
    for (size_t i = 0; i < serial->candidates.size(); ++i) {
      EXPECT_EQ(serial->candidates[i].doc, pooled->candidates[i].doc);
      EXPECT_EQ(serial->candidates[i].score, pooled->candidates[i].score);
    }
  }
}

TEST(PrivateRetrievalClientTest, PooledClientMatchesSerialClient) {
  // The pooled client batches its indicator encryptions; nonces are drawn
  // serially, so queries from equal rng states are identical.
  Pipeline p(4, 910);
  ThreadPool pool(4);
  PrivateRetrievalClient pooled_client(&p.org, &p.keys->public_key(),
                                       &p.keys->private_key(), &pool);
  Rng rng(12);
  auto query = p.RandomIndexedQuery(5, &rng);
  Rng rng_a(77), rng_b(77);
  auto serial_q = p.client->FormulateQuery(query, &rng_a, nullptr);
  auto pooled_q = pooled_client.FormulateQuery(query, &rng_b, nullptr);
  ASSERT_TRUE(serial_q.ok());
  ASSERT_TRUE(pooled_q.ok());
  ASSERT_EQ(serial_q->entries.size(), pooled_q->entries.size());
  for (size_t i = 0; i < serial_q->entries.size(); ++i) {
    EXPECT_EQ(serial_q->entries[i].term, pooled_q->entries[i].term);
    EXPECT_EQ(serial_q->entries[i].indicator, pooled_q->entries[i].indicator);
  }
}

TEST(PrivateRetrievalClientTest, PostFilterDropsZeroScores) {
  Pipeline p(4, 77);
  Rng rng(104);
  // Construct an encrypted result of two candidates: score 7 and score 0.
  EncryptedResult result;
  auto c7 = p.keys->public_key().Encrypt(7, &rng);
  auto c0 = p.keys->public_key().Encrypt(0, &rng);
  result.candidates.push_back({0, *c7});
  result.candidates.push_back({1, *c0});
  RetrievalCosts costs;
  auto ranked = p.client->PostFilter(result, 10, &costs);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 1u);
  EXPECT_EQ((*ranked)[0].doc, 0u);
  EXPECT_EQ((*ranked)[0].score, 7u);
}

TEST(PrivateRetrievalClientTest, PostFilterRespectsK) {
  Pipeline p(4, 78);
  Rng rng(105);
  EncryptedResult result;
  for (uint64_t i = 0; i < 10; ++i) {
    auto c = p.keys->public_key().Encrypt(10 + i, &rng);
    result.candidates.push_back({static_cast<corpus::DocId>(i), *c});
  }
  RetrievalCosts costs;
  auto ranked = p.client->PostFilter(result, 3, &costs);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].score, 19u);  // highest first
  EXPECT_EQ((*ranked)[2].score, 17u);
}

TEST(PrivateRetrievalClientTest, TamperedScoreSurfacesAsError) {
  Pipeline p(4, 79);
  EncryptedResult result;
  // A ciphertext outside Z*_n.
  result.candidates.push_back(
      {0, crypto::BenalohCiphertext{p.keys->public_key().n()}});
  RetrievalCosts costs;
  EXPECT_FALSE(p.client->PostFilter(result, 10, &costs).ok());
}

// --- Cost accounting ---------------------------------------------------------

TEST(RetrievalCostsTest, AddAccumulates) {
  RetrievalCosts a;
  a.server_io_ms = 1;
  a.server_cpu_ms = 2;
  a.uplink_bytes = 3;
  a.downlink_bytes = 4;
  a.user_cpu_ms = 5;
  RetrievalCosts b = a;
  b.Add(a);
  EXPECT_DOUBLE_EQ(b.server_io_ms, 2);
  EXPECT_DOUBLE_EQ(b.server_cpu_ms, 4);
  EXPECT_EQ(b.uplink_bytes, 6u);
  EXPECT_EQ(b.downlink_bytes, 8u);
  EXPECT_DOUBLE_EQ(b.user_cpu_ms, 10);
}

TEST(PrivateRetrievalCostsTest, WireAccountingConsistent) {
  Pipeline p(8, 80);
  Rng rng(106);
  auto query = p.RandomIndexedQuery(3, &rng);
  RetrievalCosts costs;
  auto f = p.client->FormulateQuery(query, &rng, &costs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(costs.uplink_bytes, f->WireBytes(p.keys->public_key()));
  auto enc = p.server->Process(*f, p.keys->public_key(), &costs);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(costs.downlink_bytes, enc->WireBytes(p.keys->public_key()));
  EXPECT_GT(costs.user_cpu_ms, 0.0);
}

TEST(PrivateRetrievalCostsTest, LargerBucketsCostMoreUplink) {
  Pipeline small(2, 81);
  Pipeline large(16, 81);
  Rng rng(107);
  auto terms_small = small.built.index.IndexedTerms();
  wordnet::TermId t = terms_small[17];
  RetrievalCosts cs, cl;
  ASSERT_TRUE(small.client->FormulateQuery({t}, &rng, &cs).ok());
  ASSERT_TRUE(large.client->FormulateQuery({t}, &rng, &cl).ok());
  EXPECT_GT(cl.uplink_bytes, cs.uplink_bytes);
}

}  // namespace
}  // namespace embellish::core
