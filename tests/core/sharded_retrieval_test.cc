// Shard-vs-monolith bit-equivalence for both retrieval schemes: the sharded
// engines must produce exactly the bytes/postings/rankings the monolithic
// engines produce, serial or pooled, for every partitioning.

#include "core/sharded_retrieval.h"

#include <gtest/gtest.h>

#include "core/wire_format.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::core {
namespace {

struct ShardedPipeline {
  wordnet::WordNetDatabase lex;
  corpus::Corpus corp;
  index::BuildOutput built;
  BucketOrganization org;
  storage::StorageLayout layout;
  index::ShardedIndex sharded;
  std::vector<storage::StorageLayout> shard_layouts;

  explicit ShardedPipeline(size_t shards,
                           index::ShardPartition partition =
                               index::ShardPartition::kDocRange,
                           uint64_t seed = 71)
      : lex(testutil::SmallSyntheticLexicon(1500, seed)),
        corp(testutil::SmallCorpus(lex, 150, seed + 1)),
        built(std::move(index::BuildIndex(corp, {})).value()),
        org(testutil::MakeBuckets(lex, 4, 64)),
        layout(storage::StorageLayout::Build(
            built.index, org.buckets(),
            storage::LayoutPolicy::kBucketColocated, {})),
        sharded(std::move(index::ShardedIndex::Build(
                              built.index,
                              {.shard_count = shards, .partition = partition}))
                    .value()),
        shard_layouts(BuildShardLayouts(
            sharded, org, storage::LayoutPolicy::kBucketColocated, {})) {}
};

crypto::BenalohKeyPair MakeKeys(uint64_t seed) {
  Rng rng(seed);
  crypto::BenalohKeyOptions ko;
  ko.key_bits = 256;
  ko.r = 59049;
  return std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value();
}

TEST(ShardedPrTest, MergedResultBitIdenticalToMonolith) {
  for (size_t shards : {1u, 2u, 4u}) {
    for (index::ShardPartition partition :
         {index::ShardPartition::kDocRange, index::ShardPartition::kDocHash}) {
      ShardedPipeline p(shards, partition);
      auto keys = MakeKeys(81);
      PrivateRetrievalClient client(&p.org, &keys.public_key(),
                                    &keys.private_key());
      PrivateRetrievalServer mono(&p.built.index, &p.org, &p.layout);
      ShardedPrivateRetrievalServer shard_server(&p.sharded, &p.org,
                                                 &p.shard_layouts);

      Rng rng(82);
      auto terms = p.built.index.IndexedTerms();
      for (int trial = 0; trial < 3; ++trial) {
        std::vector<wordnet::TermId> genuine{
            terms[rng.Uniform(terms.size())],
            terms[rng.Uniform(terms.size())]};
        auto query = client.FormulateQuery(genuine, &rng, nullptr);
        ASSERT_TRUE(query.ok());

        auto mono_result = mono.Process(*query, keys.public_key(), nullptr);
        RetrievalCosts costs;
        auto shard_result =
            shard_server.Process(*query, keys.public_key(), &costs);
        ASSERT_TRUE(mono_result.ok());
        ASSERT_TRUE(shard_result.ok());
        // Bit-identical on the wire — same candidates, same doc order, same
        // ciphertext residues.
        EXPECT_EQ(EncodeResult(*shard_result, keys.public_key()),
                  EncodeResult(*mono_result, keys.public_key()))
            << "shards=" << shards;
        if (shards > 1) {
          EXPECT_GT(costs.server_cpu_ms, 0.0);
          EXPECT_GT(costs.server_io_ms, 0.0);
        }
      }
    }
  }
}

TEST(ShardedPrTest, PooledFanOutBitIdenticalToSerial) {
  ShardedPipeline p(4);
  auto keys = MakeKeys(83);
  PrivateRetrievalClient client(&p.org, &keys.public_key(),
                                &keys.private_key());
  ThreadPool pool(4);
  ShardedPrivateRetrievalServer serial(&p.sharded, &p.org, &p.shard_layouts);
  ShardedPrivateRetrievalServer pooled(&p.sharded, &p.org, &p.shard_layouts,
                                       {}, {}, &pool);

  Rng rng(84);
  auto terms = p.built.index.IndexedTerms();
  std::vector<wordnet::TermId> genuine{terms[3], terms[41], terms[97]};
  auto query = client.FormulateQuery(genuine, &rng, nullptr);
  ASSERT_TRUE(query.ok());
  auto a = serial.Process(*query, keys.public_key(), nullptr);
  auto b = pooled.Process(*query, keys.public_key(), nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(EncodeResult(*a, keys.public_key()),
            EncodeResult(*b, keys.public_key()));
}

TEST(ShardedPrTest, EndToEndRankingMatchesPlaintext) {
  ShardedPipeline p(3);
  auto keys = MakeKeys(85);
  PrivateRetrievalClient client(&p.org, &keys.public_key(),
                                &keys.private_key());
  ShardedPrivateRetrievalServer server(&p.sharded, &p.org, &p.shard_layouts);

  Rng rng(86);
  auto terms = p.built.index.IndexedTerms();
  std::vector<wordnet::TermId> genuine{terms[5], terms[23]};
  auto query = client.FormulateQuery(genuine, &rng, nullptr);
  ASSERT_TRUE(query.ok());
  auto encrypted = server.Process(*query, keys.public_key(), nullptr);
  ASSERT_TRUE(encrypted.ok());
  auto ranked = client.PostFilter(*encrypted, 15, nullptr);
  ASSERT_TRUE(ranked.ok());

  auto reference = index::EvaluateFull(p.built.index, genuine);
  if (reference.size() > 15) reference.resize(15);
  ASSERT_EQ(ranked->size(), reference.size());
  for (size_t i = 0; i < ranked->size(); ++i) {
    EXPECT_EQ((*ranked)[i], reference[i]);
  }
}

TEST(ShardedPirTest, RetrievedListsBitIdenticalToIndex) {
  for (size_t shards : {1u, 2u, 4u}) {
    ShardedPipeline p(shards);
    ShardedPirRetrievalServer server(&p.sharded, &p.org, &p.shard_layouts);
    Rng rng(87);
    auto client = PirRetrievalClient::Create(&p.org, 128, &rng);
    ASSERT_TRUE(client.ok());

    auto terms = p.built.index.IndexedTerms();
    for (size_t i = 0; i < 5; ++i) {
      wordnet::TermId term = terms[rng.Uniform(terms.size())];
      RetrievalCosts costs;
      auto list = RetrieveListSharded(*client, server, term, &rng, &costs);
      ASSERT_TRUE(list.ok()) << list.status().ToString();
      EXPECT_EQ(*list, *p.built.index.postings(term)) << "shards=" << shards;
      EXPECT_GT(costs.uplink_bytes, 0u);
      EXPECT_GT(costs.downlink_bytes, 0u);
    }
  }
}

TEST(ShardedPirTest, PooledAnswersMatchSerial) {
  ShardedPipeline p(4);
  ThreadPool pool(4);
  ShardedPirRetrievalServer serial(&p.sharded, &p.org, &p.shard_layouts);
  ShardedPirRetrievalServer pooled(&p.sharded, &p.org, &p.shard_layouts, {},
                                   &pool);
  Rng rng(88);
  auto client = PirRetrievalClient::Create(&p.org, 128, &rng);
  ASSERT_TRUE(client.ok());

  auto terms = p.built.index.IndexedTerms();
  wordnet::TermId term = terms[11];
  auto where = p.org.Locate(term);
  ASSERT_TRUE(where.ok());
  auto query = client->pir_client().BuildQuery(
      where->slot, p.org.bucket(where->bucket).size(), &rng);
  ASSERT_TRUE(query.ok());

  auto a = serial.AnswerAll(where->bucket, *query, nullptr);
  auto b = pooled.AnswerAll(where->bucket, *query, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t s = 0; s < a->size(); ++s) {
    ASSERT_EQ((*a)[s].gamma.size(), (*b)[s].gamma.size());
    for (size_t i = 0; i < (*a)[s].gamma.size(); ++i) {
      EXPECT_EQ((*a)[s].gamma[i], (*b)[s].gamma[i]);
    }
  }
}

TEST(ShardedPirTest, RunQueryShardedMatchesPlaintextRanking) {
  ShardedPipeline p(3, index::ShardPartition::kDocHash);
  ShardedPirRetrievalServer server(&p.sharded, &p.org, &p.shard_layouts);
  Rng rng(89);
  auto client = PirRetrievalClient::Create(&p.org, 128, &rng);
  ASSERT_TRUE(client.ok());

  auto terms = p.built.index.IndexedTerms();
  std::vector<wordnet::TermId> query{terms[2], terms[31], terms[64]};
  RetrievalCosts costs;
  auto ranked = RunQuerySharded(*client, server, query, 20, &rng, &costs);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();

  auto reference = index::EvaluateFull(p.built.index, query);
  if (reference.size() > 20) reference.resize(20);
  ASSERT_EQ(ranked->size(), reference.size());
  for (size_t i = 0; i < ranked->size(); ++i) {
    EXPECT_EQ((*ranked)[i], reference[i]);
  }
  EXPECT_GT(costs.server_io_ms, 0.0);
  EXPECT_GT(costs.server_cpu_ms, 0.0);
}

TEST(ShardedPirTest, ShardOutOfRangeSurfacesError) {
  ShardedPipeline p(2);
  ShardedPirRetrievalServer server(&p.sharded, &p.org, &p.shard_layouts);
  crypto::PirQuery bogus;
  RetrievalCosts costs;
  EXPECT_FALSE(server.Answer(99, 0, bogus, &costs).ok());
}

}  // namespace
}  // namespace embellish::core
