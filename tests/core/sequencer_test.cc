#include "core/sequencer.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "testutil.h"
#include "wordnet/mini_wordnet.h"

namespace embellish::core {
namespace {

// Position of each term in the concatenation of all sequences.
std::unordered_map<wordnet::TermId, size_t> Positions(
    const SequencerResult& result) {
  std::unordered_map<wordnet::TermId, size_t> pos;
  size_t i = 0;
  for (const auto& seq : result.sequences) {
    for (wordnet::TermId t : seq) pos[t] = i++;
  }
  return pos;
}

TEST(SequencerTest, EveryTermAppearsExactlyOnce) {
  auto lex = testutil::SmallSyntheticLexicon(3000, 41);
  auto result = SequenceDictionary(lex);
  std::set<wordnet::TermId> seen;
  for (const auto& seq : result.sequences) {
    for (wordnet::TermId t : seq) {
      EXPECT_TRUE(seen.insert(t).second) << "term " << t << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), lex.term_count());
  EXPECT_EQ(result.TotalTerms(), lex.term_count());
}

TEST(SequencerTest, SingleSequenceForConnectedLexicon) {
  // The synthetic lexicon's hypernym tree is rooted at 'entity'; like the
  // real WordNet run in Section 3.3, everything coalesces into one sequence
  // ... or a small number when low-connectivity seeds start new runs late.
  auto lex = testutil::SmallSyntheticLexicon(3000, 42);
  auto result = SequenceDictionary(lex);
  EXPECT_LT(result.sequences.size(), lex.term_count() / 8);
}

TEST(SequencerTest, SynonymsEndUpAdjacent) {
  // Terms of one synset are appended together (Algorithm 1 line 8), so the
  // gap between synset-mates is small.
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  auto result = SequenceDictionary(*db);
  auto pos = Positions(result);
  auto gap = [&](const char* a, const char* b) {
    size_t pa = pos.at(db->FindTerm(a));
    size_t pb = pos.at(db->FindTerm(b));
    return pa > pb ? pa - pb : pb - pa;
  };
  EXPECT_LE(gap("osteosarcoma", "osteogenic sarcoma"), 1u);
  EXPECT_LE(gap("hypocapnia", "acapnia"), 1u);
  EXPECT_LE(gap("abu sayyaf", "bearer of the sword"), 1u);
}

TEST(SequencerTest, RelatedTermsClusterTogether) {
  // The Section 3.3 snippets: sarcoma varieties sit near each other, far
  // from the plant families.
  auto db = wordnet::BuildMiniWordNet();
  ASSERT_TRUE(db.ok());
  auto result = SequenceDictionary(*db);
  auto pos = Positions(result);
  auto p = [&](const char* t) { return pos.at(db->FindTerm(t)); };
  auto dist = [&](const char* a, const char* b) {
    return p(a) > p(b) ? p(a) - p(b) : p(b) - p(a);
  };
  // Same cluster: within a handful of slots.
  EXPECT_LT(dist("osteosarcoma", "myosarcoma"), 12u);
  EXPECT_LT(dist("osteosarcoma", "rhabdomyosarcoma"), 12u);
  EXPECT_LT(dist("hypercapnia", "hypocapnia"), 12u);
  // Cross-cluster: far apart relative to cluster diameter.
  EXPECT_GT(dist("osteosarcoma", "abu sayyaf"), 12u);
}

TEST(SequencerTest, DeterministicOutput) {
  auto lex = testutil::SmallSyntheticLexicon(2000, 43);
  auto a = SequenceDictionary(lex);
  auto b = SequenceDictionary(lex);
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (size_t i = 0; i < a.sequences.size(); ++i) {
    EXPECT_EQ(a.sequences[i], b.sequences[i]);
  }
}

TEST(SequencerTest, TermFilterRestrictsOutput) {
  auto lex = testutil::SmallSyntheticLexicon(2000, 44);
  SequencerOptions options;
  options.term_filter = [](wordnet::TermId t) { return t % 2 == 0; };
  auto result = SequenceDictionary(lex, options);
  for (const auto& seq : result.sequences) {
    for (wordnet::TermId t : seq) {
      EXPECT_EQ(t % 2, 0u);
    }
  }
  EXPECT_EQ(result.TotalTerms(), (lex.term_count() + 1) / 2);
}

TEST(SequencerTest, HighConnectivitySynsetsSeedFirst) {
  // The seed order is decreasing relation count; the very first sequence
  // must start with a term of a maximally connected synset.
  auto lex = testutil::TinyLexicon();
  auto result = SequenceDictionary(lex);
  ASSERT_FALSE(result.sequences.empty());
  ASSERT_FALSE(result.sequences[0].empty());
  wordnet::TermId first = result.sequences[0][0];
  size_t max_rel = 0;
  for (wordnet::SynsetId s = 0; s < lex.synset_count(); ++s) {
    max_rel = std::max(max_rel, lex.synset(s).RelationCount());
  }
  size_t first_rel = 0;
  for (wordnet::SynsetId s : lex.term(first).synsets) {
    first_rel = std::max(first_rel, lex.synset(s).RelationCount());
  }
  EXPECT_EQ(first_rel, max_rel);
}

TEST(SequencerTest, TinyLexiconFullCoverage) {
  auto lex = testutil::TinyLexicon();
  auto result = SequenceDictionary(lex);
  EXPECT_EQ(result.TotalTerms(), lex.term_count());
}

}  // namespace
}  // namespace embellish::core
