#include "core/bucketizer.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/decoy_random.h"
#include "testutil.h"

namespace embellish::core {
namespace {

SequencerResult SeqOf(const wordnet::WordNetDatabase& lex) {
  return SequenceDictionary(lex);
}

TEST(BucketizerTest, OptionsValidation) {
  BucketizerOptions o;
  o.bucket_size = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BucketizerOptions{};
  o.segment_size = 0;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_TRUE(BucketizerOptions{}.Validate().ok());
}

TEST(BucketizerTest, RejectsOversizedBucketsPerPaperConstraint) {
  // BktSz <= N/2 (Section 3.4).
  auto lex = testutil::TinyLexicon();  // 14 terms
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  BucketizerOptions o;
  o.bucket_size = 8;
  auto org = FormBuckets(SeqOf(lex), spec, o);
  EXPECT_FALSE(org.ok());
  o.bucket_size = 7;
  EXPECT_TRUE(FormBuckets(SeqOf(lex), spec, o).ok());
}

class BucketizerSweepTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(BucketizerSweepTest, PartitionInvariants) {
  auto [bktsz, segsz] = GetParam();
  auto lex = testutil::SmallSyntheticLexicon(2500, 51);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  BucketizerOptions o;
  o.bucket_size = bktsz;
  o.segment_size = segsz;
  auto org = FormBuckets(SeqOf(lex), spec, o);
  ASSERT_TRUE(org.ok()) << org.status().ToString();

  // Every term in exactly one bucket (Create() rejects duplicates).
  EXPECT_EQ(org->term_count(), lex.term_count());
  // No bucket exceeds BktSz.
  for (size_t b = 0; b < org->bucket_count(); ++b) {
    EXPECT_LE(org->bucket(b).size(), bktsz);
    EXPECT_GE(org->bucket(b).size(), 1u);
  }
  // Bucket count ~= N / BktSz.
  EXPECT_GE(org->bucket_count(), lex.term_count() / bktsz);
  // Locate() agrees with the bucket contents.
  for (size_t b = 0; b < org->bucket_count(); b += 7) {
    for (size_t s = 0; s < org->bucket(b).size(); ++s) {
      auto where = org->Locate(org->bucket(b)[s]);
      ASSERT_TRUE(where.ok());
      EXPECT_EQ(where->bucket, b);
      EXPECT_EQ(where->slot, s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BucketizerSweepTest,
    ::testing::Values(std::pair<size_t, size_t>{2, 4},
                      std::pair<size_t, size_t>{4, 512},
                      std::pair<size_t, size_t>{8, 64},
                      std::pair<size_t, size_t>{8, 1000000},  // clamped
                      std::pair<size_t, size_t>{24, 16},
                      std::pair<size_t, size_t>{3, 7},    // nothing divides
                      std::pair<size_t, size_t>{16, 1}));

TEST(BucketizerTest, ExactDivisionGivesUniformBuckets) {
  // 2500-term lexicon truncated via filter to exactly 2048 terms.
  auto lex = testutil::SmallSyntheticLexicon(2500, 52);
  SequencerOptions so;
  so.term_filter = [](wordnet::TermId t) { return t < 2048; };
  auto seq = SequenceDictionary(lex, so);
  ASSERT_EQ(seq.TotalTerms(), 2048u);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  BucketizerOptions o;
  o.bucket_size = 8;
  o.segment_size = 64;  // 2048 = 8 * 64 * 4 groups
  auto org = FormBuckets(seq, spec, o);
  ASSERT_TRUE(org.ok());
  EXPECT_EQ(org->bucket_count(), 2048u / 8u);
  for (size_t b = 0; b < org->bucket_count(); ++b) {
    EXPECT_EQ(org->bucket(b).size(), 8u);
  }
}

TEST(BucketizerTest, CoBucketTermsComeFromDistantSequenceRegions) {
  // Algorithm 2's whole point: slot-mates are BktSz segments apart, i.e.
  // far apart in the sequence, hence semantically diverse.
  auto lex = testutil::SmallSyntheticLexicon(2500, 53);
  auto seq = SequenceDictionary(lex);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  // Position map over the concatenated sequence.
  std::unordered_map<wordnet::TermId, size_t> pos;
  size_t i = 0;
  for (const auto& s : seq.sequences) {
    for (wordnet::TermId t : s) pos[t] = i++;
  }
  const size_t n = i;
  BucketizerOptions o;
  o.bucket_size = 4;
  o.segment_size = 64;
  auto org = FormBuckets(seq, spec, o);
  ASSERT_TRUE(org.ok());
  // For full buckets, consecutive slots must be >= one group span apart
  // (group span = N/BktSz segments of the original sequence modulo the
  // in-segment specificity sort, which moves terms < SegSz positions).
  const size_t group_span = n / o.bucket_size;
  size_t checked = 0;
  for (size_t b = 0; b < org->bucket_count() && checked < 200; ++b) {
    const auto& bucket = org->bucket(b);
    if (bucket.size() < 2) continue;
    for (size_t s = 1; s < bucket.size(); ++s) {
      size_t p0 = pos.at(bucket[s - 1]);
      size_t p1 = pos.at(bucket[s]);
      size_t gap = p1 > p0 ? p1 - p0 : p0 - p1;
      EXPECT_GT(gap + 2 * o.segment_size, group_span / 2)
          << "bucket " << b << " slot " << s;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(BucketizerTest, StableSortKeepsTieOrder) {
  // Within a segment, equal-specificity terms retain sequence order
  // (Algorithm 2 line 5; the Section 5.1 observation).
  auto lex = testutil::SmallSyntheticLexicon(2500, 54);
  auto seq = SequenceDictionary(lex);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  BucketizerOptions stable;
  stable.bucket_size = 4;
  stable.segment_size = 128;
  auto a = FormBuckets(seq, spec, stable);
  auto b = FormBuckets(seq, spec, stable);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Determinism.
  ASSERT_EQ(a->bucket_count(), b->bucket_count());
  for (size_t i = 0; i < a->bucket_count(); ++i) {
    EXPECT_EQ(a->bucket(i), b->bucket(i));
  }
  // The unstable ablation produces a different organization.
  BucketizerOptions unstable = stable;
  unstable.stable_specificity_sort = false;
  auto c = FormBuckets(seq, spec, unstable);
  ASSERT_TRUE(c.ok());
  bool any_difference = false;
  for (size_t i = 0; i < a->bucket_count() && !any_difference; ++i) {
    any_difference = a->bucket(i) != c->bucket(i);
  }
  EXPECT_TRUE(any_difference);
}

TEST(BucketizerTest, LargerSegmentsTightenSpecificitySpread) {
  // Figure 5(a)'s qualitative claim.
  auto lex = testutil::SmallSyntheticLexicon(4000, 55);
  auto seq = SequenceDictionary(lex);
  auto spec = SpecificityMap::FromHypernymDepth(lex);
  auto spread = [&](size_t segsz) {
    BucketizerOptions o;
    o.bucket_size = 4;
    o.segment_size = segsz;
    auto org = FormBuckets(seq, spec, o);
    EXPECT_TRUE(org.ok());
    double total = 0;
    for (size_t b = 0; b < org->bucket_count(); ++b) {
      int lo = 1000, hi = -1;
      for (auto t : org->bucket(b)) {
        lo = std::min(lo, spec.TermSpecificity(t));
        hi = std::max(hi, spec.TermSpecificity(t));
      }
      total += hi - lo;
    }
    return total / static_cast<double>(org->bucket_count());
  };
  EXPECT_LT(spread(512), spread(4));
}

TEST(BucketOrganizationTest, CreateRejectsDuplicatesAndEmpties) {
  EXPECT_FALSE(BucketOrganization::Create({}).ok());
  EXPECT_FALSE(BucketOrganization::Create({{1, 2}, {}}).ok());
  EXPECT_FALSE(BucketOrganization::Create({{1, 2}, {2, 3}}).ok());
  auto ok = BucketOrganization::Create({{1, 2}, {3, 4}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->bucket_count(), 2u);
  EXPECT_EQ(ok->nominal_bucket_size(), 2u);
  EXPECT_FALSE(ok->Locate(99).ok());
  EXPECT_TRUE(ok->Contains(3));
  EXPECT_FALSE(ok->Contains(9));
}

TEST(RandomBucketsTest, PartitionAndDeterminism) {
  std::vector<wordnet::TermId> terms;
  for (wordnet::TermId t = 0; t < 1000; ++t) terms.push_back(t);
  Rng rng(1);
  auto org = RandomBucketOrganization(terms, 8, &rng);
  ASSERT_TRUE(org.ok());
  EXPECT_EQ(org->term_count(), 1000u);
  EXPECT_EQ(org->bucket_count(), 125u);
  Rng rng2(1);
  auto org2 = RandomBucketOrganization(terms, 8, &rng2);
  ASSERT_TRUE(org2.ok());
  for (size_t b = 0; b < org->bucket_count(); ++b) {
    EXPECT_EQ(org->bucket(b), org2->bucket(b));
  }
  EXPECT_FALSE(RandomBucketOrganization({}, 8, &rng).ok());
  EXPECT_FALSE(RandomBucketOrganization(terms, 0, &rng).ok());
}

}  // namespace
}  // namespace embellish::core
