// Wire-format round trips and failure injection for the PR protocol
// messages: a server/client pair must interoperate through raw bytes, and
// every malformed frame must be rejected with Corruption — never decoded
// into something plausible.

#include "core/wire_format.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/bucket_io.h"
#include "index/builder.h"
#include "testutil.h"

namespace embellish::core {
namespace {

class WireFormatTest : public ::testing::Test {
 protected:
  WireFormatTest()
      : lex_(testutil::SmallSyntheticLexicon(1500, 111)),
        corp_(testutil::SmallCorpus(lex_, 150, 112)),
        built_(std::move(index::BuildIndex(corp_, {})).value()),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {
    Rng rng(113);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 59049;
    keys_ = std::make_unique<crypto::BenalohKeyPair>(
        std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
  }

  EmbellishedQuery MakeQuery(Rng* rng) {
    QueryEmbellisher embellisher(&org_, &keys_->public_key());
    auto terms = built_.index.IndexedTerms();
    std::vector<wordnet::TermId> genuine{terms[3], terms[71]};
    return std::move(embellisher.Embellish(genuine, rng)).value();
  }

  wordnet::WordNetDatabase lex_;
  corpus::Corpus corp_;
  index::BuildOutput built_;
  BucketOrganization org_;
  std::unique_ptr<crypto::BenalohKeyPair> keys_;
};

TEST_F(WireFormatTest, QueryRoundTrip) {
  Rng rng(1);
  EmbellishedQuery query = MakeQuery(&rng);
  auto bytes = EncodeQuery(query, keys_->public_key());
  EXPECT_EQ(bytes.size(), 4 + query.WireBytes(keys_->public_key()));
  auto decoded = DecodeQuery(bytes, keys_->public_key());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->entries.size(), query.entries.size());
  for (size_t i = 0; i < query.entries.size(); ++i) {
    EXPECT_EQ(decoded->entries[i].term, query.entries[i].term);
    EXPECT_EQ(decoded->entries[i].indicator, query.entries[i].indicator);
  }
}

TEST_F(WireFormatTest, DecodedQueryProcessesIdentically) {
  // Full interop: encode on the client, decode on the server, process, and
  // get byte-identical results to the in-memory path.
  Rng rng(2);
  EmbellishedQuery query = MakeQuery(&rng);
  auto bytes = EncodeQuery(query, keys_->public_key());
  auto decoded = DecodeQuery(bytes, keys_->public_key());
  ASSERT_TRUE(decoded.ok());

  PrivateRetrievalServer server(&built_.index, &org_, nullptr);
  auto direct = server.Process(query, keys_->public_key(), nullptr);
  auto via_wire = server.Process(*decoded, keys_->public_key(), nullptr);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_wire.ok());
  ASSERT_EQ(direct->candidates.size(), via_wire->candidates.size());
  for (size_t i = 0; i < direct->candidates.size(); ++i) {
    EXPECT_EQ(direct->candidates[i].doc, via_wire->candidates[i].doc);
    EXPECT_EQ(direct->candidates[i].score, via_wire->candidates[i].score);
  }
}

TEST_F(WireFormatTest, ResultRoundTrip) {
  Rng rng(3);
  EmbellishedQuery query = MakeQuery(&rng);
  PrivateRetrievalServer server(&built_.index, &org_, nullptr);
  auto result = server.Process(query, keys_->public_key(), nullptr);
  ASSERT_TRUE(result.ok());
  auto bytes = EncodeResult(*result, keys_->public_key());
  auto decoded = DecodeResult(bytes, keys_->public_key());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->candidates.size(), result->candidates.size());
  for (size_t i = 0; i < result->candidates.size(); ++i) {
    EXPECT_EQ(decoded->candidates[i].doc, result->candidates[i].doc);
    EXPECT_EQ(decoded->candidates[i].score, result->candidates[i].score);
  }
}

TEST_F(WireFormatTest, RejectsTruncatedFrames) {
  Rng rng(4);
  auto bytes = EncodeQuery(MakeQuery(&rng), keys_->public_key());
  for (size_t cut : {0u, 3u, 5u, 37u}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    auto decoded = DecodeQuery(truncated, keys_->public_key());
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
  std::vector<uint8_t> minus_one(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(DecodeQuery(minus_one, keys_->public_key()).ok());
}

TEST_F(WireFormatTest, RejectsTrailingGarbage) {
  Rng rng(5);
  auto bytes = EncodeQuery(MakeQuery(&rng), keys_->public_key());
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeQuery(bytes, keys_->public_key()).ok());
}

TEST_F(WireFormatTest, RejectsLyingEntryCount) {
  Rng rng(6);
  auto bytes = EncodeQuery(MakeQuery(&rng), keys_->public_key());
  bytes[3] += 1;  // count + 1 without payload
  EXPECT_FALSE(DecodeQuery(bytes, keys_->public_key()).ok());
  // Huge count must not cause a huge allocation before the size check.
  bytes[0] = 0xFF;
  EXPECT_FALSE(DecodeQuery(bytes, keys_->public_key()).ok());
}

TEST_F(WireFormatTest, RejectsOverflowingEntryCount) {
  // The count field is attacker-controlled; 4 + count * entry_size can wrap
  // on a 32-bit size_t, so the decoder must bound count by the bytes present
  // before any multiplication. With entry_size = 36 (4 + 256/8), a count of
  // 0x0E38E38F makes the product overflow 32 bits to a tiny value.
  const size_t entry_size = 4 + keys_->public_key().CiphertextBytes();
  ASSERT_EQ(entry_size, 36u);
  for (uint32_t hostile : {0x0E38E38Fu, 0xFFFFFFFFu, 0x80000000u}) {
    std::vector<uint8_t> bytes{
        static_cast<uint8_t>(hostile >> 24), static_cast<uint8_t>(hostile >> 16),
        static_cast<uint8_t>(hostile >> 8), static_cast<uint8_t>(hostile)};
    bytes.resize(bytes.size() + 2 * entry_size, 0);  // far fewer than claimed
    auto decoded = DecodeQuery(bytes, keys_->public_key());
    ASSERT_FALSE(decoded.ok()) << "count=" << hostile;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST_F(WireFormatTest, BitFlipFuzzNeverCrashes) {
  // Unframed payload encodings carry no checksum, so a flipped ciphertext
  // bit may still decode into another valid residue — but a flip must never
  // crash, and flips in the structural fields must be rejected cleanly.
  Rng rng(8);
  auto bytes = EncodeQuery(MakeQuery(&rng), keys_->public_key());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = bytes;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      auto decoded = DecodeQuery(flipped, keys_->public_key());
      if (byte < 4) {
        // Any count flip changes the expected size -> Corruption.
        ASSERT_FALSE(decoded.ok()) << "byte=" << byte << " bit=" << bit;
        EXPECT_TRUE(decoded.status().IsCorruption());
      } else if (!decoded.ok()) {
        EXPECT_TRUE(decoded.status().IsCorruption())
            << "byte=" << byte << " bit=" << bit;
      }
    }
  }
}

TEST_F(WireFormatTest, ResultDecoderRejectsMalformedInput) {
  Rng rng(9);
  EmbellishedQuery query = MakeQuery(&rng);
  PrivateRetrievalServer server(&built_.index, &org_, nullptr);
  auto result = server.Process(query, keys_->public_key(), nullptr);
  ASSERT_TRUE(result.ok());
  auto bytes = EncodeResult(*result, keys_->public_key());

  for (size_t cut : {0u, 2u, 7u, 41u}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    auto decoded = DecodeResult(truncated, keys_->public_key());
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
  std::vector<uint8_t> oversized = bytes;
  oversized.insert(oversized.end(), 17, 0xEE);
  EXPECT_TRUE(
      DecodeResult(oversized, keys_->public_key()).status().IsCorruption());
  std::vector<uint8_t> hostile_count = bytes;
  hostile_count[0] = 0xFF;
  EXPECT_TRUE(DecodeResult(hostile_count, keys_->public_key())
                  .status()
                  .IsCorruption());
}

TEST_F(WireFormatTest, RejectsCiphertextOutOfRange) {
  Rng rng(7);
  EmbellishedQuery query = MakeQuery(&rng);
  auto bytes = EncodeQuery(query, keys_->public_key());
  // Overwrite the first ciphertext with 0xFF..FF >= n.
  for (size_t i = 8; i < 8 + keys_->public_key().CiphertextBytes(); ++i) {
    bytes[i] = 0xFF;
  }
  auto decoded = DecodeQuery(bytes, keys_->public_key());
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST_F(WireFormatTest, EmptyFramesRoundTrip) {
  EncryptedResult empty;
  auto bytes = EncodeResult(empty, keys_->public_key());
  auto decoded = DecodeResult(bytes, keys_->public_key());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->candidates.empty());
}

// --- Bucket organization persistence ---------------------------------------

TEST_F(WireFormatTest, BucketOrganizationRoundTrip) {
  std::string text = SerializeBuckets(org_);
  auto parsed = ParseBuckets(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->bucket_count(), org_.bucket_count());
  for (size_t b = 0; b < org_.bucket_count(); ++b) {
    EXPECT_EQ(parsed->bucket(b), org_.bucket(b));
  }
  // Locate() agrees after the round trip.
  wordnet::TermId t = org_.bucket(7)[1];
  EXPECT_EQ(parsed->Locate(t)->bucket, org_.Locate(t)->bucket);
}

TEST_F(WireFormatTest, BucketFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/buckets_rt.txt";
  ASSERT_TRUE(SaveBucketsToFile(org_, path).ok());
  auto loaded = LoadBucketsFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->bucket_count(), org_.bucket_count());
  std::remove(path.c_str());
}

TEST_F(WireFormatTest, BucketParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseBuckets("").ok());
  EXPECT_FALSE(ParseBuckets("wrong 1\n").ok());
  EXPECT_FALSE(ParseBuckets("embellish-buckets 1\nbuckets x\n").ok());
  EXPECT_FALSE(ParseBuckets("embellish-buckets 1\nbuckets 2\nB 1 2\n").ok());
  // Duplicate term across buckets -> Create() rejects.
  EXPECT_FALSE(
      ParseBuckets("embellish-buckets 1\nbuckets 2\nB 1 2\nB 2 3\n").ok());
  // Empty bucket.
  EXPECT_FALSE(
      ParseBuckets("embellish-buckets 1\nbuckets 2\nB 1 2\nB\n").ok());
  // Valid minimal case.
  EXPECT_TRUE(
      ParseBuckets("embellish-buckets 1\nbuckets 2\nB 1 2\nB 3 4\n").ok());
}

TEST_F(WireFormatTest, LoadBucketsMissingFile) {
  auto loaded = LoadBucketsFromFile("/nonexistent/buckets.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIoError());
}

}  // namespace
}  // namespace embellish::core
