#include "core/embellisher.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "testutil.h"

namespace embellish::core {
namespace {

class EmbellisherTest : public ::testing::Test {
 protected:
  EmbellisherTest()
      : lex_(testutil::SmallSyntheticLexicon(2000, 61)),
        org_(testutil::MakeBuckets(lex_, 4, 64)) {
    Rng rng(1);
    crypto::BenalohKeyOptions ko;
    ko.key_bits = 256;
    ko.r = 729;
    keys_ = std::make_unique<crypto::BenalohKeyPair>(
        std::move(crypto::BenalohKeyPair::Generate(ko, &rng)).value());
    embellisher_ = std::make_unique<QueryEmbellisher>(
        &org_, &keys_->public_key());
  }

  wordnet::WordNetDatabase lex_;
  BucketOrganization org_;
  std::unique_ptr<crypto::BenalohKeyPair> keys_;
  std::unique_ptr<QueryEmbellisher> embellisher_;
};

TEST_F(EmbellisherTest, RejectsEmptyQuery) {
  Rng rng(2);
  EXPECT_TRUE(embellisher_->Embellish({}, &rng).status().IsInvalidArgument());
}

TEST_F(EmbellisherTest, RejectsUnbucketedTerm) {
  Rng rng(3);
  auto result = embellisher_->Embellish({99999999}, &rng);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(EmbellisherTest, QueryContainsExactlyTheHostBuckets) {
  Rng rng(4);
  std::vector<wordnet::TermId> genuine{10, 500, 1500};
  auto query = embellisher_->Embellish(genuine, &rng);
  ASSERT_TRUE(query.ok());
  // Expected term multiset: union of host buckets.
  std::set<size_t> host_buckets;
  for (auto t : genuine) host_buckets.insert(org_.Locate(t)->bucket);
  std::multiset<wordnet::TermId> expected;
  for (size_t b : host_buckets) {
    for (auto t : org_.bucket(b)) expected.insert(t);
  }
  std::multiset<wordnet::TermId> actual;
  for (const auto& e : query->entries) actual.insert(e.term);
  EXPECT_EQ(actual, expected);
}

TEST_F(EmbellisherTest, IndicatorsDecryptToGenuineness) {
  Rng rng(5);
  std::vector<wordnet::TermId> genuine{42, 1043};
  auto query = embellisher_->Embellish(genuine, &rng);
  ASSERT_TRUE(query.ok());
  std::set<wordnet::TermId> genuine_set(genuine.begin(), genuine.end());
  size_t ones = 0;
  for (const auto& e : query->entries) {
    auto u = keys_->private_key().Decrypt(e.indicator);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(*u, genuine_set.count(e.term) ? 1u : 0u);
    ones += *u;
  }
  EXPECT_EQ(ones, genuine.size());
}

TEST_F(EmbellisherTest, DuplicateGenuineTermsCollapse) {
  Rng rng(6);
  auto query = embellisher_->Embellish({42, 42, 42}, &rng);
  ASSERT_TRUE(query.ok());
  size_t count = std::count_if(
      query->entries.begin(), query->entries.end(),
      [](const EmbellishedTerm& e) { return e.term == 42; });
  EXPECT_EQ(count, 1u);
}

TEST_F(EmbellisherTest, TwoGenuineTermsSharingABucketAddItOnce) {
  Rng rng(7);
  // Pick two terms from bucket 5.
  const auto& bucket = org_.bucket(5);
  ASSERT_GE(bucket.size(), 2u);
  auto query = embellisher_->Embellish({bucket[0], bucket[1]}, &rng);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->entries.size(), bucket.size());
  // Both are marked genuine.
  size_t ones = 0;
  for (const auto& e : query->entries) {
    ones += *keys_->private_key().Decrypt(e.indicator);
  }
  EXPECT_EQ(ones, 2u);
}

TEST_F(EmbellisherTest, RecurringTermBringsIdenticalDecoys) {
  // The defense against the Section 1 intersection attack.
  Rng rng(8);
  auto q1 = embellisher_->Embellish({777}, &rng);
  auto q2 = embellisher_->Embellish({777}, &rng);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  std::set<wordnet::TermId> t1, t2;
  for (const auto& e : q1->entries) t1.insert(e.term);
  for (const auto& e : q2->entries) t2.insert(e.term);
  EXPECT_EQ(t1, t2);
}

TEST_F(EmbellisherTest, CiphertextsAreFreshAcrossQueries) {
  // Same genuine term, two queries: every ciphertext must differ (Benaloh
  // randomization), so the server cannot link recurring indicators.
  Rng rng(9);
  auto q1 = embellisher_->Embellish({777}, &rng);
  auto q2 = embellisher_->Embellish({777}, &rng);
  std::map<wordnet::TermId, bignum::BigInt> c1;
  for (const auto& e : q1->entries) c1.emplace(e.term, e.indicator.value);
  for (const auto& e : q2->entries) {
    EXPECT_NE(c1.at(e.term), e.indicator.value);
  }
}

TEST_F(EmbellisherTest, OrderIsPermuted) {
  // With 3 buckets of 4 terms, the probability that two independent
  // embellishments produce the same order is 1/12! — run a few and require
  // at least one difference.
  Rng rng(10);
  std::vector<wordnet::TermId> genuine{10, 500, 1500};
  auto q1 = embellisher_->Embellish(genuine, &rng);
  auto q2 = embellisher_->Embellish(genuine, &rng);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  std::vector<wordnet::TermId> order1, order2;
  for (const auto& e : q1->entries) order1.push_back(e.term);
  for (const auto& e : q2->entries) order2.push_back(e.term);
  EXPECT_NE(order1, order2);
}

TEST_F(EmbellisherTest, WireBytesAccounting) {
  Rng rng(11);
  auto query = embellisher_->Embellish({10}, &rng);
  ASSERT_TRUE(query.ok());
  size_t per_entry = 4 + keys_->public_key().CiphertextBytes();
  EXPECT_EQ(query->WireBytes(keys_->public_key()),
            query->entries.size() * per_entry);
}

TEST_F(EmbellisherTest, DecoyMultiplierMatchesBucketSize) {
  // One genuine term brings BktSz - 1 decoys.
  Rng rng(12);
  auto query = embellisher_->Embellish({10}, &rng);
  ASSERT_TRUE(query.ok());
  size_t host = org_.Locate(10)->bucket;
  EXPECT_EQ(query->entries.size(), org_.bucket(host).size());
}

}  // namespace
}  // namespace embellish::core
