#include "core/pir_retrieval.h"

#include <gtest/gtest.h>

#include <map>

#include "index/builder.h"
#include "testutil.h"

namespace embellish::core {
namespace {

struct PirPipeline {
  wordnet::WordNetDatabase lex;
  corpus::Corpus corp;
  index::BuildOutput built;
  BucketOrganization org;
  storage::StorageLayout layout;
  std::unique_ptr<PirRetrievalServer> server;
  std::unique_ptr<PirRetrievalClient> client;

  explicit PirPipeline(size_t bucket_size, uint64_t seed = 91)
      : lex(testutil::SmallSyntheticLexicon(1500, seed)),
        corp(testutil::SmallCorpus(lex, 150, seed + 1)),
        built(std::move(index::BuildIndex(corp, {})).value()),
        org(testutil::MakeBuckets(lex, bucket_size, 64)),
        layout(storage::StorageLayout::Build(
            built.index, org.buckets(),
            storage::LayoutPolicy::kBucketColocated, {})) {
    server = std::make_unique<PirRetrievalServer>(&built.index, &org,
                                                  &layout);
    Rng rng(seed + 2);
    client = std::make_unique<PirRetrievalClient>(
        std::move(PirRetrievalClient::Create(&org, 128, &rng)).value());
  }
};

TEST(PirRetrievalTest, RetrievedListsMatchIndexExactly) {
  PirPipeline p(4);
  Rng rng(1);
  auto terms = p.built.index.IndexedTerms();
  for (size_t i = 0; i < 8; ++i) {
    wordnet::TermId term = terms[rng.Uniform(terms.size())];
    RetrievalCosts costs;
    auto list = p.client->RetrieveList(*p.server, term, &rng, &costs);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    EXPECT_EQ(*list, *p.built.index.postings(term));
  }
}

TEST(PirRetrievalTest, EmptyListRetrievesEmpty) {
  PirPipeline p(4);
  Rng rng(2);
  // A bucketed term that never appears in the corpus.
  wordnet::TermId unindexed = wordnet::kInvalidTermId;
  for (wordnet::TermId t = 0; t < p.lex.term_count(); ++t) {
    if (p.built.index.postings(t) == nullptr && p.org.Contains(t)) {
      unindexed = t;
      break;
    }
  }
  ASSERT_NE(unindexed, wordnet::kInvalidTermId);
  RetrievalCosts costs;
  auto list = p.client->RetrieveList(*p.server, unindexed, &rng, &costs);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_TRUE(list->empty());
}

TEST(PirRetrievalTest, RankingMatchesPlaintext) {
  PirPipeline p(4);
  Rng rng(3);
  auto terms = p.built.index.IndexedTerms();
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<wordnet::TermId> query;
    for (int i = 0; i < 4; ++i) {
      query.push_back(terms[rng.Uniform(terms.size())]);
    }
    RetrievalCosts costs;
    auto ranked = p.client->RunQuery(*p.server, query, 25, &rng, &costs);
    ASSERT_TRUE(ranked.ok());
    std::vector<wordnet::TermId> distinct = query;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto reference = index::EvaluateFull(p.built.index, distinct);
    if (reference.size() > 25) reference.resize(25);
    ASSERT_EQ(ranked->size(), reference.size());
    for (size_t i = 0; i < ranked->size(); ++i) {
      EXPECT_EQ((*ranked)[i], reference[i]);
    }
  }
}

TEST(PirRetrievalTest, RejectsEmptyQueryAndUnknownTerm) {
  PirPipeline p(4);
  Rng rng(4);
  RetrievalCosts costs;
  EXPECT_FALSE(p.client->RunQuery(*p.server, {}, 10, &rng, &costs).ok());
  EXPECT_FALSE(
      p.client->RunQuery(*p.server, {99999999}, 10, &rng, &costs).ok());
}

TEST(PirRetrievalTest, ResponsePaddedToBucketMaximum) {
  // Every execution against a bucket returns the same number of rows —
  // the padding requirement of Section 4's alternate method.
  PirPipeline p(4);
  Rng rng(5);
  const auto& bucket = p.org.bucket(3);
  auto matrix = p.server->BucketMatrix(3);
  ASSERT_TRUE(matrix.ok());
  size_t max_bytes = 0;
  for (auto t : bucket) {
    max_bytes = std::max(max_bytes, p.built.index.ListBytes(t));
  }
  EXPECT_EQ((*matrix)->rows(), (4 + max_bytes) * 8);
  EXPECT_EQ((*matrix)->cols(), bucket.size());
}

TEST(PirRetrievalTest, DownlinkScalesWithMaxListNotOwnList) {
  // Fetching a short list from a bucket with one long list costs as much
  // downlink as fetching the long list — the cost asymmetry the paper's
  // Figure 7(c) attributes to PIR.
  PirPipeline p(8);
  Rng rng(6);
  // Find a bucket with both a short and a long indexed list.
  for (size_t b = 0; b < p.org.bucket_count(); ++b) {
    const auto& bucket = p.org.bucket(b);
    wordnet::TermId shortest = wordnet::kInvalidTermId;
    wordnet::TermId longest = wordnet::kInvalidTermId;
    size_t lo = SIZE_MAX, hi = 0;
    for (auto t : bucket) {
      size_t len = p.built.index.ListLength(t);
      if (len == 0) continue;
      if (len < lo) {
        lo = len;
        shortest = t;
      }
      if (len > hi) {
        hi = len;
        longest = t;
      }
    }
    if (shortest == wordnet::kInvalidTermId || hi <= lo * 3) continue;
    RetrievalCosts c_short, c_long;
    ASSERT_TRUE(
        p.client->RetrieveList(*p.server, shortest, &rng, &c_short).ok());
    ASSERT_TRUE(
        p.client->RetrieveList(*p.server, longest, &rng, &c_long).ok());
    EXPECT_EQ(c_short.downlink_bytes, c_long.downlink_bytes);
    return;
  }
  GTEST_SKIP() << "no bucket with sufficiently skewed lists in fixture";
}

TEST(PirRetrievalTest, MultipleTermsSameBucketFetchedSeparately) {
  // "if a query contains multiple genuine terms from the same bucket,
  // their inverted lists have to be fetched one at a time."
  PirPipeline p(4);
  Rng rng(7);
  // Two indexed terms in the same bucket.
  wordnet::TermId a = wordnet::kInvalidTermId, b = wordnet::kInvalidTermId;
  for (size_t bkt = 0; bkt < p.org.bucket_count(); ++bkt) {
    std::vector<wordnet::TermId> indexed;
    for (auto t : p.org.bucket(bkt)) {
      if (p.built.index.postings(t) != nullptr) indexed.push_back(t);
    }
    if (indexed.size() >= 2) {
      a = indexed[0];
      b = indexed[1];
      break;
    }
  }
  ASSERT_NE(a, wordnet::kInvalidTermId);
  RetrievalCosts one, two;
  ASSERT_TRUE(p.client->RunQuery(*p.server, {a}, 10, &rng, &one).ok());
  ASSERT_TRUE(p.client->RunQuery(*p.server, {a, b}, 10, &rng, &two).ok());
  // Two executions -> roughly double the traffic of one.
  EXPECT_GT(two.downlink_bytes, one.downlink_bytes);
  EXPECT_GE(two.uplink_bytes, 2 * one.uplink_bytes);
}

TEST(PirRetrievalTest, AnswerBatchMatchesPerItemAnswers) {
  // A batch mixing queries for several buckets: responses must be
  // bit-identical to per-item Answer calls, and I/O must be charged once
  // per bucket group rather than once per query.
  PirPipeline p(4);
  Rng rng(21);
  // Two indexed terms in each of two distinct buckets.
  std::vector<std::pair<size_t, size_t>> targets;  // (bucket, slot)
  for (size_t bkt = 0; bkt < p.org.bucket_count() && targets.size() < 4;
       ++bkt) {
    const auto& members = p.org.bucket(bkt);
    size_t found = 0;
    for (size_t slot = 0; slot < members.size() && found < 2; ++slot) {
      if (p.built.index.postings(members[slot]) != nullptr) {
        targets.emplace_back(bkt, slot);
        ++found;
      }
    }
  }
  ASSERT_GE(targets.size(), 4u);

  std::vector<crypto::PirQuery> queries;
  std::vector<PirBatchItem> items;
  for (const auto& [bucket, slot] : targets) {
    auto query =
        p.client->pir_client().BuildQuery(slot, p.org.bucket(bucket).size(),
                                          &rng);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(query).value());
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    items.push_back(PirBatchItem{targets[i].first, &queries[i]});
  }

  RetrievalCosts batch_costs;
  crypto::PirBatchStats stats;
  auto batch = p.server->AnswerBatch(items, &batch_costs, &stats);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), items.size());
  EXPECT_EQ(stats.queries, items.size());

  RetrievalCosts serial_costs;
  std::map<size_t, int> buckets_seen;
  for (size_t i = 0; i < items.size(); ++i) {
    auto serial = p.server->Answer(items[i].bucket, queries[i], &serial_costs);
    ASSERT_TRUE(serial.ok());
    buckets_seen[items[i].bucket]++;
    ASSERT_EQ((*batch)[i].gamma.size(), serial->gamma.size());
    for (size_t r = 0; r < serial->gamma.size(); ++r) {
      ASSERT_EQ((*batch)[i].gamma[r], serial->gamma[r])
          << "item " << i << " row " << r;
    }
  }
  // Serial answers charge one bucket fetch per query; the batch charges one
  // per distinct bucket.
  ASSERT_GT(buckets_seen.size(), 1u);
  EXPECT_GT(batch_costs.server_io_ms, 0.0);
  EXPECT_LT(batch_costs.server_io_ms, serial_costs.server_io_ms);
}

TEST(PirRetrievalTest, AnswerBatchRejectsBadItems) {
  PirPipeline p(4);
  Rng rng(22);
  auto query = p.client->pir_client().BuildQuery(0, p.org.bucket(0).size(),
                                                 &rng);
  ASSERT_TRUE(query.ok());
  RetrievalCosts costs;
  EXPECT_FALSE(
      p.server->AnswerBatch({PirBatchItem{999999, &*query}}, &costs).ok());
  EXPECT_FALSE(
      p.server->AnswerBatch({PirBatchItem{0, nullptr}}, &costs).ok());
  auto empty = p.server->AnswerBatch({}, &costs);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(PirRetrievalTest, ServerRejectsBadBucketIndex) {
  PirPipeline p(4);
  crypto::PirQuery bogus;
  RetrievalCosts costs;
  EXPECT_FALSE(p.server->Answer(999999, bogus, &costs).ok());
}

TEST(PirRetrievalTest, CostsArePopulated) {
  PirPipeline p(4);
  Rng rng(8);
  auto terms = p.built.index.IndexedTerms();
  RetrievalCosts costs;
  ASSERT_TRUE(
      p.client->RunQuery(*p.server, {terms[0], terms[9]}, 10, &rng, &costs)
          .ok());
  EXPECT_GT(costs.server_io_ms, 0.0);
  EXPECT_GT(costs.server_cpu_ms, 0.0);
  EXPECT_GT(costs.uplink_bytes, 0u);
  EXPECT_GT(costs.downlink_bytes, 0u);
  EXPECT_GT(costs.user_cpu_ms, 0.0);
}

}  // namespace
}  // namespace embellish::core
