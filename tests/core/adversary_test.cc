#include "core/adversary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/decoy_random.h"
#include "testutil.h"

namespace embellish::core {
namespace {

class AdversaryTest : public ::testing::Test {
 protected:
  AdversaryTest()
      : lex_(testutil::TinyLexicon()), dist_(&lex_) {}

  wordnet::WordNetDatabase lex_;
  SemanticDistanceCalculator dist_;
};

TEST_F(AdversaryTest, SingleQuerySingleTermUniformPosterior) {
  // One query, one term, bucket of width 4: posterior on the truth = 1/4.
  auto org = BucketOrganization::Create({{0, 5, 8, 11}});
  ASSERT_TRUE(org.ok());
  auto risk = ComputeAdversaryRisk(*org, dist_, {{0}});
  ASSERT_TRUE(risk.ok()) << risk.status().ToString();
  EXPECT_EQ(risk->candidate_count, 4u);
  EXPECT_NEAR(risk->posterior_on_truth, 0.25, 1e-12);
  // sim(truth, truth) = 1 contributes 1/4; decoys contribute less.
  EXPECT_GT(risk->risk, 0.25 * 1.0 - 1e-12);
  EXPECT_LT(risk->risk, 1.0);
}

TEST_F(AdversaryTest, WiderBucketsLowerPosterior) {
  auto narrow = BucketOrganization::Create({{0, 5}});
  auto wide = BucketOrganization::Create({{0, 5, 8, 11, 3, 6}});
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  auto r_narrow = ComputeAdversaryRisk(*narrow, dist_, {{0}});
  auto r_wide = ComputeAdversaryRisk(*wide, dist_, {{0}});
  ASSERT_TRUE(r_narrow.ok());
  ASSERT_TRUE(r_wide.ok());
  EXPECT_GT(r_narrow->posterior_on_truth, r_wide->posterior_on_truth);
  EXPECT_GT(r_narrow->risk, r_wide->risk);
}

TEST_F(AdversaryTest, SemanticallyDiverseDecoysLowerRisk) {
  // Decoys near the genuine term inflate expected similarity; decoys far
  // from it deflate it. dog's close cover: {puppy, cat}; far cover:
  // {coupe, garage}.
  wordnet::TermId dog = lex_.FindTerm("dog");
  wordnet::TermId puppy = lex_.FindTerm("puppy");
  wordnet::TermId cat = lex_.FindTerm("cat");
  wordnet::TermId coupe = lex_.FindTerm("coupe");
  wordnet::TermId garage = lex_.FindTerm("garage");
  auto close_cover = BucketOrganization::Create({{dog, puppy, cat}});
  auto far_cover = BucketOrganization::Create({{dog, coupe, garage}});
  ASSERT_TRUE(close_cover.ok());
  ASSERT_TRUE(far_cover.ok());
  auto r_close = ComputeAdversaryRisk(*close_cover, dist_, {{dog}});
  auto r_far = ComputeAdversaryRisk(*far_cover, dist_, {{dog}});
  ASSERT_TRUE(r_close.ok());
  ASSERT_TRUE(r_far.ok());
  EXPECT_GT(r_close->risk, r_far->risk);
}

TEST_F(AdversaryTest, MultiQuerySequencePosteriorFactorizes) {
  auto org = BucketOrganization::Create({{0, 5}, {8, 11}});
  ASSERT_TRUE(org.ok());
  auto risk = ComputeAdversaryRisk(*org, dist_, {{0}, {8}});
  ASSERT_TRUE(risk.ok());
  EXPECT_EQ(risk->candidate_count, 4u);  // 2 x 2
  EXPECT_NEAR(risk->posterior_on_truth, 0.25, 1e-12);
}

TEST_F(AdversaryTest, MultiTermQueryExpandsCandidateSpace) {
  auto org = BucketOrganization::Create({{0, 5, 8}, {11, 3, 6}});
  ASSERT_TRUE(org.ok());
  auto risk = ComputeAdversaryRisk(*org, dist_, {{0, 11}});
  ASSERT_TRUE(risk.ok());
  EXPECT_EQ(risk->candidate_count, 9u);  // 3 x 3
  EXPECT_NEAR(risk->posterior_on_truth, 1.0 / 9.0, 1e-12);
}

TEST_F(AdversaryTest, RejectsOversizedCandidateSpace) {
  auto org = BucketOrganization::Create({{0, 5, 8, 11}});
  ASSERT_TRUE(org.ok());
  // 4^12 = 16M > 2M cap.
  std::vector<std::vector<wordnet::TermId>> seq(12, {0});
  auto risk = ComputeAdversaryRisk(*org, dist_, seq, /*max_candidates=*/
                                   2000000);
  EXPECT_FALSE(risk.ok());
}

TEST_F(AdversaryTest, RejectsMalformedInput) {
  auto org = BucketOrganization::Create({{0, 5}});
  ASSERT_TRUE(org.ok());
  EXPECT_FALSE(ComputeAdversaryRisk(*org, dist_, {}).ok());
  EXPECT_FALSE(ComputeAdversaryRisk(*org, dist_, {{}}).ok());
  EXPECT_FALSE(ComputeAdversaryRisk(*org, dist_, {{99}}).ok());  // unbucketed
}

TEST_F(AdversaryTest, RiskBoundedByOne) {
  auto org = BucketOrganization::Create({{0, 5, 8}});
  ASSERT_TRUE(org.ok());
  auto risk = ComputeAdversaryRisk(*org, dist_, {{0}, {0}, {0}});
  ASSERT_TRUE(risk.ok());
  EXPECT_LE(risk->risk, 1.0 + 1e-12);
  EXPECT_GE(risk->risk, 0.0);
}

}  // namespace
}  // namespace embellish::core
