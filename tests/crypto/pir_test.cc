#include "crypto/pir.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"

namespace embellish::crypto {
namespace {

using bignum::BigInt;

std::shared_ptr<PirDatabase> RandomDatabase(size_t rows, size_t cols,
                                            uint64_t seed) {
  auto db = std::make_shared<PirDatabase>(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      db->SetBit(i, j, rng.Bernoulli(0.5));
    }
  }
  return db;
}

TEST(PirDatabaseTest, BitAccessors) {
  PirDatabase db(10, 3);
  EXPECT_FALSE(db.GetBit(4, 1));
  db.SetBit(4, 1, true);
  EXPECT_TRUE(db.GetBit(4, 1));
  db.SetBit(4, 1, false);
  EXPECT_FALSE(db.GetBit(4, 1));
  EXPECT_EQ(db.rows(), 10u);
  EXPECT_EQ(db.cols(), 3u);
}

TEST(PirDatabaseTest, ColumnFromBytesIsMsbFirst) {
  PirDatabase db(16, 2);
  db.SetColumnFromBytes(1, {0x80, 0x01});
  EXPECT_TRUE(db.GetBit(0, 1));    // MSB of byte 0
  EXPECT_FALSE(db.GetBit(1, 1));
  EXPECT_TRUE(db.GetBit(15, 1));   // LSB of byte 1
  EXPECT_FALSE(db.GetBit(0, 0));   // other column untouched
}

TEST(PirClientTest, CreateRejectsBadKeyBits) {
  Rng rng(1);
  EXPECT_FALSE(PirClient::Create(64, &rng).ok());
  EXPECT_FALSE(PirClient::Create(8192, &rng).ok());
}

TEST(PirClientTest, QueryValidation) {
  Rng rng(2);
  auto client = PirClient::Create(128, &rng);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->BuildQuery(3, 3, &rng).ok());  // col out of range
  EXPECT_FALSE(client->BuildQuery(0, 0, &rng).ok());  // empty database
  EXPECT_TRUE(client->BuildQuery(2, 3, &rng).ok());
}

TEST(PirClientTest, QueryValuesHaveJacobiOne) {
  // Security property: every q_j (QR or QNR) has Jacobi symbol +1, so the
  // server cannot spot the target column via the Jacobi symbol.
  Rng rng(3);
  auto client = PirClient::Create(128, &rng);
  ASSERT_TRUE(client.ok());
  auto query = client->BuildQuery(2, 6, &rng);
  ASSERT_TRUE(query.ok());
  for (const BigInt& q : query->q) {
    EXPECT_EQ(bignum::Jacobi(q, query->n), 1);
  }
}

TEST(PirClientTest, ExactlyTargetColumnIsQnr) {
  Rng rng(4);
  auto client = PirClient::Create(128, &rng);
  ASSERT_TRUE(client.ok());
  auto query = client->BuildQuery(2, 5, &rng);
  ASSERT_TRUE(query.ok());
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(client->IsQuadraticResidue(query->q[j]), j != 2) << j;
  }
}

TEST(PirEndToEndTest, RetrievesEveryColumnCorrectly) {
  auto db = RandomDatabase(96, 6, 55);
  Rng rng(5);
  auto client = PirClient::Create(128, &rng);
  ASSERT_TRUE(client.ok());
  PirServer server(db);
  for (size_t col = 0; col < 6; ++col) {
    auto query = client->BuildQuery(col, 6, &rng);
    ASSERT_TRUE(query.ok());
    auto response = server.Answer(*query);
    ASSERT_TRUE(response.ok());
    auto bits = client->DecodeResponse(*response);
    ASSERT_TRUE(bits.ok());
    ASSERT_EQ(bits->size(), 96u);
    for (size_t row = 0; row < 96; ++row) {
      EXPECT_EQ((*bits)[row], db->GetBit(row, col))
          << "col " << col << " row " << row;
    }
  }
}

TEST(PirEndToEndTest, AllZeroAndAllOneColumns) {
  auto db = std::make_shared<PirDatabase>(32, 2);
  for (size_t i = 0; i < 32; ++i) db->SetBit(i, 1, true);
  Rng rng(6);
  auto client = PirClient::Create(128, &rng);
  PirServer server(db);
  for (size_t col = 0; col < 2; ++col) {
    auto query = client->BuildQuery(col, 2, &rng);
    auto response = server.Answer(*query);
    auto bits = client->DecodeResponse(*response);
    ASSERT_TRUE(bits.ok());
    for (size_t row = 0; row < 32; ++row) {
      EXPECT_EQ((*bits)[row], col == 1);
    }
  }
}

TEST(PirServerTest, RejectsWidthMismatch) {
  auto db = RandomDatabase(8, 4, 7);
  Rng rng(7);
  auto client = PirClient::Create(128, &rng);
  PirServer server(db);
  auto query = client->BuildQuery(1, 3, &rng);  // 3 != 4 columns
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(server.Answer(*query).ok());
}

TEST(PirServerTest, ReportsMultiplicationCount) {
  auto db = RandomDatabase(16, 3, 8);
  Rng rng(8);
  auto client = PirClient::Create(128, &rng);
  PirServer server(db);
  auto query = client->BuildQuery(0, 3, &rng);
  uint64_t ops = 0;
  auto response = server.Answer(*query, &ops);
  ASSERT_TRUE(response.ok());
  // cols < 4 stays on the naive chain: rows x cols products.
  EXPECT_EQ(ops, 16u * 3u);
}

TEST(PirServerTest, ReportsTablePathCountWhenTablesPay) {
  // 16 x 4: one width-4 group costs 2*(16-4-1)=22 build muls plus one mul
  // per row = 38 < the naive 64, so the cost-model gate takes the tables
  // even though rows < 128 (the old cliff kept small matrices naive).
  auto db = RandomDatabase(16, 4, 8);
  Rng rng(8);
  auto client = PirClient::Create(128, &rng);
  PirServer server(db);
  auto query = client->BuildQuery(0, 4, &rng);
  uint64_t ops = 0;
  auto response = server.Answer(*query, &ops);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ops, 22u + 16u);
}

TEST(PirWireTest, QueryAndResponseSizes) {
  // Appendix A.1: response is KeyLen x max|Li| -> rows x key_bytes bytes.
  auto db = RandomDatabase(64, 5, 9);
  Rng rng(9);
  auto client = PirClient::Create(256, &rng);
  PirServer server(db);
  auto query = client->BuildQuery(2, 5, &rng);
  EXPECT_EQ(query->WireBytes(), (1 + 5) * client->key_bytes());
  auto response = server.Answer(*query);
  EXPECT_EQ(response->WireBytes(client->key_bytes()),
            64 * client->key_bytes());
}

TEST(PirClientTest, DecodeRejectsCorruptResponse) {
  Rng rng(10);
  auto client = PirClient::Create(128, &rng);
  PirResponse bad;
  bad.gamma.push_back(BigInt(0));  // zero is not in Z*_n
  EXPECT_FALSE(client->DecodeResponse(bad).ok());
  PirResponse big;
  big.gamma.push_back(client->n() + BigInt(5));
  EXPECT_FALSE(client->DecodeResponse(big).ok());
}

TEST(PirEndToEndTest, DistinctClientsInteroperate) {
  // Two clients with different keys query the same server.
  auto db = RandomDatabase(40, 3, 11);
  PirServer server(db);
  for (uint64_t seed : {20ULL, 21ULL}) {
    Rng rng(seed);
    auto client = PirClient::Create(128, &rng);
    auto query = client->BuildQuery(1, 3, &rng);
    auto response = server.Answer(*query);
    auto bits = client->DecodeResponse(*response);
    ASSERT_TRUE(bits.ok());
    for (size_t row = 0; row < 40; ++row) {
      EXPECT_EQ((*bits)[row], db->GetBit(row, 1));
    }
  }
}

class PirMatrixSweepTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PirMatrixSweepTest, FullMatrixRecovery) {
  auto [rows, cols] = GetParam();
  auto db = RandomDatabase(rows, cols, rows * 100 + cols);
  Rng rng(12);
  auto client = PirClient::Create(128, &rng);
  PirServer server(db);
  // Recover the full matrix one column at a time.
  for (size_t col = 0; col < cols; ++col) {
    auto query = client->BuildQuery(col, cols, &rng);
    auto response = server.Answer(*query);
    auto bits = client->DecodeResponse(*response);
    ASSERT_TRUE(bits.ok());
    for (size_t row = 0; row < rows; ++row) {
      ASSERT_EQ((*bits)[row], db->GetBit(row, col));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PirMatrixSweepTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{8, 1},
                      std::pair<size_t, size_t>{1, 8},
                      std::pair<size_t, size_t>{64, 2},
                      std::pair<size_t, size_t>{33, 7}));

}  // namespace
}  // namespace embellish::crypto
