// Cross-cutting algebraic property sweeps for the cryptosystems,
// parameterized over key widths: the laws Algorithm 4's correctness
// (Claim 1) silently relies on.

#include <gtest/gtest.h>

#include "crypto/benaloh.h"
#include "crypto/paillier.h"
#include "crypto/pir.h"

namespace embellish::crypto {
namespace {

class BenalohKeyWidthTest : public ::testing::TestWithParam<size_t> {
 protected:
  BenalohKeyWidthTest() {
    Rng rng(500 + GetParam());
    BenalohKeyOptions o;
    o.key_bits = GetParam();
    o.r = 59049;
    kp_ = std::make_unique<BenalohKeyPair>(
        std::move(BenalohKeyPair::Generate(o, &rng)).value());
  }

  std::unique_ptr<BenalohKeyPair> kp_;
};

TEST_P(BenalohKeyWidthTest, HomomorphicSumOfMany) {
  // Sum of 20 random messages under homomorphic accumulation.
  Rng rng(1);
  uint64_t expected = 0;
  BenalohCiphertext acc = *kp_->public_key().Encrypt(0, &rng);
  for (int i = 0; i < 20; ++i) {
    uint64_t m = rng.Uniform(2000);
    expected = (expected + m) % 59049;
    acc = kp_->public_key().Add(acc, *kp_->public_key().Encrypt(m, &rng));
  }
  EXPECT_EQ(*kp_->private_key().Decrypt(acc), expected);
}

TEST_P(BenalohKeyWidthTest, ScalarDistributesOverAddition) {
  // (E(a) * E(b))^s = E((a+b)*s)
  Rng rng(2);
  auto ca = kp_->public_key().Encrypt(123, &rng);
  auto cb = kp_->public_key().Encrypt(456, &rng);
  auto lhs = kp_->public_key().ScalarMul(kp_->public_key().Add(*ca, *cb), 7);
  EXPECT_EQ(*kp_->private_key().Decrypt(lhs), (123u + 456u) * 7u);
}

TEST_P(BenalohKeyWidthTest, ScalarComposition) {
  // (E(m)^s)^t = E(m*s*t)
  Rng rng(3);
  auto c = kp_->public_key().Encrypt(11, &rng);
  auto st = kp_->public_key().ScalarMul(kp_->public_key().ScalarMul(*c, 6),
                                        9);
  EXPECT_EQ(*kp_->private_key().Decrypt(st), 11u * 6u * 9u);
}

TEST_P(BenalohKeyWidthTest, MessageSpaceWrapsModulo) {
  Rng rng(4);
  auto c = kp_->public_key().Encrypt(59048, &rng);
  auto bumped = kp_->public_key().Add(*c, *kp_->public_key().Encrypt(2, &rng));
  EXPECT_EQ(*kp_->private_key().Decrypt(bumped), 1u);  // 59050 mod 3^10
}

TEST_P(BenalohKeyWidthTest, CiphertextWidthTracksKey) {
  EXPECT_EQ(kp_->public_key().CiphertextBytes(), GetParam() / 8);
}

INSTANTIATE_TEST_SUITE_P(Widths, BenalohKeyWidthTest,
                         ::testing::Values(192, 256, 384, 512));

class PirKeyWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PirKeyWidthTest, RetrievalCorrectAtWidth) {
  Rng rng(600 + GetParam());
  auto client = PirClient::Create(GetParam(), &rng);
  ASSERT_TRUE(client.ok());
  auto db = std::make_shared<PirDatabase>(48, 5);
  for (size_t i = 0; i < 48; ++i) {
    for (size_t j = 0; j < 5; ++j) db->SetBit(i, j, rng.Bernoulli(0.4));
  }
  PirServer server(db);
  auto query = client->BuildQuery(3, 5, &rng);
  auto response = server.Answer(*query);
  auto bits = client->DecodeResponse(*response);
  ASSERT_TRUE(bits.ok());
  for (size_t i = 0; i < 48; ++i) {
    EXPECT_EQ((*bits)[i], db->GetBit(i, 3));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PirKeyWidthTest,
                         ::testing::Values(128, 192, 256, 384));

TEST(CrossSchemeTest, BenalohAndPaillierAgreeOnAccumulation) {
  // The same score accumulation through both cryptosystems must agree —
  // the substitution behind the Benaloh-vs-Paillier ablation.
  Rng rng(7);
  BenalohKeyOptions bo;
  bo.key_bits = 256;
  bo.r = 59049;
  auto ben = BenalohKeyPair::Generate(bo, &rng);
  auto pai = PaillierKeyPair::Generate(256, &rng);
  ASSERT_TRUE(ben.ok());
  ASSERT_TRUE(pai.ok());

  const uint64_t u[] = {1, 0, 1, 1, 0};
  const uint64_t p[] = {200, 255, 13, 77, 250};
  uint64_t expected = 0;
  BenalohCiphertext bacc = *ben->public_key().Encrypt(0, &rng);
  PaillierCiphertext pacc =
      *pai->public_key().Encrypt(bignum::BigInt(0), &rng);
  for (int i = 0; i < 5; ++i) {
    expected += u[i] * p[i];
    bacc = ben->public_key().Add(
        bacc, ben->public_key().ScalarMul(
                  *ben->public_key().Encrypt(u[i], &rng), p[i]));
    pacc = pai->public_key().Add(
        pacc, pai->public_key().ScalarMul(
                  *pai->public_key().Encrypt(bignum::BigInt(u[i]), &rng),
                  p[i]));
  }
  EXPECT_EQ(*ben->private_key().Decrypt(bacc), expected);
  EXPECT_EQ(*pai->private_key().Decrypt(pacc), bignum::BigInt(expected));
}

TEST(CiphertextIndistinguishabilityTest, IndicatorBitsLookAlike) {
  // A cheap statistical sanity check on the embellisher's security basis:
  // the top byte of E(0) and E(1) ciphertexts should have indistinguishable
  // means (a gross distinguisher would show up here).
  Rng rng(8);
  BenalohKeyOptions o;
  o.key_bits = 256;
  o.r = 729;
  auto kp = BenalohKeyPair::Generate(o, &rng);
  ASSERT_TRUE(kp.ok());
  const int kSamples = 400;
  double mean0 = 0, mean1 = 0;
  for (int i = 0; i < kSamples; ++i) {
    auto c0 = kp->public_key().Serialize(*kp->public_key().Encrypt(0, &rng));
    auto c1 = kp->public_key().Serialize(*kp->public_key().Encrypt(1, &rng));
    mean0 += c0[0];
    mean1 += c1[0];
  }
  mean0 /= kSamples;
  mean1 /= kSamples;
  // Means of a uniform byte have sigma ~ 74/sqrt(400) ~ 3.7; allow 4 sigma.
  EXPECT_NEAR(mean0, mean1, 15.0);
}

}  // namespace
}  // namespace embellish::crypto
