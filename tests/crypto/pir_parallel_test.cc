// Equivalence tests for the parallel PIR answer engine: the pooled,
// word-at-a-time kernel must produce bit-identical responses to a serial
// seed-style reference (per-bit GetBit, allocating MontMul), and ExtractRow
// must agree with GetBit on every packing alignment.

#include "crypto/pir.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"

namespace embellish::crypto {
namespace {

using bignum::BigInt;

std::shared_ptr<PirDatabase> RandomDatabase(size_t rows, size_t cols,
                                            uint64_t seed) {
  auto db = std::make_shared<PirDatabase>(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      db->SetBit(i, j, rng.Bernoulli(0.5));
    }
  }
  return db;
}

// The seed implementation of Answer, kept as the reference: one GetBit and
// one allocating MontMul per (row, column).
PirResponse AnswerSerialReference(const PirDatabase& db,
                                  const PirQuery& query) {
  auto mont_res = bignum::MontgomeryContext::Create(query.n);
  EXPECT_TRUE(mont_res.ok());
  const bignum::MontgomeryContext& mont = mont_res.value();
  const size_t cols = db.cols();
  std::vector<std::vector<uint64_t>> q_mont(cols);
  std::vector<std::vector<uint64_t>> q2_mont(cols);
  for (size_t j = 0; j < cols; ++j) {
    q_mont[j] = mont.ToMontgomery(query.q[j]);
    q2_mont[j] = mont.MontMul(q_mont[j], q_mont[j]);
  }
  PirResponse response;
  for (size_t i = 0; i < db.rows(); ++i) {
    std::vector<uint64_t> acc = mont.One();
    for (size_t j = 0; j < cols; ++j) {
      acc = mont.MontMul(acc, db.GetBit(i, j) ? q_mont[j] : q2_mont[j]);
    }
    response.gamma.push_back(mont.FromMontgomery(acc));
  }
  return response;
}

TEST(PirDatabaseExtractRowTest, MatchesGetBitAcrossAlignments) {
  // Column counts straddling byte and word boundaries exercise every shift
  // path in the word assembler.
  for (size_t cols : {1u, 7u, 8u, 13u, 63u, 64u, 65u, 100u, 130u}) {
    auto db = RandomDatabase(37, cols, 1000 + cols);
    std::vector<uint64_t> words(db->RowWords());
    for (size_t i = 0; i < db->rows(); ++i) {
      db->ExtractRow(i, words.data());
      for (size_t j = 0; j < cols; ++j) {
        ASSERT_EQ((words[j / 64] >> (j % 64)) & 1,
                  static_cast<uint64_t>(db->GetBit(i, j)))
            << "cols=" << cols << " row=" << i << " col=" << j;
      }
    }
  }
}

TEST(PirParallelTest, PooledAnswerIsBitIdenticalToSerialReference) {
  ThreadPool pool(4);
  Rng rng(42);
  auto client = PirClient::Create(256, &rng);
  ASSERT_TRUE(client.ok());

  for (const auto& [rows, cols] : std::vector<std::pair<size_t, size_t>>{
           {64, 5}, {256, 8}, {333, 13}, {96, 70}}) {
    auto db = RandomDatabase(rows, cols, rows * 31 + cols);
    auto query = client->BuildQuery(cols / 2, cols, &rng);
    ASSERT_TRUE(query.ok());

    const PirResponse reference = AnswerSerialReference(*db, *query);

    PirServer serial_server(db);
    auto serial = serial_server.Answer(*query);
    ASSERT_TRUE(serial.ok());

    PirServer pooled_server(db, &pool);
    auto pooled = pooled_server.Answer(*query);
    ASSERT_TRUE(pooled.ok());

    ASSERT_EQ(reference.gamma.size(), rows);
    ASSERT_EQ(serial->gamma.size(), rows);
    ASSERT_EQ(pooled->gamma.size(), rows);
    for (size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(serial->gamma[i], reference.gamma[i])
          << "serial engine diverged at row " << i;
      ASSERT_EQ(pooled->gamma[i], reference.gamma[i])
          << "pooled engine diverged at row " << i;
    }
  }
}

TEST(PirParallelTest, PooledAnswerDecodesToTargetColumn) {
  ThreadPool pool(4);
  Rng rng(7);
  auto client = PirClient::Create(256, &rng);
  ASSERT_TRUE(client.ok());
  const size_t rows = 128, cols = 11, target = 9;
  auto db = RandomDatabase(rows, cols, 99);

  auto query = client->BuildQuery(target, cols, &rng);
  ASSERT_TRUE(query.ok());
  PirServer server(db, &pool);
  uint64_t ops = 0;
  double cpu_ms = -1.0;
  auto response = server.Answer(*query, &ops, &cpu_ms);
  ASSERT_TRUE(response.ok());
  // The subset-product tables perform far fewer multiplications than the
  // naive rows*cols chain.
  EXPECT_GT(ops, 0u);
  EXPECT_LT(ops, rows * cols);
  EXPECT_GE(cpu_ms, 0.0);

  auto bits = client->DecodeResponse(*response);
  ASSERT_TRUE(bits.ok());
  ASSERT_EQ(bits->size(), rows);
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_EQ((*bits)[i], db->GetBit(i, target)) << "row " << i;
  }
}

}  // namespace
}  // namespace embellish::crypto
