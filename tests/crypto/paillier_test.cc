#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "crypto/benaloh.h"

namespace embellish::crypto {
namespace {

using bignum::BigInt;

PaillierKeyPair MakeKeys(size_t bits = 256, uint64_t seed = 1) {
  Rng rng(seed);
  auto kp = PaillierKeyPair::Generate(bits, &rng);
  EXPECT_TRUE(kp.ok()) << kp.status().ToString();
  return std::move(kp).value();
}

TEST(PaillierTest, RejectsBadKeyBits) {
  Rng rng(1);
  EXPECT_FALSE(PaillierKeyPair::Generate(64, &rng).ok());
  EXPECT_FALSE(PaillierKeyPair::Generate(8192, &rng).ok());
}

TEST(PaillierTest, RoundTripSmallMessages) {
  auto kp = MakeKeys();
  Rng rng(2);
  for (uint64_t m : {0ULL, 1ULL, 2ULL, 255ULL, 59049ULL, 1000000ULL}) {
    auto c = kp.public_key().Encrypt(BigInt(m), &rng);
    ASSERT_TRUE(c.ok());
    auto d = kp.private_key().Decrypt(*c);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, BigInt(m));
  }
}

TEST(PaillierTest, RoundTripLargeMessages) {
  auto kp = MakeKeys();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    BigInt m = bignum::RandomBelow(kp.public_key().n(), &rng);
    auto c = kp.public_key().Encrypt(m, &rng);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*kp.private_key().Decrypt(*c), m);
  }
}

TEST(PaillierTest, RejectsMessageGeqN) {
  auto kp = MakeKeys();
  Rng rng(4);
  EXPECT_FALSE(kp.public_key().Encrypt(kp.public_key().n(), &rng).ok());
}

TEST(PaillierTest, AdditiveHomomorphism) {
  auto kp = MakeKeys();
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    BigInt a = bignum::RandomBits(100, &rng);
    BigInt b = bignum::RandomBits(100, &rng);
    auto ca = kp.public_key().Encrypt(a, &rng);
    auto cb = kp.public_key().Encrypt(b, &rng);
    auto sum = kp.public_key().Add(*ca, *cb);
    EXPECT_EQ(*kp.private_key().Decrypt(sum), a + b);
  }
}

TEST(PaillierTest, ScalarMultiplication) {
  auto kp = MakeKeys();
  Rng rng(6);
  auto c = kp.public_key().Encrypt(BigInt(1234), &rng);
  auto scaled = kp.public_key().ScalarMul(*c, 1000);
  EXPECT_EQ(*kp.private_key().Decrypt(scaled), BigInt(1234000));
  auto zeroed = kp.public_key().ScalarMul(*c, 0);
  EXPECT_EQ(*kp.private_key().Decrypt(zeroed), BigInt(0));
}

TEST(PaillierTest, ProbabilisticCiphertexts) {
  auto kp = MakeKeys();
  Rng rng(7);
  auto c1 = kp.public_key().Encrypt(BigInt(9), &rng);
  auto c2 = kp.public_key().Encrypt(BigInt(9), &rng);
  EXPECT_NE(c1->value, c2->value);
}

TEST(PaillierTest, CiphertextTwiceModulusWidth) {
  auto kp = MakeKeys(256);
  // n^2 is ~512 bits -> 64 bytes.
  EXPECT_GE(kp.public_key().CiphertextBytes(), 63u);
  EXPECT_LE(kp.public_key().CiphertextBytes(), 64u);
}

TEST(PaillierTest, BenalohCiphertextsAreSmaller) {
  // Appendix A.2's stated reason for choosing Benaloh: for the same modulus
  // width, Paillier ciphertexts are twice as large.
  Rng rng(8);
  auto paillier = MakeKeys(256, 9);
  BenalohKeyOptions bo;
  bo.key_bits = 256;
  bo.r = 729;
  auto benaloh = BenalohKeyPair::Generate(bo, &rng);
  ASSERT_TRUE(benaloh.ok());
  EXPECT_GT(paillier.public_key().CiphertextBytes(),
            benaloh->public_key().CiphertextBytes());
}

TEST(PaillierTest, DecryptRejectsNonUnit) {
  auto kp = MakeKeys();
  PaillierCiphertext bad{kp.public_key().n()};  // shares factor n with n^2
  EXPECT_FALSE(kp.private_key().Decrypt(bad).ok());
  PaillierCiphertext zero{BigInt(0)};
  EXPECT_FALSE(kp.private_key().Decrypt(zero).ok());
}

}  // namespace
}  // namespace embellish::crypto
