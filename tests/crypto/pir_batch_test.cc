// Batched PIR answering: AnswerBatch({q1..qQ}) must be bit-identical to Q
// serial Answer calls (and to the seed-style naive reference), the
// amortization-aware table gate must hold across the old rows==128 cliff,
// the batch-wide table budget must degrade to sub-batches (never to the
// naive path), and the op accounting must follow the pinned formula: row
// extractions counted once per sweep, table builds and MontMuls per query.

#include "crypto/pir.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/cpuinfo.h"
#include "common/thread_pool.h"

namespace embellish::crypto {
namespace {

using bignum::BigInt;

std::shared_ptr<PirDatabase> RandomDatabase(size_t rows, size_t cols,
                                            uint64_t seed) {
  auto db = std::make_shared<PirDatabase>(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      db->SetBit(i, j, rng.Bernoulli(0.5));
    }
  }
  return db;
}

// The seed implementation of Answer, kept as the reference: one GetBit and
// one allocating MontMul per (row, column). Independent of the table path
// and of the batch kernel.
PirResponse AnswerSerialReference(const PirDatabase& db,
                                  const PirQuery& query) {
  auto mont_res = bignum::MontgomeryContext::Create(query.n);
  EXPECT_TRUE(mont_res.ok());
  const bignum::MontgomeryContext& mont = mont_res.value();
  const size_t cols = db.cols();
  std::vector<std::vector<uint64_t>> q_mont(cols);
  std::vector<std::vector<uint64_t>> q2_mont(cols);
  for (size_t j = 0; j < cols; ++j) {
    q_mont[j] = mont.ToMontgomery(query.q[j]);
    q2_mont[j] = mont.MontMul(q_mont[j], q_mont[j]);
  }
  PirResponse response;
  for (size_t i = 0; i < db.rows(); ++i) {
    std::vector<uint64_t> acc = mont.One();
    for (size_t j = 0; j < cols; ++j) {
      acc = mont.MontMul(acc, db.GetBit(i, j) ? q_mont[j] : q2_mont[j]);
    }
    response.gamma.push_back(mont.FromMontgomery(acc));
  }
  return response;
}

// Q queries over `cols` columns from a rotating set of clients, so a batch
// mixes distinct moduli the way concurrent sessions do.
std::vector<PirQuery> MakeQueries(const std::vector<PirClient>& clients,
                                  size_t q_count, size_t cols, Rng* rng) {
  std::vector<PirQuery> queries;
  queries.reserve(q_count);
  for (size_t i = 0; i < q_count; ++i) {
    auto query =
        clients[i % clients.size()].BuildQuery(i % cols, cols, rng);
    EXPECT_TRUE(query.ok());
    queries.push_back(std::move(query).value());
  }
  return queries;
}

std::vector<PirClient> MakeClients(size_t count, size_t key_bits, Rng* rng) {
  std::vector<PirClient> clients;
  for (size_t i = 0; i < count; ++i) {
    auto client = PirClient::Create(key_bits, rng);
    EXPECT_TRUE(client.ok());
    clients.push_back(std::move(client).value());
  }
  return clients;
}

void ExpectBatchMatchesSerial(const PirServer& server,
                              const std::vector<PirQuery>& queries,
                              const std::vector<PirResponse>& batch) {
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto serial = server.Answer(queries[qi]);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(batch[qi].gamma.size(), serial->gamma.size());
    for (size_t i = 0; i < serial->gamma.size(); ++i) {
      ASSERT_EQ(batch[qi].gamma[i], serial->gamma[i])
          << "query " << qi << " diverged from serial Answer at row " << i;
    }
  }
}

TEST(PirBatchTest, BitIdenticalToSerialAnswersAtEveryWidth) {
  ThreadPool pool(4);
  Rng rng(42);
  const size_t rows = 192, cols = 8;
  auto db = RandomDatabase(rows, cols, 7);
  auto clients = MakeClients(3, 256, &rng);

  for (size_t q_count : {1u, 2u, 8u, 32u}) {
    auto queries = MakeQueries(clients, q_count, cols, &rng);
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      PirServer server(db, p);
      PirBatchStats stats;
      auto batch = server.AnswerBatch(
          std::span<const PirQuery>(queries.data(), queries.size()), &stats);
      ASSERT_TRUE(batch.ok());
      ExpectBatchMatchesSerial(server, queries, *batch);
      EXPECT_EQ(stats.queries, q_count);
      EXPECT_EQ(stats.sweeps, 1u);
      EXPECT_EQ(stats.rows_extracted, rows);
      // Every query also matches the seed-style naive reference.
      for (size_t qi = 0; qi < q_count; ++qi) {
        const PirResponse reference = AnswerSerialReference(*db, queries[qi]);
        for (size_t i = 0; i < rows; ++i) {
          ASSERT_EQ((*batch)[qi].gamma[i], reference.gamma[i])
              << "query " << qi << " diverged from reference at row " << i;
        }
      }
    }
  }
}

TEST(PirBatchTest, MixedKeyLengthsInOneBatch) {
  // Distinct limb widths in one sweep: the worker keeps one scratch per
  // width and max-width accumulators.
  Rng rng(11);
  const size_t rows = 96, cols = 8;
  auto db = RandomDatabase(rows, cols, 13);
  std::vector<PirClient> clients;
  for (size_t key_bits : {128u, 256u, 384u}) {
    auto client = PirClient::Create(key_bits, &rng);
    ASSERT_TRUE(client.ok());
    clients.push_back(std::move(client).value());
  }
  auto queries = MakeQueries(clients, 6, cols, &rng);
  PirServer server(db);
  auto batch = server.AnswerBatch(
      std::span<const PirQuery>(queries.data(), queries.size()));
  ASSERT_TRUE(batch.ok());
  ExpectBatchMatchesSerial(server, queries, *batch);
}

TEST(PirBatchTest, GateBoundaryAroundOldRowCliff) {
  // The old gate (rows >= 128) dropped 127-row matrices to the naive chain
  // even though the tables pay from build + rows muls = 494 + 127 = 621
  // against the naive 127 * 8 = 1016. The cost-model gate keeps the table
  // path on both sides of the former cliff, at every batch width.
  Rng rng(17);
  auto clients = MakeClients(2, 256, &rng);
  const size_t cols = 8;
  for (size_t rows : {127u, 128u}) {
    auto db = RandomDatabase(rows, cols, 1000 + rows);
    PirServer server(db);
    for (size_t q_count : {1u, 8u}) {
      auto queries = MakeQueries(clients, q_count, cols, &rng);
      PirBatchStats stats;
      auto batch = server.AnswerBatch(
          std::span<const PirQuery>(queries.data(), queries.size()), &stats);
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(stats.table_queries, q_count)
          << "rows=" << rows << " Q=" << q_count
          << ": table path must stay on";
      EXPECT_LT(stats.mont_muls, q_count * rows * cols);
      ExpectBatchMatchesSerial(server, queries, *batch);
      for (size_t qi = 0; qi < q_count; ++qi) {
        const PirResponse reference = AnswerSerialReference(*db, queries[qi]);
        for (size_t i = 0; i < rows; ++i) {
          ASSERT_EQ((*batch)[qi].gamma[i], reference.gamma[i]);
        }
      }
    }
  }
}

TEST(PirBatchTest, OpAccountingFollowsPinnedFormula) {
  // rows=256, cols=8 (one width-8 group): per query the table build costs
  // 2*(256-8-1) = 494 MontMuls and each row costs 2*1-1 = 1, so Q queries
  // cost Q*(494+256) MontMuls while the 256 row extractions are shared.
  Rng rng(23);
  const size_t rows = 256, cols = 8, q_count = 4;
  auto db = RandomDatabase(rows, cols, 29);
  auto clients = MakeClients(2, 256, &rng);
  auto queries = MakeQueries(clients, q_count, cols, &rng);
  PirServer server(db);

  PirBatchStats stats;
  auto batch = server.AnswerBatch(
      std::span<const PirQuery>(queries.data(), queries.size()), &stats);
  ASSERT_TRUE(batch.ok());
  const uint64_t build = 494, per_row = 1;
  EXPECT_EQ(stats.table_build_muls, q_count * build);
  EXPECT_EQ(stats.mont_muls, q_count * (build + rows * per_row));
  EXPECT_EQ(stats.rows_extracted, rows);  // once, not once per query
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.budget_splits, 0u);
  EXPECT_GE(stats.cpu_ms, 0.0);

  // Cross-check: batch MontMuls equal the sum of what serial Answer reports,
  // so the bench's batch-vs-serial op ratio compares like for like.
  uint64_t serial_total = 0;
  for (const PirQuery& query : queries) {
    uint64_t ops = 0;
    ASSERT_TRUE(server.Answer(query, &ops).ok());
    serial_total += ops;
  }
  EXPECT_EQ(stats.mont_muls, serial_total);
}

TEST(PirBatchTest, TableBudgetSplitsIntoSubBatchesNeverNaive) {
  // 256-bit keys, cols=8: one group of subset tables is 2*256*4*8 = 16 KiB
  // per query. A budget of two table sets forces a batch of 8 into four
  // sub-batch sweeps; every query stays on the table path.
  Rng rng(31);
  const size_t rows = 256, cols = 8, q_count = 8;
  auto db = RandomDatabase(rows, cols, 37);
  auto clients = MakeClients(2, 256, &rng);
  auto queries = MakeQueries(clients, q_count, cols, &rng);
  PirServer server(db);
  const size_t table_bytes = 2 * 256 * 4 * sizeof(uint64_t);
  server.set_table_budget_bytes(2 * table_bytes);

  PirBatchStats stats;
  auto batch = server.AnswerBatch(
      std::span<const PirQuery>(queries.data(), queries.size()), &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(stats.sweeps, 4u);
  EXPECT_EQ(stats.budget_splits, 3u);
  EXPECT_EQ(stats.table_queries, q_count) << "budget must split, not degrade";
  EXPECT_EQ(stats.rows_extracted, 4 * rows);  // each sub-batch re-sweeps
  ExpectBatchMatchesSerial(server, queries, *batch);
}

TEST(PirBatchTest, BudgetBelowOneTableSetFallsBackToNaivePerQuery) {
  // A query whose tables alone exceed the budget degrades to the naive
  // chain (the pre-batch behavior), still bit-identical.
  Rng rng(41);
  const size_t rows = 64, cols = 8, q_count = 3;
  auto db = RandomDatabase(rows, cols, 43);
  auto clients = MakeClients(1, 256, &rng);
  auto queries = MakeQueries(clients, q_count, cols, &rng);
  PirServer server(db);
  server.set_table_budget_bytes(1024);  // < one 16 KiB table set

  PirBatchStats stats;
  auto batch = server.AnswerBatch(
      std::span<const PirQuery>(queries.data(), queries.size()), &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(stats.table_queries, 0u);
  EXPECT_EQ(stats.sweeps, 1u);  // naive queries hold no tables live
  EXPECT_EQ(stats.mont_muls, q_count * rows * cols);
  ExpectBatchMatchesSerial(server, queries, *batch);
  for (size_t qi = 0; qi < q_count; ++qi) {
    const PirResponse reference = AnswerSerialReference(*db, queries[qi]);
    for (size_t i = 0; i < rows; ++i) {
      ASSERT_EQ((*batch)[qi].gamma[i], reference.gamma[i]);
    }
  }
}

TEST(PirBatchTest, EveryKernelTierIsBitIdenticalAndKeepsTheMulFormula) {
  // The SIMD lane path must change nothing observable except speed: at every
  // kernel tier the CPU supports, the batch gammas match the seed reference
  // bit for bit, and mont_muls follows the same pinned formula — lane
  // batching never re-counts logical multiplications.
  Rng rng(59);
  const size_t rows = 128, cols = 8, q_count = 8;
  auto db = RandomDatabase(rows, cols, 61);
  auto clients = MakeClients(3, 256, &rng);
  auto queries = MakeQueries(clients, q_count, cols, &rng);
  const uint64_t build = 494, per_row = 1;

  const MontKernel restore = SelectedKernel();
  for (MontKernel kernel : {MontKernel::kScalar, MontKernel::kAdx,
                            MontKernel::kAvx2, MontKernel::kIfma}) {
    if (ClampToCpu(kernel) != kernel) continue;  // CPU can't run this tier
    SetKernelOverride(kernel);
    SCOPED_TRACE(KernelName(kernel));
    PirServer server(db);
    PirBatchStats stats;
    auto batch = server.AnswerBatch(
        std::span<const PirQuery>(queries.data(), queries.size()), &stats);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(stats.mont_muls, q_count * (build + rows * per_row));
    for (size_t qi = 0; qi < q_count; ++qi) {
      const PirResponse reference = AnswerSerialReference(*db, queries[qi]);
      for (size_t i = 0; i < rows; ++i) {
        ASSERT_EQ((*batch)[qi].gamma[i], reference.gamma[i])
            << "query " << qi << " diverged from reference at row " << i;
      }
    }
    if (kernel >= MontKernel::kAvx2) {
      // One full lane group of 8 same-width queries: every vector mul
      // carries 8 live lanes, and the invocation count is one query's worth
      // of logical muls (the group shares each kernel call).
      EXPECT_EQ(stats.simd_lane_muls, build + rows * per_row);
      EXPECT_EQ(stats.simd_active_lanes, 8 * stats.simd_lane_muls);
      EXPECT_DOUBLE_EQ(stats.simd_fill(), 1.0);
    } else {
      EXPECT_EQ(stats.simd_lane_muls, 0u) << "scalar sweep must not claim "
                                             "vector work";
      EXPECT_EQ(stats.simd_fill(), 0.0);
    }
  }
  SetKernelOverride(restore);
}

TEST(PirBatchTest, LaneOccupancyCountsPartialGroupsTruthfully) {
  // Q=5 same-width queries form one 5-lane group: fill = 5/8. A singleton
  // (Q=1) never enters the lane engine at all.
  if (ClampToCpu(MontKernel::kAvx2) != MontKernel::kAvx2) {
    GTEST_SKIP() << "no vector tier on this CPU";
  }
  Rng rng(67);
  const size_t rows = 96, cols = 8;
  auto db = RandomDatabase(rows, cols, 71);
  auto clients = MakeClients(2, 256, &rng);
  PirServer server(db);

  const MontKernel restore = SelectedKernel();
  SetKernelOverride(MaxSupportedKernel());
  {
    auto queries = MakeQueries(clients, 5, cols, &rng);
    PirBatchStats stats;
    auto batch = server.AnswerBatch(
        std::span<const PirQuery>(queries.data(), queries.size()), &stats);
    ASSERT_TRUE(batch.ok());
    ExpectBatchMatchesSerial(server, queries, *batch);
    ASSERT_GT(stats.simd_lane_muls, 0u);
    EXPECT_EQ(stats.simd_active_lanes, 5 * stats.simd_lane_muls);
    EXPECT_DOUBLE_EQ(stats.simd_fill(), 5.0 / 8.0);
  }
  {
    auto queries = MakeQueries(clients, 1, cols, &rng);
    PirBatchStats stats;
    auto batch = server.AnswerBatch(
        std::span<const PirQuery>(queries.data(), queries.size()), &stats);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(stats.simd_lane_muls, 0u);
  }
  SetKernelOverride(restore);
}

TEST(PirBatchTest, EmptyBatchAndInvalidQueryHandling) {
  Rng rng(47);
  auto db = RandomDatabase(32, 4, 53);
  PirServer server(db);
  auto empty = server.AnswerBatch(std::span<const PirQuery>());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // One bad query fails the whole batch (all-or-nothing).
  auto clients = MakeClients(1, 128, &rng);
  auto queries = MakeQueries(clients, 2, 4, &rng);
  queries[1].q.pop_back();  // width mismatch
  EXPECT_FALSE(server
                   .AnswerBatch(std::span<const PirQuery>(queries.data(),
                                                          queries.size()))
                   .ok());
}

}  // namespace
}  // namespace embellish::crypto
