#include "crypto/benaloh.h"

#include <gtest/gtest.h>

#include "bignum/modmath.h"

namespace embellish::crypto {
namespace {

BenalohKeyPair MakeKeys(uint64_t r, size_t bits = 256, uint64_t seed = 1) {
  Rng rng(seed);
  BenalohKeyOptions options;
  options.key_bits = bits;
  options.r = r;
  auto kp = BenalohKeyPair::Generate(options, &rng);
  EXPECT_TRUE(kp.ok()) << kp.status().ToString();
  return std::move(kp).value();
}

TEST(BenalohOptionsTest, Validation) {
  BenalohKeyOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.key_bits = 64;
  EXPECT_FALSE(o.Validate().ok());
  o.key_bits = 8192;
  EXPECT_FALSE(o.Validate().ok());
  o = BenalohKeyOptions{};
  o.r = 1;
  EXPECT_FALSE(o.Validate().ok());
  o = BenalohKeyOptions{};
  o.r = 100;  // even r: gcd(r, p2-1) = 1 is unsatisfiable
  EXPECT_FALSE(o.Validate().ok());
  o = BenalohKeyOptions{};
  o.r = (1ULL << 33) + 1;  // beyond the practical decryption cap
  EXPECT_FALSE(o.Validate().ok());
}

TEST(BenalohHelperTest, ExactPowerOfThree) {
  EXPECT_EQ(ExactPowerOfThree(1), 0u);
  EXPECT_EQ(ExactPowerOfThree(2), 0u);
  EXPECT_EQ(ExactPowerOfThree(3), 1u);
  EXPECT_EQ(ExactPowerOfThree(9), 2u);
  EXPECT_EQ(ExactPowerOfThree(59049), 10u);
  EXPECT_EQ(ExactPowerOfThree(59048), 0u);
  EXPECT_EQ(ExactPowerOfThree(6), 0u);
}

TEST(BenalohHelperTest, DistinctPrimeFactors) {
  EXPECT_EQ(DistinctPrimeFactors(59049), std::vector<uint64_t>{3});
  EXPECT_EQ(DistinctPrimeFactors(12), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(DistinctPrimeFactors(97), std::vector<uint64_t>{97});
  EXPECT_EQ(DistinctPrimeFactors(30), (std::vector<uint64_t>{2, 3, 5}));
}

TEST(BenalohTest, EncryptRejectsOutOfRangeMessage) {
  auto kp = MakeKeys(729);
  Rng rng(2);
  EXPECT_FALSE(kp.public_key().Encrypt(729, &rng).ok());
  EXPECT_FALSE(kp.public_key().Encrypt(100000, &rng).ok());
  EXPECT_TRUE(kp.public_key().Encrypt(728, &rng).ok());
}

TEST(BenalohTest, RoundTripAllMessagesSmallR) {
  auto kp = MakeKeys(27);
  Rng rng(3);
  for (uint64_t m = 0; m < 27; ++m) {
    auto c = kp.public_key().Encrypt(m, &rng);
    ASSERT_TRUE(c.ok());
    auto d = kp.private_key().Decrypt(*c);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, m);
  }
}

TEST(BenalohTest, BothDecryptionModesAgree) {
  auto kp = MakeKeys(729);
  Rng rng(4);
  for (uint64_t m : {0ULL, 1ULL, 2ULL, 3ULL, 26ULL, 364ULL, 728ULL}) {
    auto c = kp.public_key().Encrypt(m, &rng);
    ASSERT_TRUE(c.ok());
    auto bsgs = kp.private_key().DecryptWith(
        *c, BenalohDecryptMode::kBabyStepGiantStep);
    auto digits = kp.private_key().DecryptWith(
        *c, BenalohDecryptMode::kPowerOfThreeDigits);
    ASSERT_TRUE(bsgs.ok());
    ASSERT_TRUE(digits.ok());
    EXPECT_EQ(*bsgs, m);
    EXPECT_EQ(*digits, m);
  }
}

TEST(BenalohTest, NonPowerOfThreeRUsesBsgs) {
  auto kp = MakeKeys(175);  // r = 5^2 * 7
  Rng rng(5);
  for (uint64_t m : {0ULL, 1ULL, 50ULL, 174ULL}) {
    auto c = kp.public_key().Encrypt(m, &rng);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*kp.private_key().Decrypt(*c), m);
    // Digit mode must refuse.
    EXPECT_FALSE(kp.private_key()
                     .DecryptWith(*c, BenalohDecryptMode::kPowerOfThreeDigits)
                     .ok());
  }
}

TEST(BenalohTest, ProbabilisticEncryptionDiffersAcrossCalls) {
  auto kp = MakeKeys(729);
  Rng rng(6);
  auto c1 = kp.public_key().Encrypt(5, &rng);
  auto c2 = kp.public_key().Encrypt(5, &rng);
  EXPECT_NE(c1->value, c2->value);  // fresh randomness per encryption
  EXPECT_EQ(*kp.private_key().Decrypt(*c1), 5u);
  EXPECT_EQ(*kp.private_key().Decrypt(*c2), 5u);
}

TEST(BenalohTest, AdditiveHomomorphism) {
  auto kp = MakeKeys(729);
  Rng rng(7);
  for (auto [a, b] : {std::pair<uint64_t, uint64_t>{0, 0},
                      {1, 2},
                      {100, 200},
                      {364, 364},
                      {728, 1}}) {
    auto ca = kp.public_key().Encrypt(a, &rng);
    auto cb = kp.public_key().Encrypt(b, &rng);
    auto sum = kp.public_key().Add(*ca, *cb);
    EXPECT_EQ(*kp.private_key().Decrypt(sum), (a + b) % 729);
  }
}

TEST(BenalohTest, ScalarMultiplication) {
  auto kp = MakeKeys(729);
  Rng rng(8);
  auto c = kp.public_key().Encrypt(7, &rng);
  EXPECT_EQ(*kp.private_key().Decrypt(kp.public_key().ScalarMul(*c, 3)), 21u);
  EXPECT_EQ(*kp.private_key().Decrypt(kp.public_key().ScalarMul(*c, 104)),
            (7 * 104) % 729);
  // The decoy property of Algorithm 4: E(0)^p stays an encryption of 0.
  auto zero = kp.public_key().Encrypt(0, &rng);
  for (uint64_t p : {1ULL, 17ULL, 255ULL}) {
    EXPECT_EQ(*kp.private_key().Decrypt(kp.public_key().ScalarMul(*zero, p)),
              0u);
  }
}

TEST(BenalohTest, Algorithm4AccumulationPattern) {
  // E(score) = prod E(u_i)^{p_i} must decrypt to sum(u_i * p_i).
  auto kp = MakeKeys(59049);
  Rng rng(9);
  const uint64_t u[] = {1, 0, 1, 0, 1};
  const uint64_t p[] = {200, 255, 13, 99, 1};
  uint64_t expected = 0;
  BenalohCiphertext acc;
  bool first = true;
  for (int i = 0; i < 5; ++i) {
    auto c = kp.public_key().Encrypt(u[i], &rng);
    auto powered = kp.public_key().ScalarMul(*c, p[i]);
    if (first) {
      acc = powered;
      first = false;
    } else {
      acc = kp.public_key().Add(acc, powered);
    }
    expected += u[i] * p[i];
  }
  EXPECT_EQ(*kp.private_key().Decrypt(acc), expected);
}

TEST(BenalohTest, SerializationRoundTrip) {
  auto kp = MakeKeys(729);
  Rng rng(10);
  auto c = kp.public_key().Encrypt(123, &rng);
  auto bytes = kp.public_key().Serialize(*c);
  EXPECT_EQ(bytes.size(), kp.public_key().CiphertextBytes());
  auto back = kp.public_key().Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value, c->value);
  EXPECT_EQ(*kp.private_key().Decrypt(*back), 123u);
}

TEST(BenalohTest, DeserializeRejectsCorruptInput) {
  auto kp = MakeKeys(729);
  Rng rng(11);
  auto c = kp.public_key().Encrypt(1, &rng);
  auto bytes = kp.public_key().Serialize(*c);
  // Wrong size.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(kp.public_key().Deserialize(truncated).ok());
  // Value >= n.
  std::vector<uint8_t> huge(bytes.size(), 0xFF);
  EXPECT_FALSE(kp.public_key().Deserialize(huge).ok());
}

TEST(BenalohTest, DecryptRejectsOutOfRangeCiphertext) {
  auto kp = MakeKeys(729);
  BenalohCiphertext zero{bignum::BigInt(0)};
  EXPECT_FALSE(kp.private_key().Decrypt(zero).ok());
  BenalohCiphertext big{kp.public_key().n() + bignum::BigInt(1)};
  EXPECT_FALSE(kp.private_key().Decrypt(big).ok());
}

TEST(BenalohTest, TamperedCiphertextFailsOrDecodesDifferently) {
  // Multiplying by a random unit not of the form g^m u^r lands outside the
  // message coset with overwhelming probability; digit recovery reports it.
  auto kp = MakeKeys(729);
  Rng rng(12);
  auto c = kp.public_key().Encrypt(5, &rng);
  BenalohCiphertext tampered{c->value * bignum::BigInt(2) %
                             kp.public_key().n()};
  auto d = kp.private_key().Decrypt(tampered);
  if (d.ok()) {
    // 2 may accidentally be a valid encryption of some m'; it must at least
    // not silently decode the original message with certainty... but the
    // overwhelmingly likely case is failure:
    SUCCEED();
  } else {
    EXPECT_TRUE(d.status().IsCryptoError());
  }
}

TEST(BenalohTest, KeyGenerationDeterministicPerSeed) {
  auto kp1 = MakeKeys(729, 256, 77);
  auto kp2 = MakeKeys(729, 256, 77);
  EXPECT_EQ(kp1.public_key().n(), kp2.public_key().n());
  EXPECT_EQ(kp1.public_key().g(), kp2.public_key().g());
  auto kp3 = MakeKeys(729, 256, 78);
  EXPECT_NE(kp1.public_key().n(), kp3.public_key().n());
}

TEST(BenalohTest, CiphertextBytesMatchesKeyWidth) {
  auto kp = MakeKeys(729, 256);
  EXPECT_EQ(kp.public_key().CiphertextBytes(), 32u);
  auto kp512 = MakeKeys(729, 512);
  EXPECT_EQ(kp512.public_key().CiphertextBytes(), 64u);
}

class BenalohRSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BenalohRSweepTest, RoundTripRandomMessages) {
  uint64_t r = GetParam();
  auto kp = MakeKeys(r, 256, 1000 + r);
  Rng rng(13 + r);
  for (int i = 0; i < 10; ++i) {
    uint64_t m = rng.Uniform(r);
    auto c = kp.public_key().Encrypt(m, &rng);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*kp.private_key().Decrypt(*c), m);
  }
}

INSTANTIATE_TEST_SUITE_P(MessageSpaces, BenalohRSweepTest,
                         ::testing::Values(3, 27, 125, 729, 3125, 6561,
                                           59049, 121));

}  // namespace
}  // namespace embellish::crypto
