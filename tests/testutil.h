// Shared fixtures for the test suite: small deterministic lexicons, corpora
// and bucket organizations so individual tests stay focused and fast.

#ifndef EMBELLISH_TESTS_TESTUTIL_H_
#define EMBELLISH_TESTS_TESTUTIL_H_

#include <memory>
#include <vector>

#include "core/bucketizer.h"
#include "core/sequencer.h"
#include "core/specificity.h"
#include "corpus/generator.h"
#include "index/builder.h"
#include "wordnet/builder.h"
#include "wordnet/generator.h"

namespace embellish::testutil {

/// \brief A hand-built 12-term lexicon with two hypernym chains and one of
///        each non-hierarchy relation; depths are easy to eyeball.
///
///   entity
///   ├── animal ── dog ── puppy
///   │        └── cat
///   └── artifact ── vehicle ── car ── coupe
///                          └── truck
///   plus: antonym(dog, cat), meronym(car, engine [under artifact]),
///   derivation(vehicle, garage [under artifact]), domain(coupe, racing
///   [under entity]).
inline wordnet::WordNetDatabase TinyLexicon() {
  wordnet::WordNetBuilder b;
  auto entity = b.AddSynset({"entity"});
  auto animal = b.AddSynset({"animal", "beast"});
  auto dog = b.AddSynset({"dog"});
  auto puppy = b.AddSynset({"puppy"});
  auto cat = b.AddSynset({"cat"});
  auto artifact = b.AddSynset({"artifact"});
  auto vehicle = b.AddSynset({"vehicle"});
  auto car = b.AddSynset({"car", "auto"});
  auto coupe = b.AddSynset({"coupe"});
  auto truck = b.AddSynset({"truck"});
  auto engine = b.AddSynset({"engine"});
  auto garage = b.AddSynset({"garage"});
  auto racing = b.AddSynset({"racing"});

  (void)b.AddHypernym(animal, entity);
  (void)b.AddHypernym(dog, animal);
  (void)b.AddHypernym(puppy, dog);
  (void)b.AddHypernym(cat, animal);
  (void)b.AddHypernym(artifact, entity);
  (void)b.AddHypernym(vehicle, artifact);
  (void)b.AddHypernym(car, vehicle);
  (void)b.AddHypernym(coupe, car);
  (void)b.AddHypernym(truck, vehicle);
  (void)b.AddHypernym(engine, artifact);
  (void)b.AddHypernym(garage, artifact);
  (void)b.AddHypernym(racing, entity);

  (void)b.AddRelation(dog, wordnet::RelationType::kAntonym, cat);
  (void)b.AddRelation(car, wordnet::RelationType::kMeronym, engine);
  (void)b.AddRelation(vehicle, wordnet::RelationType::kDerivation, garage);
  (void)b.AddRelation(coupe, wordnet::RelationType::kDomain, racing);

  auto db = std::move(b).Build();
  return std::move(db).value();
}

/// \brief A small synthetic lexicon (deterministic).
inline wordnet::WordNetDatabase SmallSyntheticLexicon(
    size_t terms = 2000, uint64_t seed = 42) {
  wordnet::SyntheticWordNetOptions options;
  options.target_term_count = terms;
  options.seed = seed;
  auto db = wordnet::GenerateSyntheticWordNet(options);
  return std::move(db).value();
}

/// \brief A small synthetic corpus over `lexicon`.
inline corpus::Corpus SmallCorpus(const wordnet::WordNetDatabase& lexicon,
                                  size_t docs = 300, uint64_t seed = 7) {
  corpus::SyntheticCorpusOptions options;
  options.num_docs = docs;
  options.mean_doc_tokens = 60;
  options.num_topics = 8;
  options.terms_per_topic = std::min<size_t>(200, lexicon.term_count() / 2);
  options.seed = seed;
  auto c = corpus::GenerateSyntheticCorpus(lexicon, options);
  return std::move(c).value();
}

/// \brief Buckets for a lexicon via the real Algorithm 1 + 2 pipeline.
inline core::BucketOrganization MakeBuckets(
    const wordnet::WordNetDatabase& lexicon, size_t bucket_size,
    size_t segment_size) {
  auto spec = core::SpecificityMap::FromHypernymDepth(lexicon);
  auto seq = core::SequenceDictionary(lexicon);
  core::BucketizerOptions options;
  options.bucket_size = bucket_size;
  options.segment_size = segment_size;
  auto org = core::FormBuckets(seq, spec, options);
  return std::move(org).value();
}

}  // namespace embellish::testutil

#endif  // EMBELLISH_TESTS_TESTUTIL_H_
