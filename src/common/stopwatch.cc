#include "common/stopwatch.h"

#include <ctime>

namespace embellish {

namespace {

int64_t ReadClock(clockid_t id) {
  timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

// Some container kernels account thread CPU time in scheduler-tick quanta
// (10 ms), which is useless for per-query measurements. Probe once: if the
// smallest observable positive delta is coarser than 1 ms, fall back to
// CLOCK_MONOTONIC — the measured sections are single-threaded pure compute,
// so wall time equals CPU time for them.
bool ThreadCpuClockIsFineGrained() {
  int64_t prev = ReadClock(CLOCK_THREAD_CPUTIME_ID);
  int64_t min_delta = -1;
  for (int i = 0; i < 200000; ++i) {
    int64_t now = ReadClock(CLOCK_THREAD_CPUTIME_ID);
    int64_t d = now - prev;
    if (d > 0) {
      min_delta = d;
      break;
    }
  }
  return min_delta > 0 && min_delta < 1000000;  // < 1 ms
}

clockid_t CpuClockId() {
  static const clockid_t kId =
      ThreadCpuClockIsFineGrained() ? CLOCK_THREAD_CPUTIME_ID
                                    : CLOCK_MONOTONIC;
  return kId;
}

}  // namespace

int64_t CpuStopwatch::NowThreadCpuNanos() { return ReadClock(CpuClockId()); }

}  // namespace embellish
