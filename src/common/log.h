// Minimal leveled logger.
//
// The library is silent by default (kWarning); benches and examples raise the
// level for progress reporting. Logging goes to stderr so bench tables on
// stdout stay machine-parsable.

#ifndef EMBELLISH_COMMON_LOG_H_
#define EMBELLISH_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace embellish {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

/// \brief Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace embellish

#define EMB_LOG(level)                                        \
  if (::embellish::LogLevel::level < ::embellish::GetLogLevel()) \
    ;                                                         \
  else                                                        \
    ::embellish::internal::LogMessage(::embellish::LogLevel::level, __FILE__, __LINE__)

#endif  // EMBELLISH_COMMON_LOG_H_
