// Cached CPU-feature detection and the Montgomery kernel ladder.
//
// Every accelerated bignum kernel — the MULX/ADX inline-asm 256-bit kernel,
// the AVX2 4-lane reduced-radix kernel and the AVX-512 IFMA 8-lane kernel —
// dispatches at runtime through SelectedKernel(), so the binary carries no
// -march requirement and one build runs correctly on any x86-64 (and, via
// the scalar tier, on any architecture at all).
//
// The environment variable EMBELLISH_KERNEL=scalar|adx|avx2|ifma pins the
// dispatch so benches and CI can measure one tier reproducibly; a request
// above what the CPU supports clamps down the ladder rather than failing.
// Benches that sweep tiers inside one process use SetKernelOverride.

#ifndef EMBELLISH_COMMON_CPUINFO_H_
#define EMBELLISH_COMMON_CPUINFO_H_

namespace embellish {

/// \brief The ISA extensions the bignum kernels care about.
struct CpuFeatures {
  bool adx = false;         ///< ADCX/ADOX dual carry chains
  bool bmi2 = false;        ///< MULX flag-preserving multiply
  bool avx2 = false;        ///< 256-bit integer SIMD (vpmuludq lanes)
  bool avx512ifma = false;  ///< VPMADD52 (requires AVX512F + AVX512VL here)
};

/// \brief One cached CPUID interrogation per process.
const CpuFeatures& GetCpuFeatures();

/// \brief The kernel ladder. Each tier implies the ones below it as
///        fallbacks for the shapes it does not cover (odd limb widths for
///        the ADX kernel, sub-SIMD lane counts for the lane engines).
enum class MontKernel : int {
  kScalar = 0,  ///< portable fixed-width / generic CIOS, 64-bit limbs
  kAdx = 1,     ///< + MULX/ADCX/ADOX scalar kernel (k = 4)
  kAvx2 = 2,    ///< + 4-lane vertical CIOS, 32-bit limbs in 64-bit lanes
  kIfma = 3,    ///< + 8-lane vertical CIOS, 52-bit limbs (VPMADD52)
};

/// \brief Stable lowercase name ("scalar", "adx", "avx2", "ifma").
const char* KernelName(MontKernel kernel);

/// \brief Parses a KernelName; returns false on anything unrecognized.
bool KernelFromName(const char* name, MontKernel* out);

/// \brief Highest tier this CPU can execute.
MontKernel MaxSupportedKernel();

/// \brief Clamps a requested tier to what the CPU supports.
MontKernel ClampToCpu(MontKernel kernel);

/// \brief The active tier: MaxSupportedKernel(), lowered by EMBELLISH_KERNEL
///        if set, or by the latest SetKernelOverride. Hot dispatch sites pay
///        one relaxed atomic load.
MontKernel SelectedKernel();

/// \brief Pins the dispatch programmatically (bench kernel sweeps and
///        tests); the request is clamped to CPU support. Returns the tier
///        that was previously selected so callers can restore it. Dispatch
///        sites re-read the selection per operation, so callers must quiesce
///        in-flight crypto before switching tiers mid-process.
MontKernel SetKernelOverride(MontKernel kernel);

}  // namespace embellish

#endif  // EMBELLISH_COMMON_CPUINFO_H_
