#include "common/rng.h"

#include <cassert>

namespace embellish {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm keeps memory at O(k) draws but needs a set; for the
  // sizes used here a partial Fisher-Yates over an index vector is simpler
  // and still O(n). Callers sample from dictionaries of ~1e5 entries.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

void Rng::FillBytes(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t x = Next64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(x >> (8 * b));
  }
  if (i < n) {
    uint64_t x = Next64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(x);
      x >>= 8;
    }
  }
}

Rng Rng::Fork() { return Rng(Next64() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace embellish
