// Big-endian integer packing shared by the wire codecs (core/wire_format,
// server/framing). All protocol integers are big-endian on the wire.

#ifndef EMBELLISH_COMMON_ENDIAN_H_
#define EMBELLISH_COMMON_ENDIAN_H_

#include <cstdint>
#include <vector>

namespace embellish {

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

inline uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v));
}

inline uint64_t GetU64(const uint8_t* p) {
  return (static_cast<uint64_t>(GetU32(p)) << 32) | GetU32(p + 4);
}

}  // namespace embellish

#endif  // EMBELLISH_COMMON_ENDIAN_H_
