// Wall-clock and CPU-time stopwatches for the §5.2 cost metrics.

#ifndef EMBELLISH_COMMON_STOPWATCH_H_
#define EMBELLISH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace embellish {

/// \brief Monotonic wall-clock stopwatch (microsecond resolution).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// \brief Microseconds since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Per-thread CPU-time stopwatch; used for the "CPU msec" metrics so
///        that simulated-I/O sleeps and scheduler noise are excluded.
class CpuStopwatch {
 public:
  CpuStopwatch() { Restart(); }

  void Restart() { start_ns_ = NowThreadCpuNanos(); }

  int64_t ElapsedMicros() const {
    return (NowThreadCpuNanos() - start_ns_) / 1000;
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// \brief Current thread CPU time in nanoseconds.
  static int64_t NowThreadCpuNanos();

 private:
  int64_t start_ns_;
};

}  // namespace embellish

#endif  // EMBELLISH_COMMON_STOPWATCH_H_
