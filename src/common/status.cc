#include "common/status.h"

namespace embellish {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kBusy:
      return "Busy";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace embellish
