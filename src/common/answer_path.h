// The answer-path / heavy-build counted invariant (PR 7 style).
//
// The live-index catalog (index/epoch.h) promises that serving threads
// never perform — or wait on — index (re)construction: deltas and reshards
// are built on background threads against pinned immutable snapshots and
// installed by an atomic swap. Promises rot; counters do not. Every heavy
// build entry point (index construction, sharding splits, delta merges,
// storage layout builds) calls NoteHeavyBuild(); the serving tiers mark
// their request-handling threads with ScopedAnswerPath. A heavy build
// executed on a marked thread bumps a process-wide counter, and the ingest
// tests, the live-ingest example, and fig_ingest all assert it stays zero —
// so wiring a rebuild into a request handler (or an epoch-resolution path
// that quietly re-splits an index) fails loudly instead of shipping as a
// latency cliff.

#ifndef EMBELLISH_COMMON_ANSWER_PATH_H_
#define EMBELLISH_COMMON_ANSWER_PATH_H_

#include <atomic>
#include <cstdint>

namespace embellish::common {

namespace internal {
inline std::atomic<uint64_t> g_answer_path_builds{0};
inline thread_local uint32_t tl_answer_path_depth = 0;
}  // namespace internal

/// \brief True while the current thread is inside a marked answer-path
///        scope (request handling in a serving tier).
inline bool OnAnswerPath() { return internal::tl_answer_path_depth > 0; }

/// \brief Marks the current thread as an answer-path thread for the scope's
///        lifetime. Nestable (batch dispatch inside frame handling).
class ScopedAnswerPath {
 public:
  ScopedAnswerPath() { ++internal::tl_answer_path_depth; }
  ~ScopedAnswerPath() { --internal::tl_answer_path_depth; }
  ScopedAnswerPath(const ScopedAnswerPath&) = delete;
  ScopedAnswerPath& operator=(const ScopedAnswerPath&) = delete;
};

/// \brief Called by every heavy build entry point (index builds, shard
///        splits, delta merges, layout builds). Counts the build against
///        the invariant when it runs on a marked answer-path thread.
inline void NoteHeavyBuild() {
  if (OnAnswerPath()) {
    internal::g_answer_path_builds.fetch_add(1, std::memory_order_relaxed);
  }
}

/// \brief Process-wide count of heavy builds observed on answer-path
///        threads. The ingest suites assert this never moves.
inline uint64_t AnswerPathBuilds() {
  return internal::g_answer_path_builds.load(std::memory_order_relaxed);
}

}  // namespace embellish::common

#endif  // EMBELLISH_COMMON_ANSWER_PATH_H_
