#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace embellish {

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim,
                                  bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      std::string_view piece = s.substr(start, i - start);
      if (!piece.empty() || !skip_empty) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string WithThousandsSeparators(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace embellish
