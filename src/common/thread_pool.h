// Fixed-size thread pool with a cache-aware parallel-for helper.
//
// The PIR answer kernel and the batched Benaloh/Paillier encrypt paths are
// embarrassingly parallel over independent rows/messages, so a plain
// fixed-partition pool is the right tool: ParallelFor hands each worker
// contiguous index ranges (good locality over the packed bit matrix and the
// flat Montgomery operand tables) claimed from an atomic cursor (so uneven
// chunks cannot straggle). There is no work stealing — tasks never spawn
// subtasks.
//
// CPU accounting: the Section 5.2 metrics report server CPU milliseconds,
// not wall time. ParallelFor therefore measures per-worker thread CPU time
// and returns the total consumed across all participating threads (including
// the caller), which callers add to RetrievalCosts::server_cpu_ms.

#ifndef EMBELLISH_COMMON_THREAD_POOL_H_
#define EMBELLISH_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace embellish {

/// \brief A fixed pool of worker threads.
class ThreadPool {
 public:
  /// \brief Spawns `num_threads` workers. 0 or 1 means "inline": no threads
  ///        are spawned and all work runs on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of threads that execute work (>= 1; counts the caller
  ///        when the pool is inline).
  size_t num_threads() const { return std::max<size_t>(1, workers_.size()); }

  /// \brief Runs `fn(chunk_begin, chunk_end)` over a partition of
  ///        [begin, end) into contiguous chunks of at least `min_grain`
  ///        indices, across the workers plus the calling thread. Blocks
  ///        until every chunk has completed.
  ///
  /// `fn` must be safe to invoke concurrently from multiple threads and must
  /// not itself call ParallelFor on this pool (one region at a time).
  /// Returns the total thread-CPU milliseconds spent inside `fn` summed over
  /// all participating threads.
  double ParallelFor(size_t begin, size_t end, size_t min_grain,
                     const std::function<void(size_t, size_t)>& fn);

  /// \brief Process-wide pool, created on first use with EMBELLISH_THREADS
  ///        threads (default: std::thread::hardware_concurrency()). Never
  ///        destroyed. Setting EMBELLISH_THREADS=1 forces serial execution.
  static ThreadPool* Default();

 private:
  struct ParallelJob;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  ParallelJob* job_ = nullptr;  // guarded by mu_; non-null while a job runs
  bool shutdown_ = false;       // guarded by mu_
};

}  // namespace embellish

#endif  // EMBELLISH_COMMON_THREAD_POOL_H_
