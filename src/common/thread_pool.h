// Multi-region work-stealing executor behind the codebase's ParallelFor.
//
// PR 1's pool ran exactly one ParallelFor region at a time, which was fine
// while tasks never spawned subtasks. The moment batched serving (PR 2) and
// sharded retrieval (PR 3) composed — N batch workers each fanning their
// query out over M shards — the one-job limit meant every concurrent caller
// but one degraded to inline execution, and the server needed dedicated
// sub-pools (`shard_threads`, `fanout_threads`) just to keep regions from
// colliding. This executor removes the limit:
//
//   - Each ParallelFor caller enqueues a *region* (an atomic chunk cursor
//     over [begin, end) plus a grain) onto the executor's active-region
//     list and immediately starts claiming chunks of its own region.
//   - Workers drain the region list round-robin: when the region a worker
//     is participating in runs out of unclaimed chunks, the worker steals
//     from the next active region instead of going idle, so concurrent and
//     nested regions share the whole pool.
//   - ParallelFor may be called from inside a chunk of another region on
//     the same pool (it enqueues a further region and participates in it);
//     nesting depth is bounded only by the call stack.
//
// Blocking semantics are unchanged: ParallelFor returns only when every
// index of its region has run. The caller always participates, so
// completion never depends on worker availability — a fully-busy executor
// degrades to the caller draining its own region inline (losing
// parallelism, never progress), and a region can never deadlock waiting
// for a worker.
//
// Wake-up discipline: registration wakes at most min(idle workers, chunks
// beyond the caller's first, spare hardware threads) sleepers — zero on a
// one-core box, where parallel workers only buy context switches (the
// PR 3 `BENCH_shards.json` pooled-mode collapse). Committing workers
// chain further wake-ups while claimable work remains, and parked workers
// rescan the region list on a short timer as the liveness backstop, so
// under-waking never strands a region. After ~160 ms of sustained
// quiescence a worker deep-parks indefinitely (an idle pool polls
// nothing); while anyone is deep-parked, registration wakes one worker
// past the hardware clamp to restore the timed regime.
//
// CPU accounting: the Section 5.2 metrics report server CPU milliseconds,
// not wall time. ParallelFor measures per-thread CPU inside `fn` and
// returns the total across all participating threads (including the
// caller). A nested ParallelFor reports its own region's time to its own
// caller; an outer region that also times the nesting thread will observe
// that thread's share of the nested work too, so compositions that need
// exact totals should consume the *inner* return values (every current
// caller either does that or discards the outer value).

#ifndef EMBELLISH_COMMON_THREAD_POOL_H_
#define EMBELLISH_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace embellish {

/// \brief A fixed pool of worker threads draining concurrent ParallelFor
///        regions (see file comment).
class ThreadPool {
 public:
  /// \brief Spawns `num_threads` workers. 0 or 1 means "inline": no threads
  ///        are spawned and all work runs on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of threads that execute work (>= 1; counts the caller
  ///        when the pool is inline).
  size_t num_threads() const { return std::max<size_t>(1, workers_.size()); }

  /// \brief Runs `fn(chunk_begin, chunk_end)` over a partition of
  ///        [begin, end) into contiguous chunks of at least `min_grain`
  ///        indices, across the workers plus the calling thread. Blocks
  ///        until every chunk has completed.
  ///
  /// `fn` must be safe to invoke concurrently from multiple threads. It MAY
  /// call ParallelFor on this pool (concurrent and nested regions compose;
  /// see file comment). It must not assume any two chunks run concurrently:
  /// with no workers to spare the caller runs every chunk itself, so a chunk
  /// that blocks waiting for a sibling chunk's side effect can deadlock.
  /// Returns the total thread-CPU milliseconds spent inside `fn` summed over
  /// all participating threads.
  double ParallelFor(size_t begin, size_t end, size_t min_grain,
                     const std::function<void(size_t, size_t)>& fn);

  /// \brief Process-wide pool, created on first use with EMBELLISH_THREADS
  ///        threads (default: std::thread::hardware_concurrency()). Never
  ///        destroyed. Setting EMBELLISH_THREADS=1 forces serial execution.
  static ThreadPool* Default();

 private:
  struct Region;

  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::vector<Region*> regions_;  // active regions; guarded by mu_
  size_t idle_workers_ = 0;       // workers parked on work_ready_; by mu_
  size_t deep_parked_ = 0;        // subset of idle in indefinite park
  bool shutdown_ = false;         // guarded by mu_
};

}  // namespace embellish

#endif  // EMBELLISH_COMMON_THREAD_POOL_H_
