#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace embellish {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE ";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  std::string s = stream_.str();
  std::fprintf(stderr, "%s\n", s.c_str());
  (void)level_;
}

}  // namespace internal
}  // namespace embellish
