// Small string helpers shared across modules.

#ifndef EMBELLISH_COMMON_STRINGS_H_
#define EMBELLISH_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace embellish {

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Splits `s` on `delim`, dropping empty pieces when `skip_empty`.
std::vector<std::string> StrSplit(std::string_view s, char delim,
                                  bool skip_empty = false);

/// \brief Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// \brief ASCII lower-casing (the analyzer never deals with non-ASCII input).
std::string AsciiToLower(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Strip ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// \brief Renders `1234567` as `"1,234,567"` for bench tables.
std::string WithThousandsSeparators(uint64_t v);

}  // namespace embellish

#endif  // EMBELLISH_COMMON_STRINGS_H_
