// Deterministic pseudo-random number generation.
//
// Every randomized component of the embellish library draws randomness from
// an explicitly seeded Rng so that experiments and tests are reproducible
// bit-for-bit. The generator is xoshiro256** seeded via SplitMix64 — fast,
// high quality, and trivially portable. It is NOT cryptographically secure;
// the crypto module layers rejection sampling on top for protocol nonces in
// this *simulation* setting (see crypto/README note in benaloh.h).

#ifndef EMBELLISH_COMMON_RNG_H_
#define EMBELLISH_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace embellish {

/// \brief SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// \brief Deterministic xoshiro256** generator with convenience samplers.
class Rng {
 public:
  /// \brief Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = kDefaultSeed);

  /// \brief Seed used when none is supplied; fixed for reproducibility.
  static constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;

  /// \brief Next raw 64 random bits.
  uint64_t Next64();

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  ///        Uses Lemire rejection to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// \brief Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Sample `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Fill `n` random bytes.
  void FillBytes(uint8_t* out, size_t n);

  /// \brief Derive an independent child generator (stream splitting).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace embellish

#endif  // EMBELLISH_COMMON_RNG_H_
