#include "common/cpuinfo.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace embellish {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  f.adx = __builtin_cpu_supports("adx") != 0;
  f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  // The IFMA lane kernel uses 512-bit vectors plus VL-encoded helpers, so
  // all three bits must be present before the tier is offered.
  f.avx512ifma = __builtin_cpu_supports("avx512ifma") != 0 &&
                 __builtin_cpu_supports("avx512f") != 0 &&
                 __builtin_cpu_supports("avx512vl") != 0;
#endif
  return f;
}

// Selected tier, encoded as int(MontKernel); -1 until first use.
std::atomic<int> g_selected{-1};

MontKernel InitialSelection() {
  MontKernel kernel = MaxSupportedKernel();
  const char* env = std::getenv("EMBELLISH_KERNEL");
  if (env != nullptr && *env != '\0') {
    MontKernel requested;
    if (KernelFromName(env, &requested)) {
      kernel = ClampToCpu(requested);
    }
    // An unrecognized value keeps the auto selection: benches print the
    // resolved KernelName, so a typo is visible rather than silently scalar.
  }
  return kernel;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

const char* KernelName(MontKernel kernel) {
  switch (kernel) {
    case MontKernel::kScalar: return "scalar";
    case MontKernel::kAdx: return "adx";
    case MontKernel::kAvx2: return "avx2";
    case MontKernel::kIfma: return "ifma";
  }
  return "unknown";
}

bool KernelFromName(const char* name, MontKernel* out) {
  if (name == nullptr || out == nullptr) return false;
  for (MontKernel kernel : {MontKernel::kScalar, MontKernel::kAdx,
                            MontKernel::kAvx2, MontKernel::kIfma}) {
    if (std::strcmp(name, KernelName(kernel)) == 0) {
      *out = kernel;
      return true;
    }
  }
  return false;
}

MontKernel MaxSupportedKernel() {
  const CpuFeatures& f = GetCpuFeatures();
  if (f.avx512ifma) return MontKernel::kIfma;
  if (f.avx2) return MontKernel::kAvx2;
  if (f.adx && f.bmi2) return MontKernel::kAdx;
  return MontKernel::kScalar;
}

MontKernel ClampToCpu(MontKernel kernel) {
  // The ladder is ordered by ISA requirements, but the tiers are not
  // strictly nested in hardware terms (an AVX2 machine without ADX exists in
  // principle), so clamp against the specific feature each tier needs.
  const CpuFeatures& f = GetCpuFeatures();
  if (kernel == MontKernel::kIfma && !f.avx512ifma) kernel = MontKernel::kAvx2;
  if (kernel == MontKernel::kAvx2 && !f.avx2) kernel = MontKernel::kAdx;
  if (kernel == MontKernel::kAdx && !(f.adx && f.bmi2)) {
    kernel = MontKernel::kScalar;
  }
  return kernel;
}

MontKernel SelectedKernel() {
  int cur = g_selected.load(std::memory_order_relaxed);
  if (cur < 0) {
    const int initial = static_cast<int>(InitialSelection());
    // Several threads may race the first read; they all compute the same
    // value, so a plain store is fine either way.
    g_selected.store(initial, std::memory_order_relaxed);
    cur = initial;
  }
  return static_cast<MontKernel>(cur);
}

MontKernel SetKernelOverride(MontKernel kernel) {
  const MontKernel previous = SelectedKernel();
  g_selected.store(static_cast<int>(ClampToCpu(kernel)),
                   std::memory_order_relaxed);
  return previous;
}

}  // namespace embellish
