#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/stopwatch.h"

namespace embellish {

// One in-flight parallel region. Workers claim contiguous chunks from `next`;
// the participant that completes the final index signals `done`. The job
// lives on the caller's stack, so lifetime is guarded twice: `done` proves
// every index ran, and `active` proves every registered worker has left
// Participate() before the caller may return.
struct ThreadPool::ParallelJob {
  size_t end = 0;
  size_t chunk = 1;
  uint64_t generation = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> remaining{0};
  std::atomic<int> active{0};

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  std::atomic<int64_t> cpu_micros{0};

  // Drains chunks until the index space is exhausted. Returns whether this
  // thread completed the job's final index. After a true return (or after
  // `remaining` reaches zero) the job may be torn down by the caller, so all
  // bookkeeping for a chunk happens before that chunk's decrement.
  bool Participate() {
    while (true) {
      const size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) return false;
      const size_t stop = std::min(end, start + chunk);
      CpuStopwatch cpu;
      (*fn)(start, stop);
      cpu_micros.fetch_add(cpu.ElapsedMicros(), std::memory_order_relaxed);
      const size_t len = stop - start;
      if (remaining.fetch_sub(len, std::memory_order_acq_rel) == len) {
        std::lock_guard<std::mutex> lock(done_mu);
        done = true;
        done_cv.notify_all();
        return true;
      }
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t last_generation = 0;
  while (true) {
    ParallelJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_->generation != last_generation);
      });
      if (shutdown_) return;
      job = job_;
      last_generation = job->generation;
      // Registered under mu_: once the caller clears job_ under mu_, no
      // further worker can enter, and `active` covers those that did.
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    job->Participate();
    job->active.fetch_sub(1, std::memory_order_release);
  }
}

double ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                               const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return 0.0;
  if (min_grain == 0) min_grain = 1;
  const size_t n = end - begin;

  if (workers_.empty() || n <= min_grain) {
    CpuStopwatch cpu;
    fn(begin, end);
    return cpu.ElapsedMillis();
  }

  static std::atomic<uint64_t> generation_counter{0};
  ParallelJob job;
  job.end = end;
  // ~4 chunks per participant balances tail latency against chunk overhead
  // while keeping each chunk a contiguous, cache-friendly index range. When
  // the pool is wider than the machine (oversubscribed), more chunks only
  // buy context switches, so chunking follows the hardware width instead.
  size_t participants = workers_.size() + 1;
  const size_t hw = std::thread::hardware_concurrency();
  if (hw != 0 && participants > hw) participants = hw;
  job.chunk =
      std::max(min_grain, (n + 4 * participants - 1) / (4 * participants));
  job.generation = ++generation_counter;
  job.fn = &fn;
  job.next.store(begin, std::memory_order_relaxed);
  job.remaining.store(n, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
  }
  work_ready_.notify_all();

  if (!job.Participate()) {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] { return job.done; });
  }

  // Close the job to new entrants, then wait out any worker still inside
  // Participate() (its remaining work is at most one exhausted-cursor check).
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  while (job.active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  return static_cast<double>(job.cpu_micros.load(std::memory_order_relaxed)) /
         1000.0;
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("EMBELLISH_THREADS");
        env != nullptr && *env != '\0') {
      char* endp = nullptr;
      const unsigned long parsed = std::strtoul(env, &endp, 10);
      if (endp != nullptr && *endp == '\0' && parsed > 0) {
        threads = static_cast<size_t>(parsed);
      }
    }
    if (threads == 0) threads = 1;
    return new ThreadPool(threads);
  }();
  return pool;
}

}  // namespace embellish
