#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/stopwatch.h"

namespace embellish {

// One in-flight parallel region. Participants claim contiguous chunks from
// `next`; the participant that completes the final index signals `done`. The
// region lives on the caller's stack, so lifetime is guarded twice: `done`
// proves every index ran, and `active` proves every worker that entered
// Participate() has left before the caller may return.
struct ThreadPool::Region {
  size_t end = 0;
  size_t chunk = 1;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> remaining{0};
  std::atomic<int> active{0};

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  std::atomic<int64_t> cpu_micros{0};

  // Heuristic only (workers poll it before committing to the region): the
  // cursor may be exhausted by the time a claim lands, which Participate()
  // handles by returning immediately.
  bool claimable() const {
    return next.load(std::memory_order_relaxed) < end;
  }

  // Drains chunks until the index space is exhausted. Returns whether this
  // thread completed the region's final index. After a true return (or
  // after `remaining` reaches zero) the region may be torn down by the
  // caller, so all bookkeeping for a chunk happens before that chunk's
  // decrement.
  bool Participate() {
    while (true) {
      const size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) return false;
      const size_t stop = std::min(end, start + chunk);
      CpuStopwatch cpu;
      (*fn)(start, stop);
      cpu_micros.fetch_add(cpu.ElapsedMicros(), std::memory_order_relaxed);
      const size_t len = stop - start;
      if (remaining.fetch_sub(len, std::memory_order_acq_rel) == len) {
        std::lock_guard<std::mutex> lock(done_mu);
        done = true;
        done_cv.notify_all();
        return true;
      }
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  // A worker switches from the timed-rescan regime to an indefinite "deep
  // park" only after this many consecutive rescan timeouts finding nothing
  // claimable (~160 ms without stealable work). The hysteresis is what
  // reconciles three constraints: an idle pool must not poll forever (the
  // process-wide Default() pool lives for the process), an active stream
  // of short regions on a one-core box must not pay a wake-up per region
  // (the eager clamp deliberately wakes nobody there), and a region must
  // never be stranded (while anyone is deep-parked, registration wakes one
  // worker past the clamp, which restores the timed regime).
  constexpr size_t kDeepParkAfterTimeouts = 16;
  std::unique_lock<std::mutex> lock(mu_);
  // Rotating scan start: workers spread across concurrent regions instead
  // of piling onto regions_[0], which is what keeps one long region from
  // starving the others (the fairness the stress tests assert).
  size_t rr = worker_index;
  size_t barren_timeouts = 0;
  while (true) {
    Region* region = nullptr;
    const size_t count = regions_.size();
    for (size_t i = 0; i < count; ++i) {
      Region* r = regions_[(rr + i) % count];
      if (r->claimable()) {
        region = r;
        rr = (rr + i + 1) % count;
        break;
      }
    }
    if (region == nullptr) {
      // Reaching here means the scan found nothing claimable — a stable
      // condition until a new registration (an exhausted cursor never
      // becomes claimable again), which is what makes deep-parking on it
      // safe: registrations wake a deep-parked worker via the clamp
      // override. Gating on "nothing claimable" rather than "no regions"
      // keeps a long-running region's idle co-workers from timed-rescan
      // churn for its whole duration.
      if (shutdown_) return;
      ++idle_workers_;
      if (barren_timeouts >= kDeepParkAfterTimeouts) {
        ++deep_parked_;
        work_ready_.wait(lock);
        --deep_parked_;
        barren_timeouts = 0;
      } else {
        // Timed, not indefinite: the periodic rescan is what guarantees a
        // parked worker still discovers claimable chunks on a machine
        // whose eager clamp is zero — liveness for chunks that block on a
        // sibling's side effect costs ~10 ms instead of a per-region
        // context switch.
        const auto status =
            work_ready_.wait_for(lock, std::chrono::milliseconds(10));
        if (status == std::cv_status::timeout) {
          ++barren_timeouts;
        } else {
          barren_timeouts = 0;  // an explicit notify signals new work
        }
      }
      --idle_workers_;
      continue;  // rescan; spurious and timeout wakes rescan too
    }
    barren_timeouts = 0;
    // Committed under mu_: once the caller removes the region from
    // regions_ under mu_, no further worker can enter, and `active` covers
    // those that did.
    region->active.fetch_add(1, std::memory_order_relaxed);
    // Chain the wake-up: two racing registrations can aim their notifies at
    // the same sleeper, so a committing worker recruits one more whenever
    // claimable work remains and someone is still parked — wake-ups then
    // propagate until the sleepers or the chunks run out.
    if (idle_workers_ > 0) {
      for (Region* r : regions_) {
        if (r->claimable()) {
          work_ready_.notify_one();
          break;
        }
      }
    }
    lock.unlock();
    region->Participate();
    region->active.fetch_sub(1, std::memory_order_release);
    lock.lock();
  }
}

double ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                               const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return 0.0;
  if (min_grain == 0) min_grain = 1;
  const size_t n = end - begin;

  if (workers_.empty() || n <= min_grain) {
    CpuStopwatch cpu;
    fn(begin, end);
    return cpu.ElapsedMillis();
  }

  Region region;
  region.end = end;
  // ~4 chunks per participant balances tail latency against chunk overhead
  // while keeping each chunk a contiguous, cache-friendly index range. When
  // the pool is wider than the machine (oversubscribed), more chunks only
  // buy context switches, so chunking follows the hardware width instead.
  size_t participants = workers_.size() + 1;
  const size_t hw = std::thread::hardware_concurrency();
  if (hw != 0 && participants > hw) participants = hw;
  region.chunk =
      std::max(min_grain, (n + 4 * participants - 1) / (4 * participants));
  region.fn = &fn;
  region.next.store(begin, std::memory_order_relaxed);
  region.remaining.store(n, std::memory_order_relaxed);

  // Wake only workers that can actually help: one per chunk beyond the one
  // the caller claims itself, never more than are parked, and never more
  // than the hardware minus the caller's own core. On a one-core box that
  // is ZERO eager wake-ups — parallel workers there only buy context
  // switches (the PR 3 pooled-mode collapse), and the caller drains its
  // own region at serial speed; parked workers still discover the region
  // through their periodic rescan (see WorkerLoop), which is the liveness
  // path for chunks that genuinely block on a sibling. Under-waking is
  // safe everywhere: a woken worker that commits to a region chains one
  // further wake-up while claimable work and sleepers remain, and busy
  // workers need no wake-up at all — they rescan the region list whenever
  // their current region's cursor is exhausted (that rescan IS the
  // cross-region steal).
  const size_t chunks = (n + region.chunk - 1) / region.chunk;
  const size_t hw_spare = hw == 0 ? workers_.size() : hw - 1;
  size_t wake = std::min(chunks - 1, hw_spare);
  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.push_back(&region);
    // A deep-parked worker (see WorkerLoop) is only reachable by notify,
    // so its presence overrides the hardware clamp: one wake restores the
    // timed-rescan regime for everything that follows. Absent deep parks,
    // an under-woken region is covered by the parked workers' own rescan
    // timers and by busy workers finishing their chunks.
    if (wake == 0 && deep_parked_ > 0) wake = 1;
    wake = std::min(wake, idle_workers_);
  }
  for (size_t i = 0; i < wake; ++i) work_ready_.notify_one();

  if (!region.Participate()) {
    std::unique_lock<std::mutex> lock(region.done_mu);
    region.done_cv.wait(lock, [&] { return region.done; });
  }

  // Close the region to new entrants, then wait out any worker still inside
  // Participate() (its remaining work is at most one exhausted-cursor
  // check).
  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.erase(std::find(regions_.begin(), regions_.end(), &region));
  }
  while (region.active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  return static_cast<double>(
             region.cpu_micros.load(std::memory_order_relaxed)) /
         1000.0;
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("EMBELLISH_THREADS");
        env != nullptr && *env != '\0') {
      char* endp = nullptr;
      const unsigned long parsed = std::strtoul(env, &endp, 10);
      if (endp != nullptr && *endp == '\0' && parsed > 0) {
        threads = static_cast<size_t>(parsed);
      }
    }
    if (threads == 0) threads = 1;
    return new ThreadPool(threads);
  }();
  return pool;
}

}  // namespace embellish
