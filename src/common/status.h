// Status / Result error model, in the style of RocksDB's rocksdb::Status.
//
// Fallible operations in the embellish library never throw across public API
// boundaries; they return a Status (or Result<T> when a value is produced).
// Use the EMB_RETURN_NOT_OK / EMB_ASSIGN_OR_RETURN macros to propagate.

#ifndef EMBELLISH_COMMON_STATUS_H_
#define EMBELLISH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace embellish {

/// \brief Canonical error codes for the embellish library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kInternal = 7,
  kCryptoError = 8,
  kIoError = 9,
  kUnavailable = 10,
  kBusy = 11,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (message is shared via std::string's
/// value semantics; error paths are not hot paths in this library).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCryptoError() const { return code_ == StatusCode::kCryptoError; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Result of a fallible operation that produces a T on success.
///
/// Implicitly constructible from both T and Status so producers can
/// `return value;` or `return Status::X(...)`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` when this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace embellish

/// \brief Propagate a non-OK Status to the caller.
#define EMB_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::embellish::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// \brief Evaluate a Result<T> expression; bind value or propagate error.
#define EMB_ASSIGN_OR_RETURN(lhs, expr)        \
  EMB_ASSIGN_OR_RETURN_IMPL(                   \
      EMB_STATUS_CONCAT(_emb_result_, __LINE__), lhs, expr)

#define EMB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define EMB_STATUS_CONCAT_INNER(a, b) a##b
#define EMB_STATUS_CONCAT(a, b) EMB_STATUS_CONCAT_INNER(a, b)

#endif  // EMBELLISH_COMMON_STATUS_H_
