#include "index/builder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/answer_path.h"

namespace embellish::index {

Status IndexBuildOptions::Validate() const {
  if (impact_bits < 2 || impact_bits > 8) {
    return Status::InvalidArgument(
        "impact_bits out of [2, 8] (postings serialize impacts in one byte)");
  }
  if (scoring == ScoringModel::kOkapiBM25) {
    if (bm25.k1 <= 0.0) {
      return Status::InvalidArgument("BM25 k1 must be positive");
    }
    if (bm25.b < 0.0 || bm25.b > 1.0) {
      return Status::InvalidArgument("BM25 b out of [0, 1]");
    }
  }
  return Status::OK();
}

Result<BuildOutput> BuildIndex(const corpus::Corpus& corpus,
                               const IndexBuildOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  common::NoteHeavyBuild();
  const size_t num_docs = corpus.document_count();
  if (num_docs == 0) {
    return Status::InvalidArgument("corpus is empty");
  }

  // Pass 1: per-document term frequencies, then the model's real-valued
  // impacts. (map per doc is fine: documents are a few hundred tokens.)
  double max_impact = 0.0;

  struct RealPosting {
    corpus::DocId doc;
    double impact;
  };
  std::unordered_map<wordnet::TermId, std::vector<RealPosting>> real_lists;

  const double avg_doc_len =
      static_cast<double>(corpus.TotalTokens()) /
      static_cast<double>(num_docs);

  for (const corpus::Document& doc : corpus.documents()) {
    std::map<wordnet::TermId, uint32_t> tf;
    for (wordnet::TermId t : doc.tokens) ++tf[t];
    if (tf.empty()) continue;

    double w_d = 1.0;
    if (options.scoring == ScoringModel::kCosine) {
      double norm_sq = 0.0;
      for (const auto& [term, f_dt] : tf) {
        double w = DocTermWeight(f_dt);
        norm_sq += w * w;
      }
      w_d = std::sqrt(norm_sq);
    }

    for (const auto& [term, f_dt] : tf) {
      double p_dt;
      if (options.scoring == ScoringModel::kCosine) {
        p_dt = DocTermWeight(f_dt) *
               TermWeight(num_docs, corpus.DocumentFrequency(term)) / w_d;
      } else {
        p_dt = Bm25Impact(num_docs, corpus.DocumentFrequency(term), f_dt,
                          static_cast<double>(doc.tokens.size()),
                          avg_doc_len, options.bm25);
      }
      real_lists[term].push_back(RealPosting{doc.id, p_dt});
      max_impact = std::max(max_impact, p_dt);
    }
  }
  if (real_lists.empty()) {
    return Status::InvalidArgument("corpus contains no indexable tokens");
  }

  // Pass 2: discretize and impact-order every list.
  EMB_ASSIGN_OR_RETURN(ImpactQuantizer quantizer,
                       ImpactQuantizer::Create(options.impact_bits, max_impact));

  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  lists.reserve(real_lists.size());
  for (auto& [term, rl] : real_lists) {
    std::vector<Posting> list;
    list.reserve(rl.size());
    for (const RealPosting& rp : rl) {
      list.push_back(Posting{rp.doc, quantizer.Quantize(rp.impact)});
    }
    std::sort(list.begin(), list.end(), PostingOrder);
    lists.emplace(term, std::move(list));
  }

  return BuildOutput{
      InvertedIndex(num_docs, std::move(lists), options.impact_bits),
      quantizer, max_impact};
}

uint32_t FrozenCorpusStats::DocumentFrequency(wordnet::TermId term) const {
  auto it = doc_frequency.find(term);
  // Unseen at capture time: clamp to 1 so ln(1 + N/f_t) stays finite. The
  // term was absent from the frozen collection, so "rarest possible" is the
  // faithful reading of the frozen statistics.
  return it == doc_frequency.end() ? 1u : std::max(1u, it->second);
}

FrozenCorpusStats CaptureCorpusStats(const corpus::Corpus& corpus) {
  FrozenCorpusStats stats;
  stats.num_docs = corpus.document_count();
  stats.avg_doc_len = stats.num_docs == 0
                          ? 0.0
                          : static_cast<double>(corpus.TotalTokens()) /
                                static_cast<double>(stats.num_docs);
  for (wordnet::TermId term : corpus.DistinctTerms()) {
    stats.doc_frequency[term] = corpus.DocumentFrequency(term);
  }
  return stats;
}

Result<std::unordered_map<wordnet::TermId, std::vector<Posting>>>
BuildDeltaLists(const std::vector<corpus::Document>& docs,
                const FrozenCorpusStats& stats,
                const ImpactQuantizer& quantizer,
                const IndexBuildOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  if (stats.num_docs == 0) {
    return Status::FailedPrecondition("frozen statistics are empty");
  }
  common::NoteHeavyBuild();

  // Same two passes as BuildIndex, but N / f_t / avg_doc_len come from the
  // frozen snapshot and the quantizer is the frozen one (impacts above the
  // frozen maximum saturate at max_level — acceptable drift until the next
  // full rebuild, and deterministic either way).
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  for (const corpus::Document& doc : docs) {
    std::map<wordnet::TermId, uint32_t> tf;
    for (wordnet::TermId t : doc.tokens) ++tf[t];
    if (tf.empty()) continue;

    double w_d = 1.0;
    if (options.scoring == ScoringModel::kCosine) {
      double norm_sq = 0.0;
      for (const auto& [term, f_dt] : tf) {
        double w = DocTermWeight(f_dt);
        norm_sq += w * w;
      }
      w_d = std::sqrt(norm_sq);
    }

    for (const auto& [term, f_dt] : tf) {
      double p_dt;
      if (options.scoring == ScoringModel::kCosine) {
        p_dt = DocTermWeight(f_dt) *
               TermWeight(stats.num_docs, stats.DocumentFrequency(term)) / w_d;
      } else {
        p_dt = Bm25Impact(stats.num_docs, stats.DocumentFrequency(term), f_dt,
                          static_cast<double>(doc.tokens.size()),
                          stats.avg_doc_len, options.bm25);
      }
      lists[term].push_back(Posting{doc.id, quantizer.Quantize(p_dt)});
    }
  }
  for (auto& [term, list] : lists) {
    std::sort(list.begin(), list.end(), PostingOrder);
  }
  return lists;
}

InvertedIndex MergeDeltaLists(
    const InvertedIndex& base,
    const std::unordered_map<wordnet::TermId, std::vector<Posting>>& delta,
    size_t new_num_docs) {
  common::NoteHeavyBuild();
  std::unordered_map<wordnet::TermId, std::vector<Posting>> merged;
  merged.reserve(base.term_count() + delta.size());
  for (wordnet::TermId term : base.IndexedTerms()) {
    const std::vector<Posting>& list = *base.postings(term);
    auto dit = delta.find(term);
    if (dit == delta.end()) {
      merged.emplace(term, list);
      continue;
    }
    std::vector<Posting> out;
    out.reserve(list.size() + dit->second.size());
    std::merge(list.begin(), list.end(), dit->second.begin(),
               dit->second.end(), std::back_inserter(out), PostingOrder);
    merged.emplace(term, std::move(out));
  }
  for (const auto& [term, list] : delta) {
    if (!merged.count(term)) merged.emplace(term, list);
  }
  return InvertedIndex(new_num_docs, std::move(merged), base.impact_bits());
}

}  // namespace embellish::index
