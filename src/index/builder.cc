#include "index/builder.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace embellish::index {

Status IndexBuildOptions::Validate() const {
  if (impact_bits < 2 || impact_bits > 8) {
    return Status::InvalidArgument(
        "impact_bits out of [2, 8] (postings serialize impacts in one byte)");
  }
  if (scoring == ScoringModel::kOkapiBM25) {
    if (bm25.k1 <= 0.0) {
      return Status::InvalidArgument("BM25 k1 must be positive");
    }
    if (bm25.b < 0.0 || bm25.b > 1.0) {
      return Status::InvalidArgument("BM25 b out of [0, 1]");
    }
  }
  return Status::OK();
}

Result<BuildOutput> BuildIndex(const corpus::Corpus& corpus,
                               const IndexBuildOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  const size_t num_docs = corpus.document_count();
  if (num_docs == 0) {
    return Status::InvalidArgument("corpus is empty");
  }

  // Pass 1: per-document term frequencies, then the model's real-valued
  // impacts. (map per doc is fine: documents are a few hundred tokens.)
  double max_impact = 0.0;

  struct RealPosting {
    corpus::DocId doc;
    double impact;
  };
  std::unordered_map<wordnet::TermId, std::vector<RealPosting>> real_lists;

  const double avg_doc_len =
      static_cast<double>(corpus.TotalTokens()) /
      static_cast<double>(num_docs);

  for (const corpus::Document& doc : corpus.documents()) {
    std::map<wordnet::TermId, uint32_t> tf;
    for (wordnet::TermId t : doc.tokens) ++tf[t];
    if (tf.empty()) continue;

    double w_d = 1.0;
    if (options.scoring == ScoringModel::kCosine) {
      double norm_sq = 0.0;
      for (const auto& [term, f_dt] : tf) {
        double w = DocTermWeight(f_dt);
        norm_sq += w * w;
      }
      w_d = std::sqrt(norm_sq);
    }

    for (const auto& [term, f_dt] : tf) {
      double p_dt;
      if (options.scoring == ScoringModel::kCosine) {
        p_dt = DocTermWeight(f_dt) *
               TermWeight(num_docs, corpus.DocumentFrequency(term)) / w_d;
      } else {
        p_dt = Bm25Impact(num_docs, corpus.DocumentFrequency(term), f_dt,
                          static_cast<double>(doc.tokens.size()),
                          avg_doc_len, options.bm25);
      }
      real_lists[term].push_back(RealPosting{doc.id, p_dt});
      max_impact = std::max(max_impact, p_dt);
    }
  }
  if (real_lists.empty()) {
    return Status::InvalidArgument("corpus contains no indexable tokens");
  }

  // Pass 2: discretize and impact-order every list.
  EMB_ASSIGN_OR_RETURN(ImpactQuantizer quantizer,
                       ImpactQuantizer::Create(options.impact_bits, max_impact));

  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists;
  lists.reserve(real_lists.size());
  for (auto& [term, rl] : real_lists) {
    std::vector<Posting> list;
    list.reserve(rl.size());
    for (const RealPosting& rp : rl) {
      list.push_back(Posting{rp.doc, quantizer.Quantize(rp.impact)});
    }
    std::sort(list.begin(), list.end(), PostingOrder);
    lists.emplace(term, std::move(list));
  }

  return BuildOutput{
      InvertedIndex(num_docs, std::move(lists), options.impact_bits),
      quantizer, max_impact};
}

}  // namespace embellish::index
