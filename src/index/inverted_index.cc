#include "index/inverted_index.h"

#include <algorithm>

namespace embellish::index {

InvertedIndex::InvertedIndex(
    size_t num_docs,
    std::unordered_map<wordnet::TermId, std::vector<Posting>> lists,
    int impact_bits)
    : num_docs_(num_docs), lists_(std::move(lists)), impact_bits_(impact_bits) {}

const std::vector<Posting>* InvertedIndex::postings(
    wordnet::TermId term) const {
  auto it = lists_.find(term);
  return it == lists_.end() ? nullptr : &it->second;
}

size_t InvertedIndex::ListLength(wordnet::TermId term) const {
  const std::vector<Posting>* list = postings(term);
  return list == nullptr ? 0 : list->size();
}

std::vector<uint8_t> InvertedIndex::SerializeList(wordnet::TermId term) const {
  const std::vector<Posting>* list = postings(term);
  std::vector<uint8_t> out;
  if (list == nullptr) return out;
  out.reserve(list->size() * kPostingWireBytes);
  for (const Posting& p : *list) {
    out.push_back(static_cast<uint8_t>(p.doc >> 24));
    out.push_back(static_cast<uint8_t>(p.doc >> 16));
    out.push_back(static_cast<uint8_t>(p.doc >> 8));
    out.push_back(static_cast<uint8_t>(p.doc));
    out.push_back(static_cast<uint8_t>(p.impact));
  }
  return out;
}

Result<std::vector<Posting>> InvertedIndex::DeserializeList(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() % kPostingWireBytes != 0) {
    return Status::Corruption("list byte length not a multiple of 5");
  }
  std::vector<Posting> out;
  out.reserve(bytes.size() / kPostingWireBytes);
  for (size_t i = 0; i < bytes.size(); i += kPostingWireBytes) {
    Posting p;
    p.doc = (static_cast<uint32_t>(bytes[i]) << 24) |
            (static_cast<uint32_t>(bytes[i + 1]) << 16) |
            (static_cast<uint32_t>(bytes[i + 2]) << 8) |
            static_cast<uint32_t>(bytes[i + 3]);
    p.impact = bytes[i + 4];
    out.push_back(p);
  }
  return out;
}

std::vector<wordnet::TermId> InvertedIndex::IndexedTerms() const {
  std::vector<wordnet::TermId> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

}  // namespace embellish::index
