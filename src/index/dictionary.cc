#include "index/dictionary.h"

#include <algorithm>

namespace embellish::index {

SearchDictionary SearchDictionary::Build(
    const wordnet::WordNetDatabase& lexicon, const InvertedIndex& index) {
  SearchDictionary dict;
  for (wordnet::TermId term : index.IndexedTerms()) {
    if (term < lexicon.term_count()) {
      dict.terms_.push_back(term);
      dict.membership_.insert(term);
    }
  }
  std::sort(dict.terms_.begin(), dict.terms_.end());
  return dict;
}

SearchDictionary SearchDictionary::AllLexiconTerms(
    const wordnet::WordNetDatabase& lexicon) {
  SearchDictionary dict;
  dict.terms_.reserve(lexicon.term_count());
  for (wordnet::TermId t = 0; t < lexicon.term_count(); ++t) {
    dict.terms_.push_back(t);
    dict.membership_.insert(t);
  }
  return dict;
}

}  // namespace embellish::index
