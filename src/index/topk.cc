#include "index/topk.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>

namespace embellish::index {

namespace {

// Minimum pops between termination checks. A check costs a selection over
// the accumulator table (O(candidates)), so the gap to the next check grows
// with the table: the aggregate check cost stays linear in the postings
// popped even on flat-impact workloads where termination never fires.
constexpr uint64_t kMinTerminationCheckInterval = 16;

// True when no document outside the current top k — including documents not
// yet seen at all — can reach the k-th best accumulated score even if every
// remaining posting went its way. `head_sum` bounds any single document's
// remaining gain: a document appears at most once per inverted list and the
// lists are impact-ordered, so it can collect at most the current head
// impact of every active cursor. Strict inequality keeps the decision
// immune to score ties at the k boundary (a tied outsider could still win
// the canonical doc-id tie-break).
bool TopKIsSettled(const std::unordered_map<corpus::DocId, uint64_t>& acc,
                   size_t k, uint64_t head_sum,
                   std::vector<uint64_t>* scratch) {
  if (acc.size() < k) return false;
  scratch->clear();
  scratch->reserve(acc.size());
  for (const auto& [doc, score] : acc) scratch->push_back(score);
  std::nth_element(scratch->begin(), scratch->begin() + (k - 1),
                   scratch->end(), std::greater<uint64_t>());
  const uint64_t kth_best = (*scratch)[k - 1];
  uint64_t best_outside = 0;  // also covers documents never seen (score 0)
  if (scratch->size() > k) {
    best_outside = *std::max_element(scratch->begin() + k, scratch->end());
  }
  return kth_best > best_outside + head_sum;
}

}  // namespace

void SortByScore(std::vector<ScoredDoc>* docs) {
  std::sort(docs->begin(), docs->end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
}

std::vector<ScoredDoc> EvaluateFull(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    EvalStats* stats) {
  std::unordered_map<corpus::DocId, uint64_t> acc;
  uint64_t scanned = 0;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list == nullptr) continue;
    for (const Posting& p : *list) acc[p.doc] += p.impact;
    scanned += list->size();
  }
  if (stats != nullptr) stats->postings_scanned += scanned;
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  return out;
}

std::vector<ScoredDoc> EvaluateTopK(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    size_t k, EvalStats* stats) {
  if (k == 0) return {};

  // Cursor per query-term list; a max-heap keyed by the cursor's current
  // impact pops the globally highest remaining entry (Figure 10 step 2a).
  struct Cursor {
    const std::vector<Posting>* list;
    size_t pos;
  };
  std::vector<Cursor> cursors;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list != nullptr && !list->empty()) cursors.push_back(Cursor{list, 0});
  }

  auto cmp = [&](size_t a, size_t b) {
    return (*cursors[a].list)[cursors[a].pos].impact <
           (*cursors[b].list)[cursors[b].pos].impact;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  uint64_t head_sum = 0;  // sum of the active cursors' head impacts
  for (size_t i = 0; i < cursors.size(); ++i) {
    heap.push(i);
    head_sum += (*cursors[i].list)[0].impact;
  }

  std::unordered_map<corpus::DocId, uint64_t> acc;
  std::vector<uint64_t> scratch;
  uint64_t scanned = 0;
  uint64_t pops_since_check = 0;
  uint64_t check_interval = kMinTerminationCheckInterval;
  bool early = false;
  while (!heap.empty()) {
    size_t ci = heap.top();
    heap.pop();
    Cursor& cur = cursors[ci];
    const Posting& p = (*cur.list)[cur.pos];
    ++scanned;
    acc[p.doc] += p.impact;  // steps 2b-2c
    head_sum -= p.impact;
    if (++cur.pos < cur.list->size()) {  // step 2d
      head_sum += (*cur.list)[cur.pos].impact;
      heap.push(ci);
    }
    // Step 2e, the termination test this implementation used to skip: once
    // the k-th best accumulated score is out of reach for everyone else,
    // the remaining postings cannot change the top-k set.
    if (!heap.empty() && ++pops_since_check >= check_interval) {
      pops_since_check = 0;
      check_interval = std::max<uint64_t>(kMinTerminationCheckInterval,
                                          acc.size() / 4);
      if (TopKIsSettled(acc, k, head_sum, &scratch)) {
        early = true;
        break;
      }
    }
  }
  if (stats != nullptr) {
    stats->postings_scanned += scanned;
    stats->early_terminated |= early;  // accumulate, like postings_scanned
  }

  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  if (out.size() > k) out.resize(k);  // step 3
  return out;
}

}  // namespace embellish::index
