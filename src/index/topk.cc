#include "index/topk.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace embellish::index {

namespace {

// Threshold tracker for the Figure 10 termination test. The old
// implementation recomputed the k-th best and best-outside scores with an
// O(candidates) selection over the whole accumulator table, which forced the
// check onto a widening interval (every max(16, candidates/4) pops) to keep
// the aggregate cost linear. This tracker maintains both quantities
// incrementally in amortized O(log k) per accumulation, so the test runs
// after every pop and fires the moment the top-k settles.
//
// Structure: a lazy min-heap over (score, doc) snapshots of the current
// top-k members. Scores only grow, so every accumulation pushes a fresh
// snapshot and older snapshots of the same doc go stale; stale entries are
// discarded when they surface at the top (for one doc the snapshots pop in
// increasing order, so the current one always outlives the stale ones).
// `best_outside` is a running maximum over every score observed leaving —
// or growing outside — the top k. It can only ever be stale-HIGH (a doc
// whose score was recorded may have re-entered the top k since), which
// delays termination but never mis-fires it; documents never seen at all
// sit at score 0 and are covered by the initial value. The termination
// inequality stays strict, so score ties at the k boundary (where a tied
// outsider could still win the canonical doc-id tie-break) keep scanning.
class TopKThreshold {
 public:
  explicit TopKThreshold(size_t k) : k_(k) {}

  // Records that `doc`'s accumulated score grew to `score` (its current
  // value in `acc` — passed in so the hot loop avoids a second hash
  // lookup). Must be called for every accumulation that changes a score.
  void Update(corpus::DocId doc, uint64_t score,
              const std::unordered_map<corpus::DocId, uint64_t>& acc) {
    // For an existing member the push refreshes its snapshot (the old one
    // goes stale); a non-member provisionally joins and the eviction loop
    // below decides whether it stays.
    in_top_.insert(doc);
    heap_.push({score, doc});
    // Evict smallest current members until exactly k remain.
    while (in_top_.size() > k_) {
      DropStale(acc);
      const auto [s, d] = heap_.top();
      heap_.pop();
      in_top_.erase(d);
      if (s > best_outside_) best_outside_ = s;
    }
    // Compact: stale snapshots buried under the current minimum are never
    // popped by the lazy path, so without this the heap would grow with
    // postings scanned (not with k) on flat-impact workloads where
    // termination never fires. Rebuilding from the k current members
    // amortizes to O(1) per update and pins memory at O(k).
    if (heap_.size() > 2 * in_top_.size() + 64) {
      std::vector<Snapshot> current;
      current.reserve(in_top_.size());
      for (corpus::DocId d : in_top_) current.push_back({acc.at(d), d});
      heap_ = decltype(heap_)(std::greater<Snapshot>(), std::move(current));
    }
  }

  // True when no document outside the current top k — including documents
  // never seen at all — can reach the k-th best accumulated score even if
  // every remaining posting went its way. `head_sum` bounds any single
  // document's remaining gain: a document appears at most once per inverted
  // list and the lists are impact-ordered, so it can collect at most the
  // current head impact of every active cursor.
  bool Settled(const std::unordered_map<corpus::DocId, uint64_t>& acc,
               uint64_t head_sum) {
    if (in_top_.size() < k_) return false;
    DropStale(acc);
    const uint64_t kth_best = heap_.top().first;
    return kth_best > best_outside_ + head_sum;
  }

 private:
  using Snapshot = std::pair<uint64_t, corpus::DocId>;

  // Pops snapshots that no longer describe a current top-k member. A
  // snapshot is current iff its doc is still a member and the score matches
  // the doc's accumulator (scores only grow, so a mismatch means a newer
  // snapshot exists further down the heap). Amortized O(1): every push is
  // popped at most once.
  void DropStale(const std::unordered_map<corpus::DocId, uint64_t>& acc) {
    while (!heap_.empty()) {
      const auto& [s, d] = heap_.top();
      if (in_top_.count(d) != 0 && acc.at(d) == s) return;
      heap_.pop();
    }
  }

  const size_t k_;
  std::priority_queue<Snapshot, std::vector<Snapshot>,
                      std::greater<Snapshot>>
      heap_;  // min-heap; holds current + stale snapshots of top-k members
  std::unordered_set<corpus::DocId> in_top_;
  uint64_t best_outside_ = 0;  // also covers documents never seen (score 0)
};

}  // namespace

void SortByScore(std::vector<ScoredDoc>* docs) {
  std::sort(docs->begin(), docs->end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
}

std::vector<ScoredDoc> EvaluateFull(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    EvalStats* stats) {
  std::unordered_map<corpus::DocId, uint64_t> acc;
  uint64_t scanned = 0;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list == nullptr) continue;
    for (const Posting& p : *list) acc[p.doc] += p.impact;
    scanned += list->size();
  }
  if (stats != nullptr) stats->postings_scanned += scanned;
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  return out;
}

std::vector<ScoredDoc> EvaluateTopK(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    size_t k, EvalStats* stats) {
  if (k == 0) return {};

  // Cursor per query-term list; a max-heap keyed by the cursor's current
  // impact pops the globally highest remaining entry (Figure 10 step 2a).
  struct Cursor {
    const std::vector<Posting>* list;
    size_t pos;
  };
  std::vector<Cursor> cursors;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list != nullptr && !list->empty()) cursors.push_back(Cursor{list, 0});
  }

  auto cmp = [&](size_t a, size_t b) {
    return (*cursors[a].list)[cursors[a].pos].impact <
           (*cursors[b].list)[cursors[b].pos].impact;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  uint64_t head_sum = 0;  // sum of the active cursors' head impacts
  for (size_t i = 0; i < cursors.size(); ++i) {
    heap.push(i);
    head_sum += (*cursors[i].list)[0].impact;
  }

  std::unordered_map<corpus::DocId, uint64_t> acc;
  TopKThreshold threshold(k);
  uint64_t scanned = 0;
  bool early = false;
  while (!heap.empty()) {
    size_t ci = heap.top();
    heap.pop();
    Cursor& cur = cursors[ci];
    const Posting& p = (*cur.list)[cur.pos];
    ++scanned;
    head_sum -= p.impact;
    // Steps 2b-2c. A zero-impact posting still creates the accumulator
    // entry: EvaluateFull counts such documents as candidates, and the
    // top-k contract is "exactly the full evaluation's top-k set". The
    // duplicate same-score snapshot this pushes is harmless — eviction
    // erases membership, which stales every remaining copy.
    const uint64_t score = (acc[p.doc] += p.impact);
    threshold.Update(p.doc, score, acc);
    if (++cur.pos < cur.list->size()) {  // step 2d
      head_sum += (*cur.list)[cur.pos].impact;
      heap.push(ci);
    }
    // Step 2e every pop: with the threshold tracked incrementally the test
    // costs O(log k), so it no longer waits out a check interval — the
    // evaluation stops at the first pop where the top-k is settled.
    if (!heap.empty() && threshold.Settled(acc, head_sum)) {
      early = true;
      break;
    }
  }
  if (stats != nullptr) {
    stats->postings_scanned += scanned;
    stats->early_terminated |= early;  // accumulate, like postings_scanned
  }

  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  if (out.size() > k) out.resize(k);  // step 3
  return out;
}

}  // namespace embellish::index
