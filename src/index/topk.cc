#include "index/topk.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace embellish::index {

void SortByScore(std::vector<ScoredDoc>* docs) {
  std::sort(docs->begin(), docs->end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
}

std::vector<ScoredDoc> EvaluateFull(
    const InvertedIndex& index, const std::vector<wordnet::TermId>& query) {
  std::unordered_map<corpus::DocId, uint64_t> acc;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list == nullptr) continue;
    for (const Posting& p : *list) acc[p.doc] += p.impact;
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  return out;
}

std::vector<ScoredDoc> EvaluateTopK(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    size_t k) {
  // Cursor per query-term list; a max-heap keyed by the cursor's current
  // impact pops the globally highest remaining entry (Figure 10 step 2a).
  struct Cursor {
    const std::vector<Posting>* list;
    size_t pos;
  };
  std::vector<Cursor> cursors;
  for (wordnet::TermId term : query) {
    const std::vector<Posting>* list = index.postings(term);
    if (list != nullptr && !list->empty()) cursors.push_back(Cursor{list, 0});
  }

  auto cmp = [&](size_t a, size_t b) {
    return (*cursors[a].list)[cursors[a].pos].impact <
           (*cursors[b].list)[cursors[b].pos].impact;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < cursors.size(); ++i) heap.push(i);

  std::unordered_map<corpus::DocId, uint64_t> acc;
  while (!heap.empty()) {
    size_t ci = heap.top();
    heap.pop();
    Cursor& cur = cursors[ci];
    const Posting& p = (*cur.list)[cur.pos];
    acc[p.doc] += p.impact;  // steps 2b-2c
    if (++cur.pos < cur.list->size()) heap.push(ci);  // step 2d
  }

  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  SortByScore(&out);
  if (out.size() > k) out.resize(k);  // step 3
  return out;
}

}  // namespace embellish::index
