// Plaintext query evaluation over the impact-ordered index.
//
// EvaluateTopK implements the Figure 10 algorithm (repeatedly pop the
// highest remaining impact across the query terms' lists, accumulate into
// per-document accumulators). EvaluateFull performs complete accumulation —
// the same quantity Algorithm 4 computes under encryption — and is the
// reference the Claim-1 equivalence tests compare the private pipeline to.

#ifndef EMBELLISH_INDEX_TOPK_H_
#define EMBELLISH_INDEX_TOPK_H_

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace embellish::index {

/// \brief A document with its accumulated (discretized) relevance score.
struct ScoredDoc {
  corpus::DocId doc;
  uint64_t score;

  bool operator==(const ScoredDoc&) const = default;
};

/// \brief Canonical result ordering: score desc, then doc id asc.
void SortByScore(std::vector<ScoredDoc>* docs);

/// \brief Full accumulation over the query terms' lists; returns every
///        candidate document, canonically ordered.
std::vector<ScoredDoc> EvaluateFull(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query);

/// \brief Figure 10: impact-ordered top-k evaluation. Returns up to `k`
///        documents, canonically ordered.
std::vector<ScoredDoc> EvaluateTopK(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    size_t k);

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_TOPK_H_
