// Plaintext query evaluation over the impact-ordered index.
//
// EvaluateTopK implements the Figure 10 algorithm (repeatedly pop the
// highest remaining impact across the query terms' lists, accumulate into
// per-document accumulators, stop once the top-k can no longer change).
// EvaluateFull performs complete accumulation — the same quantity
// Algorithm 4 computes under encryption — and is the reference the Claim-1
// equivalence tests compare the private pipeline to.

#ifndef EMBELLISH_INDEX_TOPK_H_
#define EMBELLISH_INDEX_TOPK_H_

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace embellish::index {

/// \brief A document with its accumulated (discretized) relevance score.
struct ScoredDoc {
  corpus::DocId doc;
  uint64_t score;

  bool operator==(const ScoredDoc&) const = default;
};

/// \brief Work accounting for one evaluation (the Figure 10 regression tests
///        assert EvaluateTopK touches strictly fewer postings than
///        EvaluateFull on skewed lists).
struct EvalStats {
  uint64_t postings_scanned = 0;  ///< postings read from inverted lists
  bool early_terminated = false;  ///< top-k stopped before draining the lists

  /// Shard-trip accounting for the epoch-aware sharded evaluator
  /// (EvaluateTopKEpoch): shards actually evaluated vs. shards proven
  /// irrelevant by their impact upper bound and skipped. The skip
  /// regression test asserts identical top-k bytes with skipped > 0.
  uint64_t shards_visited = 0;
  uint64_t shards_skipped = 0;
};

/// \brief Canonical result ordering: score desc, then doc id asc.
void SortByScore(std::vector<ScoredDoc>* docs);

/// \brief Full accumulation over the query terms' lists; returns every
///        candidate document, canonically ordered.
std::vector<ScoredDoc> EvaluateFull(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    EvalStats* stats = nullptr);

/// \brief Figure 10: impact-ordered top-k evaluation with early termination.
///
/// Pops the globally highest remaining impact across the query terms' lists
/// and stops as soon as the k-th best accumulated score can no longer be
/// overtaken — even in the best case — by any document outside the current
/// top k (their accumulated scores plus an upper bound derived from the
/// remaining cursor heads). The termination quantities are tracked
/// incrementally in a threshold heap (amortized O(log k) per posting), so
/// the test runs after every pop instead of on an O(candidates) check
/// interval — the scan stops at the first settled posting.
///
/// Returns exactly the documents a full evaluation would rank in its top k.
/// When the evaluation terminated early (`stats->early_terminated`), the
/// reported scores are the accumulated lower bounds at the stopping point —
/// the termination condition guarantees the *set* is exact, strictly ahead of
/// every other candidate, but the unread postings could still have raised the
/// winners' totals. When the lists drained completely the scores (and thus
/// the ordering) equal the full evaluation's prefix exactly.
std::vector<ScoredDoc> EvaluateTopK(const InvertedIndex& index,
                                    const std::vector<wordnet::TermId>& query,
                                    size_t k, EvalStats* stats = nullptr);

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_TOPK_H_
