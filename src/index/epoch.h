// Live index epochs: refcounted snapshots + a catalog with background
// delta ingestion and resharding.
//
// The ROADMAP's oldest open item: every serving tier held raw
// `const InvertedIndex*` / `StorageLayout*` pointers with no lifetime or
// versioning story, freezing the corpus at construction. This module makes
// the *database* epoch a first-class refcounted object — the same
// immutable-snapshot-plus-atomic-swap discipline LSM engines use for
// non-blocking reads during compaction:
//
//   IndexEpoch   — an immutable bundle of (epoch number, InvertedIndex,
//                  ShardedIndex, per-shard StorageLayouts, bucket
//                  organization, per-shard impact upper bounds). Never
//                  mutated after construction; shared_ptr-held, so a batch
//                  that pinned it can finish on it long after a successor
//                  installs.
//
//   IndexCatalog — owns the current epoch. ApplyDelta(docs) scores new
//                  documents against the *frozen* collection statistics
//                  (see FrozenCorpusStats in index/builder.h) and merges
//                  per-shard posting deltas into a successor snapshot;
//                  Reshard(options) re-partitions the corpus. Both build
//                  off the answer path (background threads, inner
//                  parallelism on the shared executor) against the pinned
//                  base snapshot, then install by pointer swap under a
//                  mutex held for nanoseconds. Acquire() never waits on a
//                  build — the counted invariant in common/answer_path.h
//                  keeps that honest.
//
// Delta placement freezes the partition boundary: ShardOfDoc for kDocRange
// depends on the document count, so deltas are placed with the count at the
// last (re)shard — new documents grow the last range shard — and the next
// Reshard rebalances. kDocHash placement is count-independent and needs no
// such pinning, but uses the same code path for uniformity.
//
// The per-shard impact bounds stored in each snapshot let the plaintext
// top-k fan-out (EvaluateTopKEpoch) skip shards provably outside the top k.
// The private paths never skip — touching every shard is part of the
// scheme's access-pattern hiding.

#ifndef EMBELLISH_INDEX_EPOCH_H_
#define EMBELLISH_INDEX_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/bucket_organization.h"
#include "corpus/corpus.h"
#include "index/builder.h"
#include "index/sharding.h"
#include "storage/layout.h"

namespace embellish::index {

/// \brief One immutable, refcounted snapshot of the database. Constructed
///        by IndexCatalog; everything it exposes is frozen for its
///        lifetime, so holding the shared_ptr is the only synchronization a
///        reader needs.
class IndexEpoch {
 public:
  /// \brief Construction arguments (IndexCatalog is the expected builder).
  ///        `sharded`/`layout`/`shard_layouts` may be null (monolithic
  ///        epoch / layouts disabled). Non-owned inputs are passed as
  ///        aliasing shared_ptrs by the catalog's Freeze path.
  struct Init {
    uint64_t epoch = 1;
    ShardingOptions sharding;
    std::shared_ptr<const InvertedIndex> index;
    std::shared_ptr<const ShardedIndex> sharded;
    std::shared_ptr<const core::BucketOrganization> buckets;
    std::shared_ptr<const storage::StorageLayout> layout;
    std::shared_ptr<const std::vector<storage::StorageLayout>> shard_layouts;
    std::shared_ptr<std::atomic<int64_t>> pinned_gauge;
  };

  explicit IndexEpoch(Init init);
  ~IndexEpoch();

  IndexEpoch(const IndexEpoch&) = delete;
  IndexEpoch& operator=(const IndexEpoch&) = delete;

  /// \brief The database epoch number. Monotonic per catalog; flows into
  ///        response-cache keys so a cutover invalidates stale answers.
  uint64_t epoch() const { return epoch_; }

  const InvertedIndex& index() const { return *index_; }

  /// \brief The monolithic index as a shared_ptr (Reshard shares it into
  ///        the successor snapshot instead of copying).
  std::shared_ptr<const InvertedIndex> index_ptr() const { return index_; }

  /// \brief The sharded view, or nullptr when the epoch is monolithic
  ///        (shard_count == 1).
  const ShardedIndex* sharded() const { return sharded_.get(); }

  const core::BucketOrganization& buckets() const { return *buckets_; }

  std::shared_ptr<const core::BucketOrganization> buckets_ptr() const {
    return buckets_;
  }

  /// \brief Monolithic storage layout; nullptr when layouts are disabled.
  const storage::StorageLayout* layout() const { return layout_.get(); }

  /// \brief One layout per shard; nullptr when monolithic or disabled.
  const std::vector<storage::StorageLayout>* shard_layouts() const {
    return shard_layouts_.get();
  }

  const ShardingOptions& sharding() const { return sharding_; }

  size_t shard_count() const {
    return sharded_ ? sharded_->shard_count() : 1;
  }

  /// \brief Upper bound on any single document's accumulated score within
  ///        `shard` for `query`: the sum, over the query's term entries, of
  ///        the shard's head (maximum) impact for that term. Lists are
  ///        impact-descending, so the head impact is the precomputed
  ///        per-shard bound the tentpole stores. Zero means the shard holds
  ///        no posting for any query term.
  uint64_t ShardImpactBound(size_t shard,
                            const std::vector<wordnet::TermId>& query) const;

 private:
  uint64_t epoch_;
  ShardingOptions sharding_;
  std::shared_ptr<const InvertedIndex> index_;
  std::shared_ptr<const ShardedIndex> sharded_;
  std::shared_ptr<const core::BucketOrganization> buckets_;
  std::shared_ptr<const storage::StorageLayout> layout_;
  std::shared_ptr<const std::vector<storage::StorageLayout>> shard_layouts_;
  // Per shard: term -> head impact (the list's maximum). Built once at
  // snapshot construction (off the answer path with everything else).
  std::vector<std::unordered_map<wordnet::TermId, uint32_t>> shard_head_impact_;
  std::shared_ptr<std::atomic<int64_t>> pinned_gauge_;  // may be null
};

/// \brief Catalog construction knobs.
struct IndexCatalogOptions {
  IndexBuildOptions build;
  ShardingOptions sharding;

  /// Build StorageLayouts (monolithic + per shard) for each epoch. The
  /// serving tiers want them; index-only tests can skip the cost.
  bool build_layouts = true;
  storage::LayoutPolicy layout_policy = storage::LayoutPolicy::kBucketColocated;
  storage::DiskModelOptions disk;
};

/// \brief Counters the server tiers surface (ISSUE 8 stats).
struct IndexCatalogStats {
  uint64_t epoch_swaps = 0;          ///< successor snapshots installed
  uint64_t delta_docs_ingested = 0;  ///< documents ingested via ApplyDelta
  uint64_t reshards = 0;             ///< Reshard cutovers completed
  uint64_t reshard_micros = 0;       ///< total background reshard build time
  uint64_t delta_micros = 0;         ///< total background delta build time
  int64_t pinned_epochs = 0;         ///< snapshots currently alive (incl. current)
  uint64_t answer_path_builds = 0;   ///< common::AnswerPathBuilds() (must stay 0)
};

/// \brief Owns the current epoch; mutations build successors in the
///        background and install them by atomic swap. Thread-safe: Acquire
///        from any thread, concurrent ApplyDelta/Reshard serialize against
///        each other (never against readers).
class IndexCatalog {
 public:
  /// \brief Full build from a corpus. Retains the frozen collection
  ///        statistics and quantizer, so this catalog supports ApplyDelta.
  ///        `pool` (nullable) provides inner parallelism for background
  ///        builds and is NOT owned.
  static Result<std::unique_ptr<IndexCatalog>> Create(
      const corpus::Corpus& corpus,
      std::shared_ptr<const core::BucketOrganization> buckets,
      const IndexCatalogOptions& options, ThreadPool* pool = nullptr);

  /// \brief Single-frozen-epoch shim wrapping non-owned, caller-lifetime
  ///        objects — the compatibility path keeping the old raw-pointer
  ///        constructors alive. When options.sharding asks for more than
  ///        one shard the catalog builds (and owns) the sharded view and
  ///        per-shard layouts from `index`. `layout`, when non-null, is
  ///        reused as the monolithic layout; otherwise one is built if
  ///        options.build_layouts. No corpus statistics exist here, so
  ///        ApplyDelta and Reshard refuse with FailedPrecondition.
  static Result<std::unique_ptr<IndexCatalog>> Freeze(
      const InvertedIndex* index, const core::BucketOrganization* buckets,
      const storage::StorageLayout* layout, const IndexCatalogOptions& options,
      ThreadPool* pool = nullptr);

  /// \brief Frozen catalog whose single epoch IS `snapshot` — the tool the
  ///        bit-identity suites use to build a reference server at exactly
  ///        the epoch a racing query pinned (PIR answers are
  ///        shard-layout-dependent, so the reference must share the
  ///        snapshot's exact sharding, not merely its documents).
  static std::unique_ptr<IndexCatalog> FreezeEpoch(
      std::shared_ptr<const IndexEpoch> snapshot, ThreadPool* pool = nullptr);

  ~IndexCatalog();

  IndexCatalog(const IndexCatalog&) = delete;
  IndexCatalog& operator=(const IndexCatalog&) = delete;

  /// \brief Pins the current epoch. Never blocks on a build: the only
  ///        critical section is the pointer read. Callers hold the
  ///        shared_ptr for the duration of their batch.
  std::shared_ptr<const IndexEpoch> Acquire() const;

  /// \brief Ingests `docs` (token bags; ids are assigned sequentially past
  ///        the current epoch's count) into a successor epoch: delta lists
  ///        scored under the frozen statistics, merged per shard against
  ///        the pinned base, layouts rebuilt, snapshot installed. Blocks
  ///        the *calling* thread for the build; readers never block.
  ///        Returns the installed snapshot.
  Result<std::shared_ptr<const IndexEpoch>> ApplyDelta(
      std::vector<corpus::Document> docs);

  /// \brief Re-partitions the current corpus under `sharding` into a
  ///        successor epoch and re-freezes the partition boundary at the
  ///        current document count. Same blocking rules as ApplyDelta.
  Result<std::shared_ptr<const IndexEpoch>> Reshard(
      const ShardingOptions& sharding);

  /// \brief Background variants: the build runs on a catalog-managed
  ///        thread; failures are recorded in last_async_status(). Join via
  ///        WaitForBuilds() (the destructor does).
  void ApplyDeltaAsync(std::vector<corpus::Document> docs);
  void ReshardAsync(ShardingOptions sharding);

  /// \brief Joins every outstanding background build.
  void WaitForBuilds();

  /// \brief OK unless some async build failed; sticky until read.
  Status last_async_status();

  IndexCatalogStats stats() const;

  const IndexCatalogOptions& options() const { return options_; }

  /// \brief True for Freeze/FreezeEpoch catalogs (no frozen statistics; no
  ///        mutations).
  bool frozen() const { return frozen_; }

  ThreadPool* pool() const { return pool_; }

 private:
  IndexCatalog(IndexCatalogOptions options, ThreadPool* pool, bool frozen);

  // Builds the sharded view + layouts for `index` and assembles a snapshot.
  // `shard_fn(s)` supplies shard s's sub-index when the caller already has
  // per-shard indexes (delta merge); null means split `index` from scratch.
  Result<std::shared_ptr<const IndexEpoch>> AssembleEpoch(
      uint64_t epoch, std::shared_ptr<const InvertedIndex> index,
      const ShardingOptions& sharding,
      std::vector<InvertedIndex> prebuilt_shards, bool have_prebuilt);

  void Install(std::shared_ptr<const IndexEpoch> next);

  IndexCatalogOptions options_;
  ThreadPool* pool_;  // not owned; nullable
  const bool frozen_;

  std::shared_ptr<const core::BucketOrganization> buckets_;

  // Delta-scoring state, set by Create only: statistics and quantizer
  // frozen at full-build time (see FrozenCorpusStats).
  FrozenCorpusStats frozen_stats_;
  std::optional<ImpactQuantizer> quantizer_;

  // Document count at the last (re)shard — the frozen partition boundary
  // ShardOfDoc uses for delta placement. Guarded by build_mu_.
  size_t partition_doc_base_ = 0;

  mutable std::mutex state_mu_;  // guards current_ only (pointer swap)
  std::shared_ptr<const IndexEpoch> current_;

  std::mutex build_mu_;  // serializes ApplyDelta/Reshard builders

  std::mutex threads_mu_;  // guards builders_ and async_status_
  std::vector<std::thread> builders_;
  Status async_status_ = Status::OK();

  std::shared_ptr<std::atomic<int64_t>> pinned_gauge_;

  std::atomic<uint64_t> epoch_swaps_{0};
  std::atomic<uint64_t> delta_docs_ingested_{0};
  std::atomic<uint64_t> reshards_{0};
  std::atomic<uint64_t> reshard_micros_{0};
  std::atomic<uint64_t> delta_micros_{0};
};

/// \brief Epoch-aware plaintext top-k: evaluates shards in descending
///        impact-bound order and skips every shard whose bound proves it
///        cannot displace the current k-th result (strictly below — a tied
///        bound could still win the doc-id tiebreak). Bit-identical to
///        EvaluateTopKSharded / monolithic EvaluateFull-truncated on the
///        same snapshot; `stats` counts shards_visited / shards_skipped.
///        `max_parallel` caps concurrent shard evaluations per wave
///        (0 = pool width).
std::vector<ScoredDoc> EvaluateTopKEpoch(
    const IndexEpoch& epoch, const std::vector<wordnet::TermId>& query,
    size_t k, ThreadPool* pool = nullptr, EvalStats* stats = nullptr,
    size_t max_parallel = 0);

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_EPOCH_H_
