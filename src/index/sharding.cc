#include "index/sharding.h"

#include <algorithm>
#include <unordered_map>

#include "common/answer_path.h"

namespace embellish::index {

namespace {

// splitmix64 finalizer: cheap, deterministic, well-mixed over dense ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void ForEachShard(ThreadPool* pool, size_t shard_count,
                  const std::function<void(size_t)>& fn,
                  size_t max_parallel) {
  auto range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) fn(s);
  };
  if (pool == nullptr || shard_count <= 1 || max_parallel == 1) {
    range(0, shard_count);
    return;
  }
  // The cap rides on the grain: chunks of ceil(count/cap) shards admit at
  // most `max_parallel` concurrent participants into the region.
  size_t grain = 1;
  if (max_parallel != 0 && max_parallel < shard_count) {
    grain = (shard_count + max_parallel - 1) / max_parallel;
  }
  pool->ParallelFor(0, shard_count, grain, range);
}

Status ShardingOptions::Validate() const {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  return Status::OK();
}

size_t ShardOfDoc(corpus::DocId doc, size_t num_docs,
                  const ShardingOptions& options) {
  const size_t shards = std::max<size_t>(1, options.shard_count);
  if (shards == 1) return 0;
  if (options.partition == ShardPartition::kDocHash) {
    return static_cast<size_t>(Mix64(doc) % shards);
  }
  const size_t docs = std::max<size_t>(1, num_docs);
  const size_t per_shard = (docs + shards - 1) / shards;
  return std::min(static_cast<size_t>(doc) / per_shard, shards - 1);
}

std::vector<Posting> MergeShardPostings(
    const std::vector<std::vector<Posting>>& per_shard) {
  size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  std::vector<Posting> merged;
  merged.reserve(total);
  for (const auto& list : per_shard) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end(), PostingOrder);
  return merged;
}

ShardedIndex::ShardedIndex(ShardingOptions options, size_t num_docs,
                           std::vector<InvertedIndex> shards)
    : options_(options), num_docs_(num_docs), shards_(std::move(shards)) {}

Result<ShardedIndex> ShardedIndex::FromShards(ShardingOptions options,
                                              size_t num_docs,
                                              std::vector<InvertedIndex> shards) {
  EMB_RETURN_NOT_OK(options.Validate());
  if (shards.size() != options.shard_count) {
    return Status::InvalidArgument(
        "FromShards: shard vector does not match options.shard_count");
  }
  return ShardedIndex(options, num_docs, std::move(shards));
}

Result<ShardedIndex> ShardedIndex::Build(const InvertedIndex& index,
                                         const ShardingOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  common::NoteHeavyBuild();
  const size_t shards = options.shard_count;
  const size_t num_docs = index.document_count();

  std::vector<std::unordered_map<wordnet::TermId, std::vector<Posting>>>
      shard_lists(shards);
  for (wordnet::TermId term : index.IndexedTerms()) {
    const std::vector<Posting>* list = index.postings(term);
    for (const Posting& p : *list) {
      // A stable split: each shard's fragment keeps the monolithic
      // (impact desc, doc asc) order, so MergeShardPostings inverts it.
      shard_lists[ShardOfDoc(p.doc, num_docs, options)][term].push_back(p);
    }
  }

  std::vector<InvertedIndex> sub;
  sub.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    sub.emplace_back(num_docs, std::move(shard_lists[s]),
                     index.impact_bits());
  }
  return ShardedIndex(options, num_docs, std::move(sub));
}

std::vector<ScoredDoc> MergeShardTopK(
    const std::vector<std::vector<ScoredDoc>>& per_shard, size_t k) {
  // Cross-shard merge: any global top-k document is in its own shard's top
  // k, so merging the (at most shards*k) survivors and truncating yields
  // the exact global prefix.
  std::vector<ScoredDoc> merged;
  size_t total = 0;
  for (const auto& p : per_shard) total += p.size();
  merged.reserve(total);
  for (const auto& p : per_shard) {
    merged.insert(merged.end(), p.begin(), p.end());
  }
  SortByScore(&merged);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<ScoredDoc> EvaluateTopKSharded(
    const ShardedIndex& sharded, const std::vector<wordnet::TermId>& query,
    size_t k, ThreadPool* pool, EvalStats* stats, size_t max_parallel) {
  const size_t shards = sharded.shard_count();
  std::vector<std::vector<ScoredDoc>> partial(shards);
  std::vector<EvalStats> shard_stats(shards);

  ForEachShard(pool, shards, [&](size_t s) {
    // Full per-shard accumulation: a shard owns every posting of its
    // documents, so its scores are final and the truncated prefix is the
    // shard's exact top k.
    partial[s] = EvaluateFull(sharded.shard(s), query, &shard_stats[s]);
    if (partial[s].size() > k) partial[s].resize(k);
  }, max_parallel);

  std::vector<ScoredDoc> merged = MergeShardTopK(partial, k);

  if (stats != nullptr) {
    for (const EvalStats& s : shard_stats) {
      stats->postings_scanned += s.postings_scanned;
      stats->early_terminated |= s.early_terminated;
    }
  }
  return merged;
}

}  // namespace embellish::index
