// Document-partitioned sharding of the inverted index.
//
// The ROADMAP's scale axis after fast kernels (PR 1) and batched serving
// (PR 2): split the corpus into N disjoint document shards so one query can
// be evaluated on all shards concurrently (one thread-pool task per shard)
// and the per-shard partial results merged. Because every posting of a
// document lands in exactly one shard, plaintext scores, Algorithm 4
// ciphertext accumulators, and PIR-retrieved inverted lists all merge
// losslessly: the sharded engine is bit-identical to the monolithic one,
// which the shard equivalence tests assert.
//
// Partitioning is by document id — contiguous ranges (locality: a shard is
// a corpus segment) or a splitmix64 hash (balance under skewed id
// clustering). Both are deterministic, so shard placement is reproducible
// across server restarts.

#ifndef EMBELLISH_INDEX_SHARDING_H_
#define EMBELLISH_INDEX_SHARDING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/inverted_index.h"
#include "index/topk.h"

namespace embellish::index {

/// \brief Runs `fn(shard)` for every shard in [0, shard_count) — fanned out
///        over `pool` when one is supplied and more than one shard exists,
///        inline on the calling thread otherwise. The single dispatch point
///        every shard fan-out in the codebase goes through; since the pool
///        became a multi-region executor this may be called from inside
///        another ParallelFor region (batch workers fan their own query's
///        shards out over the same shared pool). `max_parallel` caps the
///        number of shards evaluated concurrently (expressed through the
///        region's grain, so the cap bounds pool draw per request without a
///        dedicated sub-pool): 0 means one task per shard, 1 forces the
///        serial inline loop. Blocks until all shards complete; `fn` must
///        be safe to invoke concurrently for distinct shards.
void ForEachShard(ThreadPool* pool, size_t shard_count,
                  const std::function<void(size_t)>& fn,
                  size_t max_parallel = 0);

/// \brief How documents map to shards.
enum class ShardPartition {
  kDocRange,  ///< contiguous doc-id ranges of ~num_docs/shards documents
  kDocHash,   ///< splitmix64(doc) % shards
};

/// \brief Shard layout knobs.
struct ShardingOptions {
  size_t shard_count = 1;
  ShardPartition partition = ShardPartition::kDocRange;

  Status Validate() const;
};

/// \brief The shard owning `doc` under `options` for a `num_docs` corpus.
size_t ShardOfDoc(corpus::DocId doc, size_t num_docs,
                  const ShardingOptions& options);

/// \brief Merges per-shard fragments of one term's inverted list back into
///        the canonical (impact desc, doc asc) order. Exact inverse of the
///        Build-time split: merging every shard's fragment reproduces the
///        monolithic list bit-for-bit.
std::vector<Posting> MergeShardPostings(
    const std::vector<std::vector<Posting>>& per_shard);

/// \brief A monolithic index split into per-shard sub-indexes.
///
/// Each shard is a complete InvertedIndex over the same term space whose
/// lists contain only the shard's documents, in the same impact ordering.
class ShardedIndex {
 public:
  /// \brief Partitions `index` into options.shard_count sub-indexes.
  static Result<ShardedIndex> Build(const InvertedIndex& index,
                                    const ShardingOptions& options);

  /// \brief Assembles a ShardedIndex from already-built per-shard indexes.
  ///        The delta-ingest path in index/epoch.cc builds successor shards
  ///        by merging per-shard delta lists instead of re-splitting the
  ///        merged monolith; this is the trusted assembly point. Callers own
  ///        the invariant that the shards partition the documents the way
  ///        `options` describes.
  static Result<ShardedIndex> FromShards(ShardingOptions options,
                                         size_t num_docs,
                                         std::vector<InvertedIndex> shards);

  const ShardingOptions& options() const { return options_; }
  size_t shard_count() const { return shards_.size(); }
  size_t document_count() const { return num_docs_; }

  const InvertedIndex& shard(size_t s) const { return shards_[s]; }

 private:
  ShardedIndex(ShardingOptions options, size_t num_docs,
               std::vector<InvertedIndex> shards);

  ShardingOptions options_;
  size_t num_docs_ = 0;
  std::vector<InvertedIndex> shards_;
};

/// \brief Merges per-shard top-k lists (each the shard's exact, final-score
///        top k — documents are shard-disjoint so per-shard scores are
///        final) into the exact global prefix: concatenate, sort
///        canonically, truncate to `k`. Shared by EvaluateTopKSharded and
///        the remote-shard coordinator, whose merged response must be
///        bit-identical to the in-process evaluation.
std::vector<ScoredDoc> MergeShardTopK(
    const std::vector<std::vector<ScoredDoc>>& per_shard, size_t k);

/// \brief Cross-shard top-k: evaluates the query on every shard (fanned out
///        over `pool` when supplied, one task per shard) and merges the
///        per-shard top-k lists. Documents are disjoint across shards, so
///        per-shard scores are final and the merged prefix is bit-identical
///        to EvaluateFull on the monolithic index truncated to `k`.
///        `stats`, if non-null, accumulates postings scanned across shards.
///        `max_parallel` caps the concurrent shard evaluations per call
///        (see ForEachShard); 0 = one task per shard.
std::vector<ScoredDoc> EvaluateTopKSharded(
    const ShardedIndex& sharded, const std::vector<wordnet::TermId>& query,
    size_t k, ThreadPool* pool = nullptr, EvalStats* stats = nullptr,
    size_t max_parallel = 0);

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_SHARDING_H_
