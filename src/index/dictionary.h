// The searchable dictionary: the intersection of the corpus's indexed terms
// with the lexical database (Section 5.2: "This dictionary is intersected
// with the WordNet database, giving us a list of searchable terms with known
// semantic relationships").

#ifndef EMBELLISH_INDEX_DICTIONARY_H_
#define EMBELLISH_INDEX_DICTIONARY_H_

#include <unordered_set>
#include <vector>

#include "index/inverted_index.h"
#include "wordnet/database.h"

namespace embellish::index {

/// \brief Set of terms that are both indexed and semantically known.
class SearchDictionary {
 public:
  /// \brief Intersects the index's terms with the lexicon's.
  static SearchDictionary Build(const wordnet::WordNetDatabase& lexicon,
                                const InvertedIndex& index);

  /// \brief Builds the degenerate dictionary of every lexicon term
  ///        (used by the §5.1 experiments, which have no corpus).
  static SearchDictionary AllLexiconTerms(
      const wordnet::WordNetDatabase& lexicon);

  const std::vector<wordnet::TermId>& terms() const { return terms_; }
  size_t size() const { return terms_.size(); }
  bool Contains(wordnet::TermId term) const {
    return membership_.count(term) > 0;
  }

 private:
  std::vector<wordnet::TermId> terms_;  // sorted
  std::unordered_set<wordnet::TermId> membership_;
};

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_DICTIONARY_H_
