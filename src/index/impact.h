// Impact computation for the similarity model of Appendix B.2:
//
//   w_t   = ln(1 + N / f_t)
//   w_dt  = 1 + ln(f_dt)
//   W_d   = sqrt(sum_t w_dt^2)
//   p_dt  = w_dt * w_t / W_d                      (Formula 4)
//
// Impacts are discretized to small non-negative integers (footnote 1 of the
// paper, following Zobel & Moffat), which is also what makes them valid
// Benaloh plaintext exponents in Algorithm 4.

#ifndef EMBELLISH_INDEX_IMPACT_H_
#define EMBELLISH_INDEX_IMPACT_H_

#include <cstdint>

#include "common/status.h"

namespace embellish::index {

/// \brief Collection weight of a term: ln(1 + N / f_t).
double TermWeight(uint64_t num_docs, uint64_t doc_frequency);

/// \brief Within-document weight: 1 + ln(f_dt), for f_dt >= 1.
double DocTermWeight(uint64_t term_frequency);

/// \brief Okapi BM25 parameters (Appendix B cites Okapi [24] as the other
///        well-known scoring function the scheme applies to).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// \brief BM25 impact of a term in a document:
///        idf(t) * f_dt*(k1+1) / (f_dt + k1*(1 - b + b*len/avg_len)),
///        with the non-negative idf variant ln(1 + (N - f_t + 0.5)/(f_t + 0.5)).
double Bm25Impact(uint64_t num_docs, uint64_t doc_frequency,
                  uint64_t term_frequency, double doc_len, double avg_doc_len,
                  const Bm25Params& params = {});

/// \brief Uniform quantizer mapping real impacts in (0, max_impact] onto
///        integer levels 1..(2^bits - 1). Level 0 is reserved for "absent".
class ImpactQuantizer {
 public:
  /// \brief `bits` in [2, 16]; `max_impact` must be positive.
  static Result<ImpactQuantizer> Create(int bits, double max_impact);

  /// \brief Quantizes a real impact; result in [1, max_level()].
  uint32_t Quantize(double impact) const;

  /// \brief Midpoint of a level's cell, for reconstruction error analysis.
  double Reconstruct(uint32_t level) const;

  uint32_t max_level() const { return max_level_; }
  int bits() const { return bits_; }

 private:
  ImpactQuantizer(int bits, double max_impact);

  int bits_;
  uint32_t max_level_;
  double max_impact_;
  double step_;
};

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_IMPACT_H_
