#include "index/epoch.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/answer_path.h"
#include "core/sharded_retrieval.h"
#include "index/topk.h"

namespace embellish::index {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// Wraps a caller-lifetime pointer in a non-owning shared_ptr (aliasing
// constructor with an empty control block): the Freeze compatibility path,
// where the legacy ctor's raw-pointer contract already guarantees lifetime.
template <typename T>
std::shared_ptr<const T> NonOwning(const T* ptr) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), ptr);
}

}  // namespace

IndexEpoch::IndexEpoch(Init init)
    : epoch_(init.epoch),
      sharding_(init.sharding),
      index_(std::move(init.index)),
      sharded_(std::move(init.sharded)),
      buckets_(std::move(init.buckets)),
      layout_(std::move(init.layout)),
      shard_layouts_(std::move(init.shard_layouts)),
      pinned_gauge_(std::move(init.pinned_gauge)) {
  if (sharded_) {
    // The stored per-shard impact upper bounds: lists are impact-ordered,
    // so a list's head is its maximum and the per-term bound is O(1) to
    // collect. Built once here, off the answer path with the rest of the
    // snapshot.
    shard_head_impact_.resize(sharded_->shard_count());
    for (size_t s = 0; s < sharded_->shard_count(); ++s) {
      const InvertedIndex& shard = sharded_->shard(s);
      for (wordnet::TermId term : shard.IndexedTerms()) {
        const std::vector<Posting>* list = shard.postings(term);
        if (list != nullptr && !list->empty()) {
          shard_head_impact_[s][term] = list->front().impact;
        }
      }
    }
  }
  if (pinned_gauge_) pinned_gauge_->fetch_add(1, std::memory_order_relaxed);
}

IndexEpoch::~IndexEpoch() {
  if (pinned_gauge_) pinned_gauge_->fetch_sub(1, std::memory_order_relaxed);
}

uint64_t IndexEpoch::ShardImpactBound(
    size_t shard, const std::vector<wordnet::TermId>& query) const {
  if (shard >= shard_head_impact_.size()) return 0;
  const auto& heads = shard_head_impact_[shard];
  uint64_t bound = 0;
  // Summed per query entry (not per distinct term): an over-count when the
  // query repeats a term, which only weakens the bound — never unsound.
  for (wordnet::TermId term : query) {
    auto it = heads.find(term);
    if (it != heads.end()) bound += it->second;
  }
  return bound;
}

IndexCatalog::IndexCatalog(IndexCatalogOptions options, ThreadPool* pool,
                           bool frozen)
    : options_(std::move(options)),
      pool_(pool),
      frozen_(frozen),
      pinned_gauge_(std::make_shared<std::atomic<int64_t>>(0)) {}

IndexCatalog::~IndexCatalog() { WaitForBuilds(); }

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Create(
    const corpus::Corpus& corpus,
    std::shared_ptr<const core::BucketOrganization> buckets,
    const IndexCatalogOptions& options, ThreadPool* pool) {
  if (buckets == nullptr) {
    return Status::InvalidArgument("catalog requires a bucket organization");
  }
  EMB_RETURN_NOT_OK(options.sharding.Validate());

  auto catalog =
      std::unique_ptr<IndexCatalog>(new IndexCatalog(options, pool, false));
  EMB_ASSIGN_OR_RETURN(BuildOutput out, BuildIndex(corpus, options.build));
  // Frozen delta-scoring state: statistics and quantizer captured exactly
  // once, at full-build time (see FrozenCorpusStats).
  catalog->frozen_stats_ = CaptureCorpusStats(corpus);
  catalog->quantizer_ = out.quantizer;
  catalog->buckets_ = std::move(buckets);
  catalog->partition_doc_base_ = corpus.document_count();

  auto index = std::make_shared<const InvertedIndex>(std::move(out.index));
  EMB_ASSIGN_OR_RETURN(
      std::shared_ptr<const IndexEpoch> first,
      catalog->AssembleEpoch(1, std::move(index), options.sharding, {},
                             /*have_prebuilt=*/false));
  {
    std::lock_guard<std::mutex> lock(catalog->state_mu_);
    catalog->current_ = std::move(first);  // initial epoch, not a swap
  }
  return catalog;
}

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Freeze(
    const InvertedIndex* index, const core::BucketOrganization* buckets,
    const storage::StorageLayout* layout, const IndexCatalogOptions& options,
    ThreadPool* pool) {
  if (index == nullptr || buckets == nullptr) {
    return Status::InvalidArgument("Freeze requires an index and buckets");
  }
  EMB_RETURN_NOT_OK(options.sharding.Validate());

  auto catalog =
      std::unique_ptr<IndexCatalog>(new IndexCatalog(options, pool, true));
  catalog->buckets_ = NonOwning(buckets);
  catalog->partition_doc_base_ = index->document_count();

  IndexEpoch::Init init;
  init.epoch = 1;
  init.sharding = options.sharding;
  init.index = NonOwning(index);
  init.buckets = catalog->buckets_;
  init.pinned_gauge = catalog->pinned_gauge_;
  if (options.sharding.shard_count > 1) {
    EMB_ASSIGN_OR_RETURN(ShardedIndex sharded,
                         ShardedIndex::Build(*index, options.sharding));
    init.sharded = std::make_shared<const ShardedIndex>(std::move(sharded));
  }
  if (layout != nullptr) {
    init.layout = NonOwning(layout);
  } else if (options.build_layouts) {
    init.layout = std::make_shared<const storage::StorageLayout>(
        storage::StorageLayout::Build(*index, buckets->buckets(),
                                      options.layout_policy, options.disk));
  }
  if (init.sharded && options.build_layouts) {
    init.shard_layouts =
        std::make_shared<const std::vector<storage::StorageLayout>>(
            core::BuildShardLayouts(*init.sharded, *buckets,
                                    options.layout_policy, options.disk));
  }
  {
    std::lock_guard<std::mutex> lock(catalog->state_mu_);
    catalog->current_ = std::make_shared<const IndexEpoch>(std::move(init));
  }
  return catalog;
}

std::unique_ptr<IndexCatalog> IndexCatalog::FreezeEpoch(
    std::shared_ptr<const IndexEpoch> snapshot, ThreadPool* pool) {
  IndexCatalogOptions options;
  options.sharding = snapshot->sharding();
  auto catalog =
      std::unique_ptr<IndexCatalog>(new IndexCatalog(options, pool, true));
  catalog->buckets_ = snapshot->buckets_ptr();
  catalog->partition_doc_base_ = snapshot->index().document_count();
  {
    std::lock_guard<std::mutex> lock(catalog->state_mu_);
    catalog->current_ = std::move(snapshot);
  }
  return catalog;
}

std::shared_ptr<const IndexEpoch> IndexCatalog::Acquire() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

void IndexCatalog::Install(std::shared_ptr<const IndexEpoch> next) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    current_ = std::move(next);
  }
  epoch_swaps_.fetch_add(1, std::memory_order_relaxed);
}

Result<std::shared_ptr<const IndexEpoch>> IndexCatalog::AssembleEpoch(
    uint64_t epoch, std::shared_ptr<const InvertedIndex> index,
    const ShardingOptions& sharding, std::vector<InvertedIndex> prebuilt_shards,
    bool have_prebuilt) {
  IndexEpoch::Init init;
  init.epoch = epoch;
  init.sharding = sharding;
  init.index = std::move(index);
  init.buckets = buckets_;
  init.pinned_gauge = pinned_gauge_;
  if (sharding.shard_count > 1) {
    if (have_prebuilt) {
      EMB_ASSIGN_OR_RETURN(
          ShardedIndex sharded,
          ShardedIndex::FromShards(sharding, init.index->document_count(),
                                   std::move(prebuilt_shards)));
      init.sharded = std::make_shared<const ShardedIndex>(std::move(sharded));
    } else {
      EMB_ASSIGN_OR_RETURN(ShardedIndex sharded,
                           ShardedIndex::Build(*init.index, sharding));
      init.sharded = std::make_shared<const ShardedIndex>(std::move(sharded));
    }
  }
  if (options_.build_layouts) {
    init.layout = std::make_shared<const storage::StorageLayout>(
        storage::StorageLayout::Build(*init.index, buckets_->buckets(),
                                      options_.layout_policy, options_.disk));
    if (init.sharded) {
      init.shard_layouts =
          std::make_shared<const std::vector<storage::StorageLayout>>(
              core::BuildShardLayouts(*init.sharded, *buckets_,
                                      options_.layout_policy, options_.disk));
    }
  }
  return std::make_shared<const IndexEpoch>(std::move(init));
}

Result<std::shared_ptr<const IndexEpoch>> IndexCatalog::ApplyDelta(
    std::vector<corpus::Document> docs) {
  if (frozen_) {
    return Status::FailedPrecondition(
        "frozen catalog (no corpus statistics): ApplyDelta requires a "
        "catalog built with IndexCatalog::Create");
  }
  if (docs.empty()) return Acquire();

  // Serialize against other builders; readers (Acquire) never wait here.
  std::lock_guard<std::mutex> build_lock(build_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const IndexEpoch> base = Acquire();
  const size_t base_count = base->index().document_count();

  // Delta documents are numbered sequentially past the pinned base.
  for (size_t i = 0; i < docs.size(); ++i) {
    docs[i].id = static_cast<corpus::DocId>(base_count + i);
  }
  EMB_ASSIGN_OR_RETURN(auto delta_lists,
                       BuildDeltaLists(docs, frozen_stats_, *quantizer_,
                                       options_.build));
  const size_t new_count = base_count + docs.size();
  auto merged = std::make_shared<const InvertedIndex>(
      MergeDeltaLists(base->index(), delta_lists, new_count));

  const ShardingOptions sharding = base->sharding();
  std::vector<InvertedIndex> shards;
  bool have_prebuilt = false;
  if (sharding.shard_count > 1 && base->sharded() != nullptr) {
    // Split the delta lists with the *frozen* partition boundary
    // (partition_doc_base_): kDocRange placement depends on the document
    // count, and moving existing documents between shards on every delta
    // would force a full re-split. New documents therefore land in the
    // last range shard until the next Reshard rebalances.
    const size_t shard_count = sharding.shard_count;
    std::vector<std::unordered_map<wordnet::TermId, std::vector<Posting>>>
        shard_delta(shard_count);
    for (const auto& [term, list] : delta_lists) {
      for (const Posting& p : list) {
        // Splitting a sorted list preserves order, so each fragment stays
        // canonically sorted for the per-shard merge below.
        shard_delta[ShardOfDoc(p.doc, partition_doc_base_, sharding)][term]
            .push_back(p);
      }
    }
    std::vector<std::optional<InvertedIndex>> built(shard_count);
    ForEachShard(pool_, shard_count, [&](size_t s) {
      built[s].emplace(MergeDeltaLists(base->sharded()->shard(s),
                                       shard_delta[s], new_count));
    });
    shards.reserve(shard_count);
    for (auto& b : built) shards.push_back(std::move(*b));
    have_prebuilt = true;
  }

  EMB_ASSIGN_OR_RETURN(
      std::shared_ptr<const IndexEpoch> next,
      AssembleEpoch(base->epoch() + 1, std::move(merged), sharding,
                    std::move(shards), have_prebuilt));
  Install(next);
  delta_docs_ingested_.fetch_add(docs.size(), std::memory_order_relaxed);
  delta_micros_.fetch_add(MicrosSince(t0), std::memory_order_relaxed);
  return next;
}

Result<std::shared_ptr<const IndexEpoch>> IndexCatalog::Reshard(
    const ShardingOptions& sharding) {
  if (frozen_) {
    return Status::FailedPrecondition(
        "frozen catalog: Reshard requires a catalog built with "
        "IndexCatalog::Create");
  }
  EMB_RETURN_NOT_OK(sharding.Validate());

  std::lock_guard<std::mutex> build_lock(build_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const IndexEpoch> base = Acquire();

  // The successor shares the monolithic index (shared_ptr) and re-splits
  // it under the new options; the boundary re-freezes at today's count.
  EMB_ASSIGN_OR_RETURN(
      std::shared_ptr<const IndexEpoch> next,
      AssembleEpoch(base->epoch() + 1, base->index_ptr(), sharding, {},
                    /*have_prebuilt=*/false));
  partition_doc_base_ = base->index().document_count();
  Install(next);
  reshards_.fetch_add(1, std::memory_order_relaxed);
  reshard_micros_.fetch_add(MicrosSince(t0), std::memory_order_relaxed);
  return next;
}

void IndexCatalog::ApplyDeltaAsync(std::vector<corpus::Document> docs) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  builders_.emplace_back([this, docs = std::move(docs)]() mutable {
    Result<std::shared_ptr<const IndexEpoch>> r = ApplyDelta(std::move(docs));
    if (!r.ok()) {
      std::lock_guard<std::mutex> status_lock(threads_mu_);
      async_status_ = r.status();
    }
  });
}

void IndexCatalog::ReshardAsync(ShardingOptions sharding) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  builders_.emplace_back([this, sharding]() {
    Result<std::shared_ptr<const IndexEpoch>> r = Reshard(sharding);
    if (!r.ok()) {
      std::lock_guard<std::mutex> status_lock(threads_mu_);
      async_status_ = r.status();
    }
  });
}

void IndexCatalog::WaitForBuilds() {
  // Builders may enqueue while we join (not today, but cheap to tolerate):
  // drain until the list stays empty. Joins happen outside the lock — the
  // builder threads take threads_mu_ to record failures.
  for (;;) {
    std::vector<std::thread> joinable;
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      joinable.swap(builders_);
    }
    if (joinable.empty()) return;
    for (std::thread& t : joinable) t.join();
  }
}

Status IndexCatalog::last_async_status() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  Status s = async_status_;
  async_status_ = Status::OK();
  return s;
}

IndexCatalogStats IndexCatalog::stats() const {
  IndexCatalogStats s;
  s.epoch_swaps = epoch_swaps_.load(std::memory_order_relaxed);
  s.delta_docs_ingested = delta_docs_ingested_.load(std::memory_order_relaxed);
  s.reshards = reshards_.load(std::memory_order_relaxed);
  s.reshard_micros = reshard_micros_.load(std::memory_order_relaxed);
  s.delta_micros = delta_micros_.load(std::memory_order_relaxed);
  s.pinned_epochs = pinned_gauge_->load(std::memory_order_relaxed);
  s.answer_path_builds = common::AnswerPathBuilds();
  return s;
}

std::vector<ScoredDoc> EvaluateTopKEpoch(
    const IndexEpoch& epoch, const std::vector<wordnet::TermId>& query,
    size_t k, ThreadPool* pool, EvalStats* stats, size_t max_parallel) {
  const ShardedIndex* sharded = epoch.sharded();
  if (sharded == nullptr) {
    // Monolithic epoch: the canonical configuration-independent evaluation
    // (EvaluateFull truncated — exact final scores).
    std::vector<ScoredDoc> full = EvaluateFull(epoch.index(), query, stats);
    if (full.size() > k) full.resize(k);
    if (stats != nullptr) stats->shards_visited += 1;
    return full;
  }

  const size_t shard_count = sharded->shard_count();
  struct Candidate {
    size_t shard;
    uint64_t bound;
  };
  std::vector<Candidate> order;
  order.reserve(shard_count);
  uint64_t skipped = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    const uint64_t bound = epoch.ShardImpactBound(s, query);
    if (bound == 0) {
      // No posting for any query term: the shard contributes nothing.
      ++skipped;
      continue;
    }
    order.push_back(Candidate{s, bound});
  }
  // Highest bound first (shard index breaks ties for determinism): once
  // the first remaining shard is provably out, so is every later one.
  std::sort(order.begin(), order.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.shard < b.shard;
            });

  size_t wave = 1;
  if (pool != nullptr) {
    wave = max_parallel > 0 ? max_parallel : pool->num_threads();
    if (wave == 0) wave = 1;
  }

  std::vector<ScoredDoc> merged;
  uint64_t visited = 0;
  uint64_t postings = 0;
  bool any_early = false;
  size_t idx = 0;
  while (idx < order.size()) {
    if (merged.size() >= k && order[idx].bound < merged[k - 1].score) {
      // Strictly below the k-th score: even a winner of the doc-id
      // tiebreak needs an *equal* score, which the bound rules out.
      // Evaluating extra shards is always sound (the merge truncates);
      // skipping is the only operation this guard protects.
      skipped += order.size() - idx;
      break;
    }
    const size_t wave_end = std::min(idx + wave, order.size());
    const size_t n = wave_end - idx;
    std::vector<std::vector<ScoredDoc>> partial(n);
    std::vector<EvalStats> wave_stats(n);
    auto eval_one = [&](size_t i) {
      // Full per-shard accumulation: scores are final (documents are
      // shard-disjoint), so the truncated prefix is the shard's exact
      // top k and the merged result matches EvaluateTopKSharded.
      partial[i] =
          EvaluateFull(sharded->shard(order[idx + i].shard), query,
                       &wave_stats[i]);
      if (partial[i].size() > k) partial[i].resize(k);
    };
    if (pool != nullptr && n > 1) {
      pool->ParallelFor(0, n, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) eval_one(i);
      });
    } else {
      for (size_t i = 0; i < n; ++i) eval_one(i);
    }
    visited += n;
    for (const EvalStats& ws : wave_stats) {
      postings += ws.postings_scanned;
      any_early |= ws.early_terminated;
    }
    std::vector<std::vector<ScoredDoc>> to_merge;
    to_merge.reserve(n + 1);
    to_merge.push_back(std::move(merged));
    for (auto& p : partial) to_merge.push_back(std::move(p));
    merged = MergeShardTopK(to_merge, k);
    idx = wave_end;
  }

  if (stats != nullptr) {
    stats->postings_scanned += postings;
    stats->early_terminated |= any_early;
    stats->shards_visited += visited;
    stats->shards_skipped += skipped;
  }
  return merged;
}

}  // namespace embellish::index
