// Impact-ordered inverted index (Appendix B.2, Figure 9).
//
// For each term the index stores a postings list of <document, impact>
// pairs sorted by decreasing impact. Impacts are discretized integers (see
// impact.h). Wire/posting sizes are exposed because the §5.2 experiments
// account for I/O, PIR padding, and network traffic in bytes.

#ifndef EMBELLISH_INDEX_INVERTED_INDEX_H_
#define EMBELLISH_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "wordnet/database.h"

namespace embellish::index {

/// \brief One entry of an inverted list.
struct Posting {
  corpus::DocId doc;
  uint32_t impact;  ///< discretized p_dt, >= 1

  bool operator==(const Posting&) const = default;
};

/// \brief Serialized size of one posting: 4-byte doc id + 1-byte impact.
inline constexpr size_t kPostingWireBytes = 5;

/// \brief The canonical inverted-list ordering: impact desc, doc id asc.
///        Every list the builder emits is sorted by this, and the sharding
///        split/merge round-trip depends on it — use this one comparator
///        everywhere instead of restating it.
inline bool PostingOrder(const Posting& a, const Posting& b) {
  if (a.impact != b.impact) return a.impact > b.impact;
  return a.doc < b.doc;
}

/// \brief Immutable impact-ordered inverted index. Build via IndexBuilder.
class InvertedIndex {
 public:
  InvertedIndex(size_t num_docs,
                std::unordered_map<wordnet::TermId, std::vector<Posting>> lists,
                int impact_bits);

  size_t document_count() const { return num_docs_; }
  size_t term_count() const { return lists_.size(); }
  int impact_bits() const { return impact_bits_; }

  /// \brief The postings of `term`, or nullptr if the term is unindexed.
  const std::vector<Posting>* postings(wordnet::TermId term) const;

  /// \brief Document frequency f_t (inverted-list length).
  size_t ListLength(wordnet::TermId term) const;

  /// \brief Serialized list size in bytes (list length x posting size).
  size_t ListBytes(wordnet::TermId term) const {
    return ListLength(term) * kPostingWireBytes;
  }

  /// \brief Serializes a list: per posting, 4-byte big-endian doc id then
  ///        1-byte impact. Used for the PIR bit-matrix and traffic numbers.
  std::vector<uint8_t> SerializeList(wordnet::TermId term) const;

  /// \brief Parses a serialized list (inverse of SerializeList).
  static Result<std::vector<Posting>> DeserializeList(
      const std::vector<uint8_t>& bytes);

  /// \brief All indexed terms, sorted by id.
  std::vector<wordnet::TermId> IndexedTerms() const;

 private:
  size_t num_docs_;
  std::unordered_map<wordnet::TermId, std::vector<Posting>> lists_;
  int impact_bits_;
};

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_INVERTED_INDEX_H_
