// Builds an impact-ordered InvertedIndex from a Corpus.

#ifndef EMBELLISH_INDEX_BUILDER_H_
#define EMBELLISH_INDEX_BUILDER_H_

#include "common/status.h"
#include "corpus/corpus.h"
#include "index/impact.h"
#include "index/inverted_index.h"

namespace embellish::index {

/// \brief Similarity model for impact computation. The PR scheme is
///        score-model-agnostic (Appendix B: "our solution applies generally
///        to similarity retrieval models ... including Okapi").
enum class ScoringModel {
  kCosine,    ///< Formula 3/4: w_dt * w_t / W_d
  kOkapiBM25  ///< Okapi BM25 [24]
};

/// \brief Index construction parameters.
struct IndexBuildOptions {
  /// Bits per discretized impact. 8 keeps postings at 5 bytes and bounds
  /// Algorithm 4's accumulated scores well inside the Benaloh message space.
  int impact_bits = 8;

  ScoringModel scoring = ScoringModel::kCosine;

  /// BM25 shape parameters (used when scoring == kOkapiBM25).
  Bm25Params bm25;

  Status Validate() const;
};

/// \brief Result of index construction: the index plus quantization
///        diagnostics used by tests.
struct BuildOutput {
  InvertedIndex index;

  /// The quantizer used, for reconstruction-error analysis.
  ImpactQuantizer quantizer;

  /// Largest real-valued impact observed before discretization.
  double max_real_impact = 0.0;
};

/// \brief Builds the index per Appendix B.2 / Formula 4.
Result<BuildOutput> BuildIndex(const corpus::Corpus& corpus,
                               const IndexBuildOptions& options = {});

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_BUILDER_H_
