// Builds an impact-ordered InvertedIndex from a Corpus.

#ifndef EMBELLISH_INDEX_BUILDER_H_
#define EMBELLISH_INDEX_BUILDER_H_

#include "common/status.h"
#include "corpus/corpus.h"
#include "index/impact.h"
#include "index/inverted_index.h"

namespace embellish::index {

/// \brief Similarity model for impact computation. The PR scheme is
///        score-model-agnostic (Appendix B: "our solution applies generally
///        to similarity retrieval models ... including Okapi").
enum class ScoringModel {
  kCosine,    ///< Formula 3/4: w_dt * w_t / W_d
  kOkapiBM25  ///< Okapi BM25 [24]
};

/// \brief Index construction parameters.
struct IndexBuildOptions {
  /// Bits per discretized impact. 8 keeps postings at 5 bytes and bounds
  /// Algorithm 4's accumulated scores well inside the Benaloh message space.
  int impact_bits = 8;

  ScoringModel scoring = ScoringModel::kCosine;

  /// BM25 shape parameters (used when scoring == kOkapiBM25).
  Bm25Params bm25;

  Status Validate() const;
};

/// \brief Result of index construction: the index plus quantization
///        diagnostics used by tests.
struct BuildOutput {
  InvertedIndex index;

  /// The quantizer used, for reconstruction-error analysis.
  ImpactQuantizer quantizer;

  /// Largest real-valued impact observed before discretization.
  double max_real_impact = 0.0;
};

/// \brief Builds the index per Appendix B.2 / Formula 4.
Result<BuildOutput> BuildIndex(const corpus::Corpus& corpus,
                               const IndexBuildOptions& options = {});

/// \brief Collection statistics captured at full-build time and held fixed
///        across incremental deltas.
///
/// Delta documents are scored with the N, f_t, and average-length values
/// frozen here (and the frozen quantizer), not with post-ingest statistics.
/// That keeps every epoch's postings a pure function of (seed corpus, delta
/// sequence) — the property the bit-identity suites depend on — and mirrors
/// how segment-based engines defer statistics refresh to the next full
/// rebuild (here: the next `Reshard`/`Create`, which recaptures nothing —
/// stats stay frozen until a catalog is rebuilt from a corpus).
struct FrozenCorpusStats {
  uint64_t num_docs = 0;
  double avg_doc_len = 0.0;
  std::unordered_map<wordnet::TermId, uint32_t> doc_frequency;

  /// \brief f_t under the frozen statistics. Terms unseen at capture time
  ///        get f_t = 1 (the smallest in-collection frequency) so their
  ///        TermWeight stays finite.
  uint32_t DocumentFrequency(wordnet::TermId term) const;
};

/// \brief Captures the statistics `BuildIndex` derived from `corpus`.
FrozenCorpusStats CaptureCorpusStats(const corpus::Corpus& corpus);

/// \brief Per-term delta posting lists for a batch of new documents, scored
///        against frozen statistics and discretized with the frozen
///        quantizer. Document ids must already be assigned (the catalog
///        numbers them sequentially past the current epoch's count). Lists
///        come back in canonical impact order.
Result<std::unordered_map<wordnet::TermId, std::vector<Posting>>>
BuildDeltaLists(const std::vector<corpus::Document>& docs,
                const FrozenCorpusStats& stats,
                const ImpactQuantizer& quantizer,
                const IndexBuildOptions& options);

/// \brief Merges delta lists into `base`, producing a successor index with
///        `new_num_docs` documents. Per-term sorted merge preserving the
///        canonical impact order; `base` is untouched (it is someone's
///        pinned epoch).
InvertedIndex MergeDeltaLists(
    const InvertedIndex& base,
    const std::unordered_map<wordnet::TermId, std::vector<Posting>>& delta,
    size_t new_num_docs);

}  // namespace embellish::index

#endif  // EMBELLISH_INDEX_BUILDER_H_
