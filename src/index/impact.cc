#include "index/impact.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace embellish::index {

double TermWeight(uint64_t num_docs, uint64_t doc_frequency) {
  assert(doc_frequency > 0);
  return std::log(1.0 + static_cast<double>(num_docs) /
                            static_cast<double>(doc_frequency));
}

double DocTermWeight(uint64_t term_frequency) {
  assert(term_frequency > 0);
  return 1.0 + std::log(static_cast<double>(term_frequency));
}

double Bm25Impact(uint64_t num_docs, uint64_t doc_frequency,
                  uint64_t term_frequency, double doc_len, double avg_doc_len,
                  const Bm25Params& params) {
  assert(doc_frequency > 0 && term_frequency > 0 && avg_doc_len > 0);
  const double n = static_cast<double>(num_docs);
  const double ft = static_cast<double>(doc_frequency);
  const double fdt = static_cast<double>(term_frequency);
  const double idf = std::log(1.0 + (n - ft + 0.5) / (ft + 0.5));
  const double norm = params.k1 * (1.0 - params.b +
                                   params.b * doc_len / avg_doc_len);
  return idf * fdt * (params.k1 + 1.0) / (fdt + norm);
}

Result<ImpactQuantizer> ImpactQuantizer::Create(int bits, double max_impact) {
  if (bits < 2 || bits > 16) {
    return Status::InvalidArgument("quantizer bits out of [2, 16]");
  }
  if (!(max_impact > 0.0)) {
    return Status::InvalidArgument("max_impact must be positive");
  }
  return ImpactQuantizer(bits, max_impact);
}

ImpactQuantizer::ImpactQuantizer(int bits, double max_impact)
    : bits_(bits),
      max_level_((1u << bits) - 1),
      max_impact_(max_impact),
      step_(max_impact / static_cast<double>((1u << bits) - 1)) {}

uint32_t ImpactQuantizer::Quantize(double impact) const {
  if (impact <= 0.0) return 1;  // present but vanishing impact
  double level = std::ceil(impact / step_);
  return static_cast<uint32_t>(
      std::clamp(level, 1.0, static_cast<double>(max_level_)));
}

double ImpactQuantizer::Reconstruct(uint32_t level) const {
  assert(level >= 1 && level <= max_level_);
  return (static_cast<double>(level) - 0.5) * step_;
}

}  // namespace embellish::index
