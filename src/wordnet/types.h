// Core identifiers and relation taxonomy for the lexical database.
//
// The model follows Section 3.2 of the paper: terms map to one or more
// synsets (senses); synsets carry typed relations to other synsets. Relation
// types mirror the WordNet noun relations the paper uses: hypernym/hyponym
// (generalization/specialization), holonym/meronym (containment/part-of),
// antonym, derivational relatedness, and topic/usage domain membership.

#ifndef EMBELLISH_WORDNET_TYPES_H_
#define EMBELLISH_WORDNET_TYPES_H_

#include <cstdint>
#include <limits>

namespace embellish::wordnet {

/// \brief Index of a term in the database's term table.
using TermId = uint32_t;

/// \brief Index of a synset in the database's synset table.
using SynsetId = uint32_t;

inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();
inline constexpr SynsetId kInvalidSynsetId =
    std::numeric_limits<SynsetId>::max();

/// \brief Typed relation between synsets.
enum class RelationType : uint8_t {
  kHypernym = 0,    ///< generalization ("osteosarcoma" -> "sarcoma")
  kHyponym = 1,     ///< specialization (inverse of hypernym)
  kHolonym = 2,     ///< whole-of ("tree" -> "forest")
  kMeronym = 3,     ///< part-of (inverse of holonym)
  kAntonym = 4,     ///< opposition (symmetric)
  kDerivation = 5,  ///< derivational relatedness, e.g. man/manhood (symmetric)
  kDomain = 6,      ///< topic/usage domain this synset belongs to
  kDomainMember = 7 ///< inverse of kDomain
};

inline constexpr int kNumRelationTypes = 8;

/// \brief The inverse relation type (antonym/derivation are self-inverse).
constexpr RelationType InverseRelation(RelationType t) {
  switch (t) {
    case RelationType::kHypernym:
      return RelationType::kHyponym;
    case RelationType::kHyponym:
      return RelationType::kHypernym;
    case RelationType::kHolonym:
      return RelationType::kMeronym;
    case RelationType::kMeronym:
      return RelationType::kHolonym;
    case RelationType::kAntonym:
      return RelationType::kAntonym;
    case RelationType::kDerivation:
      return RelationType::kDerivation;
    case RelationType::kDomain:
      return RelationType::kDomainMember;
    case RelationType::kDomainMember:
      return RelationType::kDomain;
  }
  return t;
}

/// \brief Human-readable relation name, for the text format and logs.
const char* RelationTypeName(RelationType t);

/// \brief Directed, typed edge out of a synset.
struct Relation {
  RelationType type;
  SynsetId target;

  bool operator==(const Relation&) const = default;
};

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_TYPES_H_
