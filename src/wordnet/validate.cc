#include <queue>

#include "common/strings.h"
#include "wordnet/database.h"

namespace embellish::wordnet {

namespace {

Status CheckIdsInRange(const WordNetDatabase& db) {
  for (SynsetId sid = 0; sid < db.synset_count(); ++sid) {
    const Synset& ss = db.synset(sid);
    if (ss.terms.empty()) {
      return Status::Corruption(StringPrintf("synset %u has no terms", sid));
    }
    for (TermId tid : ss.terms) {
      if (tid >= db.term_count()) {
        return Status::Corruption(
            StringPrintf("synset %u references invalid term %u", sid, tid));
      }
    }
    for (const Relation& rel : ss.relations) {
      if (rel.target >= db.synset_count()) {
        return Status::Corruption(StringPrintf(
            "synset %u has relation to invalid synset %u", sid, rel.target));
      }
      if (rel.target == sid) {
        return Status::Corruption(StringPrintf("synset %u self-loop", sid));
      }
    }
  }
  for (TermId tid = 0; tid < db.term_count(); ++tid) {
    const Term& t = db.term(tid);
    if (t.synsets.empty()) {
      return Status::Corruption(
          StringPrintf("term %u ('%s') in no synset", tid, t.text.c_str()));
    }
    for (SynsetId sid : t.synsets) {
      if (sid >= db.synset_count()) {
        return Status::Corruption(
            StringPrintf("term %u references invalid synset %u", tid, sid));
      }
    }
  }
  return Status::OK();
}

Status CheckInverseEdges(const WordNetDatabase& db) {
  for (SynsetId sid = 0; sid < db.synset_count(); ++sid) {
    for (const Relation& rel : db.synset(sid).relations) {
      RelationType inv = InverseRelation(rel.type);
      bool found = false;
      for (const Relation& back : db.synset(rel.target).relations) {
        if (back.type == inv && back.target == sid) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Corruption(StringPrintf(
            "missing inverse of %s edge %u -> %u", RelationTypeName(rel.type),
            sid, rel.target));
      }
    }
  }
  return Status::OK();
}

// The hypernym graph must be a DAG in which every synset reaches some root.
// A reverse BFS from all roots along hyponym edges must cover all synsets
// whose hypernym component contains a root; combined with acyclicity (Kahn)
// this guarantees well-defined specificity values.
Status CheckHypernymDag(const WordNetDatabase& db) {
  const size_t n = db.synset_count();
  std::vector<uint32_t> out_degree(n, 0);  // hypernym out-degree
  for (SynsetId sid = 0; sid < n; ++sid) {
    for (const Relation& rel : db.synset(sid).relations) {
      if (rel.type == RelationType::kHypernym) ++out_degree[sid];
    }
  }
  // Kahn's algorithm on hypernym edges (sid -> its hypernyms).
  std::queue<SynsetId> ready;
  std::vector<uint32_t> remaining = out_degree;
  std::vector<std::vector<SynsetId>> dependents(n);  // hypernym -> hyponyms
  for (SynsetId sid = 0; sid < n; ++sid) {
    for (const Relation& rel : db.synset(sid).relations) {
      if (rel.type == RelationType::kHypernym) {
        dependents[rel.target].push_back(sid);
      }
    }
    if (remaining[sid] == 0) ready.push(sid);  // roots
  }
  size_t visited = 0;
  while (!ready.empty()) {
    SynsetId sid = ready.front();
    ready.pop();
    ++visited;
    for (SynsetId child : dependents[sid]) {
      if (--remaining[child] == 0) ready.push(child);
    }
  }
  if (visited != n) {
    return Status::Corruption(StringPrintf(
        "hypernym graph has a cycle or unreachable region (%zu of %zu synsets "
        "processed)",
        visited, n));
  }
  return Status::OK();
}

}  // namespace

Status ValidateDatabase(const WordNetDatabase& db) {
  if (db.term_count() == 0 || db.synset_count() == 0) {
    return Status::InvalidArgument("database is empty");
  }
  EMB_RETURN_NOT_OK(CheckIdsInRange(db));
  EMB_RETURN_NOT_OK(CheckInverseEdges(db));
  EMB_RETURN_NOT_OK(CheckHypernymDag(db));
  return Status::OK();
}

}  // namespace embellish::wordnet
