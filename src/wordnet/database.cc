#include "wordnet/database.h"

namespace embellish::wordnet {

const char* RelationTypeName(RelationType t) {
  switch (t) {
    case RelationType::kHypernym:
      return "hypernym";
    case RelationType::kHyponym:
      return "hyponym";
    case RelationType::kHolonym:
      return "holonym";
    case RelationType::kMeronym:
      return "meronym";
    case RelationType::kAntonym:
      return "antonym";
    case RelationType::kDerivation:
      return "derivation";
    case RelationType::kDomain:
      return "domain";
    case RelationType::kDomainMember:
      return "domain_member";
  }
  return "unknown";
}

WordNetDatabase::WordNetDatabase(std::vector<Term> terms,
                                 std::vector<Synset> synsets)
    : terms_(std::move(terms)), synsets_(std::move(synsets)) {
  term_index_.reserve(terms_.size());
  for (TermId id = 0; id < terms_.size(); ++id) {
    term_index_.emplace(terms_[id].text, id);
  }
}

TermId WordNetDatabase::FindTerm(const std::string& text) const {
  auto it = term_index_.find(text);
  return it == term_index_.end() ? kInvalidTermId : it->second;
}

std::vector<SynsetId> WordNetDatabase::RelatedSynsets(
    SynsetId id, RelationType type) const {
  std::vector<SynsetId> out;
  for (const Relation& rel : synsets_[id].relations) {
    if (rel.type == type) out.push_back(rel.target);
  }
  return out;
}

bool WordNetDatabase::IsHypernymRoot(SynsetId id) const {
  for (const Relation& rel : synsets_[id].relations) {
    if (rel.type == RelationType::kHypernym) return false;
  }
  return true;
}

}  // namespace embellish::wordnet
