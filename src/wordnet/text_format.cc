#include "wordnet/text_format.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace embellish::wordnet {

namespace {

Result<RelationType> RelationTypeFromName(const std::string& name) {
  for (int i = 0; i < kNumRelationTypes; ++i) {
    RelationType t = static_cast<RelationType>(i);
    if (name == RelationTypeName(t)) return t;
  }
  return Status::Corruption("unknown relation type '" + name + "'");
}

}  // namespace

std::string SerializeDatabase(const WordNetDatabase& db) {
  std::ostringstream out;
  out << "embellish-wordnet 1\n";
  out << "terms " << db.term_count() << "\n";
  for (TermId tid = 0; tid < db.term_count(); ++tid) {
    out << db.term(tid).text << "\n";
  }
  out << "synsets " << db.synset_count() << "\n";
  for (SynsetId sid = 0; sid < db.synset_count(); ++sid) {
    out << "S";
    for (TermId tid : db.synset(sid).terms) out << " " << tid;
    out << "\n";
  }
  for (SynsetId sid = 0; sid < db.synset_count(); ++sid) {
    for (const Relation& rel : db.synset(sid).relations) {
      out << "R " << sid << " " << RelationTypeName(rel.type) << " "
          << rel.target << "\n";
    }
  }
  return out.str();
}

Result<WordNetDatabase> ParseDatabase(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line) || line != "embellish-wordnet 1") {
    return Status::Corruption("bad or missing format header");
  }
  if (!std::getline(in, line) || !StartsWith(line, "terms ")) {
    return Status::Corruption("missing 'terms' section");
  }
  size_t term_count = 0;
  try {
    term_count = std::stoull(line.substr(6));
  } catch (...) {
    return Status::Corruption("bad term count");
  }

  std::vector<Term> terms;
  terms.reserve(term_count);
  for (size_t i = 0; i < term_count; ++i) {
    if (!std::getline(in, line) || line.empty()) {
      return Status::Corruption(StringPrintf("missing term line %zu", i));
    }
    terms.push_back(Term{line, {}});
  }

  if (!std::getline(in, line) || !StartsWith(line, "synsets ")) {
    return Status::Corruption("missing 'synsets' section");
  }
  size_t synset_count = 0;
  try {
    synset_count = std::stoull(line.substr(8));
  } catch (...) {
    return Status::Corruption("bad synset count");
  }

  std::vector<Synset> synsets;
  synsets.reserve(synset_count);
  for (size_t i = 0; i < synset_count; ++i) {
    if (!std::getline(in, line) || !StartsWith(line, "S")) {
      return Status::Corruption(StringPrintf("missing synset line %zu", i));
    }
    Synset ss;
    std::istringstream fields(line.substr(1));
    uint64_t tid;
    while (fields >> tid) {
      if (tid >= terms.size()) {
        return Status::Corruption(
            StringPrintf("synset %zu references bad term %llu", i,
                         static_cast<unsigned long long>(tid)));
      }
      ss.terms.push_back(static_cast<TermId>(tid));
      terms[tid].synsets.push_back(static_cast<SynsetId>(i));
    }
    if (ss.terms.empty()) {
      return Status::Corruption(StringPrintf("synset %zu has no terms", i));
    }
    synsets.push_back(std::move(ss));
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag, type_name;
    uint64_t from, to;
    if (!(fields >> tag >> from >> type_name >> to) || tag != "R") {
      return Status::Corruption("bad relation line: " + line);
    }
    if (from >= synsets.size() || to >= synsets.size()) {
      return Status::Corruption("relation references bad synset: " + line);
    }
    EMB_ASSIGN_OR_RETURN(RelationType type, RelationTypeFromName(type_name));
    synsets[from].relations.push_back(
        Relation{type, static_cast<SynsetId>(to)});
  }

  WordNetDatabase db(std::move(terms), std::move(synsets));
  EMB_RETURN_NOT_OK(ValidateDatabase(db));
  return db;
}

Status SaveDatabaseToFile(const WordNetDatabase& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << SerializeDatabase(db);
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<WordNetDatabase> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseDatabase(buf.str());
}

}  // namespace embellish::wordnet
