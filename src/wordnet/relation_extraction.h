// Corpus-based term-relation extraction (Appendix C).
//
// The paper's decoy mechanism consumes a database of term associations;
// WordNet's manually curated relations are accurate but not comprehensive,
// so Appendix C proposes augmenting them with relations extracted from text
// corpora [11] or the Web [25], rated on a numeric strength scale by
// occurrence counts. This module implements the corpus side: windowed
// co-occurrence counting scored with normalized pointwise mutual
// information (NPMI in [0, 1] after clamping), which is the standard
// occurrence-count-based strength rating.

#ifndef EMBELLISH_WORDNET_RELATION_EXTRACTION_H_
#define EMBELLISH_WORDNET_RELATION_EXTRACTION_H_

#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "wordnet/types.h"

namespace embellish::wordnet {

/// \brief A mined association between two terms, with strength in (0, 1].
struct ExtractedRelation {
  TermId a;
  TermId b;
  double strength;

  bool operator==(const ExtractedRelation&) const = default;
};

/// \brief Extraction parameters.
struct RelationExtractionOptions {
  /// Co-occurrence window width in tokens.
  size_t window = 8;

  /// Minimum NPMI strength for a relation to be emitted.
  double min_strength = 0.15;

  /// Minimum co-occurrence count (guards against one-off coincidences).
  uint32_t min_cooccurrences = 3;

  /// At most this many relations are kept per term (strongest first).
  size_t max_relations_per_term = 4;

  Status Validate() const;
};

/// \brief Mines weighted term relations from the corpus.
///
/// Relations are symmetric and deduplicated (a < b); the result is sorted
/// by decreasing strength, ties by (a, b) for determinism.
Result<std::vector<ExtractedRelation>> ExtractRelationsFromCorpus(
    const corpus::Corpus& corpus, const RelationExtractionOptions& options = {});

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_RELATION_EXTRACTION_H_
