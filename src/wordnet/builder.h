// Incremental construction of a WordNetDatabase with automatic maintenance
// of inverse relations.

#ifndef EMBELLISH_WORDNET_BUILDER_H_
#define EMBELLISH_WORDNET_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::wordnet {

/// \brief Builder for WordNetDatabase.
///
/// Terms are created on first mention; a term mentioned in several synsets
/// becomes polysemous. AddRelation inserts the inverse edge automatically so
/// the resulting database always passes ValidateDatabase's symmetry checks.
class WordNetBuilder {
 public:
  /// \brief Adds a synset containing `term_texts` (>= 1), returns its id.
  SynsetId AddSynset(const std::vector<std::string>& term_texts);

  /// \brief Adds `from --type--> to` and the inverse edge. Duplicate edges
  ///        and self-loops are rejected.
  Status AddRelation(SynsetId from, RelationType type, SynsetId to);

  /// \brief Convenience: hypernym edge (child generalizes to parent).
  Status AddHypernym(SynsetId child, SynsetId parent) {
    return AddRelation(child, RelationType::kHypernym, parent);
  }

  size_t synset_count() const { return synsets_.size(); }
  size_t term_count() const { return terms_.size(); }

  /// \brief Finalizes and validates; the builder is consumed.
  Result<WordNetDatabase> Build() &&;

 private:
  TermId InternTerm(const std::string& text);
  bool HasRelation(SynsetId from, RelationType type, SynsetId to) const;

  std::vector<Term> terms_;
  std::vector<Synset> synsets_;
  std::unordered_map<std::string, TermId> term_index_;
};

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_BUILDER_H_
