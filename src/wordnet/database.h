// Immutable in-memory lexical database: the substrate for Algorithms 1 and 2.

#ifndef EMBELLISH_WORDNET_DATABASE_H_
#define EMBELLISH_WORDNET_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "wordnet/types.h"

namespace embellish::wordnet {

/// \brief A dictionary term (word or collocation, e.g. "abu sayyaf").
struct Term {
  std::string text;
  std::vector<SynsetId> synsets;  ///< senses, in insertion order
};

/// \brief A sense shared by one or more terms, with typed out-edges.
struct Synset {
  std::vector<TermId> terms;
  std::vector<Relation> relations;

  /// \brief Number of relations (the "connectivity" Algorithm 1 orders by).
  size_t RelationCount() const { return relations.size(); }
};

/// \brief Immutable lexical database. Construct via WordNetBuilder,
///        SyntheticGenerator, MiniWordNet, or the text format loader.
class WordNetDatabase {
 public:
  WordNetDatabase(std::vector<Term> terms, std::vector<Synset> synsets);

  size_t term_count() const { return terms_.size(); }
  size_t synset_count() const { return synsets_.size(); }

  const Term& term(TermId id) const { return terms_[id]; }
  const Synset& synset(SynsetId id) const { return synsets_[id]; }

  const std::vector<Term>& terms() const { return terms_; }
  const std::vector<Synset>& synsets() const { return synsets_; }

  /// \brief Looks up a term by its text; kInvalidTermId if absent.
  TermId FindTerm(const std::string& text) const;

  /// \brief All relations of `id` with the given type.
  std::vector<SynsetId> RelatedSynsets(SynsetId id, RelationType type) const;

  /// \brief True if the synset has no hypernym (it is a hierarchy root).
  bool IsHypernymRoot(SynsetId id) const;

 private:
  std::vector<Term> terms_;
  std::vector<Synset> synsets_;
  std::unordered_map<std::string, TermId> term_index_;
};

/// \brief Structural validation: ids in range, inverse edges present,
///        no self-loops, every term in >= 1 synset and vice versa, and the
///        hypernym graph is acyclic with every synset reaching a root.
Status ValidateDatabase(const WordNetDatabase& db);

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_DATABASE_H_
