#include "wordnet/builder.h"

#include <algorithm>

#include "common/strings.h"

namespace embellish::wordnet {

TermId WordNetBuilder::InternTerm(const std::string& text) {
  auto it = term_index_.find(text);
  if (it != term_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Term{text, {}});
  term_index_.emplace(text, id);
  return id;
}

SynsetId WordNetBuilder::AddSynset(const std::vector<std::string>& term_texts) {
  SynsetId sid = static_cast<SynsetId>(synsets_.size());
  Synset ss;
  for (const std::string& text : term_texts) {
    TermId tid = InternTerm(text);
    // A term may legitimately appear once per synset, but not twice in one.
    if (std::find(ss.terms.begin(), ss.terms.end(), tid) == ss.terms.end()) {
      ss.terms.push_back(tid);
      terms_[tid].synsets.push_back(sid);
    }
  }
  synsets_.push_back(std::move(ss));
  return sid;
}

bool WordNetBuilder::HasRelation(SynsetId from, RelationType type,
                                 SynsetId to) const {
  const Synset& ss = synsets_[from];
  return std::find(ss.relations.begin(), ss.relations.end(),
                   Relation{type, to}) != ss.relations.end();
}

Status WordNetBuilder::AddRelation(SynsetId from, RelationType type,
                                   SynsetId to) {
  if (from >= synsets_.size() || to >= synsets_.size()) {
    return Status::OutOfRange("synset id out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop relation rejected");
  }
  if (HasRelation(from, type, to)) {
    return Status::InvalidArgument(StringPrintf(
        "duplicate %s relation %u -> %u", RelationTypeName(type), from, to));
  }
  synsets_[from].relations.push_back(Relation{type, to});
  RelationType inv = InverseRelation(type);
  if (!HasRelation(to, inv, from)) {
    synsets_[to].relations.push_back(Relation{inv, from});
  }
  return Status::OK();
}

Result<WordNetDatabase> WordNetBuilder::Build() && {
  WordNetDatabase db(std::move(terms_), std::move(synsets_));
  EMB_RETURN_NOT_OK(ValidateDatabase(db));
  return db;
}

}  // namespace embellish::wordnet
