// A curated ~100-synset lexical database containing the paper's running
// examples (osteosarcoma, amaranthaceae, hypocapnia, abu sayyaf, ...), with
// hypernym chains whose depths reproduce the specificity values the paper
// quotes in Section 3.4 (e.g. 'osteosarcoma' (14), 'terrorism' (9),
// 'amaranthaceae' (8), 'sign of the zodiac' (5)).
//
// Used by the examples for human-readable output and by tests as a fixed,
// hand-checkable fixture.

#ifndef EMBELLISH_WORDNET_MINI_WORDNET_H_
#define EMBELLISH_WORDNET_MINI_WORDNET_H_

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::wordnet {

/// \brief Builds the curated mini lexicon. Deterministic.
Result<WordNetDatabase> BuildMiniWordNet();

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_MINI_WORDNET_H_
