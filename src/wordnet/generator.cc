#include "wordnet/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "common/strings.h"
#include "wordnet/builder.h"

namespace embellish::wordnet {

namespace {

// Relative synset mass per depth, read off Figure 2 of the paper: near-zero
// head (1 synset at depth 0, 4 at depth 1), steep rise to a mode at 7 that
// holds about a third of the nouns, and a long tail to 18.
constexpr double kDepthWeights[kFigure2DepthCount] = {
    /*0*/ 0.0000122, /*1*/ 0.0000487, /*2*/ 0.011, /*3*/ 0.0366,
    /*4*/ 0.0975,    /*5*/ 0.1706,    /*6*/ 0.268, /*7*/ 0.4265,
    /*8*/ 0.1707,    /*9*/ 0.0975,    /*10*/ 0.0609, /*11*/ 0.0426,
    /*12*/ 0.0244,   /*13*/ 0.0146,   /*14*/ 0.0097, /*15*/ 0.0043,
    /*16*/ 0.0018,   /*17*/ 0.0007,   /*18*/ 0.0002};

// Pronounceable pseudo-word syllable inventory.
constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                                   "k",  "l",  "m",  "n",  "p",  "r",  "s",
                                   "t",  "v",  "w",  "z",  "br", "cr", "dr",
                                   "fl", "gl", "pr", "sk", "sp", "st", "tr",
                                   "ch", "sh", "th", "ph"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ae", "ia", "io",
                                   "ou", "ea", "ei", "oa"};
constexpr const char* kCodas[] = {"",  "",  "",  "n", "r", "s",  "l",
                                  "m", "t", "x", "d", "ck", "ph", "th"};

class PseudoWordFactory {
 public:
  explicit PseudoWordFactory(Rng* rng) : rng_(rng) {}

  // A fresh word never produced before (retries on collision).
  std::string NewWord() {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      std::string w = Sample();
      if (seen_.insert(w).second) return w;
    }
    // Astronomically unlikely at our scales; fall back to a counter suffix.
    std::string w = Sample() + StringPrintf("%zu", seen_.size());
    seen_.insert(w);
    return w;
  }

  // Marks an externally supplied word as used.
  void Reserve(const std::string& w) { seen_.insert(w); }

 private:
  std::string Sample() {
    size_t syllables = 2 + rng_->Uniform(3);  // 2..4
    std::string w;
    for (size_t s = 0; s < syllables; ++s) {
      w += kOnsets[rng_->Uniform(std::size(kOnsets))];
      w += kNuclei[rng_->Uniform(std::size(kNuclei))];
      if (s + 1 == syllables || rng_->Bernoulli(0.3)) {
        w += kCodas[rng_->Uniform(std::size(kCodas))];
      }
    }
    return w;
  }

  Rng* rng_;
  std::unordered_set<std::string> seen_;
};

}  // namespace

const double* Figure2DepthWeights() { return kDepthWeights; }

Status SyntheticWordNetOptions::Validate() const {
  if (target_term_count < 50) {
    return Status::InvalidArgument("target_term_count must be >= 50");
  }
  if (max_depth < 3 || max_depth >= 64) {
    return Status::InvalidArgument("max_depth out of range [3, 64)");
  }
  for (double p : {extra_hypernym_prob, antonym_prob, meronym_prob,
                   derivation_prob, domain_prob}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probability out of [0, 1]");
    }
  }
  return Status::OK();
}

Result<WordNetDatabase> GenerateSyntheticWordNet(
    const SyntheticWordNetOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  Rng rng(options.seed);
  PseudoWordFactory words(&rng);
  WordNetBuilder builder;

  // ---- 1. Per-depth synset budget, scaled from the Figure 2 profile. ----
  // Words per synset average ~1.8 with ~45% of non-head slots reusing an
  // existing term (polysemy), so distinct new terms per synset ~= 1.42 —
  // matching WordNet's 117,798 words over 82,115 synsets.
  const double kTermsPerSynset = 1.42;
  const size_t synset_target = std::max<size_t>(
      20, static_cast<size_t>(
              std::llround(static_cast<double>(options.target_term_count) /
                           kTermsPerSynset)));

  const size_t depth_count = std::min(options.max_depth + 1,
                                      kFigure2DepthCount);
  double weight_sum = 0;
  for (size_t d = 0; d < depth_count; ++d) weight_sum += kDepthWeights[d];

  std::vector<size_t> budget(depth_count, 0);
  budget[0] = 1;  // 'entity'
  for (size_t d = 1; d < depth_count; ++d) {
    budget[d] = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               static_cast<double>(synset_target) * kDepthWeights[d] /
               weight_sum)));
  }
  if (depth_count > 1) budget[1] = std::max<size_t>(budget[1], 4);

  // ---- 2. Hypernym hierarchy, level by level. ----
  std::vector<std::vector<SynsetId>> levels(depth_count);
  std::vector<size_t> synset_depth;
  // Pool of minted words, drawn from for polysemy (a term used by several
  // synsets). ~20% of non-head slots reuse, which lands the distinct-term /
  // synset ratio near WordNet's 117,798 / 82,115 ~= 1.43.
  std::vector<std::string> minted;

  auto make_synset = [&](size_t depth) -> SynsetId {
    // Slot count distribution: mean ~1.8 words per synset.
    size_t slots = 1;
    double roll = rng.NextDouble();
    if (roll > 0.45 && roll <= 0.80) {
      slots = 2;
    } else if (roll > 0.80 && roll <= 0.95) {
      slots = 3;
    } else if (roll > 0.95) {
      slots = 4;
    }
    std::vector<std::string> texts;
    texts.reserve(slots);
    std::string head = words.NewWord();
    minted.push_back(head);
    texts.push_back(head);
    for (size_t s = 1; s < slots; ++s) {
      double style = rng.NextDouble();
      if (!minted.empty() && style < 0.45) {
        // Polysemy: an existing word acquires this synset as a new sense.
        texts.push_back(minted[rng.Uniform(minted.size())]);
      } else if (style < 0.80) {
        std::string w = words.NewWord();
        minted.push_back(w);
        texts.push_back(std::move(w));
      } else if (style < 0.92) {
        // Collocation on the head word, mirroring WordNet's compound
        // entries ("amaranthaceae" / "family amaranthaceae").
        std::string w = "family " + head;
        words.Reserve(w);
        minted.push_back(w);
        texts.push_back(std::move(w));
      } else {
        std::string w = head + " " + words.NewWord();
        words.Reserve(w);
        minted.push_back(w);
        texts.push_back(std::move(w));
      }
    }
    SynsetId sid = builder.AddSynset(texts);
    synset_depth.push_back(depth);
    return sid;
  };

  {
    // Root: 'entity', like the real noun hierarchy.
    SynsetId root = builder.AddSynset({"entity"});
    synset_depth.push_back(0);
    levels[0].push_back(root);
  }
  for (size_t d = 1; d < depth_count; ++d) {
    levels[d].reserve(budget[d]);
    for (size_t i = 0; i < budget[d]; ++i) {
      SynsetId sid = make_synset(d);
      SynsetId parent =
          levels[d - 1][rng.Uniform(levels[d - 1].size())];
      EMB_RETURN_NOT_OK(builder.AddHypernym(sid, parent));
      // Occasional second hypernym at the same parent depth; the shortest
      // path to the root is unchanged, so specificity stays equal to d.
      if (levels[d - 1].size() > 1 &&
          rng.Bernoulli(options.extra_hypernym_prob)) {
        SynsetId second = levels[d - 1][rng.Uniform(levels[d - 1].size())];
        if (second != parent) {
          EMB_RETURN_NOT_OK(builder.AddHypernym(sid, second));
        }
      }
      levels[d].push_back(sid);
    }
  }

  const size_t total_synsets = builder.synset_count();

  // ---- 3. Non-hierarchy relations. ----
  auto random_synset_at_depth = [&](size_t depth) -> SynsetId {
    return levels[depth][rng.Uniform(levels[depth].size())];
  };

  for (SynsetId sid = 0; sid < total_synsets; ++sid) {
    size_t d = synset_depth[sid];
    if (levels[d].size() > 1 && rng.Bernoulli(options.antonym_prob)) {
      SynsetId other = random_synset_at_depth(d);
      if (other != sid) {
        // Ignore duplicate-edge rejections; they are harmless here.
        (void)builder.AddRelation(sid, RelationType::kAntonym, other);
      }
    }
    if (rng.Bernoulli(options.meronym_prob)) {
      size_t lo = d >= 2 ? d - 2 : 0;
      size_t hi = std::min(depth_count - 1, d + 2);
      size_t dd = lo + rng.Uniform(hi - lo + 1);
      SynsetId other = random_synset_at_depth(dd);
      if (other != sid) {
        (void)builder.AddRelation(sid, RelationType::kMeronym, other);
      }
    }
    if (levels[d].size() > 1 && rng.Bernoulli(options.derivation_prob)) {
      SynsetId other = random_synset_at_depth(d);
      if (other != sid) {
        (void)builder.AddRelation(sid, RelationType::kDerivation, other);
      }
    }
    if (rng.Bernoulli(options.domain_prob)) {
      // Domains are general concepts: depth 2..4.
      size_t dd = 2 + rng.Uniform(std::min<size_t>(3, depth_count - 2));
      if (dd < depth_count && !levels[dd].empty()) {
        SynsetId other = random_synset_at_depth(dd);
        if (other != sid) {
          (void)builder.AddRelation(sid, RelationType::kDomain, other);
        }
      }
    }
  }

  return std::move(builder).Build();
}

}  // namespace embellish::wordnet
