#include "wordnet/relation_extraction.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace embellish::wordnet {

namespace {

// Packed symmetric pair key (a < b).
uint64_t PairKey(TermId a, TermId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Status RelationExtractionOptions::Validate() const {
  if (window < 2) {
    return Status::InvalidArgument("window must be >= 2 tokens");
  }
  if (min_strength <= 0.0 || min_strength >= 1.0) {
    return Status::InvalidArgument("min_strength out of (0, 1)");
  }
  if (min_cooccurrences < 1) {
    return Status::InvalidArgument("min_cooccurrences must be >= 1");
  }
  if (max_relations_per_term < 1) {
    return Status::InvalidArgument("max_relations_per_term must be >= 1");
  }
  return Status::OK();
}

Result<std::vector<ExtractedRelation>> ExtractRelationsFromCorpus(
    const corpus::Corpus& corpus, const RelationExtractionOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  if (corpus.document_count() == 0) {
    return Status::InvalidArgument("corpus is empty");
  }

  // Windowed co-occurrence and marginal counts over token positions.
  std::unordered_map<uint64_t, uint32_t> pair_counts;
  std::unordered_map<TermId, uint64_t> term_counts;
  uint64_t total_tokens = 0;

  for (const corpus::Document& doc : corpus.documents()) {
    const auto& toks = doc.tokens;
    total_tokens += toks.size();
    for (size_t i = 0; i < toks.size(); ++i) {
      ++term_counts[toks[i]];
      const size_t end = std::min(toks.size(), i + options.window);
      for (size_t j = i + 1; j < end; ++j) {
        if (toks[i] == toks[j]) continue;
        ++pair_counts[PairKey(toks[i], toks[j])];
      }
    }
  }
  if (total_tokens == 0) {
    return Status::InvalidArgument("corpus contains no tokens");
  }

  // NPMI scoring: npmi = pmi / (-log p(a,b)), clamped to (0, 1].
  const double n = static_cast<double>(total_tokens);
  // Expected window pairings per token (normalization for p(a,b)).
  const double pairs_per_token = static_cast<double>(options.window - 1);
  const double total_pairs = n * pairs_per_token;

  std::vector<ExtractedRelation> relations;
  relations.reserve(pair_counts.size() / 8);
  for (const auto& [key, count] : pair_counts) {
    if (count < options.min_cooccurrences) continue;
    TermId a = static_cast<TermId>(key >> 32);
    TermId b = static_cast<TermId>(key & 0xFFFFFFFFu);
    const double p_ab = static_cast<double>(count) / total_pairs;
    const double p_a = static_cast<double>(term_counts[a]) / n;
    const double p_b = static_cast<double>(term_counts[b]) / n;
    const double pmi = std::log(p_ab / (p_a * p_b));
    const double npmi = pmi / -std::log(p_ab);
    if (npmi < options.min_strength) continue;
    relations.push_back(
        ExtractedRelation{a, b, std::min(1.0, npmi)});
  }

  // Keep the strongest max_relations_per_term per endpoint.
  std::sort(relations.begin(), relations.end(),
            [](const ExtractedRelation& x, const ExtractedRelation& y) {
              if (x.strength != y.strength) return x.strength > y.strength;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  std::unordered_map<TermId, size_t> degree;
  std::vector<ExtractedRelation> kept;
  kept.reserve(relations.size());
  for (const ExtractedRelation& rel : relations) {
    size_t& da = degree[rel.a];
    size_t& db = degree[rel.b];
    if (da >= options.max_relations_per_term ||
        db >= options.max_relations_per_term) {
      continue;
    }
    ++da;
    ++db;
    kept.push_back(rel);
  }
  return kept;
}

}  // namespace embellish::wordnet
