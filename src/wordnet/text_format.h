// Line-oriented text serialization for WordNetDatabase.
//
// Format (version header, then terms, synsets, relations):
//   embellish-wordnet 1
//   terms <N>
//   <text>                      x N   (term id = order of appearance)
//   synsets <M>
//   S <tid> [<tid> ...]         x M   (synset id = order of appearance)
//   R <from-sid> <relation> <to-sid>  (every directed edge, inverses too)
//
// The loader validates the reconstructed database, so a corrupted file is
// reported as Status::Corruption rather than silently loaded.

#ifndef EMBELLISH_WORDNET_TEXT_FORMAT_H_
#define EMBELLISH_WORDNET_TEXT_FORMAT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::wordnet {

/// \brief Serializes `db` into the text format.
std::string SerializeDatabase(const WordNetDatabase& db);

/// \brief Parses a database from the text format and validates it.
Result<WordNetDatabase> ParseDatabase(const std::string& text);

/// \brief Writes the text format to a file.
Status SaveDatabaseToFile(const WordNetDatabase& db, const std::string& path);

/// \brief Reads a database from a file.
Result<WordNetDatabase> LoadDatabaseFromFile(const std::string& path);

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_TEXT_FORMAT_H_
