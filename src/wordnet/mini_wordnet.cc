#include "wordnet/mini_wordnet.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "wordnet/builder.h"

namespace embellish::wordnet {

namespace {

// Thin DSL over WordNetBuilder: synsets are memoized by their head term so
// hypernym chains can share prefixes; every AddRelation failure here is a
// programming error in the table below, hence the asserts.
class MiniBuilder {
 public:
  // Creates (or fetches) the synset whose head term is texts[0].
  SynsetId Syn(const std::vector<std::string>& texts) {
    auto it = by_head_.find(texts[0]);
    if (it != by_head_.end()) return it->second;
    SynsetId sid = builder_.AddSynset(texts);
    by_head_.emplace(texts[0], sid);
    return sid;
  }

  // Builds a hypernym chain root-first: Chain({"entity", "a", "b"}) makes
  // b -> a -> entity and returns b's synset. Multi-synonym nodes use '|'
  // separators: "osteosarcoma|osteogenic sarcoma".
  SynsetId Chain(const std::vector<std::string>& nodes) {
    SynsetId prev = kInvalidSynsetId;
    for (const std::string& node : nodes) {
      SynsetId cur = Syn(SplitSynonyms(node));
      if (prev != kInvalidSynsetId && !HasHypernym(cur)) {
        Status st = builder_.AddHypernym(cur, prev);
        assert(st.ok());
        has_hypernym_.insert(cur);
      }
      prev = cur;
    }
    return prev;
  }

  void Relate(const std::string& from_head, RelationType type,
              const std::string& to_head) {
    auto f = by_head_.find(from_head);
    auto t = by_head_.find(to_head);
    assert(f != by_head_.end() && t != by_head_.end());
    Status st = builder_.AddRelation(f->second, type, t->second);
    assert(st.ok());
    (void)st;
  }

  Result<WordNetDatabase> Build() && { return std::move(builder_).Build(); }

 private:
  static std::vector<std::string> SplitSynonyms(const std::string& node) {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= node.size(); ++i) {
      if (i == node.size() || node[i] == '|') {
        out.push_back(node.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  }

  bool HasHypernym(SynsetId sid) const { return has_hypernym_.count(sid) > 0; }

  WordNetBuilder builder_;
  std::unordered_map<std::string, SynsetId> by_head_;
  std::unordered_set<SynsetId> has_hypernym_;
};

}  // namespace

Result<WordNetDatabase> BuildMiniWordNet() {
  MiniBuilder b;

  // --- People (paper: 'sir thomas wyatt' (7)) ---
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "person", "writer", "sir thomas wyatt"});

  // --- Respiratory / physiological states ('hypocapnia' (6)) ---
  b.Chain({"entity", "abstraction", "state", "condition",
           "physiological state", "respiratory condition",
           "hypocapnia|acapnia"});
  b.Chain({"entity", "abstraction", "state", "condition",
           "physiological state", "respiratory condition",
           "hypercapnia|hypercarbia"});
  b.Chain({"entity", "abstraction", "state", "condition",
           "physiological state", "respiratory condition", "asphyxia"});
  b.Chain({"entity", "abstraction", "state", "condition",
           "physiological state", "oxygen debt"});
  b.Chain({"entity", "abstraction", "state", "condition",
           "physiological state", "hyperthermia|hyperthermy"});
  b.Chain({"entity", "abstraction", "state", "symptom"});

  // --- Cancers ('osteosarcoma' (14)); siblings from the §3.3 snippet ---
  b.Chain({"entity", "abstraction", "state", "condition", "pathological state",
           "ill health", "illness|sickness", "disease", "neoplasm",
           "malignant neoplasm", "cancer", "sarcoma", "bone sarcoma",
           "osteoid tumor", "osteosarcoma|osteogenic sarcoma"});
  b.Chain({"entity", "abstraction", "state", "condition", "pathological state",
           "ill health", "illness|sickness", "disease", "neoplasm",
           "malignant neoplasm", "cancer", "sarcoma", "myosarcoma"});
  b.Chain({"entity", "abstraction", "state", "condition", "pathological state",
           "ill health", "illness|sickness", "disease", "neoplasm",
           "malignant neoplasm", "cancer", "sarcoma", "neurosarcoma|malignant neuroma"});
  b.Chain({"entity", "abstraction", "state", "condition", "pathological state",
           "ill health", "illness|sickness", "disease", "neoplasm",
           "malignant neoplasm", "cancer", "sarcoma",
           "rhabdomyosarcoma|rhabdosarcoma"});

  // --- Plant families ('amaranthaceae' (8)); §3.3 snippet siblings ---
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "plant", "flowering plant", "plant family",
           "amaranthaceae|family amaranthaceae|amaranth family"});
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "plant", "flowering plant", "plant family", "batidaceae"});
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "plant", "flowering plant", "plant family", "carpetweed family|family tetragoniaceae"});
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "plant", "vascular plant", "woody plant", "tree",
           "angiospermous tree", "chestnut", "american chestnut"});

  // --- Terrorism cluster ('terrorism' (9), 'abu sayyaf' (7)) ---
  b.Chain({"entity", "abstraction", "psychological feature", "event", "act",
           "activity", "wrongdoing", "transgression", "crime", "terrorism"});
  b.Chain({"entity", "abstraction", "psychological feature", "event", "act",
           "activity", "wrongdoing", "transgression", "crime", "terrorism",
           "act of terrorism|terrorist act"});
  b.Chain({"entity", "abstraction", "group", "social group", "organization",
           "political organization",
           "terrorist organization|foreign terrorist organization",
           "abu sayyaf|bearer of the sword"});
  b.Chain({"entity", "abstraction", "group", "social group", "organization",
           "political organization",
           "terrorist organization|foreign terrorist organization",
           "aksa martyrs brigades"});
  b.Chain({"entity", "abstraction", "group", "social group", "organization",
           "political organization",
           "terrorist organization|foreign terrorist organization",
           "abu hafs al-masri brigades"});

  // --- Medical care ('therapy', 'radiation therapy') ---
  b.Chain({"entity", "abstraction", "psychological feature", "event", "act",
           "medical care", "therapy", "radiation therapy",
           "accelerated radiation therapy"});

  // --- Places ('huntsville' (9), 'smyrna' (7), 'lut desert' (6)) ---
  b.Chain({"entity", "physical entity", "object", "location", "region",
           "district", "administrative district", "municipality", "city",
           "huntsville"});
  b.Chain({"entity", "physical entity", "object", "location", "region",
           "geographical area", "urban area", "smyrna"});
  b.Chain({"entity", "physical entity", "object", "location", "region",
           "desert", "lut desert"});

  // --- Substances ('fool's gold' (6), water, nitrogen) ---
  b.Chain({"entity", "physical entity", "object", "substance", "material",
           "mineral", "fool's gold|pyrite"});
  b.Chain({"entity", "physical entity", "object", "substance", "liquid",
           "water"});
  b.Chain({"entity", "physical entity", "object", "substance", "element",
           "nitrogen"});
  b.Chain({"entity", "physical entity", "object", "part", "tissue|tissues"});

  // --- Taxonomy genera ('acipenser' (7), 'brama' (7),
  //     'family eschrichtiidae' (7)) ---
  b.Chain({"entity", "abstraction", "group", "biological group",
           "taxonomic group", "genus", "fish genus", "acipenser"});
  b.Chain({"entity", "abstraction", "group", "biological group",
           "taxonomic group", "genus", "fish genus", "brama"});
  b.Chain({"entity", "abstraction", "group", "biological group",
           "taxonomic group", "family", "mammal family",
           "eschrichtiidae|family eschrichtiidae"});

  // --- Animals ('yellow-breasted bunting' (14), 'ectozoon' (7)) ---
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "animal", "chordate", "vertebrate", "bird", "passerine",
           "oscine", "finch", "bunting", "old world bunting",
           "yellow-breasted bunting"});
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "animal", "parasite", "ectozoon|ectoparasite"});
  b.Chain({"entity", "physical entity", "object", "living thing", "organism",
           "fungus", "yeast", "active dry yeast"});

  // --- Artifacts ('mainspring' (9), 'love knot' (10), 'pigeon loft' (7)) ---
  b.Chain({"entity", "physical entity", "object", "artifact",
           "instrumentality", "device", "mechanism", "mechanical device",
           "spring", "mainspring"});
  b.Chain({"entity", "physical entity", "object", "artifact",
           "instrumentality", "device", "mechanism", "mechanical device",
           "spring", "watch spring"});
  b.Chain({"entity", "physical entity", "object", "artifact",
           "instrumentality", "device", "fastener", "knot", "bow knot",
           "fancy knot", "love knot"});
  b.Chain({"entity", "physical entity", "object", "artifact", "structure",
           "shelter", "loft", "pigeon loft"});
  b.Chain({"entity", "physical entity", "object", "artifact",
           "instrumentality", "equipment", "exercise device", "threadmill"});
  b.Chain({"entity", "physical entity", "object", "artifact",
           "instrumentality", "device", "mechanism", "mechanical device",
           "timepiece", "watch"});

  // --- Astronomy ('sign of the zodiac' (5), 'saturn') ---
  b.Chain({"entity", "abstraction", "attribute", "shape", "plane figure",
           "sign of the zodiac"});
  b.Chain({"entity", "physical entity", "object", "natural object",
           "celestial body", "planet", "saturn"});
  b.Chain({"entity", "abstraction", "cognition", "discipline", "science",
           "astronomy"});

  // --- Wine ('moustille' from Figure 1's bucket 37) ---
  b.Chain({"entity", "physical entity", "object", "substance", "food",
           "beverage", "wine", "moustille"});

  // --- General/polysemous filler terms from the intro's example queries ---
  b.Chain({"entity", "abstraction", "measure", "time"});
  b.Chain({"entity", "abstraction", "attribute", "property", "wetness",
           "soaked"});
  b.Chain({"entity", "abstraction", "attribute", "property", "dryness",
           "dry"});
  b.Chain({"entity", "abstraction", "attribute", "property", "activeness",
           "active"});
  b.Chain({"entity", "abstraction", "relation", "remainder", "residual"});
  b.Chain({"entity", "physical entity", "process", "natural process",
           "radiation"});
  b.Chain({"entity", "physical entity", "process", "natural process",
           "flooding"});
  b.Chain({"entity", "physical entity", "process", "change", "acceleration",
           "accelerated"});

  // --- Non-hierarchy relations exercising every type Algorithm 1 visits ---
  b.Relate("hypercapnia", RelationType::kAntonym, "hypocapnia");
  b.Relate("wetness", RelationType::kAntonym, "dryness");
  b.Relate("terrorism", RelationType::kDerivation, "act of terrorism");
  b.Relate("watch", RelationType::kMeronym, "watch spring");  // part: spring
  b.Relate("mainspring", RelationType::kHolonym, "watch");
  b.Relate("abu sayyaf", RelationType::kDomain, "terrorism");
  b.Relate("saturn", RelationType::kDomain, "astronomy");
  b.Relate("sign of the zodiac", RelationType::kDomain, "astronomy");
  b.Relate("moustille", RelationType::kDerivation, "wine");
  b.Relate("yeast", RelationType::kDomain, "wine");

  return std::move(b).Build();
}

}  // namespace embellish::wordnet
