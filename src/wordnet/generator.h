// Deterministic synthetic lexical database, standing in for the WordNet 2.x
// noun database (117,798 nouns / 82,115 synsets) which cannot be shipped
// with this repository.
//
// The generator reproduces the *structural* properties Algorithms 1-2 and the
// Section 5.1 metrics depend on:
//   * a single hypernym DAG rooted at 'entity' (every noun generalizes to it,
//     as the paper observes in Section 3.3);
//   * a specificity (= depth) distribution calibrated to Figure 2: range
//     0..18, exactly 1 synset at depth 0 and 4 at depth 1, mode at 7 holding
//     roughly one-third of the terms;
//   * synonymy (multi-term synsets) and polysemy (multi-synset terms) at
//     WordNet-like rates (~1.8 words/synset, ~1.2 senses/word);
//   * antonym, meronym/holonym, derivational and domain edges in realistic
//     proportions, since Algorithm 1's traversal order distinguishes them.
// Term texts are pronounceable pseudo-words (deterministic), with occasional
// multi-word collocations mirroring entries like "family amaranthaceae".

#ifndef EMBELLISH_WORDNET_GENERATOR_H_
#define EMBELLISH_WORDNET_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::wordnet {

/// \brief Parameters for the synthetic lexicon.
struct SyntheticWordNetOptions {
  /// Approximate number of distinct terms to generate. The real noun
  /// database has 117,798; tests use much smaller values.
  size_t target_term_count = 117798;

  /// PRNG seed; equal options produce identical databases.
  uint64_t seed = 2010;

  /// Maximum hypernym depth (Figure 2 tops out at 18).
  size_t max_depth = 18;

  /// Probability that a non-root synset receives a second hypernym edge
  /// (to another synset at the same depth as its primary parent, so the
  /// shortest-path specificity is unchanged).
  double extra_hypernym_prob = 0.05;

  /// Fractions of synsets receiving each non-hierarchy relation.
  double antonym_prob = 0.02;
  double meronym_prob = 0.08;
  double derivation_prob = 0.05;
  double domain_prob = 0.03;

  Status Validate() const;
};

/// \brief Generates the synthetic lexicon. Deterministic given options.
Result<WordNetDatabase> GenerateSyntheticWordNet(
    const SyntheticWordNetOptions& options);

/// \brief The Figure 2 depth profile: relative synset weight per depth
///        (index = depth, 0..18). Exposed for tests and the fig2 bench.
const double* Figure2DepthWeights();
inline constexpr size_t kFigure2DepthCount = 19;

}  // namespace embellish::wordnet

#endif  // EMBELLISH_WORDNET_GENERATOR_H_
