// Kushilevitz–Ostrovsky computationally-private information retrieval
// (FOCS 1997), as specified in the paper's Appendix A.1 and used as the
// baseline "Alternate Retrieval Method" in Section 4 / Section 5.2.
//
// The server holds a private database organized as an r x c matrix of bits.
// To fetch column y privately, the user sends c numbers q_1..q_c in Z*_n
// where q_y is a quadratic non-residue (with Jacobi symbol +1) and all other
// q_j are quadratic residues. For every row i the server returns
//   gamma_i = prod_j v_ij,  v_ij = q_j^2 if b_ij = 0 else q_j.
// gamma_i is a QR iff b_iy = 0, which the user tests with the factorization
// of n. One protocol execution therefore retrieves one whole column — in the
// paper's usage, one term's padded inverted list out of a bucket.

#ifndef EMBELLISH_CRYPTO_PIR_H_
#define EMBELLISH_CRYPTO_PIR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace embellish::crypto {

/// \brief The bit-matrix "database" the PIR server answers over.
///
/// Rows are bit positions, columns are items (inverted lists in the paper's
/// usage). Bits are stored packed, row-major.
class PirDatabase {
 public:
  /// \brief Creates an all-zero matrix of `rows` x `cols` bits.
  PirDatabase(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void SetBit(size_t row, size_t col, bool value);
  bool GetBit(size_t row, size_t col) const;

  /// \brief Number of 64-bit words ExtractRow writes per row.
  size_t RowWords() const { return (cols_ + 63) / 64; }

  /// \brief Copies row `row` into `words` (little-endian bit order: column j
  ///        of the row is `(words[j / 64] >> (j % 64)) & 1`). `words` must
  ///        hold RowWords() entries. This is the hot-path accessor: the PIR
  ///        answer kernel reads whole words instead of calling GetBit per
  ///        (row, column) pair.
  void ExtractRow(size_t row, uint64_t* words) const;

  /// \brief Loads column `col` from bytes (MSB-first within each byte).
  void SetColumnFromBytes(size_t col, const std::vector<uint8_t>& bytes);

  /// \brief Size of the database in bytes (for storage accounting).
  size_t SizeBytes() const { return bits_.size(); }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<uint8_t> bits_;  // packed, row-major, 8 bits per byte
};

/// \brief PIR query: the modulus and one residue per database column.
struct PirQuery {
  bignum::BigInt n;
  std::vector<bignum::BigInt> q;  // size = cols

  /// \brief Wire size in bytes: (1 + cols) values of KeyLen bits.
  size_t WireBytes() const;
};

/// \brief PIR response: one residue per database row.
struct PirResponse {
  std::vector<bignum::BigInt> gamma;  // size = rows

  /// \brief Wire size in bytes given the query's key length.
  size_t WireBytes(size_t key_bytes) const { return gamma.size() * key_bytes; }
};

/// \brief Client side: key state, query generation, response decoding.
class PirClient {
 public:
  /// \brief Generates a fresh n = p1*p2 of `key_bits` bits.
  static Result<PirClient> Create(size_t key_bits, Rng* rng);

  /// \brief Builds a query for column `target_col` of a `cols`-wide database.
  Result<PirQuery> BuildQuery(size_t target_col, size_t cols, Rng* rng) const;

  /// \brief Decodes the response into the target column's bits.
  Result<std::vector<bool>> DecodeResponse(const PirResponse& response) const;

  size_t key_bytes() const { return (n_.BitLength() + 7) / 8; }
  const bignum::BigInt& n() const { return n_; }

  /// \brief True iff `v` is a quadratic residue mod n (uses the trapdoor).
  bool IsQuadraticResidue(const bignum::BigInt& v) const;

 private:
  PirClient() = default;

  bignum::BigInt p1_;
  bignum::BigInt p2_;
  bignum::BigInt n_;
  bignum::BigInt p1_half_;  // (p1-1)/2
  bignum::BigInt p2_half_;  // (p2-1)/2
  std::shared_ptr<bignum::MontgomeryContext> mont_p1_;
  std::shared_ptr<bignum::MontgomeryContext> mont_p2_;
};

/// \brief Operation counters for one Answer/AnswerBatch evaluation.
///
/// The accounting keeps the batch amortization claim truthful: work shared
/// across the queries of a sweep (row extraction) is counted once per sweep,
/// work owned by a query (its table build, its per-row MontMuls) is counted
/// per query. `mont_muls` for a single query equals exactly what `Answer`
/// reports through `ops_out`, so batch-vs-serial op comparisons are
/// apples-to-apples.
struct PirBatchStats {
  uint64_t queries = 0;       ///< queries answered
  uint64_t sweeps = 0;        ///< passes over the bit matrix (sub-batches)
  uint64_t budget_splits = 0; ///< extra sweeps forced by the table budget
  uint64_t rows_extracted = 0;   ///< rows pulled from the matrix, shared per sweep
  uint64_t mont_muls = 0;        ///< modular multiplications, summed over queries
  uint64_t table_build_muls = 0; ///< subset of mont_muls spent building tables
  uint64_t table_queries = 0;    ///< queries on the subset-product (table) path
  /// Vector Montgomery multiplications issued on the SIMD lane path — one per
  /// kernel invocation, however many lanes it carried. Domain conversions
  /// (pack/unpack) are excluded, mirroring mont_muls. Zero on a scalar sweep.
  uint64_t simd_lane_muls = 0;
  /// Query-occupied lanes summed over those invocations; padding lanes are
  /// not counted, so simd_active_lanes <= 8 * simd_lane_muls always.
  uint64_t simd_active_lanes = 0;
  double cpu_ms = 0.0;           ///< thread-CPU ms summed across workers

  /// \brief Mean lane occupancy of the SIMD path,
  ///        simd_active_lanes / (8 * simd_lane_muls); 0 when no vector kernel
  ///        ran. 1.0 means every invocation carried a full 8 lanes.
  double simd_fill() const;

  void Add(const PirBatchStats& other);
};

/// \brief Server side: evaluates queries against a PirDatabase.
///
/// Each row's gamma is an independent product, so Answer parallelizes across
/// rows when a thread pool is supplied: every worker owns a Montgomery
/// scratch, a row-word buffer and an accumulator, and the inner column loop
/// performs zero heap allocations per modular multiplication.
///
/// AnswerBatch answers Q queries in one matrix x matrix sweep: each row of
/// the bit matrix is extracted once and every query's per-column state
/// (subset-product tables or factor chain) is consulted against it, turning
/// Q passes over the database into one. Per query the factor multiset and
/// multiplication order are identical to Answer, so the responses are
/// bit-identical to Q serial Answer calls.
///
/// When the CPU has a vector Montgomery tier (see bignum/montgomery_lanes.h),
/// members of a sweep that share a limb width additionally advance through
/// the SIMD lane engine up to 8 at a time: one extracted row folds into up to
/// 8 queries' accumulators per kernel call, and the subset-product tables of
/// a lane group are built in lane form sharing one v-chain. Lane outputs are
/// fully reduced, so responses stay bit-identical to the scalar path;
/// PirBatchStats::simd_fill() reports how full the lanes ran.
class PirServer {
 public:
  /// \brief Default batch-wide budget for the subset-product tables. A batch
  ///        holds at most this many table bytes live at once; wider batches
  ///        degrade to consecutive sub-batch sweeps, never to the naive path.
  static constexpr size_t kDefaultTableBudgetBytes = size_t{4} << 20;

  /// \brief `pool` may be null (serial) and must outlive the server.
  explicit PirServer(std::shared_ptr<const PirDatabase> database,
                     ThreadPool* pool = nullptr);

  /// \brief Computes gamma_i for every row (the whole-column answer).
  ///        `ops_out`, if non-null, receives the number of modular
  ///        multiplications actually performed by the row-product evaluation
  ///        (the subset-product tables need far fewer than the naive
  ///        rows*cols; conversions are not counted), and `cpu_ms_out`, if
  ///        non-null, the thread-CPU milliseconds consumed summed across all
  ///        participating workers.
  Result<PirResponse> Answer(const PirQuery& query,
                             uint64_t* ops_out = nullptr,
                             double* cpu_ms_out = nullptr) const;

  /// \brief Answers all `queries` with shared row extraction (see class
  ///        comment). All-or-nothing: the first invalid query fails the whole
  ///        call. Response i corresponds to queries[i]; counters are added
  ///        into `stats` when non-null.
  Result<std::vector<PirResponse>> AnswerBatch(
      std::span<const PirQuery> queries,
      PirBatchStats* stats = nullptr) const;

  /// \brief Pointer form for callers whose queries are not contiguous (the
  ///        retrieval layer batches decoded frames without copying them).
  Result<std::vector<PirResponse>> AnswerBatch(
      std::span<const PirQuery* const> queries,
      PirBatchStats* stats = nullptr) const;

  /// \brief Overrides the batch-wide table budget (tests and tuning).
  void set_table_budget_bytes(size_t bytes) { table_budget_bytes_ = bytes; }
  size_t table_budget_bytes() const { return table_budget_bytes_; }

 private:
  std::shared_ptr<const PirDatabase> database_;
  ThreadPool* pool_;  // not owned; null => serial
  size_t table_budget_bytes_ = kDefaultTableBudgetBytes;
};

}  // namespace embellish::crypto

#endif  // EMBELLISH_CRYPTO_PIR_H_
