#include "crypto/benaloh.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bignum/modmath.h"
#include "bignum/montgomery_lanes.h"
#include "bignum/prime.h"
#include "common/strings.h"

namespace embellish::crypto {

using bignum::BigInt;

uint64_t ExactPowerOfThree(uint64_t v) {
  if (v < 3) return 0;
  uint64_t k = 0;
  while (v % 3 == 0) {
    v /= 3;
    ++k;
  }
  return v == 1 ? k : 0;
}

std::vector<uint64_t> DistinctPrimeFactors(uint64_t v) {
  std::vector<uint64_t> factors;
  for (uint64_t p = 2; p * p <= v; p += (p == 2 ? 1 : 2)) {
    if (v % p == 0) {
      factors.push_back(p);
      while (v % p == 0) v /= p;
    }
  }
  if (v > 1) factors.push_back(v);
  return factors;
}

Status BenalohKeyOptions::Validate() const {
  if (key_bits < 128) {
    return Status::InvalidArgument("key_bits must be >= 128");
  }
  if (key_bits > 4096) {
    return Status::InvalidArgument("key_bits must be <= 4096");
  }
  if (r < 2) {
    return Status::InvalidArgument("message space r must be >= 2");
  }
  if (r % 2 == 0) {
    // p2 is an odd prime, so p2 - 1 is even and gcd(r, p2 - 1) = 1 is
    // unsatisfiable for even r. Benaloh deployments use odd r (e.g. 3^k).
    return Status::InvalidArgument("message space r must be odd");
  }
  if (r > (1ULL << 32)) {
    return Status::InvalidArgument(
        "message space r above 2^32 (BSGS/decryption impractical)");
  }
  if (BigInt(r).BitLength() + 16 > key_bits / 2) {
    return Status::InvalidArgument(
        "message space r too large relative to key_bits");
  }
  return Status::OK();
}

BenalohPublicKey::BenalohPublicKey(BigInt n, BigInt g, uint64_t r)
    : n_(std::move(n)), g_(std::move(g)), r_(r) {
  auto ctx = bignum::MontgomeryContext::Create(n_);
  assert(ctx.ok() && "modulus from keygen is odd");
  mont_ = std::make_shared<bignum::MontgomeryContext>(std::move(ctx).value());
}

Result<BenalohCiphertext> BenalohPublicKey::Encrypt(uint64_t m,
                                                    Rng* rng) const {
  if (m >= r_) {
    return Status::InvalidArgument(
        StringPrintf("message %llu outside Z_%llu",
                     static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(r_)));
  }
  BigInt u = bignum::RandomUnit(n_, rng);
  BigInt gm = mont_->ModExp(g_, BigInt(m));
  BigInt ur = mont_->ModExp(u, BigInt(r_));
  return BenalohCiphertext{mont_->Mul(gm, ur)};
}

Result<std::vector<BenalohCiphertext>> BenalohPublicKey::EncryptBatch(
    const std::vector<uint64_t>& ms, Rng* rng, ThreadPool* pool) const {
  for (uint64_t m : ms) {
    if (m >= r_) {
      return Status::InvalidArgument(
          StringPrintf("message %llu outside Z_%llu",
                       static_cast<unsigned long long>(m),
                       static_cast<unsigned long long>(r_)));
    }
  }
  // Nonces come out of the (non-thread-safe) rng up front, in message order.
  std::vector<BigInt> nonces;
  nonces.reserve(ms.size());
  for (size_t i = 0; i < ms.size(); ++i) {
    nonces.push_back(bignum::RandomUnit(n_, rng));
  }

  std::vector<BenalohCiphertext> out(ms.size());
  const bignum::MontgomeryContext& mont = *mont_;
  const size_t k = mont.limb_count();
  const std::vector<uint64_t> g_mont = mont.ToMontgomery(g_);
  const BigInt r_exp(r_);

  // Every message shares this key's modulus, so the batch is exactly the
  // multi-buffer shape the SIMD lane engine wants: up to kMaxLanes
  // encryptions advance in lockstep, g^m via per-lane small exponents and
  // u^r via the shared exponent. Kernel outputs are bit-identical to the
  // scalar path (montgomery_lanes_test pins this), so dispatch is purely a
  // throughput decision.
  constexpr size_t kLanes = bignum::MontgomeryLaneContext::kMaxLanes;
  const bignum::MontgomeryContext* lane_ptrs[kLanes];
  std::fill(std::begin(lane_ptrs), std::end(lane_ptrs), &mont);
  const auto lane_ctx = bignum::MontgomeryLaneContext::Create(lane_ptrs);
  const bool use_lanes = lane_ctx.ok() && lane_ctx->vectorized();

  auto encrypt_range = [&](size_t begin, size_t end) {
    bignum::MontgomeryContext::Scratch scratch(mont);
    if (use_lanes) {
      const bignum::MontgomeryLaneContext& lc = *lane_ctx;
      bignum::MontgomeryLaneContext::Scratch lscratch(lc);
      std::vector<std::vector<uint64_t>> u(kLanes, std::vector<uint64_t>(k));
      std::vector<std::vector<uint64_t>> plain(kLanes,
                                               std::vector<uint64_t>(k));
      std::vector<uint64_t> sink(k);  // padding lanes' discarded output
      auto g_block = lc.MakeBlock();
      auto gm_block = lc.MakeBlock();
      auto u_block = lc.MakeBlock();
      auto ur_block = lc.MakeBlock();
      {
        const uint64_t* gp[kLanes];
        std::fill(std::begin(gp), std::end(gp), g_mont.data());
        lc.Pack(gp, &g_block, &lscratch);
      }
      for (size_t i = begin; i < end; i += kLanes) {
        const size_t group = std::min(kLanes, end - i);
        const uint64_t* up[kLanes];
        uint64_t* outp[kLanes];
        uint64_t exps[kLanes];
        for (size_t l = 0; l < group; ++l) {
          mont.ToMontgomeryInto(nonces[i + l], u[l].data(), &scratch);
          up[l] = u[l].data();
          outp[l] = plain[l].data();
          exps[l] = ms[i + l];
        }
        for (size_t l = group; l < kLanes; ++l) {  // ragged tail: pad lanes
          up[l] = u[0].data();
          outp[l] = sink.data();
          exps[l] = 0;
        }
        lc.Pack(up, &u_block, &lscratch);
        lc.ModExpSmall(g_block, exps, &gm_block, &lscratch);
        lc.ModExpUniform(u_block, r_exp, &ur_block, &lscratch);
        lc.Mul(gm_block, ur_block, &gm_block, &lscratch);
        lc.FromMontgomery(gm_block, outp, &lscratch);
        for (size_t l = 0; l < group; ++l) {
          out[i + l].value = BigInt::FromLimbs(plain[l]);
        }
      }
      return;
    }
    std::vector<uint64_t> gm(k);
    std::vector<uint64_t> u_mont(k);
    std::vector<uint64_t> ur(k);
    for (size_t i = begin; i < end; ++i) {
      mont.ModExpInto(g_mont.data(), BigInt(ms[i]), gm.data(), &scratch);
      mont.ToMontgomeryInto(nonces[i], u_mont.data(), &scratch);
      mont.ModExpInto(u_mont.data(), r_exp, ur.data(), &scratch);
      mont.MontMulInto(gm.data(), ur.data(), gm.data(), &scratch);
      mont.FromMontgomeryInto(gm.data(), ur.data(), &scratch);
      out[i].value = BigInt::FromLimbs(ur);
    }
  };

  if (pool != nullptr) {
    // Grain of one lane group so parallel splits stay lane-aligned and the
    // vector lanes run full except at range tails.
    pool->ParallelFor(0, ms.size(), /*min_grain=*/use_lanes ? kLanes : 1,
                      encrypt_range);
  } else {
    encrypt_range(0, ms.size());
  }
  return out;
}

BenalohCiphertext BenalohPublicKey::Add(const BenalohCiphertext& a,
                                        const BenalohCiphertext& b) const {
  return BenalohCiphertext{mont_->Mul(a.value, b.value)};
}

BenalohCiphertext BenalohPublicKey::ScalarMul(const BenalohCiphertext& c,
                                              uint64_t s) const {
  return BenalohCiphertext{mont_->ModExp(c.value, BigInt(s))};
}

std::vector<uint8_t> BenalohPublicKey::Serialize(
    const BenalohCiphertext& c) const {
  return c.value.ToBigEndianBytesPadded(CiphertextBytes());
}

Result<BenalohCiphertext> BenalohPublicKey::Deserialize(
    const std::vector<uint8_t>& bytes) const {
  if (bytes.size() != CiphertextBytes()) {
    return Status::Corruption("ciphertext wire size mismatch");
  }
  BigInt v = BigInt::FromBigEndianBytes(bytes);
  if (v >= n_) {
    return Status::Corruption("ciphertext not a residue mod n");
  }
  return BenalohCiphertext{std::move(v)};
}

Result<BenalohKeyPair> BenalohKeyPair::Generate(
    const BenalohKeyOptions& options, Rng* rng) {
  EMB_RETURN_NOT_OK(options.Validate());
  const BigInt r_big(options.r);
  const size_t half_bits = options.key_bits / 2;

  EMB_ASSIGN_OR_RETURN(
      BigInt p1, bignum::RandomPrimeCongruentOneModR(half_bits, r_big, rng));
  EMB_ASSIGN_OR_RETURN(
      BigInt p2, bignum::RandomPrimeCoprimePMinus1(
                     options.key_bits - half_bits, r_big, rng));

  BigInt n = p1 * p2;
  BigInt phi = (p1 - BigInt(1)) * (p2 - BigInt(1));
  BigInt phi_over_r = phi / r_big;

  // Select g whose image x = g^{phi/r} has order exactly r: for every prime
  // q | r we need x^{r/q} != 1, i.e. g^{phi/q} != 1 (mod n).
  std::vector<uint64_t> r_factors = DistinctPrimeFactors(options.r);
  auto mont_res = bignum::MontgomeryContext::Create(n);
  if (!mont_res.ok()) return mont_res.status();
  auto mont = std::make_shared<bignum::MontgomeryContext>(
      std::move(mont_res).value());

  BigInt g;
  bool found_g = false;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    g = bignum::RandomUnit(n, rng);
    bool all_nontrivial = true;
    for (uint64_t q : r_factors) {
      BigInt exp = phi / BigInt(q);
      if (mont->ModExp(g, exp).IsOne()) {
        all_nontrivial = false;
        break;
      }
    }
    if (all_nontrivial) {
      found_g = true;
      break;
    }
  }
  if (!found_g) {
    return Status::Internal("failed to find generator g");
  }

  BenalohKeyPair pair;
  pair.public_key_ = std::make_shared<BenalohPublicKey>(n, g, options.r);

  auto priv = std::make_shared<BenalohPrivateKey>();
  priv->p1_ = std::move(p1);
  priv->p2_ = std::move(p2);
  priv->n_ = n;
  priv->phi_ = phi;
  priv->phi_over_r_ = phi_over_r;
  priv->r_ = options.r;
  priv->mont_ = mont;
  priv->x_ = mont->ModExp(g, phi_over_r);
  EMB_ASSIGN_OR_RETURN(priv->x_inv_, bignum::ModInverse(priv->x_, n));
  priv->three_k_ = ExactPowerOfThree(options.r);

  // BSGS baby table: x^j for j in [0, t), t = ceil(sqrt(r)).
  priv->bsgs_t_ = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(options.r))));
  BigInt cur(1);
  priv->baby_.reserve(priv->bsgs_t_ * 2);
  for (uint64_t j = 0; j < priv->bsgs_t_; ++j) {
    priv->baby_.emplace(cur.ToHexString(), j);
    cur = mont->Mul(cur, priv->x_);
  }
  // giant = x^{-t} mod n.
  priv->giant_ = mont->ModExp(priv->x_inv_, BigInt(priv->bsgs_t_));

  pair.private_key_ = priv;
  return pair;
}

Result<uint64_t> BenalohPrivateKey::Decrypt(const BenalohCiphertext& c) const {
  return DecryptWith(c, BenalohDecryptMode::kAuto);
}

Result<uint64_t> BenalohPrivateKey::DecryptWith(
    const BenalohCiphertext& c, BenalohDecryptMode mode) const {
  if (c.value.IsZero() || c.value >= n_) {
    return Status::CryptoError("ciphertext outside Z*_n");
  }
  if (mode == BenalohDecryptMode::kAuto) {
    mode = three_k_ > 0 ? BenalohDecryptMode::kPowerOfThreeDigits
                        : BenalohDecryptMode::kBabyStepGiantStep;
  }
  if (mode == BenalohDecryptMode::kPowerOfThreeDigits && three_k_ == 0) {
    return Status::InvalidArgument("r is not a power of three");
  }

  // a = c^{phi/r} = x^m (mod n).
  BigInt a = mont_->ModExp(c.value, phi_over_r_);

  if (mode == BenalohDecryptMode::kBabyStepGiantStep) {
    // Find m = i*t + j with x^{m} = a  =>  a * (x^{-t})^i = x^j.
    BigInt gamma = a;
    for (uint64_t i = 0; i * bsgs_t_ < r_ + bsgs_t_; ++i) {
      auto it = baby_.find(gamma.ToHexString());
      if (it != baby_.end()) {
        uint64_t m = i * bsgs_t_ + it->second;
        if (m < r_) return m;
      }
      gamma = mont_->Mul(gamma, giant_);
    }
    return Status::CryptoError("BSGS discrete log not found (invalid ciphertext)");
  }

  // Digit-by-digit base-3 recovery: k modular exponentiations (App. A.2).
  const uint64_t k = three_k_;
  // w = x^{3^{k-1}} has order 3; precompute w and w^2 for digit matching.
  BigInt pow3_km1(1);
  for (uint64_t i = 0; i + 1 < k; ++i) pow3_km1 = pow3_km1 * BigInt(3);
  BigInt w = mont_->ModExp(x_, pow3_km1);
  BigInt w2 = mont_->Mul(w, w);

  uint64_t m = 0;
  uint64_t pow3_i = 1;   // 3^i
  BigInt residual = a;   // x^{m - (recovered digits)}
  BigInt exp = pow3_km1; // 3^{k-1-i}
  for (uint64_t i = 0; i < k; ++i) {
    BigInt probe = mont_->ModExp(residual, exp);
    uint64_t digit;
    if (probe.IsOne()) {
      digit = 0;
    } else if (probe == w) {
      digit = 1;
    } else if (probe == w2) {
      digit = 2;
    } else {
      return Status::CryptoError("digit recovery failed (invalid ciphertext)");
    }
    if (digit != 0) {
      m += digit * pow3_i;
      BigInt strip = mont_->ModExp(x_inv_, BigInt(digit * pow3_i));
      residual = mont_->Mul(residual, strip);
    }
    pow3_i *= 3;
    exp = exp / BigInt(3);
  }
  return m;
}

}  // namespace embellish::crypto
