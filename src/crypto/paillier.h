// Paillier cryptosystem (EUROCRYPT 1999) — the alternative additively
// homomorphic scheme referenced by the paper's Appendix A.2, which argues
// Benaloh is preferable for this workload because its ciphertexts are n-sized
// rather than n^2-sized. Implemented for the traffic/CPU ablation bench.
//
//   n = p*q,  g = n + 1,  lambda = lcm(p-1, q-1)
//   E(m) = (1 + m*n) * u^n mod n^2
//   D(c) = L(c^lambda mod n^2) * mu mod n,  L(x) = (x - 1) / n

#ifndef EMBELLISH_CRYPTO_PAILLIER_H_
#define EMBELLISH_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace embellish::crypto {

/// \brief A Paillier ciphertext; a residue modulo n^2.
struct PaillierCiphertext {
  bignum::BigInt value;

  bool operator==(const PaillierCiphertext&) const = default;
};

/// \brief Paillier public key (n; g is fixed to n+1).
class PaillierPublicKey {
 public:
  explicit PaillierPublicKey(bignum::BigInt n);

  const bignum::BigInt& n() const { return n_; }
  const bignum::BigInt& n_squared() const { return n2_; }

  /// \brief Ciphertext wire size in bytes — twice the modulus width.
  size_t CiphertextBytes() const { return (n2_.BitLength() + 7) / 8; }

  /// \brief E(m) for m < n.
  Result<PaillierCiphertext> Encrypt(const bignum::BigInt& m, Rng* rng) const;

  /// \brief Encrypts every message in `ms`, fanning the u^n modexps out over
  ///        `pool` (null => serial). Nonces are drawn from `rng` serially in
  ///        message order, so the output is identical to calling Encrypt in
  ///        a loop — threading changes only the wall clock.
  Result<std::vector<PaillierCiphertext>> EncryptBatch(
      const std::vector<bignum::BigInt>& ms, Rng* rng,
      ThreadPool* pool = nullptr) const;

  /// \brief Homomorphic addition.
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;

  /// \brief Scalar multiplication E(m)^s = E(m*s).
  PaillierCiphertext ScalarMul(const PaillierCiphertext& c,
                               uint64_t s) const;

 private:
  bignum::BigInt n_;
  bignum::BigInt n2_;
  std::shared_ptr<bignum::MontgomeryContext> mont_;  // modulo n^2
};

/// \brief Paillier private key.
class PaillierPrivateKey {
 public:
  Result<bignum::BigInt> Decrypt(const PaillierCiphertext& c) const;

 private:
  friend class PaillierKeyPair;

  bignum::BigInt n_;
  bignum::BigInt n2_;
  bignum::BigInt lambda_;
  bignum::BigInt mu_;
  std::shared_ptr<bignum::MontgomeryContext> mont_;  // modulo n^2
};

/// \brief A generated Paillier keypair.
class PaillierKeyPair {
 public:
  /// \brief `key_bits` is the size of n (so ciphertexts are 2*key_bits).
  static Result<PaillierKeyPair> Generate(size_t key_bits, Rng* rng);

  const PaillierPublicKey& public_key() const { return *public_key_; }
  const PaillierPrivateKey& private_key() const { return *private_key_; }

 private:
  PaillierKeyPair() = default;
  std::shared_ptr<PaillierPublicKey> public_key_;
  std::shared_ptr<PaillierPrivateKey> private_key_;
};

}  // namespace embellish::crypto

#endif  // EMBELLISH_CRYPTO_PAILLIER_H_
