// Benaloh "dense probabilistic encryption" (Workshop on Selected Areas of
// Cryptography, 1994) — the additively homomorphic cryptosystem used by the
// paper's Private Retrieval scheme (Algorithm 3/4/5 and Appendix A.2).
//
// Messages live in Z_r. Key generation picks primes p1, p2 with
//   r | (p1 - 1),  gcd(r, (p1-1)/r) = 1,  gcd(r, p2 - 1) = 1,
// modulus n = p1*p2, and g in Z*_n with g^{phi/r} != 1 (mod n) — strengthened
// here to g^{phi/q} != 1 for every prime q | r so that g^{phi/r} has order
// exactly r and decryption is unambiguous.
//
//   E(m) = g^m * u^r mod n           (u random unit)
//   E(m1) * E(m2) = E(m1 + m2 mod r) (additively homomorphic)
//   E(m)^s = E(m * s mod r)          (scalar multiplication)
//
// Two decryption procedures are provided, as in the paper's Appendix A.2:
// baby-step/giant-step in O(sqrt(r)) for arbitrary r, and the digit-by-digit
// procedure needing only k modular exponentiations when r = 3^k.
//
// NOTE ON RANDOMNESS: protocol nonces are drawn from the deterministic Rng so
// experiments are reproducible. A production deployment would substitute a
// CSPRNG; nothing in the interfaces would change.

#ifndef EMBELLISH_CRYPTO_BENALOH_H_
#define EMBELLISH_CRYPTO_BENALOH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace embellish::crypto {

/// \brief A Benaloh ciphertext; a residue modulo the public n.
struct BenalohCiphertext {
  bignum::BigInt value;

  bool operator==(const BenalohCiphertext&) const = default;
};

/// \brief Key-generation parameters.
struct BenalohKeyOptions {
  /// Modulus size in bits (the paper's KeyLen). 512 keeps benches fast while
  /// exercising multi-limb arithmetic; production would use >= 2048.
  size_t key_bits = 512;

  /// Message-space size r. The default 3^10 = 59049 admits the optimized
  /// k-exponentiation decryption and comfortably bounds the discretized
  /// relevance scores accumulated by Algorithm 4.
  uint64_t r = 59049;

  Status Validate() const;
};

/// \brief Public key: (n, g) plus the message-space size r.
class BenalohPublicKey {
 public:
  BenalohPublicKey(bignum::BigInt n, bignum::BigInt g, uint64_t r);

  const bignum::BigInt& n() const { return n_; }
  const bignum::BigInt& g() const { return g_; }
  uint64_t r() const { return r_; }

  /// \brief Ciphertext wire size in bytes (= KeyLen / 8, padded).
  size_t CiphertextBytes() const { return (n_.BitLength() + 7) / 8; }

  /// \brief E(m) = g^m u^r mod n. `m` must be < r.
  Result<BenalohCiphertext> Encrypt(uint64_t m, Rng* rng) const;

  /// \brief Encrypts every message in `ms`, fanning the modexps out over
  ///        `pool` (null => serial). Nonces are drawn from `rng` serially in
  ///        message order, so the output is identical to calling Encrypt in
  ///        a loop — threading changes only the wall clock.
  Result<std::vector<BenalohCiphertext>> EncryptBatch(
      const std::vector<uint64_t>& ms, Rng* rng,
      ThreadPool* pool = nullptr) const;

  /// \brief Homomorphic addition: E(m1)*E(m2) = E(m1+m2 mod r).
  BenalohCiphertext Add(const BenalohCiphertext& a,
                        const BenalohCiphertext& b) const;

  /// \brief Scalar multiplication: E(m)^s = E(m*s mod r).
  BenalohCiphertext ScalarMul(const BenalohCiphertext& c, uint64_t s) const;

  /// \brief Montgomery-form handle for hot loops (Algorithm 4's inner loop).
  const bignum::MontgomeryContext& mont() const { return *mont_; }

  /// \brief Fixed-width serialization, for traffic accounting.
  std::vector<uint8_t> Serialize(const BenalohCiphertext& c) const;
  Result<BenalohCiphertext> Deserialize(const std::vector<uint8_t>& bytes) const;

 private:
  bignum::BigInt n_;
  bignum::BigInt g_;
  uint64_t r_;
  std::shared_ptr<bignum::MontgomeryContext> mont_;
};

/// \brief Decryption strategy; kAuto picks k-exponentiation when r = 3^k.
enum class BenalohDecryptMode {
  kAuto,
  kBabyStepGiantStep,
  kPowerOfThreeDigits,
};

/// \brief Private key: factorization plus precomputed decryption tables.
class BenalohPrivateKey {
 public:
  /// \brief Decrypts; returns the message in [0, r).
  Result<uint64_t> Decrypt(const BenalohCiphertext& c) const;

  /// \brief Decrypts with an explicit strategy (for the decryption ablation).
  Result<uint64_t> DecryptWith(const BenalohCiphertext& c,
                               BenalohDecryptMode mode) const;

  const bignum::BigInt& p1() const { return p1_; }
  const bignum::BigInt& p2() const { return p2_; }

 private:
  friend class BenalohKeyPair;

  bignum::BigInt p1_;
  bignum::BigInt p2_;
  bignum::BigInt n_;
  bignum::BigInt phi_;
  bignum::BigInt phi_over_r_;
  bignum::BigInt x_;       // g^{phi/r} mod n; generator of the order-r group
  bignum::BigInt x_inv_;   // x^{-1} mod n
  uint64_t r_ = 0;
  uint64_t three_k_ = 0;   // k when r == 3^k, else 0

  // BSGS tables: baby[x^j] = j for j < t; giant_ = x^{-t}.
  uint64_t bsgs_t_ = 0;
  std::unordered_map<std::string, uint64_t> baby_;
  bignum::BigInt giant_;
  std::shared_ptr<bignum::MontgomeryContext> mont_;
};

/// \brief A generated keypair.
class BenalohKeyPair {
 public:
  /// \brief Generates keys per BenalohKeyOptions. Deterministic given `rng`.
  static Result<BenalohKeyPair> Generate(const BenalohKeyOptions& options,
                                         Rng* rng);

  const BenalohPublicKey& public_key() const { return *public_key_; }
  const BenalohPrivateKey& private_key() const { return *private_key_; }

 private:
  BenalohKeyPair() = default;
  std::shared_ptr<BenalohPublicKey> public_key_;
  std::shared_ptr<BenalohPrivateKey> private_key_;
};

/// \brief Returns k if v == 3^k (k >= 1), otherwise 0.
uint64_t ExactPowerOfThree(uint64_t v);

/// \brief Prime factorization by trial division; `v` is a small message-space
///        size (fits comfortably; not for cryptographic operands).
std::vector<uint64_t> DistinctPrimeFactors(uint64_t v);

}  // namespace embellish::crypto

#endif  // EMBELLISH_CRYPTO_BENALOH_H_
