#include "crypto/paillier.h"

#include <algorithm>
#include <cassert>

#include "bignum/modmath.h"
#include "bignum/montgomery_lanes.h"
#include "bignum/prime.h"

namespace embellish::crypto {

using bignum::BigInt;

PaillierPublicKey::PaillierPublicKey(BigInt n) : n_(std::move(n)) {
  n2_ = n_ * n_;
  auto ctx = bignum::MontgomeryContext::Create(n2_);
  assert(ctx.ok());
  mont_ = std::make_shared<bignum::MontgomeryContext>(std::move(ctx).value());
}

Result<PaillierCiphertext> PaillierPublicKey::Encrypt(const BigInt& m,
                                                      Rng* rng) const {
  if (m >= n_) {
    return Status::InvalidArgument("Paillier message must be < n");
  }
  // g = n+1 => g^m = 1 + m*n (mod n^2); avoids one modexp.
  BigInt gm = (BigInt(1) + m * n_) % n2_;
  BigInt u = bignum::RandomUnit(n_, rng);
  BigInt un = mont_->ModExp(u, n_);
  return PaillierCiphertext{mont_->Mul(gm, un)};
}

Result<std::vector<PaillierCiphertext>> PaillierPublicKey::EncryptBatch(
    const std::vector<BigInt>& ms, Rng* rng, ThreadPool* pool) const {
  for (const BigInt& m : ms) {
    if (m >= n_) {
      return Status::InvalidArgument("Paillier message must be < n");
    }
  }
  std::vector<BigInt> nonces;
  nonces.reserve(ms.size());
  for (size_t i = 0; i < ms.size(); ++i) {
    nonces.push_back(bignum::RandomUnit(n_, rng));
  }

  std::vector<PaillierCiphertext> out(ms.size());
  const bignum::MontgomeryContext& mont = *mont_;
  const size_t k = mont.limb_count();

  // The u^n modexp dominates; every lane shares the exponent n and the
  // modulus n^2, so up to kMaxLanes nonces ride one SIMD exponentiation.
  // The g^m half is 1 + m*n mod n^2 — no modexp at all — and stays scalar
  // per message.
  constexpr size_t kLanes = bignum::MontgomeryLaneContext::kMaxLanes;
  const bignum::MontgomeryContext* lane_ptrs[kLanes];
  std::fill(std::begin(lane_ptrs), std::end(lane_ptrs), &mont);
  const auto lane_ctx = bignum::MontgomeryLaneContext::Create(lane_ptrs);
  const bool use_lanes = lane_ctx.ok() && lane_ctx->vectorized();

  auto encrypt_range = [&](size_t begin, size_t end) {
    bignum::MontgomeryContext::Scratch scratch(mont);
    if (use_lanes) {
      const bignum::MontgomeryLaneContext& lc = *lane_ctx;
      bignum::MontgomeryLaneContext::Scratch lscratch(lc);
      std::vector<std::vector<uint64_t>> gm(kLanes, std::vector<uint64_t>(k));
      std::vector<std::vector<uint64_t>> u(kLanes, std::vector<uint64_t>(k));
      std::vector<std::vector<uint64_t>> plain(kLanes,
                                               std::vector<uint64_t>(k));
      std::vector<uint64_t> sink(k);  // padding lanes' discarded output
      auto gm_block = lc.MakeBlock();
      auto u_block = lc.MakeBlock();
      auto un_block = lc.MakeBlock();
      for (size_t i = begin; i < end; i += kLanes) {
        const size_t group = std::min(kLanes, end - i);
        const uint64_t* gp[kLanes];
        const uint64_t* up[kLanes];
        uint64_t* outp[kLanes];
        for (size_t l = 0; l < group; ++l) {
          // g = n+1 => g^m = 1 + m*n (mod n^2); avoids one modexp.
          const BigInt g_m = (BigInt(1) + ms[i + l] * n_) % n2_;
          mont.ToMontgomeryInto(g_m, gm[l].data(), &scratch);
          mont.ToMontgomeryInto(nonces[i + l], u[l].data(), &scratch);
          gp[l] = gm[l].data();
          up[l] = u[l].data();
          outp[l] = plain[l].data();
        }
        for (size_t l = group; l < kLanes; ++l) {  // ragged tail: pad lanes
          gp[l] = gm[0].data();
          up[l] = u[0].data();
          outp[l] = sink.data();
        }
        lc.Pack(up, &u_block, &lscratch);
        lc.ModExpUniform(u_block, n_, &un_block, &lscratch);
        lc.Pack(gp, &u_block, &lscratch);
        lc.Mul(u_block, un_block, &un_block, &lscratch);
        lc.FromMontgomery(un_block, outp, &lscratch);
        for (size_t l = 0; l < group; ++l) {
          out[i + l].value = BigInt::FromLimbs(plain[l]);
        }
      }
      return;
    }
    std::vector<uint64_t> gm_mont(k);
    std::vector<uint64_t> u_mont(k);
    std::vector<uint64_t> un(k);
    for (size_t i = begin; i < end; ++i) {
      // g = n+1 => g^m = 1 + m*n (mod n^2); avoids one modexp.
      const BigInt gm = (BigInt(1) + ms[i] * n_) % n2_;
      mont.ToMontgomeryInto(gm, gm_mont.data(), &scratch);
      mont.ToMontgomeryInto(nonces[i], u_mont.data(), &scratch);
      mont.ModExpInto(u_mont.data(), n_, un.data(), &scratch);
      mont.MontMulInto(gm_mont.data(), un.data(), un.data(), &scratch);
      mont.FromMontgomeryInto(un.data(), un.data(), &scratch);
      out[i].value = BigInt::FromLimbs(un);
    }
  };

  if (pool != nullptr) {
    pool->ParallelFor(0, ms.size(), /*min_grain=*/use_lanes ? kLanes : 1,
                      encrypt_range);
  } else {
    encrypt_range(0, ms.size());
  }
  return out;
}

PaillierCiphertext PaillierPublicKey::Add(const PaillierCiphertext& a,
                                          const PaillierCiphertext& b) const {
  return PaillierCiphertext{mont_->Mul(a.value, b.value)};
}

PaillierCiphertext PaillierPublicKey::ScalarMul(const PaillierCiphertext& c,
                                                uint64_t s) const {
  return PaillierCiphertext{mont_->ModExp(c.value, BigInt(s))};
}

Result<PaillierKeyPair> PaillierKeyPair::Generate(size_t key_bits, Rng* rng) {
  if (key_bits < 128 || key_bits > 4096) {
    return Status::InvalidArgument("key_bits out of supported range");
  }
  const size_t half = key_bits / 2;
  BigInt p = bignum::RandomPrime(half, rng);
  BigInt q;
  do {
    q = bignum::RandomPrime(key_bits - half, rng);
  } while (q == p);

  BigInt n = p * q;
  BigInt p1 = p - BigInt(1);
  BigInt q1 = q - BigInt(1);
  BigInt lambda = (p1 * q1) / bignum::Gcd(p1, q1);  // lcm(p-1, q-1)

  PaillierKeyPair pair;
  pair.public_key_ = std::make_shared<PaillierPublicKey>(n);

  auto priv = std::make_shared<PaillierPrivateKey>();
  priv->n_ = n;
  priv->n2_ = n * n;
  priv->lambda_ = lambda;
  auto ctx = bignum::MontgomeryContext::Create(priv->n2_);
  if (!ctx.ok()) return ctx.status();
  priv->mont_ = std::make_shared<bignum::MontgomeryContext>(
      std::move(ctx).value());

  // mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n+1.
  BigInt g_lambda = priv->mont_->ModExp(n + BigInt(1), lambda);
  BigInt l_val = (g_lambda - BigInt(1)) / n;
  EMB_ASSIGN_OR_RETURN(priv->mu_, bignum::ModInverse(l_val, n));

  pair.private_key_ = priv;
  return pair;
}

Result<BigInt> PaillierPrivateKey::Decrypt(const PaillierCiphertext& c) const {
  if (c.value.IsZero() || c.value >= n2_) {
    return Status::CryptoError("ciphertext outside Z*_{n^2}");
  }
  if (!bignum::Gcd(c.value, n_).IsOne()) {
    return Status::CryptoError("ciphertext shares a factor with n");
  }
  BigInt c_lambda = mont_->ModExp(c.value, lambda_);
  // Valid ciphertexts satisfy c^lambda = 1 (mod n), so L() divides exactly.
  if (c_lambda.IsZero() || !((c_lambda - BigInt(1)) % n_).IsZero()) {
    return Status::CryptoError("malformed ciphertext");
  }
  BigInt l_val = (c_lambda - BigInt(1)) / n_;
  return l_val * mu_ % n_;
}

}  // namespace embellish::crypto
