#include "crypto/pir.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "bignum/modmath.h"
#include "bignum/prime.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace embellish::crypto {

using bignum::BigInt;

PirDatabase::PirDatabase(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_((rows * cols + 7) / 8, 0) {}

void PirDatabase::SetBit(size_t row, size_t col, bool value) {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  if (value) {
    bits_[idx / 8] |= static_cast<uint8_t>(1u << (idx % 8));
  } else {
    bits_[idx / 8] &= static_cast<uint8_t>(~(1u << (idx % 8)));
  }
}

bool PirDatabase::GetBit(size_t row, size_t col) const {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  return (bits_[idx / 8] >> (idx % 8)) & 1;
}

void PirDatabase::ExtractRow(size_t row, uint64_t* words) const {
  assert(row < rows_);
  const size_t bit_base = row * cols_;
  const size_t nwords = RowWords();
  for (size_t w = 0; w < nwords; ++w) {
    const size_t bitpos = bit_base + 64 * w;
    const size_t byte = bitpos >> 3;
    const unsigned shift = static_cast<unsigned>(bitpos & 7);
    // Assemble 64 bits from up to 9 consecutive packed bytes.
    uint64_t lo = 0;
    const size_t avail = bits_.size() - byte;
    const size_t take = std::min<size_t>(8, avail);
    for (size_t b = 0; b < take; ++b) {
      lo |= static_cast<uint64_t>(bits_[byte + b]) << (8 * b);
    }
    uint64_t v = lo >> shift;
    if (shift != 0 && avail > 8) {
      v |= static_cast<uint64_t>(bits_[byte + 8]) << (64 - shift);
    }
    const size_t remaining = cols_ - 64 * w;
    if (remaining < 64) v &= (uint64_t{1} << remaining) - 1;
    words[w] = v;
  }
}

void PirDatabase::SetColumnFromBytes(size_t col,
                                     const std::vector<uint8_t>& bytes) {
  assert(bytes.size() * 8 <= rows_ && "column data exceeds matrix height");
  for (size_t b = 0; b < bytes.size(); ++b) {
    for (int bit = 0; bit < 8; ++bit) {
      bool v = (bytes[b] >> (7 - bit)) & 1;
      SetBit(b * 8 + static_cast<size_t>(bit), col, v);
    }
  }
}

size_t PirQuery::WireBytes() const {
  size_t key_bytes = (n.BitLength() + 7) / 8;
  return (1 + q.size()) * key_bytes;
}

Result<PirClient> PirClient::Create(size_t key_bits, Rng* rng) {
  if (key_bits < 128 || key_bits > 4096) {
    return Status::InvalidArgument("key_bits out of supported range");
  }
  PirClient client;
  const size_t half = key_bits / 2;
  client.p1_ = bignum::RandomPrime(half, rng);
  do {
    client.p2_ = bignum::RandomPrime(key_bits - half, rng);
  } while (client.p2_ == client.p1_);
  client.n_ = client.p1_ * client.p2_;
  client.p1_half_ = (client.p1_ - BigInt(1)) >> 1;
  client.p2_half_ = (client.p2_ - BigInt(1)) >> 1;
  auto m1 = bignum::MontgomeryContext::Create(client.p1_);
  auto m2 = bignum::MontgomeryContext::Create(client.p2_);
  if (!m1.ok()) return m1.status();
  if (!m2.ok()) return m2.status();
  client.mont_p1_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m1).value());
  client.mont_p2_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m2).value());
  return client;
}

bool PirClient::IsQuadraticResidue(const BigInt& v) const {
  // Euler's criterion modulo each prime factor.
  BigInt e1 = mont_p1_->ModExp(v, p1_half_);
  if (!e1.IsOne()) return false;
  BigInt e2 = mont_p2_->ModExp(v, p2_half_);
  return e2.IsOne();
}

Result<PirQuery> PirClient::BuildQuery(size_t target_col, size_t cols,
                                       Rng* rng) const {
  if (cols == 0) {
    return Status::InvalidArgument("database must have at least one column");
  }
  if (target_col >= cols) {
    return Status::OutOfRange(
        StringPrintf("target column %zu out of range [0, %zu)", target_col,
                     cols));
  }
  PirQuery query;
  query.n = n_;
  query.q.reserve(cols);
  for (size_t j = 0; j < cols; ++j) {
    if (j == target_col) {
      // QNR with Jacobi symbol +1: non-residue modulo both prime factors,
      // so it is indistinguishable from a QR without the trapdoor.
      while (true) {
        BigInt z = bignum::RandomUnit(n_, rng);
        BigInt e1 = mont_p1_->ModExp(z, p1_half_);
        if (e1.IsOne()) continue;  // QR mod p1
        BigInt e2 = mont_p2_->ModExp(z, p2_half_);
        if (e2.IsOne()) continue;  // QR mod p2
        query.q.push_back(std::move(z));
        break;
      }
    } else {
      // Random QR: the square of a random unit (already reduced mod n).
      BigInt w = bignum::RandomUnit(n_, rng);
      query.q.push_back(bignum::ModMulReduced(w, w, n_));
    }
  }
  return query;
}

Result<std::vector<bool>> PirClient::DecodeResponse(
    const PirResponse& response) const {
  std::vector<bool> bits;
  bits.reserve(response.gamma.size());
  for (const BigInt& g : response.gamma) {
    if (g.IsZero() || g >= n_) {
      return Status::Corruption("PIR response value outside Z*_n");
    }
    bits.push_back(!IsQuadraticResidue(g));  // QR => bit 0, QNR => bit 1
  }
  return bits;
}

PirServer::PirServer(std::shared_ptr<const PirDatabase> database,
                     ThreadPool* pool)
    : database_(std::move(database)), pool_(pool) {
  assert(database_ != nullptr);
}

Result<PirResponse> PirServer::Answer(const PirQuery& query,
                                      uint64_t* ops_out,
                                      double* cpu_ms_out) const {
  const size_t rows = database_->rows();
  const size_t cols = database_->cols();
  if (query.q.size() != cols) {
    return Status::InvalidArgument(
        StringPrintf("query width %zu != database width %zu", query.q.size(),
                     cols));
  }
  if (query.n.IsZero() || !query.n.IsOdd()) {
    return Status::InvalidArgument("query modulus must be odd and nonzero");
  }
  CpuStopwatch setup_cpu;  // caller-thread CPU: context + factor-table setup
  auto mont_res = bignum::MontgomeryContext::Create(query.n);
  if (!mont_res.ok()) return mont_res.status();
  const bignum::MontgomeryContext& mont = mont_res.value();
  const size_t k = mont.limb_count();

  // Precompute Montgomery forms of q_j and q_j^2 once per query; the row
  // loop is then pure MontMul, which dominates server CPU (Section 5.2).
  // The operands live in one flat array, interleaved per column — slot
  // (2j + bit) holds the factor for b_ij == bit — so the inner loop indexes
  // adjacent cache lines whichever way the bit falls.
  std::vector<uint64_t> factors(2 * cols * k);
  {
    bignum::MontgomeryContext::Scratch scratch(mont);
    for (size_t j = 0; j < cols; ++j) {
      uint64_t* q_slot = factors.data() + (2 * j + 1) * k;
      uint64_t* q2_slot = factors.data() + (2 * j) * k;
      mont.ToMontgomeryInto(query.q[j], q_slot, &scratch);
      mont.MontMulInto(q_slot, q_slot, q2_slot, &scratch);
    }
  }

  // Subset-product tables ("four Russians" over the bit matrix): split the
  // columns into groups of up to 8. For a group of width w, a row's partial
  // product  prod_i (bit_i ? q_i : q_i^2)  takes one of 2^w values, and the
  // 2^w subset products of {q_i} (table S1) and {q_i^2} (table S2) can each
  // be built with one MontMul per entry. A row then costs
  //   MontMul(S1[v], S2[~v])            per group (v = the row's w bits)
  // plus one combining MontMul per extra group — ~2 multiplications per 8
  // columns instead of 8. The multiset of factors is unchanged, so the gamma
  // values are bit-identical to the naive chain. Tables are built once per
  // query (serial setup) and shared read-only across workers.
  constexpr size_t kGroupBits = 8;
  const size_t ngroups = (cols + kGroupBits - 1) / kGroupBits;
  const bool use_tables = rows >= 128 && cols >= 4 &&
                          ngroups * 2 * (size_t{1} << kGroupBits) * k *
                                  sizeof(uint64_t) <=
                              (size_t{4} << 20);

  // tables layout: [group][s1/s2][pattern][limb]
  const size_t entries = size_t{1} << kGroupBits;
  std::vector<uint64_t> tables;
  if (use_tables) {
    bignum::MontgomeryContext::Scratch scratch(mont);
    tables.resize(ngroups * 2 * entries * k);
    for (size_t group = 0; group < ngroups; ++group) {
      const size_t col0 = group * kGroupBits;
      const size_t width = std::min(kGroupBits, cols - col0);
      for (size_t half = 0; half < 2; ++half) {
        // half 0: S1 over q_j (selector bit 1); half 1: S2 over q_j^2.
        uint64_t* table = tables.data() + (group * 2 + half) * entries * k;
        std::memcpy(table, mont.One().data(), k * sizeof(uint64_t));
        for (size_t v = 1; v < (size_t{1} << width); ++v) {
          const size_t low = v & (0 - v);
          const size_t col = col0 + std::countr_zero(low);
          const uint64_t* base =
              factors.data() + (2 * col + (half == 0 ? 1 : 0)) * k;
          uint64_t* dst = table + v * k;
          if (v == low) {
            std::memcpy(dst, base, k * sizeof(uint64_t));
          } else {
            mont.MontMulInto(table + (v ^ low) * k, base, dst, &scratch);
          }
        }
      }
    }
  }

  PirResponse response;
  response.gamma.resize(rows);
  bignum::BigInt* gamma = response.gamma.data();
  const uint64_t* one = mont.One().data();

  // Row kernel: rows are independent, so [row_begin, row_end) chunks run on
  // any thread. All per-multiplication state lives in the worker-owned
  // scratch/buffers; the column loop performs zero heap allocations.
  auto answer_rows = [&](size_t row_begin, size_t row_end) {
    bignum::MontgomeryContext::Scratch scratch(mont);
    std::vector<uint64_t> row_words(database_->RowWords());
    std::vector<uint64_t> acc(k);
    std::vector<uint64_t> part(k);
    std::vector<uint64_t> plain(k);
    for (size_t i = row_begin; i < row_end; ++i) {
      database_->ExtractRow(i, row_words.data());
      if (use_tables) {
        for (size_t group = 0; group < ngroups; ++group) {
          const size_t col0 = group * kGroupBits;
          const size_t width = std::min(kGroupBits, cols - col0);
          const uint64_t mask = (uint64_t{1} << width) - 1;
          // Groups are byte-aligned, so a group never straddles a word.
          const uint64_t v =
              (row_words[col0 / 64] >> (col0 % 64)) & mask;
          const uint64_t* s1 =
              tables.data() + (group * 2 + 0) * entries * k + v * k;
          const uint64_t* s2 =
              tables.data() + (group * 2 + 1) * entries * k +
              ((~v) & mask) * k;
          if (group == 0) {
            mont.MontMulInto(s1, s2, acc.data(), &scratch);
          } else {
            mont.MontMulInto(s1, s2, part.data(), &scratch);
            mont.MontMulInto(acc.data(), part.data(), acc.data(), &scratch);
          }
        }
      } else {
        std::memcpy(acc.data(), one, k * sizeof(uint64_t));
        mont.MontMulSelectInto(factors.data(), row_words.data(), cols,
                               acc.data(), &scratch);
      }
      mont.FromMontgomeryInto(acc.data(), plain.data(), &scratch);
      gamma[i] = bignum::BigInt::FromLimbs(std::move(plain));
      plain.resize(k);
    }
  };

  // Total CPU = caller-thread setup + in-kernel CPU summed over workers.
  double cpu_ms = setup_cpu.ElapsedMillis();
  if (pool_ != nullptr) {
    cpu_ms += pool_->ParallelFor(0, rows, /*min_grain=*/4, answer_rows);
  } else {
    CpuStopwatch cpu;
    answer_rows(0, rows);
    cpu_ms += cpu.ElapsedMillis();
  }

  if (ops_out != nullptr) {
    if (use_tables) {
      // Table build: each entry past the identity and the base copies costs
      // one MontMul. Rows: one MontMul for the first group, two per extra
      // group (combine + fold).
      uint64_t table_ops = 0;
      for (size_t group = 0; group < ngroups; ++group) {
        const size_t width = std::min(kGroupBits, cols - group * kGroupBits);
        table_ops += 2 * ((uint64_t{1} << width) - width - 1);
      }
      *ops_out = table_ops + static_cast<uint64_t>(rows) * (2 * ngroups - 1);
    } else {
      *ops_out = static_cast<uint64_t>(rows) * cols;
    }
  }
  if (cpu_ms_out != nullptr) *cpu_ms_out = cpu_ms;
  return response;
}

}  // namespace embellish::crypto
