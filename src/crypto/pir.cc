#include "crypto/pir.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <optional>

#include "bignum/modmath.h"
#include "bignum/montgomery_lanes.h"
#include "bignum/prime.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace embellish::crypto {

using bignum::BigInt;

PirDatabase::PirDatabase(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_((rows * cols + 7) / 8, 0) {}

void PirDatabase::SetBit(size_t row, size_t col, bool value) {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  if (value) {
    bits_[idx / 8] |= static_cast<uint8_t>(1u << (idx % 8));
  } else {
    bits_[idx / 8] &= static_cast<uint8_t>(~(1u << (idx % 8)));
  }
}

bool PirDatabase::GetBit(size_t row, size_t col) const {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  return (bits_[idx / 8] >> (idx % 8)) & 1;
}

void PirDatabase::ExtractRow(size_t row, uint64_t* words) const {
  assert(row < rows_);
  const size_t bit_base = row * cols_;
  const size_t nwords = RowWords();
  for (size_t w = 0; w < nwords; ++w) {
    const size_t bitpos = bit_base + 64 * w;
    const size_t byte = bitpos >> 3;
    const unsigned shift = static_cast<unsigned>(bitpos & 7);
    // Assemble 64 bits from up to 9 consecutive packed bytes.
    uint64_t lo = 0;
    const size_t avail = bits_.size() - byte;
    const size_t take = std::min<size_t>(8, avail);
    for (size_t b = 0; b < take; ++b) {
      lo |= static_cast<uint64_t>(bits_[byte + b]) << (8 * b);
    }
    uint64_t v = lo >> shift;
    if (shift != 0 && avail > 8) {
      v |= static_cast<uint64_t>(bits_[byte + 8]) << (64 - shift);
    }
    const size_t remaining = cols_ - 64 * w;
    if (remaining < 64) v &= (uint64_t{1} << remaining) - 1;
    words[w] = v;
  }
}

void PirDatabase::SetColumnFromBytes(size_t col,
                                     const std::vector<uint8_t>& bytes) {
  assert(bytes.size() * 8 <= rows_ && "column data exceeds matrix height");
  for (size_t b = 0; b < bytes.size(); ++b) {
    for (int bit = 0; bit < 8; ++bit) {
      bool v = (bytes[b] >> (7 - bit)) & 1;
      SetBit(b * 8 + static_cast<size_t>(bit), col, v);
    }
  }
}

size_t PirQuery::WireBytes() const {
  size_t key_bytes = (n.BitLength() + 7) / 8;
  return (1 + q.size()) * key_bytes;
}

Result<PirClient> PirClient::Create(size_t key_bits, Rng* rng) {
  if (key_bits < 128 || key_bits > 4096) {
    return Status::InvalidArgument("key_bits out of supported range");
  }
  PirClient client;
  const size_t half = key_bits / 2;
  client.p1_ = bignum::RandomPrime(half, rng);
  do {
    client.p2_ = bignum::RandomPrime(key_bits - half, rng);
  } while (client.p2_ == client.p1_);
  client.n_ = client.p1_ * client.p2_;
  client.p1_half_ = (client.p1_ - BigInt(1)) >> 1;
  client.p2_half_ = (client.p2_ - BigInt(1)) >> 1;
  auto m1 = bignum::MontgomeryContext::Create(client.p1_);
  auto m2 = bignum::MontgomeryContext::Create(client.p2_);
  if (!m1.ok()) return m1.status();
  if (!m2.ok()) return m2.status();
  client.mont_p1_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m1).value());
  client.mont_p2_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m2).value());
  return client;
}

bool PirClient::IsQuadraticResidue(const BigInt& v) const {
  // Euler's criterion modulo each prime factor.
  BigInt e1 = mont_p1_->ModExp(v, p1_half_);
  if (!e1.IsOne()) return false;
  BigInt e2 = mont_p2_->ModExp(v, p2_half_);
  return e2.IsOne();
}

Result<PirQuery> PirClient::BuildQuery(size_t target_col, size_t cols,
                                       Rng* rng) const {
  if (cols == 0) {
    return Status::InvalidArgument("database must have at least one column");
  }
  if (target_col >= cols) {
    return Status::OutOfRange(
        StringPrintf("target column %zu out of range [0, %zu)", target_col,
                     cols));
  }
  PirQuery query;
  query.n = n_;
  query.q.reserve(cols);
  for (size_t j = 0; j < cols; ++j) {
    if (j == target_col) {
      // QNR with Jacobi symbol +1: non-residue modulo both prime factors,
      // so it is indistinguishable from a QR without the trapdoor.
      while (true) {
        BigInt z = bignum::RandomUnit(n_, rng);
        BigInt e1 = mont_p1_->ModExp(z, p1_half_);
        if (e1.IsOne()) continue;  // QR mod p1
        BigInt e2 = mont_p2_->ModExp(z, p2_half_);
        if (e2.IsOne()) continue;  // QR mod p2
        query.q.push_back(std::move(z));
        break;
      }
    } else {
      // Random QR: the square of a random unit (already reduced mod n).
      BigInt w = bignum::RandomUnit(n_, rng);
      query.q.push_back(bignum::ModMulReduced(w, w, n_));
    }
  }
  return query;
}

Result<std::vector<bool>> PirClient::DecodeResponse(
    const PirResponse& response) const {
  std::vector<bool> bits;
  bits.reserve(response.gamma.size());
  for (const BigInt& g : response.gamma) {
    if (g.IsZero() || g >= n_) {
      return Status::Corruption("PIR response value outside Z*_n");
    }
    bits.push_back(!IsQuadraticResidue(g));  // QR => bit 0, QNR => bit 1
  }
  return bits;
}

void PirBatchStats::Add(const PirBatchStats& other) {
  queries += other.queries;
  sweeps += other.sweeps;
  budget_splits += other.budget_splits;
  rows_extracted += other.rows_extracted;
  mont_muls += other.mont_muls;
  table_build_muls += other.table_build_muls;
  table_queries += other.table_queries;
  simd_lane_muls += other.simd_lane_muls;
  simd_active_lanes += other.simd_active_lanes;
  cpu_ms += other.cpu_ms;
}

double PirBatchStats::simd_fill() const {
  if (simd_lane_muls == 0) return 0.0;
  return static_cast<double>(simd_active_lanes) /
         (static_cast<double>(bignum::MontgomeryLaneContext::kMaxLanes) *
          static_cast<double>(simd_lane_muls));
}

PirServer::PirServer(std::shared_ptr<const PirDatabase> database,
                     ThreadPool* pool)
    : database_(std::move(database)), pool_(pool) {
  assert(database_ != nullptr);
}

namespace {

constexpr size_t kGroupBits = 8;
constexpr size_t kTableEntries = size_t{1} << kGroupBits;

// Per-query evaluation state shared by Answer and AnswerBatch: the Montgomery
// context, the interleaved column factors, and the table-path decision from
// the amortization cost model. The subset tables themselves are built per
// sweep (BuildTables) and released afterwards, so a batch never holds more
// than one sub-batch's tables live.
struct QueryPlan {
  explicit QueryPlan(bignum::MontgomeryContext m) : mont(std::move(m)) {}

  bignum::MontgomeryContext mont;
  size_t k = 0;  // limb width of the modulus
  // Montgomery forms of q_j and q_j^2, interleaved per column — slot
  // (2j + bit) holds the factor for b_ij == bit — so the inner loop indexes
  // adjacent cache lines whichever way the bit falls (Section 5.2: the row
  // loop is then pure MontMul, which dominates server CPU).
  std::vector<uint64_t> factors;
  size_t ngroups = 0;
  bool use_tables = false;
  size_t table_bytes = 0;         // footprint of the subset tables if built
  uint64_t table_build_muls = 0;  // MontMuls to build them
  // Subset-product tables, layout [group][s1/s2][pattern][limb]; empty until
  // BuildTables and after ReleaseTables.
  std::vector<uint64_t> tables;
};

Result<QueryPlan> PlanQuery(const PirQuery& query, size_t rows, size_t cols,
                            size_t table_budget_bytes) {
  if (query.q.size() != cols) {
    return Status::InvalidArgument(
        StringPrintf("query width %zu != database width %zu", query.q.size(),
                     cols));
  }
  if (query.n.IsZero() || !query.n.IsOdd()) {
    return Status::InvalidArgument("query modulus must be odd and nonzero");
  }
  auto mont_res = bignum::MontgomeryContext::Create(query.n);
  if (!mont_res.ok()) return mont_res.status();
  QueryPlan plan(std::move(mont_res).value());
  plan.k = plan.mont.limb_count();

  plan.factors.resize(2 * cols * plan.k);
  {
    bignum::MontgomeryContext::Scratch scratch(plan.mont);
    for (size_t j = 0; j < cols; ++j) {
      uint64_t* q_slot = plan.factors.data() + (2 * j + 1) * plan.k;
      uint64_t* q2_slot = plan.factors.data() + (2 * j) * plan.k;
      plan.mont.ToMontgomeryInto(query.q[j], q_slot, &scratch);
      plan.mont.MontMulInto(q_slot, q_slot, q2_slot, &scratch);
    }
  }

  plan.ngroups = (cols + kGroupBits - 1) / kGroupBits;
  plan.table_bytes =
      plan.ngroups * 2 * kTableEntries * plan.k * sizeof(uint64_t);
  for (size_t group = 0; group < plan.ngroups; ++group) {
    const size_t width = std::min(kGroupBits, cols - group * kGroupBits);
    plan.table_build_muls += 2 * ((uint64_t{1} << width) - width - 1);
  }

  // Amortization-aware gate (replaces the old `rows >= 128` cliff, which
  // silently dropped small post-reshard slices onto the naive path): take
  // the subset-product tables exactly when they strictly reduce the MontMul
  // count — build cost plus (2g - 1) muls per row versus the naive cols muls
  // per row — and this query's tables alone fit the budget. Batch width
  // never flips this decision; budget pressure across a batch splits the
  // sweep instead (see AnswerBatch).
  const uint64_t row_muls_tables =
      static_cast<uint64_t>(rows) * (2 * plan.ngroups - 1);
  const uint64_t row_muls_naive = static_cast<uint64_t>(rows) * cols;
  plan.use_tables = cols >= 4 &&
                    plan.table_build_muls + row_muls_tables < row_muls_naive &&
                    plan.table_bytes <= table_budget_bytes;
  return plan;
}

// MontMuls charged to one query's row sweep (excludes the table build).
uint64_t RowMuls(const QueryPlan& plan, size_t rows, size_t cols) {
  return plan.use_tables
             ? static_cast<uint64_t>(rows) * (2 * plan.ngroups - 1)
             : static_cast<uint64_t>(rows) * cols;
}

// Subset-product tables ("four Russians" over the bit matrix): split the
// columns into groups of up to 8. For a group of width w, a row's partial
// product  prod_i (bit_i ? q_i : q_i^2)  takes one of 2^w values, and the
// 2^w subset products of {q_i} (table S1) and {q_i^2} (table S2) can each
// be built with one MontMul per entry. A row then costs
//   MontMul(S1[v], S2[~v])            per group (v = the row's w bits)
// plus one combining MontMul per extra group — ~2 multiplications per 8
// columns instead of 8. The multiset of factors is unchanged, so the gamma
// values are bit-identical to the naive chain. Tables are built once per
// query per sweep (serial setup) and shared read-only across workers.
void BuildTables(QueryPlan* plan, size_t cols) {
  const bignum::MontgomeryContext& mont = plan->mont;
  const size_t k = plan->k;
  bignum::MontgomeryContext::Scratch scratch(mont);
  plan->tables.resize(plan->ngroups * 2 * kTableEntries * k);
  for (size_t group = 0; group < plan->ngroups; ++group) {
    const size_t col0 = group * kGroupBits;
    const size_t width = std::min(kGroupBits, cols - col0);
    for (size_t half = 0; half < 2; ++half) {
      // half 0: S1 over q_j (selector bit 1); half 1: S2 over q_j^2.
      uint64_t* table =
          plan->tables.data() + (group * 2 + half) * kTableEntries * k;
      std::memcpy(table, mont.One().data(), k * sizeof(uint64_t));
      for (size_t v = 1; v < (size_t{1} << width); ++v) {
        const size_t low = v & (0 - v);
        const size_t col = col0 + std::countr_zero(low);
        const uint64_t* base =
            plan->factors.data() + (2 * col + (half == 0 ? 1 : 0)) * k;
        uint64_t* dst = table + v * k;
        if (v == low) {
          std::memcpy(dst, base, k * sizeof(uint64_t));
        } else {
          mont.MontMulInto(table + (v ^ low) * k, base, dst, &scratch);
        }
      }
    }
  }
}

void ReleaseTables(QueryPlan* plan) {
  std::vector<uint64_t>().swap(plan->tables);
}

using LaneCtx = bignum::MontgomeryLaneContext;

// Up to kMaxLanes same-width members of one sweep advancing through the
// vector Montgomery engine together. Each lane carries its own modulus; the
// row bits (and hence every table index v) are shared by construction, so a
// single kernel call folds the row into every member's accumulator. Members
// in a lane group do not build scalar tables — their subset products live in
// lane form here. Lane-form entries occupy the internal radix (<= 2x the
// scalar bytes on avx2, ~1.23x on ifma), a bounded constant over the scalar
// tables they replace; the sweep budget keeps using the scalar accounting.
struct LaneGroup {
  std::vector<size_t> members;  // plan indices, 2..kMaxLanes of equal k
  std::optional<LaneCtx> lane;
  // Naive path: slot (2j + bit) mirrors QueryPlan::factors, lane-packed.
  // Table path: consumed by BuildLaneTables, then released.
  std::vector<LaneCtx::Block> factor_blocks;
  // Table path: layout [group][s1/s2][pattern], one Block per entry.
  std::vector<LaneCtx::Block> table_blocks;
  bool use_tables = false;
  size_t ngroups = 0;
};

// Splits a sub-batch into lane groups of 2..kMaxLanes members sharing a limb
// width (the table-path decision is width-determined, so equal k implies an
// identical path) and appends everyone else — singletons, or every member
// when the CPU lacks a vector tier — to `scalar_members`. Scalar-tier builds
// take the untouched per-member path, so disabling the engine costs nothing.
void FormLaneGroups(const std::vector<QueryPlan>& plans,
                    const std::vector<size_t>& members,
                    std::vector<LaneGroup>* groups,
                    std::vector<size_t>* scalar_members) {
  std::vector<std::pair<size_t, std::vector<size_t>>> buckets;
  for (size_t m : members) {
    auto it = std::find_if(buckets.begin(), buckets.end(),
                           [&](const auto& b) { return b.first == plans[m].k; });
    if (it == buckets.end()) {
      buckets.emplace_back(plans[m].k, std::vector<size_t>{});
      it = buckets.end() - 1;
    }
    it->second.push_back(m);
  }
  for (auto& [k, bucket] : buckets) {
    size_t i = 0;
    while (bucket.size() - i >= 2) {
      const size_t take = std::min(LaneCtx::kMaxLanes, bucket.size() - i);
      std::vector<const bignum::MontgomeryContext*> ptrs;
      ptrs.reserve(take);
      for (size_t j = i; j < i + take; ++j) {
        ptrs.push_back(&plans[bucket[j]].mont);
      }
      auto lane = LaneCtx::Create(ptrs);
      if (!lane.ok() || !lane->vectorized()) break;  // whole bucket scalar
      LaneGroup group;
      group.members.assign(bucket.begin() + static_cast<ptrdiff_t>(i),
                           bucket.begin() + static_cast<ptrdiff_t>(i + take));
      group.lane.emplace(std::move(*lane));
      group.use_tables = plans[bucket[i]].use_tables;
      group.ngroups = plans[bucket[i]].ngroups;
      groups->push_back(std::move(group));
      i += take;
    }
    for (; i < bucket.size(); ++i) scalar_members->push_back(bucket[i]);
  }
}

// Lane-packs every member's column factors (slot layout unchanged). Pack is a
// domain conversion, not a logical multiplication, so it is not charged to
// mont_muls — same rule as the scalar ToMontgomery conversions in PlanQuery.
void PackLaneFactors(const std::vector<QueryPlan>& plans, size_t cols,
                     LaneGroup* group) {
  const LaneCtx& lane = *group->lane;
  LaneCtx::Scratch scratch(lane);
  const size_t k = plans[group->members[0]].k;
  group->factor_blocks.resize(2 * cols);
  const uint64_t* ptrs[LaneCtx::kMaxLanes];
  for (size_t slot = 0; slot < 2 * cols; ++slot) {
    for (size_t l = 0; l < group->members.size(); ++l) {
      ptrs[l] = plans[group->members[l]].factors.data() + slot * k;
    }
    group->factor_blocks[slot] = lane.MakeBlock();
    lane.Pack(ptrs, &group->factor_blocks[slot], &scratch);
  }
}

// The four-Russians build in lane form: identical v-chain to the scalar
// BuildTables — table[v] = table[v ^ lowbit] * factor[lowest set column] —
// executed once for the whole group instead of once per member, every lane
// building its own modulus's subset products. Per member the chain performs
// exactly QueryPlan::table_build_muls logical multiplications, which is what
// keeps the pinned mont_muls formula untouched.
void BuildLaneTables(size_t cols, LaneGroup* group) {
  const LaneCtx& lane = *group->lane;
  LaneCtx::Scratch scratch(lane);
  group->table_blocks.resize(group->ngroups * 2 * kTableEntries);
  for (size_t g = 0; g < group->ngroups; ++g) {
    const size_t col0 = g * kGroupBits;
    const size_t width = std::min(kGroupBits, cols - col0);
    for (size_t half = 0; half < 2; ++half) {
      LaneCtx::Block* table =
          group->table_blocks.data() + (g * 2 + half) * kTableEntries;
      table[0] = lane.One();
      for (size_t v = 1; v < (size_t{1} << width); ++v) {
        const size_t low = v & (0 - v);
        const size_t col = col0 + static_cast<size_t>(std::countr_zero(low));
        const LaneCtx::Block& base =
            group->factor_blocks[2 * col + (half == 0 ? 1 : 0)];
        if (v == low) {
          table[v] = base;
        } else {
          table[v] = lane.MakeBlock();
          lane.Mul(table[v ^ low], base, &table[v], &scratch);
        }
      }
    }
  }
  // The packed factors only feed the build; the sweep reads the tables.
  std::vector<LaneCtx::Block>().swap(group->factor_blocks);
}

// Worker-owned lane-path state: one Scratch and accumulator pair per lane
// group (blocks are group-width-bound), plus a flat per-lane plain-limb
// staging buffer for FromMontgomery.
struct LaneSweepState {
  LaneSweepState(const LaneGroup& group, size_t k)
      : scratch(*group.lane),
        acc(group.lane->MakeBlock()),
        part(group.lane->MakeBlock()),
        plain(LaneCtx::kMaxLanes * k) {}

  LaneCtx::Scratch scratch;
  LaneCtx::Block acc;
  LaneCtx::Block part;
  std::vector<uint64_t> plain;
};

// One pass over the bit matrix answering every member query: each row is
// extracted exactly once and each member's per-query state (subset tables or
// factor chain) is consulted against it. Rows are the parallel axis; all
// per-multiplication state lives in worker-owned scratch/buffers and the
// column loops perform zero heap allocations. Per query, the factor multiset
// and multiplication order match the single-query kernel exactly, so the
// gammas are bit-identical to serial Answer calls.
//
// Members arrive in two populations: `groups` (lane groups — one vector
// kernel call advances every member of a group at once, indices shared
// because the row bits are) and `members` (per-query scalar path). The lane
// path issues the same logical multiplications in the same order as the
// scalar path — acc = S1[v] * S2[~v], then one combine per extra group, or
// the One-seeded naive chain — and the lane engine reduces fully, so lane
// gammas are bit-identical too. Returns worker CPU ms.
double SweepRows(const PirDatabase& db, ThreadPool* pool, size_t cols,
                 std::vector<QueryPlan>& plans,
                 const std::vector<size_t>& members,
                 const std::vector<LaneGroup>& groups,
                 std::vector<PirResponse>& responses) {
  const size_t rows = db.rows();
  auto answer_rows = [&](size_t row_begin, size_t row_end) {
    // Worker-owned state: one Scratch per distinct limb width (a Scratch is
    // width-bound and reusable across contexts of the same width), one
    // row-word buffer shared by all members, max-width accumulators.
    std::vector<size_t> widths;
    std::vector<bignum::MontgomeryContext::Scratch> scratches;
    std::vector<size_t> scratch_of(members.size());
    size_t max_k = 1;
    for (size_t mi = 0; mi < members.size(); ++mi) {
      const QueryPlan& plan = plans[members[mi]];
      max_k = std::max(max_k, plan.k);
      auto it = std::find(widths.begin(), widths.end(), plan.k);
      if (it == widths.end()) {
        widths.push_back(plan.k);
        scratches.emplace_back(plan.mont);
        it = widths.end() - 1;
      }
      scratch_of[mi] = static_cast<size_t>(it - widths.begin());
    }
    std::vector<LaneSweepState> lane_state;
    lane_state.reserve(groups.size());
    for (const LaneGroup& group : groups) {
      lane_state.emplace_back(group, plans[group.members[0]].k);
    }
    std::vector<uint64_t> row_words(db.RowWords());
    std::vector<uint64_t> acc(max_k);
    std::vector<uint64_t> part(max_k);
    std::vector<uint64_t> plain(max_k);
    for (size_t i = row_begin; i < row_end; ++i) {
      db.ExtractRow(i, row_words.data());
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        const LaneGroup& group = groups[gi];
        LaneSweepState& st = lane_state[gi];
        const LaneCtx& lane = *group.lane;
        const size_t k = plans[group.members[0]].k;
        if (group.use_tables) {
          for (size_t g = 0; g < group.ngroups; ++g) {
            const size_t col0 = g * kGroupBits;
            const size_t width = std::min(kGroupBits, cols - col0);
            const uint64_t mask = (uint64_t{1} << width) - 1;
            const uint64_t v = (row_words[col0 / 64] >> (col0 % 64)) & mask;
            const LaneCtx::Block& s1 =
                group.table_blocks[(g * 2 + 0) * kTableEntries + v];
            const LaneCtx::Block& s2 =
                group.table_blocks[(g * 2 + 1) * kTableEntries +
                                   ((~v) & mask)];
            if (g == 0) {
              lane.Mul(s1, s2, &st.acc, &st.scratch);
            } else {
              lane.Mul(s1, s2, &st.part, &st.scratch);
              lane.Mul(st.acc, st.part, &st.acc, &st.scratch);
            }
          }
        } else {
          st.acc = lane.One();
          for (size_t j = 0; j < cols; ++j) {
            const uint64_t bit = (row_words[j / 64] >> (j % 64)) & 1;
            lane.Mul(st.acc, group.factor_blocks[2 * j + bit], &st.acc,
                     &st.scratch);
          }
        }
        uint64_t* outp[LaneCtx::kMaxLanes];
        for (size_t l = 0; l < group.members.size(); ++l) {
          outp[l] = st.plain.data() + l * k;
        }
        lane.FromMontgomery(st.acc, outp, &st.scratch);
        for (size_t l = 0; l < group.members.size(); ++l) {
          responses[group.members[l]].gamma[i] = bignum::BigInt::FromLimbs(
              std::vector<uint64_t>(outp[l], outp[l] + k));
        }
      }
      for (size_t mi = 0; mi < members.size(); ++mi) {
        QueryPlan& plan = plans[members[mi]];
        const bignum::MontgomeryContext& mont = plan.mont;
        const size_t k = plan.k;
        bignum::MontgomeryContext::Scratch* scratch = &scratches[scratch_of[mi]];
        if (plan.use_tables) {
          for (size_t group = 0; group < plan.ngroups; ++group) {
            const size_t col0 = group * kGroupBits;
            const size_t width = std::min(kGroupBits, cols - col0);
            const uint64_t mask = (uint64_t{1} << width) - 1;
            // Groups are byte-aligned, so a group never straddles a word.
            const uint64_t v = (row_words[col0 / 64] >> (col0 % 64)) & mask;
            const uint64_t* s1 =
                plan.tables.data() + (group * 2 + 0) * kTableEntries * k +
                v * k;
            const uint64_t* s2 =
                plan.tables.data() + (group * 2 + 1) * kTableEntries * k +
                ((~v) & mask) * k;
            if (group == 0) {
              mont.MontMulInto(s1, s2, acc.data(), scratch);
            } else {
              mont.MontMulInto(s1, s2, part.data(), scratch);
              mont.MontMulInto(acc.data(), part.data(), acc.data(), scratch);
            }
          }
        } else {
          std::memcpy(acc.data(), mont.One().data(), k * sizeof(uint64_t));
          mont.MontMulSelectInto(plan.factors.data(), row_words.data(), cols,
                                 acc.data(), scratch);
        }
        plain.resize(k);
        mont.FromMontgomeryInto(acc.data(), plain.data(), scratch);
        responses[members[mi]].gamma[i] =
            bignum::BigInt::FromLimbs(std::move(plain));
      }
    }
  };

  if (pool != nullptr) {
    return pool->ParallelFor(0, rows, /*min_grain=*/4, answer_rows);
  }
  CpuStopwatch cpu;
  answer_rows(0, rows);
  return cpu.ElapsedMillis();
}

}  // namespace

Result<PirResponse> PirServer::Answer(const PirQuery& query,
                                      uint64_t* ops_out,
                                      double* cpu_ms_out) const {
  // The single-query answer is exactly the Q=1 batch: one shared code path
  // is what makes the batch-vs-serial bit-identity claim structural.
  PirBatchStats stats;
  const PirQuery* ptr = &query;
  auto batch = AnswerBatch(std::span<const PirQuery* const>(&ptr, 1), &stats);
  if (!batch.ok()) return batch.status();
  if (ops_out != nullptr) *ops_out = stats.mont_muls;
  if (cpu_ms_out != nullptr) *cpu_ms_out = stats.cpu_ms;
  std::vector<PirResponse> responses = std::move(batch).value();
  return std::move(responses[0]);
}

Result<std::vector<PirResponse>> PirServer::AnswerBatch(
    std::span<const PirQuery> queries, PirBatchStats* stats) const {
  std::vector<const PirQuery*> ptrs;
  ptrs.reserve(queries.size());
  for (const PirQuery& query : queries) ptrs.push_back(&query);
  return AnswerBatch(std::span<const PirQuery* const>(ptrs), stats);
}

Result<std::vector<PirResponse>> PirServer::AnswerBatch(
    std::span<const PirQuery* const> queries, PirBatchStats* stats) const {
  const size_t rows = database_->rows();
  const size_t cols = database_->cols();
  std::vector<PirResponse> responses(queries.size());
  if (queries.empty()) return responses;

  CpuStopwatch setup_cpu;  // caller-thread CPU: contexts + factor setup
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  for (const PirQuery* query : queries) {
    if (query == nullptr) {
      return Status::InvalidArgument("null PIR query in batch");
    }
    auto plan = PlanQuery(*query, rows, cols, table_budget_bytes_);
    if (!plan.ok()) return plan.status();
    plans.push_back(std::move(plan).value());
  }

  PirBatchStats local;
  local.queries = queries.size();
  local.cpu_ms = setup_cpu.ElapsedMillis();

  // Partition the batch into consecutive sub-batches whose combined table
  // footprint fits the batch-wide budget. The gate already degraded any
  // query whose tables alone exceed the budget to the naive path, so every
  // table query fits in some sub-batch: budget pressure splits the sweep, it
  // never silently inflates a query onto the naive path.
  size_t begin = 0;
  while (begin < plans.size()) {
    size_t end = begin;
    size_t live_bytes = 0;
    while (end < plans.size()) {
      const size_t bytes = plans[end].use_tables ? plans[end].table_bytes : 0;
      if (end > begin && live_bytes + bytes > table_budget_bytes_) break;
      live_bytes += bytes;
      ++end;
    }
    std::vector<size_t> members;
    members.reserve(end - begin);
    for (size_t m = begin; m < end; ++m) {
      members.push_back(m);
      responses[m].gamma.resize(rows);
    }

    // Same-width members pair up into SIMD lane groups; leftovers (and every
    // member on a scalar-tier build) stay on the per-query scalar path.
    std::vector<LaneGroup> groups;
    std::vector<size_t> scalar_members;
    FormLaneGroups(plans, members, &groups, &scalar_members);

    CpuStopwatch build_cpu;
    for (LaneGroup& group : groups) {
      PackLaneFactors(plans, cols, &group);
      if (group.use_tables) BuildLaneTables(cols, &group);
    }
    for (size_t m : scalar_members) {
      if (plans[m].use_tables) BuildTables(&plans[m], cols);
    }
    local.cpu_ms += build_cpu.ElapsedMillis();
    local.cpu_ms += SweepRows(*database_, pool_, cols, plans, scalar_members,
                              groups, responses);
    for (size_t m : scalar_members) ReleaseTables(&plans[m]);

    // Lane occupancy, counted arithmetically (the sweep is deterministic):
    // per row a table group issues 2g - 1 vector muls and a naive group
    // issues cols; the lane table build issues one member's worth of chain
    // muls for the whole group. Conversions are excluded, as in mont_muls.
    for (const LaneGroup& group : groups) {
      const QueryPlan& p0 = plans[group.members[0]];
      const uint64_t invocations =
          group.use_tables
              ? static_cast<uint64_t>(rows) * (2 * group.ngroups - 1) +
                    p0.table_build_muls
              : static_cast<uint64_t>(rows) * cols;
      local.simd_lane_muls += invocations;
      local.simd_active_lanes += invocations * group.members.size();
    }
    ++local.sweeps;
    local.rows_extracted += rows;  // shared: each row read once per sweep
    begin = end;
  }
  local.budget_splits = local.sweeps - 1;

  for (const QueryPlan& plan : plans) {
    // Per-query MontMuls are charged per query — nothing about the modular
    // arithmetic is shared across moduli — matching Answer's ops_out exactly.
    local.mont_muls += RowMuls(plan, rows, cols);
    if (plan.use_tables) {
      local.mont_muls += plan.table_build_muls;
      local.table_build_muls += plan.table_build_muls;
      ++local.table_queries;
    }
  }

  if (stats != nullptr) stats->Add(local);
  return responses;
}

}  // namespace embellish::crypto
