#include "crypto/pir.h"

#include <cassert>

#include "bignum/modmath.h"
#include "bignum/prime.h"
#include "common/strings.h"

namespace embellish::crypto {

using bignum::BigInt;

PirDatabase::PirDatabase(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_((rows * cols + 7) / 8, 0) {}

void PirDatabase::SetBit(size_t row, size_t col, bool value) {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  if (value) {
    bits_[idx / 8] |= static_cast<uint8_t>(1u << (idx % 8));
  } else {
    bits_[idx / 8] &= static_cast<uint8_t>(~(1u << (idx % 8)));
  }
}

bool PirDatabase::GetBit(size_t row, size_t col) const {
  assert(row < rows_ && col < cols_);
  size_t idx = row * cols_ + col;
  return (bits_[idx / 8] >> (idx % 8)) & 1;
}

void PirDatabase::SetColumnFromBytes(size_t col,
                                     const std::vector<uint8_t>& bytes) {
  assert(bytes.size() * 8 <= rows_ && "column data exceeds matrix height");
  for (size_t b = 0; b < bytes.size(); ++b) {
    for (int bit = 0; bit < 8; ++bit) {
      bool v = (bytes[b] >> (7 - bit)) & 1;
      SetBit(b * 8 + static_cast<size_t>(bit), col, v);
    }
  }
}

size_t PirQuery::WireBytes() const {
  size_t key_bytes = (n.BitLength() + 7) / 8;
  return (1 + q.size()) * key_bytes;
}

Result<PirClient> PirClient::Create(size_t key_bits, Rng* rng) {
  if (key_bits < 128 || key_bits > 4096) {
    return Status::InvalidArgument("key_bits out of supported range");
  }
  PirClient client;
  const size_t half = key_bits / 2;
  client.p1_ = bignum::RandomPrime(half, rng);
  do {
    client.p2_ = bignum::RandomPrime(key_bits - half, rng);
  } while (client.p2_ == client.p1_);
  client.n_ = client.p1_ * client.p2_;
  client.p1_half_ = (client.p1_ - BigInt(1)) >> 1;
  client.p2_half_ = (client.p2_ - BigInt(1)) >> 1;
  auto m1 = bignum::MontgomeryContext::Create(client.p1_);
  auto m2 = bignum::MontgomeryContext::Create(client.p2_);
  if (!m1.ok()) return m1.status();
  if (!m2.ok()) return m2.status();
  client.mont_p1_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m1).value());
  client.mont_p2_ =
      std::make_shared<bignum::MontgomeryContext>(std::move(m2).value());
  return client;
}

bool PirClient::IsQuadraticResidue(const BigInt& v) const {
  // Euler's criterion modulo each prime factor.
  BigInt e1 = mont_p1_->ModExp(v, p1_half_);
  if (!e1.IsOne()) return false;
  BigInt e2 = mont_p2_->ModExp(v, p2_half_);
  return e2.IsOne();
}

Result<PirQuery> PirClient::BuildQuery(size_t target_col, size_t cols,
                                       Rng* rng) const {
  if (cols == 0) {
    return Status::InvalidArgument("database must have at least one column");
  }
  if (target_col >= cols) {
    return Status::OutOfRange(
        StringPrintf("target column %zu out of range [0, %zu)", target_col,
                     cols));
  }
  PirQuery query;
  query.n = n_;
  query.q.reserve(cols);
  for (size_t j = 0; j < cols; ++j) {
    if (j == target_col) {
      // QNR with Jacobi symbol +1: non-residue modulo both prime factors,
      // so it is indistinguishable from a QR without the trapdoor.
      while (true) {
        BigInt z = bignum::RandomUnit(n_, rng);
        BigInt e1 = mont_p1_->ModExp(z, p1_half_);
        if (e1.IsOne()) continue;  // QR mod p1
        BigInt e2 = mont_p2_->ModExp(z, p2_half_);
        if (e2.IsOne()) continue;  // QR mod p2
        query.q.push_back(std::move(z));
        break;
      }
    } else {
      // Random QR: the square of a random unit.
      BigInt w = bignum::RandomUnit(n_, rng);
      query.q.push_back(w * w % n_);
    }
  }
  return query;
}

Result<std::vector<bool>> PirClient::DecodeResponse(
    const PirResponse& response) const {
  std::vector<bool> bits;
  bits.reserve(response.gamma.size());
  for (const BigInt& g : response.gamma) {
    if (g.IsZero() || g >= n_) {
      return Status::Corruption("PIR response value outside Z*_n");
    }
    bits.push_back(!IsQuadraticResidue(g));  // QR => bit 0, QNR => bit 1
  }
  return bits;
}

PirServer::PirServer(std::shared_ptr<const PirDatabase> database)
    : database_(std::move(database)) {
  assert(database_ != nullptr);
}

Result<PirResponse> PirServer::Answer(const PirQuery& query,
                                      uint64_t* ops_out) const {
  const size_t rows = database_->rows();
  const size_t cols = database_->cols();
  if (query.q.size() != cols) {
    return Status::InvalidArgument(
        StringPrintf("query width %zu != database width %zu", query.q.size(),
                     cols));
  }
  if (query.n.IsZero() || !query.n.IsOdd()) {
    return Status::InvalidArgument("query modulus must be odd and nonzero");
  }
  auto mont_res = bignum::MontgomeryContext::Create(query.n);
  if (!mont_res.ok()) return mont_res.status();
  const bignum::MontgomeryContext& mont = mont_res.value();

  // Precompute Montgomery forms of q_j and q_j^2 once per query; the row
  // loop is then pure MontMul, which dominates server CPU (Section 5.2).
  std::vector<std::vector<uint64_t>> q_mont(cols);
  std::vector<std::vector<uint64_t>> q2_mont(cols);
  for (size_t j = 0; j < cols; ++j) {
    q_mont[j] = mont.ToMontgomery(query.q[j]);
    q2_mont[j] = mont.MontMul(q_mont[j], q_mont[j]);
  }

  uint64_t ops = 0;
  PirResponse response;
  response.gamma.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<uint64_t> acc = mont.One();
    for (size_t j = 0; j < cols; ++j) {
      acc = mont.MontMul(acc, database_->GetBit(i, j) ? q_mont[j] : q2_mont[j]);
      ++ops;
    }
    response.gamma.push_back(mont.FromMontgomery(acc));
  }
  if (ops_out != nullptr) *ops_out = ops;
  return response;
}

}  // namespace embellish::crypto
