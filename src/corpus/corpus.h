// Document collection model.
//
// Documents are token sequences over the lexical database's term ids. The
// corpus also exposes collection statistics (document frequency f_t, total
// document count N) that the impact computation of Appendix B.2 consumes.

#ifndef EMBELLISH_CORPUS_CORPUS_H_
#define EMBELLISH_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::corpus {

/// \brief Document identifier (position in the corpus).
using DocId = uint32_t;

/// \brief A document: an ordered bag of dictionary terms.
struct Document {
  DocId id = 0;
  std::vector<wordnet::TermId> tokens;
};

/// \brief An in-memory document collection with cached statistics.
class Corpus {
 public:
  explicit Corpus(std::vector<Document> documents);

  size_t document_count() const { return documents_.size(); }
  const Document& document(DocId id) const { return documents_[id]; }
  const std::vector<Document>& documents() const { return documents_; }

  /// \brief Document frequency f_t: number of documents containing `term`.
  uint32_t DocumentFrequency(wordnet::TermId term) const;

  /// \brief All distinct terms appearing in the corpus.
  std::vector<wordnet::TermId> DistinctTerms() const;

  /// \brief Total token count across all documents.
  uint64_t TotalTokens() const { return total_tokens_; }

  /// \brief Renders a document back to text given the lexicon (for the
  ///        analyzer-path integration tests and examples).
  std::string RenderText(DocId id, const wordnet::WordNetDatabase& db) const;

 private:
  std::vector<Document> documents_;
  std::unordered_map<wordnet::TermId, uint32_t> doc_frequency_;
  uint64_t total_tokens_ = 0;
};

}  // namespace embellish::corpus

#endif  // EMBELLISH_CORPUS_CORPUS_H_
