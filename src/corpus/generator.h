// Synthetic document collection, standing in for the WSJ corpus (172,961
// Wall Street Journal articles, 513 MB) used in Section 5.2.
//
// Generation uses a topical mixture model: each document draws most tokens
// from one of `num_topics` topic-specific Zipf distributions (giving related
// terms realistic co-occurrence) and the rest from a global Zipf background.
// The resulting inverted-list length distribution is heavily skewed like a
// real corpus — the property the retrieval-cost experiments depend on.

#ifndef EMBELLISH_CORPUS_GENERATOR_H_
#define EMBELLISH_CORPUS_GENERATOR_H_

#include "common/status.h"
#include "corpus/corpus.h"
#include "wordnet/database.h"

namespace embellish::corpus {

/// \brief Parameters for the synthetic corpus.
struct SyntheticCorpusOptions {
  /// Number of documents (the paper's WSJ has 172,961).
  size_t num_docs = 20000;

  /// Mean document length in tokens; actual lengths vary uniformly in
  /// [mean/2, 3*mean/2]. WSJ articles average a few hundred terms.
  size_t mean_doc_tokens = 200;

  /// Zipf skew for term selection.
  double zipf_s = 1.0;

  /// Topical structure: number of topics and the fraction of a document's
  /// tokens drawn from its topic distribution (vs the global background).
  size_t num_topics = 64;
  double topic_fraction = 0.6;

  /// Terms per topic (each topic is a random dictionary subset).
  size_t terms_per_topic = 2000;

  uint64_t seed = 5;

  Status Validate() const;
};

/// \brief Generates documents over the given lexicon's terms.
///        Deterministic given options.
Result<Corpus> GenerateSyntheticCorpus(const wordnet::WordNetDatabase& lexicon,
                                       const SyntheticCorpusOptions& options);

}  // namespace embellish::corpus

#endif  // EMBELLISH_CORPUS_GENERATOR_H_
