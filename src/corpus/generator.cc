#include "corpus/generator.h"

#include <algorithm>

#include "common/rng.h"
#include "corpus/zipf.h"

namespace embellish::corpus {

Status SyntheticCorpusOptions::Validate() const {
  if (num_docs == 0) {
    return Status::InvalidArgument("num_docs must be >= 1");
  }
  if (mean_doc_tokens < 4) {
    return Status::InvalidArgument("mean_doc_tokens must be >= 4");
  }
  if (zipf_s <= 0.0 || zipf_s > 3.0) {
    return Status::InvalidArgument("zipf_s out of (0, 3]");
  }
  if (num_topics == 0) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (topic_fraction < 0.0 || topic_fraction > 1.0) {
    return Status::InvalidArgument("topic_fraction out of [0, 1]");
  }
  if (terms_per_topic < 10) {
    return Status::InvalidArgument("terms_per_topic must be >= 10");
  }
  return Status::OK();
}

Result<Corpus> GenerateSyntheticCorpus(const wordnet::WordNetDatabase& lexicon,
                                       const SyntheticCorpusOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  const size_t vocab = lexicon.term_count();
  if (vocab < 100) {
    return Status::InvalidArgument("lexicon too small for corpus generation");
  }
  Rng rng(options.seed);

  // Global background: a random permutation of the vocabulary defines the
  // global rank order (so 'rank 0' is an arbitrary term, not term id 0).
  std::vector<wordnet::TermId> global_order(vocab);
  for (size_t i = 0; i < vocab; ++i) {
    global_order[i] = static_cast<wordnet::TermId>(i);
  }
  rng.Shuffle(&global_order);
  ZipfSampler global_zipf(vocab, options.zipf_s);

  // Topics: random dictionary subsets with their own Zipf orderings.
  const size_t topic_size = std::min(options.terms_per_topic, vocab);
  std::vector<std::vector<wordnet::TermId>> topics(options.num_topics);
  for (auto& topic : topics) {
    std::vector<size_t> pick = rng.SampleWithoutReplacement(vocab, topic_size);
    topic.reserve(topic_size);
    for (size_t idx : pick) {
      topic.push_back(static_cast<wordnet::TermId>(idx));
    }
  }
  ZipfSampler topic_zipf(topic_size, options.zipf_s);
  // Topic popularity is itself skewed (some subjects dominate a newswire).
  ZipfSampler topic_pick(options.num_topics, 0.7);

  std::vector<Document> docs;
  docs.reserve(options.num_docs);
  for (size_t d = 0; d < options.num_docs; ++d) {
    size_t len = options.mean_doc_tokens / 2 +
                 rng.Uniform(options.mean_doc_tokens + 1);
    const std::vector<wordnet::TermId>& topic =
        topics[topic_pick.Sample(&rng)];
    Document doc;
    doc.tokens.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      if (rng.Bernoulli(options.topic_fraction)) {
        doc.tokens.push_back(topic[topic_zipf.Sample(&rng)]);
      } else {
        doc.tokens.push_back(global_order[global_zipf.Sample(&rng)]);
      }
    }
    docs.push_back(std::move(doc));
  }
  return Corpus(std::move(docs));
}

}  // namespace embellish::corpus
